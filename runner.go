package cem

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/match"
)

// Result is the outcome of a Runner run: the raw scheme result plus the
// run's provenance. The embedded core result exposes Matches and Stats.
type Result struct {
	*core.Result
	// Matcher is the registry name of the matcher that produced this
	// result.
	Matcher string
	// Closed reports whether WithTransitiveClosure post-processed the
	// match set.
	Closed bool
}

// Runner executes schemes for one experiment with one matcher under a
// fixed set of options. Build with Experiment.Runner; a Runner is
// immutable after construction and safe for concurrent use.
type Runner struct {
	exp         *Experiment
	name        string
	matcher     match.Matcher
	parallelism int
	order       match.Order
	negative    match.PairSet
	progress    func(match.ProgressEvent)
	stats       func(match.RunStats)
	closure     bool
}

// RunnerOption customizes a Runner.
type RunnerOption func(*Runner)

// WithParallelism evaluates up to n neighborhoods concurrently: NO-MP on
// a worker pool, SMP/MMP in round-based map/reduce over shared memory.
// The output is unchanged for well-behaved matchers (Theorems 2 and 4).
// n <= 1 runs serially.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.parallelism = n }
}

// WithProgress installs a callback invoked (sequentially) after every
// neighborhood evaluation. Callbacks must be fast; they sit on the
// scheduling path.
func WithProgress(fn func(match.ProgressEvent)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// WithStats installs a callback that receives the run statistics after
// every completed Run.
func WithStats(fn func(match.RunStats)) RunnerOption {
	return func(r *Runner) { r.stats = fn }
}

// WithTransitiveClosure applies the transitive closure to the match set
// at the end of every run — the Appendix A post-processing step the
// paper prescribes for the RULES matcher.
func WithTransitiveClosure() RunnerOption {
	return func(r *Runner) { r.closure = true }
}

// WithOrder sets the serial scheduling discipline of the active set.
// Output is order-invariant for well-behaved matchers; the knob shifts
// how quickly evidence accumulates. Ignored when parallelism > 1.
func WithOrder(o match.Order) RunnerOption {
	return func(r *Runner) { r.order = o }
}

// WithNegativeEvidence seeds the run with V− — pairs known NOT to match,
// passed to every matcher invocation (Definition 1).
func WithNegativeEvidence(neg match.PairSet) RunnerOption {
	return func(r *Runner) { r.negative = neg }
}

// Runner builds a scheme executor for the named matcher ("mln", "rules",
// or any name passed to RegisterMatcher). The matcher is instantiated on
// first use and cached per experiment.
func (e *Experiment) Runner(matcher string, opts ...RunnerOption) (*Runner, error) {
	m, err := e.matcher(matcher)
	if err != nil {
		return nil, err
	}
	r := &Runner{exp: e, name: matcher, matcher: m}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Name returns the registry name of the runner's matcher.
func (r *Runner) Name() string { return r.name }

// Matcher returns the grounded matcher instance.
func (r *Runner) Matcher() match.Matcher { return r.matcher }

// coreConfig assembles the framework configuration for this runner.
func (r *Runner) coreConfig() core.Config {
	return core.Config{
		Cover:       r.exp.Cover,
		Matcher:     r.matcher,
		Relation:    r.exp.Dataset.Coauthor(),
		Negative:    r.negative,
		Order:       r.order,
		Parallelism: r.parallelism,
		Progress:    r.progress,
	}
}

// Run executes one scheme. The context cancels or deadlines the run
// between neighborhood evaluations; a canceled run returns ctx.Err().
func (r *Runner) Run(ctx context.Context, s Scheme) (*Result, error) {
	cfg := r.coreConfig()
	var (
		raw *core.Result
		err error
	)
	switch s {
	case SchemeNoMP:
		raw, err = core.NoMP(ctx, cfg)
	case SchemeSMP:
		raw, err = core.SMP(ctx, cfg)
	case SchemeMMP:
		raw, err = core.MMP(ctx, cfg)
	case SchemeFull:
		raw, err = core.Full(ctx, cfg)
	case SchemeUB:
		raw, err = core.UB(ctx, cfg, r.exp.Truth)
	default:
		return nil, fmt.Errorf("cem: unknown scheme %q", s)
	}
	if err != nil {
		return nil, err
	}
	if r.closure {
		raw.Matches = r.exp.TransitiveClosure(raw.Matches)
	}
	if r.stats != nil {
		r.stats(raw.Stats)
	}
	return &Result{Result: raw, Matcher: r.name, Closed: r.closure}, nil
}

// GridConfig configures the simulated grid executor (§6.3). Aliased so
// external modules can build one without importing internal packages.
type GridConfig = grid.Config

// GridResult is the outcome of a simulated-grid run.
type GridResult = grid.Result

// RunGrid executes one scheme on the simulated grid (§6.3): parallel
// rounds with real goroutine execution and a simulated G-machine clock.
// The configuration is validated up front; an invalid one (e.g. zero
// machines) is reported as an error rather than a panic deep in the
// executor.
func (r *Runner) RunGrid(ctx context.Context, s Scheme, gcfg grid.Config) (*grid.Result, error) {
	if err := gcfg.Validate(); err != nil {
		return nil, fmt.Errorf("cem: grid config: %w", err)
	}
	cfg := r.coreConfig()
	var (
		res *grid.Result
		err error
	)
	switch s {
	case SchemeNoMP:
		res, err = grid.NoMP(ctx, cfg, gcfg)
	case SchemeSMP:
		res, err = grid.SMP(ctx, cfg, gcfg)
	case SchemeMMP:
		res, err = grid.MMP(ctx, cfg, gcfg)
	default:
		return nil, fmt.Errorf("cem: scheme %q not supported on the grid", s)
	}
	if err != nil {
		return nil, err
	}
	if r.closure {
		res.Matches = r.exp.TransitiveClosure(res.Matches)
	}
	return res, nil
}

// Run executes one scheme with one matcher and returns the result.
//
// Deprecated: build a Runner and pass a context; this wrapper uses
// context.Background and no options.
func (e *Experiment) Run(s Scheme, kind MatcherKind) (*Result, error) {
	r, err := e.Runner(kind)
	if err != nil {
		return nil, err
	}
	return r.Run(context.Background(), s)
}

// RunGrid executes one scheme on the simulated grid (§6.3).
//
// Deprecated: build a Runner and use Runner.RunGrid with a context.
func (e *Experiment) RunGrid(s Scheme, kind MatcherKind, gcfg grid.Config) (*grid.Result, error) {
	r, err := e.Runner(kind)
	if err != nil {
		return nil, err
	}
	return r.RunGrid(context.Background(), s, gcfg)
}
