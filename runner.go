package cem

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/match"
)

// Result is the outcome of a Runner run: the raw scheme result plus the
// run's provenance. The embedded core result exposes Matches and Stats.
type Result struct {
	*core.Result
	// Matcher is the registry name of the matcher that produced this
	// result.
	Matcher string
	// Closed reports whether WithTransitiveClosure post-processed the
	// match set.
	Closed bool

	// preClosure is the raw match set before transitive closure was
	// applied (nil when Closed is false). Snapshots seed continuations
	// from it: the engine's internal evidence is always the unclosed
	// set, and closure re-composes at the end of every run.
	preClosure match.PairSet
}

// Runner executes schemes for one experiment with one matcher under a
// fixed set of options. Build with Experiment.Runner; a Runner is
// immutable after construction and safe for concurrent use.
type Runner struct {
	exp         *Experiment
	name        string
	matcher     match.Matcher
	parallelism int
	order       match.Order
	negative    match.PairSet
	progress    func(match.ProgressEvent)
	stats       func(match.RunStats)
	closure     bool
	backend     match.Backend
	ckptDir     string
	store       match.Store  // WithOpenedStore
	storeh      *storeHandle // WithStore (lazily opened, shared across runs)
}

// RunnerOption customizes a Runner.
type RunnerOption func(*Runner)

// WithParallelism evaluates up to n neighborhoods concurrently: NO-MP on
// a worker pool, SMP/MMP in round-based map/reduce over shared memory.
// The output is unchanged for well-behaved matchers (Theorems 2 and 4).
// n <= 1 runs serially.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.parallelism = n }
}

// WithProgress installs a callback invoked (sequentially) after every
// neighborhood evaluation. Callbacks must be fast; they sit on the
// scheduling path.
func WithProgress(fn func(match.ProgressEvent)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// WithStats installs a callback that receives the run statistics after
// every completed Run.
func WithStats(fn func(match.RunStats)) RunnerOption {
	return func(r *Runner) { r.stats = fn }
}

// WithTransitiveClosure applies the transitive closure to the match set
// at the end of every run — the Appendix A post-processing step the
// paper prescribes for the RULES matcher.
func WithTransitiveClosure() RunnerOption {
	return func(r *Runner) { r.closure = true }
}

// WithOrder sets the serial scheduling discipline of the active set.
// Output is order-invariant for well-behaved matchers; the knob shifts
// how quickly evidence accumulates. Ignored when parallelism > 1.
func WithOrder(o match.Order) RunnerOption {
	return func(r *Runner) { r.order = o }
}

// WithNegativeEvidence seeds the run with V− — pairs known NOT to match,
// passed to every matcher invocation (Definition 1).
func WithNegativeEvidence(neg match.PairSet) RunnerOption {
	return func(r *Runner) { r.negative = neg }
}

// WithBackend executes the neighborhood schemes (NO-MP, SMP, MMP) on the
// given execution backend instead of the default shared-memory pool —
// e.g. NewShardedBackend(k), which partitions the cover across k shards
// exchanging serialized evidence deltas. The output is identical for
// every backend (consistency, Theorems 2 and 4); backends trade where
// the matcher work runs. FULL and UB have no round structure and ignore
// the backend.
func WithBackend(b match.Backend) RunnerOption {
	return func(r *Runner) { r.backend = b }
}

// WithShardCount is shorthand for WithBackend(NewShardedBackend(k)):
// run on the shard-partitioned backend with k shards (k < 1 means one
// shard per CPU).
func WithShardCount(k int) RunnerOption {
	return func(r *Runner) { r.backend = NewShardedBackend(k) }
}

// WithCheckpointDir persists a checkpoint to dir after every completed
// round of a neighborhood-scheme run: the round's evidence delta plus
// the state needed to restart at the next round boundary, in the
// internal/wire format. A killed run is continued with Runner.Resume;
// a fresh Run clears any previous trail in dir first. Checkpointing
// forces the round-based executor even at parallelism 1 (the serial
// queue schedulers have no round boundaries to checkpoint). FULL and UB
// runs ignore the option.
//
// The trail is the MID-RUN durability mechanism: it replays rounds to
// recover a killed run. It is not the only persistence the engine has —
// completed state lives in a Store (see WithStore): a disk store holds
// the accumulated evidence in segment files and reopens on restart with
// no replay at all. The two compose; a long-lived service typically
// wants both (trail for mid-run kills, store for completed state).
func WithCheckpointDir(dir string) RunnerOption {
	return func(r *Runner) { r.ckptDir = dir }
}

// Runner builds a scheme executor for the named matcher ("mln", "rules",
// or any name passed to RegisterMatcher). The matcher is instantiated on
// first use and cached per experiment.
func (e *Experiment) Runner(matcher string, opts ...RunnerOption) (*Runner, error) {
	m, err := e.matcher(matcher)
	if err != nil {
		return nil, err
	}
	r := &Runner{exp: e, name: matcher, matcher: m}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Name returns the registry name of the runner's matcher.
func (r *Runner) Name() string { return r.name }

// Matcher returns the grounded matcher instance.
func (r *Runner) Matcher() match.Matcher { return r.matcher }

// coreConfig assembles the framework configuration for this runner.
func (r *Runner) coreConfig() core.Config {
	return core.Config{
		Cover:       r.exp.Cover,
		Matcher:     r.matcher,
		Relation:    r.exp.Dataset.Coauthor(),
		Negative:    r.negative,
		Order:       r.order,
		Parallelism: r.parallelism,
		Progress:    r.progress,
	}
}

// coreScheme maps a public scheme to the engine's canonical round-based
// scheme name, or "" for whole-set schemes (FULL, UB) that have no round
// structure.
func coreScheme(s Scheme) string {
	switch s {
	case SchemeNoMP:
		return "NO-MP"
	case SchemeSMP:
		return "SMP"
	case SchemeMMP:
		return "MMP"
	}
	return ""
}

// Run executes one scheme. The context cancels or deadlines the run
// between neighborhood evaluations; a canceled run returns ctx.Err().
// When a backend or a checkpoint directory is configured, the
// neighborhood schemes run on the round-based executor (see WithBackend
// and WithCheckpointDir).
func (r *Runner) Run(ctx context.Context, s Scheme) (*Result, error) {
	return r.run(ctx, s, false)
}

// Resume continues a previous checkpointed run of scheme s from the
// configured WithCheckpointDir directory: the persisted rounds are
// replayed from their serialized evidence deltas and execution picks up
// at the first unfinished round, landing on the same output the
// uninterrupted run would have produced (consistency). An empty
// directory resumes into a fresh run; a completed trail rebuilds the
// result without calling the matcher. The trail must come from the same
// scheme over the same experiment.
func (r *Runner) Resume(ctx context.Context, s Scheme) (*Result, error) {
	if r.ckptDir == "" {
		return nil, fmt.Errorf("cem: Resume requires WithCheckpointDir")
	}
	if coreScheme(s) == "" {
		return nil, fmt.Errorf("cem: scheme %q does not checkpoint (no round structure)", s)
	}
	return r.run(ctx, s, true)
}

func (r *Runner) run(ctx context.Context, s Scheme, resume bool) (*Result, error) {
	cfg := r.coreConfig()
	st, err := r.evidenceStore()
	if err != nil {
		return nil, err
	}
	if st != nil {
		cfg.Evidence = st
	}
	var raw *core.Result
	switch {
	case coreScheme(s) != "" && (r.backend != nil || r.ckptDir != "" || st != nil):
		b := r.backend
		if b == nil {
			b = core.PoolBackend{}
		}
		raw, err = core.RunBackend(ctx, cfg, coreScheme(s), b,
			core.CheckpointConfig{Dir: r.ckptDir, Resume: resume, Matcher: r.name})
	case s == SchemeNoMP:
		raw, err = core.NoMP(ctx, cfg)
	case s == SchemeSMP:
		raw, err = core.SMP(ctx, cfg)
	case s == SchemeMMP:
		raw, err = core.MMP(ctx, cfg)
	case s == SchemeFull:
		raw, err = core.Full(ctx, cfg)
	case s == SchemeUB:
		raw, err = core.UB(ctx, cfg, r.exp.Truth)
	default:
		return nil, fmt.Errorf("cem: unknown scheme %q", s)
	}
	if err != nil {
		return nil, err
	}
	return r.seal(raw), nil
}

// seal applies the runner's post-processing (transitive closure, stats
// callback) to a raw engine result and wraps it with provenance.
func (r *Runner) seal(raw *core.Result) *Result {
	res := &Result{Result: raw, Matcher: r.name, Closed: r.closure}
	if r.closure {
		res.preClosure = raw.Matches
		raw.Matches = r.exp.TransitiveClosure(raw.Matches)
	}
	if r.stats != nil {
		r.stats(raw.Stats)
	}
	return res
}

// RunFrom executes scheme s as a warm-started continuation: the run is
// seeded with a prior snapshot's evidence and outstanding maximal
// messages, and only the neighborhoods in activeSeed (plus whatever
// their new matches re-activate) are evaluated — the incremental
// counterpart of Run after records were ingested on top of the snapshot
// run. The snapshot may come from a smaller experiment: its entity
// space must embed into the current cover's (ids stable, only appended),
// which is exactly what Pipeline.Update guarantees.
//
// The continuation runs on the round-based executor (the runner's
// backend, or the shared-memory pool). With WithCheckpointDir the seed
// itself is persisted as the trail's first record, so a killed
// continuation resumes through the ordinary Runner.Resume path. For
// well-behaved delta-monotone matchers the result is identical to a
// cold Run over the grown experiment (see the incremental differential
// harness); schemes without round structure (FULL, UB) have no
// incremental path and are rejected.
func (r *Runner) RunFrom(ctx context.Context, s Scheme, snap *Snapshot, activeSeed []int32) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("cem: RunFrom requires a snapshot (use Run for cold runs)")
	}
	cs := coreScheme(s)
	if cs == "" {
		return nil, fmt.Errorf("cem: scheme %q has no incremental path (no round structure)", s)
	}
	if snap.Scheme != "" && snap.Scheme != s {
		return nil, fmt.Errorf("cem: snapshot was taken from scheme %q, continuing %q", snap.Scheme, s)
	}
	if snap.Matcher != "" && snap.Matcher != r.name {
		return nil, fmt.Errorf("cem: snapshot was produced by matcher %q, continuing with %q", snap.Matcher, r.name)
	}
	if snap.Entities > r.exp.Cover.NumEntities {
		return nil, fmt.Errorf("cem: snapshot spans %d entities but the cover holds %d (snapshots only embed into grown experiments)",
			snap.Entities, r.exp.Cover.NumEntities)
	}
	if snap.Neighborhoods > r.exp.Cover.Len() {
		return nil, fmt.Errorf("cem: snapshot spans %d neighborhoods but the cover holds %d (snapshots only embed into grown experiments)",
			snap.Neighborhoods, r.exp.Cover.Len())
	}
	b := r.backend
	if b == nil {
		b = core.PoolBackend{}
	}
	cfg := r.coreConfig()
	st, err := r.evidenceStore()
	if err != nil {
		return nil, err
	}
	if st != nil {
		cfg.Evidence = st
	}
	warm := &core.WarmStart{Evidence: snap.Evidence, Messages: snap.Messages, Active: activeSeed}
	raw, err := core.RunBackendFrom(ctx, cfg, cs, b,
		core.CheckpointConfig{Dir: r.ckptDir, Matcher: r.name}, warm)
	if err != nil {
		return nil, err
	}
	return r.seal(raw), nil
}

// GridConfig configures the simulated grid executor (§6.3). Aliased so
// external modules can build one without importing internal packages.
type GridConfig = grid.Config

// GridResult is the outcome of a simulated-grid run.
type GridResult = grid.Result

// RunGrid executes one scheme on the simulated grid (§6.3): parallel
// rounds with real goroutine execution and a simulated G-machine clock.
// The configuration is validated up front; an invalid one (e.g. zero
// machines) is reported as an error rather than a panic deep in the
// executor.
func (r *Runner) RunGrid(ctx context.Context, s Scheme, gcfg grid.Config) (*grid.Result, error) {
	if err := gcfg.Validate(); err != nil {
		return nil, fmt.Errorf("cem: grid config: %w", err)
	}
	cfg := r.coreConfig()
	var (
		res *grid.Result
		err error
	)
	switch s {
	case SchemeNoMP:
		res, err = grid.NoMP(ctx, cfg, gcfg)
	case SchemeSMP:
		res, err = grid.SMP(ctx, cfg, gcfg)
	case SchemeMMP:
		res, err = grid.MMP(ctx, cfg, gcfg)
	default:
		return nil, fmt.Errorf("cem: scheme %q not supported on the grid", s)
	}
	if err != nil {
		return nil, err
	}
	if r.closure {
		res.Matches = r.exp.TransitiveClosure(res.Matches)
	}
	return res, nil
}

// Run executes one scheme with one matcher and returns the result.
//
// Deprecated: build a Runner and pass a context; this wrapper uses
// context.Background and no options.
func (e *Experiment) Run(s Scheme, kind MatcherKind) (*Result, error) {
	r, err := e.Runner(kind)
	if err != nil {
		return nil, err
	}
	return r.Run(context.Background(), s)
}

// RunGrid executes one scheme on the simulated grid (§6.3).
//
// Deprecated: build a Runner and use Runner.RunGrid with a context.
func (e *Experiment) RunGrid(s Scheme, kind MatcherKind, gcfg grid.Config) (*grid.Result, error) {
	r, err := e.Runner(kind)
	if err != nil {
		return nil, err
	}
	return r.RunGrid(context.Background(), s, gcfg)
}
