//go:build !race

package cem_test

// raceEnabled reports whether the race detector instruments this build;
// allocation regression bounds are meaningless under its inflation.
const raceEnabled = false
