package cem_test

// Tests for the end-to-end ingestion pipeline: records in, matches and
// metrics out, through public packages only.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	cem "repro"
)

// TestPipelineShardedIdenticalToSerial is the acceptance check: on the
// HEPTH and DBLP seeds, the pipeline's sharded blocking produces the
// exact same cover and the exact same match set as a single-shard run.
func TestPipelineShardedIdenticalToSerial(t *testing.T) {
	for _, kind := range []cem.DatasetKind{cem.HEPTH, cem.DBLP} {
		records, err := cem.GenerateRecords(kind, 0.25, 42)
		if err != nil {
			t.Fatal(err)
		}
		run := func(shards int) *cem.PipelineResult {
			t.Helper()
			pipe, err := cem.NewPipeline(
				cem.WithMatcher(cem.MatcherMLN),
				cem.WithScheme(cem.SchemeSMP),
				cem.WithShards(shards),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pipe.Run(context.Background(), records)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		serial := run(1)
		for _, shards := range []int{2, 5, 0} {
			sharded := run(shards)
			if !reflect.DeepEqual(sharded.Experiment.Cover.Sets, serial.Experiment.Cover.Sets) {
				t.Errorf("%s shards=%d: sharded cover differs from serial", kind, shards)
			}
			if !sharded.Matches.Equal(serial.Matches) {
				t.Errorf("%s shards=%d: %d matches, serial %d",
					kind, shards, sharded.Matches.Len(), serial.Matches.Len())
			}
		}
	}
}

// TestPipelineAgreesWithExperimentPath: records → pipeline equals
// dataset → New → Runner on the same corpus, and the metrics match a
// direct evaluation.
func TestPipelineAgreesWithExperimentPath(t *testing.T) {
	d := cem.NewDataset(cem.DBLP, 0.2, 11)
	exp, err := cem.New(d)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherRules)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}

	pipe, err := cem.NewPipeline(cem.WithMatcher(cem.MatcherRules), cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pipe.Run(context.Background(), cem.RecordsFromDataset(d))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matches.Equal(want.Matches) {
		t.Fatalf("pipeline %d matches, experiment path %d", got.Matches.Len(), want.Matches.Len())
	}
	if !got.Labeled || got.Report == nil || got.BCubed == nil {
		t.Fatal("fully labeled records must produce metrics")
	}
	if got.Report.PRF != exp.Evaluate(want).PRF {
		t.Errorf("pipeline report %v != direct evaluation %v", got.Report.PRF, exp.Evaluate(want).PRF)
	}
	if *got.BCubed != exp.EvaluateBCubed(want) {
		t.Errorf("pipeline B³ %v != direct %v", *got.BCubed, exp.EvaluateBCubed(want))
	}
	if got.Records != d.NumRefs() {
		t.Errorf("Records = %d, want %d", got.Records, d.NumRefs())
	}
}

// TestPipelineUnlabeledRecords: records without gold labels run fine
// and simply skip the metrics.
func TestPipelineUnlabeledRecords(t *testing.T) {
	records := []cem.Record{
		cem.BasicRecord{Key: "Vibhor Rastogi", Group: 1, Gold: -1},
		cem.BasicRecord{Key: "Nilesh Dalvi", Group: 1, Gold: -1},
		cem.BasicRecord{Key: "Minos Garofalakis", Group: 1, Gold: -1},
		cem.BasicRecord{Key: "V. Rastogi", Group: 2, Gold: -1},
		cem.BasicRecord{Key: "N. Dalvi", Group: 2, Gold: -1},
		cem.BasicRecord{Key: "M. Garofalakis", Group: 2, Gold: -1},
	}
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeMMP))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labeled || res.Report != nil || res.BCubed != nil {
		t.Error("unlabeled records must not produce metrics")
	}
	// The repeated trio is the Figure 2 situation: MMP recovers all
	// three cross-paper pairs.
	if res.Matches.Len() != 3 {
		t.Errorf("MMP found %d matches on the repeated trio, want 3: %v",
			res.Matches.Len(), res.Matches.Sorted())
	}
}

// TestPipelineKeyOnlyRecords: a record type implementing only
// RecordKey (no group, no gold) is accepted.
type keyOnly string

func (k keyOnly) RecordKey() string { return string(k) }

func TestPipelineKeyOnlyRecords(t *testing.T) {
	pipe, err := cem.NewPipeline(cem.WithMatcher(cem.MatcherRules))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(context.Background(), []cem.Record{
		keyOnly("John Smith"), cem.KeyRecord("John Smith"), cem.KeyRecord("Jane Roe"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labeled {
		t.Error("key-only records reported as labeled")
	}
	if res.Records != 3 {
		t.Errorf("Records = %d", res.Records)
	}
}

// TestMaxNeighborhoodCommutesWithBlocking: WithMaxNeighborhood is not
// lost when WithBlocking appears after it.
func TestMaxNeighborhoodCommutesWithBlocking(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...cem.PipelineOption) int {
		t.Helper()
		pipe, err := cem.NewPipeline(append(opts,
			cem.WithMatcher(cem.MatcherRules), cem.WithScheme(cem.SchemeNoMP))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pipe.Run(context.Background(), records)
		if err != nil {
			t.Fatal(err)
		}
		return res.Experiment.Cover.ComputeStats().Neighborhoods
	}
	blocking := cem.DefaultOptions().Canopy
	before := run(cem.WithMaxNeighborhood(4), cem.WithBlocking(blocking))
	after := run(cem.WithBlocking(blocking), cem.WithMaxNeighborhood(4))
	unbounded := run(cem.WithBlocking(blocking))
	if before != after {
		t.Errorf("option order changed the cover: %d vs %d neighborhoods", before, after)
	}
	if before == unbounded {
		t.Errorf("bound had no effect (%d neighborhoods with and without)", before)
	}
}

// TestPublicRecordsRoundTrip: cem.WriteRecords / cem.ReadRecords
// round-trip records (including ungrouped/unlabeled) without touching
// internal packages.
func TestPublicRecordsRoundTrip(t *testing.T) {
	records := []cem.Record{
		cem.BasicRecord{Key: "V. Rastogi", Group: 2, Gold: 7},
		cem.KeyRecord("Jane Roe"),
	}
	var buf strings.Builder
	if err := cem.WriteRecords(&buf, "rt", records); err != nil {
		t.Fatal(err)
	}
	name, got, err := cem.ReadRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if name != "rt" || len(got) != 2 {
		t.Fatalf("name=%q records=%d", name, len(got))
	}
	want := []cem.BasicRecord{
		{Key: "V. Rastogi", Group: 2, Gold: 7},
		{Key: "Jane Roe", Group: -1, Gold: -1},
	}
	for i, r := range got {
		if r.(cem.BasicRecord) != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

// TestPipelineOptionValidation: malformed configurations fail at
// construction (blocking, shards, scheme, matcher name) or at Run
// (unregistered matcher), never panic.
func TestPipelineOptionValidation(t *testing.T) {
	bad := cem.CanopyConfig{Loose: 0.9, Tight: 0.2, Q: 2}
	if _, err := cem.NewPipeline(cem.WithBlocking(bad)); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if _, err := cem.NewPipeline(cem.WithShards(-1)); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := cem.NewPipeline(cem.WithScheme("bogus")); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := cem.NewPipeline(cem.WithMatcher("")); err == nil {
		t.Error("empty matcher accepted")
	}
	if _, err := cem.NewPipeline(cem.WithMaxNeighborhood(-2)); err == nil {
		t.Error("negative neighborhood bound accepted")
	}
	pipe, err := cem.NewPipeline(cem.WithMatcher("no-such-matcher"))
	if err != nil {
		t.Fatal(err)
	}
	recs := []cem.Record{cem.BasicRecord{Key: "A B", Group: -1, Gold: -1}}
	if _, err := pipe.Run(context.Background(), recs); err == nil ||
		!strings.Contains(err.Error(), "no-such-matcher") {
		t.Errorf("unregistered matcher: err = %v", err)
	}
	ok, err := cem.NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Run(context.Background(), nil); err == nil {
		t.Error("empty record list accepted")
	}
}

// TestPipelineMaxNeighborhoodBound: the size bound flows from the
// option into blocking; tighter bounds mean more, smaller
// neighborhoods.
func TestPipelineMaxNeighborhoodBound(t *testing.T) {
	records, err := cem.GenerateRecords(cem.HEPTH, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func(bound int) *cem.PipelineResult {
		pipe, err := cem.NewPipeline(
			cem.WithMatcher(cem.MatcherRules),
			cem.WithScheme(cem.SchemeNoMP),
			cem.WithMaxNeighborhood(bound),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pipe.Run(context.Background(), records)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unbounded := run(0).Experiment.Cover.ComputeStats()
	bounded := run(8).Experiment.Cover.ComputeStats()
	if bounded.MeanSize >= unbounded.MeanSize {
		t.Errorf("bound 8 did not shrink neighborhoods: %v vs %v", bounded, unbounded)
	}
	if bounded.Neighborhoods <= unbounded.Neighborhoods {
		t.Errorf("bound 8 did not fragment the cover: %v vs %v", bounded, unbounded)
	}
}

// TestPipelineCancellation: a canceled context aborts the pipeline with
// ctx.Err(), from the blocking stage on.
func TestPipelineCancellation(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := cem.NewPipeline(cem.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := pipe.Run(ctx, records); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunGridSurfacesConfigErrors: an invalid grid configuration is an
// error from the public API, not a panic deep in internal/grid.
func TestRunGridSurfacesConfigErrors(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.15, 3))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherRules)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []cem.GridConfig{
		{Machines: 0},
		{Machines: -3},
		{Machines: 4, RoundOverhead: -time.Second},
		{Machines: 4, Workers: -1},
	} {
		if _, err := runner.RunGrid(context.Background(), cem.SchemeSMP, bad); err == nil {
			t.Errorf("invalid grid config %+v accepted", bad)
		}
	}
	// A valid config still works.
	if _, err := runner.RunGrid(context.Background(), cem.SchemeSMP,
		cem.GridConfig{Machines: 4, Seed: 1}); err != nil {
		t.Errorf("valid grid config rejected: %v", err)
	}
}

// TestPipelineStats: the cumulative counters accumulate across
// Run/Update calls on one Pipeline — one cold start, then warm updates —
// and classify every Update as exactly one of cold/warm/forced.
func TestPipelineStats(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	if got := pipe.Stats(); got != (cem.PipelineStats{}) {
		t.Fatalf("fresh pipeline has nonzero stats: %+v", got)
	}

	n := len(records)
	cuts := []int{n * 7 / 10, n * 8 / 10, n * 9 / 10, n}
	var state *cem.PipelineResult
	lo, warm := 0, 0
	var calls, ingested, warmHits int64
	var cache cem.CacheReport
	for _, hi := range cuts {
		state, err = pipe.Update(context.Background(), state, records[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if state.WarmStarted {
			warm++
			warmHits += state.Stats.Cache.Hits
		}
		calls += int64(state.Stats.MatcherCalls)
		ingested += int64(hi - lo)
		cache.Hits += state.Stats.Cache.Hits
		cache.Misses += state.Stats.Cache.Misses
		cache.Invalidations += state.Stats.Cache.Invalidations
		lo = hi
	}

	got := pipe.Stats()
	if got.Updates != int64(len(cuts)) {
		t.Errorf("Updates = %d, want %d", got.Updates, len(cuts))
	}
	if got.ColdStarts != 1 {
		t.Errorf("ColdStarts = %d, want 1 (the first batch)", got.ColdStarts)
	}
	if got.WarmStarted != int64(warm) || got.WarmStarted == 0 {
		t.Errorf("WarmStarted = %d, want %d (> 0)", got.WarmStarted, warm)
	}
	if got.ColdStarts+got.WarmStarted+got.ForcedReruns != got.Updates {
		t.Errorf("cold %d + warm %d + forced %d != updates %d",
			got.ColdStarts, got.WarmStarted, got.ForcedReruns, got.Updates)
	}
	if got.MatcherCalls != calls {
		t.Errorf("MatcherCalls = %d, want %d", got.MatcherCalls, calls)
	}
	if got.RecordsIngested != ingested || ingested != int64(n) {
		t.Errorf("RecordsIngested = %d, want %d", got.RecordsIngested, n)
	}
	if got.Runs != 0 {
		t.Errorf("Runs = %d, want 0 (no Run calls)", got.Runs)
	}
	// The default mln matcher memoizes verdicts: the pipeline counters
	// must equal the per-update RunStats.Cache sum, and the warm updates
	// must actually be served hits (re-activated neighborhoods whose
	// relevant evidence did not change).
	if got.CacheHits != cache.Hits || got.CacheMisses != cache.Misses ||
		got.CacheInvalidations != cache.Invalidations {
		t.Errorf("cache counters = %d/%d/%d, want %d/%d/%d (sum of per-update reports)",
			got.CacheHits, got.CacheMisses, got.CacheInvalidations,
			cache.Hits, cache.Misses, cache.Invalidations)
	}
	if got.CacheMisses == 0 {
		t.Error("CacheMisses = 0: no evaluation ever consulted the memo")
	}
	if warmHits == 0 {
		t.Error("warm incremental updates recorded no cache hits")
	}

	// A cold Run on the same pipeline lands in Runs, not Updates.
	if _, err := pipe.Run(context.Background(), records); err != nil {
		t.Fatal(err)
	}
	got = pipe.Stats()
	if got.Runs != 1 {
		t.Errorf("after Run: Runs = %d, want 1", got.Runs)
	}
	if got.RecordsIngested != ingested+int64(n) {
		t.Errorf("after Run: RecordsIngested = %d, want %d", got.RecordsIngested, ingested+int64(n))
	}
}
