# Developer entry points. CI runs the same targets.

GO       ?= go
GOFLAGS  ?=
PR       ?= 9
BENCHOUT ?= BENCH_$(PR).json

# BENCH_LABEL is the label bench-json stores its run under, and the run
# bench-compare grades; BASELINE_LABEL is the committed reference it is
# graded against. CI and local runs share these knobs, so the gate and a
# developer's `make bench-json bench-compare` see the same data. The
# committed baseline and the gated run MUST use the same benchtimes —
# iteration count shifts pooled benchmarks' per-op numbers, which is how
# the PR-3 baseline (20x) became unreproducible under the old 3x gate.
BENCH_LABEL    ?= current
BASELINE_LABEL ?= pr6-baseline

# Benchmarks recorded in the committed trajectory: the scheme executors
# (the matching hot path this engine optimizes), the blocking stage, and
# the matcher-level micro-benchmarks (grounding, warm Match, and the
# verdict-memo hit/miss/maximal paths).
SCHEME_BENCH   = ^Benchmark(NoMP|SMP|MMP|UB|Full|Blocking|Pipeline|Setup|Grid)
MATCHER_BENCH  = ^Benchmark(New|MatchWarm|MemoHit|MemoMiss|MemoMaximal)$$
# The storage-backend RSS benchmark matches the million-reference corpus
# once per backend in a child process and reports the kernel-measured
# peak RSS (maxrss-mb). Always 1x: each iteration is a full-corpus run.
STORE_BENCH    = ^BenchmarkMillionStoreRSS$$
BENCHTIME     ?= 5x
# The matcher micro-benchmarks are microsecond-scale; at single-digit
# iteration counts their numbers are dominated by pool warm-up and
# scheduler noise (a 40µs op sampled 3 times swings ±50%), so they get
# their own, much higher iteration floor.
MATCHER_BENCHTIME ?= 500x

.PHONY: build test race bench bench-json bench-compare bench-rss cover cover-check fuzz fmt vet clean service-smoke chaos-smoke store-smoke scale-test

build:
	$(GO) build $(GOFLAGS) ./...

test:
	$(GO) test $(GOFLAGS) ./...

race:
	$(GO) test $(GOFLAGS) -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet $(GOFLAGS) ./...

# bench prints the hot-path benchmark table.
bench:
	$(GO) test $(GOFLAGS) -run '^$$' -bench '$(SCHEME_BENCH)' -benchmem -benchtime $(BENCHTIME) .
	$(GO) test $(GOFLAGS) -run '^$$' -bench '$(MATCHER_BENCH)' -benchmem -benchtime $(MATCHER_BENCHTIME) ./internal/mln/

# bench-json refreshes the $(BENCH_LABEL) run in $(BENCHOUT), preserving
# any other labels (e.g. the committed baseline) already there. A
# failing benchmark run fails the target — no partial trajectories.
bench-json:
	@$(GO) test $(GOFLAGS) -run '^$$' -bench '$(SCHEME_BENCH)' -benchmem -benchtime $(BENCHTIME) . > .bench.scheme.tmp \
	 && $(GO) test $(GOFLAGS) -run '^$$' -bench '$(MATCHER_BENCH)' -benchmem -benchtime $(MATCHER_BENCHTIME) ./internal/mln/ > .bench.mln.tmp \
	 && $(GO) test $(GOFLAGS) -run '^$$' -bench '$(STORE_BENCH)' -benchtime 1x -timeout 60m ./internal/store/ > .bench.store.tmp \
	 && cat .bench.scheme.tmp .bench.mln.tmp .bench.store.tmp | $(GO) run $(GOFLAGS) ./cmd/benchjson -o $(BENCHOUT) -label $(BENCH_LABEL); \
	 status=$$?; rm -f .bench.scheme.tmp .bench.mln.tmp .bench.store.tmp; exit $$status

# bench-compare is the regression gate: fail if $(BENCH_LABEL) regressed
# against $(BASELINE_LABEL) beyond the thresholds (>25% ns/op on the
# same machine, >10% allocs/op anywhere). CI runs it after bench-json.
bench-compare:
	$(GO) run $(GOFLAGS) ./cmd/benchjson -o $(BENCHOUT) -compare $(BASELINE_LABEL) -label $(BENCH_LABEL)

# cover runs the test suite with a coverage profile and grades it
# against the committed ratchet; cover-check grades an existing
# coverage.out (CI reuses the race run's profile). The floor in
# coverage_floor.txt only ever moves up — raise it when coverage grows,
# never lower it to make a regression pass.
cover:
	$(GO) test $(GOFLAGS) -covermode=atomic -coverprofile=coverage.out ./...
	$(MAKE) cover-check

cover-check:
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat coverage_floor.txt); \
	echo "total coverage: $${total}% (committed floor: $${floor}%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' \
	  || { echo "FAIL: total coverage $${total}% dropped below the committed floor $${floor}%"; exit 1; }

# bench-rss prints the storage backends' peak-RSS table for the
# million-reference corpus (also folded into bench-json / BENCH_9.json
# as the maxrss-mb column).
bench-rss:
	$(GO) test $(GOFLAGS) -run '^$$' -bench '$(STORE_BENCH)' -benchtime 1x -timeout 60m -v ./internal/store/

# scale-test runs the gated bounded-RSS acceptance test: the
# million-reference corpus matched under both storage backends, the
# disk store asserted under an absolute RSS bound the mem store
# exceeds. Needs several GB of RAM and a few minutes.
scale-test:
	STORE_SCALE_TEST=1 $(GO) test $(GOFLAGS) -run '^TestMillionStoreRSS$$' -count=1 -v -timeout 60m ./internal/store/

# service-smoke drives the emserve binary end to end as a black box:
# start, POST, GET, SIGTERM, assert a clean checkpoint, restart into the
# identical state. CI runs it as its own job.
service-smoke:
	bash scripts/service-smoke.sh

# store-smoke drives the disk storage backend end to end as a black
# box: start emserve -store disk, ingest, SIGKILL with no drain,
# restart, assert the byte-identical state was recovered by reopening
# the store snapshot with ZERO neighborhood evaluations (the matcher
# counter stays 0), then keep ingesting incrementally. CI runs it as
# its own job.
store-smoke:
	bash scripts/store-smoke.sh

# chaos-smoke drives the sharded-net backend with real OS processes: a
# coordinator against 3 emworker processes, one SIGKILLed at its round-2
# assignment, asserting the match set stays byte-identical to a cold
# single-process run. CI runs it as its own job.
chaos-smoke:
	bash scripts/chaos-smoke.sh

# fuzz smoke-runs the engine's two correctness-critical fuzz targets:
# dense-vs-naive scoring and the wire codec round trip (the nightly CI
# job runs every Fuzz* target for longer).
fuzz:
	$(GO) test $(GOFLAGS) -run '^$$' -fuzz FuzzDenseLogScore -fuzztime 10s ./internal/mln/
	$(GO) test $(GOFLAGS) -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime 10s ./internal/wire/

clean:
	$(GO) clean ./...
