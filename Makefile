# Developer entry points. CI runs the same targets.

GO       ?= go
PR       ?= 3
BENCHOUT ?= BENCH_$(PR).json

# Benchmarks recorded in the committed trajectory: the scheme executors
# (the matching hot path this engine optimizes), the blocking stage, and
# the matcher-level micro-benchmarks (grounding + warm Match).
SCHEME_BENCH   = ^Benchmark(NoMP|SMP|MMP|UB|Full|Blocking|Pipeline|Setup|Grid)
MATCHER_BENCH  = ^Benchmark(New|MatchWarm)$$
BENCHTIME     ?= 5x

.PHONY: build test race bench bench-json fuzz fmt vet clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench prints the hot-path benchmark table.
bench:
	$(GO) test -run '^$$' -bench '$(SCHEME_BENCH)' -benchmem -benchtime $(BENCHTIME) .
	$(GO) test -run '^$$' -bench '$(MATCHER_BENCH)' -benchmem -benchtime $(BENCHTIME) ./internal/mln/

# bench-json refreshes the "current" run in $(BENCHOUT), preserving any
# other labels (e.g. the pre-engine baseline) already committed there. A
# failing benchmark run fails the target — no partial trajectories.
bench-json:
	@$(GO) test -run '^$$' -bench '$(SCHEME_BENCH)' -benchmem -benchtime $(BENCHTIME) . > .bench.scheme.tmp \
	 && $(GO) test -run '^$$' -bench '$(MATCHER_BENCH)' -benchmem -benchtime $(BENCHTIME) ./internal/mln/ > .bench.mln.tmp \
	 && cat .bench.scheme.tmp .bench.mln.tmp | $(GO) run ./cmd/benchjson -o $(BENCHOUT) -label current; \
	 status=$$?; rm -f .bench.scheme.tmp .bench.mln.tmp; exit $$status

# fuzz smoke-runs the dense-vs-naive scoring fuzz target (the one this
# engine's correctness leans on; similarity/canopy/bib have further fuzz
# targets runnable the same way).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDenseLogScore -fuzztime 10s ./internal/mln/

clean:
	$(GO) clean ./...
