# Developer entry points. CI runs the same targets.

GO       ?= go
GOFLAGS  ?=
PR       ?= 4
BENCHOUT ?= BENCH_$(PR).json

# BENCH_LABEL is the label bench-json stores its run under, and the run
# bench-compare grades; BASELINE_LABEL is the committed reference it is
# graded against. CI and local runs share these knobs, so the gate and a
# developer's `make bench-json bench-compare` see the same data.
BENCH_LABEL    ?= current
BASELINE_LABEL ?= pr3-baseline

# Benchmarks recorded in the committed trajectory: the scheme executors
# (the matching hot path this engine optimizes), the blocking stage, and
# the matcher-level micro-benchmarks (grounding + warm Match).
SCHEME_BENCH   = ^Benchmark(NoMP|SMP|MMP|UB|Full|Blocking|Pipeline|Setup|Grid)
MATCHER_BENCH  = ^Benchmark(New|MatchWarm)$$
BENCHTIME     ?= 5x

.PHONY: build test race bench bench-json bench-compare fuzz fmt vet clean

build:
	$(GO) build $(GOFLAGS) ./...

test:
	$(GO) test $(GOFLAGS) ./...

race:
	$(GO) test $(GOFLAGS) -race ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet $(GOFLAGS) ./...

# bench prints the hot-path benchmark table.
bench:
	$(GO) test $(GOFLAGS) -run '^$$' -bench '$(SCHEME_BENCH)' -benchmem -benchtime $(BENCHTIME) .
	$(GO) test $(GOFLAGS) -run '^$$' -bench '$(MATCHER_BENCH)' -benchmem -benchtime $(BENCHTIME) ./internal/mln/

# bench-json refreshes the $(BENCH_LABEL) run in $(BENCHOUT), preserving
# any other labels (e.g. the committed baseline) already there. A
# failing benchmark run fails the target — no partial trajectories.
bench-json:
	@$(GO) test $(GOFLAGS) -run '^$$' -bench '$(SCHEME_BENCH)' -benchmem -benchtime $(BENCHTIME) . > .bench.scheme.tmp \
	 && $(GO) test $(GOFLAGS) -run '^$$' -bench '$(MATCHER_BENCH)' -benchmem -benchtime $(BENCHTIME) ./internal/mln/ > .bench.mln.tmp \
	 && cat .bench.scheme.tmp .bench.mln.tmp | $(GO) run $(GOFLAGS) ./cmd/benchjson -o $(BENCHOUT) -label $(BENCH_LABEL); \
	 status=$$?; rm -f .bench.scheme.tmp .bench.mln.tmp; exit $$status

# bench-compare is the regression gate: fail if $(BENCH_LABEL) regressed
# against $(BASELINE_LABEL) beyond the thresholds (>25% ns/op on the
# same machine, >10% allocs/op anywhere). CI runs it after bench-json.
bench-compare:
	$(GO) run $(GOFLAGS) ./cmd/benchjson -o $(BENCHOUT) -compare $(BASELINE_LABEL) -label $(BENCH_LABEL)

# fuzz smoke-runs the engine's two correctness-critical fuzz targets:
# dense-vs-naive scoring and the wire codec round trip (the nightly CI
# job runs every Fuzz* target for longer).
fuzz:
	$(GO) test $(GOFLAGS) -run '^$$' -fuzz FuzzDenseLogScore -fuzztime 10s ./internal/mln/
	$(GO) test $(GOFLAGS) -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime 10s ./internal/wire/

clean:
	$(GO) clean ./...
