package cem_test

// Golden-baseline regression tests: the exact match sets produced on the
// HEPTH and DBLP seed corpora, per scheme × matcher, are pinned in
// testdata/golden/. Any change to blocking, candidate generation, the
// matchers or the message-passing schemes that shifts a single pair
// fails here.
//
// To refresh the fixtures after an INTENDED behavior change:
//
//	go test -run TestGoldenMatchSets -update
//
// then review the fixture diff like any other code change.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cem "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite golden match-set fixtures")

// goldenSeeds pins the corpora: the same scale/seed the identity and
// benchmark tests use.
var goldenSeeds = []struct {
	kind  cem.DatasetKind
	scale float64
	seed  int64
}{
	{cem.HEPTH, 0.25, 42},
	{cem.DBLP, 0.25, 42},
}

// goldenMatrix lists every scheme each built-in matcher supports (MMP
// needs a Type-II matcher, UB a conditional decider — MLN only).
var goldenMatrix = map[string][]cem.Scheme{
	cem.MatcherMLN:   {cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP, cem.SchemeFull, cem.SchemeUB},
	cem.MatcherRules: {cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull},
}

// renderMatches serializes a match set in canonical fixture form: one
// "a b" pair per line, sorted, with a count header for readable diffs.
func renderMatches(res *cem.Result) string {
	pairs := res.Matches.Sorted()
	var b strings.Builder
	fmt.Fprintf(&b, "# %d matches\n", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&b, "%d %d\n", p.A, p.B)
	}
	return b.String()
}

func TestGoldenMatchSets(t *testing.T) {
	for _, ds := range goldenSeeds {
		exp, err := cem.New(cem.NewDataset(ds.kind, ds.scale, ds.seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, matcher := range []string{cem.MatcherMLN, cem.MatcherRules} {
			runner, err := exp.Runner(matcher)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := exp.Runner(matcher, cem.WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}
			shardCounts := []int{1, 2, 4}
			sharded := make([]*cem.Runner, len(shardCounts))
			shardedNet := make([]*cem.Runner, len(shardCounts))
			for i, k := range shardCounts {
				sharded[i], err = exp.Runner(matcher, cem.WithShardCount(k))
				if err != nil {
					t.Fatal(err)
				}
				shardedNet[i], err = exp.Runner(matcher, cem.WithBackend(cem.NewShardedNetBackend(k)))
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, scheme := range goldenMatrix[matcher] {
				name := fmt.Sprintf("%s-%s-%s", ds.kind, matcher, scheme)
				t.Run(name, func(t *testing.T) {
					res, err := runner.Run(context.Background(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					got := renderMatches(res)
					path := filepath.Join("testdata", "golden", name+".golden")
					if *updateGolden {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing fixture %s (run `go test -run TestGoldenMatchSets -update`): %v", path, err)
					}
					if got != string(want) {
						t.Errorf("match set diverges from %s\ngot:  %s\nwant: %s\n(re-run with -update if the change is intended)",
							path, firstDiff(got, string(want)), path)
					}
					// The parallel executors must land on the byte-identical
					// fixture (consistency, Theorems 2 and 4). FULL and UB
					// have no parallel path; skip the redundant re-run.
					if scheme == cem.SchemeFull || scheme == cem.SchemeUB {
						return
					}
					pres, err := parallel.Run(context.Background(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					if pgot := renderMatches(pres); pgot != string(want) {
						t.Errorf("parallel(4) match set diverges from %s: %s",
							path, firstDiff(pgot, string(want)))
					}
					// The shard-partitioned backend — private evidence
					// replicas synchronized only by serialized delta
					// batches — must also land on the byte-identical
					// fixture for every shard count (consistency again;
					// the wire codec must be lossless for that to hold).
					for i, k := range shardCounts {
						sres, err := sharded[i].Run(context.Background(), scheme)
						if err != nil {
							t.Fatal(err)
						}
						if sgot := renderMatches(sres); sgot != string(want) {
							t.Errorf("sharded(%d) match set diverges from %s: %s",
								k, path, firstDiff(sgot, string(want)))
						}
					}
					// The distributed sharded-net backend — coordinator plus
					// K wire-connected workers — must reproduce the fixture
					// too: the worker boundary adds supervision, never
					// semantics.
					for i, k := range shardCounts {
						nres, err := shardedNet[i].Run(context.Background(), scheme)
						if err != nil {
							t.Fatal(err)
						}
						if ngot := renderMatches(nres); ngot != string(want) {
							t.Errorf("sharded-net(%d) match set diverges from %s: %s",
								k, path, firstDiff(ngot, string(want)))
						}
					}
				})
			}
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d: %q (fixture has %q)", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length %d vs fixture %d lines", len(g), len(w))
}

// TestGoldenPipelineAgreesWithClassicPath: the records→pipeline path
// must land on the exact same fixtures as the dataset→Experiment path —
// ingestion and sharded blocking add nothing and lose nothing.
func TestGoldenPipelineAgreesWithClassicPath(t *testing.T) {
	for _, ds := range goldenSeeds {
		records, err := cem.GenerateRecords(ds.kind, ds.scale, ds.seed)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := cem.NewPipeline(
			cem.WithMatcher(cem.MatcherMLN),
			cem.WithScheme(cem.SchemeSMP),
			cem.WithShards(4),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pipe.Run(context.Background(), records)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("%s-%s-%s", ds.kind, cem.MatcherMLN, cem.SchemeSMP)
		path := filepath.Join("testdata", "golden", name+".golden")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Skipf("fixture %s not generated yet", path)
		}
		if got := renderMatches(res.Result); got != string(want) {
			t.Errorf("%s: pipeline match set diverges from golden fixture: %s",
				name, firstDiff(got, string(want)))
		}
	}
}
