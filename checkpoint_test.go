package cem_test

// Checkpoint/resume regression tests over the golden corpora: a run
// killed (via context cancellation) after any round boundary must, once
// resumed from the on-disk trail, land on the byte-identical golden
// fixture — and its statistics must be monotone over the checkpointed
// values (a resume may redo the interrupted round, never lose one).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	cem "repro"
	"repro/internal/wire"
	"repro/match"
)

// checkpointMatrix: the neighborhood schemes of the golden matrix (FULL
// and UB have no round structure, nothing to checkpoint).
var checkpointMatrix = map[string][]cem.Scheme{
	cem.MatcherMLN:   {cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP},
	cem.MatcherRules: {cem.SchemeNoMP, cem.SchemeSMP},
}

// lastCheckpoint decodes the highest-round checkpoint in dir; nil when
// the trail is empty.
func lastCheckpoint(t *testing.T, dir string) *wire.Checkpoint {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "round-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		return nil
	}
	sort.Strings(files)
	raw, err := os.ReadFile(files[len(files)-1])
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wire.UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatalf("decoding %s: %v", files[len(files)-1], err)
	}
	return ck
}

// assertMonotone fails if any deterministic counter shrank from the
// checkpointed snapshot to the resumed run's final statistics.
func assertMonotone(t *testing.T, ck *wire.Checkpoint, got match.RunStats) {
	t.Helper()
	if ck == nil {
		return
	}
	s := ck.Stats
	type c struct {
		name     string
		was, now int
	}
	for _, x := range []c{
		{"Evaluations", s.Evaluations, got.Evaluations},
		{"MatcherCalls", s.MatcherCalls, got.MatcherCalls},
		{"MessagesSent", s.MessagesSent, got.MessagesSent},
		{"MaximalMessages", s.MaximalMessages, got.MaximalMessages},
		{"PromotedSets", s.PromotedSets, got.PromotedSets},
		{"ScoreChecks", s.ScoreChecks, got.ScoreChecks},
		{"Skips", s.Skips, got.Skips},
		{"ActiveSizes", len(s.ActiveSizes), len(got.ActiveSizes)},
	} {
		if x.now < x.was {
			t.Errorf("resumed %s = %d below checkpointed %d", x.name, x.now, x.was)
		}
	}
}

// TestCheckpointKillResumeGolden kills a checkpointed run after every
// round boundary r (r = 0 via an already-canceled context, r ≥ 1 by
// canceling at the first progress event of round r, which lets round r
// reduce and checkpoint, then aborts round r+1) and resumes it — for
// every scheme×matcher golden combination on both corpora. The resumed
// run must reproduce the golden fixture byte-for-byte. The kill runs on
// the pool backend; the resume continues the same trail on the sharded
// backend, so the trail format is proven backend-portable.
func TestCheckpointKillResumeGolden(t *testing.T) {
	for _, ds := range goldenSeeds {
		exp, err := cem.New(cem.NewDataset(ds.kind, ds.scale, ds.seed))
		if err != nil {
			t.Fatal(err)
		}
		for matcher, schemes := range checkpointMatrix {
			for _, scheme := range schemes {
				name := fmt.Sprintf("%s-%s-%s", ds.kind, matcher, scheme)
				t.Run(name, func(t *testing.T) {
					want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
					if err != nil {
						t.Fatalf("missing fixture: %v", err)
					}

					// Reference run: learn the round count R of the trail.
					refDir := t.TempDir()
					refRunner, err := exp.Runner(matcher, cem.WithCheckpointDir(refDir), cem.WithParallelism(2))
					if err != nil {
						t.Fatal(err)
					}
					res, err := refRunner.Run(context.Background(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					if got := renderMatches(res); got != string(want) {
						t.Fatalf("checkpointed run diverges from fixture: %s", firstDiff(got, string(want)))
					}
					last := lastCheckpoint(t, refDir)
					if last == nil || !last.Done {
						t.Fatal("completed run left no Done checkpoint")
					}
					rounds := last.Round

					for r := 0; r <= rounds; r++ {
						dir := t.TempDir()
						ctx, cancel := context.WithCancel(context.Background())
						opts := []cem.RunnerOption{cem.WithCheckpointDir(dir), cem.WithParallelism(2)}
						if r > 0 {
							target := r
							opts = append(opts, cem.WithProgress(func(e match.ProgressEvent) {
								if e.Round == target {
									cancel()
								}
							}))
						} else {
							cancel() // kill before any round completes
						}
						killed, err := exp.Runner(matcher, opts...)
						if err != nil {
							t.Fatal(err)
						}
						_, err = killed.Run(ctx, scheme)
						cancel()
						if err != nil && !errors.Is(err, context.Canceled) {
							t.Fatalf("kill after round %d: unexpected error %v", r, err)
						}
						ck := lastCheckpoint(t, dir)

						// Resume the trail on the sharded backend.
						resumer, err := exp.Runner(matcher,
							cem.WithCheckpointDir(dir), cem.WithShardCount(2))
						if err != nil {
							t.Fatal(err)
						}
						resumed, err := resumer.Resume(context.Background(), scheme)
						if err != nil {
							t.Fatalf("resume after round %d: %v", r, err)
						}
						if got := renderMatches(resumed); got != string(want) {
							t.Errorf("resume after round %d diverges from fixture: %s",
								r, firstDiff(got, string(want)))
						}
						assertMonotone(t, ck, resumed.Stats)
					}
				})
			}
		}
	}
}

// TestResumeWithoutCheckpointDir: Resume is only meaningful on a
// checkpoint-configured runner, and only for round-based schemes.
func TestResumeWithoutCheckpointDir(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Resume(context.Background(), cem.SchemeSMP); err == nil {
		t.Error("Resume without WithCheckpointDir succeeded")
	}
	ck, err := exp.Runner(cem.MatcherMLN, cem.WithCheckpointDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Resume(context.Background(), cem.SchemeFull); err == nil {
		t.Error("Resume of FULL (no round structure) succeeded")
	}
}

// TestResumeRejectsDifferentMatcher: a trail written by one matcher must
// not silently seed another matcher's run — the evidence deltas would
// hybridize the two outputs.
func TestResumeRejectsDifferentMatcher(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mln, err := exp.Runner(cem.MatcherMLN, cem.WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mln.Run(context.Background(), cem.SchemeSMP); err != nil {
		t.Fatal(err)
	}
	rules, err := exp.Runner(cem.MatcherRules, cem.WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rules.Resume(context.Background(), cem.SchemeSMP); err == nil {
		t.Error("resuming an mln-written trail with the rules matcher succeeded")
	}
}

// TestPipelineResume: a pipeline killed mid-matching resumes through
// Pipeline.Resume and matches an uninterrupted pipeline run exactly
// (blocking is deterministic, so the rebuilt cover equals the one the
// trail was written against).
func TestPipelineResume(t *testing.T) {
	records, err := cem.GenerateRecords(cem.HEPTH, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	build := func(dir string, extra ...cem.RunnerOption) *cem.Pipeline {
		t.Helper()
		ropts := append([]cem.RunnerOption{cem.WithCheckpointDir(dir)}, extra...)
		pipe, err := cem.NewPipeline(
			cem.WithMatcher(cem.MatcherMLN),
			cem.WithScheme(cem.SchemeSMP),
			cem.WithShards(2),
			cem.WithRunnerOptions(ropts...),
		)
		if err != nil {
			t.Fatal(err)
		}
		return pipe
	}

	clean, err := build(t.TempDir()).Run(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	killed := build(dir, cem.WithProgress(func(e match.ProgressEvent) {
		if e.Round == 1 {
			cancel()
		}
	}))
	if _, err := killed.Run(ctx, records); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected a canceled pipeline run, got %v", err)
	}
	cancel()

	resumed, err := build(dir).Resume(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Matches.Equal(clean.Matches) {
		t.Errorf("resumed pipeline diverges: %d vs %d matches",
			resumed.Matches.Len(), clean.Matches.Len())
	}
}
