package cem_test

// Tests for the redesigned public API: the matcher registry, the
// context-aware Runner, and the parallel executor. Everything here uses
// ONLY the public packages (repro and repro/match) — exactly what a
// third-party matcher author sees.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	cem "repro"
	"repro/match"
)

// strongOnly is a MatcherFunc-style black box registered through the
// public API: it matches exactly the strong-similarity candidates (plus
// the positive evidence it is handed, as the Matcher contract requires).
func strongOnly(mc cem.MatcherContext) (match.Matcher, error) {
	strong := match.NewPairSet()
	all := make([]match.Pair, 0, len(mc.Candidates))
	for _, c := range mc.Candidates {
		all = append(all, c.Pair)
		if c.Level == match.LevelStrong {
			strong.Add(c.Pair)
		}
	}
	inScope := func(entities []match.EntityID, p match.Pair) bool {
		a, b := false, false
		for _, e := range entities {
			a = a || e == p.A
			b = b || e == p.B
		}
		return a && b
	}
	return match.MatcherFunc{
		MatchFn: func(entities []match.EntityID, pos, neg match.PairSet) match.PairSet {
			out := match.NewPairSet()
			for p := range strong.All() {
				if inScope(entities, p) && !neg.Has(p) {
					out.Add(p)
				}
			}
			for p := range pos.All() {
				if inScope(entities, p) {
					out.Add(p)
				}
			}
			return out
		},
		CandidatesFn: func(entities []match.EntityID) []match.Pair {
			var out []match.Pair
			for _, p := range all {
				if inScope(entities, p) {
					out = append(out, p)
				}
			}
			return out
		},
	}, nil
}

func init() {
	cem.RegisterMatcher("strong-only", strongOnly)
}

// TestCustomMatcherThroughPublicAPI: a registered third-party matcher is
// listed, instantiates lazily, and runs under NO-MP, SMP and FULL with
// the framework's guarantees (SMP == FULL for a well-behaved Type-I
// matcher over a total cover).
func TestCustomMatcherThroughPublicAPI(t *testing.T) {
	names := cem.Matchers()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Matchers() not sorted: %v", names)
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{cem.MatcherMLN, cem.MatcherRules, "strong-only"} {
		if !found[want] {
			t.Fatalf("Matchers() = %v, missing %q", names, want)
		}
	}

	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.2, 5))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := exp.Runner("strong-only")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	nomp, err := runner.Run(ctx, cem.SchemeNoMP)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := runner.Run(ctx, cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	full, err := runner.Run(ctx, cem.SchemeFull)
	if err != nil {
		t.Fatal(err)
	}
	if nomp.Matches.Len() == 0 {
		t.Error("custom matcher found nothing — dataset should contain strong pairs")
	}
	if !nomp.Matches.Subset(smp.Matches) {
		t.Error("SMP lost NO-MP matches")
	}
	if !smp.Matches.Equal(full.Matches) {
		t.Errorf("SMP (%d) != FULL (%d) for a well-behaved Type-I matcher",
			smp.Matches.Len(), full.Matches.Len())
	}
	if nomp.Matcher != "strong-only" {
		t.Errorf("result matcher = %q", nomp.Matcher)
	}
	// MMP needs a Type-II matcher and must refuse this one.
	if _, err := runner.Run(ctx, cem.SchemeMMP); err == nil {
		t.Error("MMP accepted a Type-I custom matcher")
	}
}

// TestParallelNoMPIdenticalToSerial is the acceptance check: on the
// HEPTH and DBLP seeds, parallel NO-MP produces byte-identical match
// sets to serial NO-MP (and parallel SMP/MMP agree too).
func TestParallelNoMPIdenticalToSerial(t *testing.T) {
	for _, kind := range []cem.DatasetKind{cem.HEPTH, cem.DBLP} {
		exp, err := cem.New(cem.NewDataset(kind, 0.25, 42))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := exp.Runner(cem.MatcherMLN)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := exp.Runner(cem.MatcherMLN,
			cem.WithParallelism(runtime.NumCPU()))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
			want, err := serial.Run(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parallel.Run(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Matches.Equal(want.Matches) {
				t.Errorf("%s/%s: parallel diverges from serial: %d vs %d matches",
					kind, s, got.Matches.Len(), want.Matches.Len())
			}
			if !reflect.DeepEqual(got.Matches.Sorted(), want.Matches.Sorted()) {
				t.Errorf("%s/%s: sorted match lists differ", kind, s)
			}
		}
	}
}

// TestContextCancellationAbortsMMP: canceling the context promptly
// aborts a long MMP run with ctx.Err().
func TestContextCancellationAbortsMMP(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.5, 42))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := runner.Run(ctx, cem.SchemeMMP)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (result %v), want context.Canceled", err, res)
	}
	// The run would take far longer than this to finish; the bound is
	// generous so only a genuinely ignored cancellation fails.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — not prompt", elapsed)
	}
	// A deadline already in the past aborts before any work, parallel
	// included.
	deadCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	par, err := exp.Runner(cem.MatcherMLN, cem.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := par.Run(deadCtx, cem.SchemeMMP); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v", err)
	}
}

// TestRunnerOptions exercises WithStats, WithProgress,
// WithTransitiveClosure and WithNegativeEvidence end to end.
func TestRunnerOptions(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.2, 11))
	if err != nil {
		t.Fatal(err)
	}
	var stats []match.RunStats
	var events []match.ProgressEvent
	runner, err := exp.Runner(cem.MatcherRules,
		cem.WithTransitiveClosure(),
		cem.WithStats(func(s match.RunStats) { stats = append(stats, s) }),
		cem.WithProgress(func(e match.ProgressEvent) { events = append(events, e) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed {
		t.Error("result not marked closed")
	}
	if !exp.TransitiveClosure(res.Matches).Equal(res.Matches) {
		t.Error("closed result is not transitively closed")
	}
	if len(stats) != 1 || stats[0].Evaluations == 0 {
		t.Errorf("stats callback: %+v", stats)
	}
	if len(events) != stats[0].Evaluations {
		t.Errorf("%d progress events for %d evaluations", len(events), stats[0].Evaluations)
	}

	// Negative evidence suppresses the negated pairs in the output.
	plain, err := exp.Runner(cem.MatcherRules)
	if err != nil {
		t.Fatal(err)
	}
	base, err := plain.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	if base.Matches.Len() == 0 {
		t.Skip("no matches to negate at this scale")
	}
	var victim match.Pair
	for p := range base.Matches.All() {
		victim = p
		break
	}
	negRunner, err := exp.Runner(cem.MatcherRules,
		cem.WithNegativeEvidence(match.NewPairSet(victim)))
	if err != nil {
		t.Fatal(err)
	}
	negRes, err := negRunner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	if negRes.Matches.Has(victim) {
		t.Error("negated pair still matched")
	}
}

// TestTransitiveClosureSkipsSingletons: the closure only materializes
// components that contain a match — no singleton blow-up — and still
// agrees with pairwise expansion of the matched components.
func TestTransitiveClosureSkipsSingletons(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.2, 3))
	if err != nil {
		t.Fatal(err)
	}
	chain := match.NewPairSet(
		match.MakePair(0, 1), match.MakePair(1, 2), match.MakePair(5, 6))
	closed := exp.TransitiveClosure(chain)
	want := match.NewPairSet(
		match.MakePair(0, 1), match.MakePair(1, 2), match.MakePair(0, 2),
		match.MakePair(5, 6))
	if !closed.Equal(want) {
		t.Errorf("closure = %v, want %v", closed.Sorted(), want.Sorted())
	}
	if !exp.TransitiveClosure(match.NewPairSet()).Equal(match.NewPairSet()) {
		t.Error("closure of the empty set must be empty")
	}
}

// TestRegisterMatcherPanics: the registry rejects bad registrations.
func TestRegisterMatcherPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	dummy := func(cem.MatcherContext) (match.Matcher, error) { return match.MatcherFunc{}, nil }
	mustPanic("empty name", func() { cem.RegisterMatcher("", dummy) })
	mustPanic("nil factory", func() { cem.RegisterMatcher("nil-factory", nil) })
	mustPanic("duplicate", func() { cem.RegisterMatcher("strong-only", dummy) })
}
