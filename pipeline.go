package cem

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/match"
)

// Pipeline is the end-to-end ingestion→blocking→matching→evaluation
// path: raw records in, matches (and metrics, when gold labels are
// supplied) out. It synthesizes a dataset from the records, runs q-gram
// canopy blocking on a sharded worker pool (output identical to serial
// for every shard count), constructs the total cover with the paper's
// size/overlap bounds, executes the configured scheme with any
// registered matcher through the Runner, and scores the result.
//
// Build with NewPipeline; a Pipeline's configuration is immutable after
// construction and it is safe for concurrent Run/Update calls. The only
// mutable state is the cumulative Stats counters, which accumulate
// atomically across every completed run.
type Pipeline struct {
	name       string
	blocking   CanopyConfig
	maxNbr     int
	maxNbrSet  bool
	shards     int
	matcher    string
	scheme     Scheme
	runnerOpts []RunnerOption
	expOpts    []Option

	stats pipelineCounters
}

// PipelineStats is a point-in-time copy of a Pipeline's cumulative
// counters: every completed Run/Resume/Update on the pipeline adds to
// them, so a long-lived ingestion loop (or a serving process) can report
// warm-vs-cold ratios and total matcher work without threading per-call
// results around. Read with Pipeline.Stats; failed calls contribute
// nothing.
type PipelineStats struct {
	// Runs counts completed Run/Resume calls (cold full passes).
	Runs int64
	// Updates counts completed Update calls, split below by how the
	// matching stage executed: ColdStarts (nil prior — the stream's
	// first batch), WarmStarted (the incremental fast path), and
	// ForcedReruns (a non-additive delta or a foreign prior forced a
	// full cold re-run). The three always sum to Updates.
	Updates      int64
	ColdStarts   int64
	WarmStarted  int64
	ForcedReruns int64
	// MatcherCalls sums Matcher.Match invocations across every completed
	// run — the paper's primary cost metric, accumulated stream-wide.
	MatcherCalls int64
	// RecordsIngested sums the record counts handed to Run (all records)
	// and Update (the new batch only): the total stream length so far
	// when one pipeline owns the whole stream.
	RecordsIngested int64
	// CacheHits/CacheMisses/CacheInvalidations accumulate the per-run
	// verdict-memo reports (RunStats.Cache) across every completed run —
	// all zero when the configured matcher keeps no memo. Warm Updates
	// on a long-lived matcher are where hits concentrate: neighborhoods
	// re-activated by a delta whose relevant evidence did not change are
	// served from cache.
	CacheHits          int64
	CacheMisses        int64
	CacheInvalidations int64
	// Reassignments/RetriedSends/LateBatchesDropped accumulate the
	// per-run resilience counters (RunStats) across every completed run
	// — all zero unless the pipeline executes on a supervised
	// distributed backend (sharded-net). Nonzero values mean the stream
	// survived worker deaths or transport faults; the output is
	// unaffected by construction, so these measure degraded throughput,
	// not degraded answers.
	Reassignments      int64
	RetriedSends       int64
	LateBatchesDropped int64
}

// pipelineCounters is the internal atomic form of PipelineStats.
type pipelineCounters struct {
	runs, updates, coldStarts, warmStarted, forcedReruns atomic.Int64
	matcherCalls, recordsIngested                        atomic.Int64
	cacheHits, cacheMisses, cacheInvals                  atomic.Int64
	reassignments, retriedSends, lateDropped             atomic.Int64
}

// addRun folds one completed run's per-run reports (verdict memo,
// resilience) into the cumulative counters.
func (c *pipelineCounters) addRun(s *match.RunStats) {
	c.cacheHits.Add(s.Cache.Hits)
	c.cacheMisses.Add(s.Cache.Misses)
	c.cacheInvals.Add(s.Cache.Invalidations)
	c.reassignments.Add(int64(s.Reassignments))
	c.retriedSends.Add(int64(s.RetriedSends))
	c.lateDropped.Add(int64(s.LateBatchesDropped))
}

// Stats returns a snapshot of the pipeline's cumulative counters. The
// fields are read individually (not under one lock), so a snapshot taken
// concurrently with a committing run may straddle that run's increments;
// each counter is itself always consistent.
func (p *Pipeline) Stats() PipelineStats {
	return PipelineStats{
		Runs:               p.stats.runs.Load(),
		Updates:            p.stats.updates.Load(),
		ColdStarts:         p.stats.coldStarts.Load(),
		WarmStarted:        p.stats.warmStarted.Load(),
		ForcedReruns:       p.stats.forcedReruns.Load(),
		MatcherCalls:       p.stats.matcherCalls.Load(),
		RecordsIngested:    p.stats.recordsIngested.Load(),
		CacheHits:          p.stats.cacheHits.Load(),
		CacheMisses:        p.stats.cacheMisses.Load(),
		CacheInvalidations: p.stats.cacheInvals.Load(),
		Reassignments:      p.stats.reassignments.Load(),
		RetriedSends:       p.stats.retriedSends.Load(),
		LateBatchesDropped: p.stats.lateDropped.Load(),
	}
}

// PipelineOption customizes a Pipeline.
type PipelineOption func(*Pipeline)

// WithBlocking overrides the blocking configuration (canopy thresholds,
// q-gram size, relational context bounds). Start from
// DefaultOptions().Canopy. The configuration is validated by
// NewPipeline.
func WithBlocking(c CanopyConfig) PipelineOption {
	return func(p *Pipeline) { p.blocking = c }
}

// WithShards runs the blocking stage on n worker shards. The constructed
// cover is byte-identical for every shard count; shards only buy wall
// clock. n = 0 (the default) means one shard per CPU; negative counts
// are rejected by NewPipeline. Blocking keeps O(shards·records) working
// memory (a per-worker dedupe array), so bound n explicitly on very
// large corpora.
func WithShards(n int) PipelineOption {
	return func(p *Pipeline) { p.shards = n }
}

// WithMaxNeighborhood bounds every canopy core to at most k records (the
// seed plus its k-1 most similar neighbors): the paper's "sizes of
// neighborhoods are bounded" regime, which trades per-neighborhood
// matcher cost for message traffic. k = 0 removes the bound. The bound
// composes with WithBlocking in either order.
func WithMaxNeighborhood(k int) PipelineOption {
	return func(p *Pipeline) { p.maxNbr, p.maxNbrSet = k, true }
}

// WithMatcher selects the registered matcher the pipeline runs
// ("mln", "rules", or any name passed to RegisterMatcher). Default: mln.
func WithMatcher(name string) PipelineOption {
	return func(p *Pipeline) { p.matcher = name }
}

// WithScheme selects the execution scheme. Default: SMP.
func WithScheme(s Scheme) PipelineOption {
	return func(p *Pipeline) { p.scheme = s }
}

// WithRunnerOptions forwards options to the underlying Runner
// (parallelism, progress, stats, transitive closure, order, negative
// evidence).
func WithRunnerOptions(opts ...RunnerOption) PipelineOption {
	return func(p *Pipeline) { p.runnerOpts = append(p.runnerOpts, opts...) }
}

// WithExperimentOptions forwards options to experiment construction
// (matcher weights, rule programs). The blocking configuration is
// governed by WithBlocking, not WithCanopy.
func WithExperimentOptions(opts ...Option) PipelineOption {
	return func(p *Pipeline) { p.expOpts = append(p.expOpts, opts...) }
}

// WithDatasetName names the synthesized dataset (for reports and logs).
func WithDatasetName(name string) PipelineOption {
	return func(p *Pipeline) { p.name = name }
}

// NewPipeline builds a Pipeline, validating the configuration: the
// blocking thresholds must be well-formed and the shard count
// non-negative. The matcher name is resolved at Run time against the
// registry.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{
		name:     "records",
		blocking: DefaultOptions().Canopy,
		matcher:  MatcherMLN,
		scheme:   SchemeSMP,
	}
	for _, o := range opts {
		o(p)
	}
	if p.maxNbrSet {
		p.blocking.MaxNeighborhood = p.maxNbr
	}
	if err := p.blocking.Validate(); err != nil {
		return nil, fmt.Errorf("cem: pipeline blocking config: %w", err)
	}
	if p.shards < 0 {
		return nil, fmt.Errorf("cem: pipeline shards = %d, want >= 0", p.shards)
	}
	if p.matcher == "" {
		return nil, fmt.Errorf("cem: pipeline matcher name is empty")
	}
	switch p.scheme {
	case SchemeNoMP, SchemeSMP, SchemeMMP, SchemeFull, SchemeUB:
	default:
		return nil, fmt.Errorf("cem: pipeline scheme %q unknown", p.scheme)
	}
	return p, nil
}

// PipelineResult is the outcome of one Pipeline run: the scheme result
// plus the fully wired Experiment (for further runs and custom
// evaluation), stage timings, and — when every record was labeled —
// pairwise and B-cubed metrics.
type PipelineResult struct {
	*Result
	// Experiment is the wired instance the run executed on; use it for
	// further Runner builds, evaluation against references, or cover
	// inspection (Experiment.Cover.ComputeStats()).
	Experiment *Experiment
	// Records is the number of ingested records.
	Records int
	// Labeled reports whether every record carried a gold label; the
	// metric fields below are nil otherwise.
	Labeled bool
	// Report holds pairwise precision/recall/F1 against the gold labels.
	Report *Report
	// BCubed holds the per-entity cluster metric against the gold labels.
	BCubed *PRF
	// BlockingTime is the wall time of dataset synthesis + cover
	// construction; MatchingTime is the wall time of the scheme run.
	BlockingTime time.Duration
	MatchingTime time.Duration

	// WarmStarted reports whether the matching stage ran as an
	// incremental continuation (Update's fast path): seeded with the
	// prior evidence and limited to the delta's affected neighborhoods.
	// False for Run, for a first batch, and for forced full re-runs.
	WarmStarted bool
	// ForcedRerun reports that Update detected a non-additive delta —
	// ingestion rearranged existing neighborhoods instead of only
	// growing them — and fell back to a full cold run to preserve
	// equivalence with from-scratch matching.
	ForcedRerun bool

	// records is the full ingested record stream (in arrival order) and
	// index the mutable blocking state — the carry-over Update needs to
	// ingest the next batch incrementally. index is nil when the result
	// came from Run (Update then replays the records once to rebuild it).
	// blocking stamps the configuration that produced this result: a
	// prior built under a DIFFERENT blocking config cannot seed a warm
	// start (its evidence is another cover's fixpoint), so Update forces
	// a cold run for it.
	records  []Record
	index    *canopy.Index
	blocking CanopyConfig
}

// Run executes the pipeline on the given records. The context cancels
// both the blocking stage (between sharded scoring rounds) and the
// matching stage (between neighborhood evaluations).
func (p *Pipeline) Run(ctx context.Context, records []Record) (*PipelineResult, error) {
	return p.run(ctx, records, false)
}

// Resume re-runs the pipeline on the same records but continues the
// matching stage from the checkpoint trail configured via
// WithRunnerOptions(WithCheckpointDir(dir)) — the recovery path for a
// pipeline killed mid-matching. Blocking is deterministic for any shard
// count, so re-running it reconstructs the identical cover the trail
// was written against; the matching stage then picks up at the first
// unfinished round.
func (p *Pipeline) Resume(ctx context.Context, records []Record) (*PipelineResult, error) {
	return p.run(ctx, records, true)
}

func (p *Pipeline) run(ctx context.Context, records []Record, resume bool) (*PipelineResult, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("cem: pipeline: no records")
	}
	raw, labeled := toBibRecords(records)
	start := time.Now()
	d, err := bib.DatasetFromRecords(p.name, raw)
	if err != nil {
		return nil, fmt.Errorf("cem: pipeline: %w", err)
	}
	cover, err := canopy.BuildCoverContext(ctx, d, p.blocking, p.shards)
	if err != nil {
		return nil, err
	}
	blockingTime := time.Since(start)

	opts := DefaultOptions()
	for _, o := range p.expOpts {
		o(&opts)
	}
	opts.Canopy = p.blocking // WithCanopy must not desync from the built cover
	exp, err := setup(d, opts, cover)
	if err != nil {
		return nil, err
	}
	runner, err := exp.Runner(p.matcher, p.runnerOpts...)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	var res *Result
	if resume {
		res, err = runner.Resume(ctx, p.scheme)
	} else {
		res, err = runner.Run(ctx, p.scheme)
	}
	if err != nil {
		return nil, err
	}
	out := &PipelineResult{
		Result:       res,
		Experiment:   exp,
		Records:      len(records),
		Labeled:      labeled,
		BlockingTime: blockingTime,
		MatchingTime: time.Since(start),
		records:      append([]Record(nil), records...),
		blocking:     p.blocking,
	}
	if labeled {
		report := exp.Evaluate(res)
		bcubed := exp.EvaluateBCubed(res)
		out.Report = &report
		out.BCubed = &bcubed
	}
	p.stats.runs.Add(1)
	p.stats.matcherCalls.Add(int64(res.Stats.MatcherCalls))
	p.stats.recordsIngested.Add(int64(len(records)))
	p.stats.addRun(&res.Stats)
	return out, nil
}

// Update ingests a batch of new records on top of a prior result — the
// incremental execution path. The blocking stage is updated in place
// (canopy.Index.Add scores only the arriving batch against the q-gram
// index and re-emits the cover, byte-identical to a scratch rebuild),
// and the matching stage is warm-started from the prior run's evidence
// and outstanding maximal messages with an initial active set limited to
// the neighborhoods the delta touched: changed or new cover sets, sets
// containing a new entity or one of its coauthors, and sets reached by
// candidate pairs the delta introduced. Everything else stays at its
// prior fixpoint unless a new match re-activates it.
//
// prior == nil runs the first batch cold (equivalent to Run) while
// retaining the streaming blocking state, so a fold of Update over a
// record stream is the canonical ingestion loop. The delta index scores
// arrivals serially (WithShards applies to Run's from-scratch blocking
// only). Updates from the same prior may run concurrently or fork a
// stream: the index advance is atomic, and a branch that lost the race
// (or holds a stale prior) transparently rebuilds its own blocking
// state from its own records. For the built-in
// (delta-monotone, well-behaved) matchers the result after every batch
// is identical to a cold Run over all records ingested so far — the
// property the incremental differential harness pins — at a fraction of
// the matcher calls. Metrics are computed only when every ingested
// record is labeled; unlabeled streams skip them without error. Schemes
// without round structure (FULL, UB) have no incremental path.
//
// A prior produced under a different blocking configuration is detected
// (its evidence is another cover's fixpoint) and likewise forces a cold
// run; matcher and experiment options are NOT fingerprinted — hand a
// prior only to Pipelines sharing them (the matcher name itself is
// checked by the snapshot plumbing).
func (p *Pipeline) Update(ctx context.Context, prior *PipelineResult, newRecords []Record) (*PipelineResult, error) {
	if len(newRecords) == 0 {
		return nil, fmt.Errorf("cem: pipeline update: no new records")
	}
	if coreScheme(p.scheme) == "" {
		return nil, fmt.Errorf("cem: pipeline update: scheme %q has no incremental path", p.scheme)
	}

	start := time.Now()
	index, records, err := p.carryOver(ctx, prior)
	if err != nil {
		return nil, err
	}
	base := len(records)
	records = append(records, newRecords...)
	raw, labeled := toBibRecords(records)
	d, err := bib.DatasetFromRecords(p.name, raw)
	if err != nil {
		return nil, fmt.Errorf("cem: pipeline update: %w", err)
	}
	cover, delta, err := index.AddFrom(ctx, d, base)
	if errors.Is(err, canopy.ErrStale) {
		// Another Update advanced the shared index past this prior (a
		// forked or concurrent stream): this branch's view is outdated,
		// so rebuild its own blocking state from its own records.
		if index, err = p.rebuildIndex(ctx, records[:base]); err == nil {
			cover, delta, err = index.AddFrom(ctx, d, base)
		}
	}
	if err != nil {
		return nil, err
	}
	blockingTime := time.Since(start)

	opts := DefaultOptions()
	for _, o := range p.expOpts {
		o(&opts)
	}
	opts.Canopy = p.blocking
	exp, err := setup(d, opts, cover)
	if err != nil {
		return nil, err
	}
	runner, err := exp.Runner(p.matcher, p.runnerOpts...)
	if err != nil {
		return nil, err
	}

	start = time.Now()
	var res *Result
	if prior == nil || !delta.Additive || prior.blocking != p.blocking {
		// First batch; or the delta rearranged existing neighborhoods (a
		// total-cover boundary member moved, shrinking some set relative
		// to its predecessor); or the prior was produced under a
		// different blocking configuration (its evidence is another
		// cover's fixpoint): prior evidence is no longer guaranteed to
		// be re-derivable from scratch, so a full cold run is forced.
		// The streaming blocking state still carries over — later
		// additive batches warm-start again.
		res, err = runner.Run(ctx, p.scheme)
	} else {
		snap, serr := prior.Experiment.Snapshot(prior.Result)
		if serr != nil {
			return nil, serr
		}
		res, err = runner.RunFrom(ctx, p.scheme, snap, affectedByDelta(exp, prior.Experiment, delta))
	}
	if err != nil {
		return nil, err
	}

	out := &PipelineResult{
		Result:       res,
		Experiment:   exp,
		Records:      len(records),
		Labeled:      labeled,
		BlockingTime: blockingTime,
		MatchingTime: time.Since(start),
		WarmStarted:  prior != nil && delta.Additive && prior.blocking == p.blocking,
		ForcedRerun:  prior != nil && !(delta.Additive && prior.blocking == p.blocking),
		records:      records,
		index:        index,
		blocking:     p.blocking,
	}
	if labeled {
		report := exp.Evaluate(res)
		bcubed := exp.EvaluateBCubed(res)
		out.Report = &report
		out.BCubed = &bcubed
	}
	p.stats.updates.Add(1)
	switch {
	case out.WarmStarted:
		p.stats.warmStarted.Add(1)
	case out.ForcedRerun:
		p.stats.forcedReruns.Add(1)
	default:
		p.stats.coldStarts.Add(1)
	}
	p.stats.matcherCalls.Add(int64(res.Stats.MatcherCalls))
	p.stats.recordsIngested.Add(int64(len(newRecords)))
	p.stats.addRun(&res.Stats)
	return out, nil
}

// carryOver extracts (or reconstructs) the streaming blocking state of a
// prior result and returns it with a private copy of the prior records.
// A prior produced by Run carries no index; its records are replayed
// through a fresh one — a one-time cost, after which every Update is
// incremental. The returned index may still be shared with other
// branches of an Update chain; Update advances it through AddFrom,
// which detects a stale base atomically and triggers a fresh rebuild.
func (p *Pipeline) carryOver(ctx context.Context, prior *PipelineResult) (*canopy.Index, []Record, error) {
	if prior == nil {
		index, err := canopy.NewIndex(p.blocking)
		return index, nil, err
	}
	if len(prior.records) == 0 {
		return nil, nil, fmt.Errorf("cem: pipeline update: prior result carries no ingestion state (was it produced by this Pipeline?)")
	}
	records := append([]Record(nil), prior.records...)
	if prior.index != nil && prior.index.Config() == p.blocking {
		return prior.index, records, nil
	}
	// No index (prior from Run), or one built under a DIFFERENT blocking
	// configuration (the prior came through another Pipeline): its cover
	// would not match this pipeline's cold runs, so replay fresh.
	index, err := p.rebuildIndex(ctx, records)
	return index, records, err
}

// rebuildIndex replays records through a fresh delta index.
func (p *Pipeline) rebuildIndex(ctx context.Context, records []Record) (*canopy.Index, error) {
	index, err := canopy.NewIndex(p.blocking)
	if err != nil {
		return nil, err
	}
	raw, _ := toBibRecords(records)
	d, err := bib.DatasetFromRecords(p.name, raw)
	if err != nil {
		return nil, err
	}
	if _, _, err := index.Add(ctx, d); err != nil {
		return nil, err
	}
	return index, nil
}

// affectedByDelta assembles the warm-start active seed: the cover ids an
// ingested delta may have invalidated. Changed covers membership shifts,
// AffectedEntities covers scope/boundary contact with the new entities,
// and the candidate diff covers neighborhoods of old entities whose
// in-scope variable set grew because a changed set co-located an old
// pair for the first time (the candidate universe is cover-derived, so
// a new set can add variables to an unchanged one).
func affectedByDelta(exp, old *Experiment, delta *canopy.Delta) []int32 {
	rel := exp.Dataset.Coauthor()
	oldCands := match.NewPairSet()
	for _, c := range old.Candidates {
		oldCands.Add(c.Pair)
	}
	var newPairs []match.Pair
	for _, c := range exp.Candidates {
		if !oldCands.Has(c.Pair) {
			newPairs = append(newPairs, c.Pair)
		}
	}
	seen := map[int32]bool{}
	var out []int32
	for _, ids := range [][]int32{
		delta.Changed,
		exp.Cover.AffectedEntities(delta.NewEntities, rel),
		exp.Cover.Affected(newPairs, rel),
	} {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
