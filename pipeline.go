package cem

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bib"
	"repro/internal/canopy"
)

// Pipeline is the end-to-end ingestion→blocking→matching→evaluation
// path: raw records in, matches (and metrics, when gold labels are
// supplied) out. It synthesizes a dataset from the records, runs q-gram
// canopy blocking on a sharded worker pool (output identical to serial
// for every shard count), constructs the total cover with the paper's
// size/overlap bounds, executes the configured scheme with any
// registered matcher through the Runner, and scores the result.
//
// Build with NewPipeline; a Pipeline is immutable after construction and
// safe for concurrent Run calls.
type Pipeline struct {
	name       string
	blocking   CanopyConfig
	maxNbr     int
	maxNbrSet  bool
	shards     int
	matcher    string
	scheme     Scheme
	runnerOpts []RunnerOption
	expOpts    []Option
}

// PipelineOption customizes a Pipeline.
type PipelineOption func(*Pipeline)

// WithBlocking overrides the blocking configuration (canopy thresholds,
// q-gram size, relational context bounds). Start from
// DefaultOptions().Canopy. The configuration is validated by
// NewPipeline.
func WithBlocking(c CanopyConfig) PipelineOption {
	return func(p *Pipeline) { p.blocking = c }
}

// WithShards runs the blocking stage on n worker shards. The constructed
// cover is byte-identical for every shard count; shards only buy wall
// clock. n = 0 (the default) means one shard per CPU; negative counts
// are rejected by NewPipeline. Blocking keeps O(shards·records) working
// memory (a per-worker dedupe array), so bound n explicitly on very
// large corpora.
func WithShards(n int) PipelineOption {
	return func(p *Pipeline) { p.shards = n }
}

// WithMaxNeighborhood bounds every canopy core to at most k records (the
// seed plus its k-1 most similar neighbors): the paper's "sizes of
// neighborhoods are bounded" regime, which trades per-neighborhood
// matcher cost for message traffic. k = 0 removes the bound. The bound
// composes with WithBlocking in either order.
func WithMaxNeighborhood(k int) PipelineOption {
	return func(p *Pipeline) { p.maxNbr, p.maxNbrSet = k, true }
}

// WithMatcher selects the registered matcher the pipeline runs
// ("mln", "rules", or any name passed to RegisterMatcher). Default: mln.
func WithMatcher(name string) PipelineOption {
	return func(p *Pipeline) { p.matcher = name }
}

// WithScheme selects the execution scheme. Default: SMP.
func WithScheme(s Scheme) PipelineOption {
	return func(p *Pipeline) { p.scheme = s }
}

// WithRunnerOptions forwards options to the underlying Runner
// (parallelism, progress, stats, transitive closure, order, negative
// evidence).
func WithRunnerOptions(opts ...RunnerOption) PipelineOption {
	return func(p *Pipeline) { p.runnerOpts = append(p.runnerOpts, opts...) }
}

// WithExperimentOptions forwards options to experiment construction
// (matcher weights, rule programs). The blocking configuration is
// governed by WithBlocking, not WithCanopy.
func WithExperimentOptions(opts ...Option) PipelineOption {
	return func(p *Pipeline) { p.expOpts = append(p.expOpts, opts...) }
}

// WithDatasetName names the synthesized dataset (for reports and logs).
func WithDatasetName(name string) PipelineOption {
	return func(p *Pipeline) { p.name = name }
}

// NewPipeline builds a Pipeline, validating the configuration: the
// blocking thresholds must be well-formed and the shard count
// non-negative. The matcher name is resolved at Run time against the
// registry.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{
		name:     "records",
		blocking: DefaultOptions().Canopy,
		matcher:  MatcherMLN,
		scheme:   SchemeSMP,
	}
	for _, o := range opts {
		o(p)
	}
	if p.maxNbrSet {
		p.blocking.MaxNeighborhood = p.maxNbr
	}
	if err := p.blocking.Validate(); err != nil {
		return nil, fmt.Errorf("cem: pipeline blocking config: %w", err)
	}
	if p.shards < 0 {
		return nil, fmt.Errorf("cem: pipeline shards = %d, want >= 0", p.shards)
	}
	if p.matcher == "" {
		return nil, fmt.Errorf("cem: pipeline matcher name is empty")
	}
	switch p.scheme {
	case SchemeNoMP, SchemeSMP, SchemeMMP, SchemeFull, SchemeUB:
	default:
		return nil, fmt.Errorf("cem: pipeline scheme %q unknown", p.scheme)
	}
	return p, nil
}

// PipelineResult is the outcome of one Pipeline run: the scheme result
// plus the fully wired Experiment (for further runs and custom
// evaluation), stage timings, and — when every record was labeled —
// pairwise and B-cubed metrics.
type PipelineResult struct {
	*Result
	// Experiment is the wired instance the run executed on; use it for
	// further Runner builds, evaluation against references, or cover
	// inspection (Experiment.Cover.ComputeStats()).
	Experiment *Experiment
	// Records is the number of ingested records.
	Records int
	// Labeled reports whether every record carried a gold label; the
	// metric fields below are nil otherwise.
	Labeled bool
	// Report holds pairwise precision/recall/F1 against the gold labels.
	Report *Report
	// BCubed holds the per-entity cluster metric against the gold labels.
	BCubed *PRF
	// BlockingTime is the wall time of dataset synthesis + cover
	// construction; MatchingTime is the wall time of the scheme run.
	BlockingTime time.Duration
	MatchingTime time.Duration
}

// Run executes the pipeline on the given records. The context cancels
// both the blocking stage (between sharded scoring rounds) and the
// matching stage (between neighborhood evaluations).
func (p *Pipeline) Run(ctx context.Context, records []Record) (*PipelineResult, error) {
	return p.run(ctx, records, false)
}

// Resume re-runs the pipeline on the same records but continues the
// matching stage from the checkpoint trail configured via
// WithRunnerOptions(WithCheckpointDir(dir)) — the recovery path for a
// pipeline killed mid-matching. Blocking is deterministic for any shard
// count, so re-running it reconstructs the identical cover the trail
// was written against; the matching stage then picks up at the first
// unfinished round.
func (p *Pipeline) Resume(ctx context.Context, records []Record) (*PipelineResult, error) {
	return p.run(ctx, records, true)
}

func (p *Pipeline) run(ctx context.Context, records []Record, resume bool) (*PipelineResult, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("cem: pipeline: no records")
	}
	raw, labeled := toBibRecords(records)
	start := time.Now()
	d, err := bib.DatasetFromRecords(p.name, raw)
	if err != nil {
		return nil, fmt.Errorf("cem: pipeline: %w", err)
	}
	cover, err := canopy.BuildCoverContext(ctx, d, p.blocking, p.shards)
	if err != nil {
		return nil, err
	}
	blockingTime := time.Since(start)

	opts := DefaultOptions()
	for _, o := range p.expOpts {
		o(&opts)
	}
	opts.Canopy = p.blocking // WithCanopy must not desync from the built cover
	exp, err := setup(d, opts, cover)
	if err != nil {
		return nil, err
	}
	runner, err := exp.Runner(p.matcher, p.runnerOpts...)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	var res *Result
	if resume {
		res, err = runner.Resume(ctx, p.scheme)
	} else {
		res, err = runner.Run(ctx, p.scheme)
	}
	if err != nil {
		return nil, err
	}
	out := &PipelineResult{
		Result:       res,
		Experiment:   exp,
		Records:      len(records),
		Labeled:      labeled,
		BlockingTime: blockingTime,
		MatchingTime: time.Since(start),
	}
	if labeled {
		report := exp.Evaluate(res)
		bcubed := exp.EvaluateBCubed(res)
		out.Report = &report
		out.BCubed = &bcubed
	}
	return out, nil
}
