//go:build race

package cem_test

const raceEnabled = true
