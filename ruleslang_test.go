package cem_test

// Tests for the declarative rules-file surface: compile/register/load,
// the differential guarantee (a rules file produces byte-identical
// matches to the equivalent handwritten []match.Rule program on the
// golden corpora), and the people domain's end-to-end golden fixtures —
// records through the unmodified pipeline with only a rules file.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	cem "repro"
	"repro/match"
)

// loadProgram loads a rules file through the public LoadRulesFile path
// exactly once per path (the registry is process-global), returning the
// registered matcher name.
var (
	programsMu sync.Mutex
	programs   = map[string]string{}
)

func loadProgram(t *testing.T, path string) string {
	t.Helper()
	programsMu.Lock()
	defer programsMu.Unlock()
	if name, ok := programs[path]; ok {
		return name
	}
	name, err := cem.LoadRulesFile(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	programs[path] = name
	return name
}

func TestCompileRuleProgram(t *testing.T) {
	src := "program demo\nmatch level 3\nmatch level 2 when cooccur >= 1\n"
	p, err := cem.CompileRuleProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "demo" {
		t.Errorf("Name() = %q", p.Name())
	}
	rs := p.Rules()
	if len(rs) != 2 || rs[0].Level != match.LevelStrong || rs[1].MinCoauthorMatches != 1 {
		t.Errorf("Rules() = %+v", rs)
	}
	// The canonical rendering reparses to itself.
	q, err := cem.CompileRuleProgram(p.String())
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v", err)
	}
	if q.String() != p.String() {
		t.Errorf("canonical form not a fixed point:\n%s\nvs\n%s", p.String(), q.String())
	}
}

func TestCompileRuleProgramErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"syntax", "program p\nmatch level\n", "2:12"},
		{"unknown level", "program p\nmatch level 9\n", "unknown similarity level"},
		{"unknown field", "program p\nfields a\nlevel 2 when b equal\nmatch level 2\n", "3:14"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cem.CompileRuleProgram(tc.src); err == nil {
				t.Fatalf("compiled, want error containing %q", tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q lacks %q", err, tc.want)
			}
		})
	}
}

func TestRegisterRuleProgramCollision(t *testing.T) {
	p, err := cem.CompileRuleProgram("program mln\nmatch level 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := cem.RegisterRuleProgram(p); err == nil {
		t.Fatal("registering over the built-in mln matcher succeeded")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("collision error = %v", err)
	}
}

func TestLoadRulesFile(t *testing.T) {
	if _, err := cem.LoadRulesFile(filepath.Join(t.TempDir(), "absent.rules")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	path := filepath.Join(t.TempDir(), "t.rules")
	if err := os.WriteFile(path, []byte("program load-file-test\nmatch level 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, err := cem.LoadRulesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "load-file-test" {
		t.Errorf("name = %q", name)
	}
	found := false
	for _, m := range cem.Matchers() {
		if m == name {
			found = true
		}
	}
	if !found {
		t.Errorf("%q not in Matchers() = %v", name, cem.Matchers())
	}
	// A second load collides on the registry.
	if _, err := cem.LoadRulesFile(path); err == nil {
		t.Error("reloading the same program name succeeded")
	}
}

// TestRulesFileDifferential is the tentpole guarantee: each fixture
// rules file produces byte-identical match sets to its handwritten
// []match.Rule equivalent on every golden corpus and scheme the rules
// matcher supports; the paper program additionally lands on the on-disk
// rules fixtures.
func TestRulesFileDifferential(t *testing.T) {
	progs := []struct {
		file   string
		rules  []match.Rule // nil = the engine's default (PaperRules)
		pinned bool         // also compare against the <ds>-rules-<scheme>.golden fixtures
	}{
		{"paper.rules", nil, true},
		{"strict.rules", []match.Rule{
			{Level: match.LevelStrong, MinCoauthorMatches: 1},
			{Level: match.LevelMedium, MinCoauthorMatches: 2},
		}, false},
		{"lenient.rules", []match.Rule{
			{Level: match.LevelStrong, MinCoauthorMatches: 0},
			{Level: match.LevelMedium, MinCoauthorMatches: 0},
			{Level: match.LevelWeak, MinCoauthorMatches: 1},
		}, false},
	}
	schemes := []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull}
	for _, ds := range goldenSeeds {
		d := cem.NewDataset(ds.kind, ds.scale, ds.seed)
		for _, prog := range progs {
			name := loadProgram(t, filepath.Join("testdata", "rules", prog.file))
			fileExp, err := cem.New(d)
			if err != nil {
				t.Fatal(err)
			}
			fileRunner, err := fileExp.Runner(name)
			if err != nil {
				t.Fatal(err)
			}
			var handOpts []cem.Option
			if prog.rules != nil {
				handOpts = append(handOpts, cem.WithRules(prog.rules))
			}
			handExp, err := cem.New(d, handOpts...)
			if err != nil {
				t.Fatal(err)
			}
			handRunner, err := handExp.Runner(cem.MatcherRules)
			if err != nil {
				t.Fatal(err)
			}
			for _, scheme := range schemes {
				t.Run(fmt.Sprintf("%s-%s-%s", ds.kind, prog.file, scheme), func(t *testing.T) {
					fres, err := fileRunner.Run(context.Background(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					hres, err := handRunner.Run(context.Background(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					got, want := renderMatches(fres), renderMatches(hres)
					if got != want {
						t.Errorf("rules file diverges from handwritten program: %s", firstDiff(got, want))
					}
					if prog.pinned {
						path := filepath.Join("testdata", "golden",
							fmt.Sprintf("%s-%s-%s.golden", ds.kind, cem.MatcherRules, scheme))
						fixture, err := os.ReadFile(path)
						if err != nil {
							t.Fatal(err)
						}
						if got != string(fixture) {
							t.Errorf("rules file diverges from %s: %s", path, firstDiff(got, string(fixture)))
						}
					}
				})
			}
		}
	}
}

// TestGoldenPeopleRules pins the second domain end to end: the
// people-like corpus flows records → blocking → matching → metrics
// through the unmodified pipeline, programmed only by
// testdata/rules/people.rules. Refresh with
//
//	go test -run TestGoldenPeopleRules -update
func TestGoldenPeopleRules(t *testing.T) {
	name := loadProgram(t, filepath.Join("testdata", "rules", "people.rules"))
	records, err := cem.GenerateRecords(cem.People, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	renders := map[cem.Scheme]string{}
	for _, scheme := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull} {
		t.Run(string(scheme), func(t *testing.T) {
			pipe, err := cem.NewPipeline(
				cem.WithDatasetName("people-like"),
				cem.WithMatcher(name),
				cem.WithScheme(scheme),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pipe.Run(context.Background(), records)
			if err != nil {
				t.Fatal(err)
			}
			got := renderMatches(res.Result)
			renders[scheme] = got
			path := filepath.Join("testdata", "golden", fmt.Sprintf("people-%s-%s.golden", name, scheme))
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (run `go test -run TestGoldenPeopleRules -update`): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("match set diverges from %s: %s", path, firstDiff(got, string(want)))
			}
			// End-to-end metrics: the corpus is fully labeled, so the
			// pipeline must score it, and the program should dedup it
			// well — the seeds and the phone level are near-oracles.
			if !res.Labeled {
				t.Fatal("people corpus not scored despite full labels")
			}
			if p := res.Report.PRF.Precision; p < 0.95 {
				t.Errorf("precision %.3f below floor 0.95", p)
			}
			if r := res.Report.PRF.Recall; r < 0.80 {
				t.Errorf("recall %.3f below floor 0.80", r)
			}
		})
	}
	// The program is monotone and idempotent (seeds are constant
	// evidence), so SMP must reproduce FULL exactly — Theorem 2 extends
	// to the second domain.
	if renders[cem.SchemeSMP] != "" && renders[cem.SchemeSMP] != renders[cem.SchemeFull] {
		t.Error("SMP and FULL diverge on the people corpus")
	}
}
