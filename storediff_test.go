package cem_test

// Differential harness for the storage backends: a runner wired to the
// "mem" store and one wired to the "disk" store must land on the exact
// golden fixtures — all of them, including FULL and UB where the store
// is attached but idle — and the two stores must end holding the
// byte-identical evidence stream. The same equivalence is pinned on the
// sharded executor and on the incremental ingestion path, so no
// execution mode can drift between backends.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	cem "repro"
	"repro/match"
)

// storeVariant pairs a backend name with a runner option opening it.
type storeVariant struct {
	name string
	opt  cem.RunnerOption
}

func storeVariants(t *testing.T) []storeVariant {
	t.Helper()
	return []storeVariant{
		{"mem", cem.WithStore("mem")},
		{"disk", cem.WithStore("disk", cem.WithStoreDir(t.TempDir()))},
	}
}

// evidenceKeys drains a store's full evidence stream in key order.
func evidenceKeys(t *testing.T, s match.Store) []uint64 {
	t.Helper()
	var keys []uint64
	if err := s.EvidenceRange(0, ^uint64(0), func(k uint64) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestGoldenStoreBackends runs every golden fixture under both storage
// backends: the match sets must be byte-identical to the fixtures, and
// after each round-structured run the two stores must hold the same
// evidence stream. Round schemes additionally re-run on the sharded
// executor with the disk store underneath.
func TestGoldenStoreBackends(t *testing.T) {
	for _, ds := range goldenSeeds {
		exp, err := cem.New(cem.NewDataset(ds.kind, ds.scale, ds.seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, matcher := range []string{cem.MatcherMLN, cem.MatcherRules} {
			for _, scheme := range goldenMatrix[matcher] {
				name := fmt.Sprintf("%s-%s-%s", ds.kind, matcher, scheme)
				t.Run(name, func(t *testing.T) {
					path := filepath.Join("testdata", "golden", name+".golden")
					want, err := os.ReadFile(path)
					if err != nil {
						t.Skipf("fixture %s not generated yet", path)
					}
					var streams [][]uint64
					for _, sv := range storeVariants(t) {
						runner, err := exp.Runner(matcher, sv.opt)
						if err != nil {
							t.Fatal(err)
						}
						res, err := runner.Run(context.Background(), scheme)
						if err != nil {
							t.Fatal(err)
						}
						if got := renderMatches(res); got != string(want) {
							t.Errorf("%s store: match set diverges from %s: %s",
								sv.name, path, firstDiff(got, string(want)))
						}
						st, err := runner.Store()
						if err != nil {
							t.Fatal(err)
						}
						streams = append(streams, evidenceKeys(t, st))
					}
					// FULL and UB never consult the store (no round
					// structure); for round schemes the mirrored M+ must be
					// identical across backends and non-trivial.
					if scheme == cem.SchemeFull || scheme == cem.SchemeUB {
						return
					}
					mem, disk := streams[0], streams[1]
					if len(mem) == 0 {
						t.Errorf("mem store ended empty after a round-structured run")
					}
					if len(mem) != len(disk) {
						t.Fatalf("evidence streams diverge: mem holds %d keys, disk %d", len(mem), len(disk))
					}
					for i := range mem {
						if mem[i] != disk[i] {
							t.Fatalf("evidence streams diverge at key %d: %#x vs %#x", i, mem[i], disk[i])
						}
					}
					// The sharded executor over the disk store lands on the
					// same fixture — partitioned evidence replicas reduce
					// into the same persistent stream.
					sharded, err := exp.Runner(matcher, cem.WithShardCount(2),
						cem.WithStore("disk", cem.WithStoreDir(t.TempDir())))
					if err != nil {
						t.Fatal(err)
					}
					sres, err := sharded.Run(context.Background(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					if got := renderMatches(sres); got != string(want) {
						t.Errorf("sharded(2) on disk store diverges from %s: %s",
							path, firstDiff(got, string(want)))
					}
				})
			}
		}
	}
}

// TestIncrementalStoreBackends runs the randomized ingestion harness
// with each storage backend underneath the pipeline: the final state
// after batched arrivals must be byte-identical to the cold run, with
// the usual warm-start savings intact.
func TestIncrementalStoreBackends(t *testing.T) {
	for _, ds := range goldenSeeds {
		records, err := cem.GenerateRecords(ds.kind, ds.scale, ds.seed)
		if err != nil {
			t.Fatal(err)
		}
		batches := arrival(rand.New(rand.NewSource(3)), records)
		var union []cem.Record
		for _, b := range batches {
			union = append(union, b...)
		}
		// The cold reference runs on the pool backend: a store forces the
		// round executor, and matcher-call counts only grade against the
		// same execution shape.
		coldPipe, err := cem.NewPipeline(
			cem.WithScheme(cem.SchemeSMP),
			cem.WithRunnerOptions(cem.WithBackend(cem.NewPoolBackend())),
		)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldPipe.Run(context.Background(), union)
		if err != nil {
			t.Fatal(err)
		}
		want := renderMatches(cold.Result)
		for _, sv := range storeVariants(t) {
			t.Run(fmt.Sprintf("%s-%s", ds.kind, sv.name), func(t *testing.T) {
				pipe, err := cem.NewPipeline(
					cem.WithScheme(cem.SchemeSMP),
					cem.WithRunnerOptions(sv.opt),
				)
				if err != nil {
					t.Fatal(err)
				}
				res := ingest(t, pipe, batches, cold)
				if got := renderMatches(res.Result); got != want {
					t.Errorf("%s store: incremental result diverges from cold run: %s",
						sv.name, firstDiff(got, want))
				}
			})
		}
	}
}
