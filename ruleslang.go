package cem

import (
	"fmt"
	"os"

	"repro/internal/rules"
	"repro/internal/rules/lang"
	"repro/match"
)

// RuleProgram is a compiled declarative rules program (see
// internal/rules/lang for the language): a named, validated plan that
// grounds to a registered matcher. Programs come from CompileRuleProgram
// or LoadRulesFile and plug into experiments via RegisterRuleProgram —
// after which the program's name selects it anywhere a matcher name is
// accepted (Runner, Pipeline, emmatch -matcher, emserve -matcher).
type RuleProgram struct {
	plan *lang.Plan
}

// CompileRuleProgram parses and compiles a rules program source.
// Syntax errors (*lang.ParseError) and semantic errors
// (*lang.CompileError) carry line:col positions.
func CompileRuleProgram(src string) (*RuleProgram, error) {
	plan, err := lang.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return &RuleProgram{plan: plan}, nil
}

// Name returns the program's declared name — the matcher name it
// registers under.
func (p *RuleProgram) Name() string { return p.plan.Prog.Name }

// Rules returns the program's match clauses lowered to the engine's
// rule form.
func (p *RuleProgram) Rules() []match.Rule {
	return append([]match.Rule(nil), p.plan.Rules...)
}

// String renders the program in canonical source form.
func (p *RuleProgram) String() string { return p.plan.Prog.Print() }

// Factory returns the matcher factory grounding this program: blocking
// candidates (releveled by the program's level clauses when present) fed
// to the rules engine, with hard equal/distinct seeds joining the
// V+/negative evidence slots of every Match call.
func (p *RuleProgram) Factory() MatcherFactory {
	return func(mc MatcherContext) (match.Matcher, error) {
		cands := make([]rules.Candidate, len(mc.Candidates))
		for i, c := range mc.Candidates {
			cands[i] = rules.Candidate{Pair: c.Pair, Level: c.Level}
		}
		return p.plan.NewMatcher(mc.Dataset, cands)
	}
}

// RegisterRuleProgram registers the program's factory under its declared
// name. Unlike RegisterMatcher it reports a name collision as an error
// rather than panicking, because rules files arrive from user input
// (CLI flags, config) rather than from init functions.
func RegisterRuleProgram(p *RuleProgram) error {
	if err := tryRegisterMatcher(p.Name(), p.Factory()); err != nil {
		return fmt.Errorf("cem: rules program %q: %w", p.Name(), err)
	}
	return nil
}

// LoadRulesFile reads, compiles and registers a rules program from a
// file, returning its declared name. This is the engine behind the CLIs'
// -rules-file flag.
func LoadRulesFile(path string) (string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("cem: reading rules file: %w", err)
	}
	p, err := CompileRuleProgram(string(src))
	if err != nil {
		return "", fmt.Errorf("cem: %s: %w", path, err)
	}
	if err := RegisterRuleProgram(p); err != nil {
		return "", err
	}
	return p.Name(), nil
}
