package cem_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6, Appendix C), plus scheme-level micro-benchmarks. Each experiment
// benchmark regenerates its table at a reduced scale per iteration; run
//
//	go test -bench=. -benchmem
//
// and see cmd/embench for the full-scale, human-readable reproduction.

import (
	"context"
	"runtime"
	"testing"
	"time"

	cem "repro"
	"repro/internal/experiments"
	"repro/internal/grid"
)

// benchConfig keeps per-iteration work bounded.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Scale = 0.2
	cfg.Machines = 8
	cfg.RoundOverhead = time.Millisecond
	cfg.Fig3fSteps = 4
	return cfg
}

func benchExperiment(b *testing.B, fn func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, experiments.Fig3a) }
func BenchmarkFig3b(b *testing.B)  { benchExperiment(b, experiments.Fig3b) }
func BenchmarkFig3c(b *testing.B)  { benchExperiment(b, experiments.Fig3c) }
func BenchmarkFig3d(b *testing.B)  { benchExperiment(b, experiments.Fig3d) }
func BenchmarkFig3e(b *testing.B)  { benchExperiment(b, experiments.Fig3e) }
func BenchmarkFig3f(b *testing.B)  { benchExperiment(b, experiments.Fig3f) }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, experiments.Table1) }
func BenchmarkFig4a(b *testing.B)  { benchExperiment(b, experiments.Fig4a) }
func BenchmarkFig4b(b *testing.B)  { benchExperiment(b, experiments.Fig4b) }
func BenchmarkFig4c(b *testing.B)  { benchExperiment(b, experiments.Fig4c) }
func BenchmarkAblationCover(b *testing.B) {
	benchExperiment(b, experiments.AblationCover)
}

// --- scheme-level micro-benchmarks over a fixed experiment ------------

func benchScheme(b *testing.B, kind cem.DatasetKind, s cem.Scheme, m string, opts ...cem.RunnerOption) {
	b.Helper()
	exp, err := cem.New(cem.NewDataset(kind, 0.25, 42))
	if err != nil {
		b.Fatal(err)
	}
	runner, err := exp.Runner(m, opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel vs serial NO-MP (the worker-pool win; outputs identical) --

func BenchmarkNoMPSerialHepth(b *testing.B) {
	benchScheme(b, cem.HEPTH, cem.SchemeNoMP, cem.MatcherMLN, cem.WithParallelism(1))
}
func BenchmarkNoMPParallelHepth(b *testing.B) {
	benchScheme(b, cem.HEPTH, cem.SchemeNoMP, cem.MatcherMLN,
		cem.WithParallelism(runtime.NumCPU()))
}
func BenchmarkNoMPSerialDblp(b *testing.B) {
	benchScheme(b, cem.DBLP, cem.SchemeNoMP, cem.MatcherMLN, cem.WithParallelism(1))
}
func BenchmarkNoMPParallelDblp(b *testing.B) {
	benchScheme(b, cem.DBLP, cem.SchemeNoMP, cem.MatcherMLN,
		cem.WithParallelism(runtime.NumCPU()))
}

func BenchmarkNoMPMLNHepth(b *testing.B) { benchScheme(b, cem.HEPTH, cem.SchemeNoMP, cem.MatcherMLN) }
func BenchmarkSMPMLNHepth(b *testing.B)  { benchScheme(b, cem.HEPTH, cem.SchemeSMP, cem.MatcherMLN) }
func BenchmarkMMPMLNHepth(b *testing.B)  { benchScheme(b, cem.HEPTH, cem.SchemeMMP, cem.MatcherMLN) }
func BenchmarkUBMLNHepth(b *testing.B)   { benchScheme(b, cem.HEPTH, cem.SchemeUB, cem.MatcherMLN) }
func BenchmarkFullMLNHepth(b *testing.B) { benchScheme(b, cem.HEPTH, cem.SchemeFull, cem.MatcherMLN) }
func BenchmarkNoMPMLNDblp(b *testing.B)  { benchScheme(b, cem.DBLP, cem.SchemeNoMP, cem.MatcherMLN) }
func BenchmarkSMPMLNDblp(b *testing.B)   { benchScheme(b, cem.DBLP, cem.SchemeSMP, cem.MatcherMLN) }
func BenchmarkMMPMLNDblp(b *testing.B)   { benchScheme(b, cem.DBLP, cem.SchemeMMP, cem.MatcherMLN) }
func BenchmarkSMPRulesHepth(b *testing.B) {
	benchScheme(b, cem.HEPTH, cem.SchemeSMP, cem.MatcherRules)
}
func BenchmarkFullRulesDblp(b *testing.B) {
	benchScheme(b, cem.DBLP, cem.SchemeFull, cem.MatcherRules)
}

// --- blocking stage and end-to-end pipeline ---------------------------

// benchBlocking measures the sharded blocking stage alone (dataset →
// total cover) through the public pipeline configuration.
func benchBlocking(b *testing.B, kind cem.DatasetKind, shards int) {
	b.Helper()
	records, err := cem.GenerateRecords(kind, 0.25, 42)
	if err != nil {
		b.Fatal(err)
	}
	// NoMP with the cheap rules matcher keeps the post-blocking stages
	// negligible; BlockingTime is reported as the metric of interest.
	pipe, err := cem.NewPipeline(
		cem.WithMatcher(cem.MatcherRules),
		cem.WithScheme(cem.SchemeNoMP),
		cem.WithShards(shards),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var blocking time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Run(ctx, records)
		if err != nil {
			b.Fatal(err)
		}
		blocking += res.BlockingTime
	}
	b.ReportMetric(float64(blocking.Nanoseconds())/float64(b.N), "blocking-ns/op")
}

func BenchmarkBlockingSerialHepth(b *testing.B)  { benchBlocking(b, cem.HEPTH, 1) }
func BenchmarkBlockingShardedHepth(b *testing.B) { benchBlocking(b, cem.HEPTH, runtime.NumCPU()) }
func BenchmarkBlockingSerialDblp(b *testing.B)   { benchBlocking(b, cem.DBLP, 1) }
func BenchmarkBlockingShardedDblp(b *testing.B)  { benchBlocking(b, cem.DBLP, runtime.NumCPU()) }

// benchPipeline measures the full records→matches→metrics path.
func benchPipeline(b *testing.B, kind cem.DatasetKind, scheme cem.Scheme) {
	b.Helper()
	records, err := cem.GenerateRecords(kind, 0.25, 42)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := cem.NewPipeline(
		cem.WithMatcher(cem.MatcherMLN),
		cem.WithScheme(scheme),
		cem.WithShards(runtime.NumCPU()),
		cem.WithRunnerOptions(cem.WithParallelism(runtime.NumCPU())),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Run(ctx, records); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSMPHepth(b *testing.B) { benchPipeline(b, cem.HEPTH, cem.SchemeSMP) }
func BenchmarkPipelineSMPDblp(b *testing.B)  { benchPipeline(b, cem.DBLP, cem.SchemeSMP) }
func BenchmarkPipelineMMPDblp(b *testing.B)  { benchPipeline(b, cem.DBLP, cem.SchemeMMP) }

// BenchmarkSetup measures cover construction plus matcher grounding.
func BenchmarkSetup(b *testing.B) {
	d := cem.NewDataset(cem.HEPTH, 0.25, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cem.New(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSMP measures the simulated-grid rounds-based executor.
func BenchmarkGridSMP(b *testing.B) {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.25, 42))
	if err != nil {
		b.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		b.Fatal(err)
	}
	g := grid.Config{Machines: 8, RoundOverhead: 0, Seed: 1}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunGrid(ctx, cem.SchemeSMP, g); err != nil {
			b.Fatal(err)
		}
	}
}
