package cem

import (
	"time"

	"repro/internal/grid"
)

// gridDefaults returns a small simulated grid for facade tests.
func gridDefaults() grid.Config {
	return grid.Config{Machines: 4, RoundOverhead: time.Millisecond, Seed: 1}
}
