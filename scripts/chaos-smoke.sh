#!/usr/bin/env bash
# Chaos smoke test: the distributed sharded-net backend under a REAL
# worker kill, as a black box with real OS processes.
#
#   build -> cold single-process reference run -> start 3 emworker
#   processes -> run emmatch against the fleet -> SIGKILL one worker the
#   moment it logs its round-2 assignment -> assert the interrupted
#   fleet's match set is byte-identical to the reference, the run
#   reported the reassignment, and the victim is really dead.
#
# This is the OS-process counterpart of the in-process fault-injection
# differentials (distributed_test.go, internal/net/faults_test.go): same
# scenario, real sockets, real SIGKILL. Run from the repo root (CI runs
# it via `make chaos-smoke`).
set -euo pipefail

workdir="$(mktemp -d)"
corpus=(-kind hepth -scale 2 -seed 42)
scheme=smp
matcher=mln
worker_pids=()

cleanup() {
  for pid in "${worker_pids[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "CHAOS FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$workdir/emmatch" ./cmd/emmatch
go build -o "$workdir/emworker" ./cmd/emworker

echo "== cold single-process reference"
"$workdir/emmatch" "${corpus[@]}" -scheme $scheme -matcher $matcher \
  -dump-matches "$workdir/pool.txt" > "$workdir/pool.log"
grep -q '^# [1-9]' "$workdir/pool.txt" || fail "reference run produced no matches"

echo "== start 3 emworker processes"
addrs=()
for i in 0 1 2; do
  "$workdir/emworker" "${corpus[@]}" -scheme $scheme -matcher $matcher -v \
    -listen 127.0.0.1:0 > "$workdir/w$i.log" 2>&1 &
  worker_pids[$i]=$!
done
for i in 0 1 2; do
  # Startup grounds the full experiment (dataset generation + cover
  # construction) before listening; allow it half a minute.
  for _ in $(seq 1 600); do
    addr="$(sed -n 's/^emworker: .* on \(127\.0\.0\.1:[0-9]*\) .*/\1/p' "$workdir/w$i.log")"
    [ -n "$addr" ] && break
    sleep 0.05
  done
  [ -n "$addr" ] || fail "worker $i never published its listen address"
  addrs[$i]="$addr"
  echo "   worker $i: pid ${worker_pids[$i]} on $addr"
done

echo "== SIGKILL worker 1 at its round-2 assignment (watcher armed)"
victim_pid=${worker_pids[1]}
(
  for _ in $(seq 1 3000); do
    if grep -q 'round 2: evaluating' "$workdir/w1.log" 2>/dev/null; then
      kill -9 "$victim_pid" 2>/dev/null
      exit 0
    fi
    sleep 0.01
  done
) &
watcher=$!

echo "== distributed run against the fleet"
"$workdir/emmatch" "${corpus[@]}" -scheme $scheme -matcher $matcher -v \
  -backend sharded-net -worker-addrs "${addrs[0]},${addrs[1]},${addrs[2]}" \
  -dump-matches "$workdir/dist.txt" > "$workdir/dist.log" \
  || fail "a killed worker must never fail the run (exit $?)"
wait "$watcher" || fail "worker 1 never received a round-2 assignment; the kill never fired"

echo "== assert the victim is dead and the survivors carried the round"
kill -0 "$victim_pid" 2>/dev/null && fail "worker 1 (pid $victim_pid) survived SIGKILL"
worker_pids[1]=""
grep -q 'reassigned=[1-9]' "$workdir/dist.log" \
  || fail "run stats report no reassignment: $(grep '^stats:' "$workdir/dist.log")"

echo "== assert byte-identical match sets"
cmp "$workdir/pool.txt" "$workdir/dist.txt" \
  || fail "interrupted fleet diverges from the single-process reference"

echo "CHAOS OK: $(head -1 "$workdir/pool.txt") identical across backends; $(grep -o 'reassigned=[0-9]* retriedSends=[0-9]* lateDropped=[0-9]*' "$workdir/dist.log")"
