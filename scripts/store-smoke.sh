#!/usr/bin/env bash
# Store smoke test: the disk-backed storage backend end to end, as a
# black box.
#
#   build -> generate a corpus -> start emserve -store disk -> POST two
#   batches -> SIGKILL (no drain: the journal and the store are all
#   that survives) -> restart -> assert the byte-identical committed
#   state recovered by REOPENING the store snapshot: the matcher-call
#   counter must read zero — not one neighborhood was re-evaluated —
#   and the reopen counter must read one. Then ingest another batch to
#   prove the reopened state continues incrementally.
#
# Run from the repo root (CI runs it via `make store-smoke`). Needs
# curl; jq is optional (assertions fall back to grep).
set -euo pipefail

workdir="$(mktemp -d)"
state="$workdir/state"
addr="127.0.0.1:18081"
base="http://$addr"
server_pid=""

cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server at $base never became healthy"
}

metric() { # metric <name> -> value from /metrics
  curl -fsS "$base/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

echo "== build"
go build -o "$workdir/emserve" ./cmd/emserve
go build -o "$workdir/emgen" ./cmd/emgen

echo "== fixture corpus, cut into two batches"
"$workdir/emgen" -kind hepth -scale 0.25 -records -out "$workdir/records.tsv"
total=$(($(wc -l < "$workdir/records.tsv") - 1))
[ "$total" -gt 2 ] || fail "emgen produced a degenerate corpus"
cut=$((total / 2))
head -n 1 "$workdir/records.tsv" > "$workdir/batch1.tsv"
sed -n "2,$((cut + 1))p" "$workdir/records.tsv" >> "$workdir/batch1.tsv"
head -n 1 "$workdir/records.tsv" > "$workdir/batch2.tsv"
sed -n "$((cut + 2)),\$p" "$workdir/records.tsv" >> "$workdir/batch2.tsv"

echo "== start emserve -store disk"
"$workdir/emserve" -addr "$addr" -state-dir "$state" -store disk -max-delay 50ms &
server_pid=$!
wait_ready

echo "== POST two batches (wait for commit)"
curl -fsS -X POST --data-binary @"$workdir/batch1.tsv" "$base/records?wait=1" \
  | grep -q '"seq": *1' || fail "batch 1 did not commit at seq 1"
curl -fsS -X POST --data-binary @"$workdir/batch2.tsv" "$base/records?wait=1" \
  | grep -q '"seq": *2' || fail "batch 2 did not commit at seq 2"

matches_before="$(curl -fsS "$base/matches")"
stats_before="$(curl -fsS "$base/stats")"
ls "$state"/store/ev-*.seg >/dev/null 2>&1 || fail "disk store wrote no evidence segments"

echo "== SIGKILL (no drain)"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== restart on the same state"
"$workdir/emserve" -addr "$addr" -state-dir "$state" -store disk -max-delay 50ms &
server_pid=$!
wait_ready

echo "== assert the byte-identical state came from the store, not a replay"
matches_after="$(curl -fsS "$base/matches")"
[ "$matches_before" = "$matches_after" ] || fail "restarted match set diverges from the pre-kill one"
reopens="$(metric emserve_store_reopens_total)"
[ "$reopens" = "1" ] || fail "emserve_store_reopens_total = '$reopens', want 1 (snapshot reopen)"
calls="$(metric emserve_matcher_calls_total)"
[ "$calls" = "0" ] || fail "emserve_matcher_calls_total = '$calls', want 0 (zero neighborhood evaluations on restart)"
if command -v jq >/dev/null 2>&1; then
  for field in .seq .records .match_pairs; do
    b="$(echo "$stats_before" | jq "$field")"
    a="$(curl -fsS "$base/stats" | jq "$field")"
    [ "$b" = "$a" ] || fail "restarted $field = $a, want $b"
  done
fi

echo "== the reopened state keeps ingesting incrementally"
"$workdir/emgen" -kind dblp -scale 0.05 -seed 7 -records -out "$workdir/batch3.tsv"
curl -fsS -X POST --data-binary @"$workdir/batch3.tsv" "$base/records?wait=1" \
  | grep -q '"seq": *3' || fail "post-restart batch did not commit at seq 3"
calls="$(metric emserve_matcher_calls_total)"
[ "$calls" != "0" ] || fail "post-restart ingest ran no matcher calls (not incremental?)"

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "SMOKE PASS: ingest -> SIGKILL -> store reopen (0 evaluations) -> identical state -> incremental continue"
