#!/usr/bin/env bash
# Service smoke test: the emserve lifecycle end to end, as a black box.
#
#   build -> generate a fixture corpus -> start emserve -> POST a batch
#   -> GET a cluster -> SIGTERM -> assert a clean checkpoint trail
#   -> restart -> assert the identical committed state.
#
# Run from the repo root (CI runs it via `make service-smoke`). Needs
# curl; jq is optional (assertions fall back to grep).
set -euo pipefail

workdir="$(mktemp -d)"
state="$workdir/state"
addr="127.0.0.1:18080"
base="http://$addr"
server_pid=""

cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server at $base never became healthy"
}

echo "== build"
go build -o "$workdir/emserve" ./cmd/emserve
go build -o "$workdir/emgen" ./cmd/emgen

echo "== fixture corpus"
"$workdir/emgen" -kind hepth -scale 0.25 -records -out "$workdir/records.tsv"
records=$(($(wc -l < "$workdir/records.tsv") - 1))  # minus the header line
[ "$records" -gt 0 ] || fail "emgen produced an empty corpus"

echo "== start emserve ($records records incoming)"
"$workdir/emserve" -addr "$addr" -state "$state" -max-delay 50ms &
server_pid=$!
wait_ready

echo "== POST the batch (wait for commit)"
ack="$(curl -fsS -X POST --data-binary @"$workdir/records.tsv" "$base/records?wait=1")"
echo "   $ack"
echo "$ack" | grep -q '"seq": *1' || fail "batch did not commit at seq 1: $ack"
echo "$ack" | grep -q "\"records\": *$records" || fail "committed record count != $records: $ack"

echo "== GET a cluster"
key="$(sed -n '2p' "$workdir/records.tsv" | cut -f3)"
cluster="$(curl -fsS "$base/cluster/$(printf %s "$key" | sed 's/ /%20/g')")"
echo "$cluster" | grep -q '"clusters"' || fail "no cluster payload for key '$key': $cluster"

matches_before="$(curl -fsS "$base/matches")"
stats_before="$(curl -fsS "$base/stats")"

echo "== SIGTERM (graceful drain)"
kill -TERM "$server_pid"
wait "$server_pid" || fail "emserve exited non-zero on SIGTERM"
server_pid=""

echo "== assert a clean checkpoint trail + journal"
ls "$state"/checkpoint/round-*.ckpt >/dev/null 2>&1 || fail "no checkpoint trail after clean shutdown"
ls "$state"/journal/batch-*.tsv   >/dev/null 2>&1 || fail "no journal after clean shutdown"

echo "== restart on the same state"
"$workdir/emserve" -addr "$addr" -state "$state" &
server_pid=$!
wait_ready

echo "== assert the identical committed state"
matches_after="$(curl -fsS "$base/matches")"
[ "$matches_before" = "$matches_after" ] || fail "restarted match set diverges from the pre-shutdown one"
stats_after="$(curl -fsS "$base/stats")"
if command -v jq >/dev/null 2>&1; then
  for field in .seq .records .match_pairs; do
    b="$(echo "$stats_before" | jq "$field")"
    a="$(echo "$stats_after"  | jq "$field")"
    [ "$b" = "$a" ] || fail "restarted $field = $a, want $b"
  done
  # The restart resumed the completed trail: no Update ran, one Run
  # (the checkpoint rebuild) is credited.
  upd="$(echo "$stats_after" | jq '.pipeline.Updates')"
  [ "$upd" = "0" ] || fail "restart replayed $upd updates instead of resuming the trail"
fi

kill -TERM "$server_pid"
wait "$server_pid" || fail "second shutdown exited non-zero"
server_pid=""

echo "SMOKE PASS: ingest -> read -> SIGTERM -> clean checkpoint -> restart -> identical state"
