package cem_test

// Table-driven matrix over RunnerOption combinations: for a fixed
// logical configuration (closure on/off × negative evidence on/off),
// every execution knob — parallelism and scheduling order — must leave
// the match set untouched (consistency, Theorems 2 and 4). Run under
// -race in CI, this doubles as the data-race gauntlet for the parallel
// executors.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	cem "repro"
	"repro/match"
)

func TestRunnerOptionMatrix(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.2, 11))
	if err != nil {
		t.Fatal(err)
	}
	// A pair the baseline run matches, used as negative evidence.
	base, err := exp.Run(cem.SchemeSMP, cem.MatcherRules)
	if err != nil {
		t.Fatal(err)
	}
	if base.Matches.Len() == 0 {
		t.Fatal("baseline run found no matches; corpus too small for the matrix")
	}
	victim := base.Matches.Sorted()[0]

	parallelisms := []int{1, runtime.NumCPU(), 7}
	orders := []match.Order{match.OrderFIFO, match.OrderLIFO, match.OrderSmallestFirst, match.OrderLargestFirst}
	closures := []bool{false, true}
	negatives := []match.PairSet{nil, match.NewPairSet(victim)}

	for _, matcher := range []string{cem.MatcherRules, cem.MatcherMLN} {
		for _, scheme := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP} {
			for ci, closure := range closures {
				for ni, negative := range negatives {
					group := fmt.Sprintf("%s/%s/closure=%v/negative=%v", matcher, scheme, closure, ni == 1)
					t.Run(group, func(t *testing.T) {
						var want *cem.Result
						for _, par := range parallelisms {
							for _, order := range orders {
								opts := []cem.RunnerOption{
									cem.WithParallelism(par),
									cem.WithOrder(order),
								}
								if closure {
									opts = append(opts, cem.WithTransitiveClosure())
								}
								if negative != nil {
									opts = append(opts, cem.WithNegativeEvidence(negative))
								}
								runner, err := exp.Runner(matcher, opts...)
								if err != nil {
									t.Fatal(err)
								}
								res, err := runner.Run(context.Background(), scheme)
								if err != nil {
									t.Fatal(err)
								}
								if want == nil {
									want = res
									continue
								}
								if !res.Matches.Equal(want.Matches) {
									t.Errorf("parallelism=%d order=%v: %d matches, want %d — execution knobs changed the output",
										par, order, res.Matches.Len(), want.Matches.Len())
								}
							}
						}
						// The logical knobs must do their job within the group.
						// (Closure may legitimately re-derive a negated pair
						// through a shared component, so the absence check
						// applies to raw output only.)
						if negative != nil && !closure && want.Matches.Has(victim) {
							t.Error("negative evidence ignored: victim pair matched")
						}
						if closure && !exp.TransitiveClosure(want.Matches).Equal(want.Matches) {
							t.Error("closure requested but result not transitively closed")
						}
						_ = ci
					})
				}
			}
		}
	}
}
