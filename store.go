package cem

import (
	"fmt"
	"sync"

	"repro/internal/store"
	"repro/match"
)

// Storage backends. A Store is where a run's state lives: the
// accumulated evidence set plus named blobs (run snapshots, blocking
// postings). The default "mem" store keeps everything in process maps —
// byte-identical behavior to the storeless engine — while the "disk"
// store spills evidence into append-only segment files so corpus state
// stays out of RSS and a restarted service reopens its state instead of
// replaying work. Select one per Runner/Pipeline with WithStore;
// register third-party implementations with RegisterStore.

// RegisterStore makes a storage backend available under name to
// WithStore, OpenStore, and the -store flags of emmatch/emserve. It
// panics if name is empty, factory is nil, or name is taken (call it
// from an init function, like RegisterMatcher).
func RegisterStore(name string, factory match.StoreFactory) {
	store.Register(name, factory)
}

// Stores returns the registered storage backend names, sorted.
func Stores() []string { return store.Names() }

// OpenStore opens the named storage backend directly — for inspecting
// state outside a run, or for handing a ready store to WithOpenedStore
// or Pipeline.Reopen. The caller owns Close.
func OpenStore(name string, opts ...match.StoreOption) (match.Store, error) {
	return store.Open(name, opts...)
}

// StoreOption configures a store at open time (alias of
// match.StoreOption, itself the internal functional option).
type StoreOption = match.StoreOption

// WithStoreDir roots a disk-backed store at dir. Required by "disk";
// ignored by "mem".
func WithStoreDir(dir string) StoreOption { return store.WithDir(dir) }

// WithStoreCompactEvery sets how many evidence segment files may
// accumulate before a put compacts them into one (disk store; 0 means
// the default).
func WithStoreCompactEvery(n int) StoreOption { return store.WithCompactEvery(n) }

// WithStoreBlockKeys bounds the keys per difference-encoded block in
// new segments (disk store; 0 means the default).
func WithStoreBlockKeys(n int) StoreOption { return store.WithBlockKeys(n) }

// WithStoreLog installs a logger for store recovery events (e.g. a
// quarantined torn segment).
func WithStoreLog(logf func(format string, args ...any)) StoreOption {
	return store.WithLog(logf)
}

// storeHandle lazily opens a named store exactly once, however many
// Runners the option is applied to — a Pipeline rebuilds its Runner
// every run, and all of them must share the one store.
type storeHandle struct {
	name string
	opts []match.StoreOption

	once sync.Once
	s    match.Store
	err  error
}

func (h *storeHandle) open() (match.Store, error) {
	h.once.Do(func() {
		h.s, h.err = store.Open(h.name, h.opts...)
		if h.err != nil {
			h.err = fmt.Errorf("cem: opening store %q: %w", h.name, h.err)
		}
	})
	return h.s, h.err
}

// WithStore keeps the run's evidence in the named storage backend
// ("mem", "disk", or anything passed to RegisterStore). The store is
// opened lazily on first use and shared by every run of the Runner (or
// Pipeline) the option is applied to; after each completed round it
// holds exactly the run's accumulated evidence. Like WithCheckpointDir,
// a store forces the neighborhood schemes onto the round-based executor
// (evidence is mirrored at round boundaries); FULL and UB have no round
// structure and leave the store untouched.
//
// The caller owns the store's lifetime end of things only insofar as the
// process exit: WithStore never closes it. To manage Close explicitly,
// open with OpenStore and use WithOpenedStore.
func WithStore(name string, opts ...StoreOption) RunnerOption {
	h := &storeHandle{name: name, opts: opts}
	return func(r *Runner) { r.storeh = h }
}

// WithOpenedStore is WithStore for a store the caller opened (and will
// close) itself.
func WithOpenedStore(s match.Store) RunnerOption {
	return func(r *Runner) { r.store = s }
}

// evidenceStore resolves the runner's configured store, opening a lazy
// WithStore handle on first use. Returns (nil, nil) when no store is
// configured.
func (r *Runner) evidenceStore() (match.Store, error) {
	if r.store != nil {
		return r.store, nil
	}
	if r.storeh != nil {
		return r.storeh.open()
	}
	return nil, nil
}

// Store returns the runner's store, opening it if WithStore was used
// and it has not been opened yet. Returns nil when the runner has none.
func (r *Runner) Store() (match.Store, error) { return r.evidenceStore() }
