package wire

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randKeys produces n strictly increasing valid pair keys.
func randKeys(rng *rand.Rand, n int) []uint64 {
	set := map[uint64]struct{}{}
	for len(set) < n {
		a := rng.Int31n(1000)
		b := rng.Int31n(1000)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		set[uint64(a)<<32|uint64(uint32(b))] = struct{}{}
	}
	keys := make([]uint64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// randGroups produces unordered key groups (maximal-message shaped).
func randGroups(rng *rand.Rand, n int) [][]uint64 {
	if n == 0 {
		return nil
	}
	groups := make([][]uint64, n)
	for i := range groups {
		g := randKeys(rng, 1+rng.Intn(5))
		rng.Shuffle(len(g), func(a, b int) { g[a], g[b] = g[b], g[a] })
		groups[i] = g
	}
	return groups
}

func randDelta(rng *rand.Rand) *Delta {
	return &Delta{Round: rng.Intn(100), Keys: randKeys(rng, rng.Intn(50))}
}

func randBatch(rng *rand.Rand) *ShardBatch {
	b := &ShardBatch{Round: rng.Intn(100), Shard: rng.Intn(16), Epoch: rng.Intn(5)}
	for i := 0; i < rng.Intn(8); i++ {
		b.Jobs = append(b.Jobs, Job{
			ID:      rng.Int31n(500),
			Skipped: rng.Intn(4) == 0,
			Active:  rng.Intn(40),
			Calls:   rng.Intn(10),
			Dur:     rng.Int63n(1e9),
			Matches: randKeys(rng, rng.Intn(20)),
			Msgs:    randGroups(rng, rng.Intn(3)),
		})
	}
	return b
}

func randCheckpoint(rng *rand.Rand) *Checkpoint {
	n := 1 + rng.Intn(40)
	c := &Checkpoint{
		Scheme:        []string{"SMP", "MMP", "NO-MP"}[rng.Intn(3)],
		Neighborhoods: n,
		Entities:      n * 3,
		Round:         1 + rng.Intn(10),
		Done:          rng.Intn(2) == 0,
		Delta:         randKeys(rng, rng.Intn(30)),
		Messages:      randGroups(rng, rng.Intn(4)),
		Visits:        make([]int, n),
	}
	for i := range c.Visits {
		c.Visits[i] = rng.Intn(5)
	}
	for id := 0; id < n; id++ {
		if rng.Intn(3) == 0 {
			c.Active = append(c.Active, int32(id))
		}
	}
	c.Stats = Stats{
		Neighborhoods: n,
		MatcherCalls:  rng.Intn(1000),
		Evaluations:   rng.Intn(1000),
		MaxRevisits:   rng.Intn(10),
		MessagesSent:  rng.Intn(1000),
		ScoreChecks:   rng.Intn(100),
		Skips:         rng.Intn(50),
		ElapsedNS:     rng.Int63n(1e12),
		MatcherTimeNS: rng.Int63n(1e12),
	}
	for i := 0; i < rng.Intn(20); i++ {
		c.Stats.ActiveSizes = append(c.Stats.ActiveSizes, rng.Intn(100))
	}
	return c
}

// TestRoundTripProperty: for randomly generated messages, both codecs
// round-trip to an identical value, and the two codecs decode to the
// same value as each other.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		d := randDelta(rng)
		roundTrip(t, d,
			func(f Format) ([]byte, error) { return d.Marshal(f) },
			func(b []byte) (any, error) { return UnmarshalDelta(b) })

		sb := randBatch(rng)
		roundTrip(t, sb,
			func(f Format) ([]byte, error) { return sb.Marshal(f) },
			func(b []byte) (any, error) { return UnmarshalShardBatch(b) })

		c := randCheckpoint(rng)
		roundTrip(t, c,
			func(f Format) ([]byte, error) { return c.Marshal(f) },
			func(b []byte) (any, error) { return UnmarshalCheckpoint(b) })
	}
}

func roundTrip(t *testing.T, want any, marshal func(Format) ([]byte, error), unmarshal func([]byte) (any, error)) {
	t.Helper()
	var decoded []any
	for _, f := range []Format{Binary, JSON} {
		b, err := marshal(f)
		if err != nil {
			t.Fatalf("marshal(%v): %v", f, err)
		}
		got, err := unmarshal(b)
		if err != nil {
			t.Fatalf("unmarshal(%v): %v\ninput: %q", f, err, b)
		}
		if !equalMsg(got, want) {
			t.Fatalf("round trip through %v diverged:\ngot:  %+v\nwant: %+v", f, got, want)
		}
		decoded = append(decoded, got)
	}
	if !reflect.DeepEqual(normalize(decoded[0]), normalize(decoded[1])) {
		t.Fatalf("binary and JSON decode disagree:\nbinary: %+v\njson:   %+v", decoded[0], decoded[1])
	}
}

// equalMsg compares ignoring nil-vs-empty slice differences (JSON decodes
// empty lists as empty non-nil slices; binary as nil).
func equalMsg(got, want any) bool {
	return reflect.DeepEqual(normalize(got), normalize(want))
}

func normalize(v any) any {
	switch m := v.(type) {
	case *Delta:
		c := *m
		c.Keys = normKeys(c.Keys)
		return c
	case *ShardBatch:
		c := *m
		c.Jobs = append([]Job(nil), c.Jobs...)
		if len(c.Jobs) == 0 {
			c.Jobs = nil
		}
		for i := range c.Jobs {
			c.Jobs[i].Matches = normKeys(c.Jobs[i].Matches)
			c.Jobs[i].Msgs = normGroups(c.Jobs[i].Msgs)
		}
		return c
	case *Assign:
		c := *m
		c.Keys = normKeys(c.Keys)
		if len(c.IDs) == 0 {
			c.IDs = nil
		}
		return c
	case *Checkpoint:
		c := *m
		c.Delta = normKeys(c.Delta)
		c.Messages = normGroups(c.Messages)
		if len(c.Active) == 0 {
			c.Active = nil
		}
		if len(c.Visits) == 0 {
			c.Visits = nil
		}
		if len(c.Stats.ActiveSizes) == 0 {
			c.Stats.ActiveSizes = nil
		}
		return c
	}
	return v
}

func normKeys(k []uint64) []uint64 {
	if len(k) == 0 {
		return nil
	}
	return k
}

func normGroups(g [][]uint64) [][]uint64 {
	if len(g) == 0 {
		return nil
	}
	out := make([][]uint64, len(g))
	for i := range g {
		out[i] = normKeys(g[i])
	}
	return out
}

// TestBinaryCompact: the binary codec should beat JSON by a wide margin
// on realistic delta batches (the whole point of difference-encoding).
func TestBinaryCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := &Delta{Round: 3, Keys: randKeys(rng, 500)}
	bin, err := d.Marshal(Binary)
	if err != nil {
		t.Fatal(err)
	}
	js, err := d.Marshal(JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin)*2 > len(js) {
		t.Errorf("binary delta not compact: %d bytes binary vs %d JSON", len(bin), len(js))
	}
}

// TestRejectsInvalid: structurally invalid messages fail to decode (and
// to encode) in both codecs.
func TestRejectsInvalid(t *testing.T) {
	if _, err := (&Delta{Keys: []uint64{5}}).Marshal(Binary); err != nil {
		t.Errorf("key 5 = pair (0,5) should be valid, got %v", err)
	}
	bad := []*Delta{
		{Keys: []uint64{uint64(7)<<32 | 7}},             // reflexive pair
		{Keys: []uint64{uint64(9)<<32 | 4}},             // unnormalized (A > B)
		{Keys: []uint64{uint64(1)<<32 | 2, 1<<32 | 2}},  // duplicate
		{Keys: []uint64{uint64(2)<<32 | 3, 1<<32 | 5}},  // unsorted
		{Keys: []uint64{uint64(1)<<32 | uint64(1)<<31}}, // B overflows int32
		{Round: -1, Keys: []uint64{uint64(1)<<32 | 2}},  // negative round
	}
	for _, d := range bad {
		if _, err := d.Marshal(Binary); err == nil {
			t.Errorf("Marshal accepted invalid delta %+v", d)
		}
	}
	if _, err := UnmarshalDelta([]byte(`{"cemw":1,"type":1,"msg":{"round":1,"keys":[18446744073709551615]}}`)); err == nil {
		t.Error("UnmarshalDelta accepted an invalid key via JSON")
	}
	if _, err := UnmarshalDelta([]byte(`{"cemw":2,"type":1,"msg":{"round":1,"keys":[]}}`)); err == nil {
		t.Error("UnmarshalDelta accepted a future version")
	}
	if _, err := UnmarshalDelta([]byte(`{"cemw":1,"type":3,"msg":{}}`)); err == nil {
		t.Error("UnmarshalDelta accepted a checkpoint-typed message")
	}
	// A checkpoint whose visit count disagrees with the neighborhood count.
	if _, err := UnmarshalCheckpoint([]byte(`{"cemw":1,"type":3,"msg":{"scheme":"SMP","neighborhoods":3,"entities":9,"round":1,"delta":[],"active":[],"visits":[1],"stats":{"neighborhoods":3,"matcher_calls":0,"evaluations":0,"max_revisits":0,"messages_sent":0,"maximal_messages":0,"promoted_sets":0,"score_checks":0,"skips":0,"elapsed_ns":0,"matcher_time_ns":0,"active_sizes":[]}}}`)); err == nil {
		t.Error("UnmarshalCheckpoint accepted mismatched visits length")
	}
}

// TestTruncatedBinary: every prefix of a valid binary message must fail
// cleanly, never panic.
func TestTruncatedBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randCheckpoint(rng)
	b, err := c.Marshal(Binary)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i++ {
		if _, err := UnmarshalCheckpoint(b[:i]); err == nil {
			t.Fatalf("accepted truncated message at %d/%d bytes", i, len(b))
		}
	}
	if _, err := UnmarshalCheckpoint(append(append([]byte{}, b...), 0)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
}
