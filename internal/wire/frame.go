package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"
)

// This file is the stream layer of the distributed ("sharded-net")
// backend: length-prefixed, versioned frames carrying wire messages over
// a byte stream (TCP, unix socket, or an in-process pipe), plus the
// control messages the coordinator and its workers exchange around the
// existing data messages (ShardBatch, Delta).
//
// A frame is
//
//	magic "CEMF" | version (1 byte) | frame type (1 byte) |
//	payload length (uint32, big endian) | payload
//
// The payload of a data frame is itself a wire message in either codec
// (the framing layer does not look inside). Truncation anywhere — a torn
// connection, a partial write, a crashed peer — is reported as the typed
// ErrTruncated, never a panic and never a silent short read, so callers
// can distinguish "the stream ended mid-frame" (retry/reassign) from a
// clean end of stream (io.EOF exactly at a frame boundary).

// frameMagic opens every frame. Distinct from the message magic "CEMW"
// so a frame can never be mistaken for a bare message (or vice versa).
var frameMagic = [4]byte{'C', 'E', 'M', 'F'}

// FrameVersion is the framing-layer version, independent of the message
// Version (a framing change does not invalidate persisted checkpoints).
const FrameVersion = 1

// frameHeaderLen is magic + version + type + uint32 length.
const frameHeaderLen = 4 + 1 + 1 + 4

// MaxFramePayload bounds a frame payload (64 MiB). A corrupt or hostile
// length prefix is rejected before any allocation.
const MaxFramePayload = 1 << 26

// Frame types of the sharded-net protocol.
const (
	// FrameHello announces a run: the coordinator sends its run
	// fingerprint after connecting, the worker answers with FrameHelloAck
	// carrying its own. Mismatched fingerprints end the session.
	FrameHello byte = 1
	// FrameHelloAck is the worker's handshake reply.
	FrameHelloAck byte = 2
	// FrameAssign hands a worker one partition of one round: the active
	// ids to evaluate plus the evidence catch-up bringing the worker's
	// replica to the round-start snapshot.
	FrameAssign byte = 3
	// FrameBatch returns a partition's evaluation results (a ShardBatch
	// message, epoch-tagged).
	FrameBatch byte = 4
	// FrameHeartbeat is the worker's liveness signal while it evaluates
	// an assignment.
	FrameHeartbeat byte = 5
	// FrameBatchAck confirms the coordinator accounted a batch; the
	// worker may drop its resend cache for that partition.
	FrameBatchAck byte = 6
)

// ErrTruncated reports a byte stream that ended inside a frame: header
// or payload cut short. It is the typed signal of a torn connection or a
// partial write; a clean end of stream at a frame boundary is io.EOF.
var ErrTruncated = errors.New("wire: truncated frame")

// validFrameType reports whether t is a known frame type.
func validFrameType(t byte) bool {
	return t >= FrameHello && t <= FrameBatchAck
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The payload is copied, not aliased.
func AppendFrame(dst []byte, frameType byte, payload []byte) ([]byte, error) {
	if !validFrameType(frameType) {
		return dst, fmt.Errorf("wire: unknown frame type %d", frameType)
	}
	if len(payload) > MaxFramePayload {
		return dst, fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFramePayload)
	}
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, FrameVersion, frameType)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// WriteFrame writes one frame to w as a single Write call, so
// frame-granular middlewares (fault injectors, buffered conns) see whole
// frames.
func WriteFrame(w io.Writer, frameType byte, payload []byte) error {
	buf, err := AppendFrame(make([]byte, 0, frameHeaderLen+len(payload)), frameType, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from r. A stream that ends cleanly
// at a frame boundary returns io.EOF; a stream that ends inside a frame
// returns ErrTruncated; corrupt headers (bad magic, unknown version or
// type, oversized length) are reported as ordinary errors. The payload
// is freshly allocated and safe to retain.
func ReadFrame(r io.Reader) (frameType byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err
	}
	if string(hdr[:4]) != string(frameMagic[:]) {
		return 0, nil, fmt.Errorf("wire: bad frame magic %q", hdr[:4])
	}
	if hdr[4] != FrameVersion {
		return 0, nil, fmt.Errorf("wire: unsupported frame version %d (want %d)", hdr[4], FrameVersion)
	}
	frameType = hdr[5]
	if !validFrameType(frameType) {
		return 0, nil, fmt.Errorf("wire: unknown frame type %d", frameType)
	}
	n := binary.BigEndian.Uint32(hdr[6:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFramePayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err
	}
	return frameType, payload, nil
}

// Control-message type tags (continuing the data-message tags in
// wire.go).
const (
	typeHello     = 4
	typeAssign    = 5
	typeHeartbeat = 6
	typeBatchAck  = 7
)

// Hello is the handshake message: the coordinator announces the run it
// is about to distribute, and each worker echoes its own view back. Both
// sides verify the other's fingerprint — scheme, matcher label (empty
// opts out, as in checkpoints), cover sizes — so a worker grounded on a
// different corpus or model is rejected before any work is assigned.
type Hello struct {
	Worker        int    `json:"worker"` // worker id (coordinator side: the slot being greeted)
	Scheme        string `json:"scheme"`
	Matcher       string `json:"matcher,omitempty"`
	Neighborhoods int    `json:"neighborhoods"`
	Entities      int    `json:"entities"`
	// HeartbeatNS asks the worker to heartbeat at this interval while
	// evaluating (coordinator→worker; workers echo it back untouched).
	HeartbeatNS int64 `json:"heartbeat_ns"`
}

// Assign hands one partition of one round to a worker. Keys is the
// evidence catch-up — the sorted pair keys the worker must merge into
// its replica to reach the round-start snapshot, given that its replica
// currently holds the start-of-FromRound state (FromRound 0 means an
// empty replica: the keys are the full snapshot). IDs are the partition's
// active neighborhoods, ascending. Epoch tags the assignment: the
// coordinator bumps it whenever the partition is re-sent or reassigned,
// and a returned batch carrying a stale epoch is discarded, never
// double-applied.
type Assign struct {
	Round     int      `json:"round"`
	Epoch     int      `json:"epoch"`
	Part      int      `json:"part"`
	FromRound int      `json:"from_round"`
	AllowSkip bool     `json:"allow_skip,omitempty"`
	Keys      []uint64 `json:"keys"` // strictly increasing catch-up evidence
	IDs       []int32  `json:"ids"`  // active ids of the partition, ascending
}

// Heartbeat is the worker's periodic liveness signal while an
// assignment is being evaluated.
type Heartbeat struct {
	Worker int `json:"worker"`
	Round  int `json:"round"`
	Part   int `json:"part"`
}

// BatchAck confirms the coordinator accounted the batch of (Round,
// Part, Epoch); the worker may drop its resend cache for the partition.
type BatchAck struct {
	Round int `json:"round"`
	Part  int `json:"part"`
	Epoch int `json:"epoch"`
}

func (h *Hello) validate() error {
	if !utf8.ValidString(h.Scheme) {
		return fmt.Errorf("wire: hello.scheme is not valid UTF-8")
	}
	if !utf8.ValidString(h.Matcher) {
		return fmt.Errorf("wire: hello.matcher is not valid UTF-8")
	}
	return nonNegative("hello counters",
		int64(h.Worker), int64(h.Neighborhoods), int64(h.Entities), h.HeartbeatNS)
}

func (a *Assign) validate() error {
	if err := nonNegative("assign counters",
		int64(a.Round), int64(a.Epoch), int64(a.Part), int64(a.FromRound)); err != nil {
		return err
	}
	if a.FromRound > a.Round {
		return fmt.Errorf("wire: assign.from_round %d past round %d", a.FromRound, a.Round)
	}
	if err := checkSortedKeys("assign.keys", a.Keys); err != nil {
		return err
	}
	for i, id := range a.IDs {
		if id < 0 {
			return fmt.Errorf("wire: assign.ids[%d] is negative", i)
		}
		if i > 0 && a.IDs[i-1] >= id {
			return fmt.Errorf("wire: assign.ids not strictly increasing at %d", i)
		}
	}
	return nil
}

func (h *Heartbeat) validate() error {
	return nonNegative("heartbeat counters", int64(h.Worker), int64(h.Round), int64(h.Part))
}

func (a *BatchAck) validate() error {
	return nonNegative("batch-ack counters", int64(a.Round), int64(a.Part), int64(a.Epoch))
}

// Marshal serializes the hello in the given format.
func (h *Hello) Marshal(f Format) ([]byte, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeHello, h)
	}
	e := newEncoder(typeHello)
	e.uvarint(uint64(h.Worker))
	e.str(h.Scheme)
	e.str(h.Matcher)
	e.uvarint(uint64(h.Neighborhoods))
	e.uvarint(uint64(h.Entities))
	e.uvarint(uint64(h.HeartbeatNS))
	return e.bytes(), nil
}

// UnmarshalHello decodes a Hello (either codec).
func UnmarshalHello(b []byte) (*Hello, error) {
	var h Hello
	if isBinary(b) {
		dec, err := newDecoder(b, typeHello)
		if err != nil {
			return nil, err
		}
		h.Worker = int(dec.uvarint("worker"))
		h.Scheme = dec.str("scheme")
		h.Matcher = dec.str("matcher")
		h.Neighborhoods = int(dec.uvarint("neighborhoods"))
		h.Entities = int(dec.uvarint("entities"))
		h.HeartbeatNS = int64(dec.uvarint("heartbeat_ns"))
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeHello, &h); err != nil {
		return nil, err
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// Marshal serializes the assignment in the given format.
func (a *Assign) Marshal(f Format) ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeAssign, a)
	}
	e := newEncoder(typeAssign)
	e.uvarint(uint64(a.Round))
	e.uvarint(uint64(a.Epoch))
	e.uvarint(uint64(a.Part))
	e.uvarint(uint64(a.FromRound))
	if a.AllowSkip {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
	e.sortedKeys(a.Keys)
	e.uvarint(uint64(len(a.IDs)))
	prev := int32(-1)
	for _, id := range a.IDs {
		e.uvarint(uint64(id - prev)) // ascending: difference-encode
		prev = id
	}
	return e.bytes(), nil
}

// UnmarshalAssign decodes an Assign (either codec).
func UnmarshalAssign(b []byte) (*Assign, error) {
	var a Assign
	if isBinary(b) {
		dec, err := newDecoder(b, typeAssign)
		if err != nil {
			return nil, err
		}
		a.Round = int(dec.uvarint("round"))
		a.Epoch = int(dec.uvarint("epoch"))
		a.Part = int(dec.uvarint("part"))
		a.FromRound = int(dec.uvarint("from_round"))
		a.AllowSkip = dec.uvarint("allow_skip") != 0
		a.Keys = dec.sortedKeys("keys")
		n := dec.count("ids")
		if n > 0 {
			a.IDs = make([]int32, n)
			prev := int64(-1)
			for i := range a.IDs {
				prev += int64(dec.uvarint("ids"))
				if prev > int64(1)<<31-1 {
					dec.fail("ids", "id overflows int32")
					prev = 0
				}
				a.IDs[i] = int32(prev)
			}
		}
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeAssign, &a); err != nil {
		return nil, err
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Marshal serializes the heartbeat in the given format.
func (h *Heartbeat) Marshal(f Format) ([]byte, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeHeartbeat, h)
	}
	e := newEncoder(typeHeartbeat)
	e.uvarint(uint64(h.Worker))
	e.uvarint(uint64(h.Round))
	e.uvarint(uint64(h.Part))
	return e.bytes(), nil
}

// UnmarshalHeartbeat decodes a Heartbeat (either codec).
func UnmarshalHeartbeat(b []byte) (*Heartbeat, error) {
	var h Heartbeat
	if isBinary(b) {
		dec, err := newDecoder(b, typeHeartbeat)
		if err != nil {
			return nil, err
		}
		h.Worker = int(dec.uvarint("worker"))
		h.Round = int(dec.uvarint("round"))
		h.Part = int(dec.uvarint("part"))
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeHeartbeat, &h); err != nil {
		return nil, err
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// Marshal serializes the ack in the given format.
func (a *BatchAck) Marshal(f Format) ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeBatchAck, a)
	}
	e := newEncoder(typeBatchAck)
	e.uvarint(uint64(a.Round))
	e.uvarint(uint64(a.Part))
	e.uvarint(uint64(a.Epoch))
	return e.bytes(), nil
}

// UnmarshalBatchAck decodes a BatchAck (either codec).
func UnmarshalBatchAck(b []byte) (*BatchAck, error) {
	var a BatchAck
	if isBinary(b) {
		dec, err := newDecoder(b, typeBatchAck)
		if err != nil {
			return nil, err
		}
		a.Round = int(dec.uvarint("round"))
		a.Part = int(dec.uvarint("part"))
		a.Epoch = int(dec.uvarint("epoch"))
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeBatchAck, &a); err != nil {
		return nil, err
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return &a, nil
}
