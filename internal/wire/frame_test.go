package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// sampleFrames builds a small valid frame stream and its parsed form.
func sampleFrames(t *testing.T) ([]byte, []byte) {
	t.Helper()
	hello, err := (&Hello{Worker: 2, Scheme: "SMP", Matcher: "mln",
		Neighborhoods: 9, Entities: 27, HeartbeatNS: 5e6}).Marshal(Binary)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := (&Assign{Round: 3, Epoch: 1, Part: 2, FromRound: 2, AllowSkip: true,
		Keys: []uint64{1<<32 | 2, 1<<32 | 7, 3<<32 | 5}, IDs: []int32{2, 5, 8}}).Marshal(Binary)
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for _, fr := range []struct {
		t byte
		p []byte
	}{{FrameHello, hello}, {FrameAssign, assign}, {FrameHeartbeat, nil}} {
		stream, err = AppendFrame(stream, fr.t, fr.p)
		if err != nil {
			t.Fatal(err)
		}
	}
	return stream, assign
}

func TestFrameRoundTrip(t *testing.T) {
	stream, assign := sampleFrames(t)
	r := bytes.NewReader(stream)
	ft, payload, err := ReadFrame(r)
	if err != nil || ft != FrameHello {
		t.Fatalf("first frame: type %d err %v", ft, err)
	}
	if _, err := UnmarshalHello(payload); err != nil {
		t.Fatalf("hello payload: %v", err)
	}
	ft, payload, err = ReadFrame(r)
	if err != nil || ft != FrameAssign {
		t.Fatalf("second frame: type %d err %v", ft, err)
	}
	if !bytes.Equal(payload, assign) {
		t.Fatal("assign payload mutated in transit")
	}
	got, err := UnmarshalAssign(payload)
	if err != nil {
		t.Fatalf("assign payload: %v", err)
	}
	want := &Assign{Round: 3, Epoch: 1, Part: 2, FromRound: 2, AllowSkip: true,
		Keys: []uint64{1<<32 | 2, 1<<32 | 7, 3<<32 | 5}, IDs: []int32{2, 5, 8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("assign round trip:\ngot:  %+v\nwant: %+v", got, want)
	}
	if ft, payload, err = ReadFrame(r); err != nil || ft != FrameHeartbeat || len(payload) != 0 {
		t.Fatalf("third frame: type %d len %d err %v", ft, len(payload), err)
	}
	if _, _, err = ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream: want io.EOF, got %v", err)
	}
}

// TestFrameTruncation cuts a valid stream at every byte boundary: each
// strict prefix must decode its whole frames and then report the typed
// ErrTruncated — never a panic, never a silent acceptance, and io.EOF
// only at exact frame boundaries.
func TestFrameTruncation(t *testing.T) {
	stream, _ := sampleFrames(t)
	boundaries := map[int]bool{0: true, len(stream): true}
	r := bytes.NewReader(stream)
	for {
		if _, _, err := ReadFrame(r); err != nil {
			break
		}
		boundaries[len(stream)-r.Len()] = true
	}
	for cut := 0; cut < len(stream); cut++ {
		r := bytes.NewReader(stream[:cut])
		var err error
		for {
			if _, _, err = ReadFrame(r); err != nil {
				break
			}
		}
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut %d (frame boundary): want io.EOF, got %v", cut, err)
			}
		} else if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestFrameHeaderErrors(t *testing.T) {
	frame, err := AppendFrame(nil, FrameBatch, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[4] = 99; return b },
		"unknown type": func(b []byte) []byte { b[5] = 200; return b },
		"oversize count": func(b []byte) []byte {
			b[6], b[7], b[8], b[9] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		},
	}
	for name, mutate := range cases {
		b := mutate(append([]byte(nil), frame...))
		if _, _, err := ReadFrame(bytes.NewReader(b)); err == nil || errors.Is(err, ErrTruncated) {
			t.Errorf("%s: want a header error, got %v", name, err)
		}
	}
	if _, err := AppendFrame(nil, 99, nil); err == nil {
		t.Error("AppendFrame accepted an unknown frame type")
	}
	if err := WriteFrame(io.Discard, FrameBatch, make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("WriteFrame accepted an oversized payload")
	}
}

func TestControlMessageValidation(t *testing.T) {
	bad := []interface {
		Marshal(Format) ([]byte, error)
	}{
		&Hello{Worker: -1},
		&Hello{Scheme: string([]byte{0xff, 0xfe})},
		&Assign{Round: 2, FromRound: 3},
		&Assign{Keys: []uint64{5<<32 | 2}}, // invalid pair key (A >= B)
		&Assign{IDs: []int32{4, 2}},
		&Assign{IDs: []int32{-1}},
		&Heartbeat{Round: -1},
		&BatchAck{Epoch: -1},
	}
	for i, m := range bad {
		for _, format := range []Format{Binary, JSON} {
			if _, err := m.Marshal(format); err == nil {
				t.Errorf("case %d (%T, format %v): invalid message marshaled", i, m, format)
			}
		}
	}
}

func TestControlMessageRoundTripJSON(t *testing.T) {
	a := &Assign{Round: 7, Epoch: 2, Part: 1, FromRound: 4,
		Keys: []uint64{2<<32 | 9}, IDs: []int32{0, 7}}
	b, err := a.Marshal(JSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAssign(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("JSON round trip mutated assign:\ngot:  %+v\nwant: %+v", got, a)
	}
	hb := &Heartbeat{Worker: 3, Round: 9, Part: 2}
	if b, err = hb.Marshal(JSON); err != nil {
		t.Fatal(err)
	}
	if got, err := UnmarshalHeartbeat(b); err != nil || !reflect.DeepEqual(got, hb) {
		t.Fatalf("heartbeat JSON round trip: %+v, %v", got, err)
	}
	ack := &BatchAck{Round: 9, Part: 2, Epoch: 1}
	if b, err = ack.Marshal(JSON); err != nil {
		t.Fatal(err)
	}
	if got, err := UnmarshalBatchAck(b); err != nil || !reflect.DeepEqual(got, ack) {
		t.Fatalf("batch-ack JSON round trip: %+v, %v", got, err)
	}
}

// randFrameStream encodes a random mix of frames.
func randFrameStream(rng *rand.Rand) []byte {
	var stream []byte
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		var payload []byte
		ft := FrameHello + byte(rng.Intn(int(FrameBatchAck)))
		switch rng.Intn(4) {
		case 0:
			payload, _ = (&Hello{Worker: rng.Intn(8), Scheme: "SMP",
				Neighborhoods: rng.Intn(50), Entities: rng.Intn(150)}).Marshal(Binary)
		case 1:
			payload, _ = (&Assign{Round: rng.Intn(9), Epoch: rng.Intn(3), Part: rng.Intn(4),
				Keys: randKeys(rng, rng.Intn(10))}).Marshal(Binary)
		case 2:
			payload, _ = randBatch(rng).Marshal(Binary)
		case 3: // raw junk payload: frames carry opaque bytes
			payload = make([]byte, rng.Intn(32))
			rng.Read(payload)
		}
		stream, _ = AppendFrame(stream, ft, payload)
	}
	return stream
}

// FuzzFrameRoundTrip feeds the frame reader arbitrary byte streams: it
// must never panic, and every strict prefix of whatever it accepts must
// fail with the typed ErrTruncated (or io.EOF exactly at a frame
// boundary) — the torn-connection guarantee the distributed backend's
// retry path relies on. Control-message payloads are additionally
// round-tripped through both codecs.
func FuzzFrameRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		f.Add(randFrameStream(rng))
	}
	f.Add([]byte("CEMF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		// Decode whatever prefix of b parses as frames.
		r := bytes.NewReader(b)
		type frame struct {
			t byte
			p []byte
		}
		var frames []frame
		for {
			ft, payload, err := ReadFrame(r)
			if err != nil {
				break
			}
			frames = append(frames, frame{ft, payload})
			// Control payloads must round-trip losslessly or be rejected;
			// either way, never panic.
			if h, err := UnmarshalHello(payload); err == nil {
				reEncode(t, h,
					func(f Format) ([]byte, error) { return h.Marshal(f) },
					func(b []byte) (any, error) { return UnmarshalHello(b) })
			}
			if a, err := UnmarshalAssign(payload); err == nil {
				reEncode(t, a,
					func(f Format) ([]byte, error) { return a.Marshal(f) },
					func(b []byte) (any, error) { return UnmarshalAssign(b) })
			}
		}

		// Re-encode the accepted frames: the canonical stream. Every
		// strict prefix must yield exactly the full frames before the
		// cut, then ErrTruncated (or io.EOF at a boundary).
		var canon []byte
		var err error
		for _, fr := range frames {
			if canon, err = AppendFrame(canon, fr.t, fr.p); err != nil {
				t.Fatalf("accepted frame fails to re-encode: %v", err)
			}
		}
		if len(canon) > 4096 {
			return // bound the quadratic prefix sweep
		}
		boundaries := make(map[int]bool, len(frames)+1)
		off := 0
		boundaries[0] = true
		for _, fr := range frames {
			off += frameHeaderLen + len(fr.p)
			boundaries[off] = true
		}
		for cut := 0; cut <= len(canon); cut++ {
			r := bytes.NewReader(canon[:cut])
			n := 0
			var err error
			for {
				if _, _, err = ReadFrame(r); err != nil {
					break
				}
				n++
			}
			if boundaries[cut] {
				if err != io.EOF {
					t.Fatalf("cut %d at boundary: want io.EOF after %d frames, got %v", cut, n, err)
				}
			} else if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d mid-frame: want ErrTruncated, got %v", cut, err)
			}
		}
	})
}
