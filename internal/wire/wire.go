// Package wire defines the serialized message formats exchanged by the
// sharded execution backend and persisted by the checkpoint/resume
// machinery: evidence deltas, per-shard round results, and round
// checkpoints. Pair sets travel as packed PairKey uint64 batches in
// strictly increasing key order (key order = (A, then B) pair order), so
// a delta batch is canonical: two equal sets always serialize to the
// same bytes.
//
// Two interchangeable codecs are provided. The binary codec (magic
// "CEMW") is the compact default: varint fields with sorted key lists
// difference-encoded, typically several times smaller than JSON. The
// JSON codec is self-describing and diffable, for debugging and
// cross-tool interchange. Decoding sniffs the format from the leading
// bytes, so readers accept either; both codecs carry the same format
// version and message type tags, and decoding validates structural
// invariants (sorted keys, valid normalized pairs, non-negative
// counters) so corrupt or foreign input is reported as an error rather
// than smuggled into the engine.
//
// The package deliberately depends on nothing inside the engine: keys
// are plain uint64s and ids plain int32s, so the wire format is stable
// against internal refactors and usable by external tooling.
package wire

import (
	"fmt"
	"time"
	"unicode/utf8"
)

// Format selects a codec.
type Format int

const (
	// Binary is the compact varint codec (magic "CEMW"). Default.
	Binary Format = iota
	// JSON is the self-describing textual codec.
	JSON
)

// Version is the wire-format version stamped into every message. Readers
// reject versions they do not know.
const Version = 1

// Message type tags (binary: one byte after the version; JSON: the
// "type" field).
const (
	typeDelta      = 1
	typeShardBatch = 2
	typeCheckpoint = 3
)

// Delta is one round's evidence delta: the pairs newly decided in that
// round, as packed PairKeys in strictly increasing order. This is the
// only message that ever carries evidence between shards — shards hold
// no shared mutable state, they converge by applying the same deltas.
type Delta struct {
	Round int      `json:"round"`
	Keys  []uint64 `json:"keys"` // strictly increasing valid PairKeys
}

// Job is the serialized outcome of one neighborhood evaluation, the
// per-neighborhood payload of a ShardBatch. Matches are sorted PairKeys;
// Msgs are the neighborhood's maximal messages (MMP only), order- and
// grouping-preserving (promotion scans them in generation order).
type Job struct {
	ID      int32      `json:"id"`
	Skipped bool       `json:"skipped,omitempty"`
	Active  int        `json:"active"`
	Calls   int        `json:"calls"`
	Dur     int64      `json:"dur_ns"`
	Matches []uint64   `json:"matches"`
	Msgs    [][]uint64 `json:"msgs,omitempty"`
}

// ShardBatch is one shard's serialized output for one round: the
// evaluations of every active neighborhood owned by the shard, in the
// shard's deterministic evaluation order. Epoch echoes the assignment
// epoch in the distributed backend, where the coordinator discards
// batches whose epoch is stale (the partition was reassigned after a
// deadline breach — a slow "zombie" worker's late batch must not be
// double-applied); the in-process sharded backend leaves it 0.
type ShardBatch struct {
	Round int   `json:"round"`
	Shard int   `json:"shard"`
	Epoch int   `json:"epoch,omitempty"`
	Jobs  []Job `json:"jobs"`
}

// Stats mirrors the engine's RunStats in wire-stable form (durations as
// nanoseconds).
type Stats struct {
	Neighborhoods   int   `json:"neighborhoods"`
	MatcherCalls    int   `json:"matcher_calls"`
	Evaluations     int   `json:"evaluations"`
	MaxRevisits     int   `json:"max_revisits"`
	MessagesSent    int   `json:"messages_sent"`
	MaximalMessages int   `json:"maximal_messages"`
	PromotedSets    int   `json:"promoted_sets"`
	ScoreChecks     int   `json:"score_checks"`
	Skips           int   `json:"skips"`
	ElapsedNS       int64 `json:"elapsed_ns"`
	MatcherTimeNS   int64 `json:"matcher_time_ns"`
	ActiveSizes     []int `json:"active_sizes"`
}

// Checkpoint is the durable record written after every completed round:
// the round's evidence delta plus everything needed to restart the run
// at the next round boundary (the next active set, the outstanding
// maximal messages, per-neighborhood visit counts, and the running
// statistics). Replaying Delta of rounds 1..r rebuilds the evidence set
// exactly; the remaining fields come from the latest record alone.
//
// Scheme, Matcher, Neighborhoods and Entities fingerprint the run:
// resuming against a different scheme, matcher or cover is rejected
// (Matcher is a caller-chosen label, e.g. the registry name; empty
// opts out of the matcher check for anonymous matchers).
type Checkpoint struct {
	Scheme        string     `json:"scheme"`
	Matcher       string     `json:"matcher,omitempty"`
	Neighborhoods int        `json:"neighborhoods"`
	Entities      int        `json:"entities"`
	Round         int        `json:"round"`
	Done          bool       `json:"done,omitempty"`
	Delta         []uint64   `json:"delta"`  // strictly increasing
	Active        []int32    `json:"active"` // next round's active set, ascending
	Messages      [][]uint64 `json:"messages,omitempty"`
	Visits        []int      `json:"visits"`
	Stats         Stats      `json:"stats"`
}

// Duration returns the job's matcher time.
func (j *Job) Duration() time.Duration { return time.Duration(j.Dur) }

// validKey reports whether k packs a normalized non-reflexive pair of
// non-negative int32 ids (A < B).
func validKey(k uint64) bool {
	a, b := uint32(k>>32), uint32(k)
	return a < b && b < 1<<31
}

// checkSortedKeys validates a strictly-increasing valid key batch.
func checkSortedKeys(field string, keys []uint64) error {
	for i, k := range keys {
		if !validKey(k) {
			return fmt.Errorf("wire: %s[%d]: invalid pair key %#x", field, i, k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("wire: %s not strictly increasing at %d", field, i)
		}
	}
	return nil
}

// checkKeys validates a key batch that need not be sorted (message
// groups preserve generation order).
func checkKeys(field string, keys []uint64) error {
	for i, k := range keys {
		if !validKey(k) {
			return fmt.Errorf("wire: %s[%d]: invalid pair key %#x", field, i, k)
		}
	}
	return nil
}

func nonNegative(field string, vs ...int64) error {
	for _, v := range vs {
		if v < 0 {
			return fmt.Errorf("wire: %s is negative (%d)", field, v)
		}
	}
	return nil
}

// validate checks the structural invariants shared by both codecs.
func (d *Delta) validate() error {
	if err := nonNegative("delta.round", int64(d.Round)); err != nil {
		return err
	}
	return checkSortedKeys("delta.keys", d.Keys)
}

func (b *ShardBatch) validate() error {
	if err := nonNegative("batch.round/shard", int64(b.Round), int64(b.Shard), int64(b.Epoch)); err != nil {
		return err
	}
	for i := range b.Jobs {
		j := &b.Jobs[i]
		if err := nonNegative("batch.job counters", int64(j.ID), int64(j.Active), int64(j.Calls), j.Dur); err != nil {
			return err
		}
		if err := checkSortedKeys("batch.job.matches", j.Matches); err != nil {
			return err
		}
		for _, msg := range j.Msgs {
			if err := checkKeys("batch.job.msgs", msg); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Checkpoint) validate() error {
	if !utf8.ValidString(c.Scheme) {
		return fmt.Errorf("wire: checkpoint.scheme is not valid UTF-8")
	}
	if !utf8.ValidString(c.Matcher) {
		return fmt.Errorf("wire: checkpoint.matcher is not valid UTF-8")
	}
	if err := nonNegative("checkpoint counters",
		int64(c.Round), int64(c.Neighborhoods), int64(c.Entities)); err != nil {
		return err
	}
	if err := checkSortedKeys("checkpoint.delta", c.Delta); err != nil {
		return err
	}
	for i, id := range c.Active {
		if id < 0 || int(id) >= c.Neighborhoods {
			return fmt.Errorf("wire: checkpoint.active[%d] = %d out of range [0,%d)", i, id, c.Neighborhoods)
		}
		if i > 0 && c.Active[i-1] >= id {
			return fmt.Errorf("wire: checkpoint.active not strictly increasing at %d", i)
		}
	}
	for _, msg := range c.Messages {
		if err := checkKeys("checkpoint.messages", msg); err != nil {
			return err
		}
	}
	if len(c.Visits) != c.Neighborhoods {
		return fmt.Errorf("wire: checkpoint has %d visit counts for %d neighborhoods", len(c.Visits), c.Neighborhoods)
	}
	for i, v := range c.Visits {
		if v < 0 {
			return fmt.Errorf("wire: checkpoint.visits[%d] is negative", i)
		}
	}
	s := &c.Stats
	if err := nonNegative("checkpoint.stats",
		int64(s.Neighborhoods), int64(s.MatcherCalls), int64(s.Evaluations),
		int64(s.MaxRevisits), int64(s.MessagesSent), int64(s.MaximalMessages),
		int64(s.PromotedSets), int64(s.ScoreChecks), int64(s.Skips),
		s.ElapsedNS, s.MatcherTimeNS); err != nil {
		return err
	}
	for i, a := range s.ActiveSizes {
		if a < 0 {
			return fmt.Errorf("wire: checkpoint.stats.active_sizes[%d] is negative", i)
		}
	}
	return nil
}

// Marshal serializes the delta in the given format.
func (d *Delta) Marshal(f Format) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeDelta, d)
	}
	e := newEncoder(typeDelta)
	e.uvarint(uint64(d.Round))
	e.sortedKeys(d.Keys)
	return e.bytes(), nil
}

// Marshal serializes the batch in the given format.
func (b *ShardBatch) Marshal(f Format) ([]byte, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeShardBatch, b)
	}
	e := newEncoder(typeShardBatch)
	e.uvarint(uint64(b.Round))
	e.uvarint(uint64(b.Shard))
	e.uvarint(uint64(b.Epoch))
	e.uvarint(uint64(len(b.Jobs)))
	for i := range b.Jobs {
		j := &b.Jobs[i]
		e.uvarint(uint64(j.ID))
		if j.Skipped {
			e.uvarint(1)
		} else {
			e.uvarint(0)
		}
		e.uvarint(uint64(j.Active))
		e.uvarint(uint64(j.Calls))
		e.uvarint(uint64(j.Dur))
		e.sortedKeys(j.Matches)
		e.keyGroups(j.Msgs)
	}
	return e.bytes(), nil
}

// Marshal serializes the checkpoint in the given format.
func (c *Checkpoint) Marshal(f Format) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if f == JSON {
		return marshalJSON(typeCheckpoint, c)
	}
	e := newEncoder(typeCheckpoint)
	e.str(c.Scheme)
	e.str(c.Matcher)
	e.uvarint(uint64(c.Neighborhoods))
	e.uvarint(uint64(c.Entities))
	e.uvarint(uint64(c.Round))
	if c.Done {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
	e.sortedKeys(c.Delta)
	e.uvarint(uint64(len(c.Active)))
	prev := int32(-1)
	for _, id := range c.Active {
		e.uvarint(uint64(id - prev)) // ascending: difference-encode
		prev = id
	}
	e.keyGroups(c.Messages)
	e.uvarint(uint64(len(c.Visits)))
	for _, v := range c.Visits {
		e.uvarint(uint64(v))
	}
	s := &c.Stats
	e.uvarint(uint64(s.Neighborhoods))
	e.uvarint(uint64(s.MatcherCalls))
	e.uvarint(uint64(s.Evaluations))
	e.uvarint(uint64(s.MaxRevisits))
	e.uvarint(uint64(s.MessagesSent))
	e.uvarint(uint64(s.MaximalMessages))
	e.uvarint(uint64(s.PromotedSets))
	e.uvarint(uint64(s.ScoreChecks))
	e.uvarint(uint64(s.Skips))
	e.uvarint(uint64(s.ElapsedNS))
	e.uvarint(uint64(s.MatcherTimeNS))
	e.uvarint(uint64(len(s.ActiveSizes)))
	for _, a := range s.ActiveSizes {
		e.uvarint(uint64(a))
	}
	return e.bytes(), nil
}

// UnmarshalDelta decodes a Delta, sniffing the codec from the leading
// bytes and validating structure.
func UnmarshalDelta(b []byte) (*Delta, error) {
	var d Delta
	if isBinary(b) {
		dec, err := newDecoder(b, typeDelta)
		if err != nil {
			return nil, err
		}
		d.Round = int(dec.uvarint("round"))
		d.Keys = dec.sortedKeys("keys")
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeDelta, &d); err != nil {
		return nil, err
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// UnmarshalShardBatch decodes a ShardBatch (either codec).
func UnmarshalShardBatch(b []byte) (*ShardBatch, error) {
	var sb ShardBatch
	if isBinary(b) {
		dec, err := newDecoder(b, typeShardBatch)
		if err != nil {
			return nil, err
		}
		sb.Round = int(dec.uvarint("round"))
		sb.Shard = int(dec.uvarint("shard"))
		sb.Epoch = int(dec.uvarint("epoch"))
		n := dec.count("jobs")
		sb.Jobs = make([]Job, n)
		for i := range sb.Jobs {
			j := &sb.Jobs[i]
			j.ID = int32(dec.uvarint("job.id"))
			j.Skipped = dec.uvarint("job.skipped") != 0
			j.Active = int(dec.uvarint("job.active"))
			j.Calls = int(dec.uvarint("job.calls"))
			j.Dur = int64(dec.uvarint("job.dur"))
			j.Matches = dec.sortedKeys("job.matches")
			j.Msgs = dec.keyGroups("job.msgs")
		}
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeShardBatch, &sb); err != nil {
		return nil, err
	}
	if err := sb.validate(); err != nil {
		return nil, err
	}
	return &sb, nil
}

// UnmarshalCheckpoint decodes a Checkpoint (either codec).
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	var c Checkpoint
	if isBinary(b) {
		dec, err := newDecoder(b, typeCheckpoint)
		if err != nil {
			return nil, err
		}
		c.Scheme = dec.str("scheme")
		c.Matcher = dec.str("matcher")
		c.Neighborhoods = int(dec.uvarint("neighborhoods"))
		c.Entities = int(dec.uvarint("entities"))
		c.Round = int(dec.uvarint("round"))
		c.Done = dec.uvarint("done") != 0
		c.Delta = dec.sortedKeys("delta")
		n := dec.count("active")
		if n > 0 {
			c.Active = make([]int32, n)
			prev := int64(-1)
			for i := range c.Active {
				prev += int64(dec.uvarint("active"))
				if prev > int64(1)<<31-1 {
					dec.fail("active", "id overflows int32")
					prev = 0
				}
				c.Active[i] = int32(prev)
			}
		}
		c.Messages = dec.keyGroups("messages")
		nv := dec.count("visits")
		c.Visits = make([]int, nv)
		for i := range c.Visits {
			c.Visits[i] = int(dec.uvarint("visits"))
		}
		s := &c.Stats
		s.Neighborhoods = int(dec.uvarint("stats"))
		s.MatcherCalls = int(dec.uvarint("stats"))
		s.Evaluations = int(dec.uvarint("stats"))
		s.MaxRevisits = int(dec.uvarint("stats"))
		s.MessagesSent = int(dec.uvarint("stats"))
		s.MaximalMessages = int(dec.uvarint("stats"))
		s.PromotedSets = int(dec.uvarint("stats"))
		s.ScoreChecks = int(dec.uvarint("stats"))
		s.Skips = int(dec.uvarint("stats"))
		s.ElapsedNS = int64(dec.uvarint("stats"))
		s.MatcherTimeNS = int64(dec.uvarint("stats"))
		na := dec.count("stats.active_sizes")
		if na > 0 {
			s.ActiveSizes = make([]int, na)
			for i := range s.ActiveSizes {
				s.ActiveSizes[i] = int(dec.uvarint("stats.active_sizes"))
			}
		}
		if err := dec.finish(); err != nil {
			return nil, err
		}
	} else if err := unmarshalJSON(b, typeCheckpoint, &c); err != nil {
		return nil, err
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
