package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// magic opens every binary message. JSON messages open with '{', so the
// two codecs are sniffable from the first byte.
var magic = [4]byte{'C', 'E', 'M', 'W'}

// isBinary reports whether b opens with the binary magic.
func isBinary(b []byte) bool {
	return len(b) >= len(magic) && string(b[:len(magic)]) == string(magic[:])
}

// encoder builds a binary message: magic, version, type tag, then
// varint-encoded payload fields.
type encoder struct {
	buf []byte
}

func newEncoder(msgType byte) *encoder {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.buf = append(e.buf, magic[:]...)
	e.buf = append(e.buf, Version, msgType)
	return e
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// sortedKeys difference-encodes a strictly increasing key batch: the
// first key raw, then successive gaps (≥ 1). Adjacent candidate pairs
// share high bits, so gaps are small and the batch compresses well.
func (e *encoder) sortedKeys(keys []uint64) {
	e.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for i, k := range keys {
		if i == 0 {
			e.uvarint(k)
		} else {
			e.uvarint(k - prev)
		}
		prev = k
	}
}

// keyGroups encodes a list of key groups, order- and grouping-preserving
// (groups are not sorted; raw keys).
func (e *encoder) keyGroups(groups [][]uint64) {
	e.uvarint(uint64(len(groups)))
	for _, g := range groups {
		e.uvarint(uint64(len(g)))
		for _, k := range g {
			e.uvarint(k)
		}
	}
}

func (e *encoder) bytes() []byte { return e.buf }

// decoder consumes a binary message, collecting the first error instead
// of forcing err checks on every field read. Length-prefixed fields are
// bounds-checked against the remaining input (every element costs at
// least one byte), so corrupt counts cannot trigger huge allocations.
type decoder struct {
	buf []byte
	off int
	err error
}

func newDecoder(b []byte, wantType byte) (*decoder, error) {
	if !isBinary(b) {
		return nil, fmt.Errorf("wire: not a binary message")
	}
	d := &decoder{buf: b, off: len(magic)}
	if len(b) < len(magic)+2 {
		return nil, fmt.Errorf("wire: truncated header")
	}
	if v := b[d.off]; v != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (want %d)", v, Version)
	}
	d.off++
	if tt := b[d.off]; tt != wantType {
		return nil, fmt.Errorf("wire: message type %d, want %d", tt, wantType)
	}
	d.off++
	return d, nil
}

func (d *decoder) fail(field, msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: %s: %s", field, msg)
	}
}

func (d *decoder) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(field, "bad varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a length prefix and bounds it by the remaining bytes.
func (d *decoder) count(field string) int {
	v := d.uvarint(field)
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)-d.off) {
		d.fail(field, fmt.Sprintf("count %d exceeds remaining input", v))
		return 0
	}
	return int(v)
}

func (d *decoder) str(field string) string {
	n := d.count(field)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) sortedKeys(field string) []uint64 {
	n := d.count(field)
	if d.err != nil || n == 0 {
		return nil
	}
	keys := make([]uint64, n)
	prev := uint64(0)
	for i := range keys {
		gap := d.uvarint(field)
		if d.err != nil {
			return nil
		}
		if i == 0 {
			prev = gap
		} else {
			if gap == 0 || gap > ^prev {
				d.fail(field, "keys not strictly increasing")
				return nil
			}
			prev += gap
		}
		keys[i] = prev
	}
	return keys
}

func (d *decoder) keyGroups(field string) [][]uint64 {
	n := d.count(field)
	if d.err != nil || n == 0 {
		return nil
	}
	groups := make([][]uint64, n)
	for i := range groups {
		m := d.count(field)
		if d.err != nil {
			return nil
		}
		g := make([]uint64, m)
		for j := range g {
			g[j] = d.uvarint(field)
		}
		groups[i] = g
	}
	return groups
}

// finish verifies the message was consumed exactly.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.buf)-d.off)
	}
	return nil
}

// jsonEnvelope wraps every JSON message with the format version and the
// message type, mirroring the binary header.
type jsonEnvelope struct {
	Version int             `json:"cemw"`
	Type    int             `json:"type"`
	Msg     json.RawMessage `json:"msg"`
}

func marshalJSON(msgType byte, v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonEnvelope{Version: Version, Type: int(msgType), Msg: raw})
}

func unmarshalJSON(b []byte, wantType byte, v any) error {
	var env jsonEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	if env.Version != Version {
		return fmt.Errorf("wire: unsupported version %d (want %d)", env.Version, Version)
	}
	if env.Type != int(wantType) {
		return fmt.Errorf("wire: message type %d, want %d", env.Type, wantType)
	}
	if err := json.Unmarshal(env.Msg, v); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}
