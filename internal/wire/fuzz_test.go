package wire

import (
	"math/rand"
	"testing"
)

// FuzzWireRoundTrip drives the three decoders with arbitrary bytes: a
// decoder must never panic, and anything it accepts must re-encode and
// re-decode to the same value in both codecs (the evidence-delta codec
// is the integrity boundary of the sharded backend and of
// checkpoint/resume — a silent mutation here corrupts runs).
func FuzzWireRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		for _, format := range []Format{Binary, JSON} {
			if b, err := randDelta(rng).Marshal(format); err == nil {
				f.Add(b)
			}
			if b, err := randBatch(rng).Marshal(format); err == nil {
				f.Add(b)
			}
			if b, err := randCheckpoint(rng).Marshal(format); err == nil {
				f.Add(b)
			}
		}
	}
	f.Add([]byte("CEMW"))
	f.Add([]byte(`{"cemw":1,"type":1,"msg":{"round":0,"keys":[]}}`))

	f.Fuzz(func(t *testing.T, b []byte) {
		if d, err := UnmarshalDelta(b); err == nil {
			reEncode(t, d,
				func(f Format) ([]byte, error) { return d.Marshal(f) },
				func(b []byte) (any, error) { return UnmarshalDelta(b) })
		}
		if sb, err := UnmarshalShardBatch(b); err == nil {
			reEncode(t, sb,
				func(f Format) ([]byte, error) { return sb.Marshal(f) },
				func(b []byte) (any, error) { return UnmarshalShardBatch(b) })
		}
		if c, err := UnmarshalCheckpoint(b); err == nil {
			reEncode(t, c,
				func(f Format) ([]byte, error) { return c.Marshal(f) },
				func(b []byte) (any, error) { return UnmarshalCheckpoint(b) })
		}
	})
}

// reEncode asserts that an accepted message survives both codecs intact.
func reEncode(t *testing.T, v any, marshal func(Format) ([]byte, error), unmarshal func([]byte) (any, error)) {
	t.Helper()
	for _, format := range []Format{Binary, JSON} {
		b, err := marshal(format)
		if err != nil {
			t.Fatalf("accepted message fails to re-marshal (%v): %v\nmsg: %+v", format, err, v)
		}
		got, err := unmarshal(b)
		if err != nil {
			t.Fatalf("re-marshaled message fails to decode (%v): %v", format, err)
		}
		if !equalMsg(got, v) {
			t.Fatalf("round trip mutated message (%v):\ngot:  %+v\nwant: %+v", format, got, v)
		}
	}
}
