// Package unionfind implements a disjoint-set (union-find) structure with
// union by rank and path compression. It is used throughout the repository
// for transitive closure of match sets and for merging overlapping maximal
// messages (Proposition 3 of the paper).
package unionfind

// DSU is a disjoint-set structure over the integers [0, n).
// The zero value is an empty structure; use New to pre-size it.
type DSU struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// New returns a DSU with n singleton sets {0}, {1}, …, {n-1}.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Reset re-initializes the structure to n singleton sets, reusing the
// existing backing arrays when large enough. It lets one DSU serve many
// solves in a pooled workspace.
func (d *DSU) Reset(n int) {
	if cap(d.parent) < n {
		d.parent = make([]int32, n)
		d.rank = make([]int8, n)
	}
	d.parent = d.parent[:n]
	d.rank = d.rank[:n]
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
	}
	d.count = n
}

// Len returns the number of elements in the universe.
func (d *DSU) Len() int { return len(d.parent) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Grow extends the universe to n elements, adding singletons. It is a
// no-op if the structure already has at least n elements.
func (d *DSU) Grow(n int) {
	for i := len(d.parent); i < n; i++ {
		d.parent = append(d.parent, int32(i))
		d.rank = append(d.rank, 0)
		d.count++
	}
}

// Find returns the representative of x's set, compressing paths as it goes.
func (d *DSU) Find(x int) int {
	root := x
	for int(d.parent[root]) != root {
		root = int(d.parent[root])
	}
	// Path compression.
	for int(d.parent[x]) != root {
		x, d.parent[x] = int(d.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and reports whether a merge
// actually happened (false if they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.count--
	return true
}

// Same reports whether x and y belong to the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Sets returns the current partition as a map from representative to the
// sorted-by-insertion members of its set. Intended for tests and small
// structures; O(n).
func (d *DSU) Sets() map[int][]int {
	out := make(map[int][]int)
	for i := range d.parent {
		r := d.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}

// SetOf returns all members of the set containing x. O(n).
func (d *DSU) SetOf(x int) []int {
	r := d.Find(x)
	var out []int
	for i := range d.parent {
		if d.Find(i) == r {
			out = append(out, i)
		}
	}
	return out
}
