package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", d.Count())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, d.Find(i), i)
		}
	}
	if d.Len() != 5 {
		t.Errorf("Len() = %d, want 5", d.Len())
	}
}

func TestUnionBasic(t *testing.T) {
	d := New(4)
	if !d.Union(0, 1) {
		t.Fatal("Union(0,1) should merge")
	}
	if d.Union(0, 1) {
		t.Fatal("second Union(0,1) should be a no-op")
	}
	if !d.Same(0, 1) {
		t.Error("0 and 1 should be in the same set")
	}
	if d.Same(0, 2) {
		t.Error("0 and 2 should not be in the same set")
	}
	if d.Count() != 3 {
		t.Errorf("Count() = %d, want 3", d.Count())
	}
}

func TestTransitivity(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(1, 2)
	d.Union(4, 5)
	if !d.Same(0, 2) {
		t.Error("transitivity violated: 0~1, 1~2 but !Same(0,2)")
	}
	if d.Same(0, 4) {
		t.Error("0 and 4 were never unioned")
	}
	if d.Count() != 3 { // {0,1,2}, {3}, {4,5}
		t.Errorf("Count() = %d, want 3", d.Count())
	}
}

func TestGrow(t *testing.T) {
	d := New(2)
	d.Union(0, 1)
	d.Grow(4)
	if d.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", d.Len())
	}
	if d.Count() != 3 {
		t.Errorf("Count() = %d, want 3", d.Count())
	}
	if d.Same(1, 2) {
		t.Error("grown elements must start as singletons")
	}
	d.Grow(3) // shrink request is a no-op
	if d.Len() != 4 {
		t.Errorf("Grow must never shrink: Len() = %d", d.Len())
	}
}

func TestSets(t *testing.T) {
	d := New(5)
	d.Union(0, 3)
	d.Union(1, 4)
	sets := d.Sets()
	if len(sets) != 3 {
		t.Fatalf("got %d sets, want 3", len(sets))
	}
	total := 0
	for _, members := range sets {
		total += len(members)
	}
	if total != 5 {
		t.Errorf("sets cover %d elements, want 5", total)
	}
}

func TestSetOf(t *testing.T) {
	d := New(5)
	d.Union(0, 2)
	d.Union(2, 4)
	got := d.SetOf(0)
	if len(got) != 3 {
		t.Fatalf("SetOf(0) = %v, want 3 members", got)
	}
	want := map[int]bool{0: true, 2: true, 4: true}
	for _, m := range got {
		if !want[m] {
			t.Errorf("unexpected member %d", m)
		}
	}
}

// TestAgainstNaive cross-checks DSU equivalence classes against a naive
// O(n^2) reachability model on random union sequences.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		d := New(n)
		// naive adjacency closure
		same := make([][]bool, n)
		for i := range same {
			same[i] = make([]bool, n)
			same[i][i] = true
		}
		closure := func() {
			for k := 0; k < n; k++ {
				for i := 0; i < n; i++ {
					if !same[i][k] {
						continue
					}
					for j := 0; j < n; j++ {
						if same[k][j] {
							same[i][j] = true
						}
					}
				}
			}
		}
		for op := 0; op < n; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			d.Union(a, b)
			same[a][b], same[b][a] = true, true
			closure()
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(i, j) != same[i][j] {
					t.Fatalf("trial %d: Same(%d,%d)=%v, naive=%v",
						trial, i, j, d.Same(i, j), same[i][j])
				}
			}
		}
	}
}

// Property: Count always equals the number of distinct representatives.
func TestCountInvariant(t *testing.T) {
	f := func(pairs []uint8) bool {
		d := New(16)
		for i := 0; i+1 < len(pairs); i += 2 {
			d.Union(int(pairs[i]%16), int(pairs[i+1]%16))
		}
		reps := map[int]bool{}
		for i := 0; i < 16; i++ {
			reps[d.Find(i)] = true
		}
		return len(reps) == d.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Find is stable — calling it twice returns the same root.
func TestFindStable(t *testing.T) {
	f := func(pairs []uint8, probe uint8) bool {
		d := New(16)
		for i := 0; i+1 < len(pairs); i += 2 {
			d.Union(int(pairs[i]%16), int(pairs[i+1]%16))
		}
		x := int(probe % 16)
		return d.Find(x) == d.Find(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 16
	ops := make([][2]int, 1<<16)
	for i := range ops {
		ops[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for _, op := range ops {
			d.Union(op[0], op[1])
		}
	}
}
