package net

import (
	"io"
	"time"

	"repro/internal/wire"
)

// Options tunes the coordinator's supervision of its workers. The zero
// value is fully usable: local in-process workers, generous deadlines,
// binary wire format.
type Options struct {
	// RoundDeadline bounds one partition assignment: if the assigned
	// worker neither heartbeats nor returns its batch within it, the
	// partition is reassigned to a live worker. <= 0 means 30s.
	RoundDeadline time.Duration

	// HeartbeatInterval is the liveness cadence workers are asked to
	// keep while evaluating. <= 0 means RoundDeadline / 4.
	HeartbeatInterval time.Duration

	// MaxRetries bounds the send retries per assignment dispatch and
	// the connect attempts per worker slot. <= 0 means 3.
	MaxRetries int

	// RetryBackoff is the base of the exponential backoff between
	// retries (doubled per attempt, plus seeded jitter). <= 0 means
	// 25ms.
	RetryBackoff time.Duration

	// Seed feeds the backoff jitter; fixed so fault-injection runs are
	// reproducible. 0 means 1.
	Seed int64

	// Format selects the wire codec for coordinator→worker traffic
	// (workers answer in their own configured format; both sides sniff).
	Format wire.Format

	// Matcher optionally labels the model for the handshake fingerprint,
	// like CheckpointConfig.Matcher: both sides non-empty and different
	// refuses the worker; empty on either side opts out.
	Matcher string

	// Spawn overrides how worker streams are created. nil means: dial
	// Addrs when the backend has addresses, else spawn local in-process
	// workers from the coordinator's own plan.
	Spawn Spawner

	// Wrap, when non-nil, wraps every coordinator-side worker stream —
	// the fault-injection hook (see faultnet).
	Wrap func(worker int, rw io.ReadWriteCloser) io.ReadWriteCloser

	// Logf, when non-nil, receives supervision events (worker deaths,
	// reassignments, dropped late batches).
	Logf func(format string, args ...any)
}

func (o *Options) roundDeadline() time.Duration {
	if o.RoundDeadline > 0 {
		return o.RoundDeadline
	}
	return 30 * time.Second
}

func (o *Options) heartbeatInterval() time.Duration {
	if o.HeartbeatInterval > 0 {
		return o.HeartbeatInterval
	}
	return o.roundDeadline() / 4
}

func (o *Options) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return 3
}

func (o *Options) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return 25 * time.Millisecond
}

func (o *Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// WorkerOptions tunes one worker process (or goroutine).
type WorkerOptions struct {
	// Format selects the wire codec for worker→coordinator batches.
	Format wire.Format

	// Matcher optionally labels the worker's model for the handshake
	// fingerprint (see Options.Matcher).
	Matcher string

	// Wrap, when non-nil, wraps the worker-side stream — the worker half
	// of the fault-injection hook.
	Wrap func(worker int, rw io.ReadWriteCloser) io.ReadWriteCloser

	// Logf, when non-nil, receives worker lifecycle events.
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}
