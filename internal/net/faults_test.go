package net_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	emnet "repro/internal/net"
	"repro/internal/net/faultnet"
	"repro/internal/testmodel"
	"repro/internal/wire"
)

// faultyBackend builds a sharded-net backend whose every stream — both
// directions — runs through the injector, with supervision timings
// tight enough that dropped frames cost milliseconds, not the default
// 30s deadline.
func faultyBackend(cfg core.Config, scheme string, k int, inj *faultnet.Injector) *emnet.Backend {
	opts := emnet.Options{
		RoundDeadline:     150 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		RetryBackoff:      2 * time.Millisecond,
		MaxRetries:        6,
	}
	opts.Spawn = inj.Spawner(emnet.LocalSpawner(cfg, scheme, emnet.WorkerOptions{Wrap: inj.WrapWorker}))
	return &emnet.Backend{Workers: k, Opts: opts}
}

// TestNetKillWorkerEveryRound: SIGKILL-shaped worker loss — the victim
// receives the round's assignment and its stream dies — at every round
// boundary of the run, for every worker. The run must finish with the
// pool backend's exact output and must report the reassignment; a
// killed worker degrades throughput, never the result.
func TestNetKillWorkerEveryRound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		for _, scheme := range netSchemes {
			pool := runOn(t, cfg, scheme, core.PoolBackend{})
			k := 2 + trial%2 // k=2 and k=3 fleets
			for round := 1; round <= 8; round++ {
				for victim := 0; victim < k; victim++ {
					inj := faultnet.New(faultnet.Plan{
						Seed:        int64(100*trial + round),
						KillAtRound: map[int]int{victim: round},
						Permadead:   true,
					})
					res := runOn(t, cfg, scheme, faultyBackend(cfg, scheme, k, inj))
					label := fmt.Sprintf("trial %d %s k=%d kill worker %d at round %d", trial, scheme, k, victim, round)
					assertSameRun(t, label, res, pool)
					if inj.Killed(victim) && res.Stats.Reassignments < 1 {
						t.Errorf("%s: worker was killed but Reassignments = %d", label, res.Stats.Reassignments)
					}
				}
			}
		}
	}
}

// TestNetFaultSchedules: seeded drop/delay/duplicate schedules on the
// data frames. Whatever the schedule does, the output must be the
// fault-free pool run's, and a duplicated batch must show up as a
// dropped late batch, not a double-count.
func TestNetFaultSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m, cover := randomModel(rng)
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	for _, scheme := range netSchemes {
		pool := runOn(t, cfg, scheme, core.PoolBackend{})
		for seed := int64(1); seed <= 3; seed++ {
			inj := faultnet.New(faultnet.Plan{
				Seed:      seed,
				DropRate:  0.15,
				DupRate:   0.2,
				DelayRate: 0.3,
				MaxDelay:  3 * time.Millisecond,
			})
			res := runOn(t, cfg, scheme, faultyBackend(cfg, scheme, 3, inj))
			assertSameRun(t, fmt.Sprintf("%s seed %d", scheme, seed), res, pool)
		}
	}
}

// TestNetDuplicateBatchesDropped: a schedule that duplicates every
// data frame. Every duplicate batch hits the epoch dedup, so the run
// both finishes identically and accounts the drops.
func TestNetDuplicateBatchesDropped(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	pool := runOn(t, cfg, "SMP", core.PoolBackend{})
	inj := faultnet.New(faultnet.Plan{Seed: 5, DupRate: 1})
	res := runOn(t, cfg, "SMP", faultyBackend(cfg, "SMP", 2, inj))
	assertSameRun(t, "dup-everything", res, pool)
	if res.Stats.LateBatchesDropped < 1 {
		t.Errorf("every batch was duplicated but LateBatchesDropped = %d", res.Stats.LateBatchesDropped)
	}
}

// TestNetTornStreams: mid-frame stream tears (the peer reads a
// truncated frame, the sender loses its conn). Workers die and
// respawn with full evidence re-syncs; the output must not move.
func TestNetTornStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, cover := randomModel(rng)
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	for _, scheme := range []string{"SMP", "MMP"} {
		pool := runOn(t, cfg, scheme, core.PoolBackend{})
		for seed := int64(1); seed <= 3; seed++ {
			inj := faultnet.New(faultnet.Plan{Seed: seed, TruncRate: 0.1})
			res := runOn(t, cfg, scheme, faultyBackend(cfg, scheme, 2, inj))
			assertSameRun(t, fmt.Sprintf("%s torn seed %d", scheme, seed), res, pool)
		}
	}
}

// TestNetFaultsBothFormats: the JSON codec under the same fault
// schedules — framing faults are codec-agnostic.
func TestNetFaultsBothFormats(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	pool := runOn(t, cfg, "MMP", core.PoolBackend{})
	for _, format := range []wire.Format{wire.Binary, wire.JSON} {
		inj := faultnet.New(faultnet.Plan{Seed: 11, DropRate: 0.2, DupRate: 0.2})
		b := faultyBackend(cfg, "MMP", 2, inj)
		b.Opts.Format = format
		res := runOn(t, cfg, "MMP", b)
		assertSameRun(t, fmt.Sprintf("faults fmt=%v", format), res, pool)
	}
}
