package net

import (
	"context"
	"fmt"
	"io"
	stdnet "net"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// Conn is a framed connection: one peer of the sharded-net protocol.
// Sends are serialized by a mutex so concurrent senders (the worker's
// heartbeat goroutine alongside its batch sends) emit whole frames;
// each frame is written with a single underlying Write call, so
// frame-granular middlewares (faultnet) see one frame per Write. Recv
// must be called from a single goroutine.
type Conn struct {
	rw io.ReadWriteCloser
	mu sync.Mutex
}

// NewConn frames an underlying byte stream.
func NewConn(rw io.ReadWriteCloser) *Conn { return &Conn{rw: rw} }

// Send writes one frame.
func (c *Conn) Send(frameType byte, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return wire.WriteFrame(c.rw, frameType, payload)
}

// Recv reads one frame. io.EOF means the peer closed cleanly at a
// frame boundary; wire.ErrTruncated means the stream tore mid-frame.
func (c *Conn) Recv() (byte, []byte, error) {
	return wire.ReadFrame(c.rw)
}

// Close closes the underlying stream, failing any in-flight Send/Recv.
func (c *Conn) Close() error { return c.rw.Close() }

// Spawner produces the byte stream to a worker slot. The coordinator
// calls it at startup for every slot, and again when it decides to
// respawn a dead slot; returning an error marks the slot failed.
type Spawner func(ctx context.Context, worker int) (io.ReadWriteCloser, error)

// LocalSpawner runs workers as in-process goroutines connected by
// synchronous pipes — the same code path cmd/emworker runs over a
// socket, with every byte still crossing the wire codec. This is the
// default spawner of the "sharded-net" backend when no addresses are
// given, and the harness the fault-injection tests drive.
func LocalSpawner(cfg core.Config, scheme string, opts WorkerOptions) Spawner {
	return func(ctx context.Context, worker int) (io.ReadWriteCloser, error) {
		coord, work := stdnet.Pipe()
		var rw io.ReadWriteCloser = work
		if opts.Wrap != nil {
			rw = opts.Wrap(worker, rw)
		}
		go func() {
			// A worker error surfaces coordinator-side as a dead conn;
			// the supervisor reassigns, so the run does not care why.
			_ = ServeConn(ctx, cfg, scheme, rw, opts)
		}()
		return coord, nil
	}
}

// DialSpawner attaches one remote worker per address. An address is
// "unix:/path/to.sock" or a TCP "host:port". A SIGKILLed worker's
// address refuses the redial, so its slot fails permanently and its
// partitions land on the surviving workers.
func DialSpawner(addrs []string) Spawner {
	return func(ctx context.Context, worker int) (io.ReadWriteCloser, error) {
		if worker < 0 || worker >= len(addrs) {
			return nil, fmt.Errorf("net: no address for worker %d", worker)
		}
		network, addr := "tcp", addrs[worker]
		if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
			network, addr = "unix", rest
		}
		var d stdnet.Dialer
		return d.DialContext(ctx, network, addr)
	}
}
