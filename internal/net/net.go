// Package net takes the sharded backend across process boundaries: a
// coordinator owning the central RoundDriver plus K workers — spawned
// in-process, or attached over TCP/unix sockets via cmd/emworker —
// speaking the internal/wire codec over length-prefixed frames
// (wire.ReadFrame/WriteFrame).
//
// The division of labor mirrors ShardedBackend exactly: workers hold
// private evidence replicas and evaluate their partition of each
// round's active set against the round-start snapshot; the coordinator
// merges batches centrally and owns all run state. What this package
// adds is the robustness layer: per-round deadlines and worker
// heartbeats, bounded retry with exponential backoff and jitter on
// transient transport errors, and partition reassignment — a dead or
// deadline-breaching worker degrades throughput instead of failing the
// run. A round commits only when every partition's ShardBatch has been
// accounted exactly once; assignments are epoch-tagged, so a zombie
// worker's late batch is discarded, never double-applied. Because each
// job is a deterministic function of (neighborhood, round-start
// snapshot) and the reduce consumes jobs in active-set order, the
// output is byte-identical to the pool backend no matter which worker
// evaluates what, or how many times (Theorems 2 and 4).
package net
