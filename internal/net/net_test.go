package net_test

import (
	"context"
	"fmt"
	"math/rand"
	stdnet "net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	emnet "repro/internal/net"
	"repro/internal/testmodel"
	"repro/internal/wire"
)

var bg = context.Background()

// randomModel mirrors the core test-suite's model builder: a random
// supermodular model with mostly-negative unaries and a random cover
// patched for full coverage. Free-variable counts stay brute-forceable.
func randomModel(rng *rand.Rand) (*testmodel.Model, *core.Cover) {
	n := 6 + rng.Intn(5)
	m := testmodel.New(n)
	var pairs []core.Pair
	target := 4 + rng.Intn(6)
	for len(pairs) < target {
		a, b := core.EntityID(rng.Intn(n)), core.EntityID(rng.Intn(n))
		if a == b {
			continue
		}
		p := core.MakePair(a, b)
		if _, ok := m.Unary[p]; ok {
			continue
		}
		m.AddPair(p.A, p.B, -6+rng.Float64()*8)
		pairs = append(pairs, p)
	}
	nInter := rng.Intn(2 * len(pairs))
	for i := 0; i < nInter; i++ {
		p, q := pairs[rng.Intn(len(pairs))], pairs[rng.Intn(len(pairs))]
		if p == q {
			continue
		}
		m.AddInteraction(p, q, rng.Float64()*9)
	}
	k := 2 + rng.Intn(3)
	sets := make([][]core.EntityID, k)
	for e := 0; e < n; e++ {
		placed := false
		for s := 0; s < k; s++ {
			if rng.Float64() < 0.55 {
				sets[s] = append(sets[s], core.EntityID(e))
				placed = true
			}
		}
		if !placed {
			sets[rng.Intn(k)] = append(sets[rng.Intn(k)], core.EntityID(e))
		}
	}
	return m, core.NewCover(n, sets)
}

func runOn(t *testing.T, cfg core.Config, scheme string, b core.Backend) *core.Result {
	t.Helper()
	res, err := core.RunBackend(bg, cfg, scheme, b, core.CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameRun fails unless the two results carry the same match set
// and the same deterministic statistics. Wall-clock and resilience
// counters are excluded: how often the transport stumbled is exactly
// what faults perturb, and the theorems promise it never shows in
// anything else.
func assertSameRun(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !got.Matches.Equal(want.Matches) {
		t.Errorf("%s: match sets diverge: %d vs %d matches", label, got.Matches.Len(), want.Matches.Len())
	}
	gs, ws := got.Stats, want.Stats
	if gs.Evaluations != ws.Evaluations || gs.MatcherCalls != ws.MatcherCalls ||
		gs.MessagesSent != ws.MessagesSent || gs.MaximalMessages != ws.MaximalMessages ||
		gs.PromotedSets != ws.PromotedSets || gs.Skips != ws.Skips ||
		gs.MaxRevisits != ws.MaxRevisits || len(gs.ActiveSizes) != len(ws.ActiveSizes) {
		t.Errorf("%s: deterministic stats diverge:\ngot:  %v\nwant: %v", label, got.Stats, want.Stats)
	}
}

var netSchemes = []string{"NO-MP", "SMP", "MMP"}

// TestNetMatchesPoolRandom: with no faults, the sharded-net backend
// must land on the pool backend's exact output — match set AND
// deterministic statistics — for every worker count, every round-based
// scheme, both wire codecs. Same contract the in-process sharded
// backend pins, now across the full coordinator/worker protocol.
func TestNetMatchesPoolRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		for _, scheme := range netSchemes {
			pool := runOn(t, cfg, scheme, core.PoolBackend{})
			for _, k := range []int{1, 2, 3} {
				for _, format := range []wire.Format{wire.Binary, wire.JSON} {
					net := runOn(t, cfg, scheme, &emnet.Backend{Workers: k, Opts: emnet.Options{Format: format}})
					label := fmt.Sprintf("trial %d %s k=%d fmt=%v", trial, scheme, k, format)
					assertSameRun(t, label, net, pool)
					if r := net.Stats; r.Reassignments+r.RetriedSends+r.LateBatchesDropped != 0 {
						t.Errorf("%s: fault-free run reports resilience events: %v", label, r)
					}
				}
			}
		}
	}
}

// TestNetMoreWorkersThanNeighborhoods: idle slots (fewer partitions
// than workers) must not wedge or perturb the run.
func TestNetMoreWorkersThanNeighborhoods(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	pool := runOn(t, cfg, "SMP", core.PoolBackend{})
	net := runOn(t, cfg, "SMP", &emnet.Backend{Workers: cover.Len() + 3})
	assertSameRun(t, "oversized fleet", net, pool)
}

// TestNetBackendReturnsBareCtxErr: cancellation racing a round
// boundary surfaces as the bare ctx.Err(), the contract every backend
// pins so callers can errors.Is without knowing the executor.
func TestNetBackendReturnsBareCtxErr(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, cover := randomModel(rng)
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(),
		Progress: func(core.ProgressEvent) { cancel() }}
	_, err := core.RunBackend(ctx, cfg, "SMP", &emnet.Backend{Workers: 2}, core.CheckpointConfig{})
	if err != context.Canceled {
		t.Fatalf("canceled run returned %v, want bare context.Canceled", err)
	}
}

// TestNetHandshakeRejectsMismatch: a worker grounded on a different
// run fingerprint (here: a different matcher label) must be refused at
// handshake, and with no other workers the run fails instead of
// computing against the wrong model.
func TestNetHandshakeRejectsMismatch(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	b := &emnet.Backend{Workers: 1, Opts: emnet.Options{
		Matcher:      "model-A",
		RetryBackoff: time.Millisecond,
		Spawn:        emnet.LocalSpawner(cfg, "SMP", emnet.WorkerOptions{Matcher: "model-B"}),
	}}
	_, err := core.RunBackend(bg, cfg, "SMP", b, core.CheckpointConfig{})
	if err == nil {
		t.Fatal("mismatched matcher fingerprint was accepted")
	}
}

// TestNetOverSockets runs real emworker-style servers — one unix
// socket, one TCP — and attaches them via DialSpawner addresses,
// asserting the socketed run is byte-identical to pool.
func TestNetOverSockets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, cover := randomModel(rng)
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	scheme := "MMP"

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	sock := filepath.Join(t.TempDir(), "w0.sock")
	ul, err := stdnet.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []stdnet.Listener{ul, tl} {
		go emnet.Serve(ctx, l, cfg, scheme, emnet.WorkerOptions{})
	}

	pool := runOn(t, cfg, scheme, core.PoolBackend{})
	net := runOn(t, cfg, scheme, &emnet.Backend{
		Addrs: []string{"unix:" + sock, tl.Addr().String()},
	})
	assertSameRun(t, "socketed run", net, pool)
}
