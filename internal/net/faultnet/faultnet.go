// Package faultnet is a deterministic fault injector for the
// sharded-net transport. It wraps both ends of a worker stream and
// perturbs whole frames — drop, delay, duplicate, truncate-and-tear —
// plus a kill-worker-at-round-R hook, all driven by a seeded RNG so a
// fault schedule is reproducible. Only data frames (Assign, Batch) are
// faulted: handshakes always succeed and heartbeats/acks pass through,
// so the RNG stream advances with protocol progress, not with timing.
//
// The harness exploits a transport guarantee: wire.WriteFrame emits
// each frame as a single Write call, so a Write intercepted here is
// exactly one frame and header sniffing is enough to classify it.
package faultnet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	emnet "repro/internal/net"
	"repro/internal/wire"
)

// Plan is a seeded fault schedule. Rates are per data frame in [0,1].
type Plan struct {
	Seed      int64
	DropRate  float64 // frame vanishes
	DupRate   float64 // frame delivered twice
	DelayRate float64 // frame delayed up to MaxDelay
	TruncRate float64 // frame cut mid-bytes and the stream torn
	MaxDelay  time.Duration

	// KillAtRound cuts a worker's connection right after the Assign for
	// the given round is delivered: the worker starts the round's work
	// and then finds its coordinator gone — the SIGKILL-between-
	// heartbeats shape. Fires once per worker.
	KillAtRound map[int]int

	// Permadead refuses respawns of killed workers, forcing their
	// partitions onto the survivors (otherwise a respawn gets a fresh
	// conn and a full evidence sync).
	Permadead bool
}

// Injector applies one Plan across a run's connections.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	rngs   map[int]*rand.Rand
	killed map[int]bool
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 2 * time.Millisecond
	}
	return &Injector{plan: plan, rngs: map[int]*rand.Rand{}, killed: map[int]bool{}}
}

// Killed reports whether the worker's kill hook has fired.
func (in *Injector) Killed(worker int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed[worker]
}

// Spawner wraps a base spawner: respawns of permadead workers are
// refused, and every coordinator-side stream is fault-wrapped.
func (in *Injector) Spawner(base emnet.Spawner) emnet.Spawner {
	return func(ctx context.Context, worker int) (io.ReadWriteCloser, error) {
		if in.plan.Permadead && in.Killed(worker) {
			return nil, fmt.Errorf("faultnet: worker %d was killed and stays dead", worker)
		}
		rw, err := base(ctx, worker)
		if err != nil {
			return nil, err
		}
		return in.WrapCoordinator(worker, rw), nil
	}
}

// WrapCoordinator wraps the coordinator's end of a worker stream: its
// writes are the coordinator→worker frames (Assign), where the kill
// hook triggers.
func (in *Injector) WrapCoordinator(worker int, rw io.ReadWriteCloser) io.ReadWriteCloser {
	return &faultConn{in: in, worker: worker, rw: rw, killSide: true}
}

// WrapWorker wraps the worker's end (via WorkerOptions.Wrap): its
// writes are the worker→coordinator frames (Batch).
func (in *Injector) WrapWorker(worker int, rw io.ReadWriteCloser) io.ReadWriteCloser {
	return &faultConn{in: in, worker: worker, rw: rw}
}

// roll draws the worker's next fault decision; one locked draw keeps
// the schedule deterministic per worker regardless of goroutine
// interleaving across its two directions.
func (in *Injector) roll(worker int) (drop, dup, delay, trunc bool, delayFor time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	rng := in.rngs[worker]
	if rng == nil {
		rng = rand.New(rand.NewSource(in.plan.Seed + int64(worker)*7919))
		in.rngs[worker] = rng
	}
	drop = rng.Float64() < in.plan.DropRate
	dup = rng.Float64() < in.plan.DupRate
	delay = rng.Float64() < in.plan.DelayRate
	trunc = rng.Float64() < in.plan.TruncRate
	delayFor = time.Duration(rng.Int63n(int64(in.plan.MaxDelay)))
	return
}

// shouldKill marks-and-reports the worker's one-shot kill for a round.
func (in *Injector) shouldKill(worker, round int) bool {
	at, ok := in.plan.KillAtRound[worker]
	if !ok || at != round {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.killed[worker] {
		return false
	}
	in.killed[worker] = true
	return true
}

// faultConn intercepts whole-frame writes on one direction of a worker
// stream. Reads pass through untouched (the peer's wrapper faults that
// direction) — until the kill hook fires, after which nothing the dead
// worker says is heard.
type faultConn struct {
	in       *Injector
	worker   int
	rw       io.ReadWriteCloser
	killSide bool // coordinator side: Assign frames trigger the kill hook
	dead     atomic.Bool
}

func (f *faultConn) Read(p []byte) (int, error) {
	n, err := f.rw.Read(p)
	if err == nil && f.dead.Load() {
		// The worker was killed after this data was in flight; a dead
		// process's output never reaches the coordinator.
		return 0, fmt.Errorf("faultnet: worker %d is dead", f.worker)
	}
	return n, err
}

func (f *faultConn) Close() error { return f.rw.Close() }

// frameType sniffs a whole-frame write; ok is false for anything that
// is not a single well-formed frame (passed through untouched).
func frameType(b []byte) (byte, bool) {
	if len(b) < 10 || string(b[:4]) != "CEMF" {
		return 0, false
	}
	return b[5], true
}

func (f *faultConn) Write(b []byte) (int, error) {
	ft, ok := frameType(b)
	if !ok || (ft != wire.FrameAssign && ft != wire.FrameBatch) {
		return f.rw.Write(b) // handshake, heartbeat, ack: never faulted
	}

	// Kill hook: deliver the round's Assign, then cut the stream — the
	// worker starts the round and loses its coordinator mid-flight.
	// The dead flag is raised before the Assign is forwarded, so even a
	// worker fast enough to answer before the Close lands is not heard:
	// the kill deterministically forces a reassignment.
	if f.killSide && ft == wire.FrameAssign {
		if a, err := wire.UnmarshalAssign(b[10:]); err == nil && f.in.shouldKill(f.worker, a.Round) {
			f.dead.Store(true)
			n, err := f.rw.Write(b)
			f.rw.Close()
			return n, err
		}
	}

	drop, dup, delay, trunc, delayFor := f.in.roll(f.worker)
	switch {
	case trunc:
		// Tear the stream mid-frame: the peer reads ErrTruncated, the
		// sender's next write fails.
		f.rw.Write(b[:len(b)/2])
		f.rw.Close()
		return 0, fmt.Errorf("faultnet: worker %d stream torn mid-frame", f.worker)
	case drop:
		return len(b), nil // swallowed whole
	}
	if delay {
		time.Sleep(delayFor)
	}
	n, err := f.rw.Write(b)
	if err == nil && dup {
		f.rw.Write(b) // duplicate delivery; dedup is the receiver's job
	}
	return n, err
}
