package net

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Backend is the distributed executor registered as "sharded-net": a
// coordinator owning the central RoundDriver plus worker processes
// speaking the wire codec over framed streams. The partition layout is
// the sharded backend's id-mod-K with K fixed at the slot count for
// the whole run; what varies under faults is only WHICH worker
// evaluates a partition, which the consistency theorems make
// invisible in the output.
type Backend struct {
	// Workers is the slot count for locally spawned workers; ignored
	// when Addrs is set (each address is one slot). Values < 1 mean 1.
	Workers int

	// Addrs attaches remote workers (cmd/emworker), one slot each. See
	// DialSpawner for the address forms.
	Addrs []string

	// Opts tunes supervision; the zero value works.
	Opts Options
}

// slots returns the partition/worker slot count.
func (b *Backend) slots() int {
	if len(b.Addrs) > 0 {
		return len(b.Addrs)
	}
	if b.Workers < 1 {
		return 1
	}
	return b.Workers
}

// RunRounds implements core.Backend.
func (b *Backend) RunRounds(ctx context.Context, plan *core.RoundPlan, d *core.RoundDriver) error {
	c := newCoordinator(b, plan, d)
	defer c.shutdown()
	if err := c.connectAll(ctx); err != nil {
		return err
	}
	for !d.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.runRound(ctx); err != nil {
			return err
		}
	}
	return nil
}

// slot is one worker seat: its connection, liveness, and how much of
// the evidence log it provably holds.
type slot struct {
	id    int
	conn  *Conn
	alive bool
	// failed marks a slot whose (re)spawn was refused; it is never
	// retried — the SIGKILLed-process case.
	failed bool
	// synced is the evidence-log prefix the worker has provably applied
	// (proven by a received batch; advanced only then, so a dropped
	// assignment can never leave the coordinator believing the worker
	// knows more than it does).
	synced      int
	syncedRound int
	outbox      chan outMsg
	// gen counts this slot's connections; events from a superseded
	// connection's reader or writer goroutines carry the old generation
	// and must not retire the slot's current connection.
	gen int
}

// outMsg is one queued frame; part/epoch identify the assignment a
// failed send must be retried for (part -1 for acks).
type outMsg struct {
	ft      byte
	payload []byte
	part    int
	epoch   int
}

type evKind int

const (
	evFrame evKind = iota
	evConnErr
	evSendErr
	evTimeout
	evRetry
)

// event is anything the coordinator loop reacts to; readers, outbox
// writers, and timers post them, the loop is the only consumer.
type event struct {
	kind    evKind
	worker  int
	gen     int
	ft      byte
	payload []byte
	err     error
	part    int
	epoch   int
	round   int
}

type coordinator struct {
	plan  *core.RoundPlan
	d     *core.RoundDriver
	opts  Options
	spawn Spawner
	k     int
	slots []*slot

	events chan event
	stopc  chan struct{}
	rng    *rand.Rand

	// evLog is the append-ordered evidence history: the run's starting
	// snapshot followed by each round's delta. The snapshot at the start
	// of a round is always a prefix, so per-worker catch-up is a slice.
	evLog []uint64
	// epoch per partition, bumped on every dispatch; a batch tagged with
	// anything but the current epoch is late and dropped.
	epoch []int
}

func newCoordinator(b *Backend, plan *core.RoundPlan, d *core.RoundDriver) *coordinator {
	c := &coordinator{
		plan:   plan,
		d:      d,
		opts:   b.Opts,
		k:      b.slots(),
		events: make(chan event, 256),
		stopc:  make(chan struct{}),
	}
	c.rng = rand.New(rand.NewSource(c.opts.seed()))
	c.epoch = make([]int, c.k)
	c.slots = make([]*slot, c.k)
	for i := range c.slots {
		c.slots[i] = &slot{id: i}
	}
	c.spawn = b.Opts.Spawn
	if c.spawn == nil {
		if len(b.Addrs) > 0 {
			c.spawn = DialSpawner(b.Addrs)
		} else {
			// Local in-process workers built from the coordinator's own
			// plan — same protocol, no sockets.
			c.spawn = LocalSpawner(plan.Config, plan.Scheme, WorkerOptions{
				Format:  b.Opts.Format,
				Matcher: b.Opts.Matcher,
			})
		}
	}
	if plan.Exchange {
		if snap := d.Snapshot(); snap != nil {
			for _, k := range snap.SortedKeys() {
				c.evLog = append(c.evLog, uint64(k))
			}
		}
	}
	return c
}

// shutdown tears the fleet down: readers, writers, and stray timers
// all unblock on stopc or their closed conn.
func (c *coordinator) shutdown() {
	close(c.stopc)
	for _, s := range c.slots {
		if s.conn != nil {
			s.conn.Close()
		}
	}
}

// post delivers an event unless the run is over.
func (c *coordinator) post(ev event) {
	select {
	case c.events <- ev:
	case <-c.stopc:
	}
}

// connectAll brings up every slot; the run proceeds as long as at
// least one worker answers.
func (c *coordinator) connectAll(ctx context.Context) error {
	live := 0
	var lastErr error
	for _, s := range c.slots {
		if err := c.connectSlot(ctx, s); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			c.opts.logf("net: worker %d unavailable: %v", s.id, err)
			continue
		}
		live++
	}
	if live == 0 {
		return fmt.Errorf("net: no workers available: %w", lastErr)
	}
	return nil
}

// connectSlot (re)spawns one worker with bounded backoff; exhausting
// the retries marks the slot failed for the rest of the run.
func (c *coordinator) connectSlot(ctx context.Context, s *slot) error {
	var err error
	for attempt := 0; attempt <= c.opts.maxRetries(); attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.backoff(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err = c.connect(ctx, s); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	s.failed = true
	return err
}

// backoff is exponential with seeded jitter: base·2^(attempt-1) plus
// up to one base.
func (c *coordinator) backoff(attempt int) time.Duration {
	base := c.opts.retryBackoff()
	d := base << uint(attempt-1)
	return d + time.Duration(c.rng.Int63n(int64(base)))
}

// connect spawns the worker stream, runs the handshake, verifies the
// fingerprint, and starts the slot's reader and writer.
func (c *coordinator) connect(ctx context.Context, s *slot) error {
	rw, err := c.spawn(ctx, s.id)
	if err != nil {
		return err
	}
	if c.opts.Wrap != nil {
		rw = c.opts.Wrap(s.id, rw)
	}
	conn := NewConn(rw)
	hello := &wire.Hello{
		Worker:        s.id,
		Scheme:        c.plan.Scheme,
		Matcher:       c.opts.Matcher,
		Neighborhoods: c.plan.Config.Cover.Len(),
		Entities:      c.plan.Config.Cover.NumEntities,
		HeartbeatNS:   int64(c.opts.heartbeatInterval()),
	}
	enc, err := hello.Marshal(c.opts.Format)
	if err != nil {
		conn.Close()
		return err
	}
	if err := conn.Send(wire.FrameHello, enc); err != nil {
		conn.Close()
		return fmt.Errorf("net: worker %d handshake: %w", s.id, err)
	}
	ft, payload, err := conn.Recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("net: worker %d handshake: %w", s.id, err)
	}
	if ft != wire.FrameHelloAck {
		conn.Close()
		return fmt.Errorf("net: worker %d handshake: got frame type %d, want hello-ack", s.id, ft)
	}
	ack, err := wire.UnmarshalHello(payload)
	if err != nil {
		conn.Close()
		return fmt.Errorf("net: worker %d handshake: %w", s.id, err)
	}
	if err := fingerprintMismatch(hello, ack); err != nil {
		conn.Close()
		return fmt.Errorf("net: worker %d: %w", s.id, err)
	}
	s.conn = conn
	s.alive = true
	s.synced, s.syncedRound = 0, 0
	s.outbox = make(chan outMsg, 64)
	s.gen++
	go c.runReader(s.id, s.gen, conn)
	go c.runWriter(s.id, s.gen, conn, s.outbox)
	return nil
}

// runReader pumps one connection's frames into the event loop until
// the stream dies.
func (c *coordinator) runReader(worker, gen int, conn *Conn) {
	for {
		ft, payload, err := conn.Recv()
		if err != nil {
			c.post(event{kind: evConnErr, worker: worker, gen: gen, err: err})
			return
		}
		c.post(event{kind: evFrame, worker: worker, gen: gen, ft: ft, payload: payload})
	}
}

// runWriter drains one slot's outbox so the event loop never blocks on
// a slow peer; send failures come back as events carrying the
// assignment they interrupted.
func (c *coordinator) runWriter(worker, gen int, conn *Conn, outbox chan outMsg) {
	for {
		select {
		case <-c.stopc:
			return
		case m := <-outbox:
			if err := conn.Send(m.ft, m.payload); err != nil {
				if m.part >= 0 {
					c.post(event{kind: evSendErr, worker: worker, gen: gen, part: m.part, epoch: m.epoch, err: err})
				} else {
					c.post(event{kind: evConnErr, worker: worker, gen: gen, err: err})
				}
			}
		}
	}
}

// enqueue queues a frame on a slot's outbox (drops it if the run is
// shutting down).
func (c *coordinator) enqueue(s *slot, m outMsg) {
	select {
	case s.outbox <- m:
	case <-c.stopc:
	}
}

// partState tracks one partition through one round.
type partState struct {
	ids        []int32
	worker     int // current assignee slot
	epoch      int // current assignment epoch
	dispatches int // dispatch count this round (bounds the retry loop)
	attempts   int // failed-send retries this round
	accounted  bool
	jobs       []wire.Job
	timer      *time.Timer
}

// runRound distributes one round's active set and blocks until every
// partition's batch has been accounted exactly once.
func (c *coordinator) runRound(ctx context.Context) error {
	d := c.d
	round := d.Round()
	active := d.Active()
	allowSkip := d.AllowSkip()
	lenAt := len(c.evLog) // evidence prefix == this round's start snapshot

	parts := make([]*partState, c.k)
	pending := 0
	for _, id := range active {
		p := int(id) % c.k
		if parts[p] == nil {
			parts[p] = &partState{worker: -1}
			pending++
		}
		parts[p].ids = append(parts[p].ids, id)
	}
	defer func() {
		for _, st := range parts {
			if st != nil && st.timer != nil {
				st.timer.Stop()
			}
		}
	}()

	for p, st := range parts {
		if st == nil {
			continue
		}
		if err := c.dispatch(ctx, round, p, st, allowSkip, lenAt); err != nil {
			return err
		}
	}

	for pending > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-c.events:
			n, err := c.handle(ctx, ev, round, parts, allowSkip, lenAt)
			if err != nil {
				return err
			}
			pending -= n
		}
	}

	// Commit: reassemble the jobs in active-set order via per-partition
	// cursors (each batch lists its jobs in the order the partition was
	// built, which is a subsequence of active).
	jobs := make([]core.Job, len(active))
	cursor := make([]int, c.k)
	for i, id := range active {
		p := int(id) % c.k
		wj := &parts[p].jobs[cursor[p]]
		cursor[p]++
		if wj.ID != id {
			return fmt.Errorf("net: partition %d round %d: job %d evaluates neighborhood %d, want %d",
				p, round, cursor[p]-1, wj.ID, id)
		}
		jobs[i] = core.JobFromWire(wj)
	}
	if err := d.FinishRound(jobs); err != nil {
		return err
	}
	if c.plan.Exchange {
		for _, key := range d.RoundDelta() {
			c.evLog = append(c.evLog, uint64(key))
		}
	}
	return nil
}

// dispatch assigns (or re-assigns) one partition to a live worker,
// bumping its epoch so any previously outstanding assignment goes
// stale, and arms the round deadline.
func (c *coordinator) dispatch(ctx context.Context, round, p int, st *partState, allowSkip bool, lenAt int) error {
	st.dispatches++
	if st.dispatches > c.opts.maxRetries()+c.k {
		return fmt.Errorf("net: partition %d round %d undeliverable after %d dispatches", p, round, st.dispatches-1)
	}
	s, err := c.pickTarget(ctx, p)
	if err != nil {
		return fmt.Errorf("net: partition %d round %d: %w", p, round, err)
	}
	c.epoch[p]++
	st.worker, st.epoch = s.id, c.epoch[p]
	a := &wire.Assign{
		Round:     round,
		Epoch:     st.epoch,
		Part:      p,
		FromRound: s.syncedRound,
		AllowSkip: allowSkip,
		Keys:      c.catchup(s, lenAt),
		IDs:       st.ids,
	}
	enc, err := a.Marshal(c.opts.Format)
	if err != nil {
		return err
	}
	c.enqueue(s, outMsg{ft: wire.FrameAssign, payload: enc, part: p, epoch: st.epoch})
	c.armTimer(st, round, p)
	return nil
}

// armTimer (re)starts the partition's round deadline; on breach the
// loop receives a timeout event tagged with the epoch it bounds.
func (c *coordinator) armTimer(st *partState, round, p int) {
	if st.timer != nil {
		st.timer.Stop()
	}
	epoch := st.epoch
	st.timer = time.AfterFunc(c.opts.roundDeadline(), func() {
		c.post(event{kind: evTimeout, part: p, epoch: epoch, round: round})
	})
}

// catchup returns the evidence keys bringing a worker's replica from
// its proven state to the round-start snapshot, sorted. Spanning
// several rounds' deltas it must be re-sorted; keys are unique by
// construction (a pair enters the evidence exactly once).
func (c *coordinator) catchup(s *slot, lenAt int) []uint64 {
	if s.synced >= lenAt {
		return nil
	}
	keys := slices.Clone(c.evLog[s.synced:lenAt])
	slices.Sort(keys)
	return keys
}

// pickTarget finds a live worker for a partition, preferring its home
// slot; with the whole fleet down it attempts respawns before giving
// up (which fails the run).
func (c *coordinator) pickTarget(ctx context.Context, p int) (*slot, error) {
	for i := 0; i < c.k; i++ {
		if s := c.slots[(p+i)%c.k]; s.alive {
			return s, nil
		}
	}
	for i := 0; i < c.k; i++ {
		s := c.slots[(p+i)%c.k]
		if s.failed {
			continue
		}
		if err := c.connectSlot(ctx, s); err != nil {
			c.opts.logf("net: respawning worker %d failed: %v", s.id, err)
			continue
		}
		c.opts.logf("net: respawned worker %d", s.id)
		return s, nil
	}
	return nil, errors.New("no live workers and every respawn failed")
}

// markDead retires a slot. Deadline breaches keep the conn open
// (draining a zombie's late batches, which epoch-dedup discards);
// transport errors close it.
func (c *coordinator) markDead(s *slot, closeConn bool) {
	if !s.alive {
		return
	}
	s.alive = false
	if closeConn && s.conn != nil {
		s.conn.Close()
	}
}

// handle processes one event, returning how many partitions it
// accounted.
func (c *coordinator) handle(ctx context.Context, ev event, round int, parts []*partState, allowSkip bool, lenAt int) (int, error) {
	switch ev.kind {
	case evFrame:
		return c.handleFrame(ev, round, parts, lenAt)

	case evConnErr:
		s := c.slots[ev.worker]
		if ev.gen != s.gen {
			return 0, nil // a superseded connection's death is old news
		}
		wasAlive := s.alive
		c.markDead(s, true)
		if !wasAlive {
			return 0, nil
		}
		c.opts.logf("net: worker %d died: %v", ev.worker, ev.err)
		return 0, c.reassignOwned(ctx, ev.worker, -1, round, parts, allowSkip, lenAt)

	case evSendErr:
		s := c.slots[ev.worker]
		if ev.gen != s.gen {
			return 0, nil // queued on a superseded connection's outbox
		}
		wasAlive := s.alive
		c.markDead(s, true)
		st := partOK(parts, ev.part)
		if st != nil && !st.accounted && st.epoch == ev.epoch {
			// The assignment never reached the worker: a retry, not a
			// reassignment. Back off before re-dispatching.
			st.attempts++
			if st.attempts > c.opts.maxRetries() {
				return 0, fmt.Errorf("net: partition %d round %d: send failed %d times: %w",
					ev.part, round, st.attempts, ev.err)
			}
			c.d.AccountResilience(0, 1, 0)
			c.opts.logf("net: partition %d round %d: send to worker %d failed (retry %d): %v",
				ev.part, round, ev.worker, st.attempts, ev.err)
			epoch := st.epoch
			time.AfterFunc(c.backoff(st.attempts), func() {
				c.post(event{kind: evRetry, part: ev.part, epoch: epoch, round: round})
			})
		}
		if !wasAlive {
			return 0, nil
		}
		return 0, c.reassignOwned(ctx, ev.worker, ev.part, round, parts, allowSkip, lenAt)

	case evTimeout:
		st := partOK(parts, ev.part)
		if st == nil || st.accounted || st.epoch != ev.epoch || ev.round != round {
			return 0, nil
		}
		// Deadline breach: the worker may be hung or just slow — treat
		// it as gone for assignment purposes but keep its conn open so
		// a late batch arrives (and is dropped) instead of tearing the
		// stream mid-frame.
		c.markDead(c.slots[st.worker], false)
		c.opts.logf("net: partition %d round %d: worker %d missed the deadline, reassigning",
			ev.part, round, st.worker)
		c.d.AccountResilience(1, 0, 0)
		return 0, c.dispatch(ctx, round, ev.part, st, allowSkip, lenAt)

	case evRetry:
		st := partOK(parts, ev.part)
		if st == nil || st.accounted || st.epoch != ev.epoch || ev.round != round {
			return 0, nil
		}
		return 0, c.dispatch(ctx, round, ev.part, st, allowSkip, lenAt)
	}
	return 0, nil
}

// reassignOwned re-dispatches every unaccounted partition assigned to
// a dead worker (skip is the partition already handled as a send
// retry; -1 handles all).
func (c *coordinator) reassignOwned(ctx context.Context, worker, skip, round int, parts []*partState, allowSkip bool, lenAt int) error {
	for p, st := range parts {
		if st == nil || st.accounted || st.worker != worker || p == skip {
			continue
		}
		c.opts.logf("net: partition %d round %d reassigned off worker %d", p, round, worker)
		c.d.AccountResilience(1, 0, 0)
		if err := c.dispatch(ctx, round, p, st, allowSkip, lenAt); err != nil {
			return err
		}
	}
	return nil
}

// handleFrame processes a worker frame: batches are accounted exactly
// once per partition (stale epochs and duplicates are dropped and
// counted), heartbeats extend the assignee's deadline.
func (c *coordinator) handleFrame(ev event, round int, parts []*partState, lenAt int) (int, error) {
	switch ev.ft {
	case wire.FrameBatch:
		batch, err := wire.UnmarshalShardBatch(ev.payload)
		if err != nil {
			return 0, fmt.Errorf("net: worker %d round %d: bad batch: %w", ev.worker, round, err)
		}
		st := partOK(parts, batch.Shard)
		if st == nil {
			return 0, fmt.Errorf("net: worker %d returned a batch for unknown partition %d", ev.worker, batch.Shard)
		}
		if batch.Round != round || batch.Epoch != st.epoch || st.accounted {
			c.d.AccountResilience(0, 0, 1)
			c.opts.logf("net: dropped late batch from worker %d (partition %d round %d epoch %d; current round %d epoch %d)",
				ev.worker, batch.Shard, batch.Round, batch.Epoch, round, st.epoch)
			return 0, nil
		}
		if len(batch.Jobs) != len(st.ids) {
			return 0, fmt.Errorf("net: worker %d partition %d round %d: %d jobs for %d ids",
				ev.worker, batch.Shard, round, len(batch.Jobs), len(st.ids))
		}
		st.accounted = true
		st.jobs = batch.Jobs
		if st.timer != nil {
			st.timer.Stop()
		}
		s := c.slots[ev.worker]
		// A batch for this round proves the worker's replica holds the
		// round-start snapshot.
		if s.synced < lenAt {
			s.synced, s.syncedRound = lenAt, round
		}
		ack := &wire.BatchAck{Round: round, Part: batch.Shard, Epoch: batch.Epoch}
		if enc, err := ack.Marshal(c.opts.Format); err == nil && s.alive {
			c.enqueue(s, outMsg{ft: wire.FrameBatchAck, payload: enc, part: -1})
		}
		return 1, nil

	case wire.FrameHeartbeat:
		hb, err := wire.UnmarshalHeartbeat(ev.payload)
		if err != nil {
			return 0, nil // a malformed heartbeat is not worth a run
		}
		st := partOK(parts, hb.Part)
		if st != nil && !st.accounted && st.worker == ev.worker && hb.Round == round {
			c.armTimer(st, round, hb.Part)
		}
		return 0, nil
	}
	return 0, nil // unexpected frame types are ignored
}

// partOK bounds-checks a partition index from the wire.
func partOK(parts []*partState, p int) *partState {
	if p < 0 || p >= len(parts) {
		return nil
	}
	return parts[p]
}
