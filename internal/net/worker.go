package net

import (
	"context"
	"errors"
	"fmt"
	"io"
	stdnet "net"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// ServeConn runs one worker over one coordinator connection until the
// coordinator closes it (clean io.EOF returns nil) or the stream
// fails. The worker reconstructs the identical round plan from its own
// configuration — the model is never serialized — and the handshake
// fingerprint (scheme, matcher label, cover sizes) refuses a
// coordinator grounded on a different corpus or model.
//
// Protocol, worker side: receive Hello, answer HelloAck; then for each
// Assign, merge the catch-up keys into the private evidence replica
// (bringing it to the round-start snapshot), evaluate the partition's
// neighborhoods in id order — heartbeating while it works — and return
// an epoch-tagged ShardBatch. Catch-up application is idempotent
// (evidence is a monotone set), so duplicated or re-sent assignments
// are harmless; a batch answering a superseded assignment carries a
// stale epoch and is dropped by the coordinator.
func ServeConn(ctx context.Context, cfg core.Config, scheme string, rw io.ReadWriteCloser, opts WorkerOptions) error {
	defer rw.Close()
	plan, err := core.NewRoundPlan(cfg, scheme)
	if err != nil {
		return err
	}
	conn := NewConn(rw)

	worker, heartbeat, err := workerHandshake(conn, plan, opts)
	if err != nil {
		return err
	}
	opts.logf("worker %d: handshake complete (%s, %d neighborhoods)", worker, scheme, cfg.Cover.Len())

	var replica core.PairSet
	if plan.Exchange {
		replica = core.NewPairSet()
	}
	// pending holds the encoded batch of each partition until the
	// coordinator acks it — the resend cache a re-assignment to this
	// worker could answer from (re-evaluation would be byte-identical;
	// the cache only saves the work).
	pending := map[int][]byte{}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ft, payload, err := conn.Recv()
		switch {
		case err == io.EOF:
			return nil // coordinator done with us
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("net: worker %d: %w", worker, err)
		}
		switch ft {
		case wire.FrameAssign:
			a, err := wire.UnmarshalAssign(payload)
			if err != nil {
				return fmt.Errorf("net: worker %d: bad assign: %w", worker, err)
			}
			opts.logf("worker %d: round %d: evaluating partition %d (%d neighborhoods, %d catch-up keys)",
				worker, a.Round, a.Part, len(a.IDs), len(a.Keys))
			if plan.Exchange {
				if a.FromRound == 0 && replica.Len() > 0 {
					replica = core.NewPairSet() // full-sync resets the replica
				}
				for _, k := range a.Keys {
					replica.AddKey(core.PairKey(k))
				}
			}
			enc, err := evaluateAssign(ctx, conn, plan, replica, a, worker, heartbeat, opts.Format)
			if err != nil {
				return err
			}
			pending[a.Part] = enc
			if err := conn.Send(wire.FrameBatch, enc); err != nil {
				return fmt.Errorf("net: worker %d: sending round %d batch: %w", worker, a.Round, err)
			}
		case wire.FrameBatchAck:
			ack, err := wire.UnmarshalBatchAck(payload)
			if err != nil {
				return fmt.Errorf("net: worker %d: bad ack: %w", worker, err)
			}
			delete(pending, ack.Part)
		default:
			return fmt.Errorf("net: worker %d: unexpected frame type %d", worker, ft)
		}
	}
}

// workerHandshake answers the coordinator's Hello and verifies the run
// fingerprints match. Returns the assigned worker id and the requested
// heartbeat interval.
func workerHandshake(conn *Conn, plan *core.RoundPlan, opts WorkerOptions) (int, time.Duration, error) {
	ft, payload, err := conn.Recv()
	if err != nil {
		return 0, 0, fmt.Errorf("net: worker handshake: %w", err)
	}
	if ft != wire.FrameHello {
		return 0, 0, fmt.Errorf("net: worker handshake: got frame type %d, want hello", ft)
	}
	hello, err := wire.UnmarshalHello(payload)
	if err != nil {
		return 0, 0, fmt.Errorf("net: worker handshake: %w", err)
	}
	ack := &wire.Hello{
		Worker:        hello.Worker,
		Scheme:        plan.Scheme,
		Matcher:       opts.Matcher,
		Neighborhoods: plan.Config.Cover.Len(),
		Entities:      plan.Config.Cover.NumEntities,
		HeartbeatNS:   hello.HeartbeatNS,
	}
	enc, err := ack.Marshal(opts.Format)
	if err != nil {
		return 0, 0, err
	}
	if err := conn.Send(wire.FrameHelloAck, enc); err != nil {
		return 0, 0, fmt.Errorf("net: worker handshake: %w", err)
	}
	if err := fingerprintMismatch(hello, ack); err != nil {
		return 0, 0, err
	}
	return hello.Worker, time.Duration(hello.HeartbeatNS), nil
}

// fingerprintMismatch compares the two sides' run fingerprints. Empty
// matcher labels opt out of the model check, as in checkpoint trails.
func fingerprintMismatch(a, b *wire.Hello) error {
	if a.Scheme != b.Scheme {
		return fmt.Errorf("net: scheme mismatch: %q vs %q", a.Scheme, b.Scheme)
	}
	if a.Matcher != "" && b.Matcher != "" && a.Matcher != b.Matcher {
		return fmt.Errorf("net: matcher mismatch: %q vs %q", a.Matcher, b.Matcher)
	}
	if a.Neighborhoods != b.Neighborhoods || a.Entities != b.Entities {
		return fmt.Errorf("net: cover mismatch: %d neighborhoods over %d entities vs %d over %d",
			a.Neighborhoods, a.Entities, b.Neighborhoods, b.Entities)
	}
	return nil
}

// evaluateAssign runs one partition assignment against the replica and
// returns the encoded epoch-tagged batch. A heartbeat goroutine keeps
// the coordinator's deadline at bay while the evaluation runs.
func evaluateAssign(ctx context.Context, conn *Conn, plan *core.RoundPlan, replica core.PairSet,
	a *wire.Assign, worker int, heartbeat time.Duration, format wire.Format) ([]byte, error) {
	stop := make(chan struct{})
	if heartbeat > 0 {
		hb := &wire.Heartbeat{Worker: worker, Round: a.Round, Part: a.Part}
		if enc, err := hb.Marshal(format); err == nil {
			go func() {
				t := time.NewTicker(heartbeat)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						// A failed heartbeat means the conn is dying; the
						// batch send will surface the error.
						_ = conn.Send(wire.FrameHeartbeat, enc)
					}
				}
			}()
		}
	}
	defer close(stop)

	batch := &wire.ShardBatch{Round: a.Round, Shard: a.Part, Epoch: a.Epoch, Jobs: make([]wire.Job, len(a.IDs))}
	for i, id := range a.IDs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j := plan.Evaluate(id, replica, a.AllowSkip)
		batch.Jobs[i] = core.JobToWire(&j)
	}
	return batch.Marshal(format)
}

// Serve accepts coordinator connections on l, one run at a time — the
// loop of cmd/emworker. It returns when ctx is canceled or the
// listener fails.
func Serve(ctx context.Context, l stdnet.Listener, cfg core.Config, scheme string, opts WorkerOptions) error {
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		opts.logf("worker: coordinator connected from %v", c.RemoteAddr())
		if err := ServeConn(ctx, cfg, scheme, c, opts); err != nil && !errors.Is(err, ctx.Err()) {
			opts.logf("worker: session ended: %v", err)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}
