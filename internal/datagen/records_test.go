package datagen

import (
	"testing"

	"repro/internal/bib"
)

// TestGenerateRecordsEquivalentDataset: the record adapter preserves the
// matching-relevant structure — names, grouping (coauthorship) and gold
// labels survive the dataset → records → dataset round trip exactly.
func TestGenerateRecordsEquivalentDataset(t *testing.T) {
	cfg := DBLPLike(0.2, 17)
	direct := MustGenerate(cfg)
	recs, err := GenerateRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != direct.NumRefs() {
		t.Fatalf("%d records for %d refs", len(recs), direct.NumRefs())
	}
	rebuilt, err := bib.DatasetFromRecords(cfg.Name, recs)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumRefs() != direct.NumRefs() || rebuilt.NumPapers() != direct.NumPapers() {
		t.Fatalf("rebuilt %d refs / %d papers, want %d / %d",
			rebuilt.NumRefs(), rebuilt.NumPapers(), direct.NumRefs(), direct.NumPapers())
	}
	for i := range direct.Refs {
		if rebuilt.Refs[i].Name != direct.Refs[i].Name ||
			rebuilt.Refs[i].Paper != direct.Refs[i].Paper ||
			rebuilt.Refs[i].True != direct.Refs[i].True {
			t.Fatalf("ref %d: rebuilt %+v, want %+v", i, rebuilt.Refs[i], direct.Refs[i])
		}
	}
	// The coauthor relation (all the matchers see of the relational
	// structure) is identical.
	dRel, rRel := direct.Coauthor(), rebuilt.Coauthor()
	if dRel.Edges() != rRel.Edges() {
		t.Fatalf("coauthor edges: rebuilt %d, want %d", rRel.Edges(), dRel.Edges())
	}
}

func TestGenerateRecordsReportsConfigErrors(t *testing.T) {
	bad := DBLPLike(0.2, 17)
	bad.NumAuthors = 0
	if _, err := GenerateRecords(bad); err == nil {
		t.Error("invalid config accepted")
	}
}
