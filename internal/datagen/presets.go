package datagen

import "fmt"

// Presets mirror the three corpora of §6. Scale multiplies the entity
// counts; Scale = 1.0 produces a dataset sized for fast experimentation
// (a few thousand references), while larger scales approach the paper's
// 58K/50K/4.6M reference counts. All presets keep the paper's measured
// references-per-paper ratios (HEPTH ≈ 2.0, DBLP ≈ 2.6).

// HEPTHLike returns a config resembling the KDD-Cup 2003 HEPTH corpus:
// heavily abbreviated author names over a modest last-name pool, so the
// similarity graph forms few, large neighborhoods — the regime where
// collective inference and maximal messages matter most.
func HEPTHLike(scale float64, seed int64) Config {
	return Config{
		Name:            "hepth-like",
		Seed:            seed,
		NumAuthors:      scaleInt(450, scale),
		NumPapers:       scaleInt(1000, scale),
		MinAuthors:      2,
		MaxAuthors:      4,
		CommunitySize:   14,
		LastNamePool:    scaleInt(160, scale),
		AbbreviateProb:  0.8,
		TypoProb:        0.03,
		CiteProb:        0.5,
		MaxCites:        4,
		RepeatGroupProb: 0.55,
	}
}

// DBLPLike returns a config resembling the paper's mutated-DBLP corpus:
// full names drawn from a large pool, with random single-character
// mutations as the only noise. Neighborhoods come out numerous and small.
func DBLPLike(scale float64, seed int64) Config {
	return Config{
		Name:            "dblp-like",
		Seed:            seed,
		NumAuthors:      scaleInt(850, scale),
		NumPapers:       scaleInt(770, scale),
		MinAuthors:      2,
		MaxAuthors:      3,
		CommunitySize:   12,
		LastNamePool:    scaleInt(2400, scale),
		AbbreviateProb:  0,
		TypoProb:        0.4,
		CiteProb:        0.4,
		MaxCites:        3,
		RepeatGroupProb: 0.45,
	}
}

// DBLPBigLike returns the DBLP recipe at grid scale (§6.3). The default
// multiplier already yields an order of magnitude more references than
// DBLPLike; pass a larger scale to stress the grid further.
func DBLPBigLike(scale float64, seed int64) Config {
	c := DBLPLike(scale*8, seed)
	c.Name = "dblp-big-like"
	return c
}

// MillionLike returns the DBLP recipe scaled so Scale = 1.0 yields a
// corpus of roughly a million entity references (~416K papers at 2–3
// authors each) — the preset the bounded-RSS storage trajectory matches
// end to end. Generation stays deterministic in seed and linear in the
// reference count; only the name pools and community structure scale.
func MillionLike(scale float64, seed int64) Config {
	c := DBLPLike(scale*540, seed)
	c.Name = "million-like"
	return c
}

// ValidateScale rejects scale multipliers that silently degenerate:
// NaN and infinities have no meaningful int projection, and zero or
// negative scales collapse every pool to the 1-element floor, producing
// corpora with a single reference that match nothing. Callers that take
// a scale from user input (CLIs, cem.GenerateDataset) check here before
// building a preset.
func ValidateScale(scale float64) error {
	switch {
	case scale != scale:
		return fmt.Errorf("datagen: scale is NaN")
	case scale > 1e18 || scale < -1e18:
		return fmt.Errorf("datagen: scale %v is not finite enough to size a corpus", scale)
	case scale <= 0:
		return fmt.Errorf("datagen: scale = %v, want > 0", scale)
	}
	return nil
}

// scaleInt projects a preset base count through the scale multiplier,
// clamping to 1 so that tiny-but-positive scales stay valid (a pool of
// one name is degenerate but generatable; ValidateScale guards the
// genuinely meaningless inputs).
func scaleInt(base int, scale float64) int {
	v := int(float64(base) * scale)
	if v < 1 {
		return 1
	}
	return v
}
