package datagen

import "repro/internal/bib"

// GenerateRecords synthesizes a corpus and flattens it into the raw
// record form the ingestion pipeline consumes: one record per author
// reference, grouped by paper, labeled with the ground-truth author.
// This is the datagen-side record-source adapter; bib.DatasetFromRecords
// round-trips the result into an equivalent dataset (modulo titles,
// years and citations, which carry no matching signal).
func GenerateRecords(c Config) ([]bib.Record, error) {
	d, err := Generate(c)
	if err != nil {
		return nil, err
	}
	return bib.ToRecords(d), nil
}
