// Package datagen synthesizes labeled bibliography datasets with the
// statistical properties of the paper's evaluation corpora (§6):
//
//   - HEPTH-like: first names are usually abbreviated to initials, which
//     creates many name clashes, hence fewer but larger similarity
//     neighborhoods — and makes collective (relational) evidence necessary.
//   - DBLP-like: full author names with small random mutations (the paper
//     manually added noise to clean DBLP data the same way), producing
//     many small neighborhoods.
//   - DBLP-BIG-like: the DBLP recipe at a larger scale for the grid
//     experiments (§6.3).
//
// Generation is fully deterministic given a seed, and ground truth is
// exact by construction.
package datagen

import (
	"math/rand"
	"strings"
)

// firstNames is a pool of given names. The pool deliberately contains
// groups sharing an initial so that abbreviation creates genuine
// ambiguity ("V." may be Vibhor, Victor, Vikram, ...).
var firstNames = []string{
	"aaron", "adam", "alan", "albert", "alice", "amit", "ana", "andrea",
	"andrew", "angela", "anil", "anita", "ankur", "anna", "anthony",
	"barbara", "benjamin", "bernard", "beth", "bin", "bo", "brian", "bruce",
	"carl", "carlos", "carol", "catherine", "chao", "charles", "chen",
	"cheng", "chris", "christina", "claire", "claudia", "craig", "cynthia",
	"dan", "daniel", "david", "deborah", "dennis", "diana", "diego",
	"dmitri", "donald", "dong", "douglas", "edward", "elena", "elizabeth",
	"emily", "eric", "erik", "eva", "evan", "fang", "felix", "feng",
	"fernando", "frank", "gabriel", "gang", "gary", "george", "gerald",
	"giovanni", "grace", "gregory", "guido", "hai", "han", "hans", "harold",
	"harry", "heather", "helen", "henry", "hiroshi", "hong", "howard",
	"hui", "ian", "igor", "irene", "isaac", "ivan", "jack", "jacob",
	"james", "jan", "jane", "janet", "jason", "javier", "jean", "jeffrey",
	"jennifer", "jeremy", "jessica", "jia", "jian", "jie", "jim", "jin",
	"joan", "joao", "joel", "johan", "john", "jonathan", "jorge", "jose",
	"joseph", "joshua", "juan", "judy", "julia", "julian", "jun", "junjie",
	"karen", "karl", "katherine", "keith", "kenneth", "kevin", "kim",
	"kumar", "kurt", "kyle", "larry", "laura", "lawrence", "lei", "leo",
	"leonard", "li", "lin", "linda", "ling", "lisa", "liu", "luca", "luis",
	"maria", "marco", "margaret", "mario", "mark", "martin", "mary",
	"matthew", "maya", "mei", "melissa", "michael", "michel", "miguel",
	"mike", "min", "ming", "minos", "mohan", "nancy", "naoki", "natalia",
	"nathan", "neil", "nicholas", "nicolas", "nikhil", "nilesh", "nina",
	"oliver", "olga", "oscar", "pablo", "pamela", "patricia", "patrick",
	"paul", "paula", "pedro", "peng", "peter", "philip", "pierre", "ping",
	"prasad", "qiang", "qing", "rachel", "raj", "rajesh", "ralph", "ramesh",
	"randy", "raul", "ravi", "raymond", "rebecca", "renato", "richard",
	"rita", "robert", "roberto", "roger", "ronald", "rong", "rosa", "ross",
	"ruth", "ryan", "sam", "samuel", "sandra", "sanjay", "sara", "scott",
	"sean", "sergey", "shan", "sharon", "shinji", "simon", "songyun",
	"stefan", "stephen", "steven", "stuart", "sunil", "susan", "suresh",
	"takeshi", "tao", "teresa", "thomas", "timothy", "todd", "tom",
	"tomasz", "tong", "tony", "ulrich", "uma", "valerie", "victor",
	"vibhor", "vijay", "vikram", "vincent", "vladimir", "walter", "wei",
	"wen", "werner", "william", "xiang", "xiao", "xin", "xing", "xu",
	"yan", "yang", "yi", "ying", "yong", "yoshi", "yu", "yuan", "yuri",
	"zhang", "zhen", "zheng", "zhi", "zhong",
}

// lastSyllables are combined to synthesize an unbounded pool of last
// names; a configurable pool size controls how often distinct authors
// collide on the same last name.
var lastSyllableA = []string{
	"an", "bar", "ber", "bren", "car", "chan", "chen", "dal", "dar", "das",
	"del", "dom", "fel", "fer", "gar", "gold", "gon", "gup", "hal", "han",
	"har", "hoff", "jack", "jan", "john", "kal", "kan", "kar", "kim",
	"kol", "kow", "kra", "kum", "lam", "lan", "lar", "lee", "lin", "liu",
	"mar", "mat", "mei", "men", "mil", "mor", "mu", "nak", "nar", "new",
	"ol", "pat", "pe", "per", "pet", "ram", "ras", "rey", "rich", "rob",
	"rod", "rom", "ros", "sal", "san", "sar", "schu", "schwar", "sen",
	"shar", "shi", "sil", "sin", "smi", "sor", "ste", "strau", "sun",
	"tak", "tan", "tar", "tho", "tor", "tur", "val", "van", "var", "vas",
	"ven", "wag", "wal", "wan", "wat", "web", "wei", "wil", "wol", "wu",
	"xia", "ya", "yam", "yan", "zan", "zel", "zha", "zim",
}

var lastSyllableB = []string{
	"a", "acker", "ader", "agi", "ahl", "aka", "am", "an", "and", "ano",
	"anov", "ant", "ari", "as", "ash", "ato", "au", "aud", "ault", "ava",
	"berg", "bert", "dal", "dano", "datta", "der", "dez", "din", "do",
	"dorf", "dra", "eau", "el", "ell", "elli", "elson", "eman", "en",
	"ens", "er", "erman", "ero", "ers", "erson", "es", "escu", "eta",
	"etti", "ez", "feld", "g", "gan", "ger", "gers", "gia", "gren", "hart",
	"heim", "holm", "i", "ia", "iadis", "ian", "ic", "ich", "ick", "ier",
	"ieri", "ik", "ikov", "in", "ina", "ini", "ino", "insky", "io", "is",
	"ison", "ita", "ito", "itz", "ius", "k", "ka", "kar", "ke", "kel",
	"ker", "kin", "ko", "kov", "kowski", "la", "land", "ler", "les", "lez",
	"li", "lin", "lini", "lo", "lov", "low", "lucci", "man", "mann", "mar",
	"mas", "mer", "mont", "moto", "n", "na", "nak", "nan", "nath", "nauer",
	"ner", "nero", "ni", "nik", "no", "nov", "o", "off", "oglu", "oiu",
	"olli", "on", "one", "oni", "onis", "opolous", "or", "os", "oso",
	"ossi", "ota", "oto", "ott", "otti", "ou", "ov", "ova", "owski",
	"quez", "ra", "rado", "rago", "ram", "rano", "rath", "rek", "ren",
	"res", "rez", "ri", "rini", "ro", "ron", "rov", "row", "rucci", "rup",
	"s", "sen", "ser", "sh", "shi", "singh", "ski", "sky", "son", "sson",
	"stein", "ster", "stone", "strom", "sz", "ta", "tani", "te", "tel",
	"ter", "th", "thy", "ti", "tis", "to", "ton", "tor", "tova", "tsev",
	"tti", "tz", "u", "ucci", "uk", "ulis", "ullah", "um", "ura", "us",
	"uta", "uzzi", "va", "vak", "val", "van", "var", "vas", "vich", "vin",
	"vis", "witz", "ya", "yama", "yan", "z", "za", "zak", "zaki", "zalez",
	"zer", "zi", "zio", "zu",
}

// lastName deterministically renders the i-th name of a pool of the given
// size. Pool indices map to syllable combinations; the same index always
// yields the same name.
func lastName(i int) string {
	a := lastSyllableA[i%len(lastSyllableA)]
	b := lastSyllableB[(i/len(lastSyllableA))%len(lastSyllableB)]
	name := a + b
	// Title-case at render time happens in renderName; keep lowercase here.
	return name
}

// title renders a simple synthetic paper title.
var titleWords = []string{
	"scalable", "collective", "entity", "matching", "inference", "query",
	"optimization", "learning", "distributed", "graph", "model", "system",
	"probabilistic", "efficient", "approximate", "streaming", "relational",
	"networks", "analysis", "clustering", "indexing", "evaluation",
	"duality", "symmetry", "gauge", "string", "lattice", "boundary",
	"quantum", "field", "theory", "supersymmetric", "holographic",
}

func makeTitle(rng *rand.Rand) string {
	n := 3 + rng.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = titleWords[rng.Intn(len(titleWords))]
	}
	return strings.Join(parts, " ")
}

// typo applies one random single-character mutation to s: substitution,
// deletion, insertion, or adjacent transposition — the "small mutations"
// the paper added to clean DBLP names. Single-character strings are only
// substituted or appended to, never emptied.
func typo(rng *rand.Rand, s string) string {
	if len(s) == 0 {
		return s
	}
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := []byte(s)
	switch op := rng.Intn(4); {
	case op == 0: // substitution
		i := rng.Intn(len(b))
		b[i] = letters[rng.Intn(len(letters))]
	case op == 1 && len(b) > 1: // deletion
		i := rng.Intn(len(b))
		b = append(b[:i], b[i+1:]...)
	case op == 2: // insertion
		i := rng.Intn(len(b) + 1)
		b = append(b[:i], append([]byte{letters[rng.Intn(len(letters))]}, b[i:]...)...)
	default: // transposition (or fallthrough for 1-char deletes)
		if len(b) > 1 {
			i := rng.Intn(len(b) - 1)
			b[i], b[i+1] = b[i+1], b[i]
		} else {
			b[0] = letters[rng.Intn(len(letters))]
		}
	}
	return string(b)
}
