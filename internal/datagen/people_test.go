package datagen

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/similarity"
)

func TestGeneratePeople(t *testing.T) {
	recs := MustGeneratePeople(PeopleLike(0.25, 42))
	if len(recs) < 100 {
		t.Fatalf("suspiciously small corpus: %d records", len(recs))
	}
	for i, r := range recs {
		if r.Group < 0 || r.Gold < 0 {
			t.Fatalf("record %d unlabeled/ungrouped: %+v", i, r)
		}
		fields := similarity.SplitFields(r.Name)
		if len(fields) != 4 {
			t.Fatalf("record %d key %q has %d fields, want 4 (name|street|phone|zip)", i, r.Name, len(fields))
		}
		if fields[0] == "" || fields[1] == "" || fields[3] == "" {
			t.Fatalf("record %d key %q missing a mandatory field", i, r.Name)
		}
		if len(fields[3]) != 5 {
			t.Fatalf("record %d zip %q not 5 digits", i, fields[3])
		}
		if fields[2] != "" && !strings.HasPrefix(fields[2], "555-") {
			t.Fatalf("record %d phone %q malformed", i, fields[2])
		}
	}
	// Deterministic in the seed; different seeds differ.
	if again := MustGeneratePeople(PeopleLike(0.25, 42)); !reflect.DeepEqual(recs, again) {
		t.Fatal("generation not deterministic in seed")
	}
	if other := MustGeneratePeople(PeopleLike(0.25, 43)); reflect.DeepEqual(recs, other) {
		t.Fatal("different seeds produced identical corpora")
	}
	// Every person should be observed more than once on average — the
	// whole point of snapshots — and phones must be stable per person.
	seen := map[int32]int{}
	phones := map[int32]string{}
	for _, r := range recs {
		seen[r.Gold]++
		if p := similarity.SplitFields(r.Name)[2]; p != "" {
			if prev, ok := phones[r.Gold]; ok && prev != p {
				t.Fatalf("person %d has two phones: %q vs %q", r.Gold, prev, p)
			} else if !ok {
				phones[r.Gold] = p
			}
		}
	}
	if len(recs) < 2*len(seen) {
		t.Fatalf("too few repeat observations: %d records over %d people", len(recs), len(seen))
	}
}

func TestPeopleConfigValidate(t *testing.T) {
	good := PeopleLike(0.1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := []func(*PeopleConfig){
		func(c *PeopleConfig) { c.NumPeople = 0 },
		func(c *PeopleConfig) { c.NumHouseholds = -1 },
		func(c *PeopleConfig) { c.Snapshots = 0 },
		func(c *PeopleConfig) { c.PresentProb = 0 },
		func(c *PeopleConfig) { c.PresentProb = 1.5 },
		func(c *PeopleConfig) { c.NicknameProb = -0.1 },
		func(c *PeopleConfig) { c.TypoProb = 2 },
		func(c *PeopleConfig) { c.StreetAbbrevProb = -1 },
		func(c *PeopleConfig) { c.MissingPhoneProb = 1.1 },
		func(c *PeopleConfig) { c.ZipPool = 0 },
	}
	for i, m := range mutate {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
		if _, err := GeneratePeople(c); err == nil {
			t.Errorf("GeneratePeople accepted mutation %d", i)
		}
	}
}

func TestValidateScale(t *testing.T) {
	for _, bad := range []float64{0, -1, -0.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := ValidateScale(bad); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}
	for _, ok := range []float64{1, 0.01, 0.001, 10} {
		if err := ValidateScale(ok); err != nil {
			t.Errorf("scale %v rejected: %v", ok, err)
		}
	}
}

// TestTinyScaleRegression: scales at or below 0.01 used to be the
// degenerate zone (scaleInt rounding pools toward zero). All presets must
// keep producing small but valid, non-empty corpora there.
func TestTinyScaleRegression(t *testing.T) {
	for _, scale := range []float64{0.01, 0.001} {
		for _, cfg := range []Config{HEPTHLike(scale, 7), DBLPLike(scale, 7)} {
			d, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s at scale %v: %v", cfg.Name, scale, err)
			}
			if d.NumRefs() == 0 {
				t.Fatalf("%s at scale %v: empty corpus", cfg.Name, scale)
			}
		}
		recs, err := GeneratePeople(PeopleLike(scale, 7))
		if err != nil {
			t.Fatalf("people at scale %v: %v", scale, err)
		}
		if len(recs) == 0 {
			t.Fatalf("people at scale %v: empty corpus", scale)
		}
	}
}

func TestConfigValidateCiteFields(t *testing.T) {
	good := HEPTHLike(0.1, 1)
	for _, bad := range []Config{
		func() Config { c := good; c.CiteProb = -0.1; return c }(),
		func() Config { c := good; c.CiteProb = 1.5; return c }(),
		func() Config { c := good; c.CiteProb = math.NaN(); return c }(),
		func() Config { c := good; c.MaxCites = -1; return c }(),
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted CiteProb=%v MaxCites=%d", bad.CiteProb, bad.MaxCites)
		}
	}
}
