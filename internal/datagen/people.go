package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/bib"
)

// The people generator synthesizes the repo's second end-to-end domain:
// household snapshots for a typed-field dedup workload. Each ground-truth
// person lives in one household and is observed in several snapshots
// (think quarterly address-book extracts); every observation renders a
// composite record key of typed fields separated by similarity.FieldSep:
//
//	<name> | <street> | <phone> | <zip>
//
// with per-observation noise — nicknamed/abbreviated first names, typos,
// street-suffix abbreviation ("street" ↔ "st"), dropped phones. The
// household is the co-occurrence relation: records of one household in
// one snapshot share a group, so co-members play the role coauthors play
// in the bibliographic corpora and support the rule language's
// "cooccur >= K" clauses. The zip goes LAST deliberately: the blocking
// stage treats the final token of a key as its strongest component, and
// the zip is stable per household, so same-household observations always
// survive candidate admission no matter how noisy the name fields are.
type PeopleConfig struct {
	Name string
	Seed int64

	NumPeople     int // distinct ground-truth people
	NumHouseholds int // households; people are distributed round-robin
	Snapshots     int // observation rounds per household

	// PresentProb is the probability a person is observed in a given
	// snapshot (absences create partial overlap between snapshots).
	PresentProb float64

	// NicknameProb abbreviates the rendered first name to an initial.
	NicknameProb float64
	// TypoProb applies one random character mutation to the name.
	TypoProb float64
	// StreetAbbrevProb renders the street suffix in abbreviated form
	// ("st" for "street"); otherwise the long form is used.
	StreetAbbrevProb float64
	// MissingPhoneProb drops the phone field of one observation.
	MissingPhoneProb float64

	// ZipPool is the number of distinct zip codes; households share zips
	// when the pool is smaller than the household count.
	ZipPool int
}

// Validate reports configuration errors.
func (c *PeopleConfig) Validate() error {
	switch {
	case c.NumPeople <= 0:
		return fmt.Errorf("datagen: NumPeople = %d, want > 0", c.NumPeople)
	case c.NumHouseholds <= 0:
		return fmt.Errorf("datagen: NumHouseholds = %d, want > 0", c.NumHouseholds)
	case c.Snapshots <= 0:
		return fmt.Errorf("datagen: Snapshots = %d, want > 0", c.Snapshots)
	case c.PresentProb <= 0 || c.PresentProb > 1:
		return fmt.Errorf("datagen: PresentProb = %v out of (0,1]", c.PresentProb)
	case c.NicknameProb < 0 || c.NicknameProb > 1:
		return fmt.Errorf("datagen: NicknameProb = %v out of [0,1]", c.NicknameProb)
	case c.TypoProb < 0 || c.TypoProb > 1:
		return fmt.Errorf("datagen: TypoProb = %v out of [0,1]", c.TypoProb)
	case c.StreetAbbrevProb < 0 || c.StreetAbbrevProb > 1:
		return fmt.Errorf("datagen: StreetAbbrevProb = %v out of [0,1]", c.StreetAbbrevProb)
	case c.MissingPhoneProb < 0 || c.MissingPhoneProb > 1:
		return fmt.Errorf("datagen: MissingPhoneProb = %v out of [0,1]", c.MissingPhoneProb)
	case c.ZipPool <= 0:
		return fmt.Errorf("datagen: ZipPool = %d, want > 0", c.ZipPool)
	}
	return nil
}

// PeopleLike returns the standard people-domain preset. Scale multiplies
// the entity counts exactly like the bibliographic presets; the noise
// rates stay fixed.
func PeopleLike(scale float64, seed int64) PeopleConfig {
	return PeopleConfig{
		Name:             "people-like",
		Seed:             seed,
		NumPeople:        scaleInt(300, scale),
		NumHouseholds:    scaleInt(120, scale),
		Snapshots:        4,
		PresentProb:      0.75,
		NicknameProb:     0.3,
		TypoProb:         0.15,
		StreetAbbrevProb: 0.4,
		MissingPhoneProb: 0.35,
		ZipPool:          scaleInt(40, scale),
	}
}

var streetNames = []string{
	"oak", "elm", "maple", "cedar", "pine", "walnut", "lake", "hill",
	"park", "main", "river", "spring", "sunset", "washington", "lincoln",
	"jefferson", "madison", "franklin", "highland", "prospect",
}

// Street suffixes, long and abbreviated forms at matching indices.
var (
	streetSuffixLong  = []string{"street", "avenue", "road", "lane"}
	streetSuffixShort = []string{"st", "ave", "rd", "ln"}
)

type person struct {
	first, last string
	household   int
	phone       string
}

type household struct {
	number int // street number
	street int // index into streetNames
	suffix int // index into streetSuffix*
	zip    string
}

// GeneratePeople synthesizes a people corpus in raw record form: one
// record per observation, Group = snapshot-local household id (the
// co-occurrence relation), Gold = ground-truth person. The result is
// deterministic in c.Seed.
func GeneratePeople(c PeopleConfig) ([]bib.Record, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	zips := make([]string, c.ZipPool)
	for i := range zips {
		zips[i] = fmt.Sprintf("9%04d", rng.Intn(10000))
	}
	households := make([]household, c.NumHouseholds)
	for h := range households {
		households[h] = household{
			number: 1 + rng.Intn(99),
			street: rng.Intn(len(streetNames)),
			suffix: rng.Intn(len(streetSuffixLong)),
			zip:    zips[rng.Intn(len(zips))],
		}
	}
	people := make([]person, c.NumPeople)
	for i := range people {
		people[i] = person{
			first:     firstNames[rng.Intn(len(firstNames))],
			last:      lastName(rng.Intn(2 * c.NumHouseholds)),
			household: i % c.NumHouseholds,
			phone:     fmt.Sprintf("555-%04d", i),
		}
	}
	members := make([][]int, c.NumHouseholds)
	for i, p := range people {
		members[p.household] = append(members[p.household], i)
	}

	var out []bib.Record
	for s := 0; s < c.Snapshots; s++ {
		for h := 0; h < c.NumHouseholds; h++ {
			group := int32(s*c.NumHouseholds + h)
			for _, pid := range members[h] {
				if rng.Float64() >= c.PresentProb {
					continue
				}
				out = append(out, bib.Record{
					Name:  renderPersonKey(rng, people[pid], households[h], c),
					Group: group,
					Gold:  int32(pid),
				})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("datagen: people corpus came out empty (NumPeople=%d, Snapshots=%d, PresentProb=%v)",
			c.NumPeople, c.Snapshots, c.PresentProb)
	}
	return out, nil
}

// MustGeneratePeople is GeneratePeople for known-good configs; it panics
// on error.
func MustGeneratePeople(c PeopleConfig) []bib.Record {
	recs, err := GeneratePeople(c)
	if err != nil {
		panic(err)
	}
	return recs
}

// renderPersonKey renders one observation's composite key with the
// config's noise model. Field order: name | street | phone | zip.
func renderPersonKey(rng *rand.Rand, p person, hh household, c PeopleConfig) string {
	first, last := p.first, p.last
	if rng.Float64() < c.TypoProb {
		if rng.Intn(2) == 0 {
			first = typo(rng, first)
		} else {
			last = typo(rng, last)
		}
	}
	if rng.Float64() < c.NicknameProb && len(first) > 0 {
		first = first[:1]
	}
	suffix := streetSuffixLong[hh.suffix]
	if rng.Float64() < c.StreetAbbrevProb {
		suffix = streetSuffixShort[hh.suffix]
	}
	street := fmt.Sprintf("%d %s %s", hh.number, streetNames[hh.street], suffix)
	phone := p.phone
	if rng.Float64() < c.MissingPhoneProb {
		phone = ""
	}
	return fmt.Sprintf("%s %s | %s | %s | %s", first, last, street, phone, hh.zip)
}
