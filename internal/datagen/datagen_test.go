package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/similarity"
)

func TestGenerateValid(t *testing.T) {
	d := MustGenerate(HEPTHLike(0.3, 1))
	if err := d.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	if d.NumRefs() == 0 || d.NumPapers() == 0 {
		t.Fatal("empty dataset")
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(HEPTHLike(0.2, 42))
	b := MustGenerate(HEPTHLike(0.2, 42))
	if a.NumRefs() != b.NumRefs() {
		t.Fatalf("sizes differ: %d vs %d", a.NumRefs(), b.NumRefs())
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d differs: %+v vs %+v", i, a.Refs[i], b.Refs[i])
		}
	}
	c := MustGenerate(HEPTHLike(0.2, 43))
	same := c.NumRefs() == a.NumRefs()
	if same {
		identical := true
		for i := range a.Refs {
			if a.Refs[i] != c.Refs[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumAuthors: 0, NumPapers: 1, MinAuthors: 1, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 5},
		{NumAuthors: 1, NumPapers: 0, MinAuthors: 1, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 5},
		{NumAuthors: 1, NumPapers: 1, MinAuthors: 0, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 5},
		{NumAuthors: 1, NumPapers: 1, MinAuthors: 3, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 5},
		{NumAuthors: 1, NumPapers: 1, MinAuthors: 1, MaxAuthors: 2, CommunitySize: 0, LastNamePool: 5},
		{NumAuthors: 1, NumPapers: 1, MinAuthors: 1, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 0},
		{NumAuthors: 1, NumPapers: 1, MinAuthors: 1, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 5, AbbreviateProb: 1.5},
		{NumAuthors: 1, NumPapers: 1, MinAuthors: 1, MaxAuthors: 2, CommunitySize: 5, LastNamePool: 5, TypoProb: -0.1},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestHEPTHLikeAbbreviation(t *testing.T) {
	d := MustGenerate(HEPTHLike(0.3, 7))
	abbrev := 0
	for i := range d.Refs {
		if similarity.ParseName(d.Refs[i].Name).Abbreviated() {
			abbrev++
		}
	}
	frac := float64(abbrev) / float64(len(d.Refs))
	if frac < 0.7 || frac > 0.95 {
		t.Errorf("HEPTH-like abbreviation rate = %.2f, want ≈ 0.85", frac)
	}
}

func TestDBLPLikeFullNames(t *testing.T) {
	d := MustGenerate(DBLPLike(0.3, 7))
	abbrev := 0
	for i := range d.Refs {
		if similarity.ParseName(d.Refs[i].Name).Abbreviated() {
			abbrev++
		}
	}
	// No deliberate abbreviation; a typo can shorten a 2-letter first
	// name to an initial, so allow a sub-percent accidental rate.
	if frac := float64(abbrev) / float64(d.NumRefs()); frac > 0.005 {
		t.Errorf("DBLP-like dataset has %d/%d abbreviated names, want ≈ 0", abbrev, d.NumRefs())
	}
}

// The regimes the paper reports: with comparable reference counts, the
// DBLP-like corpus must have far fewer same-name clashes than the
// HEPTH-like corpus (that is what drives its smaller neighborhoods).
func TestClashRegimes(t *testing.T) {
	hep := MustGenerate(HEPTHLike(0.4, 3))
	dbl := MustGenerate(DBLPLike(0.4, 3))
	clashRate := func(names []string) float64 {
		seen := map[string]int{}
		for _, n := range names {
			seen[n]++
		}
		clashes := 0
		for _, c := range seen {
			clashes += c - 1
		}
		return float64(clashes) / float64(len(names))
	}
	var hepNames, dblNames []string
	for i := range hep.Refs {
		hepNames = append(hepNames, hep.Refs[i].Name)
	}
	for i := range dbl.Refs {
		dblNames = append(dblNames, dbl.Refs[i].Name)
	}
	hr, dr := clashRate(hepNames), clashRate(dblNames)
	if hr <= dr {
		t.Errorf("HEPTH-like clash rate %.3f must exceed DBLP-like %.3f", hr, dr)
	}
}

func TestReferencesPerPaper(t *testing.T) {
	d := MustGenerate(DBLPLike(0.3, 9))
	ratio := float64(d.NumRefs()) / float64(d.NumPapers())
	if ratio < 2.0 || ratio > 3.2 {
		t.Errorf("DBLP-like refs/paper = %.2f, want ≈ 2.6", ratio)
	}
	h := MustGenerate(HEPTHLike(0.3, 9))
	ratio = float64(h.NumRefs()) / float64(h.NumPapers())
	// The paper's HEPTH averages 2.0 authors/paper; our preset runs
	// higher (2.5–3.2) because repeated multi-author groups are what give
	// the collective matcher its jointly-positive cliques (documented as
	// a substitution in DESIGN.md).
	if ratio < 2.0 || ratio > 3.4 {
		t.Errorf("HEPTH-like refs/paper = %.2f, want within [2.0, 3.4]", ratio)
	}
}

func TestCoauthorEvidenceExists(t *testing.T) {
	// Collective matching requires repeated collaborations: a substantial
	// fraction of true-match reference pairs must have coauthor references
	// that are themselves true matches.
	d := MustGenerate(HEPTHLike(0.4, 5))
	co := d.Coauthor()
	tp := d.TruePairs()
	supported := 0
	for p := range tp {
		a, b := p[0], p[1]
		found := false
		for _, ca := range co.Neighbors(a) {
			for _, cb := range co.Neighbors(b) {
				if d.Refs[ca].True == d.Refs[cb].True {
					found = true
				}
			}
		}
		if found {
			supported++
		}
	}
	frac := float64(supported) / float64(len(tp))
	if frac < 0.5 {
		t.Errorf("only %.2f of true pairs have coauthor support; collective evidence too weak", frac)
	}
}

func TestTypoMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		s := "rastogi"
		m := typo(rng, s)
		if m == "" {
			t.Fatal("typo produced empty string")
		}
		if similarity.Levenshtein(s, m) > 2 {
			t.Fatalf("typo mutated %q into %q (distance > 2)", s, m)
		}
	}
	// Single-character strings must never be emptied.
	for i := 0; i < 50; i++ {
		if m := typo(rng, "a"); len(m) == 0 {
			t.Fatal("typo emptied a 1-char string")
		}
	}
	if typo(rng, "") != "" {
		t.Error("typo of empty string must be empty")
	}
}

func TestLastNamePoolDeterminism(t *testing.T) {
	for i := 0; i < 500; i++ {
		if lastName(i) != lastName(i) {
			t.Fatalf("lastName(%d) not deterministic", i)
		}
		if lastName(i) == "" {
			t.Fatalf("lastName(%d) empty", i)
		}
	}
	// Distinct indices usually give distinct names within a modest pool.
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[lastName(i)] = true
	}
	if len(seen) < 250 {
		t.Errorf("only %d distinct names in first 300 indices", len(seen))
	}
}

func TestCitesWithinRange(t *testing.T) {
	d := MustGenerate(HEPTHLike(0.3, 11))
	for p := range d.Papers {
		for _, c := range d.Papers[p].Cites {
			if int(c) >= p {
				t.Fatalf("paper %d cites non-earlier paper %d", p, c)
			}
		}
	}
}

func TestDBLPBigLikeScale(t *testing.T) {
	small := MustGenerate(DBLPLike(0.1, 1))
	big := MustGenerate(DBLPBigLike(0.1, 1))
	if big.NumRefs() < 4*small.NumRefs() {
		t.Errorf("DBLP-BIG (%d refs) must be much larger than DBLP (%d refs)",
			big.NumRefs(), small.NumRefs())
	}
	if !strings.Contains(big.Name, "big") {
		t.Errorf("name = %q", big.Name)
	}
}

func BenchmarkGenerateHEPTH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate(HEPTHLike(0.5, int64(i)))
	}
}

// TestGroupRepetition: RepeatGroupProb must produce exact author-group
// repetitions — the jointly-positive cliques collective matchers need.
func TestGroupRepetition(t *testing.T) {
	d := MustGenerate(HEPTHLike(0.3, 21))
	groups := map[string]int{}
	for p := range d.Papers {
		authors := []int{}
		for _, r := range d.Papers[p].Refs {
			authors = append(authors, int(d.Refs[r].True))
		}
		sort.Ints(authors)
		key := fmt.Sprint(authors)
		groups[key]++
	}
	repeated := 0
	for _, n := range groups {
		if n >= 2 {
			repeated++
		}
	}
	if frac := float64(repeated) / float64(len(groups)); frac < 0.2 {
		t.Errorf("only %.2f of author groups repeat; collective cliques too rare", frac)
	}
	// Disabling repetition produces (far) fewer repeats.
	cfg := HEPTHLike(0.3, 21)
	cfg.RepeatGroupProb = 0
	d0 := MustGenerate(cfg)
	groups0 := map[string]int{}
	for p := range d0.Papers {
		authors := []int{}
		for _, r := range d0.Papers[p].Refs {
			authors = append(authors, int(d0.Refs[r].True))
		}
		sort.Ints(authors)
		groups0[fmt.Sprint(authors)]++
	}
	repeated0 := 0
	for _, n := range groups0 {
		if n >= 2 {
			repeated0++
		}
	}
	if repeated0 >= repeated {
		t.Errorf("RepeatGroupProb=0 yields %d repeats vs %d with repetition",
			repeated0, repeated)
	}
}
