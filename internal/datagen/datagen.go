package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/bib"
)

// Config controls synthesis of one bibliography dataset.
type Config struct {
	Name string
	Seed int64

	NumAuthors int // distinct ground-truth authors
	NumPapers  int // papers; references ≈ NumPapers · mean authors/paper

	// Authors per paper are drawn uniformly from [MinAuthors, MaxAuthors].
	MinAuthors int
	MaxAuthors int

	// CommunitySize controls collaboration locality: authors are grouped
	// into communities of roughly this size and papers draw all their
	// authors from a single community. Repeated collaborations inside a
	// community are what gives collective matchers their relational
	// evidence.
	CommunitySize int

	// LastNamePool is the number of distinct last names available. A
	// smaller pool means more authors share last names, which (together
	// with abbreviation) creates the name clashes the paper describes for
	// HEPTH.
	LastNamePool int

	// AbbreviateProb is the probability that a reference renders its
	// author's first name as a bare initial ("V. Rastogi"). HEPTH-like
	// corpora use a high value; DBLP-like corpora use 0.
	AbbreviateProb float64

	// TypoProb is the probability that a reference's rendered name
	// receives one random character mutation (DBLP noise model).
	TypoProb float64

	// CiteProb is the probability that a paper cites a random earlier
	// paper in its community, checked up to MaxCites times.
	CiteProb float64
	MaxCites int

	// RepeatGroupProb is the probability that a paper reuses the exact
	// author set of an earlier paper in its community. Repeated groups
	// are what give collective matchers jointly-positive cliques of
	// match variables (a trio writing two papers together produces three
	// mutually-supporting reference pairs).
	RepeatGroupProb float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.NumAuthors <= 0:
		return fmt.Errorf("datagen: NumAuthors = %d, want > 0", c.NumAuthors)
	case c.NumPapers <= 0:
		return fmt.Errorf("datagen: NumPapers = %d, want > 0", c.NumPapers)
	case c.MinAuthors <= 0 || c.MaxAuthors < c.MinAuthors:
		return fmt.Errorf("datagen: bad authors-per-paper range [%d,%d]", c.MinAuthors, c.MaxAuthors)
	case c.CommunitySize <= 0:
		return fmt.Errorf("datagen: CommunitySize = %d, want > 0", c.CommunitySize)
	case c.LastNamePool <= 0:
		return fmt.Errorf("datagen: LastNamePool = %d, want > 0", c.LastNamePool)
	case c.AbbreviateProb < 0 || c.AbbreviateProb > 1:
		return fmt.Errorf("datagen: AbbreviateProb = %v out of [0,1]", c.AbbreviateProb)
	case c.TypoProb < 0 || c.TypoProb > 1:
		return fmt.Errorf("datagen: TypoProb = %v out of [0,1]", c.TypoProb)
	case c.CiteProb < 0 || c.CiteProb > 1 || c.CiteProb != c.CiteProb:
		return fmt.Errorf("datagen: CiteProb = %v out of [0,1]", c.CiteProb)
	case c.MaxCites < 0:
		return fmt.Errorf("datagen: MaxCites = %d, want >= 0", c.MaxCites)
	case c.RepeatGroupProb < 0 || c.RepeatGroupProb > 1:
		return fmt.Errorf("datagen: RepeatGroupProb = %v out of [0,1]", c.RepeatGroupProb)
	}
	return nil
}

// author is an internal ground-truth author.
type author struct {
	first, last   string
	community     int
	weight        int   // productivity weight for preferential selection
	collaborators []int // preferred repeat coauthors within the community
}

// Generate synthesizes a dataset according to c. The result passes
// bib.Validate and is deterministic in c.Seed.
func Generate(c Config) (*bib.Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// --- Authors -----------------------------------------------------
	authors := make([]author, c.NumAuthors)
	numCommunities := (c.NumAuthors + c.CommunitySize - 1) / c.CommunitySize
	for i := range authors {
		authors[i] = author{
			first:     firstNames[rng.Intn(len(firstNames))],
			last:      lastName(rng.Intn(c.LastNamePool)),
			community: i % numCommunities,
			// Zipf-flavored productivity: a few prolific authors.
			weight: 1 + rng.Intn(4)*rng.Intn(4),
		}
	}
	// Community membership lists.
	communities := make([][]int, numCommunities)
	for i := range authors {
		communities[authors[i].community] = append(communities[authors[i].community], i)
	}
	// Preferred collaborators: each author repeatedly writes with a small
	// fixed set of community members. This is the relational redundancy
	// that collective matchers exploit ("J. Doe" and "John Doe" keep
	// appearing next to "M. Smith" / "Mark Smith").
	for i := range authors {
		comm := communities[authors[i].community]
		if len(comm) < 2 {
			continue
		}
		n := 1 + rng.Intn(2)
		for t := 0; t < n; t++ {
			c := comm[rng.Intn(len(comm))]
			if c != i {
				// Collaboration is mutual: both sides prefer each other.
				authors[i].collaborators = append(authors[i].collaborators, c)
				authors[c].collaborators = append(authors[c].collaborators, i)
			}
		}
	}

	// --- Papers and references ---------------------------------------
	d := &bib.Dataset{Name: c.Name}
	d.Papers = make([]bib.Paper, 0, c.NumPapers)
	papersInCommunity := make([][]bib.PaperID, numCommunities)

	pickAuthor := func(comm []int) int {
		total := 0
		for _, a := range comm {
			total += authors[a].weight
		}
		r := rng.Intn(total)
		for _, a := range comm {
			r -= authors[a].weight
			if r < 0 {
				return a
			}
		}
		return comm[len(comm)-1]
	}

	groupsInCommunity := make([][][]int, numCommunities)
	for p := 0; p < c.NumPapers; p++ {
		commID := rng.Intn(numCommunities)
		comm := communities[commID]
		var chosen []int
		if past := groupsInCommunity[commID]; len(past) > 0 && rng.Float64() < c.RepeatGroupProb {
			// Reuse an earlier author group verbatim: repeated groups are
			// the jointly-positive cliques collective matchers exploit.
			chosen = append(chosen, past[rng.Intn(len(past))]...)
		} else {
			k := c.MinAuthors + rng.Intn(c.MaxAuthors-c.MinAuthors+1)
			if k > len(comm) {
				k = len(comm)
			}
			// Lead author by productivity; remaining slots prefer the
			// lead's repeat collaborators, falling back to the community.
			lead := pickAuthor(comm)
			chosen = []int{lead}
			inPaper := map[int]bool{lead: true}
			for attempts := 0; len(chosen) < k && attempts < 20*k; attempts++ {
				var cand int
				member := chosen[rng.Intn(len(chosen))]
				if collab := authors[member].collaborators; len(collab) > 0 && rng.Float64() < 0.9 {
					cand = collab[rng.Intn(len(collab))]
				} else {
					cand = pickAuthor(comm)
				}
				if !inPaper[cand] {
					inPaper[cand] = true
					chosen = append(chosen, cand)
				}
			}
			groupsInCommunity[commID] = append(groupsInCommunity[commID], chosen)
		}
		paper := bib.Paper{
			Title: makeTitle(rng),
			Year:  1992 + rng.Intn(20),
		}
		// Citations to earlier papers of the same community.
		prior := papersInCommunity[commID]
		for t := 0; t < c.MaxCites && len(prior) > 0; t++ {
			if rng.Float64() < c.CiteProb {
				paper.Cites = append(paper.Cites, prior[rng.Intn(len(prior))])
			}
		}
		pid := bib.PaperID(len(d.Papers))
		for _, a := range chosen {
			rid := bib.RefID(len(d.Refs))
			d.Refs = append(d.Refs, bib.Reference{
				Name:  renderName(rng, authors[a], c),
				Paper: pid,
				True:  bib.AuthorID(a),
			})
			paper.Refs = append(paper.Refs, rid)
		}
		d.Papers = append(d.Papers, paper)
		papersInCommunity[commID] = append(papersInCommunity[commID], pid)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated invalid dataset: %w", err)
	}
	return d, nil
}

// renderName produces the surface form of an author's name on one
// reference, applying abbreviation and typo noise per the config.
func renderName(rng *rand.Rand, a author, c Config) string {
	first, last := a.first, a.last
	if rng.Float64() < c.TypoProb {
		if rng.Intn(2) == 0 {
			first = typo(rng, first)
		} else {
			last = typo(rng, last)
		}
		// Occasionally a second mutation, so some names drift further.
		if rng.Float64() < 0.3 {
			if rng.Intn(2) == 0 {
				first = typo(rng, first)
			} else {
				last = typo(rng, last)
			}
		}
	}
	if rng.Float64() < c.AbbreviateProb && len(first) > 0 {
		return first[:1] + ". " + last
	}
	return first + " " + last
}

// MustGenerate is Generate for known-good configs (presets, tests);
// it panics on error.
func MustGenerate(c Config) *bib.Dataset {
	d, err := Generate(c)
	if err != nil {
		panic(err)
	}
	return d
}
