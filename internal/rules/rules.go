// Package rules implements the paper's second matcher, RULES: a
// declarative collective matcher in the style of Dedupalog (Arasu, Ré &
// Suciu, reference [2]), restricted to the monotone fragment Dedupalog*
// of Appendix A (no negation, transitive closure as a derivation step
// rather than a global constraint — Proposition 5 shows this fragment is
// monotone, so SMP is sound and, empirically, complete for it).
//
// The concrete program is the Appendix B rule set:
//
//  1. similar(e1,e2,3) ⇒ equals(e1,e2)
//  2. similar(e1,e2,2) ∧ one matched coauthor pair   ⇒ equals(e1,e2)
//  3. similar(e1,e2,1) ∧ two distinct matched pairs  ⇒ equals(e1,e2)
//
// evaluated by a semi-naive fixpoint interleaved with transitive closure,
// which mirrors "the 3-approximate algorithm in [2] … followed by a
// transitive closure".
package rules

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/similarity"
	"repro/internal/unionfind"
)

// Rule is one threshold rule of the Dedupalog* program: a pair at exactly
// Level fires when at least MinCoauthorMatches distinct coauthor pairs
// are already matched (a shared identical coauthor reference counts as
// matched by reflexivity).
type Rule struct {
	Level              similarity.Level
	MinCoauthorMatches int
}

// Program-validation errors, matchable with errors.Is. Validate wraps
// each with the offending rule's details.
var (
	// ErrNegativeSupport marks a rule demanding a negative number of
	// matched coauthor pairs.
	ErrNegativeSupport = errors.New("rules: negative coauthor requirement")
	// ErrUnknownLevel marks a rule on a level outside the discretized
	// similarity buckets {1, 2, 3}: no candidate ever carries such a
	// level, so the rule can never fire.
	ErrUnknownLevel = errors.New("rules: unknown similarity level")
	// ErrDuplicateLevel marks a program with two rules on the same
	// level. Evaluation takes the least-demanding rule per level, so the
	// more-demanding duplicate is dead weight — almost always a program
	// mistake (the author meant a different level).
	ErrDuplicateLevel = errors.New("rules: duplicate rule level")
)

// Validate checks a rule program for the degenerate shapes New used to
// accept silently: negative support requirements, rules on levels no
// candidate can carry, and duplicate levels (only the least-demanding
// rule of a level is ever consulted, so a duplicate is dead). An empty
// program is valid — it simply derives nothing.
func Validate(rs []Rule) error {
	seen := map[similarity.Level]int{}
	for i, r := range rs {
		if r.MinCoauthorMatches < 0 {
			return fmt.Errorf("%w: rule %d wants %d matched coauthor pairs", ErrNegativeSupport, i, r.MinCoauthorMatches)
		}
		if r.Level < similarity.LevelWeak || r.Level > similarity.LevelStrong {
			return fmt.Errorf("%w: rule %d fires on level %d, want 1..3", ErrUnknownLevel, i, r.Level)
		}
		if j, dup := seen[r.Level]; dup {
			return fmt.Errorf("%w: rules %d and %d both fire on level %d", ErrDuplicateLevel, j, i, r.Level)
		}
		seen[r.Level] = i
	}
	return nil
}

// PaperRules returns the Appendix B program.
func PaperRules() []Rule {
	return []Rule{
		{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
		{Level: similarity.LevelMedium, MinCoauthorMatches: 1},
		{Level: similarity.LevelWeak, MinCoauthorMatches: 2},
	}
}

// Candidate is a match variable: a reference pair with its level.
type Candidate struct {
	Pair  core.Pair
	Level similarity.Level
}

// Matcher is the ground RULES program over one dataset. It implements
// core.Matcher (Type-I only — RULES is not probabilistic, so MMP does not
// apply; Appendix C evaluates it with NO-MP, SMP and FULL). The model is
// immutable after construction and safe for concurrent use.
type Matcher struct {
	rules    []Rule
	co       *graph.Graph
	pairs    []core.Pair
	idOf     map[core.Pair]int32
	level    []similarity.Level
	pairsOf  [][]int32
	applyTC  bool
	maxLevel map[similarity.Level][]Rule // rules indexed by level
}

// Option configures a Matcher.
type Option func(*Matcher)

// WithInterleavedClosure enables transitive closure *inside* the rule
// fixpoint (Dedupalog's global-constraint semantics). The default is off,
// matching the paper's own evaluation ("we use the 3-approximate
// algorithm … WITHOUT transitive closure, followed by a transitive
// closure at the end", Appendix B): interleaved closure uses pairs that
// never share a neighborhood and therefore breaks the exact
// SMP-equals-FULL property; end-of-run closure (a harness step) does not.
func WithInterleavedClosure() Option {
	return func(m *Matcher) { m.applyTC = true }
}

// New grounds the program for a dataset over candidate pairs.
func New(d *bib.Dataset, cands []Candidate, rs []Rule, opts ...Option) (*Matcher, error) {
	m := &Matcher{
		rules:    rs,
		co:       d.Coauthor(),
		pairs:    make([]core.Pair, len(cands)),
		idOf:     make(map[core.Pair]int32, len(cands)),
		level:    make([]similarity.Level, len(cands)),
		pairsOf:  make([][]int32, d.NumRefs()),
		applyTC:  false,
		maxLevel: map[similarity.Level][]Rule{},
	}
	if err := Validate(rs); err != nil {
		return nil, err
	}
	for _, r := range rs {
		m.maxLevel[r.Level] = append(m.maxLevel[r.Level], r)
	}
	for i, c := range cands {
		if !c.Pair.Valid() {
			return nil, fmt.Errorf("rules: invalid candidate pair %v", c.Pair)
		}
		if _, dup := m.idOf[c.Pair]; dup {
			return nil, fmt.Errorf("rules: duplicate candidate pair %v", c.Pair)
		}
		m.pairs[i] = c.Pair
		m.idOf[c.Pair] = int32(i)
		m.level[i] = c.Level
		m.pairsOf[c.Pair.A] = append(m.pairsOf[c.Pair.A], int32(i))
		m.pairsOf[c.Pair.B] = append(m.pairsOf[c.Pair.B], int32(i))
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// NumPairs returns the number of ground candidates.
func (m *Matcher) NumPairs() int { return len(m.pairs) }

// Candidates implements core.Matcher.
func (m *Matcher) Candidates(entities []core.EntityID) []core.Pair {
	in := make(map[core.EntityID]bool, len(entities))
	for _, e := range entities {
		in[e] = true
	}
	var out []core.Pair
	for _, e := range entities {
		for _, id := range m.pairsOf[e] {
			p := m.pairs[id]
			if p.A == e && in[p.B] {
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// matchedCoauthorPairs counts distinct coauthor-pair support for p given
// the current equals set: unordered pairs (c1, c2) with c1 ∈ N(p.A),
// c2 ∈ N(p.B), and either c1 == c2 (reflexivity) or (c1, c2) ∈ equals.
// Counting stops at enough, keeping rule checks cheap.
func (m *Matcher) matchedCoauthorPairs(p core.Pair, equals core.PairSet, enough int) int {
	if enough == 0 {
		return 0
	}
	seen := map[core.Pair]bool{}
	count := 0
	for _, c1 := range m.co.Neighbors(p.A) {
		for _, c2 := range m.co.Neighbors(p.B) {
			var q core.Pair
			if c1 == c2 {
				q = core.Pair{A: c1, B: c1} // reflexive marker
			} else {
				q = core.MakePair(c1, c2)
				if !equals.Has(q) {
					continue
				}
			}
			if !seen[q] {
				seen[q] = true
				count++
				if count >= enough {
					return count
				}
			}
		}
	}
	return count
}

// fires reports whether any rule derives p under equals.
func (m *Matcher) fires(id int32, equals core.PairSet) bool {
	rules := m.maxLevel[m.level[id]]
	if len(rules) == 0 {
		return false
	}
	need := -1
	for _, r := range rules {
		if need < 0 || r.MinCoauthorMatches < need {
			need = r.MinCoauthorMatches
		}
	}
	if need == 0 {
		return true
	}
	return m.matchedCoauthorPairs(m.pairs[id], equals, need) >= need
}

// Match implements core.Matcher: semi-naive fixpoint of the rules over
// the in-scope candidates, interleaved with transitive closure over the
// in-scope entities, seeded by the positive evidence (which, like the
// MLN matcher, is consulted globally for coauthor support). Negative
// evidence suppresses pairs from derivation and output.
func (m *Matcher) Match(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
	in := make(map[core.EntityID]int32, len(entities))
	for i, e := range entities {
		in[e] = int32(i)
	}
	var scoped []int32
	for _, e := range entities {
		for _, id := range m.pairsOf[e] {
			p := m.pairs[id]
			if p.A == e {
				if _, ok := in[p.B]; ok {
					scoped = append(scoped, id)
				}
			}
		}
	}
	sort.Slice(scoped, func(a, b int) bool { return scoped[a] < scoped[b] })

	// equals holds the global view: all positive evidence plus everything
	// derived so far. out holds the in-scope portion.
	equals := pos.Clone()
	out := core.NewPairSet()
	for p := range pos.All() {
		if neg.Has(p) {
			continue
		}
		_, okA := in[p.A]
		_, okB := in[p.B]
		if okA && okB {
			out.Add(p)
		}
	}

	for {
		changed := false
		for _, id := range scoped {
			p := m.pairs[id]
			if equals.Has(p) || neg.Has(p) {
				continue
			}
			if m.fires(id, equals) {
				equals.Add(p)
				out.Add(p)
				changed = true
			}
		}
		if m.applyTC && m.closeTransitively(entities, in, equals, neg, out) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return out
}

// closeTransitively adds, for every connected component of in-scope
// matched pairs, all missing component pairs (except negated ones) to
// equals/out. Reports whether anything was added.
func (m *Matcher) closeTransitively(entities []core.EntityID, in map[core.EntityID]int32, equals, neg, out core.PairSet) bool {
	dsu := unionfind.New(len(entities))
	for p := range out.All() {
		dsu.Union(int(in[p.A]), int(in[p.B]))
	}
	members := map[int][]core.EntityID{}
	for i, e := range entities {
		r := dsu.Find(i)
		members[r] = append(members[r], e)
	}
	changed := false
	for _, comp := range members {
		if len(comp) < 2 {
			continue
		}
		for i := 0; i < len(comp); i++ {
			for j := i + 1; j < len(comp); j++ {
				p := core.MakePair(comp[i], comp[j])
				if equals.Has(p) || neg.Has(p) {
					continue
				}
				equals.Add(p)
				out.Add(p)
				changed = true
			}
		}
	}
	return changed
}

var _ core.Matcher = (*Matcher)(nil)
