package rules

// Hard equality seeds — the Dedupalog rule "equals(x, y) ⇐ AuthorEQ(x, y)"
// of Appendix A — need no dedicated machinery in this framework: an
// externally known equality predicate is exactly the V+ evidence slot of
// Definition 1. Supply the known-equal pairs as core.Config's initial
// evidence (or as the pos argument of Matcher.Match) and every scheme
// treats them as unretractable matches; hard *inequalities* are the
// Negative slot. This note exists so readers looking for Dedupalog's
// hard-rule surface find the intended mapping.
