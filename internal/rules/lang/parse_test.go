package lang

import (
	"errors"
	"strings"
	"testing"
)

const peopleSrc = `# people dedup, v1
program people-v1
fields name, street, zip, phone

level 3 when name equal and phone equal
level 2 when name jaro >= 0.9 and street qgram >= 0.5
level 1 when name jaro >= 0.82

match level 3
match level 2 when cooccur >= 1
match level 1 when cooccur >= 2

equal when phone equal and zip equal
distinct when name differ and zip differ
`

func TestParseProgram(t *testing.T) {
	p, err := Parse(peopleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "people-v1" {
		t.Errorf("name = %q", p.Name)
	}
	if got := len(p.Fields); got != 4 {
		t.Errorf("fields = %d", got)
	}
	if got := len(p.Levels); got != 3 {
		t.Errorf("levels = %d", got)
	}
	if got := len(p.Matches); got != 3 {
		t.Errorf("matches = %d", got)
	}
	if got := len(p.Seeds); got != 2 {
		t.Errorf("seeds = %d", got)
	}
	if p.Matches[1].Cooccur != 1 || p.Matches[0].Cooccur != 0 {
		t.Errorf("cooccur = %+v", p.Matches)
	}
	if !p.Seeds[1].Negated || p.Seeds[0].Negated {
		t.Errorf("seeds = %+v", p.Seeds)
	}
	if p.Levels[1].Cond[0].Op != OpJaro || p.Levels[1].Cond[0].Num != 0.9 {
		t.Errorf("level 2 pred = %+v", p.Levels[1].Cond[0])
	}
}

// TestParseErrorPositions pins the exact line:col each malformed program
// is reported at.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
		msg       string
	}{
		{"missing program", "fields a\nmatch level 3\n", 1, 1, "missing program declaration"},
		{"program not first", "fields a\nprogram p\n", 2, 1, "must come first"},
		{"duplicate program", "program p\nprogram q\n", 2, 1, "duplicate program"},
		{"unknown clause", "program p\nmatcher level 3\n", 2, 1, "unknown clause"},
		{"bad char", "program p\nlevel 3 when a ~ b\n", 2, 16, "unexpected character '~'"},
		{"missing name", "program\n", 1, 8, "expected program name"},
		{"duplicate fields", "program p\nfields a\nfields b\n", 3, 1, "duplicate fields"},
		{"reserved field", "program p\nfields a, when\n", 2, 11, "reserved word"},
		{"fields trailing comma", "program p\nfields a,\n", 2, 10, "expected field name"},
		{"missing when", "program p\nlevel 2 a equal\n", 2, 9, `expected "when"`},
		{"level float", "program p\nlevel 2.5 when a equal\n", 2, 7, "must be an integer"},
		{"unknown operator", "program p\nfields a\nlevel 2 when a like 0.5\n", 3, 16, "unknown operator"},
		{"jaro wrong cmp", "program p\nlevel 2 when a jaro <= 0.5\n", 2, 21, "expected '>='"},
		{"lev float arg", "program p\nlevel 2 when a lev <= 0.5\n", 2, 23, "must be an integer"},
		{"match missing level", "program p\nmatch 3\n", 2, 7, `expected "level"`},
		{"match junk after", "program p\nmatch level 3 extra\n", 2, 15, `expected "when"`},
		{"cooccur wrong cmp", "program p\nmatch level 2 when cooccur <= 1\n", 2, 28, "expected '>='"},
		{"seed missing when", "program p\ndistinct zip differ\n", 2, 10, `expected "when"`},
		{"dangling and", "program p\nfields a\nequal when a equal and\n", 3, 23, "expected field name"},
		{"program junk after", "program p q\n", 1, 11, "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v, want *ParseError", err)
			}
			if pe.Pos.Line != tc.line || pe.Pos.Col != tc.col {
				t.Errorf("position = %s, want %d:%d (%v)", pe.Pos, tc.line, tc.col, pe)
			}
			if !strings.Contains(pe.Msg, tc.msg) {
				t.Errorf("message %q does not mention %q", pe.Msg, tc.msg)
			}
		})
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p, err := Parse(peopleSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Print()
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v\n%s", err, out)
	}
	if out2 := p2.Print(); out2 != out {
		t.Fatalf("print not a fixed point:\n%s\nvs\n%s", out, out2)
	}
	// Spot-check the canonical rendering.
	if !strings.Contains(out, "match level 2 when cooccur >= 1\n") {
		t.Errorf("canonical form missing support clause:\n%s", out)
	}
	if !strings.Contains(out, "level 2 when name jaro >= 0.9 and street qgram >= 0.5\n") {
		t.Errorf("canonical form mangled predicates:\n%s", out)
	}
}

// FuzzRuleParse: whatever parses must print to a canonical form that
// reparses to the same canonical form (parse → print → reparse → print
// is a fixed point), and neither stage may panic.
func FuzzRuleParse(f *testing.F) {
	f.Add(peopleSrc)
	f.Add("program p\n")
	f.Add("program p\nmatch level 3\nmatch level 1 when cooccur >= 2\n")
	f.Add("program p\nfields a, b\nlevel 1 when a lev <= 2 and b absdiff <= 12.5\nequal when a equal\n")
	f.Add("program p\n# comment\nfields x-y_z\ndistinct when x-y_z differ\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		p, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-ParseError from Parse: %v", err)
			}
			return
		}
		out := p.Print()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\nsource: %q\nprinted: %q", err, src, out)
		}
		if out2 := p2.Print(); out2 != out {
			t.Fatalf("print not a fixed point\nfirst:  %q\nsecond: %q", out, out2)
		}
		// Compilation must never panic either; errors are fine.
		if pl, err := Compile(p); err == nil {
			pl2, err2 := Compile(p2)
			if err2 != nil {
				t.Fatalf("reparsed program fails compile: %v", err2)
			}
			if len(pl.Rules) != len(pl2.Rules) {
				t.Fatalf("rule count diverged across roundtrip")
			}
		}
	})
}
