package lang

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokComma
	tokGE // >=
	tokLE // <=
)

func (k tokKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	case tokGE:
		return "'>='"
	case tokLE:
		return "'<='"
	}
	return "token"
}

type token struct {
	pos  Pos
	kind tokKind
	text string
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentRest(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexLine tokenizes one source line. '#' starts a comment running to the
// end of the line. Columns are 1-based byte offsets.
func lexLine(line int, s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return toks, nil
		case isIdentStart(c):
			start := i
			for i < len(s) && isIdentRest(s[i]) {
				i++
			}
			toks = append(toks, token{Pos{line, start + 1}, tokIdent, s[start:i]})
		case isDigit(c):
			start := i
			for i < len(s) && isDigit(s[i]) {
				i++
			}
			if i < len(s) && s[i] == '.' && i+1 < len(s) && isDigit(s[i+1]) {
				i++
				for i < len(s) && isDigit(s[i]) {
					i++
				}
			}
			toks = append(toks, token{Pos{line, start + 1}, tokNumber, s[start:i]})
		case c == ',':
			toks = append(toks, token{Pos{line, i + 1}, tokComma, ","})
			i++
		case c == '>' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{Pos{line, i + 1}, tokGE, ">="})
			i += 2
		case c == '<' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{Pos{line, i + 1}, tokLE, "<="})
			i += 2
		default:
			return nil, &ParseError{Pos{line, i + 1}, fmt.Sprintf("unexpected character %q", rune(c))}
		}
	}
	return toks, nil
}

// cursor walks one line's tokens; eol is the position just past the last
// token, where missing-token errors point.
type cursor struct {
	toks []token
	i    int
	eol  Pos
}

func newCursor(line int, toks []token) *cursor {
	eol := Pos{line, 1}
	if n := len(toks); n > 0 {
		last := toks[n-1]
		eol = Pos{line, last.pos.Col + len(last.text)}
	}
	return &cursor{toks: toks, eol: eol}
}

func (c *cursor) peek() *token {
	if c.i < len(c.toks) {
		return &c.toks[c.i]
	}
	return nil
}

func (c *cursor) next() *token {
	t := c.peek()
	if t != nil {
		c.i++
	}
	return t
}

func (c *cursor) expect(k tokKind, what string) (*token, error) {
	t := c.next()
	if t == nil {
		return nil, &ParseError{c.eol, fmt.Sprintf("expected %s", what)}
	}
	if t.kind != k {
		return nil, &ParseError{t.pos, fmt.Sprintf("expected %s, got %q", what, t.text)}
	}
	return t, nil
}

func (c *cursor) expectKeyword(word string) error {
	t := c.next()
	if t == nil {
		return &ParseError{c.eol, fmt.Sprintf("expected %q", word)}
	}
	if t.kind != tokIdent || t.text != word {
		return &ParseError{t.pos, fmt.Sprintf("expected %q, got %q", word, t.text)}
	}
	return nil
}

func (c *cursor) expectInt(what string) (int, Pos, error) {
	t, err := c.expect(tokNumber, what)
	if err != nil {
		return 0, Pos{}, err
	}
	if strings.Contains(t.text, ".") {
		return 0, t.pos, &ParseError{t.pos, fmt.Sprintf("%s must be an integer, got %q", what, t.text)}
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, t.pos, &ParseError{t.pos, fmt.Sprintf("bad %s %q", what, t.text)}
	}
	return v, t.pos, nil
}

func (c *cursor) expectEnd() error {
	if t := c.peek(); t != nil {
		return &ParseError{t.pos, fmt.Sprintf("unexpected %q after clause", t.text)}
	}
	return nil
}

// reserved words cannot name fields: they would collide with clause and
// predicate keywords and make programs unreadable.
var reserved = map[string]bool{
	"program": true, "fields": true, "level": true, "match": true,
	"equal": true, "distinct": true, "when": true, "and": true,
	"cooccur": true, "jaro": true, "qgram": true, "lev": true,
	"absdiff": true, "differ": true,
}

// Parse parses a rules program source into its AST. Errors are
// *ParseError values carrying the offending line:col.
func Parse(src string) (*Program, error) {
	p := &Program{}
	clauses := 0
	seenFields := false
	for li, raw := range strings.Split(src, "\n") {
		toks, err := lexLine(li+1, raw)
		if err != nil {
			return nil, err
		}
		if len(toks) == 0 {
			continue
		}
		c := newCursor(li+1, toks)
		head := c.next()
		if head.kind != tokIdent {
			return nil, &ParseError{head.pos, fmt.Sprintf("expected clause keyword, got %q", head.text)}
		}
		switch head.text {
		case "program":
			if p.Name != "" {
				return nil, &ParseError{head.pos, "duplicate program declaration"}
			}
			if clauses > 0 {
				return nil, &ParseError{head.pos, "program declaration must come first"}
			}
			name, err := c.expect(tokIdent, "program name")
			if err != nil {
				return nil, err
			}
			p.Name = name.text
			if err := c.expectEnd(); err != nil {
				return nil, err
			}
		case "fields":
			if seenFields {
				return nil, &ParseError{head.pos, "duplicate fields declaration"}
			}
			seenFields = true
			for {
				f, err := c.expect(tokIdent, "field name")
				if err != nil {
					return nil, err
				}
				if reserved[f.text] {
					return nil, &ParseError{f.pos, fmt.Sprintf("%q is a reserved word and cannot name a field", f.text)}
				}
				p.Fields = append(p.Fields, FieldDecl{f.pos, f.text})
				t := c.peek()
				if t == nil {
					break
				}
				if t.kind != tokComma {
					return nil, &ParseError{t.pos, fmt.Sprintf("expected ',' or end of line, got %q", t.text)}
				}
				c.next()
			}
		case "level":
			lvl, _, err := c.expectInt("similarity level")
			if err != nil {
				return nil, err
			}
			if err := c.expectKeyword("when"); err != nil {
				return nil, err
			}
			cond, err := parseConj(c)
			if err != nil {
				return nil, err
			}
			p.Levels = append(p.Levels, LevelClause{head.pos, lvl, cond})
		case "match":
			if err := c.expectKeyword("level"); err != nil {
				return nil, err
			}
			lvl, _, err := c.expectInt("similarity level")
			if err != nil {
				return nil, err
			}
			mc := MatchClause{Pos: head.pos, Level: lvl}
			if t := c.peek(); t != nil {
				if err := c.expectKeyword("when"); err != nil {
					return nil, err
				}
				if err := c.expectKeyword("cooccur"); err != nil {
					return nil, err
				}
				if _, err := c.expect(tokGE, "'>='"); err != nil {
					return nil, err
				}
				k, _, err := c.expectInt("support count")
				if err != nil {
					return nil, err
				}
				mc.Cooccur = k
				if err := c.expectEnd(); err != nil {
					return nil, err
				}
			}
			p.Matches = append(p.Matches, mc)
		case "equal", "distinct":
			if err := c.expectKeyword("when"); err != nil {
				return nil, err
			}
			cond, err := parseConj(c)
			if err != nil {
				return nil, err
			}
			p.Seeds = append(p.Seeds, SeedClause{head.pos, head.text == "distinct", cond})
		default:
			return nil, &ParseError{head.pos, fmt.Sprintf("unknown clause %q (want program, fields, level, match, equal or distinct)", head.text)}
		}
		clauses++
	}
	if p.Name == "" {
		return nil, &ParseError{Pos{1, 1}, "missing program declaration"}
	}
	return p, nil
}

// parseConj parses "pred (and pred)*" to the end of the line.
func parseConj(c *cursor) ([]Pred, error) {
	var cond []Pred
	for {
		pred, err := parsePred(c)
		if err != nil {
			return nil, err
		}
		cond = append(cond, pred)
		t := c.peek()
		if t == nil {
			return cond, nil
		}
		if err := c.expectKeyword("and"); err != nil {
			return nil, err
		}
	}
}

// parsePred parses one "field op [cmp number]" predicate.
func parsePred(c *cursor) (Pred, error) {
	field, err := c.expect(tokIdent, "field name")
	if err != nil {
		return Pred{}, err
	}
	opTok, err := c.expect(tokIdent, "comparison operator")
	if err != nil {
		return Pred{}, err
	}
	pred := Pred{Pos: field.pos, Field: field.text}
	switch opTok.text {
	case "equal":
		pred.Op = OpEqual
	case "differ":
		pred.Op = OpDiffer
	case "jaro", "qgram":
		if opTok.text == "jaro" {
			pred.Op = OpJaro
		} else {
			pred.Op = OpQGram
		}
		if _, err := c.expect(tokGE, "'>='"); err != nil {
			return Pred{}, err
		}
		num, err := c.expect(tokNumber, "similarity threshold")
		if err != nil {
			return Pred{}, err
		}
		v, perr := strconv.ParseFloat(num.text, 64)
		if perr != nil {
			return Pred{}, &ParseError{num.pos, fmt.Sprintf("bad threshold %q", num.text)}
		}
		pred.Num = v
	case "lev":
		pred.Op = OpLev
		if _, err := c.expect(tokLE, "'<='"); err != nil {
			return Pred{}, err
		}
		k, _, err := c.expectInt("edit distance")
		if err != nil {
			return Pred{}, err
		}
		pred.Num = float64(k)
	case "absdiff":
		pred.Op = OpAbsDiff
		if _, err := c.expect(tokLE, "'<='"); err != nil {
			return Pred{}, err
		}
		num, err := c.expect(tokNumber, "numeric threshold")
		if err != nil {
			return Pred{}, err
		}
		v, perr := strconv.ParseFloat(num.text, 64)
		if perr != nil {
			return Pred{}, &ParseError{num.pos, fmt.Sprintf("bad threshold %q", num.text)}
		}
		pred.Num = v
	default:
		return Pred{}, &ParseError{opTok.pos, fmt.Sprintf("unknown operator %q (want equal, differ, jaro, qgram, lev or absdiff)", opTok.text)}
	}
	return pred, nil
}
