package lang

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rules"
	"repro/internal/similarity"
)

// Semantic validation sentinels, matchable with errors.Is through the
// *CompileError wrapper. Match-clause problems reuse the rules package's
// own sentinels (rules.ErrUnknownLevel, rules.ErrDuplicateLevel,
// rules.ErrNegativeSupport) so callers handle hand-built and compiled
// programs uniformly.
var (
	// ErrNoFields marks a predicate in a program with no fields
	// declaration.
	ErrNoFields = errors.New("lang: field predicates require a fields declaration")
	// ErrUnknownField marks a predicate naming an undeclared field.
	ErrUnknownField = errors.New("lang: unknown field")
	// ErrDuplicateField marks a fields declaration naming a field twice.
	ErrDuplicateField = errors.New("lang: duplicate field")
	// ErrBadThreshold marks a similarity threshold outside [0, 1].
	ErrBadThreshold = errors.New("lang: similarity threshold out of range")
	// ErrDuplicateLevelClause marks two level clauses assigning the same
	// level.
	ErrDuplicateLevelClause = errors.New("lang: duplicate level clause")
)

// Plan is a compiled, validated program ready for grounding: the match
// clauses lowered to the engine's rule slice and the level clauses
// ordered strongest-first for candidate re-discretization.
type Plan struct {
	Prog       *Program
	Rules      []rules.Rule
	fieldIdx   map[string]int
	byStrength []LevelClause
}

// Compile validates the parsed program and lowers it to a Plan. Errors
// are *CompileError values positioned at the offending clause and
// wrapping a typed sentinel.
func Compile(p *Program) (*Plan, error) {
	pl := &Plan{Prog: p, fieldIdx: make(map[string]int, len(p.Fields))}
	for i, f := range p.Fields {
		if _, dup := pl.fieldIdx[f.Name]; dup {
			return nil, &CompileError{f.Pos, fmt.Errorf("%w: %q declared twice", ErrDuplicateField, f.Name)}
		}
		pl.fieldIdx[f.Name] = i
	}
	seenLevel := map[int]bool{}
	for _, lc := range p.Levels {
		if lc.Level < int(similarity.LevelWeak) || lc.Level > int(similarity.LevelStrong) {
			return nil, &CompileError{lc.Pos, fmt.Errorf("%w: level clause for level %d, want 1..3", rules.ErrUnknownLevel, lc.Level)}
		}
		if seenLevel[lc.Level] {
			return nil, &CompileError{lc.Pos, fmt.Errorf("%w: level %d assigned twice", ErrDuplicateLevelClause, lc.Level)}
		}
		seenLevel[lc.Level] = true
		if err := pl.checkCond(lc.Cond); err != nil {
			return nil, err
		}
	}
	seenMatch := map[int]bool{}
	for _, mc := range p.Matches {
		if mc.Level < int(similarity.LevelWeak) || mc.Level > int(similarity.LevelStrong) {
			return nil, &CompileError{mc.Pos, fmt.Errorf("%w: match clause for level %d, want 1..3", rules.ErrUnknownLevel, mc.Level)}
		}
		if seenMatch[mc.Level] {
			return nil, &CompileError{mc.Pos, fmt.Errorf("%w: two match clauses for level %d", rules.ErrDuplicateLevel, mc.Level)}
		}
		seenMatch[mc.Level] = true
		if mc.Cooccur < 0 {
			return nil, &CompileError{mc.Pos, fmt.Errorf("%w: cooccur >= %d", rules.ErrNegativeSupport, mc.Cooccur)}
		}
		pl.Rules = append(pl.Rules, rules.Rule{
			Level:              similarity.Level(mc.Level),
			MinCoauthorMatches: mc.Cooccur,
		})
	}
	for _, sc := range p.Seeds {
		if err := pl.checkCond(sc.Cond); err != nil {
			return nil, err
		}
	}
	// Belt and braces: the lowered rules must satisfy the engine's own
	// validation (the per-clause checks above are its positioned mirror).
	if err := rules.Validate(pl.Rules); err != nil {
		return nil, err
	}
	pl.byStrength = append([]LevelClause(nil), p.Levels...)
	sort.Slice(pl.byStrength, func(i, j int) bool {
		return pl.byStrength[i].Level > pl.byStrength[j].Level
	})
	return pl, nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src string) (*Plan, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(p)
}

func (pl *Plan) checkCond(cond []Pred) error {
	for _, pr := range cond {
		if len(pl.Prog.Fields) == 0 {
			return &CompileError{pr.Pos, fmt.Errorf("%w (predicate on %q)", ErrNoFields, pr.Field)}
		}
		if _, ok := pl.fieldIdx[pr.Field]; !ok {
			return &CompileError{pr.Pos, fmt.Errorf("%w: %q (declared: %v)", ErrUnknownField, pr.Field, fieldNames(pl.Prog.Fields))}
		}
		switch pr.Op {
		case OpJaro, OpQGram:
			if pr.Num < 0 || pr.Num > 1 {
				return &CompileError{pr.Pos, fmt.Errorf("%w: %s >= %s, want a value in [0, 1]", ErrBadThreshold, pr.Op, formatNum(pr.Num))}
			}
		}
	}
	return nil
}

func fieldNames(fs []FieldDecl) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// fieldVal returns the named field of a split composite key; fields past
// the end of a short key are empty (missing data, never evidence).
func (pl *Plan) fieldVal(fields []string, name string) string {
	idx := pl.fieldIdx[name]
	if idx >= len(fields) {
		return ""
	}
	return fields[idx]
}

func evalPred(pr Pred, a, b string) bool {
	switch pr.Op {
	case OpEqual:
		return similarity.FieldEqual(a, b)
	case OpDiffer:
		return similarity.FieldDiffer(a, b)
	case OpJaro:
		return similarity.FieldJaro(a, b) >= pr.Num
	case OpQGram:
		return similarity.FieldQGram(a, b) >= pr.Num
	case OpLev:
		return similarity.FieldLev(a, b) <= int(pr.Num)
	case OpAbsDiff:
		d, ok := similarity.AbsDiff(a, b)
		return ok && d <= pr.Num
	}
	return false
}

// holds evaluates a conjunction over two split composite keys.
func (pl *Plan) holds(cond []Pred, fa, fb []string) bool {
	for _, pr := range cond {
		if !evalPred(pr, pl.fieldVal(fa, pr.Field), pl.fieldVal(fb, pr.Field)) {
			return false
		}
	}
	return true
}

// levelOfFields assigns the highest declared level whose condition holds,
// or LevelNone when none does.
func (pl *Plan) levelOfFields(fa, fb []string) similarity.Level {
	for _, lc := range pl.byStrength {
		if pl.holds(lc.Cond, fa, fb) {
			return similarity.Level(lc.Level)
		}
	}
	return similarity.LevelNone
}

// LevelOf discretizes the similarity of two composite record keys with
// the program's level clauses. It is only meaningful for programs that
// declare level clauses; without any it returns LevelNone for everything.
func (pl *Plan) LevelOf(keyA, keyB string) similarity.Level {
	return pl.levelOfFields(similarity.SplitFields(keyA), similarity.SplitFields(keyB))
}

// Relevels reports whether the plan re-discretizes candidate levels
// (i.e. the program declares level clauses).
func (pl *Plan) Relevels() bool { return len(pl.byStrength) > 0 }

// Seeded reports whether the plan injects hard evidence seeds.
func (pl *Plan) Seeded() bool { return len(pl.Prog.Seeds) > 0 }
