package lang

import (
	"strconv"
	"strings"
)

// Print renders the program in canonical form: clause groups in fixed
// order (program, fields, level, match, equal/distinct), one clause per
// line, single spaces, numbers in shortest decimal notation. Print is a
// fixed point: Parse(Print(p)) yields a program that prints identically,
// which is what FuzzRuleParse pins.
func (p *Program) Print() string {
	var b strings.Builder
	b.WriteString("program ")
	b.WriteString(p.Name)
	b.WriteByte('\n')
	if len(p.Fields) > 0 {
		b.WriteString("fields ")
		for i, f := range p.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
		}
		b.WriteByte('\n')
	}
	for _, lc := range p.Levels {
		b.WriteString("level ")
		b.WriteString(strconv.Itoa(lc.Level))
		b.WriteString(" when ")
		writeConj(&b, lc.Cond)
		b.WriteByte('\n')
	}
	for _, mc := range p.Matches {
		b.WriteString("match level ")
		b.WriteString(strconv.Itoa(mc.Level))
		if mc.Cooccur != 0 {
			b.WriteString(" when cooccur >= ")
			b.WriteString(strconv.Itoa(mc.Cooccur))
		}
		b.WriteByte('\n')
	}
	for _, sc := range p.Seeds {
		if sc.Negated {
			b.WriteString("distinct when ")
		} else {
			b.WriteString("equal when ")
		}
		writeConj(&b, sc.Cond)
		b.WriteByte('\n')
	}
	return b.String()
}

func writeConj(b *strings.Builder, cond []Pred) {
	for i, pr := range cond {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(pr.Field)
		b.WriteByte(' ')
		b.WriteString(pr.Op.String())
		switch pr.Op {
		case OpJaro, OpQGram:
			b.WriteString(" >= ")
			b.WriteString(formatNum(pr.Num))
		case OpLev:
			b.WriteString(" <= ")
			b.WriteString(strconv.Itoa(int(pr.Num)))
		case OpAbsDiff:
			b.WriteString(" <= ")
			b.WriteString(formatNum(pr.Num))
		}
	}
}

// formatNum renders a threshold in plain decimal notation (never
// exponent form, which the lexer does not accept).
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
