package lang

import (
	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/similarity"
)

// NewMatcher grounds the plan over a dataset and the blocking stage's
// candidate pairs, returning a core.Matcher.
//
// A plain program — no level clauses, no seeds — compiles to exactly
// rules.New(d, cands, plan.Rules): byte-for-byte the matcher a
// handwritten []rules.Rule program would produce. Level clauses replace
// each candidate's blocking-assigned level with the program's own
// discretization over the record's typed fields; seed clauses wrap the
// engine so every Match call sees the program's hard equalities in V+
// and hard inequalities in the negative slot (see rules/hardseed_doc.go
// — the V+ union keeps the matcher monotone and idempotent, so the
// SMP-equals-FULL property of the monotone fragment survives seeding).
// Seeds are evaluated over candidate pairs only, preserving the
// candidate-closure contract: output ⊆ candidates ∪ echoed evidence.
func (pl *Plan) NewMatcher(d *bib.Dataset, cands []rules.Candidate) (core.Matcher, error) {
	fieldCache := make(map[core.EntityID][]string)
	fieldsOf := func(e core.EntityID) []string {
		if fs, ok := fieldCache[e]; ok {
			return fs
		}
		var fs []string
		if e >= 0 && int(e) < len(d.Refs) {
			fs = similarity.SplitFields(d.Refs[e].Name)
		}
		fieldCache[e] = fs
		return fs
	}

	work := cands
	if pl.Relevels() {
		work = make([]rules.Candidate, len(cands))
		for i, c := range cands {
			work[i] = rules.Candidate{
				Pair:  c.Pair,
				Level: pl.levelOfFields(fieldsOf(c.Pair.A), fieldsOf(c.Pair.B)),
			}
		}
	}
	inner, err := rules.New(d, work, pl.Rules)
	if err != nil {
		return nil, err
	}
	if !pl.Seeded() {
		return inner, nil
	}
	pos, neg := core.NewPairSet(), core.NewPairSet()
	for _, c := range work {
		fa, fb := fieldsOf(c.Pair.A), fieldsOf(c.Pair.B)
		for _, sc := range pl.Prog.Seeds {
			if pl.holds(sc.Cond, fa, fb) {
				if sc.Negated {
					neg.Add(c.Pair)
				} else {
					pos.Add(c.Pair)
				}
			}
		}
	}
	return &seeded{inner: inner, pos: pos, neg: neg}, nil
}

// seeded wraps the ground rules engine with the program's hard evidence:
// each Match call sees the union of the caller's evidence and the seeds.
// Negative seeds win on overlap because the engine consults the negative
// slot first, the same tie-break callers get.
type seeded struct {
	inner    *rules.Matcher
	pos, neg core.PairSet
}

// Candidates implements core.Matcher.
func (s *seeded) Candidates(entities []core.EntityID) []core.Pair {
	return s.inner.Candidates(entities)
}

// Match implements core.Matcher.
func (s *seeded) Match(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
	return s.inner.Match(entities, pos.Union(s.pos), neg.Union(s.neg))
}

var _ core.Matcher = (*seeded)(nil)
