// Package lang is the declarative surface of the RULES matcher: a small
// text language for Dedupalog*-style programs (the monotone fragment of
// Appendix A) that compiles to the existing internal/rules machinery, so
// a new matching scenario needs a rules file rather than a Go package.
//
// The processing split follows the classic parse → plan → evaluate
// shape: Parse builds a positioned AST and rejects syntax errors with
// line:col coordinates; Compile validates the program against the
// engine's invariants (known fields, thresholds in range, one rule per
// level — sharing the rules package's typed errors) and produces a Plan;
// Plan.NewMatcher grounds the plan over a dataset and candidate set,
// yielding a core.Matcher.
//
// A program is line-oriented; '#' starts a comment. Example:
//
//	program people-v1
//	fields name, street, zip, phone
//
//	level 3 when name equal and phone equal
//	level 2 when name jaro >= 0.9 and street qgram >= 0.5
//	level 1 when name jaro >= 0.82
//
//	match level 3
//	match level 2 when cooccur >= 1
//	match level 1 when cooccur >= 2
//
//	equal when phone equal and zip equal
//	distinct when name differ and zip differ
//
// The clauses:
//
//   - "fields" names the components of each record's composite key
//     (split on similarity.FieldSep), in order.
//   - "level N when <conj>" re-discretizes candidate similarity: a
//     candidate pair gets the highest declared level whose condition
//     holds (clauses are consulted strongest-first), or drops out of
//     derivation entirely when none does. A program with no level
//     clauses keeps the levels the blocking stage assigned.
//   - "match level N [when cooccur >= K]" is one Dedupalog* rule: pairs
//     at level N fire once K co-occurring pairs (coauthors, household
//     co-members, …) are already matched. Omitting the support clause
//     means K = 0: the level fires unconditionally.
//   - "equal when <conj>" / "distinct when <conj>" are hard seeds:
//     candidate pairs satisfying the condition enter the V+ (positive
//     evidence) or Negative slot of every Match call, exactly like
//     caller-supplied evidence (see rules/hardseed_doc.go). Negative
//     seeds win on overlap, as everywhere else in the engine.
//
// Predicates compare one named field of both records with the typed
// kernels of internal/similarity: "f equal", "f differ",
// "f jaro >= T", "f qgram >= T" (T ∈ [0,1]), "f lev <= K",
// "f absdiff <= X" (numeric fields), joined by "and".
package lang

import "fmt"

// Pos is a 1-based source coordinate.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Op is a field comparison operator.
type Op int

const (
	// OpEqual holds when both fields normalize to the same non-empty
	// value.
	OpEqual Op = iota
	// OpDiffer holds when both fields are present and normalize to
	// different values.
	OpDiffer
	// OpJaro holds when the normalized Jaro-Winkler similarity reaches
	// the threshold.
	OpJaro
	// OpQGram holds when the normalized 2-gram Jaccard similarity
	// reaches the threshold.
	OpQGram
	// OpLev holds when the normalized edit distance is at most the
	// threshold.
	OpLev
	// OpAbsDiff holds when both fields parse as numbers at most the
	// threshold apart.
	OpAbsDiff
)

func (o Op) String() string {
	switch o {
	case OpEqual:
		return "equal"
	case OpDiffer:
		return "differ"
	case OpJaro:
		return "jaro"
	case OpQGram:
		return "qgram"
	case OpLev:
		return "lev"
	case OpAbsDiff:
		return "absdiff"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Pred is one field predicate. Num is the threshold for the thresholded
// operators (an integer-valued count for OpLev) and unused for
// OpEqual/OpDiffer.
type Pred struct {
	Pos   Pos
	Field string
	Op    Op
	Num   float64
}

// FieldDecl is one named field with its declaration site.
type FieldDecl struct {
	Pos  Pos
	Name string
}

// LevelClause assigns similarity level Level to candidate pairs whose
// conjunction holds.
type LevelClause struct {
	Pos   Pos
	Level int
	Cond  []Pred
}

// MatchClause is one derivation rule: level Level fires with Cooccur
// matched co-occurring pairs of support.
type MatchClause struct {
	Pos     Pos
	Level   int
	Cooccur int
}

// SeedClause is a hard evidence seed: positive (equal) or, when Negated,
// negative (distinct).
type SeedClause struct {
	Pos     Pos
	Negated bool
	Cond    []Pred
}

// Program is the parsed AST. Clause slices preserve declaration order.
type Program struct {
	Name    string
	Fields  []FieldDecl
	Levels  []LevelClause
	Matches []MatchClause
	Seeds   []SeedClause
}

// ParseError is a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("rules program %s: %s", e.Pos, e.Msg) }

// CompileError is a semantic error with its source position, wrapping a
// typed sentinel (the rules package's validation errors or this
// package's Err* values) for errors.Is dispatch.
type CompileError struct {
	Pos Pos
	Err error
}

func (e *CompileError) Error() string { return fmt.Sprintf("rules program %s: %v", e.Pos, e.Err) }

// Unwrap exposes the sentinel to errors.Is.
func (e *CompileError) Unwrap() error { return e.Err }
