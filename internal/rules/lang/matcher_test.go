package lang

import (
	"testing"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/similarity"
)

// peopleDataset builds a dataset whose "papers" are co-occurrence groups
// (households, order snapshots, …) and whose reference names are
// composite typed-field keys.
func peopleDataset(groups [][]string) *bib.Dataset {
	d := &bib.Dataset{Name: "people-test"}
	for g, keys := range groups {
		group := bib.Paper{Title: "group", Year: 2026}
		for _, k := range keys {
			id := bib.RefID(len(d.Refs))
			d.Refs = append(d.Refs, bib.Reference{Name: k, Paper: bib.PaperID(g)})
			group.Refs = append(group.Refs, id)
		}
		d.Papers = append(d.Papers, group)
	}
	return d
}

func allPairs(d *bib.Dataset, lvl similarity.Level) []rules.Candidate {
	var out []rules.Candidate
	for i := 0; i < d.NumRefs(); i++ {
		for j := i + 1; j < d.NumRefs(); j++ {
			out = append(out, rules.Candidate{Pair: core.MakePair(int32(i), int32(j)), Level: lvl})
		}
	}
	return out
}

func entities(d *bib.Dataset) []core.EntityID {
	out := make([]core.EntityID, d.NumRefs())
	for i := range out {
		out[i] = core.EntityID(i)
	}
	return out
}

// TestPlainProgramIsExactEngine: a program with only match clauses
// compiles to the engine product itself — the same *rules.Matcher a
// handwritten []rules.Rule slice yields, with candidates untouched.
func TestPlainProgramIsExactEngine(t *testing.T) {
	src := "program paper\nmatch level 3\nmatch level 2 when cooccur >= 1\nmatch level 1 when cooccur >= 2\n"
	pl := mustCompile(t, src)
	if pl.Relevels() || pl.Seeded() {
		t.Fatal("plain program must not relevel or seed")
	}
	d := peopleDataset([][]string{
		{"Vibhor Rastogi", "N. Dalvi"},
		{"Vibhor Rastogi", "N. Dalvi"},
	})
	cands := allPairs(d, similarity.LevelNone)
	for i := range cands {
		p := cands[i].Pair
		cands[i].Level = similarity.StringLevel(d.Refs[p.A].Name, d.Refs[p.B].Name)
	}
	m, err := pl.NewMatcher(d, cands)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*rules.Matcher); !ok {
		t.Fatalf("plain program compiled to %T, want *rules.Matcher", m)
	}
	hand, err := rules.New(d, cands, rules.PaperRules())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Match(entities(d), nil, nil)
	want := hand.Match(entities(d), nil, nil)
	if !got.Equal(want) {
		t.Fatalf("compiled %v != handwritten %v", got.Sorted(), want.Sorted())
	}
}

// TestRelevelAndCooccur: level clauses re-discretize candidates from the
// typed fields, and co-occurrence support flows through the group
// relation (household co-members here, coauthors in the paper's domain).
func TestRelevelAndCooccur(t *testing.T) {
	pl := mustCompile(t, peopleSrc)
	d := peopleDataset([][]string{
		{"ann smith | 12 oak st | 94110 | 555-0101", "bob smith | 12 oak st | 94110 | 555-0202"},
		{"Ann Smith | 12 Oak St. | 94110 | 555-0101", "bob smyth | 12 oak st | 94110 | 555-0202"},
	})
	// Deliberately wrong input levels: the program's level clauses govern.
	m, err := pl.NewMatcher(d, allPairs(d, similarity.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(entities(d), nil, nil)
	ann := core.MakePair(0, 2)
	bob := core.MakePair(1, 3)
	if !out.Has(ann) {
		t.Fatalf("level-3 ann pair missing: %v", out.Sorted())
	}
	if !out.Has(bob) {
		t.Fatalf("level-2 bob pair missing household support: %v", out.Sorted())
	}
	if out.Has(core.MakePair(0, 3)) || out.Has(core.MakePair(1, 2)) {
		t.Fatalf("cross pair matched: %v", out.Sorted())
	}
}

// TestEqualSeed: a hard-equality seed enters V+ on every Match call — the
// pair is reported even when no similarity rule could derive it.
func TestEqualSeed(t *testing.T) {
	pl := mustCompile(t, "program p\nfields name, phone\nlevel 2 when name jaro >= 0.95\nmatch level 2\nequal when phone equal\n")
	d := peopleDataset([][]string{
		{"ann smith | 555-0101"},
		{"zelda quux | 555-0101"},
	})
	m, err := pl.NewMatcher(d, allPairs(d, similarity.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	p := core.MakePair(0, 1)
	out := m.Match(entities(d), nil, nil)
	if !out.Has(p) {
		t.Fatalf("hard-equality seed not applied: %v", out.Sorted())
	}
	// Caller-side negative evidence still wins over the seed.
	if out := m.Match(entities(d), nil, core.NewPairSet(p)); out.Has(p) {
		t.Fatal("caller negative evidence must override the equal seed")
	}
}

// TestDistinctSeed: a hard-inequality seed suppresses a pair every rule
// would otherwise derive.
func TestDistinctSeed(t *testing.T) {
	pl := mustCompile(t, "program p\nfields name, zip\nlevel 3 when name equal\nmatch level 3\ndistinct when zip differ\n")
	d := peopleDataset([][]string{
		{"ann smith | 94110"},
		{"ann smith | 90210"},
		{"ann smith | 94110"},
	})
	m, err := pl.NewMatcher(d, allPairs(d, similarity.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(entities(d), nil, nil)
	if out.Has(core.MakePair(0, 1)) || out.Has(core.MakePair(1, 2)) {
		t.Fatalf("distinct seed ignored: %v", out.Sorted())
	}
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatalf("same-zip pair should still fire: %v", out.Sorted())
	}
}

// TestSeededWellBehaved: seeding preserves the engine's monotonicity and
// idempotence (the SMP-equals-FULL prerequisites).
func TestSeededWellBehaved(t *testing.T) {
	pl := mustCompile(t, peopleSrc)
	d := peopleDataset([][]string{
		{"ann smith | 12 oak st | 94110 | 555-0101", "bob smith | 12 oak st | 94110 |"},
		{"Ann Smith | 12 Oak St. | 94110 | 555-0101", "bob smyth | 12 oak st | 94110 |"},
		{"carla jones | 9 elm ave | 90210 | 555-0303"},
	})
	m, err := pl.NewMatcher(d, allPairs(d, similarity.LevelNone))
	if err != nil {
		t.Fatal(err)
	}
	es := entities(d)
	base := m.Match(es, nil, nil)
	// Idempotence: feeding the output back as evidence adds nothing new.
	again := m.Match(es, base, nil)
	if !again.Equal(base.Union(base)) && !again.Equal(base) {
		t.Fatalf("not idempotent: %v vs %v", base.Sorted(), again.Sorted())
	}
	// Monotonicity: more evidence never removes derived pairs.
	extra := core.NewPairSet(core.MakePair(1, 3))
	grown := m.Match(es, extra, nil)
	for p := range base.All() {
		if !grown.Has(p) {
			t.Fatalf("evidence removed pair %v", p)
		}
	}
}
