package lang

import (
	"errors"
	"testing"

	"repro/internal/rules"
	"repro/internal/similarity"
)

func mustCompile(t *testing.T, src string) *Plan {
	t.Helper()
	pl, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestCompileLowersRules(t *testing.T) {
	pl := mustCompile(t, peopleSrc)
	want := []rules.Rule{
		{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
		{Level: similarity.LevelMedium, MinCoauthorMatches: 1},
		{Level: similarity.LevelWeak, MinCoauthorMatches: 2},
	}
	if len(pl.Rules) != len(want) {
		t.Fatalf("rules = %+v", pl.Rules)
	}
	for i, r := range want {
		if pl.Rules[i] != r {
			t.Errorf("rule %d = %+v, want %+v", i, pl.Rules[i], r)
		}
	}
	if !pl.Relevels() || !pl.Seeded() {
		t.Error("plan should relevel and seed")
	}
}

// TestCompileErrors pins the typed sentinel and position of each
// semantic rejection.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		want      error
		line, col int
	}{
		{"duplicate field", "program p\nfields a, b, a\n", ErrDuplicateField, 2, 14},
		{"unknown field", "program p\nfields a\nlevel 2 when b equal\n", ErrUnknownField, 3, 14},
		{"no fields decl", "program p\nequal when a equal\n", ErrNoFields, 2, 12},
		{"level out of range", "program p\nfields a\nlevel 4 when a equal\n", rules.ErrUnknownLevel, 3, 1},
		{"duplicate level clause", "program p\nfields a\nlevel 2 when a equal\nlevel 2 when a differ\n", ErrDuplicateLevelClause, 4, 1},
		{"match level out of range", "program p\nmatch level 0\n", rules.ErrUnknownLevel, 2, 1},
		{"duplicate match level", "program p\nmatch level 2\nmatch level 2 when cooccur >= 1\n", rules.ErrDuplicateLevel, 3, 1},
		{"jaro threshold", "program p\nfields a\nlevel 2 when a jaro >= 1.5\n", ErrBadThreshold, 3, 14},
		{"qgram threshold", "program p\nfields a\ndistinct when a qgram >= 2.0\n", ErrBadThreshold, 3, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileSource(tc.src)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			var ce *CompileError
			if !errors.As(err, &ce) {
				t.Fatalf("got %T, want *CompileError", err)
			}
			if ce.Pos.Line != tc.line || ce.Pos.Col != tc.col {
				t.Errorf("position = %s, want %d:%d (%v)", ce.Pos, tc.line, tc.col, err)
			}
		})
	}
}

func TestLevelOf(t *testing.T) {
	pl := mustCompile(t, peopleSrc)
	cases := []struct {
		a, b string
		want similarity.Level
	}{
		// Same name + phone: level 3.
		{"ann smith | 12 oak st | 94110 | 555-0101", "Ann Smith | 12 Oak St. | 94110 | 555-0101", similarity.LevelStrong},
		// Close name + same street, phone differs: level 2.
		{"ann smith | 12 oak st | 94110 | 555-0101", "ann smyth | 12 oak st | 94110 |", similarity.LevelMedium},
		// Close name only: level 1.
		{"ann smith | 12 oak st | 94110 |", "ann smithe | 9 elm ave | 90210 |", similarity.LevelWeak},
		// Unrelated: none.
		{"ann smith | 12 oak st | 94110 |", "bob jones | 9 elm ave | 90210 |", similarity.LevelNone},
	}
	for _, tc := range cases {
		if got := pl.LevelOf(tc.a, tc.b); got != tc.want {
			t.Errorf("LevelOf(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if sym := pl.LevelOf(tc.b, tc.a); sym != pl.LevelOf(tc.a, tc.b) {
			t.Errorf("LevelOf asymmetric on %q/%q", tc.a, tc.b)
		}
	}
}
