package rules

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/similarity"
)

// TestMultipleRulesSameLevel: since PR 10, two rules on one level are
// rejected outright — only the least-demanding one could ever govern, so
// the duplicate is dead weight and almost always a typo'd level. The
// single-rule equivalent derives the same matches.
func TestMultipleRulesSameLevel(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"Nilesh Dalvi", 1}},
		{{"V. Rastogi", 0}, {"Nilesh Dalvi", 1}},
	})
	dup := []Rule{
		{Level: similarity.LevelMedium, MinCoauthorMatches: 3},
		{Level: similarity.LevelMedium, MinCoauthorMatches: 1},
		{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
	}
	if _, err := New(d, allPairsCandidates(d), dup); !errors.Is(err, ErrDuplicateLevel) {
		t.Fatalf("duplicate-level program: got %v, want ErrDuplicateLevel", err)
	}
	prog := []Rule{
		{Level: similarity.LevelMedium, MinCoauthorMatches: 1},
		{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
	}
	m, err := New(d, allPairsCandidates(d), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(allRefs(d), nil, nil)
	// The strong Dalvi pair fires unconditionally, giving the medium
	// Rastogi pair its single required coauthor support.
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatalf("medium pair missing its coauthor support: %v", out.Sorted())
	}
}

// TestNoRuleForLevel: candidates at levels with no rule never fire.
func TestNoRuleForLevel(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}},
		{{"Vibhor Rastogi", 0}},
	})
	prog := []Rule{{Level: similarity.LevelMedium, MinCoauthorMatches: 0}}
	m, err := New(d, allPairsCandidates(d), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(allRefs(d), nil, nil)
	if out.Len() != 0 {
		t.Fatalf("strong pair fired with no strong rule: %v", out.Sorted())
	}
}

// TestEmptyProgram: an empty rule set matches only the evidence echo.
func TestEmptyProgram(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}},
		{{"Vibhor Rastogi", 0}},
	})
	m, err := New(d, allPairsCandidates(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Match(allRefs(d), nil, nil); out.Len() != 0 {
		t.Fatalf("empty program matched: %v", out.Sorted())
	}
	p := core.MakePair(0, 1)
	out := m.Match(allRefs(d), core.NewPairSet(p), nil)
	if !out.Has(p) {
		t.Fatal("in-scope positive evidence must be echoed")
	}
}
