package rules

import (
	"testing"

	"repro/internal/core"
	"repro/internal/similarity"
)

// TestMultipleRulesSameLevel: when several rules target the same level,
// the *least demanding* one governs (a disjunction of rule bodies).
func TestMultipleRulesSameLevel(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"Nilesh Dalvi", 1}},
		{{"V. Rastogi", 0}, {"Nilesh Dalvi", 1}},
	})
	prog := []Rule{
		{Level: similarity.LevelMedium, MinCoauthorMatches: 3},
		{Level: similarity.LevelMedium, MinCoauthorMatches: 1}, // governs
		{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
	}
	m, err := New(d, allPairsCandidates(d), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(allRefs(d), nil, nil)
	// The strong Dalvi pair fires by rule 3, giving the medium Rastogi
	// pair its single required support via the 1-coauthor rule.
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatalf("least-demanding same-level rule not applied: %v", out.Sorted())
	}
}

// TestNoRuleForLevel: candidates at levels with no rule never fire.
func TestNoRuleForLevel(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}},
		{{"Vibhor Rastogi", 0}},
	})
	prog := []Rule{{Level: similarity.LevelMedium, MinCoauthorMatches: 0}}
	m, err := New(d, allPairsCandidates(d), prog)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(allRefs(d), nil, nil)
	if out.Len() != 0 {
		t.Fatalf("strong pair fired with no strong rule: %v", out.Sorted())
	}
}

// TestEmptyProgram: an empty rule set matches only the evidence echo.
func TestEmptyProgram(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}},
		{{"Vibhor Rastogi", 0}},
	})
	m, err := New(d, allPairsCandidates(d), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Match(allRefs(d), nil, nil); out.Len() != 0 {
		t.Fatalf("empty program matched: %v", out.Sorted())
	}
	p := core.MakePair(0, 1)
	out := m.Match(allRefs(d), core.NewPairSet(p), nil)
	if !out.Has(p) {
		t.Fatal("in-scope positive evidence must be echoed")
	}
}
