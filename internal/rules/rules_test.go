package rules

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/similarity"
	"repro/internal/unionfind"
)

type ref struct {
	name  string
	truth int
}

func buildDataset(papers [][]ref) *bib.Dataset {
	d := &bib.Dataset{Name: "test"}
	for p, authors := range papers {
		paper := bib.Paper{Title: "t", Year: 2000}
		for _, a := range authors {
			id := bib.RefID(len(d.Refs))
			d.Refs = append(d.Refs, bib.Reference{
				Name: a.name, Paper: bib.PaperID(p), True: bib.AuthorID(a.truth),
			})
			paper.Refs = append(paper.Refs, id)
		}
		d.Papers = append(d.Papers, paper)
	}
	return d
}

func allPairsCandidates(d *bib.Dataset) []Candidate {
	var out []Candidate
	for i := 0; i < d.NumRefs(); i++ {
		for j := i + 1; j < d.NumRefs(); j++ {
			lvl := similarity.StringLevel(d.Refs[i].Name, d.Refs[j].Name)
			if lvl > similarity.LevelNone {
				out = append(out, Candidate{Pair: core.MakePair(int32(i), int32(j)), Level: lvl})
			}
		}
	}
	return out
}

func newMatcher(t *testing.T, d *bib.Dataset, opts ...Option) *Matcher {
	t.Helper()
	m, err := New(d, allPairsCandidates(d), PaperRules(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allRefs(d *bib.Dataset) []core.EntityID {
	out := make([]core.EntityID, d.NumRefs())
	for i := range out {
		out[i] = core.EntityID(i)
	}
	return out
}

// TestRule1Strong: level-3 pairs fire unconditionally.
func TestRule1Strong(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}, {"Aaaa Bbbb", 1}},
		{{"Vibhor Rastogi", 0}, {"Cccc Dddd", 2}},
	})
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatalf("rule 1 did not fire: %v", out.Sorted())
	}
}

// TestRule2Medium: level-2 pairs need one matched coauthor pair; unlike
// the MLN there is no collective joint move, so an isolated 2-cycle stays
// unmatched until evidence arrives and then cascades.
func TestRule2Medium(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	if out := m.Match(allRefs(d), nil, nil); out.Len() != 0 {
		t.Fatalf("no evidence: expected bootstrapping problem, got %v", out.Sorted())
	}
	dalvi := core.MakePair(1, 3)
	out := m.Match(allRefs(d), core.NewPairSet(dalvi), nil)
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatalf("rule 2 did not fire with evidence: %v", out.Sorted())
	}
}

// TestRule3Weak: level-1 pairs need two distinct matched coauthor pairs.
func TestRule3Weak(t *testing.T) {
	// "J. Kumara" vs "Jim Kumria": weak similarity (level 1).
	if similarity.StringLevel("J. Kumara", "Jim Kumria") != similarity.LevelWeak {
		t.Fatal("probe pair no longer level-1 under current thresholds; pick a new one")
	}
	d := buildDataset([][]ref{
		{{"J. Kumara", 0}, {"Vibhor Rastogi", 1}, {"Nilesh Dalvi", 2}},
		{{"Jim Kumria", 0}, {"Vibhor Rastogi", 1}, {"Nilesh Dalvi", 2}},
	})
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	// Both strong coauthor pairs fire by rule 1, giving the weak pair its
	// two supports; the fixpoint then derives it.
	if !out.Has(core.MakePair(0, 3)) {
		t.Fatalf("rule 3 did not fire: %v", out.Sorted())
	}
	// With only ONE strong coauthor, rule 3 must not fire.
	d2 := buildDataset([][]ref{
		{{"Jim Kumar", 0}, {"Vibhor Rastogi", 1}},
		{{"Jan Kumar", 0}, {"Vibhor Rastogi", 1}},
	})
	m2 := newMatcher(t, d2)
	out2 := m2.Match(allRefs(d2), nil, nil)
	if out2.Has(core.MakePair(0, 2)) {
		t.Fatalf("rule 3 fired with single support: %v", out2.Sorted())
	}
}

// TestIterativeCascade: rule firings feed later firings (the iterative
// collective behavior): a strong pair unlocks a medium pair, which
// unlocks another medium pair through a different paper chain.
func TestIterativeCascade(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}, {"N. Dalvi", 1}},
		{{"Vibhor Rastogi", 0}, {"N. Dalvi", 1}, {"M. Garofalakis", 2}},
		{{"M. Garofalakis", 2}, {"P. Singla", 3}},
	})
	// Papers 0,1 share Rastogi (strong) → (Dalvi, Dalvi) medium fires.
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatal("strong anchor missing")
	}
	if !out.Has(core.MakePair(1, 3)) {
		t.Fatalf("cascaded medium pair missing: %v", out.Sorted())
	}
}

// TestTransitiveClosure: with the interleaved-closure option matched
// chains are closed inside Match; by default (the paper's configuration)
// they stay open and closure is a harness post-processing step.
func TestTransitiveClosure(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}, {"X Y", 9}},
		{{"Vibhor Rastogi", 0}, {"Z W", 8}},
		{{"Vibhor Rastogi", 0}, {"Q R", 7}},
	})
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	// All three Rastogi refs pair up strongly regardless of closure.
	if !out.Has(core.MakePair(0, 2)) || !out.Has(core.MakePair(2, 4)) || !out.Has(core.MakePair(0, 4)) {
		t.Fatalf("clique incomplete: %v", out.Sorted())
	}

	// An open chain given as evidence: default keeps it open, interleaved
	// closure closes it.
	d2 := buildDataset([][]ref{
		{{"Aaaa Bbbb", 0}},
		{{"Cccc Dddd", 0}},
		{{"Eeee Ffff", 0}},
	})
	chain := core.NewPairSet(core.MakePair(0, 1), core.MakePair(1, 2))
	m2 := newMatcher(t, d2)
	out2 := m2.Match(allRefs(d2), chain, nil)
	if out2.Has(core.MakePair(0, 2)) {
		t.Fatalf("default matcher applied closure: %v", out2.Sorted())
	}
	m3 := newMatcher(t, d2, WithInterleavedClosure())
	out3 := m3.Match(allRefs(d2), chain, nil)
	if !out3.Has(core.MakePair(0, 2)) {
		t.Fatalf("closure pair missing with interleaved option: %v", out3.Sorted())
	}
}

// TestNegativeEvidence: negated pairs never fire nor close.
func TestNegativeEvidence(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}, {"A B", 1}},
		{{"Vibhor Rastogi", 0}, {"C D", 2}},
	})
	m := newMatcher(t, d)
	p := core.MakePair(0, 2)
	out := m.Match(allRefs(d), nil, core.NewPairSet(p))
	if out.Has(p) {
		t.Fatal("negated strong pair fired")
	}
}

// TestScopeRestriction: only in-scope pairs are output; global evidence
// still supports in-scope rules.
func TestScopeRestriction(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	scope := []core.EntityID{0, 2}
	dalvi := core.MakePair(1, 3)
	out := m.Match(scope, core.NewPairSet(dalvi), nil)
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatal("in-scope pair with global evidence missing")
	}
	if out.Has(dalvi) {
		t.Fatal("out-of-scope pair reported")
	}
}

func generated(t *testing.T, seed int64, scale float64) (*bib.Dataset, *Matcher, *core.Cover) {
	t.Helper()
	d := datagen.MustGenerate(datagen.HEPTHLike(scale, seed))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := New(d, cands, PaperRules())
	if err != nil {
		t.Fatal(err)
	}
	return d, m, cover
}

// TestWellBehavedGenerated: Proposition 5 — the fragment is monotone (and
// idempotent), checked on generated data with random evidence.
func TestWellBehavedGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, m, _ := generated(t, 11, 0.08)
	entities := allRefs(d)
	pairs := m.pairs
	randomEvidence := func(frac float64) core.PairSet {
		s := core.NewPairSet()
		for _, p := range pairs {
			if rng.Float64() < frac {
				s.Add(p)
			}
		}
		return s
	}
	for trial := 0; trial < 4; trial++ {
		pos := randomEvidence(0.05)
		neg := randomEvidence(0.05).Minus(pos)
		if err := core.CheckIdempotence(m, entities, pos, neg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sub []core.EntityID
		for _, e := range entities {
			if rng.Float64() < 0.6 {
				sub = append(sub, e)
			}
		}
		if err := core.CheckMonotoneEntities(m, sub, entities, pos, neg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		posBig := pos.Union(randomEvidence(0.05)).Minus(neg)
		if err := core.CheckMonotonePositive(m, entities, pos.Minus(neg), posBig, neg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		negBig := neg.Union(randomEvidence(0.05)).Minus(pos)
		if err := core.CheckMonotoneNegative(m, entities, pos, neg.Intersect(negBig), negBig); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// closure returns the transitive closure of a match set over n entities
// (the end-of-run closure step Appendix A prescribes).
func closure(matches core.PairSet, n int) core.PairSet {
	dsu := unionfind.New(n)
	for p := range matches.All() {
		dsu.Union(int(p.A), int(p.B))
	}
	members := map[int][]core.EntityID{}
	for i := 0; i < n; i++ {
		r := dsu.Find(i)
		members[r] = append(members[r], core.EntityID(i))
	}
	out := core.NewPairSet()
	for _, comp := range members {
		for i := 0; i < len(comp); i++ {
			for j := i + 1; j < len(comp); j++ {
				out.Add(core.MakePair(comp[i], comp[j]))
			}
		}
	}
	return out
}

// TestSMPCompleteVsFull: the Appendix C headline — SMP over a total cover
// reproduces the FULL run of RULES *exactly* (soundness and completeness
// both 1), in the paper's configuration (no interleaved closure; closure
// is an end-of-run step that then also agrees).
func TestSMPCompleteVsFull(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d, m, cover := generated(t, seed, 0.12)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: d.Coauthor()}
		smp, err := core.SMP(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		full, err := core.Full(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !smp.Matches.Equal(full.Matches) {
			extra := smp.Matches.Minus(full.Matches)
			missing := full.Matches.Minus(smp.Matches)
			t.Fatalf("seed %d: SMP != FULL: extra %v, missing %v",
				seed, extra.Sorted(), missing.Sorted())
		}
		n := d.NumRefs()
		if !closure(smp.Matches, n).Equal(closure(full.Matches, n)) {
			t.Fatalf("seed %d: closed outputs diverge", seed)
		}
	}
}

func TestNewValidation(t *testing.T) {
	d := buildDataset([][]ref{{{"A B", 0}, {"A B", 0}}})
	if _, err := New(d, []Candidate{{Pair: core.Pair{A: 2, B: 2}}}, PaperRules()); err == nil {
		t.Error("invalid pair accepted")
	}
	p := core.MakePair(0, 1)
	if _, err := New(d, []Candidate{{Pair: p}, {Pair: p}}, PaperRules()); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := New(d, nil, []Rule{{Level: 1, MinCoauthorMatches: -1}}); err == nil {
		t.Error("negative rule accepted")
	}
}

// TestValidate exercises each typed rejection plus the accepted shapes.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		rs   []Rule
		want error
	}{
		{"empty", nil, nil},
		{"paper", PaperRules(), nil},
		{"single", []Rule{{Level: similarity.LevelWeak, MinCoauthorMatches: 5}}, nil},
		{"negative support", []Rule{{Level: similarity.LevelStrong, MinCoauthorMatches: -1}}, ErrNegativeSupport},
		{"level zero", []Rule{{Level: similarity.LevelNone, MinCoauthorMatches: 0}}, ErrUnknownLevel},
		{"level too high", []Rule{{Level: similarity.LevelStrong + 1, MinCoauthorMatches: 0}}, ErrUnknownLevel},
		{"negative level", []Rule{{Level: -1, MinCoauthorMatches: 0}}, ErrUnknownLevel},
		{"duplicate level", []Rule{
			{Level: similarity.LevelMedium, MinCoauthorMatches: 1},
			{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
			{Level: similarity.LevelMedium, MinCoauthorMatches: 2},
		}, ErrDuplicateLevel},
	}
	d := buildDataset([][]ref{{{"A B", 0}}})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.rs)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
			_, newErr := New(d, nil, tc.rs)
			if !errors.Is(newErr, tc.want) {
				t.Fatalf("New = %v, want %v", newErr, tc.want)
			}
		})
	}
}

func BenchmarkRulesFull(b *testing.B) {
	d := datagen.MustGenerate(datagen.HEPTHLike(0.3, 6))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := New(d, cands, PaperRules())
	if err != nil {
		b.Fatal(err)
	}
	entities := allRefs(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(entities, nil, nil)
	}
}
