// Package eval implements the evaluation metrics of the paper's §2.2.1
// and §6: precision/recall/F1 of a match set against ground truth, and
// the framework-level soundness and completeness of a message-passing
// run against a reference run (FULL or the UB oracle).
package eval

import (
	"fmt"

	"repro/internal/core"
)

// PRF holds precision, recall and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int // true positives
	FP        int // false positives
	FN        int // false negatives
}

// PrecisionRecall scores predicted matches against the ground-truth set.
// Empty predictions score precision 1 by convention (no wrong claims);
// empty truth scores recall 1.
func PrecisionRecall(predicted, truth core.PairSet) PRF {
	tp := 0
	for k := range predicted {
		if truth.HasKey(k) {
			tp++
		}
	}
	out := PRF{
		TP: tp,
		FP: predicted.Len() - tp,
		FN: truth.Len() - tp,
	}
	if predicted.Len() == 0 {
		out.Precision = 1
	} else {
		out.Precision = float64(tp) / float64(predicted.Len())
	}
	if truth.Len() == 0 {
		out.Recall = 1
	} else {
		out.Recall = float64(tp) / float64(truth.Len())
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

func (m PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

// Soundness is the fraction of scheme matches also present in the
// reference run (§2.2.1, property 1): |M ∩ ref| / |M|. Empty M is
// vacuously sound (1).
func Soundness(scheme, reference core.PairSet) float64 {
	if scheme.Len() == 0 {
		return 1
	}
	return float64(scheme.Intersect(reference).Len()) / float64(scheme.Len())
}

// Completeness is the fraction of reference matches recovered by the
// scheme (§2.2.1, property 2): |M ∩ ref| / |ref|. Empty reference is
// vacuously complete (1).
func Completeness(scheme, reference core.PairSet) float64 {
	if reference.Len() == 0 {
		return 1
	}
	return float64(scheme.Intersect(reference).Len()) / float64(reference.Len())
}

// Report is one evaluated scheme run, as printed by the experiment
// harness.
type Report struct {
	Scheme       string
	PRF          PRF
	Soundness    float64 // vs reference run, NaN-free: 1 when not applicable
	Completeness float64
	Stats        core.RunStats
}

// Evaluate builds a Report for a run against ground truth and an optional
// reference run (pass nil reference to skip soundness/completeness).
func Evaluate(res *core.Result, truth core.PairSet, reference core.PairSet) Report {
	r := Report{
		Scheme:       res.Scheme,
		PRF:          PrecisionRecall(res.Matches, truth),
		Soundness:    1,
		Completeness: 1,
		Stats:        res.Stats,
	}
	if reference != nil {
		r.Soundness = Soundness(res.Matches, reference)
		r.Completeness = Completeness(res.Matches, reference)
	}
	return r
}

func (r Report) String() string {
	return fmt.Sprintf("%-6s %s sound=%.3f complete=%.3f", r.Scheme, r.PRF, r.Soundness, r.Completeness)
}
