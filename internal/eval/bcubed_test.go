package eval

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestClustersFromMatches(t *testing.T) {
	m := ps([2]int32{0, 1}, [2]int32{1, 2}) // chain → one cluster {0,1,2}
	ids := ClustersFromMatches(5, m)
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("chain not closed: %v", ids)
	}
	if ids[3] == ids[0] || ids[4] == ids[0] || ids[3] == ids[4] {
		t.Errorf("singletons merged: %v", ids)
	}
	// Dense ids starting at 0.
	seen := map[int32]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for i := int32(0); i < int32(len(seen)); i++ {
		if !seen[i] {
			t.Errorf("cluster ids not dense: %v", ids)
		}
	}
}

func TestBCubedPerfect(t *testing.T) {
	gold := []int32{0, 0, 1, 1, 2}
	m := BCubed(gold, gold)
	if !approx(m.Precision, 1) || !approx(m.Recall, 1) || !approx(m.F1, 1) {
		t.Errorf("perfect clustering scored %v", m)
	}
}

func TestBCubedAllSingletons(t *testing.T) {
	gold := []int32{0, 0, 1, 1}
	pred := []int32{0, 1, 2, 3}
	m := BCubed(pred, gold)
	if !approx(m.Precision, 1) {
		t.Errorf("singletons have perfect precision, got %v", m.Precision)
	}
	if !approx(m.Recall, 0.5) {
		t.Errorf("recall = %v, want 0.5", m.Recall)
	}
}

func TestBCubedAllMerged(t *testing.T) {
	gold := []int32{0, 0, 1, 1}
	pred := []int32{0, 0, 0, 0}
	m := BCubed(pred, gold)
	if !approx(m.Recall, 1) {
		t.Errorf("one big cluster has perfect recall, got %v", m.Recall)
	}
	if !approx(m.Precision, 0.5) {
		t.Errorf("precision = %v, want 0.5", m.Precision)
	}
}

func TestBCubedKnownValue(t *testing.T) {
	// gold: {0,1,2} {3,4}; pred: {0,1} {2,3} {4}
	gold := []int32{0, 0, 0, 1, 1}
	pred := []int32{0, 0, 1, 1, 2}
	m := BCubed(pred, gold)
	// precision: e0,e1: 2/2; e2: 1/2; e3: 1/2; e4: 1/1 → (1+1+.5+.5+1)/5 = 0.8
	if !approx(m.Precision, 0.8) {
		t.Errorf("precision = %v, want 0.8", m.Precision)
	}
	// recall: e0,e1: 2/3; e2: 1/3; e3: 1/2; e4: 1/2 → (2/3+2/3+1/3+.5+.5)/5
	want := (2.0/3 + 2.0/3 + 1.0/3 + 0.5 + 0.5) / 5
	if !approx(m.Recall, want) {
		t.Errorf("recall = %v, want %v", m.Recall, want)
	}
}

func TestBCubedEmpty(t *testing.T) {
	m := BCubed(nil, nil)
	if !approx(m.Precision, 1) || !approx(m.Recall, 1) {
		t.Errorf("empty input scored %v", m)
	}
	if got := BCubed([]int32{0}, []int32{0, 1}); !approx(got.Precision, 1) {
		t.Errorf("mismatched lengths must degrade gracefully: %v", got)
	}
}

// Property: refining the prediction (splitting clusters) never increases
// B³ recall and never decreases B³ precision.
func TestBCubedRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(12)
		gold := make([]int32, n)
		pred := make([]int32, n)
		for i := range gold {
			gold[i] = int32(rng.Intn(4))
			pred[i] = int32(rng.Intn(3))
		}
		// Refine pred: split each cluster in two by parity.
		refined := make([]int32, n)
		for i := range pred {
			refined[i] = pred[i]*2 + int32(i%2)
		}
		m0, m1 := BCubed(pred, gold), BCubed(refined, gold)
		if m1.Recall > m0.Recall+1e-12 {
			t.Fatalf("trial %d: refinement increased recall: %v -> %v", trial, m0.Recall, m1.Recall)
		}
		if m1.Precision < m0.Precision-1e-12 {
			t.Fatalf("trial %d: refinement decreased precision: %v -> %v", trial, m0.Precision, m1.Precision)
		}
	}
}

func TestBCubedFromMatches(t *testing.T) {
	gold := []int32{0, 0, 1}
	m := BCubedFromMatches(core.NewPairSet(core.MakePair(0, 1)), gold)
	if !approx(m.Precision, 1) || !approx(m.Recall, 1) {
		t.Errorf("exact match set scored %v", m)
	}
}
