package eval

import (
	"repro/internal/core"
	"repro/internal/unionfind"
)

// This file adds cluster-level evaluation: pairwise P/R/F1 (the paper's
// metric) under-weights small clusters, so entity-resolution practice
// also reports B-cubed (Bagga & Baldwin): per-entity precision/recall of
// the predicted cluster against the gold cluster, averaged over entities.

// ClustersFromMatches turns a match set over n entities into dense
// cluster ids via transitive closure (each unmatched entity is its own
// cluster).
func ClustersFromMatches(n int, matches core.PairSet) []int32 {
	dsu := unionfind.New(n)
	for p := range matches.All() {
		dsu.Union(int(p.A), int(p.B))
	}
	ids := make([]int32, n)
	next := int32(0)
	seen := map[int]int32{}
	for i := 0; i < n; i++ {
		r := dsu.Find(i)
		id, ok := seen[r]
		if !ok {
			id = next
			next++
			seen[r] = id
		}
		ids[i] = id
	}
	return ids
}

// BCubed computes B-cubed precision, recall and F1 for a predicted
// clustering against gold labels. Both slices assign a cluster id per
// entity and must have equal length.
func BCubed(predicted, gold []int32) PRF {
	n := len(predicted)
	if n == 0 || len(gold) != n {
		return PRF{Precision: 1, Recall: 1, F1: 1}
	}
	predMembers := map[int32][]int32{}
	goldMembers := map[int32][]int32{}
	for i := 0; i < n; i++ {
		predMembers[predicted[i]] = append(predMembers[predicted[i]], int32(i))
		goldMembers[gold[i]] = append(goldMembers[gold[i]], int32(i))
	}
	var sumP, sumR float64
	for i := 0; i < n; i++ {
		pc := predMembers[predicted[i]]
		gc := goldMembers[gold[i]]
		// Overlap of the entity's predicted and gold clusters.
		inGold := map[int32]bool{}
		for _, e := range gc {
			inGold[e] = true
		}
		overlap := 0
		for _, e := range pc {
			if inGold[e] {
				overlap++
			}
		}
		sumP += float64(overlap) / float64(len(pc))
		sumR += float64(overlap) / float64(len(gc))
	}
	out := PRF{
		Precision: sumP / float64(n),
		Recall:    sumR / float64(n),
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// BCubedFromMatches scores a match set directly against gold labels.
func BCubedFromMatches(matches core.PairSet, gold []int32) PRF {
	return BCubed(ClustersFromMatches(len(gold), matches), gold)
}
