package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func ps(pairs ...[2]int32) core.PairSet {
	s := core.NewPairSet()
	for _, p := range pairs {
		s.Add(core.MakePair(p[0], p[1]))
	}
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPrecisionRecallExact(t *testing.T) {
	pred := ps([2]int32{0, 1}, [2]int32{2, 3})
	truth := ps([2]int32{0, 1}, [2]int32{2, 3})
	m := PrecisionRecall(pred, truth)
	if !approx(m.Precision, 1) || !approx(m.Recall, 1) || !approx(m.F1, 1) {
		t.Errorf("perfect match scored %v", m)
	}
	if m.TP != 2 || m.FP != 0 || m.FN != 0 {
		t.Errorf("counts = %+v", m)
	}
}

func TestPrecisionRecallPartial(t *testing.T) {
	pred := ps([2]int32{0, 1}, [2]int32{4, 5})  // 1 right, 1 wrong
	truth := ps([2]int32{0, 1}, [2]int32{2, 3}) // 1 found, 1 missed
	m := PrecisionRecall(pred, truth)
	if !approx(m.Precision, 0.5) || !approx(m.Recall, 0.5) || !approx(m.F1, 0.5) {
		t.Errorf("got %v, want 0.5 across the board", m)
	}
}

func TestPrecisionRecallEmptyCases(t *testing.T) {
	truth := ps([2]int32{0, 1})
	m := PrecisionRecall(core.NewPairSet(), truth)
	if !approx(m.Precision, 1) || !approx(m.Recall, 0) || !approx(m.F1, 0) {
		t.Errorf("empty prediction scored %v", m)
	}
	m = PrecisionRecall(truth, core.NewPairSet())
	if !approx(m.Recall, 1) || !approx(m.Precision, 0) {
		t.Errorf("empty truth scored %v", m)
	}
	m = PrecisionRecall(core.NewPairSet(), core.NewPairSet())
	if !approx(m.Precision, 1) || !approx(m.Recall, 1) {
		t.Errorf("both empty scored %v", m)
	}
}

func TestSoundnessCompleteness(t *testing.T) {
	ref := ps([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{4, 5})
	scheme := ps([2]int32{0, 1}, [2]int32{2, 3})
	if s := Soundness(scheme, ref); !approx(s, 1) {
		t.Errorf("Soundness = %v, want 1", s)
	}
	if c := Completeness(scheme, ref); !approx(c, 2.0/3.0) {
		t.Errorf("Completeness = %v, want 2/3", c)
	}
	unsound := ps([2]int32{0, 1}, [2]int32{8, 9})
	if s := Soundness(unsound, ref); !approx(s, 0.5) {
		t.Errorf("Soundness = %v, want 0.5", s)
	}
	if s := Soundness(core.NewPairSet(), ref); !approx(s, 1) {
		t.Errorf("empty scheme soundness = %v, want 1 (vacuous)", s)
	}
	if c := Completeness(scheme, core.NewPairSet()); !approx(c, 1) {
		t.Errorf("empty reference completeness = %v, want 1 (vacuous)", c)
	}
}

func TestEvaluateReport(t *testing.T) {
	res := &core.Result{
		Scheme:  "SMP",
		Matches: ps([2]int32{0, 1}),
	}
	truth := ps([2]int32{0, 1}, [2]int32{2, 3})
	ref := ps([2]int32{0, 1}, [2]int32{2, 3})
	r := Evaluate(res, truth, ref)
	if r.Scheme != "SMP" {
		t.Errorf("scheme = %q", r.Scheme)
	}
	if !approx(r.PRF.Recall, 0.5) || !approx(r.Soundness, 1) || !approx(r.Completeness, 0.5) {
		t.Errorf("report = %v", r)
	}
	if !strings.Contains(r.String(), "SMP") {
		t.Errorf("String = %q", r.String())
	}
	// nil reference: soundness/completeness default to 1.
	r2 := Evaluate(res, truth, nil)
	if !approx(r2.Soundness, 1) || !approx(r2.Completeness, 1) {
		t.Errorf("nil-reference report = %v", r2)
	}
}

// Property: F1 is the harmonic mean and lies between min and max of P and R.
func TestF1Bounds(t *testing.T) {
	f := func(raw []uint8) bool {
		pred, truth := core.NewPairSet(), core.NewPairSet()
		for i := 0; i+1 < len(raw); i += 2 {
			p := core.MakePair(core.EntityID(raw[i]%6), core.EntityID(raw[i+1]%6))
			if !p.Valid() {
				continue
			}
			if i%4 == 0 {
				pred.Add(p)
			} else {
				truth.Add(p)
			}
		}
		m := PrecisionRecall(pred, truth)
		lo, hi := math.Min(m.Precision, m.Recall), math.Max(m.Precision, m.Recall)
		return m.F1 >= lo-1e-12 && m.F1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a scheme that is a subset of the reference is always sound.
func TestSubsetAlwaysSound(t *testing.T) {
	f := func(raw []uint8) bool {
		ref := core.NewPairSet()
		for i := 0; i+1 < len(raw); i += 2 {
			p := core.MakePair(core.EntityID(raw[i]%6), core.EntityID(raw[i+1]%6))
			if p.Valid() {
				ref.Add(p)
			}
		}
		scheme := core.NewPairSet()
		i := 0
		for p := range ref.All() {
			if i%2 == 0 {
				scheme.Add(p)
			}
			i++
		}
		return approx(Soundness(scheme, ref), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
