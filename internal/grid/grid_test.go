package grid

import (
	"context"
	"testing"
	"time"

	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mln"
	"repro/internal/testmodel"
)

var bg = context.Background()

// mustSeq runs a sequential core scheme, failing the test on error.
func mustSeq(t *testing.T, fn func(context.Context, core.Config) (*core.Result, error), cfg core.Config) *core.Result {
	t.Helper()
	res, err := fn(bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func gridConfig() Config {
	return Config{Machines: 4, RoundOverhead: time.Millisecond, Seed: 1}
}

func paperCfg() core.Config {
	m, cover, _ := testmodel.PaperExample()
	return core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
}

// TestGridMatchesSequential: the rounds-based parallel schedule must
// produce exactly the sequential outputs (consistency under §6.3's
// parallelization).
func TestGridMatchesSequential(t *testing.T) {
	cfg := paperCfg()

	seqNo := mustSeq(t, core.NoMP, cfg)
	gridNo, err := NoMP(bg, cfg, gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !gridNo.Matches.Equal(seqNo.Matches) {
		t.Errorf("grid NO-MP = %v, sequential = %v",
			gridNo.Matches.Sorted(), seqNo.Matches.Sorted())
	}

	seqSMP := mustSeq(t, core.SMP, cfg)
	gridSMP, err := SMP(bg, cfg, gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !gridSMP.Matches.Equal(seqSMP.Matches) {
		t.Errorf("grid SMP = %v, sequential = %v",
			gridSMP.Matches.Sorted(), seqSMP.Matches.Sorted())
	}

	seqMMP, err := core.MMP(bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gridMMP, err := MMP(bg, cfg, gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !gridMMP.Matches.Equal(seqMMP.Matches) {
		t.Errorf("grid MMP = %v, sequential = %v",
			gridMMP.Matches.Sorted(), seqMMP.Matches.Sorted())
	}
}

// TestGridMatchesSequentialGenerated repeats the consistency check on a
// generated bibliography with the real MLN matcher.
func TestGridMatchesSequentialGenerated(t *testing.T) {
	d := datagen.MustGenerate(datagen.HEPTHLike(0.1, 21))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]mln.Candidate, len(sp))
	for i, s := range sp {
		cands[i] = mln.Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := mln.New(d, cands, mln.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Cover: cover, Matcher: m, Relation: d.Coauthor()}

	seq := mustSeq(t, core.SMP, cfg)
	par, err := SMP(bg, cfg, gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !par.Matches.Equal(seq.Matches) {
		t.Fatalf("grid SMP diverges from sequential on generated data: %d vs %d matches",
			par.Matches.Len(), seq.Matches.Len())
	}

	seqM, err := core.MMP(bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parM, err := MMP(bg, cfg, gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !parM.Matches.Equal(seqM.Matches) {
		t.Fatalf("grid MMP diverges from sequential: %d vs %d matches",
			parM.Matches.Len(), seqM.Matches.Len())
	}
}

func TestGridRejectsTypeIForMMP(t *testing.T) {
	plain := core.MatcherFunc{
		MatchFn: func(e []core.EntityID, pos, neg core.PairSet) core.PairSet {
			return core.NewPairSet()
		},
	}
	cfg := core.Config{Cover: core.NewCover(2, [][]core.EntityID{{0, 1}}), Matcher: plain}
	if _, err := MMP(bg, cfg, gridConfig()); err == nil {
		t.Fatal("grid MMP accepted a Type-I matcher")
	}
}

func TestGridConfigValidation(t *testing.T) {
	cfg := paperCfg()
	bad := []Config{
		{Machines: 0},
		{Machines: 2, RoundOverhead: -time.Second},
		{Machines: 2, Workers: -1},
	}
	for i, g := range bad {
		if _, err := NoMP(bg, cfg, g); err == nil {
			t.Errorf("case %d: invalid grid config accepted", i)
		}
	}
}

// TestSpeedupBounds: the simulated speedup is positive and cannot exceed
// the machine count (makespan ≥ total/machines), and single-machine time
// is at least the grid time.
func TestSpeedupBounds(t *testing.T) {
	d := datagen.MustGenerate(datagen.DBLPLike(0.2, 8))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]mln.Candidate, len(sp))
	for i, s := range sp {
		cands[i] = mln.Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := mln.New(d, cands, mln.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Cover: cover, Matcher: m, Relation: d.Coauthor()}
	g := Config{Machines: 8, RoundOverhead: 0, Seed: 3}
	res, err := SMP(bg, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup = %v", res.Speedup)
	}
	if res.Speedup > float64(g.Machines)+1e-9 {
		t.Fatalf("speedup %v exceeds machine count %d", res.Speedup, g.Machines)
	}
	if res.SimulatedSingleTime < res.SimulatedGridTime {
		t.Fatal("single-machine time below grid time")
	}
	if res.Rounds == 0 || res.JobsRun < cover.Len() {
		t.Fatalf("stats wrong: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

// TestOverheadReducesSpeedup: with a large per-round overhead the grid
// advantage shrinks — the Table 1 mechanism.
func TestOverheadReducesSpeedup(t *testing.T) {
	cfg := paperCfg()
	fast, err := SMP(bg, cfg, Config{Machines: 4, RoundOverhead: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SMP(bg, cfg, Config{Machines: 4, RoundOverhead: 50 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With identical round structure, overhead inflates both clocks
	// equally per round, pushing the ratio toward 1.
	if slow.Speedup > fast.Speedup+1e-9 {
		t.Errorf("overhead increased speedup: %v > %v", slow.Speedup, fast.Speedup)
	}
}

func TestSingleRoundNoMP(t *testing.T) {
	cfg := paperCfg()
	res, err := NoMP(bg, cfg, gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("NO-MP rounds = %d, want 1", res.Rounds)
	}
	if res.JobsRun != cfg.Cover.Len() {
		t.Fatalf("NO-MP jobs = %d, want %d", res.JobsRun, cfg.Cover.Len())
	}
}

// TestServiceModel: when a service model is set, simulated clocks follow
// it (deterministically per job count) instead of measured wall time.
func TestServiceModel(t *testing.T) {
	cfg := paperCfg()
	unit := 10 * time.Millisecond
	g := Config{
		Machines:     2,
		Seed:         1,
		ServiceModel: func(active int) time.Duration { return time.Duration(active) * unit },
	}
	res, err := NoMP(bg, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// Single round over all neighborhoods: the simulated single-machine
	// time is exactly unit × Σ active decisions of the cover.
	want := time.Duration(0)
	for _, set := range cfg.Cover.Sets {
		want += time.Duration(len(cfg.Matcher.Candidates(set))) * unit
	}
	if res.SimulatedSingleTime != want {
		t.Errorf("modeled single time = %v, want %v", res.SimulatedSingleTime, want)
	}
	if res.SimulatedGridTime > res.SimulatedSingleTime {
		t.Error("grid time exceeds single-machine time")
	}
	// The model must not change the matching output.
	plain, err := NoMP(bg, cfg, Config{Machines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches.Equal(plain.Matches) {
		t.Error("service model changed the match output")
	}
}
