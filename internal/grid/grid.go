// Package grid implements the parallel, rounds-based execution of the
// framework described in §6.3: every round, the active neighborhoods are
// processed in parallel (a Map job), the new evidence is collected
// centrally (a Reduce job), and the next round's active set is derived
// from the affected neighborhoods. The paper ran this on a 30-machine
// Hadoop grid; here the *execution* is real (a goroutine worker pool)
// while the *grid clock* is simulated: jobs are randomly assigned to G
// virtual machines, each machine's round time is the sum of its jobs'
// measured service times, and a round costs the maximum machine time plus
// a fixed scheduling overhead. Random assignment skew plus per-round
// overhead is exactly the mechanism the paper gives for observing ~11×
// (not 30×) speedup on 30 machines (Table 1).
package grid

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Config controls the simulated grid.
type Config struct {
	// Machines is the number of simulated grid machines (the paper: 30).
	Machines int
	// RoundOverhead is the fixed per-round scheduling cost added to the
	// simulated clock (mapper/reducer setup on Hadoop).
	RoundOverhead time.Duration
	// Seed drives the random job-to-machine assignment.
	Seed int64
	// Workers bounds real goroutine parallelism; 0 means GOMAXPROCS.
	Workers int
	// ServiceModel, when set, maps a job's active decision count (its
	// in-scope candidate pairs not yet decided by evidence) to the
	// simulated service time charged to its machine. When nil, the
	// measured wall time of the job is charged instead. The model lets
	// the simulated grid reflect the steeply superlinear cost of the
	// paper's Alchemy-based matcher, which our exact solver does not
	// have; real execution is unaffected.
	ServiceModel func(activeDecisions int) time.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("grid: Machines = %d, want > 0", c.Machines)
	}
	if c.RoundOverhead < 0 {
		return fmt.Errorf("grid: negative RoundOverhead")
	}
	if c.Workers < 0 {
		return fmt.Errorf("grid: negative Workers")
	}
	return nil
}

// Result is the outcome of a grid run.
type Result struct {
	Scheme  string
	Matches core.PairSet
	Rounds  int
	// SimulatedGridTime is the simulated wall clock on Machines machines:
	// Σ over rounds of (max machine load + overhead).
	SimulatedGridTime time.Duration
	// SimulatedSingleTime is the simulated single-machine wall clock:
	// the sum of every job's service time (one machine does all the work,
	// with one scheduling overhead per round).
	SimulatedSingleTime time.Duration
	// Speedup = SimulatedSingleTime / SimulatedGridTime.
	Speedup float64
	// JobsRun counts neighborhood evaluations across all rounds.
	JobsRun int
	// RealElapsed is the actual wall-clock time of the run.
	RealElapsed time.Duration
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: rounds=%d jobs=%d grid=%v single=%v speedup=%.1f",
		r.Scheme, r.Rounds, r.JobsRun, r.SimulatedGridTime, r.SimulatedSingleTime, r.Speedup)
}

// job is one neighborhood evaluation task.
type job struct {
	neighborhood int32
	serviceTime  time.Duration
	matches      core.PairSet
	messages     [][]core.Pair // MMP only
}

// activeDecisions counts the in-scope candidate pairs not yet decided.
func activeDecisions(m core.Matcher, entities []core.EntityID, evidence core.PairSet) int {
	active := 0
	for _, p := range m.Candidates(entities) {
		if !evidence.Has(p) {
			active++
		}
	}
	return active
}

// runRound executes the given neighborhoods in parallel with the current
// evidence snapshot and returns the per-job results. withMessages also
// runs COMPUTEMAXIMAL per job (MMP). Jobs not yet started when ctx is
// canceled are skipped.
func runRound(ctx context.Context, cfg core.Config, gcfg Config, active []int32, evidence core.PairSet, withMessages bool) []job {
	workers := gcfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := make([]job, len(active))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, id := range active {
		wg.Add(1)
		go func(i int, id int32) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			entities := cfg.Cover.Sets[id]
			start := time.Now()
			mc := cfg.Matcher.Match(entities, evidence, cfg.Negative)
			var msgs [][]core.Pair
			if withMessages {
				msgs, _ = core.ComputeMaximal(cfg.Matcher, entities, evidence, cfg.Negative, mc)
			}
			service := time.Since(start)
			if gcfg.ServiceModel != nil {
				service = gcfg.ServiceModel(activeDecisions(cfg.Matcher, entities, evidence))
			}
			jobs[i] = job{
				neighborhood: id,
				serviceTime:  service,
				matches:      mc,
				messages:     msgs,
			}
		}(i, id)
	}
	wg.Wait()
	return jobs
}

// simulateAssignment randomly assigns the jobs to machines and returns
// the simulated round makespan (max machine load).
func simulateAssignment(rng *rand.Rand, jobs []job, machines int) time.Duration {
	load := make([]time.Duration, machines)
	for _, j := range jobs {
		load[rng.Intn(machines)] += j.serviceTime
	}
	var maxLoad time.Duration
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// sumService totals the jobs' service times.
func sumService(jobs []job) time.Duration {
	var total time.Duration
	for _, j := range jobs {
		total += j.serviceTime
	}
	return total
}

// NoMP runs the NO-MP baseline on the grid: a single parallel round over
// all neighborhoods.
func NoMP(ctx context.Context, cfg core.Config, gcfg Config) (*Result, error) {
	return run(ctx, cfg, gcfg, "NO-MP", false, false)
}

// SMP runs the simple message-passing scheme in parallel rounds. The
// output equals sequential core.SMP for well-behaved matchers
// (consistency, Theorem 2).
func SMP(ctx context.Context, cfg core.Config, gcfg Config) (*Result, error) {
	return run(ctx, cfg, gcfg, "SMP", true, false)
}

// MMP runs the maximal message-passing scheme in parallel rounds: the
// Reduce phase merges maximal messages and promotes sound ones.
func MMP(ctx context.Context, cfg core.Config, gcfg Config) (*Result, error) {
	if _, ok := cfg.Matcher.(core.Probabilistic); !ok {
		return nil, fmt.Errorf("grid: MMP requires a Probabilistic matcher, got %T", cfg.Matcher)
	}
	return run(ctx, cfg, gcfg, "MMP", true, true)
}

func run(ctx context.Context, cfg core.Config, gcfg Config, scheme string, iterate, withMessages bool) (*Result, error) {
	if err := gcfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	if sp, ok := cfg.Matcher.(core.ScopePreparer); ok {
		sp.PrepareCover(cfg.Cover)
	}
	rng := rand.New(rand.NewSource(gcfg.Seed))
	res := &Result{Scheme: scheme, Matches: core.NewPairSet()}

	active := make([]int32, cfg.Cover.Len())
	for i := range active {
		active[i] = int32(i)
	}
	var store *core.MessageStore
	if withMessages {
		store = core.NewMessageStore()
	}
	prob, _ := cfg.Matcher.(core.Probabilistic)

	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Rounds++
		jobs := runRound(ctx, cfg, gcfg, active, res.Matches, withMessages)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.JobsRun += len(jobs)
		res.SimulatedGridTime += simulateAssignment(rng, jobs, gcfg.Machines) + gcfg.RoundOverhead
		res.SimulatedSingleTime += sumService(jobs) + gcfg.RoundOverhead

		// Reduce: merge new matches (and messages) through the shared
		// round reducer, then find affected.
		red := core.NewRoundReducer(res.Matches, store, prob, nil)
		for _, j := range jobs {
			red.Add(j.matches, j.messages)
		}
		red.Promote()
		if !iterate {
			break
		}
		if len(red.New) == 0 {
			break
		}
		affectedSet := cfg.Cover.Affected(red.New, cfg.Relation)
		active = active[:0]
		active = append(active, affectedSet...)
		sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	}

	if res.SimulatedGridTime > 0 {
		res.Speedup = float64(res.SimulatedSingleTime) / float64(res.SimulatedGridTime)
	}
	res.RealElapsed = time.Since(start)
	return res, nil
}
