// Package testmodel provides a small, exactly-solvable supermodular
// pairwise match model used as the reference matcher throughout the test
// suites: its MAP inference is brute force over all subsets of candidate
// pairs, so framework properties (soundness, consistency, completeness)
// and the MLN matcher's graph-cut inference can both be validated against
// ground-truth-optimal outputs.
//
// The model is the abstract form of the paper's §2.1 example: each
// candidate pair carries a unary weight (the R1-style similarity rules)
// and unordered pair-of-pairs interactions carry non-negative weights
// (the R2-style relational rule). Score(S) = Σ unary + Σ interactions
// within S, plus a small per-pair inclusion bonus that realizes the
// "largest most-likely set" tie-break of Definition 5.
package testmodel

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// TieEps is the per-pair inclusion bonus; small enough to never override
// a real weight difference in tests.
const TieEps = 1e-6

// nonCandidatePenalty is the log-score of any set containing a pair the
// model has no variable for (probability ≈ 0).
const nonCandidatePenalty = -1e12

// Interaction names an unordered pair of pairs.
type Interaction struct {
	P, Q core.Pair
}

// MakeInteraction normalizes the order of the two pairs.
func MakeInteraction(p, q core.Pair) Interaction {
	if q.A < p.A || (q.A == p.A && q.B < p.B) {
		p, q = q, p
	}
	return Interaction{p, q}
}

// Model is a supermodular pairwise model over entities [0, N).
type Model struct {
	N     int
	Unary map[core.Pair]float64
	Inter map[Interaction]float64 // weights must be ≥ 0 for supermodularity

	rel *graph.Graph // lazily built relation graph for Affected()
}

// New returns an empty model over n entities.
func New(n int) *Model {
	return &Model{
		N:     n,
		Unary: map[core.Pair]float64{},
		Inter: map[Interaction]float64{},
	}
}

// AddPair declares a candidate pair with the given unary weight.
func (m *Model) AddPair(a, b core.EntityID, w float64) core.Pair {
	p := core.MakePair(a, b)
	m.Unary[p] = w
	return p
}

// AddInteraction declares a non-negative interaction between two declared
// pairs. Panics on negative weights (the model must stay supermodular)
// and undeclared pairs — these are programming errors in tests.
func (m *Model) AddInteraction(p, q core.Pair, w float64) {
	if w < 0 {
		panic("testmodel: negative interaction breaks supermodularity")
	}
	if _, ok := m.Unary[p]; !ok {
		panic("testmodel: interaction references undeclared pair")
	}
	if _, ok := m.Unary[q]; !ok {
		panic("testmodel: interaction references undeclared pair")
	}
	m.Inter[MakeInteraction(p, q)] = w
}

// Relation returns a graph connecting the entities of interacting pairs —
// a stand-in for the Coauthor relation, suitable for Cover.Affected. Two
// entities are related when some interaction (or unary pair) links their
// pairs: each pair's endpoints are connected, and for every interaction
// the four endpoint entities are pairwise connected across the two pairs.
func (m *Model) Relation() *graph.Graph {
	if m.rel != nil {
		return m.rel
	}
	b := graph.NewBuilder(m.N)
	for p := range m.Unary {
		b.AddEdge(p.A, p.B)
	}
	for in := range m.Inter {
		b.AddEdge(in.P.A, in.Q.A)
		b.AddEdge(in.P.A, in.Q.B)
		b.AddEdge(in.P.B, in.Q.A)
		b.AddEdge(in.P.B, in.Q.B)
	}
	m.rel = b.Build()
	return m.rel
}

// Candidates implements core.Matcher: the declared pairs whose endpoints
// both lie in the entity set, in deterministic order.
func (m *Model) Candidates(entities []core.EntityID) []core.Pair {
	in := make(map[core.EntityID]bool, len(entities))
	for _, e := range entities {
		in[e] = true
	}
	var out []core.Pair
	for p := range m.Unary {
		if in[p.A] && in[p.B] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// LogScore implements core.Probabilistic over the full model.
func (m *Model) LogScore(s core.PairSet) float64 {
	total := 0.0
	for p := range s.All() {
		w, ok := m.Unary[p]
		if !ok {
			return nonCandidatePenalty
		}
		total += w + TieEps
	}
	for in, w := range m.Inter {
		if s.Has(in.P) && s.Has(in.Q) {
			total += w
		}
	}
	return total
}

// Match implements core.Matcher by brute-force exact MAP over the free
// candidate pairs within the entity set, conditioned on the evidence:
// pairs in pos are clamped true (and included in the output when both
// endpoints are in scope), pairs in neg are clamped false. Interactions
// with out-of-scope or evidence pairs contribute as unary bonuses —
// exactly how a conditioned submodel behaves.
func (m *Model) Match(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
	cands := m.Candidates(entities)
	// Split into clamped and free variables.
	var free []core.Pair
	out := core.NewPairSet()
	for _, p := range cands {
		switch {
		case neg.Has(p):
		case pos.Has(p):
			out.Add(p)
		default:
			free = append(free, p)
		}
	}
	if len(free) > 25 {
		panic("testmodel: too many free variables for brute force")
	}
	// Effective unary for free pairs: base + interactions with true
	// evidence (in or out of scope — the model is global).
	eff := make([]float64, len(free))
	idx := make(map[core.Pair]int, len(free))
	for i, p := range free {
		idx[p] = i
		eff[i] = m.Unary[p] + TieEps
	}
	type link struct {
		i, j int
		w    float64
	}
	var links []link
	for in, w := range m.Inter {
		i, iok := idx[in.P]
		j, jok := idx[in.Q]
		switch {
		case iok && jok:
			links = append(links, link{i, j, w})
		case iok && pos.Has(in.Q):
			eff[i] += w
		case jok && pos.Has(in.P):
			eff[j] += w
		}
	}
	bestMask, bestScore := 0, math.Inf(-1)
	for mask := 0; mask < 1<<len(free); mask++ {
		score := 0.0
		for i := range free {
			if mask&(1<<i) != 0 {
				score += eff[i]
			}
		}
		for _, l := range links {
			if mask&(1<<l.i) != 0 && mask&(1<<l.j) != 0 {
				score += l.w
			}
		}
		if score > bestScore {
			bestScore, bestMask = score, mask
		}
	}
	for i, p := range free {
		if bestMask&(1<<i) != 0 {
			out.Add(p)
		}
	}
	return out
}

// DecideGiven implements core.ConditionalDecider: p is matched when its
// conditional weight given the clamped assignment of all other pairs is
// non-negative (including the inclusion bonus).
func (m *Model) DecideGiven(p core.Pair, given core.PairSet) bool {
	w, ok := m.Unary[p]
	if !ok {
		return false
	}
	delta := w + TieEps
	for in, iw := range m.Inter {
		var other core.Pair
		switch p {
		case in.P:
			other = in.Q
		case in.Q:
			other = in.P
		default:
			continue
		}
		if other != p && given.Has(other) {
			delta += iw
		}
	}
	return delta >= 0
}

var (
	_ core.Matcher            = (*Model)(nil)
	_ core.Probabilistic      = (*Model)(nil)
	_ core.ConditionalDecider = (*Model)(nil)
)

// PaperExample builds the §2.1/§2.2 running example of the paper:
//
//	entities: a1 a2 b1 b2 b3 c1 c2 c3 (d1's reflexive support is folded
//	into the unary weight of (c1,c2), as in the paper's own reading)
//
//	unary:  (c1,c2) = R1+R2 = −5+8 = +3, all other similar pairs −5
//	inter:  (b1,b2)↔(c1,c2), (a1,a2)↔(b2,b3), (b2,b3)↔(c2,c3), each +8
//
// The full-EM optimum matches all five pairs. A NO-MP run over the
// returned cover finds only (c1,c2); SMP additionally recovers (b1,b2);
// only MMP recovers the 3-chain {(a1,a2),(b2,b3),(c2,c3)}.
func PaperExample() (m *Model, cover *core.Cover, ids map[string]core.EntityID) {
	names := []string{"a1", "a2", "b1", "b2", "b3", "c1", "c2", "c3", "d1"}
	ids = map[string]core.EntityID{}
	for i, n := range names {
		ids[n] = core.EntityID(i)
	}
	m = New(len(names))
	a12 := m.AddPair(ids["a1"], ids["a2"], -5)
	b12 := m.AddPair(ids["b1"], ids["b2"], -5)
	b23 := m.AddPair(ids["b2"], ids["b3"], -5)
	c12 := m.AddPair(ids["c1"], ids["c2"], 3) // −5 + 8 via shared coauthor d1
	c23 := m.AddPair(ids["c2"], ids["c3"], -5)
	m.AddInteraction(b12, c12, 8)
	m.AddInteraction(a12, b23, 8)
	m.AddInteraction(b23, c23, 8)

	cover = core.NewCover(len(names), [][]core.EntityID{
		{ids["a1"], ids["a2"], ids["b2"], ids["b3"]},            // C1
		{ids["b1"], ids["b2"], ids["b3"], ids["c2"], ids["c3"]}, // C2
		{ids["c1"], ids["c2"], ids["c3"], ids["d1"]},            // C3
	})
	return m, cover, ids
}
