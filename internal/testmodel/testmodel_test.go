package testmodel

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestAddPairAndInteraction(t *testing.T) {
	m := New(4)
	p := m.AddPair(1, 0, -2) // normalized
	if p != core.MakePair(0, 1) {
		t.Fatalf("AddPair returned %v", p)
	}
	q := m.AddPair(2, 3, 1)
	m.AddInteraction(p, q, 5)
	if m.Inter[MakeInteraction(q, p)] != 5 {
		t.Error("interaction not stored under normalized key")
	}
}

func TestAddInteractionPanics(t *testing.T) {
	m := New(4)
	p := m.AddPair(0, 1, 1)
	q := m.AddPair(2, 3, 1)
	assertPanics(t, func() { m.AddInteraction(p, q, -1) }, "negative weight")
	assertPanics(t, func() { m.AddInteraction(p, core.MakePair(0, 3), 1) }, "undeclared pair")
}

func assertPanics(t *testing.T, f func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestMakeInteractionNormalizes(t *testing.T) {
	p, q := core.MakePair(2, 3), core.MakePair(0, 1)
	a, b := MakeInteraction(p, q), MakeInteraction(q, p)
	if a != b {
		t.Errorf("interaction keys differ: %v vs %v", a, b)
	}
	if a.P != q {
		t.Errorf("smaller pair must come first: %+v", a)
	}
}

func TestCandidatesScoping(t *testing.T) {
	m := New(6)
	m.AddPair(0, 1, 1)
	m.AddPair(2, 3, 1)
	m.AddPair(4, 5, 1)
	got := m.Candidates([]core.EntityID{0, 1, 2, 3})
	if len(got) != 2 {
		t.Fatalf("Candidates = %v", got)
	}
	// Deterministic order.
	if got[0] != core.MakePair(0, 1) || got[1] != core.MakePair(2, 3) {
		t.Errorf("order wrong: %v", got)
	}
	// Partial scope excludes straddling pairs.
	got = m.Candidates([]core.EntityID{0, 2, 3})
	if len(got) != 1 || got[0] != core.MakePair(2, 3) {
		t.Errorf("straddling pair not excluded: %v", got)
	}
}

// TestMatchIsLogScoreArgmax: brute-force Match must maximize LogScore.
func TestMatchIsLogScoreArgmax(t *testing.T) {
	m, _, _ := PaperExample()
	all := make([]core.EntityID, m.N)
	for i := range all {
		all[i] = core.EntityID(i)
	}
	out := m.Match(all, nil, nil)
	cands := m.Candidates(all)
	best := math.Inf(-1)
	var bestSet core.PairSet
	for mask := 0; mask < 1<<len(cands); mask++ {
		s := core.NewPairSet()
		for i, p := range cands {
			if mask&(1<<i) != 0 {
				s.Add(p)
			}
		}
		if sc := m.LogScore(s); sc > best {
			best, bestSet = sc, s
		}
	}
	if !out.Equal(bestSet) {
		t.Fatalf("Match = %v (%.6f), argmax = %v (%.6f)",
			out.Sorted(), m.LogScore(out), bestSet.Sorted(), best)
	}
}

func TestLogScoreNonCandidate(t *testing.T) {
	m := New(4)
	m.AddPair(0, 1, 1)
	if sc := m.LogScore(core.NewPairSet(core.MakePair(2, 3))); sc > -1e11 {
		t.Errorf("non-candidate set scored %v", sc)
	}
}

func TestDecideGiven(t *testing.T) {
	m, _, ids := PaperExample()
	b23 := core.MakePair(ids["b2"], ids["b3"])
	a12 := core.MakePair(ids["a1"], ids["a2"])
	// (b2,b3) alone: -5 → no.
	if m.DecideGiven(b23, core.NewPairSet()) {
		t.Error("unsupported pair decided true")
	}
	// Given (a1,a2): -5+8 → yes.
	if !m.DecideGiven(b23, core.NewPairSet(a12)) {
		t.Error("supported pair decided false")
	}
	if m.DecideGiven(core.MakePair(90, 91), core.NewPairSet()) {
		t.Error("unknown pair decided true")
	}
}

func TestRelationCoversInteractions(t *testing.T) {
	m, _, ids := PaperExample()
	rel := m.Relation()
	// Interaction (b1,b2)↔(c1,c2) must relate b-side to c-side entities.
	if !rel.HasEdge(ids["b1"], ids["c1"]) {
		t.Error("relation missing interaction edge")
	}
	// Pair endpoints related too.
	if !rel.HasEdge(ids["a1"], ids["a2"]) {
		t.Error("relation missing pair edge")
	}
	if m.Relation() != rel {
		t.Error("relation must be cached")
	}
}

func TestEvidenceSemantics(t *testing.T) {
	m, _, ids := PaperExample()
	all := make([]core.EntityID, m.N)
	for i := range all {
		all[i] = core.EntityID(i)
	}
	b23 := core.MakePair(ids["b2"], ids["b3"])
	c23 := core.MakePair(ids["c2"], ids["c3"])
	// Negative evidence on (b2,b3) kills the chain: (a1,a2) and (c2,c3)
	// lose their only support.
	out := m.Match(all, nil, core.NewPairSet(b23))
	if out.Has(b23) || out.Has(c23) || out.Has(core.MakePair(ids["a1"], ids["a2"])) {
		t.Errorf("negative evidence ignored: %v", out.Sorted())
	}
	// The anchored pairs survive.
	if !out.Has(core.MakePair(ids["c1"], ids["c2"])) {
		t.Errorf("independent matches lost: %v", out.Sorted())
	}
}

func TestBruteForcePanicGuard(t *testing.T) {
	m := New(60)
	for i := int32(0); i+1 < 60; i += 2 {
		m.AddPair(i, i+1, 0)
	}
	all := make([]core.EntityID, 60)
	for i := range all {
		all[i] = core.EntityID(i)
	}
	assertPanics(t, func() { m.Match(all, nil, nil) }, "too many free variables")
}
