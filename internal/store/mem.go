package store

import (
	"fmt"
	"sort"
	"sync"
)

func init() {
	Register("mem", func(o Options) (Store, error) { return NewMem(), nil })
}

// Mem is the in-memory store: the maps the engine always kept, behind
// the Store interface. It is the default — byte-identical behavior to
// the pre-Store engine — and the reference implementation the disk
// store is differentially tested against. State dies with the process;
// a service on a mem store recovers from the journal, not the store.
type Mem struct {
	mu       sync.RWMutex
	evidence map[uint64]struct{}
	blobs    map[string]map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		evidence: map[uint64]struct{}{},
		blobs:    map[string]map[string][]byte{},
	}
}

// Name implements Store.
func (m *Mem) Name() string { return "mem" }

// PutEvidence implements Store.
func (m *Mem) PutEvidence(keys []uint64) error {
	if err := checkBatch(keys); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, k := range keys {
		m.evidence[k] = struct{}{}
	}
	return nil
}

// HasEvidence implements Store.
func (m *Mem) HasEvidence(key uint64) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.evidence[key]
	return ok, nil
}

// EvidenceRange implements Store.
func (m *Mem) EvidenceRange(lo, hi uint64, yield func(uint64) bool) error {
	m.mu.RLock()
	keys := make([]uint64, 0, len(m.evidence))
	for k := range m.evidence {
		if k >= lo && k < hi {
			keys = append(keys, k)
		}
	}
	m.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !yield(k) {
			return nil
		}
	}
	return nil
}

// EvidenceLen implements Store.
func (m *Mem) EvidenceLen() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.evidence), nil
}

// ClearEvidence implements Store.
func (m *Mem) ClearEvidence() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evidence = map[uint64]struct{}{}
	return nil
}

// SaveBlob implements Store.
func (m *Mem) SaveBlob(kind, name string, data []byte) error {
	if err := checkBlobName(kind); err != nil {
		return err
	}
	if err := checkBlobName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ns := m.blobs[kind]
	if ns == nil {
		ns = map[string][]byte{}
		m.blobs[kind] = ns
	}
	ns[name] = append([]byte(nil), data...)
	return nil
}

// OpenBlob implements Store.
func (m *Mem) OpenBlob(kind, name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.blobs[kind][name]
	if !ok {
		return nil, fmt.Errorf("store: blob %s/%s: %w", kind, name, ErrNotFound)
	}
	return append([]byte(nil), data...), nil
}

// ListBlobs implements Store.
func (m *Mem) ListBlobs(kind string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.blobs[kind]))
	for name := range m.blobs[kind] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Flush implements Store (a no-op: there is nothing more durable to
// reach).
func (m *Mem) Flush() error { return nil }

// Close implements Store.
func (m *Mem) Close() error { return nil }

// checkBatch validates a PutEvidence batch: strictly increasing valid
// pair keys, the same contract internal/wire enforces on deltas.
func checkBatch(keys []uint64) error {
	for i, k := range keys {
		if !validPairKey(k) {
			return fmt.Errorf("store: evidence key %d (%#x) is not a valid pair key", i, k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("store: evidence batch not strictly increasing at %d", i)
		}
	}
	return nil
}

// validPairKey mirrors the wire codec's key contract: high half A, low
// half B, A < B, B < 2^31 (entity ids are int32).
func validPairKey(k uint64) bool {
	a, b := uint32(k>>32), uint32(k)
	return a < b && b < 1<<31
}

// checkBlobName restricts blob kinds and names to a safe charset
// (disk stores map them to file paths).
func checkBlobName(s string) error {
	if s == "" {
		return fmt.Errorf("store: empty blob kind/name")
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: blob kind/name %q contains %q (allowed: [A-Za-z0-9._-])", s, c)
		}
	}
	if s == "." || s == ".." {
		return fmt.Errorf("store: blob kind/name %q is reserved", s)
	}
	return nil
}
