package store

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/wire"
)

// Segment file format — the disk store's evidence unit.
//
// A segment is an immutable, sorted run of evidence keys, written in
// one shot (tmp + fsync + rename) and never modified. The keys are
// split into blocks of at most blockKeys entries; each block's payload
// is a binary wire.Delta (difference-encoded sorted keys — the same
// fuzzed codec the distributed backend ships deltas with), preceded by
// a fixed preamble carrying the block's min/max key, count and payload
// length, so opening a segment can build its sparse in-memory index by
// reading preambles without materializing any keys:
//
//	"CEMS" | version(1)
//	repeat per block:
//	  minKey uint64be | maxKey uint64be | count uint32be | plen uint32be
//	  payload (wire.Delta, Binary, Round = block ordinal)
//	"CEMZ" | blockCount uint32be
//
// The encoding is canonical: a segment that decodes successfully
// re-encodes to the identical bytes (FuzzSegmentRoundTrip pins this).
// Decoding therefore rejects every non-canonical degree of freedom:
// JSON payloads, non-minimal varints (payloads are re-marshaled and
// byte-compared), preambles disagreeing with their payload, blocks out
// of order or overlapping, and trailing garbage.

const (
	segVersion          = 1
	defaultBlockKeys    = 4096
	defaultCompactEvery = 8
	segPreambleLen      = 8 + 8 + 4 + 4
)

var (
	segMagic       = []byte("CEMS")
	segFooterMagic = []byte("CEMZ")
)

// segBlock is one block's sparse-index entry: its key bounds and where
// its payload lives inside the segment file.
type segBlock struct {
	min, max uint64
	count    int
	off      int // payload offset within the segment file
	plen     int // payload length
}

// encodeSegment serializes key blocks into the canonical segment
// format. Blocks must be non-empty, each strictly increasing, and
// strictly ordered against each other (prev max < next min).
func encodeSegment(blocks [][]uint64) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(segMagic)
	buf.WriteByte(segVersion)
	var prevMax uint64
	for i, keys := range blocks {
		if len(keys) == 0 {
			return nil, fmt.Errorf("store: segment block %d is empty", i)
		}
		if i > 0 && keys[0] <= prevMax {
			return nil, fmt.Errorf("store: segment block %d overlaps its predecessor", i)
		}
		payload, err := (&wire.Delta{Round: i, Keys: keys}).Marshal(wire.Binary)
		if err != nil {
			return nil, fmt.Errorf("store: encoding segment block %d: %w", i, err)
		}
		var pre [segPreambleLen]byte
		binary.BigEndian.PutUint64(pre[0:], keys[0])
		binary.BigEndian.PutUint64(pre[8:], keys[len(keys)-1])
		binary.BigEndian.PutUint32(pre[16:], uint32(len(keys)))
		binary.BigEndian.PutUint32(pre[20:], uint32(len(payload)))
		buf.Write(pre[:])
		buf.Write(payload)
		prevMax = keys[len(keys)-1]
	}
	buf.Write(segFooterMagic)
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(blocks)))
	buf.Write(cnt[:])
	return buf.Bytes(), nil
}

// splitBlocks chops one strictly-increasing key batch into blocks of at
// most blockKeys entries.
func splitBlocks(keys []uint64, blockKeys int) [][]uint64 {
	if blockKeys <= 0 {
		blockKeys = defaultBlockKeys
	}
	var blocks [][]uint64
	for len(keys) > 0 {
		n := min(blockKeys, len(keys))
		blocks = append(blocks, keys[:n])
		keys = keys[n:]
	}
	return blocks
}

// walkSegment fully decodes and validates a segment, invoking fn once
// per block with its index entry and decoded keys. Any structural
// damage — truncation anywhere, a preamble disagreeing with its
// payload, a non-canonical payload, trailing bytes — is an error.
func walkSegment(data []byte, fn func(meta segBlock, keys []uint64) error) error {
	if len(data) < len(segMagic)+1 {
		return fmt.Errorf("store: segment truncated before header")
	}
	if !bytes.Equal(data[:len(segMagic)], segMagic) {
		return fmt.Errorf("store: bad segment magic")
	}
	if v := data[len(segMagic)]; v != segVersion {
		return fmt.Errorf("store: unknown segment version %d", v)
	}
	off := len(segMagic) + 1
	var (
		prevMax uint64
		nblocks int
	)
	for {
		if len(data)-off >= len(segFooterMagic) && bytes.Equal(data[off:off+len(segFooterMagic)], segFooterMagic) {
			off += len(segFooterMagic)
			if len(data)-off < 4 {
				return fmt.Errorf("store: segment truncated inside footer")
			}
			if got := int(binary.BigEndian.Uint32(data[off:])); got != nblocks {
				return fmt.Errorf("store: segment footer counts %d blocks, file holds %d", got, nblocks)
			}
			off += 4
			if off != len(data) {
				return fmt.Errorf("store: %d trailing bytes after segment footer", len(data)-off)
			}
			return nil
		}
		if len(data)-off < segPreambleLen {
			return fmt.Errorf("store: segment truncated inside block %d preamble", nblocks)
		}
		meta := segBlock{
			min:   binary.BigEndian.Uint64(data[off:]),
			max:   binary.BigEndian.Uint64(data[off+8:]),
			count: int(binary.BigEndian.Uint32(data[off+16:])),
			plen:  int(binary.BigEndian.Uint32(data[off+20:])),
		}
		off += segPreambleLen
		meta.off = off
		if meta.plen > wire.MaxFramePayload {
			return fmt.Errorf("store: segment block %d payload %d exceeds limit", nblocks, meta.plen)
		}
		if len(data)-off < meta.plen {
			return fmt.Errorf("store: segment truncated inside block %d payload", nblocks)
		}
		payload := data[off : off+meta.plen]
		off += meta.plen
		keys, err := decodeBlock(payload, nblocks, meta, prevMax)
		if err != nil {
			return err
		}
		if err := fn(meta, keys); err != nil {
			return err
		}
		prevMax = meta.max
		nblocks++
	}
}

// decodeBlock decodes one block payload and cross-checks it against its
// preamble and predecessor. The payload must be the canonical binary
// encoding — it is re-marshaled and byte-compared, so a decoded segment
// always re-encodes identically.
func decodeBlock(payload []byte, ordinal int, meta segBlock, prevMax uint64) ([]uint64, error) {
	d, err := wire.UnmarshalDelta(payload)
	if err != nil {
		return nil, fmt.Errorf("store: segment block %d: %w", ordinal, err)
	}
	if d.Round != ordinal {
		return nil, fmt.Errorf("store: segment block %d carries ordinal %d", ordinal, d.Round)
	}
	if len(d.Keys) == 0 {
		return nil, fmt.Errorf("store: segment block %d is empty", ordinal)
	}
	if len(d.Keys) != meta.count {
		return nil, fmt.Errorf("store: segment block %d preamble counts %d keys, payload holds %d",
			ordinal, meta.count, len(d.Keys))
	}
	if d.Keys[0] != meta.min || d.Keys[len(d.Keys)-1] != meta.max {
		return nil, fmt.Errorf("store: segment block %d preamble bounds disagree with payload", ordinal)
	}
	if ordinal > 0 && meta.min <= prevMax {
		return nil, fmt.Errorf("store: segment block %d overlaps its predecessor", ordinal)
	}
	canonical, err := d.Marshal(wire.Binary)
	if err != nil {
		return nil, fmt.Errorf("store: segment block %d: %w", ordinal, err)
	}
	if !bytes.Equal(canonical, payload) {
		return nil, fmt.Errorf("store: segment block %d payload is not canonical", ordinal)
	}
	return d.Keys, nil
}

// parseSegment decodes a whole segment into its block key slices — the
// fuzz target's view (encodeSegment(parseSegment(x)) == x).
func parseSegment(data []byte) ([][]uint64, error) {
	var blocks [][]uint64
	err := walkSegment(data, func(_ segBlock, keys []uint64) error {
		blocks = append(blocks, keys)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return blocks, nil
}
