// Package store is the engine's storage abstraction: everything the
// matcher state machine persists — the accumulated evidence set, the
// blocking index (canopy postings), and run snapshots — goes through a
// Store, so the same pipeline can keep its state in process maps (the
// "mem" store, the default: exactly the behavior the engine always had)
// or on disk (the "disk" store: append-only segment files of
// difference-encoded sorted PairKey batches over the internal/wire
// codec, for corpora whose state should not live in RSS and for
// services that reopen state on restart instead of replaying trails).
//
// Stores register by name (database/sql style); third-party
// implementations use the aliases exported by the public match package
// and never import internal packages. Keys are plain packed pair keys
// (uint64, high half A, low half B, A < B) — the same representation
// internal/wire speaks — so the package depends on nothing in the
// engine above it.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound reports a blob lookup that matched nothing.
var ErrNotFound = errors.New("store: not found")

// Blob kinds used by the engine. Stores treat kinds as opaque
// namespaces; these constants only fix the convention shared by the
// snapshot plumbing and the service.
const (
	// KindSnapshot holds serialized run snapshots (wire.Checkpoint
	// payloads stamped by the cem snapshot plumbing).
	KindSnapshot = "snapshot"
	// KindPostings holds serialized blocking state (canopy q-gram
	// postings and cached candidate lists).
	KindPostings = "postings"
)

// Store is the persistence boundary of one matching state: evidence
// (the accumulated M+ as packed pair keys), and named blobs (blocking
// postings, run snapshots). Implementations must be safe for concurrent
// readers with one writer; the engine's reduce path is single-writer by
// design.
type Store interface {
	// Name returns the registry name the store was opened under.
	Name() string

	// PutEvidence appends one batch of evidence keys. Keys must be
	// strictly increasing valid pair keys (a < b, b < 2^31 — the
	// internal/wire key contract). Batches may overlap previously put
	// batches; evidence has set semantics.
	PutEvidence(keys []uint64) error
	// HasEvidence reports whether the key is in the evidence set.
	HasEvidence(key uint64) (bool, error)
	// EvidenceRange yields the evidence keys in [lo, hi) in ascending
	// order, deduplicated, until yield returns false. The full set is
	// EvidenceRange(0, ^uint64(0), ...).
	EvidenceRange(lo, hi uint64, yield func(uint64) bool) error
	// EvidenceLen returns the number of distinct evidence keys.
	EvidenceLen() (int, error)
	// ClearEvidence empties the evidence set. The engine clears at the
	// start of every cold run so the store always holds exactly the
	// current run's accumulated evidence.
	ClearEvidence() error

	// SaveBlob durably replaces the named blob (KindSnapshot,
	// KindPostings, or any caller-chosen namespace). Names are
	// restricted to [A-Za-z0-9._-]+.
	SaveBlob(kind, name string, data []byte) error
	// OpenBlob returns the named blob, or ErrNotFound.
	OpenBlob(kind, name string) ([]byte, error)
	// ListBlobs returns the sorted names stored under kind.
	ListBlobs(kind string) ([]string, error)

	// Flush forces buffered state to durable storage (a no-op for
	// memory stores).
	Flush() error
	// Close releases the store's resources. A closed store must not be
	// used again.
	Close() error
}

// Options configures a store at open time. Implementations ignore
// fields they have no use for (the memory store ignores all of them).
type Options struct {
	// Dir is the root directory of a disk-backed store (required by
	// "disk", ignored by "mem").
	Dir string
	// CompactEvery bounds the evidence segment count: once more than
	// this many segment files accumulate, a Put triggers compaction
	// into a single merged segment. 0 means the implementation default.
	CompactEvery int
	// BlockKeys bounds the keys per difference-encoded block inside a
	// segment (the unit of decode-on-demand). 0 means the default.
	BlockKeys int
	// Logf, when set, receives recovery events (e.g. quarantined
	// segments). Nil is silent.
	Logf func(format string, args ...any)
}

// Option mutates Options — the functional-option form the public API
// re-exports as cem.StoreOption.
type Option func(*Options)

// WithDir roots a disk-backed store at dir.
func WithDir(dir string) Option { return func(o *Options) { o.Dir = dir } }

// WithCompactEvery sets the segment-count compaction threshold.
func WithCompactEvery(n int) Option { return func(o *Options) { o.CompactEvery = n } }

// WithBlockKeys sets the keys-per-block bound of new segments.
func WithBlockKeys(n int) Option { return func(o *Options) { o.BlockKeys = n } }

// WithLog installs a logger for store recovery events.
func WithLog(logf func(format string, args ...any)) Option {
	return func(o *Options) { o.Logf = logf }
}

// Factory opens a store from resolved options.
type Factory func(Options) (Store, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// Register makes a store implementation available under name. It
// panics if name is empty, factory is nil, or name is already taken —
// registration happens from init functions, where a conflict is a
// programming error (database/sql.Register semantics).
func Register(name string, factory Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("store: Register with empty name")
	}
	if factory == nil {
		panic("store: Register with nil factory for " + name)
	}
	if _, dup := factories[name]; dup {
		panic("store: Register called twice for " + name)
	}
	factories[name] = factory
}

// Names returns the registered store names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Open builds the named store with the given options.
func Open(name string, opts ...Option) (Store, error) {
	regMu.RLock()
	factory, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown store %q (registered: %v)", name, Names())
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return factory(o)
}

// Keys collects the full evidence set of a store as a sorted slice —
// the read side of the snapshot plumbing.
func Keys(s Store) ([]uint64, error) {
	n, err := s.EvidenceLen()
	if err != nil {
		return nil, err
	}
	keys := make([]uint64, 0, n)
	err = s.EvidenceRange(0, ^uint64(0), func(k uint64) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}
