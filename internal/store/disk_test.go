package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeDiskFixture builds a disk store with a few segments and returns
// the directory, the segment paths (ascending), and the expected keys.
func writeDiskFixture(t *testing.T, batches int) (string, []string, []uint64) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenDisk(Options{Dir: dir, BlockKeys: 16, CompactEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < batches; i++ {
		if err := d.PutEvidence(sortedKeys(rng, 30+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := Keys(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != batches {
		t.Fatalf("fixture wrote %d segments, want %d", len(paths), batches)
	}
	return dir, paths, want
}

// TestDiskTrailingTruncationQuarantine corrupts the TRAILING segment at
// every possible truncation point and at every single byte, and asserts
// the store always reopens with that segment quarantined and every
// earlier segment intact — the same recovery contract the service
// journal gives its trailing batch.
func TestDiskTrailingTruncationQuarantine(t *testing.T) {
	dir, paths, _ := writeDiskFixture(t, 3)
	last := paths[len(paths)-1]
	pristine, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Expected survivors: keys of all but the last segment.
	var survivors []uint64
	{
		if err := os.Remove(last); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if survivors, err = Keys(d); err != nil {
			t.Fatal(err)
		}
		d.Close()
	}

	reopenAndCheck := func(t *testing.T, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(last, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		var logged []string
		d, err := OpenDisk(Options{Dir: dir, Logf: func(f string, a ...any) {
			logged = append(logged, f)
		}})
		if err != nil {
			t.Fatalf("reopen with damaged trailing segment failed: %v", err)
		}
		got, err := Keys(d)
		if err != nil {
			t.Fatal(err)
		}
		d.Close()
		if !reflect.DeepEqual(got, survivors) {
			t.Fatalf("damaged trailing segment: got %d keys, want %d survivors", len(got), len(survivors))
		}
		if len(logged) == 0 {
			t.Fatal("quarantine was not logged")
		}
		q, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
		if err != nil || len(q) != 1 {
			t.Fatalf("quarantine glob = %v, %v; want exactly one", q, err)
		}
		if err := os.Remove(q[0]); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("every-truncation", func(t *testing.T) {
		for n := 0; n < len(pristine); n++ {
			reopenAndCheck(t, pristine[:n])
			if t.Failed() {
				t.Fatalf("first failing truncation length: %d of %d", n, len(pristine))
			}
		}
	})
	t.Run("every-byte-flip", func(t *testing.T) {
		for i := range pristine {
			mutated := append([]byte(nil), pristine...)
			mutated[i] ^= 0xff
			if err := os.WriteFile(last, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			d, err := OpenDisk(Options{Dir: dir})
			if err != nil {
				t.Fatalf("byte %d: reopen failed hard: %v", i, err)
			}
			got, gerr := Keys(d)
			d.Close()
			if gerr != nil {
				t.Fatalf("byte %d: Keys: %v", i, gerr)
			}
			// A flip either leaves a still-valid segment (then the full
			// set must round-trip — happens only if the flip is caught
			// by canonicality, which rejects everything, so really:
			// quarantined) or the segment is quarantined and survivors
			// remain. Either way earlier segments are intact.
			for _, k := range survivors {
				found := false
				for _, g := range got {
					if g == k {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("byte %d: survivor key %#x lost", i, k)
				}
			}
			if q, _ := filepath.Glob(filepath.Join(dir, "*.corrupt")); len(q) > 0 {
				for _, p := range q {
					os.Remove(p)
				}
			} else if !reflect.DeepEqual(got, survivorsPlus(survivors, pristine, t)) {
				t.Fatalf("byte %d: flip went undetected but keys changed", i)
			}
		}
	})
}

// survivorsPlus returns survivors ∪ the pristine segment's keys — what a
// reopen must see when the trailing segment is intact.
func survivorsPlus(survivors []uint64, pristine []byte, t *testing.T) []uint64 {
	t.Helper()
	blocks, err := parseSegment(pristine)
	if err != nil {
		t.Fatalf("pristine segment does not parse: %v", err)
	}
	set := map[uint64]struct{}{}
	for _, k := range survivors {
		set[k] = struct{}{}
	}
	for _, b := range blocks {
		for _, k := range b {
			set[k] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortU64(out)
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// TestDiskNonTrailingDamageIsFatal pins that damage to any segment
// OTHER than the trailing one refuses to open: quarantining it would
// silently drop evidence that later segments build on.
func TestDiskNonTrailingDamageIsFatal(t *testing.T) {
	dir, paths, _ := writeDiskFixture(t, 3)
	first := paths[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(Options{Dir: dir}); err == nil {
		t.Fatal("store opened despite a damaged non-trailing segment")
	} else if !strings.Contains(err.Error(), "not the trailing segment") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDiskOrphanTmpRemoved pins that a crash between tmp-write and
// rename (an orphaned *.tmp) is cleaned up at open and never treated as
// state.
func TestDiskOrphanTmpRemoved(t *testing.T) {
	dir, _, want := writeDiskFixture(t, 2)
	orphan := filepath.Join(dir, segFile(99)+".tmp")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := Keys(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("orphan tmp changed the evidence set")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan tmp not removed: %v", err)
	}
}

// TestDiskBlobAtomicReplace pins blob replacement goes through a temp
// file (no *.tmp left behind, content fully replaced).
func TestDiskBlobAtomicReplace(t *testing.T) {
	d, err := OpenDisk(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = byte(i)
	}
	if err := d.SaveBlob(KindSnapshot, "latest", big); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveBlob(KindSnapshot, "latest", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, err := d.OpenBlob(KindSnapshot, "latest")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("OpenBlob = %d bytes, %v", len(got), err)
	}
	tmps, _ := filepath.Glob(filepath.Join(d.Dir(), "blob", KindSnapshot, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
	if names, err := d.ListBlobs(KindSnapshot); err != nil || len(names) != 1 {
		t.Fatalf("ListBlobs = %v, %v", names, err)
	}
}

// TestDiskClosedRejectsWrites pins that a closed store refuses new
// evidence.
func TestDiskClosedRejectsWrites(t *testing.T) {
	d, err := OpenDisk(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.PutEvidence([]uint64{pk(1, 2)}); err == nil {
		t.Fatal("PutEvidence succeeded on a closed store")
	}
}
