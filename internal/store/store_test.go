package store

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// pk packs a pair key the way the engine does.
func pk(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// sortedKeys returns n distinct valid pair keys, strictly increasing.
func sortedKeys(rng *rand.Rand, n int) []uint64 {
	set := map[uint64]struct{}{}
	for len(set) < n {
		a := rng.Uint32() % 50_000
		b := a + 1 + rng.Uint32()%50_000
		set[pk(a, b)] = struct{}{}
	}
	keys := make([]uint64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// openEach builds one instance of every registered store for a test.
func openEach(t *testing.T) map[string]Store {
	t.Helper()
	stores := map[string]Store{}
	for _, name := range Names() {
		s, err := Open(name, WithDir(filepath.Join(t.TempDir(), name)), WithBlockKeys(64), WithCompactEvery(4))
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		t.Cleanup(func() { s.Close() })
		stores[name] = s
	}
	return stores
}

func TestRegistryHasBothBackends(t *testing.T) {
	names := Names()
	want := map[string]bool{"mem": false, "disk": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("registry %v is missing %q", names, n)
		}
	}
	if _, err := Open("no-such-store"); err == nil {
		t.Fatal("Open of unknown store succeeded")
	}
}

func TestRegisterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name":  func() { Register("", func(Options) (Store, error) { return NewMem(), nil }) },
		"nil factory": func() { Register("x-nil", nil) },
		"duplicate":   func() { Register("mem", func(Options) (Store, error) { return NewMem(), nil }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestStoreConformance runs the same API contract against every
// registered backend.
func TestStoreConformance(t *testing.T) {
	for name, s := range openEach(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			want := map[uint64]struct{}{}
			// Several overlapping batches.
			for batch := 0; batch < 6; batch++ {
				keys := sortedKeys(rng, 200+batch*37)
				for _, k := range keys {
					want[k] = struct{}{}
				}
				if err := s.PutEvidence(keys); err != nil {
					t.Fatalf("PutEvidence: %v", err)
				}
			}
			wantSorted := make([]uint64, 0, len(want))
			for k := range want {
				wantSorted = append(wantSorted, k)
			}
			sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })

			if n, err := s.EvidenceLen(); err != nil || n != len(want) {
				t.Fatalf("EvidenceLen = %d, %v; want %d", n, err, len(want))
			}
			got, err := Keys(s)
			if err != nil {
				t.Fatalf("Keys: %v", err)
			}
			if !reflect.DeepEqual(got, wantSorted) {
				t.Fatalf("Keys returned %d keys, want %d (or order/dedup mismatch)", len(got), len(wantSorted))
			}
			// Point lookups, hits and misses.
			for _, k := range wantSorted[:50] {
				if ok, err := s.HasEvidence(k); err != nil || !ok {
					t.Fatalf("HasEvidence(%#x) = %v, %v; want true", k, ok, err)
				}
			}
			for probe := uint64(0); probe < 50; probe++ {
				k := pk(uint32(100_000+probe), uint32(200_000+probe))
				if ok, err := s.HasEvidence(k); err != nil || ok {
					t.Fatalf("HasEvidence(absent %#x) = %v, %v; want false", k, ok, err)
				}
			}
			// Sub-range iteration with early stop.
			lo, hi := wantSorted[len(wantSorted)/4], wantSorted[len(wantSorted)/2]
			var sub []uint64
			if err := s.EvidenceRange(lo, hi, func(k uint64) bool {
				sub = append(sub, k)
				return len(sub) < 10
			}); err != nil {
				t.Fatalf("EvidenceRange: %v", err)
			}
			if len(sub) != 10 {
				t.Fatalf("early-stopped range yielded %d keys, want 10", len(sub))
			}
			for i, k := range sub {
				if k < lo || k >= hi {
					t.Fatalf("range key %#x outside [%#x, %#x)", k, lo, hi)
				}
				if i > 0 && sub[i-1] >= k {
					t.Fatalf("range not strictly increasing at %d", i)
				}
			}

			// Invalid batches are rejected.
			if err := s.PutEvidence([]uint64{pk(5, 5)}); err == nil {
				t.Fatal("PutEvidence accepted a==b")
			}
			if err := s.PutEvidence([]uint64{pk(1, 2), pk(1, 2)}); err == nil {
				t.Fatal("PutEvidence accepted a duplicate in one batch")
			}
			if err := s.PutEvidence([]uint64{pk(3, 4), pk(1, 2)}); err == nil {
				t.Fatal("PutEvidence accepted a descending batch")
			}

			// Blobs.
			if err := s.SaveBlob(KindSnapshot, "latest", []byte("v1")); err != nil {
				t.Fatalf("SaveBlob: %v", err)
			}
			if err := s.SaveBlob(KindSnapshot, "latest", []byte("v2")); err != nil {
				t.Fatalf("SaveBlob replace: %v", err)
			}
			if err := s.SaveBlob(KindPostings, "latest", []byte("p")); err != nil {
				t.Fatalf("SaveBlob postings: %v", err)
			}
			data, err := s.OpenBlob(KindSnapshot, "latest")
			if err != nil || string(data) != "v2" {
				t.Fatalf("OpenBlob = %q, %v; want v2", data, err)
			}
			if _, err := s.OpenBlob(KindSnapshot, "missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("OpenBlob(missing) err = %v; want ErrNotFound", err)
			}
			if names, err := s.ListBlobs(KindSnapshot); err != nil || !reflect.DeepEqual(names, []string{"latest"}) {
				t.Fatalf("ListBlobs = %v, %v", names, err)
			}
			if err := s.SaveBlob("..", "x", nil); err == nil {
				t.Fatal("SaveBlob accepted kind ..")
			}
			if err := s.SaveBlob(KindSnapshot, "a/b", nil); err == nil {
				t.Fatal("SaveBlob accepted a slash in the name")
			}

			// Clear drops evidence but not blobs.
			if err := s.ClearEvidence(); err != nil {
				t.Fatalf("ClearEvidence: %v", err)
			}
			if n, err := s.EvidenceLen(); err != nil || n != 0 {
				t.Fatalf("EvidenceLen after clear = %d, %v", n, err)
			}
			if _, err := s.OpenBlob(KindSnapshot, "latest"); err != nil {
				t.Fatalf("blob lost after ClearEvidence: %v", err)
			}
			if err := s.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		})
	}
}

// TestDiskMatchesMemProperty drives both stores with the same random
// operation sequence and pins identical observable state throughout —
// the property backing the "disk == mem" differential suite.
func TestDiskMatchesMemProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mem := NewMem()
	disk, err := OpenDisk(Options{Dir: t.TempDir(), BlockKeys: 32, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	check := func(step int) {
		t.Helper()
		mk, err1 := Keys(mem)
		dk, err2 := Keys(disk)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: Keys: %v / %v", step, err1, err2)
		}
		if !reflect.DeepEqual(mk, dk) {
			t.Fatalf("step %d: stores diverged (%d vs %d keys)", step, len(mk), len(dk))
		}
	}
	for step := 0; step < 60; step++ {
		switch rng.Intn(10) {
		case 0:
			if err := mem.ClearEvidence(); err != nil {
				t.Fatal(err)
			}
			if err := disk.ClearEvidence(); err != nil {
				t.Fatal(err)
			}
		default:
			keys := sortedKeys(rng, 1+rng.Intn(300))
			if err := mem.PutEvidence(keys); err != nil {
				t.Fatal(err)
			}
			if err := disk.PutEvidence(keys); err != nil {
				t.Fatal(err)
			}
		}
		check(step)
	}
	// Random sub-ranges agree too.
	for i := 0; i < 20; i++ {
		lo := uint64(rng.Uint32()) << 32
		hi := lo + uint64(rng.Uint32())<<16
		var mk, dk []uint64
		mem.EvidenceRange(lo, hi, func(k uint64) bool { mk = append(mk, k); return true })
		disk.EvidenceRange(lo, hi, func(k uint64) bool { dk = append(dk, k); return true })
		if !reflect.DeepEqual(mk, dk) {
			t.Fatalf("range [%#x,%#x): mem %d keys, disk %d", lo, hi, len(mk), len(dk))
		}
	}
}

// TestDiskReopenEquivalence pins that closing and reopening a disk
// store observes the identical evidence set and blobs.
func TestDiskReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	d1, err := OpenDisk(Options{Dir: dir, BlockKeys: 16, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var all []uint64
	for i := 0; i < 9; i++ { // crosses the compaction threshold
		keys := sortedKeys(rng, 50)
		all = append(all, keys...)
		if err := d1.PutEvidence(keys); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.SaveBlob(KindSnapshot, "latest", []byte("snap")); err != nil {
		t.Fatal(err)
	}
	want, err := Keys(d1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	got, err := Keys(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen sees %d keys, want %d", len(got), len(want))
	}
	if data, err := d2.OpenBlob(KindSnapshot, "latest"); err != nil || string(data) != "snap" {
		t.Fatalf("reopen blob = %q, %v", data, err)
	}
	// Sanity: every key we ever put is present.
	seen := map[uint64]struct{}{}
	for _, k := range got {
		seen[k] = struct{}{}
	}
	for _, k := range all {
		if _, ok := seen[k]; !ok {
			t.Fatalf("key %#x lost across reopen", k)
		}
	}
}

// TestDiskCompaction pins that compaction bounds the segment count and
// preserves the merged set exactly.
func TestDiskCompaction(t *testing.T) {
	d, err := OpenDisk(Options{Dir: t.TempDir(), BlockKeys: 8, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(3))
	want := map[uint64]struct{}{}
	for i := 0; i < 12; i++ {
		keys := sortedKeys(rng, 40)
		for _, k := range keys {
			want[k] = struct{}{}
		}
		if err := d.PutEvidence(keys); err != nil {
			t.Fatal(err)
		}
		if n := d.Segments(); n > 3+1 {
			t.Fatalf("after put %d: %d segments, compaction threshold 3", i, n)
		}
	}
	got, err := Keys(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("compacted store holds %d keys, want %d", len(got), len(want))
	}
	for _, k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("compaction invented key %#x", k)
		}
	}
}

func TestDiskRequiresDir(t *testing.T) {
	if _, err := Open("disk"); err == nil {
		t.Fatal("disk store opened without a directory")
	}
}

func TestSegmentEncodeRejectsBadBlocks(t *testing.T) {
	cases := map[string][][]uint64{
		"empty block":    {{}},
		"overlap":        {{pk(1, 2), pk(1, 3)}, {pk(1, 3)}},
		"order reversed": {{pk(4, 5)}, {pk(1, 2)}},
	}
	for name, blocks := range cases {
		if _, err := encodeSegment(blocks); err == nil {
			t.Errorf("encodeSegment(%s) succeeded", name)
		}
	}
}

func TestSplitBlocks(t *testing.T) {
	keys := make([]uint64, 10)
	for i := range keys {
		keys[i] = pk(uint32(i), uint32(i+1))
	}
	blocks := splitBlocks(keys, 4)
	if len(blocks) != 3 || len(blocks[0]) != 4 || len(blocks[2]) != 2 {
		t.Fatalf("splitBlocks sizes = %v", func() (ns []int) {
			for _, b := range blocks {
				ns = append(ns, len(b))
			}
			return
		}())
	}
}

func ExampleOpen() {
	s, _ := Open("mem")
	s.PutEvidence([]uint64{1<<32 | 2})
	n, _ := s.EvidenceLen()
	fmt.Println(s.Name(), n)
	// Output: mem 1
}
