package store

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestInternerDeduplicates(t *testing.T) {
	in := NewInterner()
	a := in.Intern("smith j")
	b := in.Intern("smith" + " j") // distinct backing allocation
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("equal strings do not share backing data after interning")
	}
	if in.Intern("") != "" {
		t.Fatal("empty string must pass through")
	}
	if got := in.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestInternerDetachesFromLargeBuffer(t *testing.T) {
	in := NewInterner()
	buf := make([]byte, 1<<20)
	copy(buf, "needle")
	s := string(buf[:6]) // string conversion already copies, but keep the shape honest
	c := in.Intern(s)
	if c != "needle" {
		t.Fatalf("Intern returned %q", c)
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	const names = 50
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in.Intern(fmt.Sprintf("name-%d", i%names))
			}
		}(g)
	}
	wg.Wait()
	if got := in.Len(); got != names {
		t.Fatalf("Len = %d, want %d", got, names)
	}
}
