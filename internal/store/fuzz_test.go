package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzSegmentRoundTrip pins the canonical-encoding property of the
// segment format: any byte string that decodes successfully re-encodes
// to the identical bytes. Combined with the corpus seeds below, the
// fuzzer both hunts decoder crashes on garbage and proves the format
// has no non-canonical degrees of freedom (JSON payloads, sloppy
// varints, preamble slack, trailing bytes).
func FuzzSegmentRoundTrip(f *testing.F) {
	// Valid seeds at several shapes.
	seedBlocks := [][][]uint64{
		{{pk(1, 2)}},
		{{pk(1, 2), pk(1, 3), pk(2, 3)}},
		{{pk(0, 1), pk(0, 2)}, {pk(5, 9), pk(6, 7)}},
		{{pk(10, 11)}, {pk(20, 21)}, {pk(30, 31)}},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		keys := sortedKeys(rng, 200)
		seedBlocks = append(seedBlocks, splitBlocks(keys, 64))
	}
	for _, blocks := range seedBlocks {
		data, err := encodeSegment(blocks)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Structurally hostile seeds.
	f.Add([]byte{})
	f.Add([]byte("CEMS"))
	f.Add([]byte("CEMSxxxx"))
	f.Add(append(append([]byte("CEMS\x01"), []byte("CEMZ")...), 0, 0, 0, 0))
	f.Add([]byte(`{"round":0,"keys":[4294967298]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := parseSegment(data)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		re, err := encodeSegment(blocks)
		if err != nil {
			t.Fatalf("decoded segment failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %d bytes decoded, re-encoded to %d different bytes", len(data), len(re))
		}
		// And the decode is self-consistent.
		again, err := parseSegment(re)
		if err != nil {
			t.Fatalf("re-encoded segment failed to parse: %v", err)
		}
		if len(again) != len(blocks) {
			t.Fatalf("block count changed across round trip: %d -> %d", len(blocks), len(again))
		}
	})
}
