package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

func init() {
	Register("disk", func(o Options) (Store, error) { return OpenDisk(o) })
}

// Disk is the log-structured on-disk store: evidence lives in
// append-only segment files (ev-NNNNNNNN.seg, see segment.go) under the
// root directory, blobs under blob/<kind>/<name>. Every commit is a
// whole-file tmp + fsync + rename, so a crash can never leave a torn
// file under a committed name; a crash DURING a commit leaves only a
// *.tmp orphan (removed at open) or — on filesystems that reorder data
// and rename — a torn trailing segment, which open quarantines by
// renaming it *.corrupt, exactly like the service journal's trailing
// batch (damage anywhere but the tail is a hard error: evidence after
// it would be silently lost).
//
// Reads never materialize the evidence set: each segment keeps only a
// sparse in-memory index (one 32-byte entry per block of ≤ BlockKeys
// keys), point and range lookups decode single blocks on demand through
// a small cache, and iteration streams a k-way merge across segments.
// Once more than CompactEvery segments accumulate, a put compacts them
// into one merged, deduplicated segment.
type Disk struct {
	dir          string
	blockKeys    int
	compactEvery int
	logf         func(format string, args ...any)

	mu      sync.RWMutex
	segs    []*diskSegment
	nextSeq int
	cache   *blockCache
	closed  bool
}

// diskSegment is one open segment: its path and sparse block index.
type diskSegment struct {
	path   string
	seq    int
	blocks []segBlock
}

func segFile(seq int) string { return fmt.Sprintf("ev-%08d.seg", seq) }

const segPattern = "ev-*.seg"

// OpenDisk opens (creating if needed) a disk store rooted at o.Dir.
func OpenDisk(o Options) (*Disk, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("store: the disk store needs a directory (WithDir)")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk dir: %w", err)
	}
	d := &Disk{
		dir:          o.Dir,
		blockKeys:    o.BlockKeys,
		compactEvery: o.CompactEvery,
		logf:         o.Logf,
		cache:        newBlockCache(16),
	}
	if d.blockKeys <= 0 {
		d.blockKeys = defaultBlockKeys
	}
	if d.compactEvery <= 0 {
		d.compactEvery = defaultCompactEvery
	}
	if err := d.open(); err != nil {
		return nil, err
	}
	return d, nil
}

// open scans the directory: orphaned temp files from a crashed commit
// are removed, every segment is fully verified (the whole file decodes
// and re-encodes canonically), and a damaged TRAILING segment is
// quarantined as *.corrupt — the tail is the only place a torn write
// can land, and nothing after it exists to lose. Damage anywhere else
// is a hard error.
func (d *Disk) open() error {
	tmps, err := filepath.Glob(filepath.Join(d.dir, "*.tmp"))
	if err != nil {
		return err
	}
	for _, t := range tmps {
		os.Remove(t)
	}
	paths, err := filepath.Glob(filepath.Join(d.dir, segPattern))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for i, p := range paths {
		seg, serr := openSegment(p)
		if serr != nil {
			if i != len(paths)-1 {
				return fmt.Errorf("store: segment %s: %w (not the trailing segment; refusing to drop the evidence after it)",
					filepath.Base(p), serr)
			}
			q := p + ".corrupt"
			if qerr := os.Rename(p, q); qerr != nil {
				return fmt.Errorf("store: quarantining %s: %v (decode error: %w)", p, qerr, serr)
			}
			if d.logf != nil {
				d.logf("store: quarantined torn trailing segment %s -> %s: %v", p, q, serr)
			}
			break
		}
		d.segs = append(d.segs, seg)
		if seg.seq >= d.nextSeq {
			d.nextSeq = seg.seq + 1
		}
	}
	return nil
}

// openSegment reads and fully verifies one segment file, returning its
// sparse index.
func openSegment(path string) (*diskSegment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seg := &diskSegment{path: path}
	base := filepath.Base(path)
	if _, err := fmt.Sscanf(base, "ev-%08d.seg", &seg.seq); err != nil {
		return nil, fmt.Errorf("store: segment name %q does not carry a sequence number", base)
	}
	err = walkSegment(data, func(meta segBlock, _ []uint64) error {
		seg.blocks = append(seg.blocks, meta)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return seg, nil
}

// Name implements Store.
func (d *Disk) Name() string { return "disk" }

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Segments returns the current segment-file count (diagnostics and
// compaction tests).
func (d *Disk) Segments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.segs)
}

// PutEvidence implements Store: the batch becomes one new segment file,
// committed atomically; crossing the compaction threshold merges every
// segment into one.
func (d *Disk) PutEvidence(keys []uint64) error {
	if err := checkBatch(keys); err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: disk store is closed")
	}
	if err := d.writeSegment(keys); err != nil {
		return err
	}
	if len(d.segs) > d.compactEvery {
		return d.compact()
	}
	return nil
}

// writeSegment encodes keys as the next segment and commits it. Caller
// holds mu.
func (d *Disk) writeSegment(keys []uint64) error {
	data, err := encodeSegment(splitBlocks(keys, d.blockKeys))
	if err != nil {
		return err
	}
	seq := d.nextSeq
	path := filepath.Join(d.dir, segFile(seq))
	if err := commitFile(path, data); err != nil {
		return err
	}
	seg := &diskSegment{path: path, seq: seq}
	walkErr := walkSegment(data, func(meta segBlock, _ []uint64) error {
		seg.blocks = append(seg.blocks, meta)
		return nil
	})
	if walkErr != nil {
		return fmt.Errorf("store: re-reading just-written segment: %w", walkErr)
	}
	d.nextSeq++
	d.segs = append(d.segs, seg)
	return nil
}

// compact merges every segment into one deduplicated segment and
// removes the inputs. Crash safety needs no journal: the merged segment
// commits under a NEW sequence number before any input is removed, and
// evidence has set semantics, so a crash at any point leaves a
// directory whose union is unchanged. Caller holds mu.
func (d *Disk) compact() error {
	var merged []uint64
	if err := d.rangeLocked(0, ^uint64(0), func(k uint64) bool {
		merged = append(merged, k)
		return true
	}); err != nil {
		return err
	}
	old := d.segs
	if err := d.writeSegment(merged); err != nil {
		return err
	}
	d.segs = d.segs[len(old):]
	for _, seg := range old {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("store: removing compacted segment: %w", err)
		}
	}
	d.cache.clear()
	return nil
}

// blockKeysAt loads one block's keys, via the cache.
func (d *Disk) blockKeysAt(seg *diskSegment, bi int) ([]uint64, error) {
	meta := seg.blocks[bi]
	if keys, ok := d.cache.get(seg.path, meta.off); ok {
		return keys, nil
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload := make([]byte, meta.plen)
	if _, err := f.ReadAt(payload, int64(meta.off)); err != nil {
		return nil, fmt.Errorf("store: reading block of %s: %w", filepath.Base(seg.path), err)
	}
	var prevMax uint64
	if bi > 0 {
		prevMax = seg.blocks[bi-1].max
	}
	keys, err := decodeBlock(payload, bi, meta, prevMax)
	if err != nil {
		return nil, err
	}
	d.cache.put(seg.path, meta.off, keys)
	return keys, nil
}

// HasEvidence implements Store.
func (d *Disk) HasEvidence(key uint64) (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for i := len(d.segs) - 1; i >= 0; i-- {
		seg := d.segs[i]
		bi := sort.Search(len(seg.blocks), func(j int) bool { return seg.blocks[j].max >= key })
		if bi == len(seg.blocks) || seg.blocks[bi].min > key {
			continue
		}
		keys, err := d.blockKeysAt(seg, bi)
		if err != nil {
			return false, err
		}
		ki := sort.Search(len(keys), func(j int) bool { return keys[j] >= key })
		if ki < len(keys) && keys[ki] == key {
			return true, nil
		}
	}
	return false, nil
}

// segCursor streams one segment's keys within [lo, hi).
type segCursor struct {
	d    *Disk
	seg  *diskSegment
	hi   uint64
	bi   int
	keys []uint64
	ki   int
	cur  uint64
	done bool
}

func (c *segCursor) advance() error {
	for {
		if c.keys != nil && c.ki < len(c.keys) {
			k := c.keys[c.ki]
			c.ki++
			if k >= c.hi {
				c.done = true
				return nil
			}
			c.cur = k
			return nil
		}
		if c.bi >= len(c.seg.blocks) {
			c.done = true
			return nil
		}
		keys, err := c.d.blockKeysAt(c.seg, c.bi)
		if err != nil {
			return err
		}
		c.bi++
		c.keys, c.ki = keys, 0
	}
}

// newSegCursor positions a cursor at the first key >= lo.
func (d *Disk) newSegCursor(seg *diskSegment, lo, hi uint64) (*segCursor, error) {
	c := &segCursor{d: d, seg: seg, hi: hi}
	c.bi = sort.Search(len(seg.blocks), func(j int) bool { return seg.blocks[j].max >= lo })
	if c.bi == len(seg.blocks) {
		c.done = true
		return c, nil
	}
	keys, err := d.blockKeysAt(seg, c.bi)
	if err != nil {
		return nil, err
	}
	c.bi++
	c.keys = keys
	c.ki = sort.Search(len(keys), func(j int) bool { return keys[j] >= lo })
	if err := c.advance(); err != nil {
		return nil, err
	}
	return c, nil
}

// EvidenceRange implements Store: an ascending, deduplicated k-way
// merge across the (typically few, post-compaction one) segments.
func (d *Disk) EvidenceRange(lo, hi uint64, yield func(uint64) bool) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rangeLocked(lo, hi, yield)
}

func (d *Disk) rangeLocked(lo, hi uint64, yield func(uint64) bool) error {
	cursors := make([]*segCursor, 0, len(d.segs))
	for _, seg := range d.segs {
		c, err := d.newSegCursor(seg, lo, hi)
		if err != nil {
			return err
		}
		if !c.done {
			cursors = append(cursors, c)
		}
	}
	for {
		var best *segCursor
		for _, c := range cursors {
			if c.done {
				continue
			}
			if best == nil || c.cur < best.cur {
				best = c
			}
		}
		if best == nil {
			return nil
		}
		k := best.cur
		for _, c := range cursors {
			for !c.done && c.cur == k {
				if err := c.advance(); err != nil {
					return err
				}
			}
		}
		if !yield(k) {
			return nil
		}
	}
}

// EvidenceLen implements Store (an exact, merged distinct count).
func (d *Disk) EvidenceLen() (int, error) {
	n := 0
	err := d.EvidenceRange(0, ^uint64(0), func(uint64) bool { n++; return true })
	return n, err
}

// ClearEvidence implements Store.
func (d *Disk) ClearEvidence() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, seg := range d.segs {
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("store: clearing evidence: %w", err)
		}
	}
	d.segs = nil
	d.cache.clear()
	return nil
}

// blobPath maps a blob to its file, validating both path components.
func (d *Disk) blobPath(kind, name string) (string, error) {
	if err := checkBlobName(kind); err != nil {
		return "", err
	}
	if err := checkBlobName(name); err != nil {
		return "", err
	}
	return filepath.Join(d.dir, "blob", kind, name), nil
}

// SaveBlob implements Store (tmp + fsync + rename, like everything
// else here).
func (d *Disk) SaveBlob(kind, name string, data []byte) error {
	path, err := d.blobPath(kind, name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: blob dir: %w", err)
	}
	return commitFile(path, data)
}

// OpenBlob implements Store.
func (d *Disk) OpenBlob(kind, name string) ([]byte, error) {
	path, err := d.blobPath(kind, name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: blob %s/%s: %w", kind, name, ErrNotFound)
	}
	return data, err
}

// ListBlobs implements Store.
func (d *Disk) ListBlobs(kind string) ([]string, error) {
	if err := checkBlobName(kind); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(d.dir, "blob", kind))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Flush implements Store. Commits are already synchronous (fsync before
// rename), so there is nothing buffered to push.
func (d *Disk) Flush() error { return nil }

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.cache.clear()
	return nil
}

// commitFile durably replaces path with data: write a sibling temp
// file, fsync it, rename over path, fsync the directory — the idiom the
// checkpoint trail and the service journal already use, so a kill at
// any instant leaves either the old file or the new one, never a tear.
func commitFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", filepath.Base(path), err)
	}
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// blockCache is a tiny FIFO cache of decoded blocks, keyed by
// (segment path, payload offset). Point lookups on a hot range keep
// re-decoding the same block otherwise.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	order []blockKey
	m     map[blockKey][]uint64
}

type blockKey struct {
	path string
	off  int
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{cap: capacity, m: map[blockKey][]uint64{}}
}

func (c *blockCache) get(path string, off int) ([]uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys, ok := c.m[blockKey{path, off}]
	return keys, ok
}

func (c *blockCache) put(path string, off int, keys []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{path, off}
	if _, dup := c.m[k]; dup {
		return
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.order = append(c.order, k)
	c.m[k] = keys
}

func (c *blockCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order = nil
	c.m = map[blockKey][]uint64{}
}
