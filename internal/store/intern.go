package store

import "sync"

// Interner deduplicates strings: equal strings share one backing
// allocation. The million-record presets repeat author names, venue
// fragments, and q-grams heavily; interning record fields keeps the
// resident set proportional to the vocabulary instead of the corpus.
// Safe for concurrent use.
type Interner struct {
	mu sync.Mutex
	m  map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: map[string]string{}}
}

// Intern returns a canonical copy of s: the first caller's string is
// kept, every later equal string returns the same backing data. The
// empty string is returned as-is.
func (in *Interner) Intern(s string) string {
	if s == "" {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.m[s]; ok {
		return c
	}
	// Clone so the canonical copy never pins a larger buffer the
	// argument was sliced from.
	c := string(append([]byte(nil), s...))
	in.m[c] = c
	return c
}

// Len returns the number of distinct strings interned.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}
