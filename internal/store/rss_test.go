package store_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/store"
)

// The bounded-RSS scale harness: a million-reference corpus is matched
// end to end in a child process per backend, and the parent reads each
// child's peak resident set from the kernel (wait4 rusage). The disk
// store must finish under an absolute bound that the mem store exceeds —
// the separation IS the larger-than-RAM contract, measured rather than
// claimed.
//
// The workload is deliberately an evidence-volume upper bound, not a
// similarity model: the cover is a chain of 128-reference blocks
// overlapping by one reference, and the matcher declares every
// candidate pair in a block a match — but only once the previous
// block's boundary pair is in evidence (periodic seed blocks
// self-start). Matching therefore propagates as SMP waves over ~100
// rounds, pushing ~66M evidence keys through the store in small
// per-round deltas. That round structure matters for the measurement:
// a single all-at-once round would buffer the entire evidence set in
// transient reducer state identically under both backends, hiding the
// stores' own footprint; with accumulation spread over many rounds the
// peak is the ACCUMULATED state, which is exactly where the backends
// differ. Both children hold the same corpus
// and the same in-run M+ set resident; the measured difference is the
// store backend's own footprint.

const (
	// envScaleRun gates the parent: the harness generates a ~1M-reference
	// corpus twice and wants a few GB of headroom, so it only runs when
	// asked for.
	envScaleRun = "STORE_SCALE_TEST"
	// envChildBackend marks a process as the workload child and names its
	// backend.
	envChildBackend = "STORE_RSS_CHILD"
	// envChildDir roots the child's disk store.
	envChildDir = "STORE_RSS_DIR"
	// envScale overrides the corpus scale (default 1.0 ≈ 1M references).
	// The absolute RSS bound is only asserted at the default scale.
	envScale = "STORE_RSS_SCALE"

	// rssBlockRefs is the chained-block neighborhood size: C(128,2) =
	// 8128 candidate pairs per block, ~66M evidence keys over the
	// million-reference corpus — large enough that the store backend's
	// own footprint dominates the corpus and framework baseline in the
	// measurement. Adjacent blocks overlap by one reference so a
	// block's boundary pair can trigger its successor.
	rssBlockRefs = 128

	// rssWaveStride seeds every Nth block as a self-starting wave
	// front: the run finishes in ~rssWaveStride rounds, each
	// contributing ~(blocks/stride) block deltas, keeping per-round
	// reducer buffering small relative to the accumulated evidence.
	rssWaveStride = 64

	// diskRSSBoundBytes separates the backends at scale 1.0: the disk
	// child must peak under it, the mem child above it. Calibrated on
	// the reference workload (~66M evidence keys): disk peaks ≈5.2 GiB
	// (the corpus, the cover, and the round driver's own in-RAM M+ set,
	// which both backends pay), mem ≈6.7 GiB (all of that plus the mem
	// store's duplicate evidence map). The bound sits at the midpoint,
	// ~13% from either side.
	diskRSSBoundBytes = 5900 << 20
)

func rssScale() float64 {
	if s := os.Getenv(envScale); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1.0
}

// runMillionWorkload generates the million-like corpus and matches it
// with the named backend mirroring the run's evidence.
func runMillionWorkload(backend, dir string, scale float64) (refs, evidence int, err error) {
	ds, err := datagen.Generate(datagen.MillionLike(scale, 1))
	if err != nil {
		return 0, 0, err
	}
	n := len(ds.Refs)

	// Chain of blocks overlapping by one reference: block k covers
	// [k*(B-1), k*(B-1)+B-1], so every pair belongs to exactly one
	// block and pair (s-1, s) of block k-1 straddles into block k's
	// first entity s.
	const step = rssBlockRefs - 1
	sets := make([][]core.EntityID, 0, n/step+1)
	for lo := 0; lo < n-1; lo += step {
		hi := min(lo+rssBlockRefs, n)
		set := make([]core.EntityID, 0, hi-lo)
		for e := lo; e < hi; e++ {
			set = append(set, core.EntityID(e))
		}
		sets = append(sets, set)
	}
	cover := core.NewCover(n, sets)

	allPairs := func(entities []core.EntityID) []core.Pair {
		out := make([]core.Pair, 0, len(entities)*(len(entities)-1)/2)
		for i, a := range entities {
			for _, b := range entities[i+1:] {
				out = append(out, core.MakePair(a, b))
			}
		}
		return out
	}
	// A block matches all of its pairs once triggered: seed blocks
	// (every rssWaveStride-th) self-start, the rest wait for the
	// previous block's boundary pair (s-1, s) to appear in evidence.
	// The trigger is monotone in pos, so the matcher stays
	// well-behaved, and each SMP round advances every wave front by
	// one block.
	m := core.MatcherFunc{
		MatchFn: func(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
			s := entities[0]
			for _, e := range entities[1:] {
				if e < s {
					s = e
				}
			}
			if k := int(s) / step; k%rssWaveStride != 0 && !pos.Has(core.MakePair(s-1, s)) {
				return core.PairSet{}
			}
			return core.NewPairSet(allPairs(entities)...)
		},
		CandidatesFn: allPairs,
	}

	var opts []store.Option
	if dir != "" {
		opts = append(opts, store.WithDir(dir))
	}
	st, err := store.Open(backend, opts...)
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()

	cfg := core.Config{
		Cover:       cover,
		Matcher:     m,
		Parallelism: runtime.GOMAXPROCS(0),
		Evidence:    st,
	}
	res, err := core.RunBackend(context.Background(), cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{})
	if err != nil {
		return 0, 0, err
	}
	got, err := st.EvidenceLen()
	if err != nil {
		return 0, 0, err
	}
	if got != res.Matches.Len() {
		return 0, 0, fmt.Errorf("store holds %d evidence keys, run produced %d", got, res.Matches.Len())
	}
	// The corpus stays resident for the whole match in a real pipeline;
	// keep it resident here too so the measurement reflects that.
	runtime.KeepAlive(ds)
	return n, got, nil
}

// TestMillionStoreRSSChild is the workload child. It is a no-op unless
// re-executed by the parent with the child environment set.
func TestMillionStoreRSSChild(t *testing.T) {
	backend := os.Getenv(envChildBackend)
	if backend == "" {
		t.Skip("workload child; driven by TestMillionStoreRSS")
	}
	refs, evidence, err := runMillionWorkload(backend, os.Getenv(envChildDir), rssScale())
	if err != nil {
		t.Fatal(err)
	}
	// The parent greps for this receipt to distinguish a completed
	// workload from a vacuously-passing child run.
	fmt.Printf("rss-child: backend=%s refs=%d evidence=%d\n", backend, refs, evidence)
}

// childMaxRSS re-executes the test binary as a workload child for the
// backend and returns its peak resident set in bytes.
func childMaxRSS(tb testing.TB, backend, dir string) int64 {
	tb.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestMillionStoreRSSChild$", "-test.v")
	// A fixed, tighter GC target keeps each child's peak-over-live slack
	// small and equal across backends, so the measured separation is the
	// stores' footprint rather than collector timing.
	cmd.Env = append(os.Environ(), envChildBackend+"="+backend, "GOGC=50")
	if dir != "" {
		cmd.Env = append(cmd.Env, envChildDir+"="+dir)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		tb.Fatalf("%s workload child: %v\n%s", backend, err, out)
	}
	if !bytes.Contains(out, []byte("rss-child: backend="+backend)) {
		tb.Fatalf("%s workload child ran nothing:\n%s", backend, out)
	}
	ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		tb.Skipf("no rusage for child processes on %s", runtime.GOOS)
	}
	return ru.Maxrss << 10 // ru_maxrss is KiB on Linux
}

// TestMillionStoreRSS matches the ~1M-reference corpus under both
// backends and asserts the separation: disk peaks under
// diskRSSBoundBytes, mem above it. Gated behind STORE_SCALE_TEST=1.
func TestMillionStoreRSS(t *testing.T) {
	if os.Getenv(envScaleRun) == "" {
		t.Skipf("set %s=1 to run the million-reference bounded-RSS test (several GB of RAM, a few minutes)", envScaleRun)
	}
	mem := childMaxRSS(t, "mem", "")
	disk := childMaxRSS(t, "disk", t.TempDir())
	t.Logf("peak RSS: mem=%d MiB disk=%d MiB bound=%d MiB",
		mem>>20, disk>>20, int64(diskRSSBoundBytes)>>20)

	if scale := rssScale(); scale != 1.0 {
		// Reduced-scale smoke: the absolute bound is calibrated for the
		// full corpus, so only the ordering is meaningful here.
		if disk >= mem {
			t.Errorf("disk store peaked at %d MiB, not under mem's %d MiB", disk>>20, mem>>20)
		}
		return
	}
	if disk >= diskRSSBoundBytes {
		t.Errorf("disk store peaked at %d MiB, over the %d MiB bound", disk>>20, int64(diskRSSBoundBytes)>>20)
	}
	if mem <= diskRSSBoundBytes {
		t.Errorf("mem store peaked at %d MiB, under the %d MiB bound — the bound no longer separates the backends", mem>>20, int64(diskRSSBoundBytes)>>20)
	}
}

// BenchmarkMillionStoreRSS reports each backend's peak RSS over the
// million-reference workload as a maxrss-mb metric for the bench
// trajectory. Each iteration is one full child run.
func BenchmarkMillionStoreRSS(b *testing.B) {
	for _, backend := range []string{"mem", "disk"} {
		b.Run(backend, func(b *testing.B) {
			dir := ""
			if backend == "disk" {
				dir = b.TempDir()
			}
			var rss int64
			for i := 0; i < b.N; i++ {
				rss = childMaxRSS(b, backend, dir)
			}
			b.ReportMetric(float64(rss)/(1<<20), "maxrss-mb")
		})
	}
}
