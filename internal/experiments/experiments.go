// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and Appendix C): the accuracy figures 3(a)–3(c), the
// running-time figures 3(d)–3(f), the grid Table 1, and the RULES
// figures 4(a)–4(c). Each experiment returns a Table whose rows mirror
// the series the paper plots; cmd/embench prints them and bench_test.go
// wraps each in a testing.B benchmark.
//
// Absolute numbers differ from the paper (synthetic corpora, an exact
// graph-cut MLN solver instead of Alchemy, a simulated grid), but the
// shape claims are preserved and asserted in EXPERIMENTS.md. For the
// timing figures the harness reports, next to measured wall time, a
// *modeled* inference time Σ cost(active) over all neighborhood
// evaluations, where active is the number of undecided matching decisions
// — the quantity §6.2 identifies as the driver of SMP/MMP's speed
// advantage — and cost(m) = m^CostExponent. This models the steeply
// superlinear per-neighborhood cost of the paper's Alchemy-based matcher,
// which our polynomial exact solver deliberately does not have.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	cem "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/grid"
	"repro/internal/mln"
)

// Config scales and seeds the experiment suite.
type Config struct {
	// Scale multiplies corpus sizes (1.0 ≈ a few thousand references).
	Scale float64
	// Seed drives dataset generation and grid assignment.
	Seed int64
	// Machines is the simulated grid width for Table 1 (the paper: 30).
	Machines int
	// RoundOverhead is the per-round scheduling cost of the simulated
	// grid (mapper/reducer setup on Hadoop).
	RoundOverhead time.Duration
	// CostExponent is the exponent of the modeled per-neighborhood
	// inference cost cost(m) = m^CostExponent (Alchemy-like superlinear
	// growth; the paper's Figure 3(f) shows near-exponential behavior).
	CostExponent float64
	// Fig3fSteps is the number of prefix sizes swept in Figure 3(f).
	Fig3fSteps int
	// Parallelism bounds concurrent neighborhood evaluations in every
	// scheme run (0/1 = serial; timing columns are only meaningful
	// serially, accuracy columns are parallelism-invariant).
	Parallelism int
}

// Default returns a configuration sized for interactive runs.
func Default() Config {
	return Config{
		Scale:         0.5,
		Seed:          42,
		Machines:      30,
		RoundOverhead: 500 * time.Millisecond,
		CostExponent:  2.0,
		Fig3fSteps:    8,
	}
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// modeledCost evaluates the inference-cost model over a run's recorded
// active sizes: Σ active^exp, in abstract cost units.
func modeledCost(sizes []int, exponent float64) float64 {
	total := 0.0
	for _, m := range sizes {
		if m <= 0 {
			continue
		}
		total += math.Pow(float64(m), exponent)
	}
	return total
}

func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }
func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
func fmtCost(c float64) string { return fmt.Sprintf("%.2e", c) }

// setup builds a fully wired experiment for a corpus kind.
func setup(kind cem.DatasetKind, cfg Config) (*cem.Experiment, error) {
	d := cem.NewDataset(kind, cfg.Scale, cfg.Seed)
	return cem.New(d)
}

// run executes one scheme through the Runner API, propagating the
// configured parallelism.
func run(exp *cem.Experiment, matcher string, s cem.Scheme, cfg Config, opts ...cem.RunnerOption) (*cem.Result, error) {
	opts = append(opts, cem.WithParallelism(cfg.Parallelism))
	r, err := exp.Runner(matcher, opts...)
	if err != nil {
		return nil, err
	}
	return r.Run(context.Background(), s)
}

// accuracyTable runs the given schemes with a matcher and tabulates
// P/R/F1 (figures 3a, 3b, 4a, 4b).
func accuracyTable(id, title string, kind cem.DatasetKind, matcher cem.MatcherKind, schemes []cem.Scheme, cfg Config) (*Table, error) {
	exp, err := setup(kind, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"scheme", "P", "R", "F1", "tp", "fp", "fn"},
	}
	// RULES is evaluated with transitive closure applied at the end of
	// the run, exactly as Appendix B prescribes; the MLN rule set has no
	// transitivity rule, so its output is scored raw.
	var ropts []cem.RunnerOption
	if matcher == cem.MatcherRules {
		ropts = append(ropts, cem.WithTransitiveClosure())
	}
	for _, s := range schemes {
		res, err := run(exp, matcher, s, cfg, ropts...)
		if err != nil {
			return nil, err
		}
		r := exp.Evaluate(res)
		t.Rows = append(t.Rows, []string{
			string(s), fmtF(r.PRF.Precision), fmtF(r.PRF.Recall), fmtF(r.PRF.F1),
			fmt.Sprint(r.PRF.TP), fmt.Sprint(r.PRF.FP), fmt.Sprint(r.PRF.FN),
		})
	}
	st := exp.Dataset.ComputeStats()
	cs := exp.Cover.ComputeStats()
	t.Notes = append(t.Notes, fmt.Sprintf("dataset: %s", st))
	t.Notes = append(t.Notes, fmt.Sprintf("cover: %s; matching decisions: %d", cs, len(exp.Candidates)))
	return t, nil
}

// Fig3a: precision/recall/F1 of NO-MP, SMP, MMP and UB for the MLN
// matcher on the HEPTH-like corpus.
func Fig3a(cfg Config) (*Table, error) {
	return accuracyTable("Fig 3(a)", "P/R/F1, MLN matcher, HEPTH-like corpus",
		cem.HEPTH, cem.MatcherMLN,
		[]cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP, cem.SchemeUB}, cfg)
}

// Fig3b: the same on the DBLP-like corpus.
func Fig3b(cfg Config) (*Table, error) {
	return accuracyTable("Fig 3(b)", "P/R/F1, MLN matcher, DBLP-like corpus",
		cem.DBLP, cem.MatcherMLN,
		[]cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP, cem.SchemeUB}, cfg)
}

// Fig3c: completeness of the message-passing schemes. The paper can only
// lower-bound completeness via the UB oracle; our exact solver also
// affords the FULL run, so both references are reported.
func Fig3c(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig 3(c)",
		Title:  "completeness of message-passing schemes (MLN matcher)",
		Header: []string{"corpus", "scheme", "vs UB", "vs FULL", "sound vs FULL"},
	}
	for _, kind := range []cem.DatasetKind{cem.HEPTH, cem.DBLP} {
		exp, err := setup(kind, cfg)
		if err != nil {
			return nil, err
		}
		ub, err := run(exp, cem.MatcherMLN, cem.SchemeUB, cfg)
		if err != nil {
			return nil, err
		}
		full, err := run(exp, cem.MatcherMLN, cem.SchemeFull, cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
			res, err := run(exp, cem.MatcherMLN, s, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				string(kind), string(s),
				fmtF(eval.Completeness(res.Matches, ub.Matches)),
				fmtF(eval.Completeness(res.Matches, full.Matches)),
				fmtF(eval.Soundness(res.Matches, full.Matches)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the paper reports completeness vs UB only (full MLN runs were infeasible);",
		"our exact solver affords FULL, against which MMP should be sound and complete (Thm 4 + §6.1)")
	return t, nil
}

// timeTable runs the schemes and tabulates measured and modeled times
// (figures 3d, 3e).
func timeTable(id, title string, kind cem.DatasetKind, cfg Config) (*Table, error) {
	exp, err := setup(kind, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"scheme", "wall", "matcher", "evals", "active-decisions", "modeled-cost"},
	}
	for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
		res, err := run(exp, cem.MatcherMLN, s, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			string(s),
			fmtMs(res.Stats.Elapsed),
			fmtMs(res.Stats.MatcherTime),
			fmt.Sprint(res.Stats.Evaluations),
			fmt.Sprint(res.Stats.TotalActive()),
			fmtCost(modeledCost(res.Stats.ActiveSizes, cfg.CostExponent)),
		})
	}
	t.Notes = append(t.Notes,
		"modeled-cost = Σ active^"+fmt.Sprint(cfg.CostExponent)+" over neighborhood evaluations: the",
		"paper's Alchemy matcher pays superlinear cost per active decision, so fewer active",
		"decisions (more message passing) means lower total time — Fig 3(d)/(e)'s ordering")
	return t, nil
}

// Fig3d: running-time comparison on HEPTH-like (MLN).
func Fig3d(cfg Config) (*Table, error) {
	return timeTable("Fig 3(d)", "running times, MLN matcher, HEPTH-like corpus", cem.HEPTH, cfg)
}

// Fig3e: running-time comparison on DBLP-like (MLN); an order of
// magnitude cheaper than HEPTH due to much smaller neighborhoods.
func Fig3e(cfg Config) (*Table, error) {
	return timeTable("Fig 3(e)", "running times, MLN matcher, DBLP-like corpus", cem.DBLP, cfg)
}

// Fig3f: scalability sweep — total time of FULL EM on the union of the
// first k neighborhoods (superlinear blow-up) versus MMP on the same
// prefix (linear in k).
func Fig3f(cfg Config) (*Table, error) {
	exp, err := setup(cem.HEPTH, cfg)
	if err != nil {
		return nil, err
	}
	n := exp.Cover.Len()
	steps := cfg.Fig3fSteps
	if steps < 2 {
		steps = 2
	}
	t := &Table{
		ID:     "Fig 3(f)",
		Title:  "running time vs number of neighborhoods (MLN, HEPTH-like)",
		Header: []string{"k", "decisions", "fullEM-wall", "fullEM-cost", "mmp-wall", "mmp-cost"},
	}
	// Canopy construction front-loads the largest neighborhoods (early
	// seeds absorb the big name-clash groups), so prefixes of the raw
	// order are unrepresentative. Shuffle deterministically; the paper's
	// own curve shows large neighborhoods scattered through the order
	// ("whenever a new large neighborhood is included, the running time
	// shows a small jump").
	sets := make([][]core.EntityID, n)
	copy(sets, exp.Cover.Sets)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(n, func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
	shuffled := core.NewCover(exp.Cover.NumEntities, sets)

	// Per-neighborhood decision sets, so each prefix's matching decisions
	// — the paper's unit of work — accumulate without double counting.
	perNbhd := make([][]core.Pair, n)
	for i, set := range shuffled.Sets {
		perNbhd[i] = exp.MLN.Candidates(set)
	}
	seen := core.NewPairSet()
	decisionsAt := make([]int, n+1)
	for i := 0; i < n; i++ {
		for _, p := range perNbhd[i] {
			seen.Add(p)
		}
		decisionsAt[i+1] = seen.Len()
	}
	// Geometric prefix sizes (n/2^(steps-1), …, n/2, n): the interesting
	// superlinear growth happens early, before the heavy-tailed decision
	// distribution saturates.
	for s := 1; s <= steps; s++ {
		k := n >> (steps - s)
		if k < 1 {
			k = 1
		}
		prefix := shuffled.Sets[:k]
		sub := core.NewCover(exp.Cover.NumEntities, prefix)
		cfgCore := core.Config{Cover: sub, Matcher: exp.MLN, Relation: exp.Dataset.Coauthor()}

		// FULL EM over the union of the prefix's entities: one inference
		// problem spanning all the prefix's matching decisions.
		union := map[core.EntityID]bool{}
		for _, set := range prefix {
			for _, e := range set {
				union[e] = true
			}
		}
		entities := make([]core.EntityID, 0, len(union))
		for e := range union {
			entities = append(entities, e)
		}
		fullStart := time.Now()
		exp.MLN.Match(entities, nil, nil)
		fullWall := time.Since(fullStart)
		fullCost := modeledCost([]int{decisionsAt[k]}, cfg.CostExponent)

		mmp, err := core.MMP(context.Background(), cfgCore)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(decisionsAt[k]),
			fmtMs(fullWall),
			fmtCost(fullCost),
			fmtMs(mmp.Stats.Elapsed),
			fmtCost(modeledCost(mmp.Stats.ActiveSizes, cfg.CostExponent)),
		})
	}
	t.Notes = append(t.Notes,
		"fullEM treats the first k neighborhoods as ONE inference problem over all their",
		"matching decisions: modeled cost grows as decisions^exp (superlinear in k), while",
		"MMP's cost stays linear in k — the Fig 3(f) separation")
	return t, nil
}

// Table1: grid execution of DBLP-BIG-like — simulated single-machine vs
// G-machine times and the resulting speedup per scheme.
func Table1(cfg Config) (*Table, error) {
	d := cem.NewDataset(cem.DBLPBig, cfg.Scale, cfg.Seed)
	exp, err := cem.New(d)
	if err != nil {
		return nil, err
	}
	runner, err := exp.Runner(cem.MatcherMLN, cem.WithParallelism(cfg.Parallelism))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	// Simulated service times follow the Alchemy-like cost model (the
	// paper's single-machine runs took hours on DBLP-BIG; our exact
	// solver is orders of magnitude faster, so measured times would be
	// dominated by scheduling overhead instead of inference).
	unit := float64(time.Millisecond)
	g := grid.Config{
		Machines:      cfg.Machines,
		RoundOverhead: cfg.RoundOverhead,
		Seed:          cfg.Seed,
		ServiceModel: func(active int) time.Duration {
			return time.Duration(unit * math.Pow(float64(active), cfg.CostExponent))
		},
	}
	t := &Table{
		ID:     "Table 1",
		Title:  fmt.Sprintf("grid running times, DBLP-BIG-like, %d machines", cfg.Machines),
		Header: []string{"scheme", "single-machine", "grid", "speedup", "rounds", "jobs"},
	}
	runs := []struct {
		name string
		run  func() (*grid.Result, error)
	}{
		{"NO-MP", func() (*grid.Result, error) { return runner.RunGrid(ctx, cem.SchemeNoMP, g) }},
		{"SMP", func() (*grid.Result, error) { return runner.RunGrid(ctx, cem.SchemeSMP, g) }},
		{"MMP", func() (*grid.Result, error) { return runner.RunGrid(ctx, cem.SchemeMMP, g) }},
	}
	for _, r := range runs {
		res, err := r.run()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			res.SimulatedSingleTime.Round(time.Millisecond).String(),
			res.SimulatedGridTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", res.Speedup),
			fmt.Sprint(res.Rounds),
			fmt.Sprint(res.JobsRun),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("dataset: %s", d.ComputeStats()),
		"speedup < machine count: random job assignment skews per-machine load and every",
		"round pays a fixed scheduling overhead — the paper's explanation for 11× on 30 machines")
	return t, nil
}

// Fig4a: RULES accuracy on HEPTH-like (NO-MP, SMP, FULL).
func Fig4a(cfg Config) (*Table, error) {
	return accuracyTable("Fig 4(a)", "P/R/F1, RULES matcher, HEPTH-like corpus",
		cem.HEPTH, cem.MatcherRules,
		[]cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull}, cfg)
}

// Fig4b: RULES accuracy on DBLP-like.
func Fig4b(cfg Config) (*Table, error) {
	return accuracyTable("Fig 4(b)", "P/R/F1, RULES matcher, DBLP-like corpus",
		cem.DBLP, cem.MatcherRules,
		[]cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull}, cfg)
}

// Fig4c: RULES running times on both corpora. RULES is a fast linear
// matcher, so — unlike MLN — SMP does not beat NO-MP, and FULL is cheap.
func Fig4c(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig 4(c)",
		Title:  "running times, RULES matcher",
		Header: []string{"corpus", "scheme", "wall", "matcher", "evals"},
	}
	for _, kind := range []cem.DatasetKind{cem.HEPTH, cem.DBLP} {
		exp, err := setup(kind, cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull} {
			res, err := run(exp, cem.MatcherRules, s, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				string(kind), string(s),
				fmtMs(res.Stats.Elapsed),
				fmtMs(res.Stats.MatcherTime),
				fmt.Sprint(res.Stats.Evaluations),
			})
		}
	}
	t.Notes = append(t.Notes,
		"RULES has linear complexity, so savings from smaller active neighborhoods do not",
		"offset revisit costs: SMP ≥ NO-MP in time (Appendix C)")
	return t, nil
}

// AblationCover sweeps the cover-construction knob DESIGN.md calls out:
// how much relational context each neighborhood absorbs (MaxAligned
// aligned partner pairs; FullBoundary = everything). It demonstrates the
// trade the paper's Figure 3(d) sits on: high-overlap covers duplicate
// inference work, so NO-MP pays more than SMP/MMP (the paper's
// "messages reduce active neighborhood size" speed-up), while
// low-overlap covers fragment collective cliques, so message passing is
// what buys *recall* instead.
func AblationCover(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "Ablation",
		Title: "cover context vs accuracy and modeled cost (MLN, HEPTH-like)",
		Header: []string{"cover", "scheme", "R", "P",
			"active-decisions", "modeled-cost"},
	}
	type variant struct {
		name       string
		maxAligned int
		full       bool
	}
	variants := []variant{
		{"edge-greedy", 0, false},
		{"aligned-1", 1, false},
		{"aligned-2", 2, false},
		{"full-boundary", 0, true},
	}
	d := cem.NewDataset(cem.HEPTH, cfg.Scale, cfg.Seed)
	for _, v := range variants {
		opts := cem.DefaultOptions()
		opts.Canopy.MaxAligned = v.maxAligned
		opts.Canopy.FullBoundary = v.full
		exp, err := cem.Setup(d, opts)
		if err != nil {
			return nil, err
		}
		for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
			res, err := run(exp, cem.MatcherMLN, s, cfg)
			if err != nil {
				return nil, err
			}
			r := exp.Evaluate(res)
			t.Rows = append(t.Rows, []string{
				v.name, string(s), fmtF(r.PRF.Recall), fmtF(r.PRF.Precision),
				fmt.Sprint(res.Stats.TotalActive()),
				fmtCost(modeledCost(res.Stats.ActiveSizes, cfg.CostExponent)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"more shared context (aligned-2, full-boundary): NO-MP's modeled cost rises above",
		"SMP/MMP (the Fig 3(d) inversion) but the recall gaps close; fragmented covers",
		"(edge-greedy, aligned-1) show the opposite: message passing buys recall")
	return t, nil
}

// LearnedWeights trains the MLN rule weights with the structured
// perceptron (our substitution for the paper's Alchemy weight learning,
// Appendix B) on one corpus and evaluates them against the paper's
// learned weights on a held-out corpus from the same distribution.
func LearnedWeights(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Learning",
		Title:  "paper weights vs perceptron-learned weights (MLN, SMP)",
		Header: []string{"corpus", "weights", "P", "R", "F1"},
	}
	for _, kind := range []cem.DatasetKind{cem.HEPTH, cem.DBLP} {
		train, err := setup(kind, cfg)
		if err != nil {
			return nil, err
		}
		learned, err := mln.Learn(train.MLN, train.Cover, train.Truth, mln.DefaultLearnConfig())
		if err != nil {
			return nil, err
		}
		// Held-out corpus: same distribution, different seed.
		heldCfg := cfg
		heldCfg.Seed = cfg.Seed + 1000
		held, err := setup(kind, heldCfg)
		if err != nil {
			return nil, err
		}
		for _, variant := range []struct {
			name string
			w    mln.Weights
		}{
			{"paper", mln.PaperWeights()},
			{"learned", learned},
		} {
			if err := held.MLN.SetWeights(variant.w); err != nil {
				return nil, err
			}
			res, err := run(held, cem.MatcherMLN, cem.SchemeSMP, cfg)
			if err != nil {
				return nil, err
			}
			r := held.Evaluate(res)
			t.Rows = append(t.Rows, []string{
				string(kind), variant.name,
				fmtF(r.PRF.Precision), fmtF(r.PRF.Recall), fmtF(r.PRF.F1),
			})
		}
		if err := held.MLN.SetWeights(mln.PaperWeights()); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"weights trained on one corpus, evaluated on a held-out corpus of the same kind;",
		"the paper trained with Alchemy — the perceptron is our documented substitution")
	return t, nil
}

// Scaling sweeps the corpus size and reports how SMP and MMP grow — the
// paper's central scalability claim is time linear in the number of
// neighborhoods (Theorems 3 and 5 plus the §6.2 measurements). Each row
// doubles the scale; near-constant cost/neighborhood columns are the
// linearity evidence.
func Scaling(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "Scaling",
		Title: "scheme cost vs corpus size (MLN, DBLP-like)",
		Header: []string{"scale", "refs", "neighborhoods", "decisions",
			"smp-evals", "smp-cost/nbhd", "mmp-evals", "mmp-cost/nbhd"},
	}
	for _, mult := range []float64{0.5, 1, 2, 4} {
		sub := cfg
		sub.Scale = cfg.Scale * mult
		exp, err := setup(cem.DBLP, sub)
		if err != nil {
			return nil, err
		}
		smp, err := run(exp, cem.MatcherMLN, cem.SchemeSMP, sub)
		if err != nil {
			return nil, err
		}
		mmp, err := run(exp, cem.MatcherMLN, cem.SchemeMMP, sub)
		if err != nil {
			return nil, err
		}
		n := float64(exp.Cover.Len())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2g", sub.Scale),
			fmt.Sprint(exp.Dataset.NumRefs()),
			fmt.Sprint(exp.Cover.Len()),
			fmt.Sprint(len(exp.Candidates)),
			fmt.Sprint(smp.Stats.Evaluations),
			fmt.Sprintf("%.1f", modeledCost(smp.Stats.ActiveSizes, cfg.CostExponent)/n),
			fmt.Sprint(mmp.Stats.Evaluations),
			fmt.Sprintf("%.1f", modeledCost(mmp.Stats.ActiveSizes, cfg.CostExponent)/n),
		})
	}
	t.Notes = append(t.Notes,
		"cost/neighborhood staying ~flat while the corpus quadruples is the linear-",
		"scalability claim of Theorems 3/5: total cost grows with n, not with n²")
	return t, nil
}

// All runs every experiment in paper order, plus the extensions.
func All(cfg Config) ([]*Table, error) {
	runs := []func(Config) (*Table, error){
		Fig3a, Fig3b, Fig3c, Fig3d, Fig3e, Fig3f, Table1, Fig4a, Fig4b, Fig4c,
		AblationCover, LearnedWeights, Scaling,
	}
	out := make([]*Table, 0, len(runs))
	for _, run := range runs {
		t, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
