package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// testConfig is small enough for CI but large enough for stable shapes.
func testConfig() Config {
	cfg := Default()
	cfg.Scale = 0.25
	cfg.Machines = 8
	cfg.RoundOverhead = 10 * time.Millisecond
	cfg.Fig3fSteps = 4
	return cfg
}

// cell parses a float cell.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := tb.Rows[row][col]
	s = strings.TrimSuffix(s, "ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tb.String()
	for _, want := range []string{"T — demo", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestModeledCost(t *testing.T) {
	if got := modeledCost([]int{2, 3}, 2); got != 13 {
		t.Errorf("modeledCost = %v, want 13", got)
	}
	if got := modeledCost([]int{0, -1, 2}, 2); got != 4 {
		t.Errorf("modeledCost with non-positives = %v, want 4", got)
	}
	if got := modeledCost(nil, 2); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

// TestFig3aShape: row order nomp, smp, mmp, ub; recall non-decreasing;
// precision high.
func TestFig3aShape(t *testing.T) {
	tb, err := Fig3a(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	var lastR float64
	for i := 0; i < 3; i++ {
		p, r := cell(t, tb, i, 1), cell(t, tb, i, 2)
		if p < 0.8 {
			t.Errorf("row %d precision %.3f < 0.8", i, p)
		}
		if r < lastR {
			t.Errorf("recall decreased at row %d: %.3f < %.3f", i, r, lastR)
		}
		lastR = r
	}
	if ub := cell(t, tb, 3, 2); ub < lastR {
		t.Errorf("UB recall %.3f below MMP %.3f", ub, lastR)
	}
}

func TestFig3bShape(t *testing.T) {
	tb, err := Fig3b(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lastR float64
	for i := 0; i < 3; i++ {
		if r := cell(t, tb, i, 2); r < lastR {
			t.Errorf("recall decreased at row %d", i)
		} else {
			lastR = r
		}
	}
}

// TestFig3cShape: MMP completeness vs FULL is exactly 1 and everything is
// sound vs FULL.
func TestFig3cShape(t *testing.T) {
	tb, err := Fig3c(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if s := cell(t, tb, i, 4); s < 1 {
			t.Errorf("row %v unsound vs FULL: %.4f", row[:2], s)
		}
		if row[1] == "mmp" {
			if c := cell(t, tb, i, 3); c < 1 {
				t.Errorf("%s MMP completeness vs FULL = %.4f, want 1", row[0], c)
			}
		}
	}
}

// TestFig3dShape: MMP's modeled cost is below SMP's (messages shrink
// active sizes; MMP shrinks them most).
func TestFig3dShape(t *testing.T) {
	tb, err := Fig3d(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var costs []float64
	for i := range tb.Rows {
		v, err := strconv.ParseFloat(tb.Rows[i][5], 64)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, v)
	}
	if !(costs[2] <= costs[1]) {
		t.Errorf("MMP modeled cost %.3e above SMP %.3e", costs[2], costs[1])
	}
}

// TestFig3eShape: DBLP-like totals are much cheaper than HEPTH-like
// (order-of-magnitude observation of §6.2).
func TestFig3eShape(t *testing.T) {
	cfg := testConfig()
	hep, err := Fig3d(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dbl, err := Fig3e(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hepCost, _ := strconv.ParseFloat(hep.Rows[0][5], 64)
	dblCost, _ := strconv.ParseFloat(dbl.Rows[0][5], 64)
	if dblCost*2 > hepCost {
		t.Errorf("DBLP NO-MP modeled cost %.3e not well below HEPTH %.3e", dblCost, hepCost)
	}
}

// TestFig3fShape: FULL EM's modeled cost grows superlinearly with the
// prefix size while MMP's grows about linearly.
func TestFig3fShape(t *testing.T) {
	tb, err := Fig3f(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	kRatio := mustF(t, last[0]) / mustF(t, first[0])
	decRatio := mustF(t, last[1]) / mustF(t, first[1])
	fullRatio := mustF(t, last[3]) / mustF(t, first[3])
	mmpRatio := mustF(t, last[5]) / mustF(t, first[5])
	// FULL EM's cost is superlinear in the number of decisions.
	if fullRatio < decRatio*1.3 {
		t.Errorf("FULL EM cost ratio %.1f not superlinear in decision ratio %.1f", fullRatio, decRatio)
	}
	// MMP's cost stays at most ~linear in the number of neighborhoods.
	if mmpRatio > kRatio {
		t.Errorf("MMP cost ratio %.1f superlinear in neighborhood ratio %.1f", mmpRatio, kRatio)
	}
	// At full scale, FULL EM is the more expensive strategy (and the gap
	// widens with corpus size — the Fig 3(f) separation).
	if mustF(t, last[3]) < mustF(t, last[5]) {
		t.Errorf("at k=n, FULL EM cost %.3e below MMP %.3e", mustF(t, last[3]), mustF(t, last[5]))
	}
}

func mustF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestTable1Shape: positive speedup strictly below the machine count.
func TestTable1Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05 // grid corpus is 8× the dblp recipe
	tb, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		sp := cell(t, tb, i, 3)
		if sp <= 1 || sp > float64(cfg.Machines) {
			t.Errorf("%s speedup %.1f outside (1, %d]", row[0], sp, cfg.Machines)
		}
	}
}

// TestFig4Shape: SMP matches FULL exactly for RULES on both corpora.
func TestFig4Shape(t *testing.T) {
	cfg := testConfig()
	for _, fn := range []func(Config) (*Table, error){Fig4a, Fig4b} {
		tb, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 3 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		// rows: nomp, smp, full — smp and full tp/fp/fn must agree.
		for col := 4; col <= 6; col++ {
			if tb.Rows[1][col] != tb.Rows[2][col] {
				t.Errorf("%s: SMP col %d = %s != FULL %s",
					tb.ID, col, tb.Rows[1][col], tb.Rows[2][col])
			}
		}
		if cell(t, tb, 0, 2) > cell(t, tb, 1, 2) {
			t.Errorf("%s: NO-MP recall above SMP", tb.ID)
		}
	}
}

// TestFig4cShape: FULL is feasible and cheap for RULES.
func TestFig4cShape(t *testing.T) {
	tb, err := Fig4c(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

// TestAblationShape: high-overlap covers invert the NO-MP/SMP cost order.
func TestAblationShape(t *testing.T) {
	tb, err := AblationCover(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]map[string]float64{}
	for i, row := range tb.Rows {
		if costs[row[0]] == nil {
			costs[row[0]] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(tb.Rows[i][5], 64)
		if err != nil {
			t.Fatal(err)
		}
		costs[row[0]][row[1]] = v
	}
	fb := costs["full-boundary"]
	if !(fb["smp"] < fb["nomp"]) {
		t.Errorf("full-boundary: SMP cost %.3e not below NO-MP %.3e (Fig 3(d) inversion)",
			fb["smp"], fb["nomp"])
	}
}

// TestAll exercises the full suite end to end at a tiny scale.
func TestAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	cfg := testConfig()
	cfg.Scale = 0.1
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("tables = %d, want 13", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
	}
}

// TestLearnedWeightsShape: perceptron-learned weights must be competitive
// with (on our synthetic corpora: better than) the paper's Alchemy-learned
// weights on held-out data.
func TestLearnedWeightsShape(t *testing.T) {
	tb, err := LearnedWeights(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// Rows come in (paper, learned) pairs per corpus.
	for i := 0; i < len(tb.Rows); i += 2 {
		paperF1 := cell(t, tb, i, 4)
		learnedF1 := cell(t, tb, i+1, 4)
		if learnedF1 < 0.7*paperF1 {
			t.Errorf("%s: learned F1 %.3f far below paper %.3f",
				tb.Rows[i][0], learnedF1, paperF1)
		}
	}
}

// TestScalingShape: per-neighborhood cost must stay near-flat while the
// corpus grows 8x (linear total growth, Theorems 3/5).
func TestScalingShape(t *testing.T) {
	cfg := testConfig()
	tb, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	firstSMP := cell(t, tb, 0, 5)
	lastSMP := cell(t, tb, len(tb.Rows)-1, 5)
	if firstSMP > 0 && lastSMP > 4*firstSMP {
		t.Errorf("SMP cost/neighborhood grew %.1f -> %.1f over an 8x corpus (superlinear)",
			firstSMP, lastSMP)
	}
	firstMMP := cell(t, tb, 0, 7)
	lastMMP := cell(t, tb, len(tb.Rows)-1, 7)
	if firstMMP > 0 && lastMMP > 4*firstMMP {
		t.Errorf("MMP cost/neighborhood grew %.1f -> %.1f over an 8x corpus (superlinear)",
			firstMMP, lastMMP)
	}
}
