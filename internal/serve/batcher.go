package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	cem "repro"
)

// ErrClosed is returned by Enqueue once Close has begun: the batcher no
// longer accepts requests. Producers racing a shutdown get this sentinel
// (match with errors.Is) — never a panic on the closed queue, and never
// a done channel that no flush will ever signal.
var ErrClosed = errors.New("serve: batcher is shut down")

// Batcher coalesces asynchronously arriving ingest requests into delta
// batches and feeds them to the committer strictly serially. A batch is
// flushed as soon as it holds MaxBatch records (size bound) or as soon
// as its oldest request has waited MaxDelay (latency bound), whichever
// comes first. Backpressure is a bounded request queue: when QueueCap
// requests are already waiting, Enqueue blocks the producer until a slot
// frees up (or its context expires) instead of buffering without bound.
type Batcher struct {
	apply    func(context.Context, []cem.Record) (*Committed, error)
	metrics  *Metrics
	maxBatch int
	maxDelay time.Duration

	reqs chan ingestReq
	done chan struct{}

	closeMu sync.RWMutex
	closed  bool

	// pending* mirror the loop's in-flight state for the queue-depth and
	// ingest-lag gauges (scraped concurrently with the loop).
	gaugeMu       sync.Mutex
	pendingReqs   int
	pendingRecs   int
	oldestPending time.Time
}

// ingestReq is one producer's records plus its commit notification.
type ingestReq struct {
	recs []cem.Record
	enq  time.Time
	done chan ApplyResult
}

// ApplyResult notifies a waiting producer of its batch's fate.
type ApplyResult struct {
	State *Committed // the committed state that includes the request's records
	Err   error
}

// BatcherConfig bounds the batcher. Zero values select the defaults.
type BatcherConfig struct {
	// MaxBatch flushes a batch once it holds this many records
	// (default 256). A single request larger than MaxBatch still commits
	// as one batch — requests are never split.
	MaxBatch int
	// MaxDelay flushes a batch once its oldest request has waited this
	// long (default 200ms): the ingest latency bound.
	MaxDelay time.Duration
	// QueueCap bounds the number of queued requests (default 64); full
	// queues block producers (backpressure).
	QueueCap int
}

func (c *BatcherConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 200 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
}

// NewBatcher starts a batcher over an apply function (normally
// Committer.Apply). ctx is the apply context: canceling it aborts an
// in-flight update (the kill path); use Close for graceful drains.
func NewBatcher(ctx context.Context, cfg BatcherConfig, apply func(context.Context, []cem.Record) (*Committed, error), m *Metrics) *Batcher {
	cfg.defaults()
	b := &Batcher{
		apply:    apply,
		metrics:  m,
		maxBatch: cfg.MaxBatch,
		maxDelay: cfg.MaxDelay,
		reqs:     make(chan ingestReq, cfg.QueueCap),
		done:     make(chan struct{}),
	}
	go b.loop(ctx)
	return b
}

// Enqueue submits records for ingestion and returns a channel that
// receives exactly one ApplyResult when the batch containing the records
// commits (or fails). Enqueue blocks while the queue is full; it returns
// an error when ctx expires first or the batcher is closed.
func (b *Batcher) Enqueue(ctx context.Context, records []cem.Record) (<-chan ApplyResult, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("serve: empty ingest request")
	}
	req := ingestReq{recs: records, enq: time.Now(), done: make(chan ApplyResult, 1)}

	// The read lock makes the closed check and the send atomic against
	// Close: Close takes the write lock before closing the channel, so a
	// request past the check is always delivered — the loop keeps
	// draining the queue, so a blocked send cannot deadlock Close.
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	select {
	case b.reqs <- req:
		if b.metrics != nil {
			b.metrics.IngestedRecords.Add(int64(len(records)))
		}
		return req.done, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: ingest queue full: %w", ctx.Err())
	}
}

// Close stops accepting new requests, flushes everything already queued
// (graceful drain) and waits for the loop to exit. Safe to call more
// than once.
func (b *Batcher) Close() {
	b.closeMu.Lock()
	already := b.closed
	b.closed = true
	b.closeMu.Unlock()
	if !already {
		close(b.reqs)
	}
	<-b.done
}

// Depth reports the queued/pending request and record counts plus the
// age of the oldest uncommitted request — the live gauges.
func (b *Batcher) Depth() (reqs, recs int, oldest time.Duration) {
	b.gaugeMu.Lock()
	reqs, recs = b.pendingReqs, b.pendingRecs
	if !b.oldestPending.IsZero() {
		oldest = time.Since(b.oldestPending)
	}
	b.gaugeMu.Unlock()
	reqs += len(b.reqs)
	return reqs, recs, oldest
}

// setPending publishes the loop's in-flight state for Depth.
func (b *Batcher) setPending(reqs []ingestReq, recs int) {
	b.gaugeMu.Lock()
	b.pendingReqs, b.pendingRecs = len(reqs), recs
	if len(reqs) == 0 {
		b.oldestPending = time.Time{}
	} else {
		b.oldestPending = reqs[0].enq
	}
	b.gaugeMu.Unlock()
}

// loop is the single consumer: it gathers requests into a pending batch
// and flushes on the size bound, the latency bound, or shutdown drain.
func (b *Batcher) loop(ctx context.Context) {
	defer close(b.done)
	var (
		pending []ingestReq
		count   int
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		stopTimer()
		recs := make([]cem.Record, 0, count)
		for _, r := range pending {
			recs = append(recs, r.recs...)
		}
		state, err := b.apply(ctx, recs)
		if err == nil && b.metrics != nil {
			now := time.Now()
			for _, r := range pending {
				b.metrics.IngestLag.Observe(now.Sub(r.enq).Seconds())
			}
		}
		// Clear the gauges before notifying: a producer woken by its
		// done channel must not still see its own records as pending.
		flushed := pending
		pending, count = nil, 0
		b.setPending(pending, count)
		for _, r := range flushed {
			r.done <- ApplyResult{State: state, Err: err}
		}
	}
	add := func(req ingestReq) {
		pending = append(pending, req)
		count += len(req.recs)
		b.setPending(pending, count)
		if count >= b.maxBatch {
			flush()
		} else if timerC == nil {
			timer = time.NewTimer(b.maxDelay)
			timerC = timer.C
		}
	}
	for {
		select {
		case req, ok := <-b.reqs:
			if !ok {
				// Graceful drain: a closed channel still yields every
				// buffered request (ok stays true until the queue is
				// empty), so by the time ok is false only the current
				// pending batch remains.
				flush()
				return
			}
			add(req)
		case <-timerC:
			flush()
		}
	}
}
