package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cem "repro"
)

// fakeApply records the batches an apply function received and lets the
// test stall a flush to build up backpressure.
type fakeApply struct {
	mu      sync.Mutex
	batches [][]cem.Record
	seq     int
	block   chan struct{} // non-nil: every apply waits for a receive
	err     error
}

func (f *fakeApply) apply(ctx context.Context, recs []cem.Record) (*Committed, error) {
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	f.batches = append(f.batches, recs)
	f.seq++
	return &Committed{Seq: f.seq}, nil
}

func (f *fakeApply) applied() [][]cem.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]cem.Record(nil), f.batches...)
}

func keys(n int, prefix string) []cem.Record {
	out := make([]cem.Record, n)
	for i := range out {
		out[i] = cem.KeyRecord(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

// TestBatcherSizeBound: enqueues totaling MaxBatch flush immediately as
// one batch, coalescing multiple requests.
func TestBatcherSizeBound(t *testing.T) {
	f := &fakeApply{}
	b := NewBatcher(context.Background(), BatcherConfig{MaxBatch: 6, MaxDelay: time.Hour}, f.apply, nil)
	defer b.Close()

	var dones []<-chan ApplyResult
	for i := 0; i < 3; i++ {
		done, err := b.Enqueue(context.Background(), keys(2, fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	for i, done := range dones {
		select {
		case res := <-done:
			if res.Err != nil {
				t.Fatalf("request %d failed: %v", i, res.Err)
			}
			if res.State.Seq != 1 {
				t.Errorf("request %d committed at seq %d, want 1 (one coalesced batch)", i, res.State.Seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d not committed (size bound did not flush)", i)
		}
	}
	got := f.applied()
	if len(got) != 1 || len(got[0]) != 6 {
		t.Errorf("applied %d batches (first has %d records), want 1 batch of 6", len(got), len(got[0]))
	}
}

// TestBatcherLatencyBound: a lone small request flushes once MaxDelay
// elapses even though the size bound is far away.
func TestBatcherLatencyBound(t *testing.T) {
	f := &fakeApply{}
	b := NewBatcher(context.Background(), BatcherConfig{MaxBatch: 1 << 20, MaxDelay: 20 * time.Millisecond}, f.apply, nil)
	defer b.Close()

	start := time.Now()
	done, err := b.Enqueue(context.Background(), keys(1, "solo"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("latency bound did not flush")
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Errorf("flushed after %v, before the 20ms latency bound", waited)
	}
}

// TestBatcherBackpressure: with a full queue and a stalled apply,
// Enqueue blocks and honors context cancellation.
func TestBatcherBackpressure(t *testing.T) {
	f := &fakeApply{block: make(chan struct{})}
	b := NewBatcher(context.Background(), BatcherConfig{MaxBatch: 1, MaxDelay: time.Hour, QueueCap: 1}, f.apply, nil)

	// First request: immediately flushed (size bound 1) and stalled
	// inside apply. Second request: sits in the queue. Third: blocked.
	d1, err := b.Enqueue(context.Background(), keys(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	var d2 <-chan ApplyResult
	for {
		// The loop may not have consumed the first request yet; retry
		// until the queue slot is actually occupied.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		d2, err = b.Enqueue(ctx, keys(1, "b"))
		cancel()
		if err == nil {
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Enqueue(ctx, keys(1, "c")); err == nil {
		t.Fatal("Enqueue succeeded with a full queue and a stalled apply")
	}

	close(f.block) // un-stall: everything drains
	for i, d := range []<-chan ApplyResult{d1, d2} {
		select {
		case res := <-d:
			if res.Err != nil {
				t.Fatalf("request %d failed after un-stall: %v", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never committed after un-stall", i)
		}
	}
	b.Close()
}

// TestBatcherDrainOnClose: Close flushes everything already accepted and
// further Enqueues fail.
func TestBatcherDrainOnClose(t *testing.T) {
	f := &fakeApply{}
	b := NewBatcher(context.Background(), BatcherConfig{MaxBatch: 1 << 20, MaxDelay: time.Hour, QueueCap: 16}, f.apply, nil)

	var dones []<-chan ApplyResult
	for i := 0; i < 5; i++ {
		done, err := b.Enqueue(context.Background(), keys(3, fmt.Sprintf("d%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	b.Close()
	for i, done := range dones {
		select {
		case res := <-done:
			if res.Err != nil {
				t.Fatalf("drained request %d failed: %v", i, res.Err)
			}
		default:
			t.Fatalf("request %d not flushed by Close", i)
		}
	}
	total := 0
	for _, batch := range f.applied() {
		total += len(batch)
	}
	if total != 15 {
		t.Errorf("drained %d records, want 15", total)
	}
	if _, err := b.Enqueue(context.Background(), keys(1, "late")); err == nil {
		t.Error("Enqueue after Close succeeded")
	}
}

// TestBatcherDepth: the gauges reflect queued work and clear after the
// flush.
func TestBatcherDepth(t *testing.T) {
	f := &fakeApply{block: make(chan struct{})}
	b := NewBatcher(context.Background(), BatcherConfig{MaxBatch: 2, MaxDelay: time.Hour, QueueCap: 8}, f.apply, nil)

	done, err := b.Enqueue(context.Background(), keys(2, "x"))
	if err != nil {
		t.Fatal(err)
	}
	// The flush is stalled inside apply; pending state should report it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reqs, recs, _ := b.Depth()
		if reqs >= 1 && recs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Depth never reported the pending batch (reqs=%d recs=%d)", reqs, recs)
		}
		time.Sleep(time.Millisecond)
	}
	close(f.block)
	<-done
	reqs, recs, oldest := b.Depth()
	if reqs != 0 || recs != 0 || oldest != 0 {
		t.Errorf("Depth after flush = (%d, %d, %v), want zeros", reqs, recs, oldest)
	}
	b.Close()
}

// TestBatcherEnqueueCloseHammer races many producers against Close and
// context cancellation. The invariants under -race: Enqueue never
// panics, every successful Enqueue's done channel receives exactly one
// ApplyResult (no waiter is stranded by the shutdown), and once Close
// has returned every further Enqueue fails with ErrClosed.
func TestBatcherEnqueueCloseHammer(t *testing.T) {
	for round := 0; round < 8; round++ {
		f := &fakeApply{}
		b := NewBatcher(context.Background(), BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, QueueCap: 2}, f.apply, nil)

		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		var delivered, closedErrs, ctxErrs atomic.Int64
		for p := 0; p < 8; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					done, err := b.Enqueue(ctx, keys(1, fmt.Sprintf("r%d-p%d-%d", round, p, i)))
					switch {
					case err == nil:
						// A queued request must resolve even when Close
						// races the send: the drain flushes everything.
						select {
						case <-done:
							delivered.Add(1)
						case <-time.After(10 * time.Second):
							t.Error("accepted request never resolved")
							return
						}
					case errors.Is(err, ErrClosed):
						closedErrs.Add(1)
						return
					default:
						ctxErrs.Add(1) // queue-full + canceled ctx
						return
					}
				}
			}(p)
		}
		// Let some traffic through, then race cancellation and shutdown.
		time.Sleep(time.Duration(round) * time.Millisecond / 2)
		go cancel()
		b.Close()
		wg.Wait()
		cancel()

		if _, err := b.Enqueue(context.Background(), keys(1, "late")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Enqueue after Close: err = %v, want ErrClosed", err)
		}
		if delivered.Load() == 0 && closedErrs.Load() == 0 && ctxErrs.Load() == 0 {
			t.Fatal("hammer round exercised nothing")
		}
	}
}
