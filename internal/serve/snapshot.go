package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	cem "repro"
	"repro/internal/unionfind"
)

// Committed is one immutable committed state of the service: the
// pipeline result of the last applied batch plus the derived lookup
// structures read endpoints serve from. Commits replace the service's
// current *Committed through an atomic pointer swap, so any number of
// concurrent readers observe either the state before a batch or the
// state after it — never a torn intermediate (snapshot isolation). All
// fields are written once, before publication, and never mutated.
type Committed struct {
	// Seq is the commit sequence number: how many batches produced this
	// state. The empty (pre-first-batch) state has Seq 0 and a nil
	// Result.
	Seq int
	// Result is the pipeline result of the last update (nil at Seq 0).
	Result *cem.PipelineResult
	// At is the commit wall-clock time.
	At time.Time

	// keys maps a record key to the entity ids (reference indices, in
	// arrival order) that carry it; names is the inverse.
	keys  map[string][]int32
	names []string
	// partners is the adjacency of the match set: entity id → matched
	// entity ids, ascending.
	partners map[int32][]int32
	// clusterOf[id] is the id's cluster root under the transitive
	// closure of the match set; clusters maps each root to its members,
	// ascending. Singleton entities are their own root and appear in
	// clusters only on lookup (see Cluster).
	clusterOf []int32
	clusters  map[int32][]int32
}

// emptyCommitted is the state before the first batch.
func emptyCommitted() *Committed {
	return &Committed{At: time.Now(), keys: map[string][]int32{}, partners: map[int32][]int32{}, clusters: map[int32][]int32{}}
}

// newCommitted derives the read structures from a pipeline result.
func newCommitted(seq int, res *cem.PipelineResult) *Committed {
	c := &Committed{
		Seq:      seq,
		Result:   res,
		At:       time.Now(),
		keys:     map[string][]int32{},
		partners: map[int32][]int32{},
		clusters: map[int32][]int32{},
	}
	refs := res.Experiment.Dataset.Refs
	c.names = make([]string, len(refs))
	for i := range refs {
		c.names[i] = refs[i].Name
		c.keys[refs[i].Name] = append(c.keys[refs[i].Name], int32(i))
	}
	dsu := unionfind.New(len(refs))
	for p := range res.Matches.All() {
		c.partners[p.A] = append(c.partners[p.A], p.B)
		c.partners[p.B] = append(c.partners[p.B], p.A)
		dsu.Union(int(p.A), int(p.B))
	}
	for id := range c.partners {
		sort.Slice(c.partners[id], func(i, j int) bool { return c.partners[id][i] < c.partners[id][j] })
	}
	c.clusterOf = make([]int32, len(refs))
	for i := range refs {
		root := int32(dsu.Find(i))
		c.clusterOf[i] = root
	}
	// Materialize only non-singleton clusters; singleton lookups answer
	// from clusterOf directly.
	for i := range refs {
		root := c.clusterOf[i]
		if len(c.partners[int32(i)]) > 0 {
			c.clusters[root] = append(c.clusters[root], int32(i))
		}
	}
	for root := range c.clusters {
		sort.Slice(c.clusters[root], func(i, j int) bool { return c.clusters[root][i] < c.clusters[root][j] })
	}
	return c
}

// Records returns the number of records in this state.
func (c *Committed) Records() int {
	if c.Result == nil {
		return 0
	}
	return c.Result.Records
}

// Matches returns the number of match pairs in this state.
func (c *Committed) Matches() int {
	if c.Result == nil {
		return 0
	}
	return c.Result.Matches.Len()
}

// Entities returns the number of entity references in this state.
func (c *Committed) Entities() int { return len(c.names) }

// RefView names one entity reference.
type RefView struct {
	ID  int32  `json:"id"`
	Key string `json:"key"`
}

// EntityView is the full read model of one entity reference: its direct
// match partners and the cluster (transitive closure component) it
// belongs to, self included.
type EntityView struct {
	ID      int32     `json:"id"`
	Key     string    `json:"key"`
	Matches []RefView `json:"matches"`
	Cluster []RefView `json:"cluster"`
}

// RecordView answers a record-key lookup: every entity reference that
// carries the key, against one committed snapshot.
type RecordView struct {
	Key      string       `json:"key"`
	Seq      int          `json:"seq"`
	Entities []EntityView `json:"entities"`
}

// ClusterView answers a cluster lookup: the union of the clusters of
// every entity carrying the key (typically one; distinct clusters appear
// when the same surface string names several unmatched references).
type ClusterView struct {
	Key      string      `json:"key"`
	Seq      int         `json:"seq"`
	Clusters [][]RefView `json:"clusters"`
}

// refViews maps ids to id+key views.
func (c *Committed) refViews(ids []int32) []RefView {
	out := make([]RefView, len(ids))
	for i, id := range ids {
		out[i] = RefView{ID: id, Key: c.names[id]}
	}
	return out
}

// Lookup resolves a record key to its entities, matches and clusters.
// The second return is false when the key is unknown to this snapshot.
func (c *Committed) Lookup(key string) (RecordView, bool) {
	ids, ok := c.keys[key]
	if !ok {
		return RecordView{}, false
	}
	v := RecordView{Key: key, Seq: c.Seq, Entities: make([]EntityView, len(ids))}
	for i, id := range ids {
		v.Entities[i] = EntityView{
			ID:      id,
			Key:     key,
			Matches: c.refViews(c.partners[id]),
			Cluster: c.refViews(c.clusterMembers(id)),
		}
	}
	return v, true
}

// clusterMembers returns the ids in id's transitive-closure component,
// ascending, always including id itself.
func (c *Committed) clusterMembers(id int32) []int32 {
	if members, ok := c.clusters[c.clusterOf[id]]; ok {
		return members
	}
	return []int32{id}
}

// Cluster resolves a record key to the distinct clusters of its
// entities. False when the key is unknown.
func (c *Committed) Cluster(key string) (ClusterView, bool) {
	ids, ok := c.keys[key]
	if !ok {
		return ClusterView{}, false
	}
	v := ClusterView{Key: key, Seq: c.Seq}
	seen := map[int32]bool{}
	for _, id := range ids {
		root := c.clusterOf[id]
		if seen[root] {
			continue
		}
		seen[root] = true
		v.Clusters = append(v.Clusters, c.refViews(c.clusterMembers(id)))
	}
	return v, true
}

// RenderMatches serializes the snapshot's match set in the repo's
// canonical fixture form — one "a b" pair per line, sorted, with a count
// header — so a served state can be diffed byte-for-byte against an
// offline run (the load harness's identity check).
func (c *Committed) RenderMatches() string {
	var b strings.Builder
	if c.Result == nil {
		fmt.Fprintf(&b, "# 0 matches\n")
		return b.String()
	}
	pairs := c.Result.Matches.Sorted()
	fmt.Fprintf(&b, "# %d matches\n", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&b, "%d %d\n", p.A, p.B)
	}
	return b.String()
}
