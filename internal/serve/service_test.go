package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cem "repro"
	"repro/match"
)

// fastBatching keeps test latency low: tiny flush delay, small batches.
var fastBatching = BatcherConfig{MaxBatch: 512, MaxDelay: 5 * time.Millisecond, QueueCap: 32}

// ingestWait pushes records through the service's programmatic ingest
// path and blocks for the commit.
func ingestWait(t *testing.T, s *Service, records []cem.Record) *Committed {
	t.Helper()
	done, err := s.Ingest(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.Err != nil {
			t.Fatalf("ingest failed: %v", res.Err)
		}
		return res.State
	case <-time.After(2 * time.Minute):
		t.Fatal("ingest never committed")
		return nil
	}
}

// TestServiceHTTPEndToEnd drives the full HTTP surface: TSV and JSON
// ingestion (wait and fire-and-forget), snapshot reads, the canonical
// match dump, stats, Prometheus metrics, and the error paths.
func TestServiceHTTPEndToEnd(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	svc, err := New(context.Background(), Config{Batching: fastBatching})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Kill()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// TSV ingest with ?wait=1 commits synchronously.
	var body bytes.Buffer
	if err := cem.WriteRecords(&body, "batch-1", records[:len(records)*9/10]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/records?wait=1", "text/tab-separated-values", &body)
	if err != nil {
		t.Fatal(err)
	}
	var ack ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Queued || ack.Seq != 1 {
		t.Fatalf("waited TSV ingest: status %d, ack %+v", resp.StatusCode, ack)
	}
	if ack.Matches == 0 {
		t.Fatal("first batch committed zero matches; the read tests are vacuous")
	}

	// JSON ingest (fire-and-forget) is accepted with a 202 and commits
	// within the latency bound.
	var jr []ingestRecord
	for _, r := range records[len(records)*9/10:] {
		rec := r.(cem.BasicRecord)
		jr = append(jr, ingestRecord{Key: rec.Key, Group: &rec.Group, Gold: &rec.Gold})
	}
	jb, _ := json.Marshal(jr)
	resp, err = http.Post(srv.URL+"/records", "application/json", bytes.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async JSON ingest: status %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for svc.Snapshot().Seq < 2 {
		if time.Now().After(deadline) {
			t.Fatal("async batch never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := svc.Snapshot()
	if snap.Records() != len(records) {
		t.Fatalf("committed %d records, want %d", snap.Records(), len(records))
	}

	// Snapshot reads resolve every ingested key; an unknown key is 404.
	key := records[0].RecordKey()
	resp, err = http.Get(srv.URL + "/records/" + url.PathEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	var rv RecordView
	if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rv.Key != key || len(rv.Entities) == 0 {
		t.Fatalf("GET /records/%q: status %d, view %+v", key, resp.StatusCode, rv)
	}
	resp, _ = http.Get(srv.URL + "/cluster/" + url.PathEscape(key))
	var cv ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cv.Clusters) == 0 || len(cv.Clusters[0]) == 0 {
		t.Fatalf("GET /cluster/%q returned no clusters", key)
	}
	resp, _ = http.Get(srv.URL + "/records/no-such-key")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status %d, want 404", resp.StatusCode)
	}

	// The match dump is the canonical fixture form at the committed seq.
	resp, _ = http.Get(srv.URL + "/matches")
	dump, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got, want := string(dump), snap.RenderMatches(); got != want {
		t.Errorf("/matches diverges from the snapshot dump (%d vs %d bytes)", len(got), len(want))
	}
	if seq := resp.Header.Get("X-Emserve-Seq"); seq != fmt.Sprint(snap.Seq) {
		t.Errorf("/matches seq header %q, want %d", seq, snap.Seq)
	}

	// /stats reflects the pipeline counters; /metrics speaks Prometheus.
	resp, _ = http.Get(srv.URL + "/stats")
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Seq != snap.Seq || st.Records != len(records) || st.Pipeline.Updates != 2 {
		t.Errorf("/stats = %+v, want seq %d over %d records after 2 updates", st, snap.Seq, len(records))
	}
	resp, _ = http.Get(srv.URL + "/metrics")
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE emserve_ingested_records_total counter",
		"emserve_committed_batches_total 2",
		`emserve_updates_total{mode="warm"} 1`,
		"# TYPE emserve_update_seconds histogram",
		"emserve_round_seconds_bucket",
		fmt.Sprintf("emserve_committed_seq %d", snap.Seq),
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Error paths: empty batches and empty keys are rejected up front.
	resp, _ = http.Post(srv.URL+"/records", "application/json", strings.NewReader(`[]`))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/records", "application/json", strings.NewReader(`[{"key":""}]`))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty key: status %d, want 400", resp.StatusCode)
	}
}

// TestServiceConcurrentReaders is the snapshot-isolation race test: m
// readers hammer the read endpoints while batches commit. Every reader
// must only ever observe fully-committed states — seq strictly
// monotone per reader, and each observed match dump internally
// consistent (header count == pair lines). Run under -race this also
// proves the read path takes no locks the writer tears.
func TestServiceConcurrentReaders(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	svc, err := New(context.Background(), Config{Batching: fastBatching})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Kill()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Direct snapshot readers: seq monotone, views structurally sound.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeq := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := svc.Snapshot()
				if snap.Seq < lastSeq {
					report("snapshot seq went backwards: %d after %d", snap.Seq, lastSeq)
					return
				}
				lastSeq = snap.Seq
				dump := snap.RenderMatches()
				if n := strings.Count(dump, "\n"); n != snap.Matches()+1 {
					report("torn snapshot at seq %d: %d lines for %d matches", snap.Seq, n, snap.Matches())
					return
				}
				if snap.Records() > 0 {
					key := records[snap.Records()-1].RecordKey()
					if _, ok := snap.Lookup(key); !ok {
						report("seq %d snapshot is missing its own last record %q", snap.Seq, key)
						return
					}
				}
			}
		}()
	}
	// HTTP readers: /matches responses are internally consistent.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/matches")
				if err != nil {
					report("GET /matches: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var n int
				if _, err := fmt.Sscanf(string(body), "# %d matches", &n); err != nil {
					report("unparseable /matches header: %v", err)
					return
				}
				if lines := strings.Count(string(body), "\n"); lines != n+1 {
					report("torn /matches: %d lines for %d matches", lines, n)
					return
				}
			}
		}()
	}

	// The writer: stream the corpus in 8 batches while the readers run.
	step := (len(records) + 7) / 8
	for lo := 0; lo < len(records); lo += step {
		hi := min(lo+step, len(records))
		ingestWait(t, svc, records[lo:hi])
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if svc.Snapshot().Records() != len(records) {
		t.Fatalf("committed %d records, want %d", svc.Snapshot().Records(), len(records))
	}
}

// TestServiceShutdownRestart: a graceful shutdown drains the batcher and
// leaves a completed checkpoint trail; a restart on the same StateDir
// recovers the byte-identical state without evaluating a single
// neighborhood, and the stream continues at the next seq.
func TestServiceShutdownRestart(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	state := t.TempDir()

	svc, err := New(context.Background(), Config{StateDir: state, Batching: fastBatching})
	if err != nil {
		t.Fatal(err)
	}
	batches := batchCuts(records)
	for _, b := range batches[:3] {
		ingestWait(t, svc, b)
	}
	// The last batch is NOT waited for: Shutdown must flush it.
	if _, err := svc.Ingest(context.Background(), batches[3]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	want := svc.Snapshot()
	if want.Records() != len(records) {
		t.Fatalf("shutdown flushed %d records, want %d (drain lost the queued batch)", want.Records(), len(records))
	}
	if _, err := svc.Ingest(context.Background(), batches[0]); err == nil {
		t.Fatal("ingest accepted after shutdown")
	}

	var evals atomic.Int64
	svc2, err := New(context.Background(), Config{
		StateDir: state, Batching: fastBatching,
		RunnerOptions: []cem.RunnerOption{cem.WithProgress(func(match.ProgressEvent) { evals.Add(1) })},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Kill()
	got := svc2.Snapshot()
	if got.Seq != want.Seq || got.RenderMatches() != want.RenderMatches() {
		t.Fatalf("restart diverges: seq %d vs %d, %d vs %d matches",
			got.Seq, want.Seq, got.Matches(), want.Matches())
	}
	if n := evals.Load(); n != 0 {
		t.Errorf("restart after clean shutdown evaluated %d neighborhoods, want 0 (checkpoint trail resume)", n)
	}

	// The stream continues: a fresh batch lands at the next seq and the
	// total still matches a cold run over the same arrival order.
	extra, err := cem.GenerateRecords(cem.DBLP, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := ingestWait(t, svc2, extra)
	if last.Seq != want.Seq+1 {
		t.Errorf("post-restart batch at seq %d, want %d", last.Seq, want.Seq+1)
	}
	cold, err := testPipeline(t).Run(context.Background(), append(append([]cem.Record{}, records...), extra...))
	if err != nil {
		t.Fatal(err)
	}
	if last.RenderMatches() != renderPipelineMatches(cold) {
		t.Error("restarted + continued stream diverges from the cold run")
	}
}

// TestServiceKillRestart: a service killed in the middle of an update
// (at a round boundary, mid-batch) restarts into exactly the state an
// uninterrupted service would have reached — the journaled batch is
// not lost, not duplicated, and the final match set equals the cold
// run over the same arrival order.
func TestServiceKillRestart(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	state := t.TempDir()
	batches := batchCuts(records)

	// Arm a progress hook that cancels the service's root context at the
	// second round of the batch it is armed for — the checkpoint_test
	// kill idiom, here at the service level.
	ctx, cancel := context.WithCancel(context.Background())
	var armed atomic.Bool
	var once sync.Once
	svc, err := New(ctx, Config{
		StateDir: state, Batching: fastBatching,
		RunnerOptions: []cem.RunnerOption{cem.WithProgress(func(e match.ProgressEvent) {
			if armed.Load() && e.Round >= 2 {
				once.Do(cancel)
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestWait(t, svc, batches[0])

	armed.Store(true)
	done, err := svc.Ingest(context.Background(), batches[1])
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.Err == nil {
			t.Fatal("kill mid-batch did not abort the update (batch committed)")
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("killed batch never resolved")
	}
	svc.Kill()
	if svc.Snapshot().Seq != 1 {
		t.Fatalf("killed service exposes seq %d, want the last committed 1", svc.Snapshot().Seq)
	}

	// Restart: the journal holds both batches (the interrupted one was
	// accepted); recovery finishes the interrupted commit.
	svc2, err := New(context.Background(), Config{StateDir: state, Batching: fastBatching})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Kill()
	got := svc2.Snapshot()
	if got.Seq != 2 {
		t.Fatalf("restart recovered to seq %d, want 2 (interrupted batch finished)", got.Seq)
	}
	wantRecs := len(batches[0]) + len(batches[1])
	if got.Records() != wantRecs {
		t.Fatalf("restart holds %d records, want %d (lost or duplicated records)", got.Records(), wantRecs)
	}
	cold, err := testPipeline(t).Run(context.Background(), records[:wantRecs])
	if err != nil {
		t.Fatal(err)
	}
	if got.RenderMatches() != renderPipelineMatches(cold) {
		t.Error("kill + restart diverges from the uninterrupted run")
	}

	// The remaining batches stream in as if nothing happened.
	var last *Committed
	for _, b := range batches[2:] {
		last = ingestWait(t, svc2, b)
	}
	coldAll, err := testPipeline(t).Run(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}
	if last.RenderMatches() != renderPipelineMatches(coldAll) {
		t.Error("post-kill stream diverges from the cold run over the full corpus")
	}
}
