package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	cem "repro"
	"repro/match"
)

// testRecords returns the standard golden-seed corpus in record form.
func testRecords(t *testing.T, kind cem.DatasetKind) []cem.Record {
	t.Helper()
	records, err := cem.GenerateRecords(kind, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	return records
}

// testPipeline builds the committer's pipeline: SMP × mln, plus any
// extra runner options (e.g. a checkpoint dir).
func testPipeline(t *testing.T, ropts ...cem.RunnerOption) *cem.Pipeline {
	t.Helper()
	opts := []cem.PipelineOption{
		cem.WithScheme(cem.SchemeSMP),
		cem.WithDatasetName("serve-test"),
	}
	if len(ropts) > 0 {
		opts = append(opts, cem.WithRunnerOptions(ropts...))
	}
	pipe, err := cem.NewPipeline(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// batchCuts splits records into a base load plus trailing batches.
func batchCuts(records []cem.Record) [][]cem.Record {
	n := len(records)
	cuts := []int{n * 7 / 10, n * 8 / 10, n * 9 / 10, n}
	var out [][]cem.Record
	lo := 0
	for _, hi := range cuts {
		out = append(out, records[lo:hi])
		lo = hi
	}
	return out
}

// TestCommitterFoldMatchesCold: applying a stream of batches lands on
// the byte-identical match set of a cold run over the same arrival
// order, with the trailing batches warm-started.
func TestCommitterFoldMatchesCold(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	ctx := context.Background()

	cold, err := testPipeline(t).Run(ctx, records)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCommitter(testPipeline(t), WithMetrics(NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	var last *Committed
	for i, batch := range batchCuts(records) {
		last, err = c.Apply(ctx, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		if last.Seq != i+1 {
			t.Errorf("batch %d committed at seq %d", i+1, last.Seq)
		}
		if i > 0 && !last.Result.WarmStarted {
			t.Errorf("batch %d did not warm-start", i+1)
		}
	}
	if got, want := last.RenderMatches(), renderPipelineMatches(cold); got != want {
		t.Errorf("streamed matches diverge from cold run:\nstream: %d bytes\ncold:   %d bytes", len(got), len(want))
	}
	if snap := c.Snapshot(); snap != last {
		t.Error("Snapshot does not return the last committed state")
	}
	stats := c.Pipeline().Stats()
	if stats.Updates != 4 || stats.WarmStarted != 3 || stats.ColdStarts != 1 {
		t.Errorf("pipeline stats = %+v, want 4 updates = 1 cold + 3 warm", stats)
	}
}

// renderPipelineMatches renders a PipelineResult's matches in the
// canonical fixture form (the snapshot's RenderMatches counterpart).
func renderPipelineMatches(res *cem.PipelineResult) string {
	var b strings.Builder
	pairs := res.Matches.Sorted()
	fmt.Fprintf(&b, "# %d matches\n", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&b, "%d %d\n", p.A, p.B)
	}
	return b.String()
}

// TestCommitterJournalRecoverFold: a fresh committer on the same
// journal replays the batches into the identical state (no checkpoint
// trail involved) and continues the stream at the right seq.
func TestCommitterJournalRecoverFold(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	ctx := context.Background()
	dir := t.TempDir()
	batches := batchCuts(records)

	c1, err := NewCommitter(testPipeline(t), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches[:3] {
		if _, err := c1.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	want := c1.Snapshot()

	c2, err := NewCommitter(testPipeline(t), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	n, err := c2.Recover(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recovered %d batches, want 3", n)
	}
	got := c2.Snapshot()
	if got.Seq != want.Seq || got.RenderMatches() != want.RenderMatches() {
		t.Errorf("recovered state diverges: seq %d vs %d, %d vs %d matches",
			got.Seq, want.Seq, got.Matches(), want.Matches())
	}

	// The stream continues past recovery: the 4th batch lands at seq 4
	// and journals as batch-000004.
	last, err := c2.Apply(ctx, batches[3])
	if err != nil {
		t.Fatal(err)
	}
	if last.Seq != 4 {
		t.Errorf("post-recovery batch committed at seq %d, want 4", last.Seq)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "batch-000004.tsv")); len(m) != 1 {
		t.Error("post-recovery batch did not journal as batch-000004.tsv")
	}
	cold, err := testPipeline(t).Run(ctx, records)
	if err != nil {
		t.Fatal(err)
	}
	if last.RenderMatches() != renderPipelineMatches(cold) {
		t.Error("recovered + continued stream diverges from the cold run")
	}
}

// TestCommitterRecoverResume: with a checkpoint trail from a clean
// shutdown, recovery resumes the completed trail — identical state and
// no neighborhood is re-evaluated in this process. (The resumed
// result's RunStats stay cumulative — they credit the original run's
// matcher calls, as checkpoint_test's monotonicity contract requires —
// so "no new work" is asserted via progress events, which only fire
// when a round actually executes.)
func TestCommitterRecoverResume(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	ctx := context.Background()
	state := t.TempDir()
	journal := filepath.Join(state, "journal")
	ckpt := filepath.Join(state, "checkpoint")

	c1, err := NewCommitter(testPipeline(t, cem.WithCheckpointDir(ckpt)), WithJournal(journal))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batchCuts(records) {
		if _, err := c1.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	want := c1.Snapshot()

	var evals atomic.Int64
	pipe2 := testPipeline(t, cem.WithCheckpointDir(ckpt),
		cem.WithProgress(func(match.ProgressEvent) { evals.Add(1) }))
	c2, err := NewCommitter(pipe2, WithJournal(journal))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Recover(ctx, true); err != nil {
		t.Fatal(err)
	}
	got := c2.Snapshot()
	if got.Seq != want.Seq || got.RenderMatches() != want.RenderMatches() {
		t.Errorf("resumed state diverges: seq %d vs %d", got.Seq, want.Seq)
	}
	if n := evals.Load(); n != 0 {
		t.Errorf("resume of a completed trail evaluated %d neighborhoods, want 0", n)
	}
	if stats := pipe2.Stats(); stats.Runs != 1 || stats.Updates != 0 {
		t.Errorf("resume took the replay path: stats %+v, want 1 run / 0 updates", stats)
	}
}

// TestCommitterRejectsBadBatch: an invalid batch is refused without
// burning a journal slot or touching the committed state.
func TestCommitterRejectsBadBatch(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	ctx := context.Background()
	dir := t.TempDir()

	c, err := NewCommitter(testPipeline(t), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(ctx, records[:50]); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()

	if _, err := c.Apply(ctx, []cem.Record{cem.BasicRecord{Key: "", Group: -1, Gold: -1}}); err == nil {
		t.Fatal("empty-key batch accepted")
	}
	if _, err := c.Apply(ctx, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if c.Snapshot() != before {
		t.Error("failed batch replaced the committed state")
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "batch-*.tsv")); len(m) != 1 {
		t.Errorf("journal holds %d batches after rejections, want 1", len(m))
	}

	// The next valid batch takes seq 2 and the journal stays contiguous.
	last, err := c.Apply(ctx, records[50:80])
	if err != nil {
		t.Fatal(err)
	}
	if last.Seq != 2 {
		t.Errorf("next batch at seq %d, want 2", last.Seq)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "batch-000002.tsv")); len(m) != 1 {
		t.Error("next batch did not journal as batch-000002.tsv")
	}
}

// TestCommittedViews: structural invariants of the derived read
// model — every entity's cluster contains itself and all its direct
// match partners, views agree across members, and the canonical dump
// matches the sorted pair list.
func TestCommittedViews(t *testing.T) {
	records := testRecords(t, cem.DBLP)
	ctx := context.Background()
	c, err := NewCommitter(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Apply(ctx, records)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Matches() == 0 {
		t.Fatal("corpus produced no matches; the view test is vacuous")
	}
	if snap.Entities() != len(records) {
		t.Fatalf("snapshot has %d entities for %d records", snap.Entities(), len(records))
	}

	checked := 0
	for _, rec := range records {
		key := rec.RecordKey()
		v, ok := snap.Lookup(key)
		if !ok {
			t.Fatalf("committed record key %q not found", key)
		}
		for _, e := range v.Entities {
			inCluster := map[int32]bool{}
			for _, m := range e.Cluster {
				inCluster[m.ID] = true
				if snap.names[m.ID] != m.Key {
					t.Fatalf("cluster member %d reported key %q, dataset says %q", m.ID, m.Key, snap.names[m.ID])
				}
			}
			if !inCluster[e.ID] {
				t.Fatalf("entity %d's cluster omits itself", e.ID)
			}
			for _, m := range e.Matches {
				if !inCluster[m.ID] {
					t.Fatalf("entity %d's match partner %d missing from its cluster", e.ID, m.ID)
				}
			}
		}
		cv, ok := snap.Cluster(key)
		if !ok || len(cv.Clusters) == 0 {
			t.Fatalf("Cluster(%q) empty", key)
		}
		checked++
		if checked >= 200 {
			break
		}
	}

	if _, ok := snap.Lookup("no-such-record-key"); ok {
		t.Error("unknown key resolved")
	}
	dump := snap.RenderMatches()
	lines := strings.Count(dump, "\n")
	if lines != snap.Matches()+1 {
		t.Errorf("RenderMatches has %d lines for %d matches", lines, snap.Matches())
	}
}

// TestEmptySnapshot: the Seq-0 state answers reads without panicking.
func TestEmptySnapshot(t *testing.T) {
	c, err := NewCommitter(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Seq != 0 || snap.Records() != 0 || snap.Matches() != 0 || snap.Entities() != 0 {
		t.Errorf("empty snapshot not empty: %+v", snap)
	}
	if _, ok := snap.Lookup("x"); ok {
		t.Error("empty snapshot resolved a key")
	}
	if got := snap.RenderMatches(); got != "# 0 matches\n" {
		t.Errorf("empty dump = %q", got)
	}
}

// TestCommitterJournalTruncationAtEveryByte: a crash while the trailing
// journal file was being written can leave ANY byte-length prefix of it
// on disk. For every such prefix, Recover must quarantine the torn file
// (rename it .corrupt, count it, log it) and restore exactly the intact
// batches before it — never error out, never mistake a clean-parsing
// prefix for a complete batch.
func TestCommitterJournalTruncationAtEveryByte(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	base, tail := records[:40], records[40:42]
	ctx := context.Background()

	// Journal both batches once; the template dir's files are the ground
	// truth every truncation trial copies from.
	tmpl := t.TempDir()
	c0, err := NewCommitter(testPipeline(t), WithJournal(tmpl))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Apply(ctx, base); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Apply(ctx, tail); err != nil {
		t.Fatal(err)
	}
	full := c0.Snapshot()

	basePath := filepath.Join(tmpl, "batch-000001.tsv")
	lastPath := filepath.Join(tmpl, "batch-000002.tsv")
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	lastData, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(lastData), fmt.Sprintf("# journal-end %d\n", len(tail))) {
		t.Fatalf("journal file missing commit footer:\n%s", lastData)
	}

	// The state Recover should land on when the trailing file is lost.
	cBase, err := NewCommitter(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	baseSnap, err := cBase.Apply(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	wantRender := baseSnap.RenderMatches()

	// Every cut short of the footer's final newline loses content and
	// must quarantine. The last two lengths — the intact file, and the
	// file missing only that terminator byte — still hold every record
	// plus the full footer count, and must recover both batches instead
	// (checked after the loop).
	for cut := 0; cut < len(lastData)-1; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "batch-000001.tsv"), baseData, 0o644); err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(dir, "batch-000002.tsv")
		if err := os.WriteFile(torn, lastData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		m := NewMetrics()
		logged := 0
		c, err := NewCommitter(testPipeline(t), WithJournal(dir), WithMetrics(m),
			WithCommitterLog(func(string, ...any) { logged++ }))
		if err != nil {
			t.Fatal(err)
		}
		n, err := c.Recover(ctx, false)
		if err != nil {
			t.Fatalf("cut at byte %d/%d: recover failed: %v", cut, len(lastData), err)
		}
		if n != 1 {
			t.Fatalf("cut at byte %d: recovered %d batches, want 1", cut, n)
		}
		if _, err := os.Stat(torn + ".corrupt"); err != nil {
			t.Fatalf("cut at byte %d: torn file not quarantined: %v", cut, err)
		}
		if _, err := os.Stat(torn); !os.IsNotExist(err) {
			t.Fatalf("cut at byte %d: torn file still present", cut)
		}
		if got := m.JournalQuarantined.Value(); got != 1 {
			t.Fatalf("cut at byte %d: JournalQuarantined = %d, want 1", cut, got)
		}
		if logged == 0 {
			t.Fatalf("cut at byte %d: quarantine was not logged", cut)
		}
		snap := c.Snapshot()
		if snap.Seq != 1 || snap.RenderMatches() != wantRender {
			t.Fatalf("cut at byte %d: recovered state diverges (seq %d)", cut, snap.Seq)
		}
	}

	// Re-applying the lost batch after a torn recovery reconverges on
	// the full state, reusing the quarantined sequence number.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "batch-000001.tsv"), baseData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "batch-000002.tsv"), lastData[:len(lastData)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	c, err := NewCommitter(testPipeline(t), WithJournal(dir), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(ctx, false); err != nil {
		t.Fatal(err)
	}
	relast, err := c.Apply(ctx, tail)
	if err != nil {
		t.Fatal(err)
	}
	if relast.Seq != 2 || relast.RenderMatches() != full.RenderMatches() {
		t.Errorf("re-applied batch after quarantine diverges from the uninterrupted stream")
	}
	if got, _ := filepath.Glob(filepath.Join(dir, "batch-000002.tsv")); len(got) != 1 {
		t.Error("re-applied batch did not reuse the quarantined sequence number")
	}

	// The intact file, and the file missing only the footer's trailing
	// newline, are both content-complete: full recovery, no quarantine.
	for _, end := range []int{len(lastData), len(lastData) - 1} {
		intact := t.TempDir()
		if err := os.WriteFile(filepath.Join(intact, "batch-000001.tsv"), baseData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(intact, "batch-000002.tsv"), lastData[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		mi := NewMetrics()
		ci, err := NewCommitter(testPipeline(t), WithJournal(intact), WithMetrics(mi))
		if err != nil {
			t.Fatal(err)
		}
		n, err := ci.Recover(ctx, false)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 || mi.JournalQuarantined.Value() != 0 {
			t.Errorf("content-complete journal (%d bytes): recovered %d batches with %d quarantined, want 2/0",
				end, n, mi.JournalQuarantined.Value())
		}
		if got := ci.Snapshot().RenderMatches(); got != full.RenderMatches() {
			t.Errorf("content-complete journal (%d bytes): recovered state diverges from the original stream", end)
		}
	}
}

// TestCommitterRecoverRefusesMidStreamCorruption: a damaged file that is
// NOT the trailing one means committed history after it would be lost —
// Recover must refuse rather than silently drop batches.
func TestCommitterRecoverRefusesMidStreamCorruption(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	ctx := context.Background()
	dir := t.TempDir()

	c1, err := NewCommitter(testPipeline(t), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Apply(ctx, records[:40]); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Apply(ctx, records[40:60]); err != nil {
		t.Fatal(err)
	}

	first := filepath.Join(dir, "batch-000001.tsv")
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCommitter(testPipeline(t), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Recover(ctx, false); err == nil {
		t.Fatal("recover accepted a journal with mid-stream corruption")
	} else if !strings.Contains(err.Error(), "batch-000001.tsv") {
		t.Errorf("error does not name the damaged file: %v", err)
	}
	if _, serr := os.Stat(first); serr != nil {
		t.Error("mid-stream damaged file was moved; it must be left for inspection")
	}
}
