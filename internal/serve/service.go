// Package serve is the online matching subsystem: a long-running
// service over cem.Pipeline.Update. Arriving records are coalesced by an
// async Batcher (latency bound + size bound + bounded-queue
// backpressure) and applied strictly serially by a Committer, which
// journals every batch before running it and publishes each result as an
// immutable snapshot through an atomic pointer swap. Reads (record,
// cluster and match-set lookups) are served concurrently from the last
// committed snapshot while the next update runs — snapshot isolation
// without locks on the read path. A Prometheus-text /metrics endpoint
// exports ingest lag, queue depth, warm-vs-cold update ratios, matcher
// calls per batch and per-round latency histograms.
//
// The package is intentionally reusable below the HTTP surface:
// Committer alone drives `emmatch -ingest` batch replay, so the CLI
// replay and the serving path share one commit implementation.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	cem "repro"
	"repro/match"
)

// Config assembles a Service. The zero value serves the default
// pipeline (SMP × mln) ephemerally (no state directory: nothing
// journaled, nothing checkpointed, no restart).
type Config struct {
	// Matcher and Scheme select the pipeline ("mln"/"rules"/registered;
	// nomp/smp/mmp — the scheme must have an incremental path).
	Matcher string
	Scheme  cem.Scheme
	// Shards is the blocking shard count for cold runs; MaxNeighborhood
	// bounds canopy cores (0 = unbounded).
	Shards          int
	MaxNeighborhood int
	// Parallelism is the matcher-stage worker count.
	Parallelism int
	// DatasetName names the synthesized dataset.
	DatasetName string
	// RunnerOptions are appended to the pipeline's runner options
	// (progress hooks, backends, ...).
	RunnerOptions []cem.RunnerOption

	// StateDir is the service's durable root: StateDir/journal holds the
	// record journal (every accepted batch, written before it is
	// applied), StateDir/checkpoint the matching-round trail
	// (cem.WithCheckpointDir), and — with Store set — StateDir/store the
	// storage backend's segments and blobs. Restarting a service on the
	// same StateDir recovers the identical committed state. Empty =
	// ephemeral.
	StateDir string
	// Store names a registered storage backend (cem.Stores: "mem",
	// "disk", ...) opened under StateDir/store and threaded through the
	// pipeline and the committer: the runner mirrors evidence into it
	// round by round, every commit saves a full state snapshot, and a
	// restart REOPENS that snapshot — zero matcher calls, zero trail
	// replay — instead of folding the journal back through the engine.
	// "disk" keeps the accumulated match state out of process RSS.
	// Requires StateDir; empty keeps the journal + checkpoint-trail
	// recovery path only.
	Store string

	// Batching bounds the ingest batcher (see BatcherConfig).
	Batching BatcherConfig
	// MaxBodyBytes bounds one POST body (default 8 MiB).
	MaxBodyBytes int64

	// Logf, when set, receives recovery events (quarantined journal
	// files). Nil is silent.
	Logf func(format string, args ...any)
}

// Service is the HTTP matching service. Build with New, mount it as an
// http.Handler, and stop it with Shutdown (graceful drain) or Kill
// (abort in-flight work; the journal + checkpoint trail recover it).
type Service struct {
	cfg       Config
	pipe      *cem.Pipeline
	metrics   *Metrics
	committer *Committer
	batcher   *Batcher
	mux       *http.ServeMux
	started   time.Time

	store      match.Store // nil unless Config.Store named one
	storeClose sync.Once

	applyCancel context.CancelFunc
}

// closeStore closes the service's store exactly once (Shutdown and Kill
// may both run). Safe on a nil store.
func (s *Service) closeStore() {
	s.storeClose.Do(func() {
		if s.store != nil {
			if err := s.store.Close(); err != nil && s.cfg.Logf != nil {
				s.cfg.Logf("closing store: %v", err)
			}
		}
	})
}

// New builds the pipeline, recovers any journaled state from
// cfg.StateDir, and starts the ingest batcher. The passed context
// governs recovery AND all future update work: canceling it is the
// non-graceful kill path.
func New(ctx context.Context, cfg Config) (*Service, error) {
	if cfg.Matcher == "" {
		cfg.Matcher = cem.MatcherMLN
	}
	if cfg.Scheme == "" {
		cfg.Scheme = cem.SchemeSMP
	}
	if cfg.DatasetName == "" {
		cfg.DatasetName = "emserve"
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	// Matchers resolve lazily (at the first Update), so an unknown name
	// would otherwise start a service that can never commit a batch.
	if !slices.Contains(cem.Matchers(), cfg.Matcher) {
		return nil, fmt.Errorf("serve: unknown matcher %q (registered: %s)",
			cfg.Matcher, strings.Join(cem.Matchers(), ", "))
	}
	m := NewMetrics()

	ropts := []cem.RunnerOption{cem.WithProgress(m.ProgressObserver())}
	if cfg.Parallelism > 1 {
		ropts = append(ropts, cem.WithParallelism(cfg.Parallelism))
	}
	checkpointing := false
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
		ropts = append(ropts, cem.WithCheckpointDir(filepath.Join(cfg.StateDir, "checkpoint")))
		checkpointing = true
	}
	var st match.Store
	if cfg.Store != "" {
		if cfg.StateDir == "" {
			return nil, fmt.Errorf("serve: a store (%q) requires a state directory", cfg.Store)
		}
		var err error
		st, err = cem.OpenStore(cfg.Store,
			cem.WithStoreDir(filepath.Join(cfg.StateDir, "store")),
			cem.WithStoreLog(cfg.Logf))
		if err != nil {
			return nil, fmt.Errorf("serve: opening store: %w", err)
		}
		ropts = append(ropts, cem.WithOpenedStore(st))
	}
	failed := func(err error) (*Service, error) {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	ropts = append(ropts, cfg.RunnerOptions...)

	pipe, err := cem.NewPipeline(
		cem.WithDatasetName(cfg.DatasetName),
		cem.WithMatcher(cfg.Matcher),
		cem.WithScheme(cfg.Scheme),
		cem.WithShards(cfg.Shards),
		cem.WithMaxNeighborhood(cfg.MaxNeighborhood),
		cem.WithRunnerOptions(ropts...),
	)
	if err != nil {
		return failed(err)
	}

	copts := []CommitterOption{WithMetrics(m)}
	if cfg.StateDir != "" {
		copts = append(copts, WithJournal(filepath.Join(cfg.StateDir, "journal")))
	}
	if st != nil {
		copts = append(copts, WithStore(st))
	}
	if cfg.Logf != nil {
		copts = append(copts, WithCommitterLog(cfg.Logf))
	}
	committer, err := NewCommitter(pipe, copts...)
	if err != nil {
		return failed(err)
	}
	if _, err := committer.Recover(ctx, checkpointing); err != nil {
		return failed(err)
	}

	applyCtx, cancel := context.WithCancel(ctx)
	s := &Service{
		cfg:         cfg,
		pipe:        pipe,
		metrics:     m,
		committer:   committer,
		batcher:     NewBatcher(applyCtx, cfg.Batching, committer.Apply, m),
		store:       st,
		started:     time.Now(),
		applyCancel: cancel,
	}
	s.routes()
	return s, nil
}

// Snapshot returns the current committed state (never nil).
func (s *Service) Snapshot() *Committed { return s.committer.Snapshot() }

// Metrics exposes the service's metrics registry.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Ingest enqueues records programmatically — the same path POST /records
// takes. The returned channel receives the commit result.
func (s *Service) Ingest(ctx context.Context, records []cem.Record) (<-chan ApplyResult, error) {
	return s.batcher.Enqueue(ctx, records)
}

// Shutdown drains gracefully: no new ingests are accepted, everything
// already queued is flushed through the committer (journaled and
// checkpointed as usual), then the service stops. After Shutdown returns
// nil, a New on the same StateDir restarts into the identical state —
// with a completed checkpoint trail, without re-running the matcher.
// ctx bounds the drain; on expiry the in-flight update is aborted (it
// recovers on restart like a kill).
func (s *Service) Shutdown(ctx context.Context) error {
	start := time.Now()
	done := make(chan struct{})
	go func() {
		s.batcher.Close()
		close(done)
	}()
	select {
	case <-done:
		s.metrics.ShutdownDrainSec.Observe(time.Since(start).Seconds())
		s.closeStore()
		return nil
	case <-ctx.Done():
		s.applyCancel() // abort the in-flight update; the journal has it
		<-done
		s.closeStore()
		return fmt.Errorf("serve: shutdown drain aborted: %w", ctx.Err())
	}
}

// Kill aborts the in-flight update immediately (non-graceful stop, for
// crash testing): queued and in-flight batches fail with a cancellation,
// but every accepted batch is already journaled, so a restart on the
// same StateDir recovers them.
func (s *Service) Kill() {
	s.applyCancel()
	s.batcher.Close()
	s.closeStore()
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Service) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /records", s.handleIngest)
	s.mux.HandleFunc("GET /records/{key}", s.read(func(c *Committed, key string) (any, bool) {
		v, ok := c.Lookup(key)
		return v, ok
	}))
	s.mux.HandleFunc("GET /cluster/{key}", s.read(func(c *Committed, key string) (any, bool) {
		v, ok := c.Cluster(key)
		return v, ok
	}))
	s.mux.HandleFunc("GET /matches", s.handleMatches)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ingestRecord is the JSON ingest form; group/gold omitted mean
// ungrouped/unlabeled (-1).
type ingestRecord struct {
	Key   string `json:"key"`
	Group *int32 `json:"group"`
	Gold  *int32 `json:"gold"`
}

// ingestResponse acknowledges a POST /records.
type ingestResponse struct {
	Accepted int  `json:"accepted"`
	Seq      int  `json:"seq,omitempty"`     // committed seq (wait=1 only)
	Records  int  `json:"records,omitempty"` // committed records (wait=1 only)
	Matches  int  `json:"matches,omitempty"` // committed matches (wait=1 only)
	Queued   bool `json:"queued"`            // true when not waited for commit
}

// handleIngest parses a batch (JSON array or records TSV), enqueues it,
// and either acknowledges the enqueue (202) or, with ?wait=1, blocks
// until the batch's commit and reports the committed state (200).
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var records []cem.Record
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var in []ingestRecord
		if err := json.NewDecoder(body).Decode(&in); err != nil {
			s.badRequest(w, fmt.Errorf("decoding JSON records: %w", err))
			return
		}
		for _, rec := range in {
			br := cem.BasicRecord{Key: rec.Key, Group: -1, Gold: -1}
			if rec.Group != nil {
				br.Group = *rec.Group
			}
			if rec.Gold != nil {
				br.Gold = *rec.Gold
			}
			records = append(records, br)
		}
	} else {
		_, recs, err := cem.ReadRecords(body)
		if err != nil {
			s.badRequest(w, fmt.Errorf("decoding TSV records: %w", err))
			return
		}
		records = recs
	}
	if len(records) == 0 {
		s.badRequest(w, fmt.Errorf("empty batch"))
		return
	}
	for i, rec := range records {
		if rec.RecordKey() == "" {
			s.metrics.RejectedRecords.Add(int64(len(records)))
			s.badRequest(w, fmt.Errorf("record %d has an empty key", i))
			return
		}
	}

	done, err := s.batcher.Enqueue(r.Context(), records)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := ingestResponse{Accepted: len(records), Queued: true}
	status := http.StatusAccepted
	if r.URL.Query().Get("wait") != "" {
		select {
		case res := <-done:
			if res.Err != nil {
				http.Error(w, res.Err.Error(), http.StatusServiceUnavailable)
				return
			}
			resp.Queued = false
			resp.Seq = res.State.Seq
			resp.Records = res.State.Records()
			resp.Matches = res.State.Matches()
			status = http.StatusOK
		case <-r.Context().Done():
			// The records stay queued; the client just stopped waiting.
		}
	}
	writeJSON(w, status, resp)
}

// read wraps a snapshot lookup endpoint: one atomic snapshot load, one
// lookup, JSON out.
func (s *Service) read(lookup func(*Committed, string) (any, bool)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.Reads.Inc()
		snap := s.committer.Snapshot()
		v, ok := lookup(snap, r.PathValue("key"))
		if !ok {
			s.metrics.ReadMiss.Inc()
			http.Error(w, "unknown record key", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, v)
		s.metrics.ReadSeconds.Observe(time.Since(start).Seconds())
	}
}

// handleMatches dumps the committed match set in the repo's canonical
// fixture form (text/plain), prefixed with a seq comment so scrapes can
// correlate with /stats.
func (s *Service) handleMatches(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Reads.Inc()
	snap := s.committer.Snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Emserve-Seq", fmt.Sprint(snap.Seq))
	fmt.Fprint(w, snap.RenderMatches())
	s.metrics.ReadSeconds.Observe(time.Since(start).Seconds())
}

// statsResponse is the /stats JSON document.
type statsResponse struct {
	Seq            int               `json:"seq"`
	Records        int               `json:"records"`
	Entities       int               `json:"entities"`
	MatchPairs     int               `json:"match_pairs"`
	CommittedAt    time.Time         `json:"committed_at"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	QueueRequests  int               `json:"queue_requests"`
	QueueRecords   int               `json:"queue_records"`
	IngestLag      float64           `json:"ingest_lag_seconds"`
	Pipeline       cem.PipelineStats `json:"pipeline"`
	Matcher        string            `json:"matcher"`
	Scheme         string            `json:"scheme"`
	LastWarm       bool              `json:"last_update_warm"`
	LastForced     bool              `json:"last_update_forced"`
	LastBlockingMS float64           `json:"last_blocking_ms"`
	LastMatchingMS float64           `json:"last_matching_ms"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.committer.Snapshot()
	qreqs, qrecs, oldest := s.batcher.Depth()
	resp := statsResponse{
		Seq:           snap.Seq,
		Records:       snap.Records(),
		Entities:      snap.Entities(),
		MatchPairs:    snap.Matches(),
		CommittedAt:   snap.At,
		UptimeSeconds: time.Since(s.started).Seconds(),
		QueueRequests: qreqs,
		QueueRecords:  qrecs,
		IngestLag:     oldest.Seconds(),
		Pipeline:      s.pipe.Stats(),
		Matcher:       s.cfg.Matcher,
		Scheme:        string(s.cfg.Scheme),
	}
	if snap.Result != nil {
		resp.LastWarm = snap.Result.WarmStarted
		resp.LastForced = snap.Result.ForcedRerun
		resp.LastBlockingMS = float64(snap.Result.BlockingTime.Milliseconds())
		resp.LastMatchingMS = float64(snap.Result.MatchingTime.Milliseconds())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.committer.Snapshot()
	qreqs, qrecs, oldest := s.batcher.Depth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, GaugeValues{
		QueueDepth:       qreqs,
		PendingRecords:   qrecs,
		OldestPendingAge: oldest.Seconds(),
		CommittedSeq:     snap.Seq,
		CommittedRecs:    snap.Records(),
		CommittedMatches: snap.Matches(),
		CommittedEnts:    snap.Entities(),
	})
}

func (s *Service) badRequest(w http.ResponseWriter, err error) {
	s.metrics.BadInputs.Inc()
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
