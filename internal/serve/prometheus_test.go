package serve

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file pins the /metrics output to the Prometheus text exposition
// format, version 0.0.4, with a strict line-by-line parser: every family
// must announce HELP then TYPE before its first sample, family names may
// not repeat or interleave, histogram buckets must carry strictly
// increasing parseable `le` bounds with non-decreasing cumulative counts,
// and the `+Inf` bucket must equal `_count`. A scrape that violates any
// of these is rejected by real Prometheus servers, so nonconformance is
// a bug even though our own tests would otherwise never notice.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus strictly parses a text-format exposition, failing the
// test on any structural violation. It returns the families in order.
func parsePrometheus(t *testing.T, text string) []promFamily {
	t.Helper()
	var (
		fams    []promFamily
		seen    = map[string]bool{}
		cur     *promFamily
		hasHelp = map[string]bool{}
	)
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition must end with a newline")
	}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		at := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d (%q): %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) || parts[1] == "" {
				at("malformed HELP line")
			}
			if hasHelp[parts[0]] {
				at("duplicate HELP for %s", parts[0])
			}
			hasHelp[parts[0]] = true
			if cur != nil && len(cur.samples) == 0 {
				at("family %s announced but has no samples", cur.name)
			}
			cur = nil // next line must be the TYPE of this same family
			if seen[parts[0]] {
				at("family %s reappears after other families", parts[0])
			}
			fams = append(fams, promFamily{name: parts[0]})
			seen[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				at("malformed TYPE line")
			}
			if len(fams) == 0 || fams[len(fams)-1].name != parts[0] || fams[len(fams)-1].typ != "" {
				at("TYPE %s must directly follow its own HELP", parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				at("unknown metric type %q", parts[1])
			}
			cur = &fams[len(fams)-1]
			cur.typ = parts[1]
		case strings.HasPrefix(line, "#"):
			at("stray comment (only HELP/TYPE comments are rendered)")
		default:
			if cur == nil {
				at("sample before any HELP/TYPE header")
			}
			s := parseSample(t, ln+1, line)
			base := s.name
			if cur.typ == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if base != cur.name {
				at("sample %s does not belong to family %s", s.name, cur.name)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	if cur != nil && len(cur.samples) == 0 {
		t.Fatalf("family %s announced but has no samples", cur.name)
	}
	for i := range fams {
		if fams[i].typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", fams[i].name)
		}
	}
	return fams
}

// parseSample parses `name value` or `name{l="v",...} value`.
func parseSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced label braces", ln)
		}
		s.name = line[:i]
		for _, pair := range strings.Split(line[i+1:j], ",") {
			m := labelRe.FindStringSubmatch(pair)
			if m == nil {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			if _, dup := s.labels[m[1]]; dup {
				t.Fatalf("line %d: duplicate label %q", ln, m[1])
			}
			s.labels[m[1]] = m[2]
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: want `name value`, got %d fields", ln, len(fields))
		}
		s.name, rest = fields[0], fields[1]
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", ln, s.name)
	}
	v, err := parsePromFloat(rest)
	if err != nil {
		t.Fatalf("line %d: invalid sample value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// parsePromFloat accepts what Prometheus accepts: Go float syntax plus
// the +Inf/-Inf/NaN spellings.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram validates one histogram family's bucket discipline.
func checkHistogram(t *testing.T, f promFamily) {
	t.Helper()
	var (
		lastLe  = math.Inf(-1)
		lastCum = int64(-1)
		infCum  = int64(-1)
		count   = int64(-1)
		sawSum  bool
	)
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket sample without le label", f.name)
			}
			bound, err := parsePromFloat(le)
			if err != nil {
				t.Fatalf("%s: unparseable le=%q: %v", f.name, le, err)
			}
			if bound <= lastLe {
				t.Fatalf("%s: le=%q not strictly increasing (prev %v)", f.name, le, lastLe)
			}
			lastLe = bound
			cum := int64(s.value)
			if float64(cum) != s.value || cum < lastCum {
				t.Fatalf("%s: bucket le=%q count %v not a non-decreasing integer", f.name, le, s.value)
			}
			lastCum = cum
			if math.IsInf(bound, 1) {
				if le != "+Inf" {
					t.Fatalf("%s: +Inf bucket spelled %q", f.name, le)
				}
				infCum = cum
			}
		case f.name + "_sum":
			sawSum = true
		case f.name + "_count":
			count = int64(s.value)
		default:
			t.Fatalf("%s: unexpected histogram sample %s", f.name, s.name)
		}
	}
	if infCum < 0 || !sawSum || count < 0 {
		t.Fatalf("%s: histogram missing +Inf bucket, _sum, or _count", f.name)
	}
	if infCum != count {
		t.Fatalf("%s: +Inf bucket %d != _count %d", f.name, infCum, count)
	}
}

// populatedMetrics builds a registry with every counter and histogram
// non-trivially populated (fractional sums included, to exercise float
// rendering).
func populatedMetrics() *Metrics {
	m := NewMetrics()
	m.IngestedRecords.Add(12)
	m.RejectedRecords.Inc()
	m.CommittedBatches.Add(3)
	m.CommittedRecords.Add(12)
	m.UpdatesCold.Inc()
	m.UpdatesWarm.Add(2)
	m.UpdatesForced.Inc()
	m.UpdateErrors.Inc()
	m.MatcherCalls.Add(700)
	m.MemoHits.Add(41)
	m.MemoMisses.Add(13)
	m.MemoInvals.Add(5)
	m.Reassignments.Add(2)
	m.RetriedSends.Add(7)
	m.LateBatches.Inc()
	m.JournalQuarantined.Inc()
	m.Reads.Add(9)
	m.ReadMiss.Inc()
	m.BadInputs.Inc()
	for _, v := range []float64{0.0004, 0.003, 0.003, 0.017, 0.25, 1.75, 42, 90} {
		m.IngestLag.Observe(v)
		m.UpdateSeconds.Observe(v)
		m.BlockingSeconds.Observe(v / 10)
		m.MatchingSeconds.Observe(v)
		m.RoundSeconds.Observe(v / 3)
		m.ReadSeconds.Observe(v / 100)
		m.ShutdownDrainSec.Observe(v)
	}
	for _, v := range []float64{1, 3, 4, 12, 700, 20000} {
		m.BatchRecords.Observe(v)
		m.BatchCalls.Observe(v)
	}
	return m
}

// TestPrometheusExposition renders the full registry and validates it
// against the strict 0.0.4 parser: header ordering, family uniqueness,
// sample attribution, label syntax, histogram bucket discipline.
func TestPrometheusExposition(t *testing.T) {
	var buf bytes.Buffer
	g := GaugeValues{
		QueueDepth: 3, PendingRecords: 17, OldestPendingAge: 0.512,
		CommittedSeq: 4, CommittedRecs: 12, CommittedMatches: 9, CommittedEnts: 30,
	}
	if err := populatedMetrics().WritePrometheus(&buf, g); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams := parsePrometheus(t, buf.String())
	byName := map[string]promFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}

	for _, want := range []string{
		"emserve_ingested_records_total", "emserve_updates_total",
		"emserve_matcher_calls_total", "emserve_memo_hits_total",
		"emserve_memo_misses_total", "emserve_memo_invalidations_total",
		"emserve_reassignments_total", "emserve_retried_sends_total",
		"emserve_late_batches_dropped_total", "emserve_journal_quarantined_total",
		"emserve_queue_depth", "emserve_ingest_lag_commit_seconds",
		"emserve_update_seconds", "emserve_shutdown_drain_seconds",
	} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("family %s missing from exposition", want)
		}
	}
	for _, f := range fams {
		if f.typ == "histogram" {
			checkHistogram(t, f)
		}
	}
	if got := byName["emserve_memo_hits_total"].samples[0].value; got != 41 {
		t.Fatalf("emserve_memo_hits_total = %v, want 41", got)
	}
	if got := len(byName["emserve_updates_total"].samples); got != 3 {
		t.Fatalf("emserve_updates_total has %d mode samples, want 3", got)
	}
	for _, s := range byName["emserve_updates_total"].samples {
		switch s.labels["mode"] {
		case "cold", "warm", "forced":
		default:
			t.Fatalf("unexpected updates_total mode %q", s.labels["mode"])
		}
	}
}

// TestPrometheusHistogramConsistentUnderLoad scrapes repeatedly while
// writers hammer a histogram: every rendered snapshot must keep the
// cumulative buckets monotone and `_count` equal to the `+Inf` bucket.
// (Deriving `_count` from a separate counter read races concurrent
// observers — the regression this test pins.)
func TestPrometheusHistogramConsistentUnderLoad(t *testing.T) {
	m := NewMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := []float64{0.0005, 0.004, 0.08, 0.7, 3, 45, 120}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					m.UpdateSeconds.Observe(vals[(i+w)%len(vals)])
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := m.WritePrometheus(&buf, GaugeValues{}); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		for _, f := range parsePrometheus(t, buf.String()) {
			if f.typ == "histogram" {
				checkHistogram(t, f)
			}
		}
	}
	close(stop)
	wg.Wait()
}
