package serve

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/match"
)

// This file is a minimal, dependency-free metrics registry that renders
// the Prometheus text exposition format (version 0.0.4): counters,
// gauges computed at scrape time, and fixed-bucket histograms. Only the
// stdlib is used — the service must not pull in a client library the
// container doesn't have, and the subset below (atomic counters,
// cumulative buckets, HELP/TYPE headers) is all an online matcher needs
// to expose ingest lag, warm/cold ratios and latency distributions.

// A Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	total  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets of the latency histograms: 1ms to 60s, roughly exponential —
// blocking an arriving batch is millisecond-scale, a forced cold re-run
// on a large corpus can take tens of seconds.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Buckets of the per-batch size/work histograms.
var sizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Metrics is the service's instrumentation: every counter and histogram
// the /metrics endpoint exports. One Metrics instance is shared by the
// batcher (queue/lag), the committer (update outcomes) and the HTTP
// layer (reads); the scrape-time gauges (queue depth, committed state)
// are supplied by the service at render time via GaugeValues, so the
// registry itself holds no references to live components.
type Metrics struct {
	// Ingest path.
	IngestedRecords Counter // records accepted into the ingest queue
	RejectedRecords Counter // records refused at the door (validation)

	// Commit path (one Update per committed batch).
	CommittedBatches Counter
	CommittedRecords Counter
	UpdatesCold      Counter // first batch: no prior to warm-start from
	UpdatesWarm      Counter // incremental fast path
	UpdatesForced    Counter // non-additive delta forced a full re-run
	UpdateErrors     Counter
	MatcherCalls     Counter
	MemoHits         Counter // matcher verdict-memo hits across committed updates
	MemoMisses       Counter // verdict-memo misses (computed fresh, no entry)
	MemoInvals       Counter // verdict-memo invalidations (relevant evidence changed)

	// Distributed-backend resilience, folded in per committed update
	// (all zero on in-process backends; see core.RunStats).
	Reassignments Counter // partitions replayed on a live worker after a death/deadline
	RetriedSends  Counter // transport sends retried after a transient error
	LateBatches   Counter // stale-epoch ShardBatches dropped (zombie worker answers)

	// Durability.
	JournalQuarantined Counter // torn trailing journal files renamed .corrupt by Recover
	StoreReopens       Counter // restarts served by reopening the store snapshot (no replay)

	// Reads.
	Reads     Counter
	ReadMiss  Counter // lookups of unknown record keys
	BadInputs Counter // malformed ingest payloads

	// Distributions.
	IngestLag        *Histogram // enqueue → commit, seconds
	UpdateSeconds    *Histogram // whole Pipeline.Update wall time
	BlockingSeconds  *Histogram // blocking stage of each update
	MatchingSeconds  *Histogram // matching stage of each update
	RoundSeconds     *Histogram // per matching round, via progress events
	BatchRecords     *Histogram // records per committed batch
	BatchCalls       *Histogram // matcher calls per committed batch
	ReadSeconds      *Histogram // read-endpoint latency
	ShutdownDrainSec *Histogram // graceful-shutdown drain time

	// Round tracking state for the progress observer (guarded: progress
	// callbacks are delivered sequentially, but BeginUpdate/EndUpdate run
	// on the committer goroutine).
	roundMu    sync.Mutex
	roundOpen  bool
	roundStart time.Time
}

// NewMetrics builds the full registry.
func NewMetrics() *Metrics {
	return &Metrics{
		IngestLag:        NewHistogram(latencyBuckets...),
		UpdateSeconds:    NewHistogram(latencyBuckets...),
		BlockingSeconds:  NewHistogram(latencyBuckets...),
		MatchingSeconds:  NewHistogram(latencyBuckets...),
		RoundSeconds:     NewHistogram(latencyBuckets...),
		BatchRecords:     NewHistogram(sizeBuckets...),
		BatchCalls:       NewHistogram(sizeBuckets...),
		ReadSeconds:      NewHistogram(latencyBuckets...),
		ShutdownDrainSec: NewHistogram(latencyBuckets...),
	}
}

// ProgressObserver returns a Runner progress callback that measures the
// wall time of each matching round: a round ends when the first event of
// the next round arrives (or when EndUpdate closes the run). Wire it
// into the pipeline with cem.WithProgress; the committer brackets every
// update with BeginUpdate/EndUpdate so rounds never smear across runs.
func (m *Metrics) ProgressObserver() func(match.ProgressEvent) {
	var lastRound int
	return func(e match.ProgressEvent) {
		m.roundMu.Lock()
		defer m.roundMu.Unlock()
		switch {
		case !m.roundOpen:
			m.roundOpen, m.roundStart, lastRound = true, time.Now(), e.Round
		case e.Round != lastRound:
			now := time.Now()
			m.RoundSeconds.Observe(now.Sub(m.roundStart).Seconds())
			m.roundStart, lastRound = now, e.Round
		}
	}
}

// BeginUpdate resets the round observer for a fresh run.
func (m *Metrics) BeginUpdate() {
	m.roundMu.Lock()
	m.roundOpen = false
	m.roundMu.Unlock()
}

// EndUpdate closes the final open round of a run.
func (m *Metrics) EndUpdate() {
	m.roundMu.Lock()
	if m.roundOpen {
		m.RoundSeconds.Observe(time.Since(m.roundStart).Seconds())
		m.roundOpen = false
	}
	m.roundMu.Unlock()
}

// GaugeValues carries the scrape-time gauges: live state the registry's
// cumulative metrics cannot represent. The service fills it from the
// batcher and the current committed snapshot on every render.
type GaugeValues struct {
	QueueDepth       int // ingest requests queued or pending a flush
	PendingRecords   int // records queued or pending a flush
	OldestPendingAge float64
	CommittedSeq     int
	CommittedRecs    int
	CommittedMatches int
	CommittedEnts    int
}

// WritePrometheus renders every metric in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer, g GaugeValues) error {
	bw := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("emserve_ingested_records_total", "Records accepted into the ingest queue.", m.IngestedRecords.Value())
	counter("emserve_rejected_records_total", "Records rejected by ingest validation.", m.RejectedRecords.Value())
	counter("emserve_committed_batches_total", "Delta batches committed through Pipeline.Update.", m.CommittedBatches.Value())
	counter("emserve_committed_records_total", "Records committed through Pipeline.Update.", m.CommittedRecords.Value())

	fmt.Fprintf(bw, "# HELP emserve_updates_total Completed updates by matching mode (cold first batch, warm incremental, forced full re-run).\n")
	fmt.Fprintf(bw, "# TYPE emserve_updates_total counter\n")
	fmt.Fprintf(bw, "emserve_updates_total{mode=\"cold\"} %d\n", m.UpdatesCold.Value())
	fmt.Fprintf(bw, "emserve_updates_total{mode=\"warm\"} %d\n", m.UpdatesWarm.Value())
	fmt.Fprintf(bw, "emserve_updates_total{mode=\"forced\"} %d\n", m.UpdatesForced.Value())

	counter("emserve_update_errors_total", "Updates that failed (the batch was not committed).", m.UpdateErrors.Value())
	counter("emserve_matcher_calls_total", "Matcher.Match invocations across all committed updates.", m.MatcherCalls.Value())
	counter("emserve_memo_hits_total", "Matcher verdict-memo hits across all committed updates.", m.MemoHits.Value())
	counter("emserve_memo_misses_total", "Matcher verdict-memo misses (computed fresh, no cached entry).", m.MemoMisses.Value())
	counter("emserve_memo_invalidations_total", "Matcher verdict-memo invalidations (cached entry's relevant evidence changed).", m.MemoInvals.Value())
	counter("emserve_reassignments_total", "Partitions replayed on a live worker after a worker death or round-deadline breach.", m.Reassignments.Value())
	counter("emserve_retried_sends_total", "Transport sends retried after a transient error.", m.RetriedSends.Value())
	counter("emserve_late_batches_dropped_total", "Stale-epoch shard batches dropped (a zombie worker answered a reassigned partition).", m.LateBatches.Value())
	counter("emserve_journal_quarantined_total", "Torn trailing journal files quarantined (renamed .corrupt) during recovery.", m.JournalQuarantined.Value())
	counter("emserve_store_reopens_total", "Restarts recovered by reopening the store snapshot instead of replaying.", m.StoreReopens.Value())
	counter("emserve_reads_total", "Read requests served from the committed snapshot.", m.Reads.Value())
	counter("emserve_read_miss_total", "Read lookups of record keys absent from the committed snapshot.", m.ReadMiss.Value())
	counter("emserve_bad_inputs_total", "Malformed ingest payloads rejected with a client error.", m.BadInputs.Value())

	gauge("emserve_queue_depth", "Ingest requests waiting in the queue or pending a flush.", float64(g.QueueDepth))
	gauge("emserve_pending_records", "Records waiting in the queue or pending a flush.", float64(g.PendingRecords))
	gauge("emserve_ingest_lag_seconds", "Age of the oldest pending (uncommitted) ingest request.", g.OldestPendingAge)
	gauge("emserve_committed_seq", "Sequence number of the committed snapshot (batches committed).", float64(g.CommittedSeq))
	gauge("emserve_committed_records", "Records in the committed snapshot.", float64(g.CommittedRecs))
	gauge("emserve_committed_matches", "Match pairs in the committed snapshot.", float64(g.CommittedMatches))
	gauge("emserve_committed_entities", "Entity references in the committed snapshot.", float64(g.CommittedEnts))

	histogram(bw, "emserve_ingest_lag_commit_seconds", "Enqueue-to-commit latency of ingest requests.", m.IngestLag)
	histogram(bw, "emserve_update_seconds", "Wall time of each Pipeline.Update (blocking + matching).", m.UpdateSeconds)
	histogram(bw, "emserve_update_blocking_seconds", "Blocking-stage wall time of each update.", m.BlockingSeconds)
	histogram(bw, "emserve_update_matching_seconds", "Matching-stage wall time of each update.", m.MatchingSeconds)
	histogram(bw, "emserve_round_seconds", "Wall time of each matching round.", m.RoundSeconds)
	histogram(bw, "emserve_batch_records", "Records per committed batch.", m.BatchRecords)
	histogram(bw, "emserve_batch_matcher_calls", "Matcher calls per committed batch.", m.BatchCalls)
	histogram(bw, "emserve_read_seconds", "Latency of read endpoints.", m.ReadSeconds)
	histogram(bw, "emserve_shutdown_drain_seconds", "Drain time of graceful shutdowns.", m.ShutdownDrainSec)
	return bw.err
}

// histogram renders one histogram family with cumulative buckets. The
// per-bucket counters are snapshotted once and `_count` is the +Inf
// cumulative of that same snapshot — deriving it from h.Count() instead
// can disagree with the buckets when Observe runs concurrently with a
// scrape, which strict text-format parsers reject.
func histogram(w io.Writer, name, help string, h *Histogram) {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(b), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// formatFloat renders a float the way Prometheus expects: plain decimal
// without a forced exponent, integers without a trailing ".0".
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// errWriter latches the first write error so render helpers stay terse.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
