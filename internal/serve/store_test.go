package serve

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cem "repro"
	"repro/match"
)

// TestServiceStoreShutdownReopen pins the restart-without-replay
// contract at the service level: a service on a disk store shuts down
// gracefully, and the restart reopens the store snapshot — the matcher
// is not called, not a single neighborhood is evaluated, and the
// committed state is byte-identical. This is strictly stronger than the
// checkpoint-trail restart (TestServiceShutdownRestart), which replays
// the trail even though it skips the matcher.
func TestServiceStoreShutdownReopen(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	state := t.TempDir()

	svc, err := New(context.Background(), Config{StateDir: state, Store: "disk", Batching: fastBatching})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batchCuts(records) {
		ingestWait(t, svc, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	want := svc.Snapshot()

	var evals atomic.Int64
	svc2, err := New(context.Background(), Config{
		StateDir: state, Store: "disk", Batching: fastBatching,
		RunnerOptions: []cem.RunnerOption{cem.WithProgress(func(match.ProgressEvent) { evals.Add(1) })},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Kill()
	got := svc2.Snapshot()
	if got.Seq != want.Seq || got.RenderMatches() != want.RenderMatches() {
		t.Fatalf("store restart diverges: seq %d vs %d, %d vs %d matches",
			got.Seq, want.Seq, got.Matches(), want.Matches())
	}
	if n := evals.Load(); n != 0 {
		t.Errorf("store restart evaluated %d neighborhoods, want 0 (reopen, not replay)", n)
	}
	if calls := svc2.pipe.Stats().MatcherCalls; calls != 0 {
		t.Errorf("store restart made %d matcher calls, want 0", calls)
	}
	if n := svc2.metrics.StoreReopens.Value(); n != 1 {
		t.Errorf("emserve_store_reopens_total = %d, want 1", n)
	}
	var m strings.Builder
	if err := svc2.metrics.WritePrometheus(&m, GaugeValues{}); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"emserve_store_reopens_total 1", "emserve_matcher_calls_total 0"} {
		if !strings.Contains(m.String(), line+"\n") {
			t.Errorf("/metrics after store restart is missing %q", line)
		}
	}

	// The stream continues incrementally on the reopened state and stays
	// equal to an uninterrupted cold run over the same arrival order.
	extra, err := cem.GenerateRecords(cem.DBLP, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := ingestWait(t, svc2, extra)
	if last.Seq != want.Seq+1 {
		t.Errorf("post-restart batch at seq %d, want %d", last.Seq, want.Seq+1)
	}
	cold, err := testPipeline(t).Run(context.Background(), append(append([]cem.Record{}, records...), extra...))
	if err != nil {
		t.Fatal(err)
	}
	if last.RenderMatches() != renderPipelineMatches(cold) {
		t.Error("reopened + continued stream diverges from the cold run")
	}
}

// TestServiceStoreKillRestart: killed mid-update on a disk store, the
// restart reopens the snapshot of the last COMMITTED batch and folds
// only the interrupted batch through the engine — nothing lost, nothing
// duplicated, final state equal to the uninterrupted run.
func TestServiceStoreKillRestart(t *testing.T) {
	records := testRecords(t, cem.HEPTH)
	state := t.TempDir()
	batches := batchCuts(records)

	ctx, cancel := context.WithCancel(context.Background())
	var armed atomic.Bool
	var once sync.Once
	svc, err := New(ctx, Config{
		StateDir: state, Store: "disk", Batching: fastBatching,
		RunnerOptions: []cem.RunnerOption{cem.WithProgress(func(e match.ProgressEvent) {
			if armed.Load() && e.Round >= 2 {
				once.Do(cancel)
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestWait(t, svc, batches[0])

	armed.Store(true)
	done, err := svc.Ingest(context.Background(), batches[1])
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.Err == nil {
			t.Fatal("kill mid-batch did not abort the update (batch committed)")
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("killed batch never resolved")
	}
	svc.Kill()

	svc2, err := New(context.Background(), Config{StateDir: state, Store: "disk", Batching: fastBatching})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Kill()
	got := svc2.Snapshot()
	if got.Seq != 2 {
		t.Fatalf("restart recovered to seq %d, want 2 (interrupted batch finished)", got.Seq)
	}
	if n := svc2.metrics.StoreReopens.Value(); n != 1 {
		t.Errorf("emserve_store_reopens_total = %d, want 1 (seq-1 snapshot reopened before the fold)", n)
	}
	cold, err := testPipeline(t).Run(context.Background(), records[:len(batches[0])+len(batches[1])])
	if err != nil {
		t.Fatal(err)
	}
	if got.RenderMatches() != renderPipelineMatches(cold) {
		t.Error("store kill + restart diverges from the uninterrupted run")
	}
}

// TestServiceStoreConfigValidation pins the config failure modes: a
// store without a state directory, and an unregistered backend name.
func TestServiceStoreConfigValidation(t *testing.T) {
	if _, err := New(context.Background(), Config{Store: "disk"}); err == nil {
		t.Fatal("New accepted a store without a state directory")
	}
	if _, err := New(context.Background(), Config{StateDir: t.TempDir(), Store: "bogus"}); err == nil {
		t.Fatal("New accepted an unregistered store name")
	}
}
