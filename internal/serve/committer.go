package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cem "repro"
	"repro/match"
)

// Committer owns the single-writer commit path of the online service:
// batches of records are applied serially through Pipeline.Update, each
// batch optionally journaled to disk before it runs, and every
// successful update is published as a new immutable Committed snapshot
// via an atomic pointer swap. Readers call Snapshot at any time and get
// the last committed state, never a torn intermediate.
//
// The same Committer drives `emmatch -ingest` batch replay (without a
// journal), so the CLI's replay semantics and the service's serving
// semantics are one code path and cannot drift.
type Committer struct {
	pipe       *cem.Pipeline
	journalDir string
	store      match.Store
	metrics    *Metrics
	logf       func(format string, args ...any)

	mu         sync.Mutex // serializes Apply/Recover
	journalSeq int        // highest journaled batch number
	cur        atomic.Pointer[Committed]
}

// CommitterOption customizes a Committer.
type CommitterOption func(*Committer)

// WithJournal persists every incoming batch to dir (created if missing)
// as batch-NNNNNN.tsv BEFORE applying it, so a crash mid-update loses no
// records: Recover replays the journal into an identical state. Without
// a journal the committer is ephemeral (the replay-CLI mode).
func WithJournal(dir string) CommitterOption {
	return func(c *Committer) { c.journalDir = dir }
}

// WithStore persists every committed state into s (cem.SaveState after
// each successful update, before the state is published), so a restart
// reopens the store snapshot — Pipeline.Reopen, zero matcher calls —
// instead of replaying the journal through the engine. The store must be
// the same one the pipeline's runner carries (cem.WithOpenedStore): the
// runner mirrors evidence into it round by round, the committer adds the
// snapshot and postings blobs per commit. The committer does not close
// the store.
func WithStore(s match.Store) CommitterOption {
	return func(c *Committer) { c.store = s }
}

// WithMetrics wires the commit path into a metrics registry.
func WithMetrics(m *Metrics) CommitterOption {
	return func(c *Committer) { c.metrics = m }
}

// WithCommitterLog installs a logger for recovery events (quarantined
// journal files). Nil (the default) is silent.
func WithCommitterLog(logf func(format string, args ...any)) CommitterOption {
	return func(c *Committer) { c.logf = logf }
}

// NewCommitter builds a committer over a pipeline. The pipeline's
// scheme must have an incremental path (NO-MP/SMP/MMP) — Update rejects
// FULL/UB on the first batch otherwise.
func NewCommitter(pipe *cem.Pipeline, opts ...CommitterOption) (*Committer, error) {
	if pipe == nil {
		return nil, fmt.Errorf("serve: nil pipeline")
	}
	c := &Committer{pipe: pipe}
	for _, o := range opts {
		o(c)
	}
	if c.journalDir != "" {
		if err := os.MkdirAll(c.journalDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: journal dir: %w", err)
		}
	}
	c.cur.Store(emptyCommitted())
	return c, nil
}

// Pipeline returns the pipeline the committer applies batches through
// (for cumulative Pipeline.Stats reporting).
func (c *Committer) Pipeline() *cem.Pipeline { return c.pipe }

// Snapshot returns the current committed state. Never nil; before the
// first commit it is the empty Seq-0 state.
func (c *Committer) Snapshot() *Committed { return c.cur.Load() }

// Apply journals and applies one batch of records, publishing the new
// state on success. Batches are applied strictly serially (callers may
// race; a mutex orders them). On failure nothing is published; a batch
// that failed because the context was canceled (a shutdown or kill mid
// update) KEEPS its journal entry — the records were accepted, and
// Recover finishes the interrupted commit on restart. Any other failure
// (invalid records) removes the journal entry and reports the error.
func (c *Committer) Apply(ctx context.Context, records []cem.Record) (*Committed, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("serve: empty batch")
	}
	for i, r := range records {
		if r.RecordKey() == "" {
			return nil, fmt.Errorf("serve: record %d has an empty key", i)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	path, err := c.journal(records)
	if err != nil {
		return nil, err
	}
	state, err := c.apply(ctx, records)
	if err != nil {
		if path != "" && ctx.Err() == nil {
			// The batch itself was rejected (not a kill): drop it from
			// the journal so a restart does not replay a poison batch.
			os.Remove(path)
			c.journalSeq--
		}
		return nil, err
	}
	return state, nil
}

// apply runs one Update and publishes the result. Caller holds mu.
func (c *Committer) apply(ctx context.Context, records []cem.Record) (*Committed, error) {
	prior := c.cur.Load()
	start := time.Now()
	if c.metrics != nil {
		c.metrics.BeginUpdate()
	}
	res, err := c.pipe.Update(ctx, prior.Result, records)
	if c.metrics != nil {
		c.metrics.EndUpdate()
	}
	if err != nil {
		if c.metrics != nil {
			c.metrics.UpdateErrors.Inc()
		}
		return nil, err
	}
	state := newCommitted(prior.Seq+1, res)
	if c.store != nil {
		// Durable-state-first: the snapshot is written before the state is
		// published, so a SaveState failure leaves the previous committed
		// state in place and the batch in the journal — a restart replays
		// it, nothing is lost and nothing half-published.
		if err := cem.SaveState(c.store, res, state.Seq); err != nil {
			if c.metrics != nil {
				c.metrics.UpdateErrors.Inc()
			}
			return nil, fmt.Errorf("serve: saving store state at seq %d: %w", state.Seq, err)
		}
	}
	if c.metrics != nil {
		m := c.metrics
		m.CommittedBatches.Inc()
		m.CommittedRecords.Add(int64(len(records)))
		switch {
		case res.WarmStarted:
			m.UpdatesWarm.Inc()
		case res.ForcedRerun:
			m.UpdatesForced.Inc()
		default:
			m.UpdatesCold.Inc()
		}
		m.MatcherCalls.Add(int64(res.Stats.MatcherCalls))
		m.MemoHits.Add(res.Stats.Cache.Hits)
		m.MemoMisses.Add(res.Stats.Cache.Misses)
		m.MemoInvals.Add(res.Stats.Cache.Invalidations)
		m.Reassignments.Add(int64(res.Stats.Reassignments))
		m.RetriedSends.Add(int64(res.Stats.RetriedSends))
		m.LateBatches.Add(int64(res.Stats.LateBatchesDropped))
		m.UpdateSeconds.Observe(time.Since(start).Seconds())
		m.BlockingSeconds.Observe(res.BlockingTime.Seconds())
		m.MatchingSeconds.Observe(res.MatchingTime.Seconds())
		m.BatchRecords.Observe(float64(len(records)))
		m.BatchCalls.Observe(float64(res.Stats.MatcherCalls))
	}
	c.cur.Store(state)
	return state, nil
}

// journalFooter marks the end of a fully written journal file: a
// comment line (so ReadRecords ignores it) carrying the record count.
// A file missing it — or carrying a count the records don't add up to —
// was torn mid-write; Recover refuses to treat a clean-parsing prefix
// of a torn file as a complete batch.
const journalFooter = "# journal-end %d\n"

// journal persists a batch before it is applied (tmp + rename + fsync,
// like the checkpoint trail). Returns "" when journaling is disabled.
func (c *Committer) journal(records []cem.Record) (string, error) {
	if c.journalDir == "" {
		return "", nil
	}
	c.journalSeq++
	path := filepath.Join(c.journalDir, fmt.Sprintf("batch-%06d.tsv", c.journalSeq))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		c.journalSeq--
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	err = cem.WriteRecords(f, fmt.Sprintf("batch-%06d", c.journalSeq), records)
	if err == nil {
		_, err = fmt.Fprintf(f, journalFooter, len(records))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		c.journalSeq--
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	return path, nil
}

// Recover rebuilds the committed state from the journal: the service's
// restart path. With a store (WithStore), it first tries the
// restart-without-replay shortcut — reopen the state snapshot SaveState
// wrote at the last commit and fold only the batches journaled after it
// (see reopenFromStore); the paths below run only when the store cannot
// serve. With tryResume (the pipeline was built with a checkpoint
// directory), it first attempts Pipeline.Resume over the full journaled
// stream — a clean shutdown leaves a completed trail, so the matcher is
// not called at all, and a kill mid-update leaves a partial trail that
// resumes at the first unfinished round. When the trail cannot serve
// (killed before the interrupted batch reached its first round boundary,
// or no trail), it falls back to folding the journaled batches through
// Pipeline.Update exactly as they were originally applied — equivalent
// by the incremental differential guarantee. Returns the number of
// journaled batches restored.
//
// A crash can tear the journal itself: die inside journal() and the
// trailing batch file may hold half a record line, or parse cleanly yet
// stop short of its commit footer. Such a file describes a batch that
// was never applied (journaling strictly precedes Update), so Recover
// quarantines it — renamed to <file>.corrupt, counted in metrics,
// logged — and restores the intact prefix. An unreadable file anywhere
// BUT the tail is a hard error: dropping it would silently lose the
// committed batches journaled after it.
func (c *Committer) Recover(ctx context.Context, tryResume bool) (int, error) {
	if c.journalDir == "" {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	paths, err := filepath.Glob(filepath.Join(c.journalDir, "batch-*.tsv"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return 0, nil
	}
	var (
		batches [][]cem.Record
		all     []cem.Record
	)
	for i, p := range paths {
		recs, rerr := readJournalFile(p)
		if rerr != nil {
			if i != len(paths)-1 {
				// Damage in the MIDDLE of the journal means committed
				// history after it would be silently lost on replay —
				// that is data corruption, not a torn tail, and no
				// automatic recovery is honest about it.
				return 0, fmt.Errorf("serve: recover %s: %w (not the trailing file; refusing to drop the journaled batches after it)", p, rerr)
			}
			// The trailing file was torn by a crash mid-journal: the
			// batch was never applied (journaling happens strictly
			// before Update), so quarantining it loses nothing that was
			// ever committed. Rename it aside for inspection and
			// recover the intact prefix.
			q := p + ".corrupt"
			if qerr := os.Rename(p, q); qerr != nil {
				return 0, fmt.Errorf("serve: recover: quarantining %s: %v (parse error: %w)", p, qerr, rerr)
			}
			if c.metrics != nil {
				c.metrics.JournalQuarantined.Inc()
			}
			if c.logf != nil {
				c.logf("recover: quarantined torn journal file %s -> %s: %v", p, q, rerr)
			}
			paths = paths[:i]
			break
		}
		batches = append(batches, recs)
		all = append(all, recs...)
	}
	c.journalSeq = len(paths)
	if len(paths) == 0 {
		return 0, nil
	}

	// Store fast path: a committer with a store saved a full state
	// snapshot at every commit, so the snapshot's sequence number tells
	// exactly which journal prefix it spans. Reopen restores that state
	// with ZERO matcher work (no trail replay, no re-matching); only
	// batches journaled after the snapshot — accepted but killed before
	// their commit completed — are folded through the engine.
	if c.store != nil {
		if n, ok := c.reopenFromStore(ctx, batches); ok {
			for i, recs := range batches[n:] {
				if _, err := c.apply(ctx, recs); err != nil {
					return n + i, fmt.Errorf("serve: recover: replaying batch %d after store reopen: %w", n+i+1, err)
				}
			}
			return len(paths), nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
	}

	if tryResume {
		if res, err := c.pipe.Resume(ctx, all); err == nil {
			c.cur.Store(newCommitted(len(paths), res))
			return len(paths), nil
		} else if ctx.Err() != nil {
			return 0, err
		}
		// The trail does not cover the journaled stream (e.g. the
		// process died before the last batch's first round boundary, so
		// the trail's cover predates it): replay instead.
	}
	for i, recs := range batches {
		if _, err := c.apply(ctx, recs); err != nil {
			return i, fmt.Errorf("serve: recover: replaying batch %d: %w", i+1, err)
		}
	}
	return len(paths), nil
}

// reopenFromStore attempts the restart-without-replay path: read the
// saved snapshot's commit sequence number, reassemble the exact record
// stream it was built over (the journal prefix it spans — SaveState
// runs once per committed batch, so snapshot seq N covers exactly the
// first N journaled batches), and Pipeline.Reopen the state from the
// store without invoking the matcher. On success the committed state is
// installed and (seq, true) returned; any inconsistency — a fresh store
// with no snapshot yet, a snapshot the journal does not cover, a reopen
// validation failure — returns (0, false) and sends Recover down the
// trail-resume/replay path instead: the journal stays the source of
// truth, the store is only ever a shortcut.
func (c *Committer) reopenFromStore(ctx context.Context, batches [][]cem.Record) (int, bool) {
	seq, err := cem.StateSeq(c.store)
	if err != nil {
		if !errors.Is(err, match.ErrBlobNotFound) && c.logf != nil {
			c.logf("recover: store snapshot unreadable, replaying the journal: %v", err)
		}
		return 0, false
	}
	if seq <= 0 || seq > len(batches) {
		if c.logf != nil {
			c.logf("recover: store snapshot at seq %d does not line up with the journal (%d batches), replaying", seq, len(batches))
		}
		return 0, false
	}
	var records []cem.Record
	for _, b := range batches[:seq] {
		records = append(records, b...)
	}
	res, gotSeq, err := c.pipe.Reopen(ctx, records, c.store)
	if err != nil {
		if c.logf != nil {
			c.logf("recover: store reopen failed, replaying the journal: %v", err)
		}
		return 0, false
	}
	c.cur.Store(newCommitted(gotSeq, res))
	if c.metrics != nil {
		c.metrics.StoreReopens.Inc()
	}
	if c.logf != nil {
		c.logf("recover: reopened store state at seq %d (%d records, %d matches) with no replay", gotSeq, len(records), res.Matches.Len())
	}
	return gotSeq, true
}

// readJournalFile parses one journal batch file and verifies it is
// complete: the records parse, and the last line is the commit footer
// carrying exactly their count. Any truncation that loses content fails
// here — cutting a record line breaks the parse, and cutting at a line
// boundary (a clean-parsing prefix) removes or shortens the footer,
// which is the final line of every fully journaled batch. A file
// missing only the footer's trailing newline still holds every record
// and the full count, so it is accepted: quarantining it would discard
// an accepted batch for one lost terminator byte.
func readJournalFile(path string) ([]cem.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	_, recs, err := cem.ReadRecords(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	body := strings.TrimRight(string(data), "\n")
	last := body[strings.LastIndexByte(body, '\n')+1:]
	if want := fmt.Sprintf("# journal-end %d", len(recs)); last != want {
		return nil, fmt.Errorf("missing or mismatched commit footer (file was torn mid-write)")
	}
	return recs, nil
}
