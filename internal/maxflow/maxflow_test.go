package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	if f := g.MaxFlow(0, 1); f != 5 {
		t.Fatalf("flow = %v, want 5", f)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	if f := g.MaxFlow(1, 1); f != 0 {
		t.Fatalf("flow s==t = %v, want 0", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 3, 3)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Fatalf("flow = %v, want 0", f)
	}
	side := g.MinCutSource(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Errorf("cut sides wrong: %v", side)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("flow = %v, want 23", f)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2.5)
	if f := g.MaxFlow(0, 1); math.Abs(f-3.5) > 1e-9 {
		t.Fatalf("flow = %v, want 3.5", f)
	}
}

func TestNegativeCapacityClamped(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, -3)
	if f := g.MaxFlow(0, 1); f != 0 {
		t.Fatalf("negative capacity must clamp to 0, flow = %v", f)
	}
}

func TestUndirected(t *testing.T) {
	g := New(3)
	g.AddUndirected(0, 1, 2)
	g.AddUndirected(1, 2, 2)
	if f := g.MaxFlow(0, 2); math.Abs(f-2) > 1e-9 {
		t.Fatalf("flow = %v, want 2", f)
	}
}

// bruteMinCut enumerates all 2^(n-2) cuts of a small graph and returns the
// minimum cut value separating s from t.
func bruteMinCut(n int, edges [][3]float64, s, t int) float64 {
	others := []int{}
	for v := 0; v < n; v++ {
		if v != s && v != t {
			others = append(others, v)
		}
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(others); mask++ {
		source := make([]bool, n)
		source[s] = true
		for i, v := range others {
			if mask&(1<<i) != 0 {
				source[v] = true
			}
		}
		var cut float64
		for _, e := range edges {
			u, v, c := int(e[0]), int(e[1]), e[2]
			if c < 0 {
				c = 0
			}
			if source[u] && !source[v] {
				cut += c
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

// TestAgainstBruteForce verifies max-flow == min-cut on random graphs by
// exhaustive cut enumeration (max-flow/min-cut duality).
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		m := rng.Intn(3 * n)
		edges := make([][3]float64, 0, m)
		g := New(n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Float64() * 10
			edges = append(edges, [3]float64{float64(u), float64(v), c})
			g.AddEdge(u, v, c)
		}
		s, tt := 0, n-1
		got := g.MaxFlow(s, tt)
		want := bruteMinCut(n, edges, s, tt)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: flow %v != brute min cut %v (n=%d edges=%v)",
				trial, got, want, n, edges)
		}
		// The reported cut must also be a valid s-t cut of value == flow.
		side := g.MinCutSource(s)
		if !side[s] || side[tt] {
			t.Fatalf("trial %d: invalid cut sides", trial)
		}
		var cutVal float64
		for _, e := range edges {
			u, v, c := int(e[0]), int(e[1]), e[2]
			if side[u] && !side[v] {
				cutVal += c
			}
		}
		if math.Abs(cutVal-got) > 1e-6 {
			t.Fatalf("trial %d: cut value %v != flow %v", trial, cutVal, got)
		}
	}
}

func TestLargeLayeredGraph(t *testing.T) {
	// Layered graph: s -> layer1 (w nodes) -> layer2 -> t, unit capacities.
	const w = 50
	g := New(2 + 2*w)
	s, sink := 0, 1+2*w
	for i := 0; i < w; i++ {
		g.AddEdge(s, 1+i, 1)
		g.AddEdge(1+i, 1+w+i, 1)
		g.AddEdge(1+w+i, sink, 1)
	}
	if f := g.MaxFlow(s, sink); math.Abs(f-w) > 1e-9 {
		t.Fatalf("flow = %v, want %d", f, w)
	}
}

func BenchmarkMaxFlowGrid(b *testing.B) {
	// 20x20 grid network with random capacities.
	const side = 20
	rng := rand.New(rand.NewSource(3))
	type edge struct {
		u, v int
		c    float64
	}
	var edges []edge
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				edges = append(edges, edge{id(r, c), id(r+1, c), rng.Float64() * 5})
			}
			if c+1 < side {
				edges = append(edges, edge{id(r, c), id(r, c+1), rng.Float64() * 5})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(side * side)
		for _, e := range edges {
			g.AddEdge(e.u, e.v, e.c)
		}
		g.MaxFlow(0, side*side-1)
	}
}
