// Package maxflow implements Dinic's maximum-flow algorithm on an
// adjacency-list flow network, together with the minimum s-t cut it
// induces. It is the inference substrate of the MLN matcher: MAP
// inference in a supermodular pairwise model reduces to a single min-cut
// (Kolmogorov & Zabih, ECCV 2002 — reference [11] of the paper).
//
// Capacities are float64. The graph is built once with AddEdge and then
// solved with MaxFlow; MinCutSource reports which side of the cut each
// vertex lies on.
package maxflow

import "math"

// eps is the tolerance below which residual capacity counts as exhausted.
const eps = 1e-12

// Graph is a flow network over vertices [0, n).
type Graph struct {
	n     int
	head  []int32 // head[v] = first arc index of v, -1 if none
	next  []int32 // next[a] = next arc of the same tail
	to    []int32 // to[a] = head vertex of arc a
	cap_  []float64
	level []int32
	iter  []int32
	stack []int32 // MinCutSource scratch
	queue []int32 // bfs scratch
}

// New returns an empty flow network with n vertices.
func New(n int) *Graph {
	g := &Graph{}
	g.Reset(n)
	return g
}

// Reset re-initializes the graph to n empty vertices, reusing every
// previously grown buffer. It makes one Graph serve many solves — the
// per-invocation pooling the MLN matcher's inference loop relies on — at
// the cost of an O(n) head reset instead of fresh allocations.
func (g *Graph) Reset(n int) {
	g.n = n
	if cap(g.head) < n {
		g.head = make([]int32, n)
	}
	g.head = g.head[:n]
	for i := range g.head {
		g.head[i] = -1
	}
	g.to = g.to[:0]
	g.cap_ = g.cap_[:0]
	g.next = g.next[:0]
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Arcs returns the number of directed arcs (including residual arcs).
func (g *Graph) Arcs() int { return len(g.to) }

// AddEdge adds a directed edge u→v with capacity c (and the implicit
// residual arc v→u with capacity 0). Zero and negative capacities are
// clamped to 0, which keeps callers' energy constructions simple.
func (g *Graph) AddEdge(u, v int, c float64) {
	if c < 0 {
		c = 0
	}
	g.addArc(u, v, c)
	g.addArc(v, u, 0)
}

// AddUndirected adds an undirected edge: capacity c in both directions.
func (g *Graph) AddUndirected(u, v int, c float64) {
	if c < 0 {
		c = 0
	}
	g.addArc(u, v, c)
	g.addArc(v, u, c)
}

func (g *Graph) addArc(u, v int, c float64) {
	a := int32(len(g.to))
	g.to = append(g.to, int32(v))
	g.cap_ = append(g.cap_, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = a
}

// bfs builds the level graph from s; returns true if t is reachable.
func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := append(g.queue[:0], int32(s))
	g.level[s] = 0
	for at := 0; at < len(queue); at++ {
		v := queue[at]
		for a := g.head[v]; a != -1; a = g.next[a] {
			if g.cap_[a] > eps && g.level[g.to[a]] < 0 {
				g.level[g.to[a]] = g.level[v] + 1
				queue = append(queue, g.to[a])
			}
		}
	}
	g.queue = queue
	return g.level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (g *Graph) dfs(v, t int, f float64) float64 {
	if v == t {
		return f
	}
	for ; g.iter[v] != -1; g.iter[v] = g.next[g.iter[v]] {
		a := g.iter[v]
		u := g.to[a]
		if g.cap_[a] <= eps || g.level[u] != g.level[v]+1 {
			continue
		}
		d := g.dfs(int(u), t, math.Min(f, g.cap_[a]))
		if d > eps {
			g.cap_[a] -= d
			g.cap_[a^1] += d
			return d
		}
	}
	return 0
}

// MaxFlow computes the maximum s→t flow. It may be called once per graph
// build (New or Reset); afterwards the capacities hold the residual
// network that MinCutSource inspects.
func (g *Graph) MaxFlow(s, t int) float64 {
	if s == t {
		return 0
	}
	if cap(g.level) < g.n {
		g.level = make([]int32, g.n)
		g.iter = make([]int32, g.n)
	}
	g.level = g.level[:g.n]
	g.iter = g.iter[:g.n]
	var flow float64
	for g.bfs(s, t) {
		copy(g.iter, g.head)
		for {
			f := g.dfs(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCutSource returns, after MaxFlow has run, the set of vertices on the
// source side of the minimum cut as a boolean slice indexed by vertex.
func (g *Graph) MinCutSource(s int) []bool {
	return g.MinCutSourceInto(s, make([]bool, g.n))
}

// MinCutSourceInto is MinCutSource writing into a caller-provided buffer
// (len ≥ n, reused across solves); the buffer's first n entries are
// overwritten and returned.
func (g *Graph) MinCutSourceInto(s int, seen []bool) []bool {
	seen = seen[:g.n]
	for i := range seen {
		seen[i] = false
	}
	stack := append(g.stack[:0], int32(s))
	seen[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := g.head[v]; a != -1; a = g.next[a] {
			if g.cap_[a] > eps && !seen[g.to[a]] {
				seen[g.to[a]] = true
				stack = append(stack, g.to[a])
			}
		}
	}
	g.stack = stack
	return seen
}
