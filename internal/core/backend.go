package core

import (
	"context"
	"fmt"
)

// RoundPlan is the immutable description of one round-based scheme run:
// which scheme, over which cover, with which matcher. Backends read it;
// only the RoundDriver mutates run state. The paper's map/reduce view of
// SMP and MMP (§6.3) is exactly this split: a plan that any worker
// topology can execute, plus a central reduce.
type RoundPlan struct {
	// Config is the framework configuration (cover, matcher, relation,
	// negative evidence, parallelism, progress callback).
	Config Config
	// Scheme is the canonical scheme name ("NO-MP", "SMP", "MMP").
	Scheme string
	// Exchange reports whether rounds exchange evidence and re-activate
	// affected neighborhoods (SMP/MMP). NO-MP runs exactly one round with
	// a nil evidence snapshot.
	Exchange bool
	// WithMessages reports whether evaluations additionally compute
	// maximal messages (MMP).
	WithMessages bool
	// Prob is the Type-II view of the matcher; non-nil iff WithMessages.
	Prob Probabilistic
	// CanSkip reports whether the matcher opted into the
	// candidate-closure contract (ScopePreparer), allowing undecided-free
	// re-activations to be discharged without a matcher call.
	CanSkip bool
}

// NewRoundPlan validates the scheme, announces the cover to a
// scope-preparing matcher, and builds the plan. It is exported for
// out-of-process executors (cmd/emworker) that must reconstruct the
// identical plan from the same configuration; in-process callers go
// through RunBackend, which builds the plan itself.
func NewRoundPlan(cfg Config, scheme string) (*RoundPlan, error) {
	plan := &RoundPlan{Config: cfg, Scheme: scheme}
	switch scheme {
	case "NO-MP":
	case "SMP":
		plan.Exchange = true
	case "MMP":
		prob, ok := cfg.Matcher.(Probabilistic)
		if !ok {
			return nil, fmt.Errorf("core: MMP requires a Probabilistic (Type-II) matcher, got %T", cfg.Matcher)
		}
		plan.Exchange, plan.WithMessages, plan.Prob = true, true, prob
	default:
		return nil, fmt.Errorf("core: scheme %q has no round-based executor", scheme)
	}
	plan.CanSkip = prepareScopes(&plan.Config)
	return plan, nil
}

// Evaluate runs one neighborhood against the given evidence replica —
// the Map unit a remote worker executes against its private copy of
// M+. It is a read-only use of the plan and safe to call concurrently.
func (p *RoundPlan) Evaluate(id int32, evidence PairSet, allowSkip bool) Job {
	return evalNeighborhood(&p.Config, id, evidence, p.WithMessages, allowSkip, p.Prob)
}

// Backend executes the rounds of a message-passing scheme. A backend
// owns the Map side — where and how the active neighborhoods are
// evaluated each round — while the RoundDriver owns the Reduce side:
// merging evidence, promoting messages, deriving the next active set,
// and checkpointing. Theorems 2 and 4 (consistency) are what make the
// backend choice invisible in the output: any topology that evaluates
// each round's active set against the round-start evidence snapshot
// produces the identical match set for well-behaved matchers.
//
// The contract per round: call driver.Evaluate (or equivalent) for every
// id in driver.Active(), against an evidence snapshot equal to
// driver.Snapshot() at round start, and pass the jobs — in active-set
// order — to driver.FinishRound. Repeat until driver.Done().
type Backend interface {
	RunRounds(ctx context.Context, plan *RoundPlan, driver *RoundDriver) error
}

// PoolBackend is the default execution backend: rounds are mapped on an
// in-process worker pool over shared memory (plan.Config.Parallelism
// workers), exactly the executor WithParallelism has always used.
type PoolBackend struct{}

// RunRounds implements Backend.
func (PoolBackend) RunRounds(ctx context.Context, plan *RoundPlan, d *RoundDriver) error {
	for !d.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Round 1 visits every neighborhood for the first time; later
		// rounds are re-activations, where undecided-free scopes may be
		// discharged without a matcher call (candidate-closure matchers
		// only; see ScopePreparer).
		jobs, err := mapNeighborhoods(ctx, plan.Config, d.Active(), d.Snapshot(),
			plan.WithMessages, d.AllowSkip(), plan.Prob)
		if err != nil {
			return err
		}
		if err := d.FinishRound(jobs); err != nil {
			return err
		}
	}
	return nil
}
