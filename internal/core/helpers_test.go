package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
)

var bg = context.Background()

// mustRun executes a context-aware scheme and fails the test on error —
// keeps the theorem-checking tests focused on outputs.
func mustRun(t *testing.T, fn func(context.Context, core.Config) (*core.Result, error), cfg core.Config) *core.Result {
	t.Helper()
	res, err := fn(bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
