package core

import (
	"testing"
)

func TestMessageStoreMergesOverlaps(t *testing.T) {
	st := NewMessageStore()
	p1, p2, p3, p4 := MakePair(0, 1), MakePair(2, 3), MakePair(4, 5), MakePair(6, 7)
	st.Add([]Pair{p1, p2})
	st.Add([]Pair{p3})
	if got := st.Messages(); len(got) != 2 {
		t.Fatalf("messages = %v, want 2 groups", got)
	}
	// Overlapping message merges the first group with a new pair.
	st.Add([]Pair{p2, p4})
	msgs := st.Messages()
	if len(msgs) != 2 {
		t.Fatalf("after merge, messages = %v, want 2 groups", msgs)
	}
	sizes := map[int]int{}
	for _, m := range msgs {
		sizes[len(m)]++
	}
	if sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("group sizes = %v, want one 3-group and one 1-group", sizes)
	}
	if st.Size() != 4 {
		t.Errorf("Size = %d, want 4", st.Size())
	}
}

func TestMessageStoreEmptyMessage(t *testing.T) {
	st := NewMessageStore()
	st.Add(nil)
	if len(st.Messages()) != 0 {
		t.Error("empty message must be ignored")
	}
}

func TestMessageStoreIdempotentAdd(t *testing.T) {
	st := NewMessageStore()
	p1, p2 := MakePair(0, 1), MakePair(2, 3)
	st.Add([]Pair{p1, p2})
	st.Add([]Pair{p1, p2})
	if got := st.Messages(); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("messages = %v", got)
	}
}

// chainMatcher is a minimal deterministic matcher for exercising
// ComputeMaximal: candidates form a chain p0..p_{n-1}; matching any pair
// entails matching the whole chain (all-or-nothing), but with no evidence
// nothing is matched.
type chainMatcher struct {
	chain []Pair
}

func (c chainMatcher) Candidates(entities []EntityID) []Pair { return c.chain }

func (c chainMatcher) Match(entities []EntityID, pos, neg PairSet) PairSet {
	out := NewPairSet()
	hit := false
	for _, p := range c.chain {
		if pos.Has(p) {
			hit = true
		}
	}
	if hit {
		for _, p := range c.chain {
			if !neg.Has(p) {
				out.Add(p)
			}
		}
	}
	return out
}

func TestComputeMaximalChain(t *testing.T) {
	chain := []Pair{MakePair(0, 1), MakePair(2, 3), MakePair(4, 5)}
	m := chainMatcher{chain: chain}
	base := m.Match([]EntityID{0, 1, 2, 3, 4, 5}, nil, nil)
	if base.Len() != 0 {
		t.Fatalf("base = %v, want empty", base.Sorted())
	}
	msgs, calls := ComputeMaximal(m, []EntityID{0, 1, 2, 3, 4, 5}, NewPairSet(), nil, base)
	if calls != len(chain) {
		t.Errorf("calls = %d, want %d", calls, len(chain))
	}
	if len(msgs) != 1 || len(msgs[0]) != 3 {
		t.Fatalf("messages = %v, want one 3-element message", msgs)
	}
}

func TestComputeMaximalSkipsMatched(t *testing.T) {
	chain := []Pair{MakePair(0, 1), MakePair(2, 3)}
	m := chainMatcher{chain: chain}
	// Pretend both pairs are already matched: nothing to probe.
	base := NewPairSet(chain...)
	msgs, calls := ComputeMaximal(m, []EntityID{0, 1, 2, 3}, NewPairSet(), nil, base)
	if calls != 0 || len(msgs) != 0 {
		t.Fatalf("msgs=%v calls=%d, want none", msgs, calls)
	}
}

// independentMatcher matches nothing and entails nothing: every candidate
// is its own singleton maximal message.
type independentMatcher struct{ cands []Pair }

func (c independentMatcher) Candidates(entities []EntityID) []Pair { return c.cands }
func (c independentMatcher) Match(entities []EntityID, pos, neg PairSet) PairSet {
	out := NewPairSet()
	for _, p := range c.cands {
		if pos.Has(p) {
			out.Add(p)
		}
	}
	return out
}

func TestComputeMaximalSingletons(t *testing.T) {
	cands := []Pair{MakePair(0, 1), MakePair(2, 3), MakePair(4, 5)}
	m := independentMatcher{cands: cands}
	msgs, _ := ComputeMaximal(m, []EntityID{0, 1, 2, 3, 4, 5}, NewPairSet(), nil, NewPairSet())
	if len(msgs) != 3 {
		t.Fatalf("messages = %v, want 3 singletons", msgs)
	}
	for _, msg := range msgs {
		if len(msg) != 1 {
			t.Fatalf("message %v not a singleton", msg)
		}
	}
}

// asymmetricMatcher entails q from p but not p from q: no edge (the
// definition requires mutual entailment).
type asymmetricMatcher struct{ p, q Pair }

func (c asymmetricMatcher) Candidates(entities []EntityID) []Pair { return []Pair{c.p, c.q} }
func (c asymmetricMatcher) Match(entities []EntityID, pos, neg PairSet) PairSet {
	out := NewPairSet()
	if pos.Has(c.p) {
		out.Add(c.p)
		out.Add(c.q)
	}
	if pos.Has(c.q) {
		out.Add(c.q)
	}
	return out
}

func TestComputeMaximalRequiresMutualEntailment(t *testing.T) {
	m := asymmetricMatcher{p: MakePair(0, 1), q: MakePair(2, 3)}
	msgs, _ := ComputeMaximal(m, []EntityID{0, 1, 2, 3}, NewPairSet(), nil, NewPairSet())
	if len(msgs) != 2 {
		t.Fatalf("messages = %v, want 2 singletons (entailment not mutual)", msgs)
	}
}

// TestProposition3 verifies the two claims of Proposition 3 on the
// definitional level, using the chain matcher whose full-run output under
// any seed evidence is all-or-nothing:
// (i) subsets of maximal messages are maximal; (ii) overlapping unions.
func TestProposition3(t *testing.T) {
	chain := []Pair{MakePair(0, 1), MakePair(2, 3), MakePair(4, 5)}
	m := chainMatcher{chain: chain}
	entities := []EntityID{0, 1, 2, 3, 4, 5}
	full := m.Match(entities, nil, nil) // empty: no seed evidence

	isMaximal := func(msg []Pair) bool {
		inside, outside := 0, 0
		for _, p := range msg {
			if full.Has(p) {
				inside++
			} else {
				outside++
			}
		}
		return inside == 0 || outside == 0
	}
	whole := chain
	if !isMaximal(whole) {
		t.Fatal("whole chain must be maximal")
	}
	// (i) every subset is maximal.
	for mask := 0; mask < 1<<len(whole); mask++ {
		var sub []Pair
		for i, p := range whole {
			if mask&(1<<i) != 0 {
				sub = append(sub, p)
			}
		}
		if !isMaximal(sub) {
			t.Fatalf("subset %v not maximal", sub)
		}
	}
	// (ii) overlapping maximal messages have maximal union.
	m1 := []Pair{chain[0], chain[1]}
	m2 := []Pair{chain[1], chain[2]}
	if !isMaximal(append(append([]Pair{}, m1...), m2...)) {
		t.Fatal("union of overlapping maximal messages not maximal")
	}
}
