package core

import (
	"testing"
	"testing/quick"
)

func TestMakePairNormalizes(t *testing.T) {
	if MakePair(3, 1) != (Pair{1, 3}) {
		t.Error("MakePair must normalize order")
	}
	if MakePair(1, 3) != (Pair{1, 3}) {
		t.Error("MakePair must keep sorted order")
	}
	if !MakePair(1, 3).Valid() {
		t.Error("normalized pair must be valid")
	}
	if MakePair(2, 2).Valid() {
		t.Error("reflexive pair must be invalid")
	}
	if MakePair(1, 2).String() != "(1,2)" {
		t.Errorf("String = %q", MakePair(1, 2).String())
	}
}

func TestPairSetBasics(t *testing.T) {
	s := NewPairSet(MakePair(1, 2), MakePair(3, 4))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(MakePair(2, 1)) {
		t.Error("Has must see normalized membership")
	}
	if s.Has(MakePair(1, 3)) {
		t.Error("phantom membership")
	}
	var nilSet PairSet
	if nilSet.Has(MakePair(1, 2)) || nilSet.Len() != 0 {
		t.Error("nil set must behave as empty")
	}
}

func TestPairSetAlgebra(t *testing.T) {
	a := NewPairSet(MakePair(1, 2), MakePair(3, 4))
	b := NewPairSet(MakePair(3, 4), MakePair(5, 6))

	u := a.Union(b)
	if u.Len() != 3 {
		t.Errorf("union len = %d", u.Len())
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("Union must not mutate operands")
	}

	m := a.Minus(b)
	if m.Len() != 1 || !m.Has(MakePair(1, 2)) {
		t.Errorf("minus = %v", m.Sorted())
	}

	i := a.Intersect(b)
	if i.Len() != 1 || !i.Has(MakePair(3, 4)) {
		t.Errorf("intersect = %v", i.Sorted())
	}

	if !m.Subset(a) || a.Subset(m) {
		t.Error("subset relations wrong")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone must be equal")
	}
	c := a.Clone()
	c.Add(MakePair(9, 10))
	if a.Has(MakePair(9, 10)) {
		t.Error("clone must be independent")
	}

	w := a.WithPair(MakePair(7, 8))
	if !w.Has(MakePair(7, 8)) || a.Has(MakePair(7, 8)) {
		t.Error("WithPair must copy")
	}
}

func TestAddAllCountsNew(t *testing.T) {
	a := NewPairSet(MakePair(1, 2))
	b := NewPairSet(MakePair(1, 2), MakePair(3, 4))
	if n := a.AddAll(b); n != 1 {
		t.Errorf("AddAll returned %d, want 1", n)
	}
	if a.Len() != 2 {
		t.Errorf("a.Len = %d", a.Len())
	}
}

func TestSortedDeterministic(t *testing.T) {
	s := NewPairSet(MakePair(5, 6), MakePair(1, 9), MakePair(1, 2), MakePair(3, 4))
	got := s.Sorted()
	want := []Pair{{1, 2}, {1, 9}, {3, 4}, {5, 6}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

// Property: Union/Minus/Intersect satisfy |A∪B| = |A| + |B| − |A∩B| and
// A\B ∪ A∩B = A.
func TestSetIdentities(t *testing.T) {
	f := func(raw []uint8) bool {
		a, b := NewPairSet(), NewPairSet()
		for i := 0; i+1 < len(raw); i += 2 {
			p := MakePair(EntityID(raw[i]%8), EntityID(raw[i+1]%8))
			if !p.Valid() {
				continue
			}
			if i%4 == 0 {
				a.Add(p)
			} else {
				b.Add(p)
			}
		}
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		return a.Minus(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
