package core

// EvidenceStore is the persistence hook the round driver mirrors its
// accumulated evidence into — the engine-side slice of the storage
// abstraction (internal/store implements it; core only knows this
// two-method surface so the dependency points upward).
//
// The driver maintains one invariant: after every completed round the
// store's evidence set equals the run's accumulated M+ (pre-closure).
// Cold runs clear the store first; warm starts clear and re-put their
// seed; checkpoint resumes clear and re-put the trail's state. Batches
// are sorted strictly-increasing packed pair keys, exactly the
// internal/wire delta contract.
type EvidenceStore interface {
	// ClearEvidence empties the store's evidence set.
	ClearEvidence() error
	// PutEvidence appends one sorted, strictly-increasing batch of
	// packed pair keys. Evidence has set semantics; overlapping batches
	// are fine.
	PutEvidence(keys []uint64) error
}

// resetEvidence clears the store and installs keys as the current
// evidence set. keys must be sorted ascending without duplicates.
func resetEvidence(es EvidenceStore, keys []PairKey) error {
	if es == nil {
		return nil
	}
	if err := es.ClearEvidence(); err != nil {
		return err
	}
	return putEvidence(es, keys)
}

// putEvidence appends a sorted key batch, translating PairKeys to the
// store's raw uint64 representation. Empty batches are skipped.
func putEvidence(es EvidenceStore, keys []PairKey) error {
	if es == nil || len(keys) == 0 {
		return nil
	}
	raw := make([]uint64, len(keys))
	for i, k := range keys {
		raw[i] = uint64(k)
	}
	return es.PutEvidence(raw)
}
