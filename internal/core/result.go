package core

import (
	"fmt"
	"time"
)

// Result is the outcome of running a message-passing scheme.
type Result struct {
	Scheme  string
	Matches PairSet
	Stats   RunStats

	// Messages holds the run's outstanding maximal messages at
	// termination (MMP only; nil otherwise): the all-or-nothing sets
	// that never promoted. Together with Matches they are the warm-start
	// seed an incremental continuation needs — a later delta's evidence
	// may yet promote them.
	Messages [][]Pair
}

// RunStats instruments a run; the Theorem 3/5 complexity bounds are
// checked against these counters in tests, and the experiment harness
// reports them.
type RunStats struct {
	Neighborhoods   int // number of neighborhoods in the cover
	MatcherCalls    int // calls to Matcher.Match
	Evaluations     int // neighborhood evaluations by the scheduler
	MaxRevisits     int // max times any single neighborhood was evaluated
	MessagesSent    int // evidence deltas that re-activated neighborhoods
	MaximalMessages int // maximal messages generated (MMP only)
	PromotedSets    int // maximal messages promoted to matches (MMP only)
	ScoreChecks     int // LogScore comparisons (MMP only)

	// Skips counts re-activations that were discharged without calling the
	// matcher because the neighborhood's scope contained no undecided pair
	// (every in-scope candidate already in M+). Skipping applies only to
	// matchers that implement ScopePreparer, whose contract includes the
	// candidate-closure property Match ⊆ Candidates ∪ echoed evidence —
	// under it such a re-evaluation cannot produce new matches, so the
	// skip is output-identical and pure savings. First visits are never
	// skipped, so Evaluations still counts every neighborhood at least
	// once; skipped re-activations emit no progress event and append no
	// ActiveSizes entry.
	Skips       int
	Elapsed     time.Duration // wall-clock time of the run
	MatcherTime time.Duration // time spent inside Matcher.Match

	// Cache is the run's verdict-memo report for matchers implementing
	// CacheReporter (zero otherwise): how many Match/MaximalMessages
	// consultations were served from the matcher's cross-neighborhood
	// memo, recomputed fresh, or recomputed because the neighborhood's
	// relevant evidence changed. Memoization never changes the run's
	// output or the counters above (hits return the verdict recomputation
	// would produce, and cached probe counts are re-reported) — Cache is
	// pure savings accounting. The report is a start/end counter delta on
	// the matcher, so runs sharing one matcher concurrently may attribute
	// each other's traffic; checkpointed trails do not persist it (a
	// resumed run reports only its own process's cache activity).
	Cache CacheReport

	// Resilience counters, maintained by distributed backends
	// (internal/net). Like Cache they are per-process savings/cost
	// accounting, never part of the matching output, and checkpoint
	// trails do not persist them — a resumed run reports only its own
	// process's transport events. All three are monotone within a run.

	// Reassignments counts partitions re-executed on a different worker
	// after their assigned worker died or breached the round deadline.
	Reassignments int
	// RetriedSends counts transport sends retried after a transient
	// error (the successful first attempts are not counted).
	RetriedSends int
	// LateBatchesDropped counts ShardBatches discarded because their
	// epoch was stale — a zombie worker answering an assignment that had
	// already been reassigned and accounted.
	LateBatchesDropped int

	// ActiveSizes records, for every neighborhood evaluation, the number
	// of *active* matching decisions: in-scope candidate pairs not yet in
	// the evidence set. This is the quantity §6.2 credits for SMP/MMP
	// running *faster* than NO-MP ("messages often reduce the active size
	// of the neighborhoods"), and the input to the experiment harness's
	// inference-cost model.
	ActiveSizes []int
}

// TotalActive sums the active decisions across all evaluations.
func (s *RunStats) TotalActive() int {
	total := 0
	for _, a := range s.ActiveSizes {
		total += a
	}
	return total
}

func (s RunStats) String() string {
	base := fmt.Sprintf("n=%d evals=%d calls=%d skips=%d maxRevisit=%d msgs=%d maximal=%d promoted=%d elapsed=%v",
		s.Neighborhoods, s.Evaluations, s.MatcherCalls, s.Skips, s.MaxRevisits,
		s.MessagesSent, s.MaximalMessages, s.PromotedSets, s.Elapsed)
	if s.Cache.Lookups() > 0 {
		base += " " + s.Cache.String()
	}
	if s.Reassignments > 0 || s.RetriedSends > 0 || s.LateBatchesDropped > 0 {
		base += fmt.Sprintf(" reassigned=%d retriedSends=%d lateDropped=%d",
			s.Reassignments, s.RetriedSends, s.LateBatchesDropped)
	}
	return base
}

// CacheReport accounts a matcher's cross-neighborhood verdict memo over
// one run: Hits were served from cache, Misses computed fresh with no
// (matching) entry, Invalidations computed fresh because the cached
// entry's relevant evidence had changed. All zero for matchers without a
// memo (see CacheReporter).
type CacheReport struct {
	Hits          int64
	Misses        int64
	Invalidations int64
}

// Lookups returns the total number of memo consultations.
func (c CacheReport) Lookups() int64 { return c.Hits + c.Misses + c.Invalidations }

// HitRate returns Hits / Lookups (0 when no lookups happened).
func (c CacheReport) HitRate() float64 {
	if n := c.Lookups(); n > 0 {
		return float64(c.Hits) / float64(n)
	}
	return 0
}

// Sub returns the counter delta c − o (the per-run report between two
// cumulative snapshots of one matcher).
func (c CacheReport) Sub(o CacheReport) CacheReport {
	return CacheReport{
		Hits:          c.Hits - o.Hits,
		Misses:        c.Misses - o.Misses,
		Invalidations: c.Invalidations - o.Invalidations,
	}
}

func (c CacheReport) String() string {
	return fmt.Sprintf("cacheHits=%d cacheMisses=%d cacheInvals=%d hitRate=%.2f",
		c.Hits, c.Misses, c.Invalidations, c.HitRate())
}

// ProgressEvent reports one neighborhood evaluation to a Config.Progress
// callback. Events are delivered sequentially, in evaluation order for
// serial runs and in reduce order (per round) for parallel runs.
type ProgressEvent struct {
	Scheme       string
	Neighborhood int32 // id of the evaluated neighborhood; -1 for whole-set runs
	Round        int   // parallel round number; 0 for serial schedulers
	Evaluations  int   // neighborhood evaluations completed so far
	Matches      int   // matches accumulated so far
}

// Order selects the scheduling discipline of the active set A in
// Algorithms 1 and 3. The choice is immaterial for correctness —
// Theorems 2 and 4 guarantee the output is order-invariant for
// well-behaved matchers (and the test suite verifies this across all
// disciplines) — but it can shift how quickly evidence accumulates and
// therefore the number of re-evaluations.
type Order int

const (
	// OrderFIFO processes neighborhoods in arrival order (default).
	OrderFIFO Order = iota
	// OrderLIFO processes the most recently activated neighborhood first
	// (depth-first evidence propagation).
	OrderLIFO
	// OrderSmallestFirst prefers small neighborhoods — cheap evidence
	// early, the heuristic behind "process the easy blocks first".
	OrderSmallestFirst
	// OrderLargestFirst prefers large neighborhoods — most evidence per
	// evaluation.
	OrderLargestFirst
)

// workQueue is a scheduling queue over neighborhood ids with set
// semantics: a neighborhood already queued is not enqueued twice.
type workQueue struct {
	order  Order
	sizes  []int // neighborhood sizes for size-based disciplines
	queue  []int32
	queued []bool
}

func newWorkQueue(n int, order Order, sizes []int) *workQueue {
	q := &workQueue{
		order:  order,
		sizes:  sizes,
		queue:  make([]int32, 0, n),
		queued: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		q.push(int32(i))
	}
	return q
}

// queueFor builds the scheduler's active set from a Config.
func queueFor(cfg Config) *workQueue {
	sizes := make([]int, cfg.Cover.Len())
	for i, set := range cfg.Cover.Sets {
		sizes[i] = len(set)
	}
	return newWorkQueue(cfg.Cover.Len(), cfg.Order, sizes)
}

func (q *workQueue) push(id int32) {
	if !q.queued[id] {
		q.queued[id] = true
		q.queue = append(q.queue, id)
	}
}

func (q *workQueue) pop() (int32, bool) {
	if len(q.queue) == 0 {
		return 0, false
	}
	at := 0
	switch q.order {
	case OrderLIFO:
		at = len(q.queue) - 1
	case OrderSmallestFirst:
		for i := 1; i < len(q.queue); i++ {
			if q.sizes[q.queue[i]] < q.sizes[q.queue[at]] {
				at = i
			}
		}
	case OrderLargestFirst:
		for i := 1; i < len(q.queue); i++ {
			if q.sizes[q.queue[i]] > q.sizes[q.queue[at]] {
				at = i
			}
		}
	}
	id := q.queue[at]
	q.queue = append(q.queue[:at], q.queue[at+1:]...)
	q.queued[id] = false
	return id, true
}

func (q *workQueue) empty() bool { return len(q.queue) == 0 }
