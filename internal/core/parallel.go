package core

import (
	"context"
	"sync"
	"time"
)

// evalJob is the outcome of one parallel neighborhood evaluation: the
// Map side of the shared-memory round executor.
type evalJob struct {
	id      int32
	matches PairSet
	msgs    [][]Pair // maximal messages (MMP rounds only)
	active  int      // active decisions at evaluation time
	dur     time.Duration
	calls   int  // matcher calls (1 + conditioned probes for MMP)
	skipped bool // re-activation discharged without a matcher call
}

// allNeighborhoods returns the ids 0..n-1.
func allNeighborhoods(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// mapNeighborhoods evaluates the given neighborhoods against a fixed
// evidence snapshot, in parallel when cfg.Parallelism > 1, and returns
// the per-neighborhood jobs in input order. The evidence set is only
// read. withMessages additionally runs COMPUTEMAXIMAL per neighborhood
// (prob must then be non-nil). allowSkip discharges neighborhoods with no
// undecided in-scope pair without calling the matcher (re-activation
// rounds only; see RunStats.Skips). A canceled ctx aborts the round;
// started evaluations finish, queued ones are skipped.
func mapNeighborhoods(ctx context.Context, cfg Config, ids []int32, evidence PairSet, withMessages, allowSkip bool, prob Probabilistic) ([]evalJob, error) {
	jobs := make([]evalJob, len(ids))
	eval := func(i int) {
		id := ids[i]
		entities := cfg.Cover.Sets[id]
		active := activeDecisions(cfg.Matcher, entities, evidence)
		if allowSkip && active == 0 {
			jobs[i] = evalJob{id: id, skipped: true}
			return
		}
		t0 := time.Now()
		mc := cfg.Matcher.Match(entities, evidence, cfg.Negative)
		calls := 1
		var msgs [][]Pair
		if withMessages {
			var probes int
			msgs, probes = ComputeMaximal(prob, entities, evidence, cfg.Negative, mc)
			calls += probes
		}
		jobs[i] = evalJob{
			id:      id,
			matches: mc,
			msgs:    msgs,
			active:  active,
			dur:     time.Since(t0),
			calls:   calls,
		}
	}

	workers := cfg.workers()
	if workers <= 1 {
		for i := range ids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			eval(i)
		}
		return jobs, nil
	}

	if workers > len(ids) {
		workers = len(ids)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain the queue without working
				}
				eval(i)
			}
		}()
	}
	for i := range ids {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// RoundReducer implements the Reduce semantics shared by the parallel
// executors (the shared-memory rounds here and the simulated grid in
// internal/grid): merge a round's per-neighborhood matches into the
// global set, collect maximal messages (dropping singletons, which the
// evidence-driven re-evaluation subsumes), and promote sound messages
// per Algorithm 3 Step 7. New accumulates the round's newly decided
// pairs — the input to Cover.Affected.
type RoundReducer struct {
	matches PairSet
	store   *MessageStore
	prob    Probabilistic
	stats   *RunStats
	New     []Pair
}

// NewRoundReducer builds a reducer over the global match set. store and
// prob are nil for schemes without maximal messages; stats may be nil
// when the caller keeps no counters. Build one per round.
func NewRoundReducer(matches PairSet, store *MessageStore, prob Probabilistic, stats *RunStats) *RoundReducer {
	if stats == nil {
		stats = &RunStats{}
	}
	return &RoundReducer{matches: matches, store: store, prob: prob, stats: stats}
}

// Add merges one job's matches and maximal messages. The job's new pairs
// are appended to New in packed-key order, so the round's evidence delta
// is reproducible run-to-run (map iteration order never leaks out).
func (r *RoundReducer) Add(mc PairSet, msgs [][]Pair) {
	for _, p := range collectNew(mc, r.matches) {
		r.matches.Add(p)
		r.New = append(r.New, p)
	}
	if r.store != nil {
		r.stats.MaximalMessages += len(msgs)
		for _, msg := range msgs {
			if len(msg) >= 2 { // singletons are subsumed by re-evaluation
				r.store.Add(msg)
			}
		}
	}
}

// Promote runs the Step 7 promotion fixpoint over the accumulated
// store, appending the promoted pairs to New.
func (r *RoundReducer) Promote() {
	if r.store != nil && r.prob != nil {
		r.New = append(r.New, promoteMessagesImpl(r.prob, r.store, r.matches, r.stats)...)
	}
}

// runRounds executes SMP or MMP (withMessages) as parallel rounds over
// shared memory — the grid executor's Map/Reduce structure without the
// simulated clock. Every round maps the active neighborhoods against a
// snapshot of M+, then a central Reduce merges new matches (and, for
// MMP, maximal messages, promoting sound ones per Algorithm 3 Step 7)
// and derives the next active set from the affected neighborhoods.
// Consistency (Theorems 2 and 4) makes the output equal to the serial
// schedulers' for well-behaved matchers.
func runRounds(ctx context.Context, cfg Config, scheme string, withMessages bool) (*Result, error) {
	var prob Probabilistic
	if withMessages {
		prob = cfg.Matcher.(Probabilistic) // checked by MMP before dispatch
	}
	start := time.Now()
	canSkip := prepareScopes(&cfg)
	res := &Result{Scheme: scheme, Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()

	visits := make([]int, cfg.Cover.Len())
	var store *MessageStore
	if withMessages {
		store = NewMessageStore()
	}

	active := allNeighborhoods(cfg.Cover.Len())
	for round := 1; len(active) > 0; round++ {
		// Round 1 visits every neighborhood for the first time; later
		// rounds are re-activations, where undecided-free scopes may be
		// discharged without a matcher call (candidate-closure matchers
		// only; see ScopePreparer).
		jobs, err := mapNeighborhoods(ctx, cfg, active, res.Matches, withMessages, canSkip && round > 1, prob)
		if err != nil {
			return nil, err
		}

		// Reduce: merge evidence, promote messages, emit progress.
		red := NewRoundReducer(res.Matches, store, prob, &res.Stats)
		for _, j := range jobs {
			if j.skipped {
				res.Stats.Skips++
				continue
			}
			visits[j.id]++
			res.Stats.Evaluations++
			res.Stats.MatcherCalls += j.calls
			res.Stats.MatcherTime += j.dur
			res.Stats.ActiveSizes = append(res.Stats.ActiveSizes, j.active)
			red.Add(j.matches, j.msgs)
			cfg.emit(scheme, j.id, round, res)
		}
		red.Promote()
		if len(red.New) == 0 {
			break
		}
		affected := cfg.Cover.Affected(red.New, cfg.Relation)
		res.Stats.MessagesSent += len(affected)
		active = affected
	}

	for _, v := range visits {
		if v > res.Stats.MaxRevisits {
			res.Stats.MaxRevisits = v
		}
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}
