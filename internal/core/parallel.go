package core

import (
	"context"
	"sync"
	"time"
)

// Job is the outcome of one neighborhood evaluation: the
// Map side of the shared-memory round executor.
type Job struct {
	id      int32
	matches PairSet
	msgs    [][]Pair // maximal messages (MMP rounds only)
	active  int      // active decisions at evaluation time
	dur     time.Duration
	calls   int  // matcher calls (1 + conditioned probes for MMP)
	skipped bool // re-activation discharged without a matcher call
}

// allNeighborhoods returns the ids 0..n-1.
func allNeighborhoods(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// evalNeighborhood runs one neighborhood against an evidence snapshot:
// the Map-side unit of work shared by every backend. The evidence set is
// only read. withMessages additionally runs COMPUTEMAXIMAL (prob must
// then be non-nil); allowSkip discharges neighborhoods with no undecided
// in-scope pair without calling the matcher (re-activation rounds only;
// see RunStats.Skips).
func evalNeighborhood(cfg *Config, id int32, evidence PairSet, withMessages, allowSkip bool, prob Probabilistic) Job {
	entities := cfg.Cover.Sets[id]
	active := activeDecisions(cfg.Matcher, entities, evidence)
	if allowSkip && active == 0 {
		return Job{id: id, skipped: true}
	}
	t0 := time.Now()
	mc := cfg.Matcher.Match(entities, evidence, cfg.Negative)
	calls := 1
	var msgs [][]Pair
	if withMessages {
		var probes int
		msgs, probes = ComputeMaximal(prob, entities, evidence, cfg.Negative, mc)
		calls += probes
	}
	return Job{
		id:      id,
		matches: mc,
		msgs:    msgs,
		active:  active,
		dur:     time.Since(t0),
		calls:   calls,
	}
}

// mapNeighborhoods evaluates the given neighborhoods against a fixed
// evidence snapshot, in parallel when cfg.Parallelism > 1, and returns
// the per-neighborhood jobs in input order. A canceled ctx aborts the
// round; started evaluations finish, queued ones are skipped.
func mapNeighborhoods(ctx context.Context, cfg Config, ids []int32, evidence PairSet, withMessages, allowSkip bool, prob Probabilistic) ([]Job, error) {
	jobs := make([]Job, len(ids))
	eval := func(i int) {
		jobs[i] = evalNeighborhood(&cfg, ids[i], evidence, withMessages, allowSkip, prob)
	}

	workers := cfg.workers()
	if workers <= 1 {
		for i := range ids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			eval(i)
		}
		return jobs, nil
	}

	if workers > len(ids) {
		workers = len(ids)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain the queue without working
				}
				eval(i)
			}
		}()
	}
	for i := range ids {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// RoundReducer implements the Reduce semantics shared by the parallel
// executors (the shared-memory rounds here and the simulated grid in
// internal/grid): merge a round's per-neighborhood matches into the
// global set, collect maximal messages (dropping singletons, which the
// evidence-driven re-evaluation subsumes), and promote sound messages
// per Algorithm 3 Step 7. New accumulates the round's newly decided
// pairs — the input to Cover.Affected.
type RoundReducer struct {
	matches PairSet
	store   *MessageStore
	prob    Probabilistic
	stats   *RunStats
	New     []Pair
}

// NewRoundReducer builds a reducer over the global match set. store and
// prob are nil for schemes without maximal messages; stats may be nil
// when the caller keeps no counters. Build one per round.
func NewRoundReducer(matches PairSet, store *MessageStore, prob Probabilistic, stats *RunStats) *RoundReducer {
	if stats == nil {
		stats = &RunStats{}
	}
	return &RoundReducer{matches: matches, store: store, prob: prob, stats: stats}
}

// Add merges one job's matches and maximal messages. The job's new pairs
// are appended to New in packed-key order, so the round's evidence delta
// is reproducible run-to-run (map iteration order never leaks out).
func (r *RoundReducer) Add(mc PairSet, msgs [][]Pair) {
	for _, p := range collectNew(mc, r.matches) {
		r.matches.Add(p)
		r.New = append(r.New, p)
	}
	if r.store != nil {
		r.stats.MaximalMessages += len(msgs)
		for _, msg := range msgs {
			if len(msg) >= 2 { // singletons are subsumed by re-evaluation
				r.store.Add(msg)
			}
		}
	}
}

// Promote runs the Step 7 promotion fixpoint over the accumulated
// store, appending the promoted pairs to New.
func (r *RoundReducer) Promote() {
	if r.store != nil && r.prob != nil {
		r.New = append(r.New, promoteMessagesImpl(r.prob, r.store, r.matches, r.stats)...)
	}
}

// runRounds executes SMP or MMP as parallel rounds over shared memory —
// the grid executor's Map/Reduce structure without the simulated clock.
// It is the historical entry point of the round executor; the loop now
// lives in the Backend abstraction (backend.go) with the shared-memory
// pool as its default implementation, so WithParallelism and WithBackend
// run the exact same code.
func runRounds(ctx context.Context, cfg Config, scheme string) (*Result, error) {
	return RunBackend(ctx, cfg, scheme, PoolBackend{}, CheckpointConfig{})
}
