package core

import (
	"context"
	"errors"
	"slices"
	"time"
)

// RoundDriver owns the central (Reduce) state of a round-based run: the
// accumulated evidence, the maximal-message store, visit counts, run
// statistics, the active set, and — when configured — the per-round
// checkpoint trail. Backends drive it round by round; it is not safe for
// concurrent use (reduce is central by design, as in the paper's §6.3
// grid where a designated machine merges each round).
type RoundDriver struct {
	plan   *RoundPlan
	res    *Result
	visits []int
	store  *MessageStore // MMP only
	ckpt   *checkpointer // nil when not checkpointing

	active  []int32
	lastNew []Pair // the just-finished round's new pairs (reducer order)
	round   int    // last completed round
	done    bool

	start time.Time
	prior time.Duration // elapsed time credited by a resumed checkpoint

	// cacheStart snapshots the matcher's cumulative memo counters at
	// driver construction; finish() reports the delta. Checkpoint trails
	// do not persist cache counters, so a resumed run reports only the
	// resuming process's cache activity.
	cacheStart CacheReport
}

// newRoundDriver initializes the reduce state, loading a checkpoint
// trail when ck requests a resume (an empty directory resumes into a
// fresh run). A fresh checkpointing run clears any stale round files so
// a later resume can never mix two runs.
func newRoundDriver(plan *RoundPlan, ck CheckpointConfig) (*RoundDriver, error) {
	d := &RoundDriver{plan: plan, start: time.Now()}
	d.cacheStart, _ = cacheSnapshot(plan.Config.Matcher)
	d.res = &Result{Scheme: plan.Scheme, Matches: NewPairSet()}
	d.res.Stats.Neighborhoods = plan.Config.Cover.Len()
	d.visits = make([]int, plan.Config.Cover.Len())
	if plan.WithMessages {
		d.store = NewMessageStore()
	}
	if ck.Dir != "" {
		d.ckpt = &checkpointer{dir: ck.Dir, format: ck.Format, matcher: ck.Matcher}
	}
	if ck.Resume && d.ckpt != nil {
		st, err := loadCheckpointState(ck.Dir, plan, ck.Matcher)
		if err != nil {
			return nil, err
		}
		if st != nil {
			d.res.Matches = st.matches
			d.res.Stats = st.stats
			d.visits = st.visits
			for _, msg := range st.messages {
				d.store.Add(msg)
			}
			d.active = st.active
			d.round = st.round
			d.done = st.done || len(st.active) == 0
			d.prior = st.stats.Elapsed
			// The evidence store must reflect the trail's state, not
			// whatever run the directory held before.
			if err := resetEvidence(plan.Config.Evidence, d.res.Matches.SortedKeys()); err != nil {
				return nil, err
			}
			return d, nil
		}
	} else if d.ckpt != nil {
		if err := d.ckpt.clear(); err != nil {
			return nil, err
		}
	}
	// A fresh run owns the store: clear it so the segments accumulate
	// exactly this run's evidence.
	if err := resetEvidence(plan.Config.Evidence, nil); err != nil {
		return nil, err
	}
	d.active = allNeighborhoods(plan.Config.Cover.Len())
	d.done = len(d.active) == 0
	return d, nil
}

// Done reports whether the run has reached fixpoint (no active
// neighborhoods remain).
func (d *RoundDriver) Done() bool { return d.done }

// Round returns the number of the round about to execute (1-based;
// resumed runs continue counting where the checkpoint stopped).
func (d *RoundDriver) Round() int { return d.round + 1 }

// Active returns the ids to evaluate this round, in ascending order.
// Backends must treat the slice as read-only.
func (d *RoundDriver) Active() []int32 { return d.active }

// Snapshot returns the evidence snapshot for the round about to
// execute: the accumulated M+ for evidence-exchanging schemes, nil for
// NO-MP (whose matcher contract is evidence-free first visits). The set
// is only valid to read until FinishRound is called.
func (d *RoundDriver) Snapshot() PairSet {
	if !d.plan.Exchange {
		return nil
	}
	return d.res.Matches
}

// AllowSkip reports whether this round's evaluations may discharge
// undecided-free neighborhoods without a matcher call: only past round
// 1 (every id is then a re-activation) and only for candidate-closure
// matchers. Resumed runs inherit the property because their round
// counter continues from the checkpoint.
func (d *RoundDriver) AllowSkip() bool {
	return d.plan.CanSkip && d.Round() > 1
}

// Evaluate runs one neighborhood of the current round against the
// driver's own snapshot — the single-node convenience for custom
// backends that schedule work but do not distribute state.
func (d *RoundDriver) Evaluate(id int32) Job {
	return evalNeighborhood(&d.plan.Config, id, d.Snapshot(), d.plan.WithMessages, d.AllowSkip(), d.plan.Prob)
}

// FinishRound is the central Reduce of one round: it merges the jobs'
// matches (and maximal messages) into the global state in active-set
// order, promotes sound messages (Algorithm 3 Step 7), derives the next
// active set from the affected neighborhoods, and persists a checkpoint
// when configured. jobs must be in Active() order, evaluated against
// the round-start Snapshot. The round's evidence delta is available
// from RoundDelta afterwards.
func (d *RoundDriver) FinishRound(jobs []Job) error {
	round := d.round + 1
	red := NewRoundReducer(d.res.Matches, d.store, d.plan.Prob, &d.res.Stats)
	for _, j := range jobs {
		if j.skipped {
			d.res.Stats.Skips++
			continue
		}
		d.visits[j.id]++
		d.res.Stats.Evaluations++
		d.res.Stats.MatcherCalls += j.calls
		d.res.Stats.MatcherTime += j.dur
		d.res.Stats.ActiveSizes = append(d.res.Stats.ActiveSizes, j.active)
		red.Add(j.matches, j.msgs)
		d.plan.Config.emit(d.plan.Scheme, j.id, round, d.res)
	}
	red.Promote()
	d.round = round
	d.lastNew = red.New

	switch {
	case !d.plan.Exchange, len(red.New) == 0:
		d.active, d.done = nil, true
	default:
		affected := d.plan.Config.Cover.Affected(red.New, d.plan.Config.Relation)
		d.res.Stats.MessagesSent += len(affected)
		d.active = affected
	}

	if d.ckpt != nil || d.plan.Config.Evidence != nil {
		delta := d.RoundDelta()
		if err := putEvidence(d.plan.Config.Evidence, delta); err != nil {
			return err
		}
		if d.ckpt != nil {
			d.res.Stats.Elapsed = d.prior + time.Since(d.start) // running elapsed, persisted
			if err := d.ckpt.write(d, delta); err != nil {
				return err
			}
		}
	}
	return nil
}

// AccountResilience adds a distributed backend's transport events to
// the run's stats: partitions reassigned after a worker death or
// deadline breach, sends retried after transient errors, and stale-
// epoch batches dropped. Counters are monotone (negative increments are
// ignored) and, like the cache report, are per-process — checkpoint
// trails do not persist them.
func (d *RoundDriver) AccountResilience(reassignments, retriedSends, lateDropped int) {
	if reassignments > 0 {
		d.res.Stats.Reassignments += reassignments
	}
	if retriedSends > 0 {
		d.res.Stats.RetriedSends += retriedSends
	}
	if lateDropped > 0 {
		d.res.Stats.LateBatchesDropped += lateDropped
	}
}

// RoundDelta returns the just-finished round's evidence delta (new
// matches plus promotions) in ascending PairKey order — the canonical
// batch a distributed backend broadcasts to its shards. Computed on
// demand: the default pool path shares memory and never asks.
func (d *RoundDriver) RoundDelta() []PairKey {
	delta := make([]PairKey, len(d.lastNew))
	for i, p := range d.lastNew {
		delta[i] = p.Key()
	}
	slices.Sort(delta)
	return delta
}

// finish seals the result (max revisits, outstanding messages, wall
// clock) and returns it.
func (d *RoundDriver) finish() *Result {
	for _, v := range d.visits {
		if v > d.res.Stats.MaxRevisits {
			d.res.Stats.MaxRevisits = v
		}
	}
	if d.store != nil {
		d.res.Messages = copyMessages(d.store.Messages())
	}
	d.res.Stats.Cache = cacheDelta(d.plan.Config.Matcher, d.cacheStart)
	d.res.Stats.Elapsed = d.prior + time.Since(d.start)
	return d.res
}

// copyMessages deep-copies a message view so results never alias a
// store's memoized internals.
func copyMessages(msgs [][]Pair) [][]Pair {
	if len(msgs) == 0 {
		return nil
	}
	out := make([][]Pair, len(msgs))
	for i, msg := range msgs {
		out[i] = slices.Clone(msg)
	}
	return out
}

// RunBackend executes a neighborhood scheme ("NO-MP", "SMP", "MMP") on
// the given execution backend, with optional round-boundary
// checkpointing (ck.Dir) and resume (ck.Resume). Resuming a directory
// whose run already completed rebuilds the result from the checkpoint
// trail without evaluating anything.
func RunBackend(ctx context.Context, cfg Config, scheme string, b Backend, ck CheckpointConfig) (*Result, error) {
	plan, err := NewRoundPlan(cfg, scheme)
	if err != nil {
		return nil, err
	}
	d, err := newRoundDriver(plan, ck)
	if err != nil {
		return nil, err
	}
	if !d.Done() {
		if err := driveRounds(ctx, b, plan, d); err != nil {
			return nil, err
		}
	}
	return d.finish(), nil
}

// driveRounds delegates to the backend and unifies the cancellation
// error path: every backend — in-process or distributed — surfaces
// cancellation racing a round boundary as the bare ctx.Err(), never a
// wrapped internal error, so callers can select on context.Canceled /
// context.DeadlineExceeded regardless of the backend in use.
func driveRounds(ctx context.Context, b Backend, plan *RoundPlan, d *RoundDriver) error {
	err := b.RunRounds(ctx, plan, d)
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		return ctxErr
	}
	return err
}
