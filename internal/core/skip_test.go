package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
)

// skipCover is a two-neighborhood cover where neighborhood 0 = {1, 2}
// has no candidates of its own and neighborhood 1 = {0, 1} produces the
// match that re-activates it.
func skipCover() *core.Cover {
	return core.NewCover(3, [][]core.EntityID{{1, 2}, {0, 1}})
}

func has(e []core.EntityID, want ...core.EntityID) bool {
	in := map[core.EntityID]bool{}
	for _, x := range e {
		in[x] = true
	}
	for _, w := range want {
		if !in[w] {
			return false
		}
	}
	return true
}

// closureViolator matches (0,1) from its candidate list, and — outside
// its candidate enumeration, like an interleaved transitive closure —
// derives (1,2) once (0,1) is evidence. It is well-behaved (idempotent,
// monotone) but does NOT have the candidate-closure property, and it
// does not implement ScopePreparer.
var closureViolator = core.MatcherFunc{
	MatchFn: func(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
		out := core.NewPairSet()
		for p := range pos.All() {
			if has(entities, p.A, p.B) {
				out.Add(p)
			}
		}
		if has(entities, 0, 1) {
			out.Add(core.MakePair(0, 1))
		}
		if has(entities, 1, 2) && pos.Has(core.MakePair(0, 1)) {
			out.Add(core.MakePair(1, 2))
		}
		return out
	},
	CandidatesFn: func(entities []core.EntityID) []core.Pair {
		if has(entities, 0, 1) {
			return []core.Pair{core.MakePair(0, 1)}
		}
		return nil
	},
}

// TestSkipRequiresScopePreparer: a re-activated neighborhood with zero
// undecided candidates must still be evaluated when the matcher has not
// opted into the candidate-closure contract via ScopePreparer —
// otherwise derivations outside Candidates would be silently lost.
func TestSkipRequiresScopePreparer(t *testing.T) {
	for _, par := range []int{1, 4} {
		res, err := core.SMP(context.Background(),
			core.Config{Cover: skipCover(), Matcher: closureViolator, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Matches.Has(core.MakePair(1, 2)) {
			t.Errorf("parallelism %d: non-candidate derivation (1,2) lost: %v (skips=%d)",
				par, res.Matches.Sorted(), res.Stats.Skips)
		}
		if res.Stats.Skips != 0 {
			t.Errorf("parallelism %d: %d skips for a non-ScopePreparer matcher, want 0",
				par, res.Stats.Skips)
		}
	}
}

// preparingMatcher wraps closure-respecting behavior in ScopePreparer:
// its whole output is its candidate (0,1), so skipping its undecided-free
// re-activations is sound.
type preparingMatcher struct {
	core.MatcherFunc
}

func (p *preparingMatcher) PrepareCover(c *core.Cover) {}

// TestSkipCountsForScopePreparer: the same re-activation pattern with a
// candidate-closed ScopePreparer matcher is discharged as a skip, with
// the output unchanged.
func TestSkipCountsForScopePreparer(t *testing.T) {
	m := &preparingMatcher{}
	m.MatchFn = func(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
		out := core.NewPairSet()
		for p := range pos.All() {
			if has(entities, p.A, p.B) {
				out.Add(p)
			}
		}
		if has(entities, 0, 1) {
			out.Add(core.MakePair(0, 1))
		}
		return out
	}
	m.CandidatesFn = closureViolator.CandidatesFn

	res, err := core.SMP(context.Background(), core.Config{Cover: skipCover(), Matcher: m})
	if err != nil {
		t.Fatal(err)
	}
	want := core.NewPairSet(core.MakePair(0, 1))
	if !res.Matches.Equal(want) {
		t.Errorf("matches = %v, want %v", res.Matches.Sorted(), want.Sorted())
	}
	if res.Stats.Skips == 0 {
		t.Error("expected the candidate-free re-activation to be skipped")
	}
}
