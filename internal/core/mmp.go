package core

import (
	"context"
	"fmt"
	"time"
)

// MMP is the maximal message-passing scheme (Algorithm 3). It requires a
// Type-II (Probabilistic) matcher: besides exchanging found matches like
// SMP, every neighborhood evaluation derives *maximal messages* —
// all-or-nothing sets of correlated pairs (Definition 8, computed by
// Algorithm 2) — which are merged across neighborhoods and promoted to
// real matches as soon as the global model's probability does not
// decrease (Step 7: PE(M+ ∪ M) ≥ PE(M+)).
//
// For a supermodular Type-II matcher, MMP converges and is sound and
// consistent (Theorem 4) in time O(k⁴·f(k)·n) (Theorem 5). With
// cfg.Parallelism > 1 the active set is processed in parallel rounds
// (see Config.Parallelism); consistency makes the output identical.
// Cancellation of ctx aborts between neighborhood evaluations.
func MMP(ctx context.Context, cfg Config) (*Result, error) {
	prob, ok := cfg.Matcher.(Probabilistic)
	if !ok {
		return nil, fmt.Errorf("core: MMP requires a Probabilistic (Type-II) matcher, got %T", cfg.Matcher)
	}
	if cfg.workers() > 1 {
		return runRounds(ctx, cfg, "MMP")
	}

	start := time.Now()
	canSkip := prepareScopes(&cfg)
	cacheStart, _ := cacheSnapshot(cfg.Matcher)
	res := &Result{Scheme: "MMP", Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()

	active := queueFor(cfg)
	visits := make([]int, cfg.Cover.Len())
	mPlus := res.Matches
	store := NewMessageStore()

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id, ok := active.pop()
		if !ok {
			break
		}
		entities := cfg.Cover.Sets[id]
		activeSize := activeDecisions(cfg.Matcher, entities, mPlus)
		if canSkip && visits[id] > 0 && activeSize == 0 {
			// Re-activated but nothing left to decide: for a matcher with
			// the candidate-closure property Match echoes M+ and
			// COMPUTEMAXIMAL has no probes, so the evaluation is a provable
			// no-op (see RunStats.Skips and ScopePreparer).
			res.Stats.Skips++
			continue
		}
		visits[id]++
		res.Stats.Evaluations++
		res.Stats.ActiveSizes = append(res.Stats.ActiveSizes, activeSize)

		// Step 5: matches and maximal messages of this neighborhood.
		t0 := time.Now()
		mc := prob.Match(entities, mPlus, cfg.Negative)
		res.Stats.MatcherCalls++
		msgs, calls := ComputeMaximal(prob, entities, mPlus, cfg.Negative, mc)
		res.Stats.MatcherCalls += calls
		res.Stats.MatcherTime += time.Since(t0)
		res.Stats.MaximalMessages += len(msgs)

		newMatches := collectNew(mc, mPlus)
		for _, p := range newMatches {
			mPlus.Add(p)
		}
		// Step 6: T = (T ∪ TC)*. Singleton messages are dropped: a
		// singleton {p} promotes exactly when p's conditional gain turns
		// non-negative, which the evidence-driven re-evaluation of p's
		// neighborhood derives anyway (monotonicity); keeping them only
		// bloats T.
		for _, msg := range msgs {
			if len(msg) >= 2 {
				store.Add(msg)
			}
		}

		// Step 7: promote sound maximal messages until fixpoint.
		promoted := promoteMessages(prob, store, mPlus, &res.Stats)
		newMatches = append(newMatches, promoted...)

		// Step 8: re-activate affected neighborhoods.
		if len(newMatches) > 0 {
			affected := cfg.Cover.Affected(newMatches, cfg.Relation)
			for _, a := range affected {
				active.push(a)
			}
			res.Stats.MessagesSent += len(affected)
		}
		cfg.emit("MMP", id, 0, res)
	}

	for _, v := range visits {
		if v > res.Stats.MaxRevisits {
			res.Stats.MaxRevisits = v
		}
	}
	res.Messages = copyMessages(store.Messages())
	res.Stats.Cache = cacheDelta(cfg.Matcher, cacheStart)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// promoteMessages repeatedly scans the message store for a message M with
// PE(M+ ∪ M) ≥ PE(M+), adds it to mPlus, and rescans (a promotion can
// unlock further promotions). The newly promoted pairs are returned.
// Soundness: by supermodularity, PE(M+∪M) ≥ PE(M+) with sound M+ implies
// M ⊆ E(E) (proof of Theorem 4). Alternative schedulers (the round
// executors in parallel.go and internal/grid) reach this step through
// RoundReducer.Promote.
func promoteMessages(prob Probabilistic, store *MessageStore, mPlus PairSet, stats *RunStats) []Pair {
	return promoteMessagesImpl(prob, store, mPlus, stats)
}

func promoteMessagesImpl(prob Probabilistic, store *MessageStore, mPlus PairSet, stats *RunStats) []Pair {
	// The promotion test PE(M+ ∪ M) ≥ PE(M+) is a score-delta sign test.
	// Prefer the matcher's incremental delta when available; otherwise
	// fall back to two full LogScore evaluations.
	delta := func(missing []Pair) float64 {
		if ds, ok := prob.(DeltaScorer); ok {
			return ds.ScoreSetDelta(missing, mPlus)
		}
		candidate := mPlus.Clone()
		for _, p := range missing {
			candidate.Add(p)
		}
		return prob.LogScore(candidate) - prob.LogScore(mPlus)
	}

	var promotedPairs []Pair
	var missing []Pair // reused across messages; delta() only reads it
	for {
		again := false
		for _, msg := range store.Messages() {
			// Skip messages already subsumed by the match set.
			missing = missing[:0]
			for _, p := range msg {
				if !mPlus.Has(p) {
					missing = append(missing, p)
				}
			}
			if len(missing) == 0 {
				continue
			}
			stats.ScoreChecks++
			if delta(missing) >= 0 {
				for _, p := range missing {
					mPlus.Add(p)
					promotedPairs = append(promotedPairs, p)
				}
				stats.PromotedSets++
				again = true
			}
		}
		if !again {
			break
		}
	}
	return promotedPairs
}
