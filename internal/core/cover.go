package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Cover is a set of neighborhoods whose union is the entity set (§4).
// Neighborhood i is the slice Sets[i]; entities may appear in several
// neighborhoods (overlap is what lets simple messages propagate).
type Cover struct {
	Sets        [][]EntityID
	NumEntities int

	// containing[e] = ids of neighborhoods containing entity e, built by
	// Index().
	containing [][]int32
}

// NewCover wraps neighborhood sets over an entity universe of size n and
// builds the containment index. Each neighborhood is sorted and deduped.
func NewCover(n int, sets [][]EntityID) *Cover {
	c := &Cover{Sets: make([][]EntityID, len(sets)), NumEntities: n}
	for i, s := range sets {
		dup := make([]EntityID, len(s))
		copy(dup, s)
		sort.Slice(dup, func(a, b int) bool { return dup[a] < dup[b] })
		out := dup[:0]
		for j, e := range dup {
			if j > 0 && dup[j-1] == e {
				continue
			}
			out = append(out, e)
		}
		c.Sets[i] = out
	}
	c.buildIndex()
	return c
}

func (c *Cover) buildIndex() {
	c.containing = make([][]int32, c.NumEntities)
	for i, s := range c.Sets {
		for _, e := range s {
			c.containing[e] = append(c.containing[e], int32(i))
		}
	}
}

// Len returns the number of neighborhoods.
func (c *Cover) Len() int { return len(c.Sets) }

// Containing returns the ids of neighborhoods containing entity e.
func (c *Cover) Containing(e EntityID) []int32 { return c.containing[e] }

// IsCover verifies that every entity belongs to at least one neighborhood.
func (c *Cover) IsCover() bool {
	for e := 0; e < c.NumEntities; e++ {
		if len(c.containing[e]) == 0 {
			return false
		}
	}
	return true
}

// IsTotal verifies Definition 7 against a relation given as an undirected
// graph: every relation edge must be fully contained in at least one
// neighborhood.
func (c *Cover) IsTotal(rel *graph.Graph) bool {
	return c.FirstUncovered(rel) == [2]EntityID{-1, -1}
}

// FirstUncovered returns one relation edge not contained in any single
// neighborhood, or {-1, -1} if the cover is total w.r.t. rel.
func (c *Cover) FirstUncovered(rel *graph.Graph) [2]EntityID {
	for u := int32(0); u < int32(rel.N()); u++ {
		for _, v := range rel.Neighbors(u) {
			if v < u {
				continue
			}
			if !c.shareNeighborhood(u, v) {
				return [2]EntityID{u, v}
			}
		}
	}
	return [2]EntityID{-1, -1}
}

func (c *Cover) shareNeighborhood(u, v EntityID) bool {
	cu, cv := c.containing[u], c.containing[v]
	i, j := 0, 0
	for i < len(cu) && j < len(cv) {
		switch {
		case cu[i] == cv[j]:
			return true
		case cu[i] < cv[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// MaxSize returns the size k of the largest neighborhood (the k of
// Theorems 3 and 5).
func (c *Cover) MaxSize() int {
	k := 0
	for _, s := range c.Sets {
		if len(s) > k {
			k = len(s)
		}
	}
	return k
}

// Stats summarizes a cover.
type CoverStats struct {
	Neighborhoods int
	MaxSize       int
	MeanSize      float64
	TotalEntries  int // Σ|Ci| (with multiplicity)
}

// ComputeStats gathers cover statistics.
func (c *Cover) ComputeStats() CoverStats {
	s := CoverStats{Neighborhoods: len(c.Sets)}
	for _, set := range c.Sets {
		s.TotalEntries += len(set)
		if len(set) > s.MaxSize {
			s.MaxSize = len(set)
		}
	}
	if len(c.Sets) > 0 {
		s.MeanSize = float64(s.TotalEntries) / float64(len(c.Sets))
	}
	return s
}

func (s CoverStats) String() string {
	return fmt.Sprintf("neighborhoods=%d maxSize=%d meanSize=%.1f entries=%d",
		s.Neighborhoods, s.MaxSize, s.MeanSize, s.TotalEntries)
}

// Affected computes Neighbor(·) of Algorithms 1 and 3: the ids of
// neighborhoods whose runs may be affected by the given new matches. A
// neighborhood is affected when it contains an endpoint of a new match or
// an entity adjacent (in rel, typically the Coauthor graph) to an
// endpoint — those are the neighborhoods whose effective evidence
// changed. rel may be nil, in which case only containment applies.
//
// This over-approximates "input changed", which preserves convergence,
// soundness and consistency (re-running an unaffected neighborhood is a
// no-op for an idempotent matcher).
func (c *Cover) Affected(newMatches []Pair, rel *graph.Graph) []int32 {
	seen := map[int32]bool{}
	var out []int32
	visit := func(e EntityID) {
		for _, id := range c.containing[e] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for _, p := range newMatches {
		visit(p.A)
		visit(p.B)
		if rel != nil {
			for _, u := range rel.Neighbors(p.A) {
				visit(u)
			}
			for _, u := range rel.Neighbors(p.B) {
				visit(u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AffectedEntities is the entity-level analogue of Affected: the ids of
// neighborhoods containing one of the given entities, or an entity
// adjacent to one in rel. It is what an ingested delta activates — the
// neighborhoods whose scope or boundary evidence a batch of new entities
// can touch. rel may be nil, in which case only containment applies.
func (c *Cover) AffectedEntities(entities []EntityID, rel *graph.Graph) []int32 {
	seen := map[int32]bool{}
	var out []int32
	visit := func(e EntityID) {
		for _, id := range c.containing[e] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for _, e := range entities {
		visit(e)
		if rel != nil {
			for _, u := range rel.Neighbors(e) {
				visit(u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
