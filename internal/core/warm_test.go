package core_test

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/testmodel"
	"repro/internal/wire"
)

// warmOf captures a completed run as a warm-start seed.
func warmOf(res *core.Result, active []int32) *core.WarmStart {
	return &core.WarmStart{
		Evidence: res.Matches.SortedKeys(),
		Messages: res.Messages,
		Active:   active,
	}
}

// TestWarmStartFixpointStability: seeding a run with a completed run's
// evidence and outstanding messages is a no-op — with an empty active
// seed nothing is evaluated at all, and with the FULL active set every
// neighborhood is either skipped or re-derives only known matches. Both
// land on the cold result's exact match set.
func TestWarmStartFixpointStability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m, cover := randomModel(rng)
		for _, scheme := range []string{"NO-MP", "SMP", "MMP"} {
			wrapped := &countingMatcher{Model: m}
			cfg := core.Config{Cover: cover, Matcher: wrapped, Relation: m.Relation()}
			cold, err := core.RunBackend(bg, cfg, scheme, core.PoolBackend{}, core.CheckpointConfig{})
			if err != nil {
				t.Fatal(err)
			}

			wrapped.calls.Store(0)
			idle, err := core.RunBackendFrom(bg, cfg, scheme, core.PoolBackend{},
				core.CheckpointConfig{}, warmOf(cold, nil))
			if err != nil {
				t.Fatal(err)
			}
			if wrapped.calls.Load() != 0 {
				t.Errorf("%s: empty active seed still called the matcher %d times", scheme, wrapped.calls.Load())
			}
			if !idle.Matches.Equal(cold.Matches) {
				t.Errorf("%s: empty-seed warm start diverges: %d vs %d matches",
					scheme, idle.Matches.Len(), cold.Matches.Len())
			}

			all := make([]int32, cover.Len())
			for i := range all {
				all[i] = int32(i)
			}
			full, err := core.RunBackendFrom(bg, cfg, scheme, &core.ShardedBackend{Shards: 3},
				core.CheckpointConfig{}, warmOf(cold, all))
			if err != nil {
				t.Fatal(err)
			}
			if !full.Matches.Equal(cold.Matches) {
				t.Errorf("%s: full-reactivation warm start diverges: %d vs %d matches",
					scheme, full.Matches.Len(), cold.Matches.Len())
			}
		}
	}
}

// TestWarmStartContinuesFromRoundBoundary: the state after round r of a
// cold checkpointed run — replayed evidence, next active set, outstanding
// messages — fed back through RunBackendFrom must finish on the cold
// run's exact match set, for every r, both backends. Warm continuation
// is round-boundary resume through the public seed instead of the trail.
func TestWarmStartContinuesFromRoundBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		for _, scheme := range []string{"SMP", "MMP"} {
			dir := t.TempDir()
			cold, err := core.RunBackend(bg, cfg, scheme, core.PoolBackend{}, core.CheckpointConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			files := trailFiles(t, dir)
			evidence := core.NewPairSet()
			for r, f := range files {
				raw, err := os.ReadFile(f)
				if err != nil {
					t.Fatal(err)
				}
				ck, err := wire.UnmarshalCheckpoint(raw)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range ck.Delta {
					evidence.AddKey(core.PairKey(k))
				}
				warm := &core.WarmStart{Evidence: evidence.SortedKeys(), Active: ck.Active}
				for _, g := range ck.Messages {
					msg := make([]core.Pair, len(g))
					for i, k := range g {
						msg[i] = core.PairKey(k).Pair()
					}
					warm.Messages = append(warm.Messages, msg)
				}
				for _, b := range []core.Backend{core.PoolBackend{}, &core.ShardedBackend{Shards: 2}} {
					res, err := core.RunBackendFrom(bg, cfg, scheme, b, core.CheckpointConfig{}, warm)
					if err != nil {
						t.Fatalf("%s: warm continuation from round %d: %v", scheme, r+1, err)
					}
					if !res.Matches.Equal(cold.Matches) {
						t.Errorf("%s: warm continuation from round %d diverges: %d vs %d matches",
							scheme, r+1, res.Matches.Len(), cold.Matches.Len())
					}
				}
			}
		}
	}
}

// TestWarmStartTrailResumes: a warm-started checkpointing run writes its
// seed as round 1, so the trail resumes through the ordinary checkpoint
// path — completed trails rebuild without matcher calls, and truncating
// the trail back to just the synthetic seed record still converges to
// the same result.
func TestWarmStartTrailResumes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		m, cover := randomModel(rng)
		for _, scheme := range []string{"SMP", "MMP"} {
			wrapped := &countingMatcher{Model: m}
			cfg := core.Config{Cover: cover, Matcher: wrapped, Relation: m.Relation()}
			cold, err := core.RunBackend(bg, cfg, scheme, core.PoolBackend{}, core.CheckpointConfig{})
			if err != nil {
				t.Fatal(err)
			}
			// Continue from the cold round-1 state (its checkpoint delta is
			// its new matches; emulate with evidence = cold matches and the
			// full active set) while writing a warm trail.
			all := make([]int32, cover.Len())
			for i := range all {
				all[i] = int32(i)
			}
			dir := t.TempDir()
			warmRes, err := core.RunBackendFrom(bg, cfg, scheme, core.PoolBackend{},
				core.CheckpointConfig{Dir: dir}, warmOf(cold, all))
			if err != nil {
				t.Fatal(err)
			}
			files := trailFiles(t, dir)
			if len(files) < 2 {
				t.Fatalf("%s: warm trail has %d records, want seed + >=1 round", scheme, len(files))
			}

			wrapped.calls.Store(0)
			resumed, err := core.RunBackend(bg, cfg, scheme, core.PoolBackend{},
				core.CheckpointConfig{Dir: dir, Resume: true})
			if err != nil {
				t.Fatalf("%s: resuming the completed warm trail: %v", scheme, err)
			}
			if wrapped.calls.Load() != 0 {
				t.Errorf("%s: resuming a completed warm trail called the matcher %d times", scheme, wrapped.calls.Load())
			}
			if !resumed.Matches.Equal(warmRes.Matches) {
				t.Errorf("%s: warm-trail resume diverges: %d vs %d matches",
					scheme, resumed.Matches.Len(), warmRes.Matches.Len())
			}

			// Kill everything after the synthetic seed record and resume:
			// must re-execute the continuation and land on the same set.
			for _, f := range files[1:] {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
			truncated, err := core.RunBackend(bg, cfg, scheme, &core.ShardedBackend{Shards: 2},
				core.CheckpointConfig{Dir: dir, Resume: true})
			if err != nil {
				t.Fatalf("%s: resuming the truncated warm trail: %v", scheme, err)
			}
			if !truncated.Matches.Equal(warmRes.Matches) {
				t.Errorf("%s: truncated warm-trail resume diverges: %d vs %d matches",
					scheme, truncated.Matches.Len(), warmRes.Matches.Len())
			}
		}
	}
}

// TestWarmStartValidation pins the seed's error paths.
func TestWarmStartValidation(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	msg := []core.Pair{core.MakePair(0, 1), core.MakePair(1, 2)}

	cases := []struct {
		name   string
		scheme string
		ck     core.CheckpointConfig
		warm   *core.WarmStart
	}{
		{"messages on SMP", "SMP", core.CheckpointConfig{},
			&core.WarmStart{Messages: [][]core.Pair{msg}}},
		{"active out of range", "SMP", core.CheckpointConfig{},
			&core.WarmStart{Active: []int32{int32(cover.Len())}}},
		{"negative active", "SMP", core.CheckpointConfig{},
			&core.WarmStart{Active: []int32{-1}}},
		{"evidence out of range", "SMP", core.CheckpointConfig{},
			&core.WarmStart{Evidence: []core.PairKey{core.MakePair(0, core.EntityID(cover.NumEntities)).Key()}}},
		{"reflexive evidence", "SMP", core.CheckpointConfig{},
			&core.WarmStart{Evidence: []core.PairKey{core.Pair{A: 2, B: 2}.Key()}}},
		{"warm with resume", "SMP", core.CheckpointConfig{Dir: t.TempDir(), Resume: true},
			&core.WarmStart{}},
	}
	for _, tc := range cases {
		if _, err := core.RunBackendFrom(bg, cfg, tc.scheme, core.PoolBackend{}, tc.ck, tc.warm); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// nil warm start degrades to a plain cold run.
	res, err := core.RunBackendFrom(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{}, nil)
	if err != nil || res == nil {
		t.Fatalf("nil warm start: %v", err)
	}
}
