package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/testmodel"
)

// pairNames resolves a match set to names for readable failures.
func pairNames(ids map[string]core.EntityID, names ...[2]string) core.PairSet {
	s := core.NewPairSet()
	for _, n := range names {
		s.Add(core.MakePair(ids[n[0]], ids[n[1]]))
	}
	return s
}

// TestPaperExampleFull verifies the §2.1 narrative: the globally optimal
// match set contains all five pairs.
func TestPaperExampleFull(t *testing.T) {
	m, cover, ids := testmodel.PaperExample()
	full := mustRun(t, core.Full, core.Config{Cover: cover, Matcher: m, Relation: m.Relation()})
	want := pairNames(ids,
		[2]string{"a1", "a2"}, [2]string{"b1", "b2"}, [2]string{"b2", "b3"},
		[2]string{"c1", "c2"}, [2]string{"c2", "c3"})
	if !full.Matches.Equal(want) {
		t.Fatalf("FULL = %v, want %v", full.Matches.Sorted(), want.Sorted())
	}
}

// TestPaperExampleNoMP: independent neighborhood runs find only (c1,c2).
func TestPaperExampleNoMP(t *testing.T) {
	m, cover, ids := testmodel.PaperExample()
	res := mustRun(t, core.NoMP, core.Config{Cover: cover, Matcher: m, Relation: m.Relation()})
	want := pairNames(ids, [2]string{"c1", "c2"})
	if !res.Matches.Equal(want) {
		t.Fatalf("NO-MP = %v, want %v", res.Matches.Sorted(), want.Sorted())
	}
	if res.Stats.Evaluations != cover.Len() {
		t.Errorf("NO-MP evaluations = %d, want %d", res.Stats.Evaluations, cover.Len())
	}
}

// TestPaperExampleSMP: simple messages additionally recover (b1,b2) —
// and nothing else (§2.2: "the simple message passing scheme cannot
// recover matches (a1,a2), (b2,b3) and (c2,c3)").
func TestPaperExampleSMP(t *testing.T) {
	m, cover, ids := testmodel.PaperExample()
	res := mustRun(t, core.SMP, core.Config{Cover: cover, Matcher: m, Relation: m.Relation()})
	want := pairNames(ids, [2]string{"c1", "c2"}, [2]string{"b1", "b2"})
	if !res.Matches.Equal(want) {
		t.Fatalf("SMP = %v, want %v", res.Matches.Sorted(), want.Sorted())
	}
}

// TestPaperExampleMMP: maximal messages complete the 3-chain; MMP output
// equals the full run (completeness 1 on this instance, §6.1).
func TestPaperExampleMMP(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	res, err := core.MMP(bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := mustRun(t, core.Full, cfg)
	if !res.Matches.Equal(full.Matches) {
		t.Fatalf("MMP = %v, want FULL = %v", res.Matches.Sorted(), full.Matches.Sorted())
	}
	if res.Stats.MaximalMessages == 0 || res.Stats.PromotedSets == 0 {
		t.Errorf("MMP stats show no maximal-message activity: %+v", res.Stats)
	}
}

// TestPaperExampleUB: the oracle recovers all five pairs too.
func TestPaperExampleUB(t *testing.T) {
	m, cover, ids := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	truth := pairNames(ids,
		[2]string{"a1", "a2"}, [2]string{"b1", "b2"}, [2]string{"b2", "b3"},
		[2]string{"c1", "c2"}, [2]string{"c2", "c3"})
	res, err := core.UB(bg, cfg, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches.Equal(truth) {
		t.Fatalf("UB = %v, want %v", res.Matches.Sorted(), truth.Sorted())
	}
}

// randomModel builds a random supermodular model, a random cover of its
// entities, and returns both. Free-variable counts stay brute-forceable.
func randomModel(rng *rand.Rand) (*testmodel.Model, *core.Cover) {
	n := 6 + rng.Intn(5)
	m := testmodel.New(n)
	var pairs []core.Pair
	target := 4 + rng.Intn(6)
	for len(pairs) < target {
		a, b := core.EntityID(rng.Intn(n)), core.EntityID(rng.Intn(n))
		if a == b {
			continue
		}
		p := core.MakePair(a, b)
		if _, ok := m.Unary[p]; ok {
			continue
		}
		m.AddPair(p.A, p.B, -6+rng.Float64()*8) // mostly negative unaries
		pairs = append(pairs, p)
	}
	nInter := rng.Intn(2 * len(pairs))
	for i := 0; i < nInter; i++ {
		p, q := pairs[rng.Intn(len(pairs))], pairs[rng.Intn(len(pairs))]
		if p == q {
			continue
		}
		m.AddInteraction(p, q, rng.Float64()*9)
	}
	// Random cover: 2-4 neighborhoods, each a random subset, patched so
	// every entity is covered.
	k := 2 + rng.Intn(3)
	sets := make([][]core.EntityID, k)
	for e := 0; e < n; e++ {
		placed := false
		for s := 0; s < k; s++ {
			if rng.Float64() < 0.55 {
				sets[s] = append(sets[s], core.EntityID(e))
				placed = true
			}
		}
		if !placed {
			sets[rng.Intn(k)] = append(sets[rng.Intn(k)], core.EntityID(e))
		}
	}
	return m, core.NewCover(n, sets)
}

// TestSMPSoundnessRandom checks Theorem 2(2) on random instances:
// SMP's output is contained in the full run's output.
func TestSMPSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		smp := mustRun(t, core.SMP, cfg)
		full := mustRun(t, core.Full, cfg)
		if !smp.Matches.Subset(full.Matches) {
			t.Fatalf("trial %d: SMP unsound: %v ⊄ %v",
				trial, smp.Matches.Sorted(), full.Matches.Sorted())
		}
		// NO-MP is sound too, and SMP finds at least as much.
		nomp := mustRun(t, core.NoMP, cfg)
		if !nomp.Matches.Subset(full.Matches) {
			t.Fatalf("trial %d: NO-MP unsound", trial)
		}
		if !nomp.Matches.Subset(smp.Matches) {
			t.Fatalf("trial %d: SMP lost NO-MP matches", trial)
		}
	}
}

// TestMMPSoundnessRandom checks Theorem 4 soundness on random instances,
// and that MMP finds at least as much as SMP.
func TestMMPSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 120; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		mmp, err := core.MMP(bg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		full := mustRun(t, core.Full, cfg)
		if !mmp.Matches.Subset(full.Matches) {
			t.Fatalf("trial %d: MMP unsound: extra %v",
				trial, mmp.Matches.Minus(full.Matches).Sorted())
		}
		smp := mustRun(t, core.SMP, cfg)
		if !smp.Matches.Subset(mmp.Matches) {
			t.Fatalf("trial %d: MMP lost SMP matches %v",
				trial, smp.Matches.Minus(mmp.Matches).Sorted())
		}
	}
}

// TestOrderInvariance checks Theorem 2(3)/4 across scheduling
// disciplines: every Order yields identical SMP and MMP outputs.
func TestOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	orders := []core.Order{core.OrderFIFO, core.OrderLIFO,
		core.OrderSmallestFirst, core.OrderLargestFirst}
	for trial := 0; trial < 40; trial++ {
		m, cover := randomModel(rng)
		base := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		ref := mustRun(t, core.SMP, base)
		refM, err := core.MMP(bg, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range orders[1:] {
			cfg := base
			cfg.Order = o
			if got := mustRun(t, core.SMP, cfg); !got.Matches.Equal(ref.Matches) {
				t.Fatalf("trial %d: SMP output differs under order %d", trial, o)
			}
			gotM, err := core.MMP(bg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !gotM.Matches.Equal(refM.Matches) {
				t.Fatalf("trial %d: MMP output differs under order %d", trial, o)
			}
		}
	}
}

// TestConsistencyRandom checks Theorem 2(3)/4: the outputs of SMP and MMP
// do not depend on the order in which neighborhoods are evaluated. We
// permute the cover's neighborhood list (which permutes the initial
// queue) and compare outputs.
func TestConsistencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 60; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		smpRef := mustRun(t, core.SMP, cfg)
		mmpRef, err := core.MMP(bg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for perm := 0; perm < 3; perm++ {
			shuffled := make([][]core.EntityID, len(cover.Sets))
			copy(shuffled, cover.Sets)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			cfg2 := core.Config{
				Cover:    core.NewCover(cover.NumEntities, shuffled),
				Matcher:  m,
				Relation: m.Relation(),
			}
			smp2 := mustRun(t, core.SMP, cfg2)
			if !smp2.Matches.Equal(smpRef.Matches) {
				t.Fatalf("trial %d perm %d: SMP inconsistent: %v vs %v",
					trial, perm, smp2.Matches.Sorted(), smpRef.Matches.Sorted())
			}
			mmp2, err := core.MMP(bg, cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if !mmp2.Matches.Equal(mmpRef.Matches) {
				t.Fatalf("trial %d perm %d: MMP inconsistent: %v vs %v",
					trial, perm, mmp2.Matches.Sorted(), mmpRef.Matches.Sorted())
			}
		}
	}
}

// TestUBContainsFullRandom: with truth = the full run's own output, the
// UB oracle must contain every full-run match (each matched pair has
// non-negative conditional gain at the optimum; supermodularity).
func TestUBContainsFullRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 120; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		full := mustRun(t, core.Full, cfg)
		ub, err := core.UB(bg, cfg, full.Matches)
		if err != nil {
			t.Fatal(err)
		}
		if !full.Matches.Subset(ub.Matches) {
			t.Fatalf("trial %d: UB misses full-run matches %v",
				trial, full.Matches.Minus(ub.Matches).Sorted())
		}
	}
}

// TestRevisitBound checks the counter behind Theorem 3: no neighborhood
// is evaluated more than k²+1 times (each re-activation of C follows a
// strict growth of M+ ∩ C×C, bounded by k²).
func TestRevisitBound(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 60; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		k := cover.MaxSize()
		smp := mustRun(t, core.SMP, cfg)
		if smp.Stats.MaxRevisits > k*k+1 {
			t.Fatalf("trial %d: SMP revisits %d exceed k²+1 = %d",
				trial, smp.Stats.MaxRevisits, k*k+1)
		}
		mmp, err := core.MMP(bg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mmp.Stats.MaxRevisits > k*k+1 {
			t.Fatalf("trial %d: MMP revisits %d exceed k²+1 = %d",
				trial, mmp.Stats.MaxRevisits, k*k+1)
		}
	}
}

// TestMMPRejectsTypeI: MMP must refuse a plain Type-I matcher.
func TestMMPRejectsTypeI(t *testing.T) {
	plain := core.MatcherFunc{
		MatchFn: func(e []core.EntityID, pos, neg core.PairSet) core.PairSet {
			return core.NewPairSet()
		},
	}
	_, err := core.MMP(bg, core.Config{
		Cover:   core.NewCover(2, [][]core.EntityID{{0, 1}}),
		Matcher: plain,
	})
	if err == nil {
		t.Fatal("MMP accepted a non-probabilistic matcher")
	}
}

// TestUBRequiresDecider: UB must refuse matchers without DecideGiven.
func TestUBRequiresDecider(t *testing.T) {
	plain := core.MatcherFunc{
		MatchFn: func(e []core.EntityID, pos, neg core.PairSet) core.PairSet {
			return core.NewPairSet()
		},
	}
	_, err := core.UB(bg, core.Config{
		Cover:   core.NewCover(2, [][]core.EntityID{{0, 1}}),
		Matcher: plain,
	}, core.NewPairSet())
	if err == nil {
		t.Fatal("UB accepted a matcher without DecideGiven")
	}
}

// TestStatsPlumbing sanity-checks the run statistics.
func TestStatsPlumbing(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	res := mustRun(t, core.SMP, cfg)
	if res.Stats.Neighborhoods != 3 {
		t.Errorf("Neighborhoods = %d", res.Stats.Neighborhoods)
	}
	if res.Stats.MatcherCalls < 3 || res.Stats.Evaluations < 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.String() == "" {
		t.Error("stats string empty")
	}
	if res.Scheme != "SMP" {
		t.Errorf("scheme = %q", res.Scheme)
	}
}
