// Package core implements the paper's scaling framework: the black-box
// matcher abstractions (§3), covers over entity sets (§4), and the
// message-passing schemes NO-MP, SMP (Algorithm 1) and MMP (Algorithms 2
// and 3) together with the UB oracle of §6.1.
//
// The framework is generic over the entity domain: entities are dense
// int32 ids, and matchers are black boxes satisfying the Matcher (Type-I)
// or Probabilistic (Type-II) interfaces.
package core

import (
	"fmt"
	"sort"
)

// EntityID identifies an entity. Ids are dense in [0, n).
type EntityID = int32

// Pair is an unordered pair of entities, normalized so A < B. Construct
// with MakePair to maintain the invariant.
type Pair struct {
	A, B EntityID
}

// MakePair returns the normalized pair {a, b}.
func MakePair(a, b EntityID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

// Valid reports whether the pair is normalized and non-reflexive.
func (p Pair) Valid() bool { return p.A < p.B }

func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }

// PairSet is a set of normalized pairs. The nil map is a valid empty set
// for reading; use NewPairSet or Add (on a non-nil set) to build one.
type PairSet map[Pair]struct{}

// NewPairSet returns an empty set, optionally seeded with pairs.
func NewPairSet(pairs ...Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s.Add(p)
	}
	return s
}

// Add inserts p (normalizing is the caller's job via MakePair).
func (s PairSet) Add(p Pair) { s[p] = struct{}{} }

// Has reports membership. Safe on a nil set.
func (s PairSet) Has(p Pair) bool {
	_, ok := s[p]
	return ok
}

// Len returns the cardinality. Safe on a nil set.
func (s PairSet) Len() int { return len(s) }

// AddAll inserts every pair of t into s and returns the number of pairs
// that were actually new.
func (s PairSet) AddAll(t PairSet) int {
	added := 0
	for p := range t {
		if !s.Has(p) {
			s.Add(p)
			added++
		}
	}
	return added
}

// Clone returns an independent copy.
func (s PairSet) Clone() PairSet {
	out := make(PairSet, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}

// Union returns a new set s ∪ t.
func (s PairSet) Union(t PairSet) PairSet {
	out := s.Clone()
	out.AddAll(t)
	return out
}

// Minus returns a new set s \ t.
func (s PairSet) Minus(t PairSet) PairSet {
	out := NewPairSet()
	for p := range s {
		if !t.Has(p) {
			out.Add(p)
		}
	}
	return out
}

// Intersect returns a new set s ∩ t.
func (s PairSet) Intersect(t PairSet) PairSet {
	if t.Len() < s.Len() {
		s, t = t, s
	}
	out := NewPairSet()
	for p := range s {
		if t.Has(p) {
			out.Add(p)
		}
	}
	return out
}

// Subset reports whether s ⊆ t.
func (s PairSet) Subset(t PairSet) bool {
	for p := range s {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s PairSet) Equal(t PairSet) bool {
	return s.Len() == t.Len() && s.Subset(t)
}

// Sorted returns the pairs in deterministic (A, then B) order.
func (s PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// WithPair returns a new set s ∪ {p}; s is unchanged.
func (s PairSet) WithPair(p Pair) PairSet {
	out := s.Clone()
	out.Add(p)
	return out
}
