// Package core implements the paper's scaling framework: the black-box
// matcher abstractions (§3), covers over entity sets (§4), and the
// message-passing schemes NO-MP, SMP (Algorithm 1) and MMP (Algorithms 2
// and 3) together with the UB oracle of §6.1.
//
// The framework is generic over the entity domain: entities are dense
// int32 ids, and matchers are black boxes satisfying the Matcher (Type-I)
// or Probabilistic (Type-II) interfaces.
package core

import (
	"fmt"
	"iter"
	"slices"
)

// EntityID identifies an entity. Ids are dense in [0, n).
type EntityID = int32

// Pair is an unordered pair of entities, normalized so A < B. Construct
// with MakePair to maintain the invariant.
type Pair struct {
	A, B EntityID
}

// MakePair returns the normalized pair {a, b}.
func MakePair(a, b EntityID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

// Valid reports whether the pair is normalized and non-reflexive.
func (p Pair) Valid() bool { return p.A < p.B }

func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }

// PairKey packs a normalized pair into one machine word: A in the high 32
// bits, B in the low 32. Because ids are dense non-negative int32s and
// pairs are normalized (A < B), the natural uint64 ordering of keys equals
// the (A, then B) lexicographic pair ordering — sorting keys IS sorting
// pairs, with no comparator.
type PairKey uint64

// Key packs the pair.
func (p Pair) Key() PairKey {
	return PairKey(uint64(uint32(p.A))<<32 | uint64(uint32(p.B)))
}

// Pair unpacks the key.
func (k PairKey) Pair() Pair {
	return Pair{A: EntityID(k >> 32), B: EntityID(uint32(k))}
}

// PairSet is a set of normalized pairs, represented on packed uint64 keys
// so membership tests hash one word instead of a struct. The nil map is a
// valid empty set for reading; use NewPairSet or Add (on a non-nil set)
// to build one. Iterate pairs with All (or Sorted for deterministic
// order); ranging over the map directly yields PairKeys.
type PairSet map[PairKey]struct{}

// NewPairSet returns an empty set, optionally seeded with pairs.
func NewPairSet(pairs ...Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s.Add(p)
	}
	return s
}

// Add inserts p (normalizing is the caller's job via MakePair).
func (s PairSet) Add(p Pair) { s[p.Key()] = struct{}{} }

// AddKey inserts an already-packed pair.
func (s PairSet) AddKey(k PairKey) { s[k] = struct{}{} }

// Has reports membership. Safe on a nil set.
func (s PairSet) Has(p Pair) bool {
	_, ok := s[p.Key()]
	return ok
}

// HasKey reports membership of a packed pair. Safe on a nil set.
func (s PairSet) HasKey(k PairKey) bool {
	_, ok := s[k]
	return ok
}

// Len returns the cardinality. Safe on a nil set.
func (s PairSet) Len() int { return len(s) }

// All iterates the pairs in unspecified order (map iteration); use Sorted
// when determinism matters.
func (s PairSet) All() iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		for k := range s {
			if !yield(k.Pair()) {
				return
			}
		}
	}
}

// AddAll inserts every pair of t into s and returns the number of pairs
// that were actually new.
func (s PairSet) AddAll(t PairSet) int {
	added := 0
	for k := range t {
		if _, ok := s[k]; !ok {
			s[k] = struct{}{}
			added++
		}
	}
	return added
}

// Clone returns an independent copy.
func (s PairSet) Clone() PairSet {
	out := make(PairSet, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// Union returns a new set s ∪ t.
func (s PairSet) Union(t PairSet) PairSet {
	out := s.Clone()
	out.AddAll(t)
	return out
}

// Minus returns a new set s \ t.
func (s PairSet) Minus(t PairSet) PairSet {
	out := NewPairSet()
	for k := range s {
		if _, ok := t[k]; !ok {
			out[k] = struct{}{}
		}
	}
	return out
}

// Intersect returns a new set s ∩ t.
func (s PairSet) Intersect(t PairSet) PairSet {
	if t.Len() < s.Len() {
		s, t = t, s
	}
	out := NewPairSet()
	for k := range s {
		if _, ok := t[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

// Subset reports whether s ⊆ t.
func (s PairSet) Subset(t PairSet) bool {
	for k := range s {
		if _, ok := t[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s PairSet) Equal(t PairSet) bool {
	return s.Len() == t.Len() && s.Subset(t)
}

// SortedKeys returns the packed keys in ascending order — the stable
// iteration the schedulers use for reproducible evidence propagation.
func (s PairSet) SortedKeys() []PairKey {
	out := make([]PairKey, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Sorted returns the pairs in deterministic (A, then B) order.
func (s PairSet) Sorted() []Pair {
	keys := s.SortedKeys()
	out := make([]Pair, len(keys))
	for i, k := range keys {
		out[i] = k.Pair()
	}
	return out
}

// WithPair returns a new set s ∪ {p}; s is unchanged.
func (s PairSet) WithPair(p Pair) PairSet {
	out := s.Clone()
	out.Add(p)
	return out
}

// SortPairs orders a pair slice by packed key (A, then B) in place.
func SortPairs(pairs []Pair) {
	slices.SortFunc(pairs, func(a, b Pair) int {
		ka, kb := a.Key(), b.Key()
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		default:
			return 0
		}
	})
}
