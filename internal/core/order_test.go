package core

import "testing"

func TestWorkQueueLIFO(t *testing.T) {
	q := newWorkQueue(3, OrderLIFO, []int{1, 1, 1})
	want := []int32{2, 1, 0}
	for _, w := range want {
		id, ok := q.pop()
		if !ok || id != w {
			t.Fatalf("pop = %d,%v want %d", id, ok, w)
		}
	}
	if !q.empty() {
		t.Error("queue not drained")
	}
}

func TestWorkQueueSizeOrders(t *testing.T) {
	sizes := []int{5, 1, 3}
	q := newWorkQueue(3, OrderSmallestFirst, sizes)
	want := []int32{1, 2, 0}
	for _, w := range want {
		if id, _ := q.pop(); id != w {
			t.Fatalf("smallest-first order wrong: got %d want %d", id, w)
		}
	}
	q = newWorkQueue(3, OrderLargestFirst, sizes)
	want = []int32{0, 2, 1}
	for _, w := range want {
		if id, _ := q.pop(); id != w {
			t.Fatalf("largest-first order wrong: got %d want %d", id, w)
		}
	}
}

func TestWorkQueueRequeueUnderLIFO(t *testing.T) {
	q := newWorkQueue(2, OrderLIFO, []int{1, 1})
	id, _ := q.pop() // 1
	if id != 1 {
		t.Fatalf("first pop = %d", id)
	}
	q.push(1) // re-activate: should come out before 0 under LIFO
	if id, _ := q.pop(); id != 1 {
		t.Fatalf("requeued id not popped first: %d", id)
	}
}
