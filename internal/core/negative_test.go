package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/testmodel"
)

// TestNegativeEvidenceSuppresses: pairs in Config.Negative never appear
// in any scheme's output, and knocking out a load-bearing pair removes
// its dependents too (anti-monotonicity flowing through the framework).
func TestNegativeEvidenceSuppresses(t *testing.T) {
	m, cover, ids := testmodel.PaperExample()
	base := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}

	// Baseline: (c1,c2) is matched and unlocks (b1,b2) via SMP.
	smp := mustRun(t, core.SMP, base)
	c12 := core.MakePair(ids["c1"], ids["c2"])
	b12 := core.MakePair(ids["b1"], ids["b2"])
	if !smp.Matches.Has(c12) || !smp.Matches.Has(b12) {
		t.Fatalf("baseline lost expected matches: %v", smp.Matches.Sorted())
	}

	// Negate (c1,c2): both it and its dependent (b1,b2) must disappear,
	// in every scheme.
	neg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(),
		Negative: core.NewPairSet(c12)}
	for _, res := range []*core.Result{mustRun(t, core.NoMP, neg), mustRun(t, core.SMP, neg), mustRun(t, core.Full, neg)} {
		if res.Matches.Has(c12) {
			t.Errorf("%s: negated pair matched", res.Scheme)
		}
		if res.Matches.Has(b12) {
			t.Errorf("%s: dependent of negated pair matched", res.Scheme)
		}
	}
	mmp, err := core.MMP(bg, neg)
	if err != nil {
		t.Fatal(err)
	}
	if mmp.Matches.Has(c12) || mmp.Matches.Has(b12) {
		t.Errorf("MMP ignored negative evidence: %v", mmp.Matches.Sorted())
	}
}

// TestNegativeEvidenceMonotone: growing Negative never grows any
// scheme's output (Definition 3(iii) lifted to the framework level),
// checked on random instances.
func TestNegativeEvidenceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		m, cover := randomModel(rng)
		base := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		full := mustRun(t, core.Full, base)
		if full.Matches.Len() == 0 {
			continue
		}
		// Negate a random subset of the full run's matches.
		neg := core.NewPairSet()
		for p := range full.Matches.All() {
			if rng.Intn(2) == 0 {
				neg.Add(p)
			}
		}
		withNeg := base
		withNeg.Negative = neg

		for _, pair := range []struct {
			name     string
			without  core.PairSet
			withNegM core.PairSet
		}{
			{"SMP", mustRun(t, core.SMP, base).Matches, mustRun(t, core.SMP, withNeg).Matches},
			{"NO-MP", mustRun(t, core.NoMP, base).Matches, mustRun(t, core.NoMP, withNeg).Matches},
			{"FULL", full.Matches, mustRun(t, core.Full, withNeg).Matches},
		} {
			if !pair.withNegM.Subset(pair.without) {
				t.Fatalf("trial %d: %s grew under negative evidence", trial, pair.name)
			}
			for p := range neg.All() {
				if pair.withNegM.Has(p) {
					t.Fatalf("trial %d: %s output a negated pair", trial, pair.name)
				}
			}
		}
		mmp, err := core.MMP(bg, withNeg)
		if err != nil {
			t.Fatal(err)
		}
		for p := range neg.All() {
			if mmp.Matches.Has(p) {
				t.Fatalf("trial %d: MMP output a negated pair", trial)
			}
		}
	}
}

// nonMonotoneMatcher violates Definition 3 deliberately: it matches a
// pair only while NO evidence is supplied (evidence makes it withdraw
// matches). Used to demonstrate that the framework's soundness guarantee
// genuinely depends on well-behavedness.
type nonMonotoneMatcher struct {
	pairs []core.Pair
}

func (n nonMonotoneMatcher) Candidates(entities []core.EntityID) []core.Pair {
	in := map[core.EntityID]bool{}
	for _, e := range entities {
		in[e] = true
	}
	var out []core.Pair
	for _, p := range n.pairs {
		if in[p.A] && in[p.B] {
			out = append(out, p)
		}
	}
	return out
}

func (n nonMonotoneMatcher) Match(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
	out := core.NewPairSet()
	if pos.Len() > 0 {
		return out // spitefully withdraws everything once evidence exists
	}
	for _, p := range n.Candidates(entities) {
		out.Add(p)
	}
	return out
}

// TestNonMonotoneBreaksIdempotence: the wellbehaved checkers catch the
// violation — this documents WHY Theorem 2 needs its hypotheses.
func TestNonMonotoneBreaksIdempotence(t *testing.T) {
	m := nonMonotoneMatcher{pairs: []core.Pair{core.MakePair(0, 1), core.MakePair(2, 3)}}
	entities := []core.EntityID{0, 1, 2, 3}
	if err := core.CheckIdempotence(m, entities, core.NewPairSet(), core.NewPairSet()); err == nil {
		t.Fatal("checker failed to flag a non-idempotent matcher")
	}
	if err := core.CheckMonotonePositive(m, entities,
		core.NewPairSet(), core.NewPairSet(core.MakePair(0, 1)), core.NewPairSet()); err == nil {
		t.Fatal("checker failed to flag a non-monotone matcher")
	}
	// SMP still terminates on it (convergence needs no monotonicity —
	// M+ only grows), but soundness can no longer be promised; here the
	// output visibly differs from the matcher's own full run.
	cover := core.NewCover(4, [][]core.EntityID{{0, 1}, {2, 3}, {0, 1, 2, 3}})
	cfg := core.Config{Cover: cover, Matcher: m}
	smp := mustRun(t, core.SMP, cfg)
	full := mustRun(t, core.Full, cfg)
	if smp.Matches.Equal(full.Matches) {
		t.Skip("order happened to agree; the guarantee is still void")
	}
}
