package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/wire"
)

// CheckpointConfig enables round-boundary checkpointing of a
// backend-executed run. After every completed round the driver persists
// {round, evidence delta, next active set, outstanding maximal messages,
// visit counts, RunStats} to Dir as one wire.Checkpoint file
// (round-NNNNNN.ckpt), written atomically (temp file + rename) so a kill
// can never leave a torn record. Replaying the deltas of rounds 1..r
// rebuilds the evidence set exactly; everything else resumes from the
// latest record.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; empty disables checkpointing. A
	// fresh (non-resume) run clears previous round files from Dir first.
	Dir string
	// Format selects the wire codec for new checkpoint files (default
	// compact binary). Resume accepts either format regardless.
	Format wire.Format
	// Resume continues a previous run from Dir instead of starting over.
	// An empty Dir resumes into a fresh run; a completed trail
	// reconstructs the final result without evaluating anything.
	Resume bool
	// Matcher labels the matcher producing the trail (e.g. its registry
	// name); it is stamped into every checkpoint and verified on resume,
	// so a trail cannot silently seed a different matcher's run. Empty
	// opts out of the check (anonymous matchers).
	Matcher string
}

const ckptPattern = "round-*.ckpt"

func ckptFile(round int) string { return fmt.Sprintf("round-%06d.ckpt", round) }

// checkpointer writes one durable record per completed round.
type checkpointer struct {
	dir     string
	format  wire.Format
	matcher string
}

// clear removes the round files of any previous run in the directory,
// creating it if needed.
func (c *checkpointer) clear() error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(c.dir, ckptPattern))
	if err != nil {
		return err
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil {
			return fmt.Errorf("core: clearing stale checkpoint: %w", err)
		}
	}
	return nil
}

// write persists the just-completed round. delta must be the round's
// evidence delta in ascending key order.
func (c *checkpointer) write(d *RoundDriver, delta []PairKey) error {
	ck := &wire.Checkpoint{
		Scheme:        d.plan.Scheme,
		Matcher:       c.matcher,
		Neighborhoods: d.plan.Config.Cover.Len(),
		Entities:      d.plan.Config.Cover.NumEntities,
		Round:         d.round,
		Done:          d.done,
		Delta:         make([]uint64, len(delta)),
		Active:        d.active,
		Visits:        d.visits,
		Stats:         statsToWire(&d.res.Stats),
	}
	for i, k := range delta {
		ck.Delta[i] = uint64(k)
	}
	if d.store != nil {
		for _, msg := range d.store.Messages() {
			g := make([]uint64, len(msg))
			for i, p := range msg {
				g[i] = uint64(p.Key())
			}
			ck.Messages = append(ck.Messages, g)
		}
	}
	b, err := ck.Marshal(c.format)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint round %d: %w", d.round, err)
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	final := filepath.Join(c.dir, ckptFile(d.round))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("core: writing checkpoint round %d: %w", d.round, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("core: committing checkpoint round %d: %w", d.round, err)
	}
	return nil
}

// resumeState is a checkpoint trail decoded back into driver state.
type resumeState struct {
	matches  PairSet
	visits   []int
	stats    RunStats
	messages [][]Pair
	active   []int32
	round    int
	done     bool
}

// loadCheckpointState reads and verifies a checkpoint trail: contiguous
// rounds 1..r, all fingerprinting the same run as plan (and as matcher,
// when both the trail and the caller carry a label). Returns nil when
// the directory holds no checkpoints (resume into a fresh run).
func loadCheckpointState(dir string, plan *RoundPlan, matcher string) (*resumeState, error) {
	files, err := filepath.Glob(filepath.Join(dir, ckptPattern))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	sort.Strings(files)

	st := &resumeState{matches: NewPairSet()}
	var last *wire.Checkpoint
	for i, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("core: reading checkpoint: %w", err)
		}
		ck, err := wire.UnmarshalCheckpoint(raw)
		if err != nil {
			return nil, fmt.Errorf("core: decoding %s: %w", filepath.Base(f), err)
		}
		if ck.Round != i+1 {
			return nil, fmt.Errorf("core: checkpoint trail not contiguous: %s carries round %d, want %d",
				filepath.Base(f), ck.Round, i+1)
		}
		if ck.Scheme != plan.Scheme || ck.Neighborhoods != plan.Config.Cover.Len() ||
			ck.Entities != plan.Config.Cover.NumEntities {
			return nil, fmt.Errorf("core: checkpoint %s belongs to a different run (scheme %s over %d neighborhoods/%d entities, resuming %s over %d/%d)",
				filepath.Base(f), ck.Scheme, ck.Neighborhoods, ck.Entities,
				plan.Scheme, plan.Config.Cover.Len(), plan.Config.Cover.NumEntities)
		}
		if ck.Matcher != "" && matcher != "" && ck.Matcher != matcher {
			return nil, fmt.Errorf("core: checkpoint %s was written by matcher %q, resuming with %q",
				filepath.Base(f), ck.Matcher, matcher)
		}
		if len(ck.Messages) > 0 && !plan.WithMessages {
			return nil, fmt.Errorf("core: checkpoint %s carries maximal messages but scheme %s exchanges none",
				filepath.Base(f), plan.Scheme)
		}
		for _, k := range ck.Delta {
			st.matches.AddKey(PairKey(k))
		}
		last = ck
	}

	st.round = last.Round
	st.done = last.Done
	st.active = last.Active
	st.visits = last.Visits
	st.stats = statsFromWire(&last.Stats)
	for _, g := range last.Messages {
		msg := make([]Pair, len(g))
		for i, k := range g {
			msg[i] = PairKey(k).Pair()
		}
		st.messages = append(st.messages, msg)
	}
	return st, nil
}

func statsToWire(s *RunStats) wire.Stats {
	return wire.Stats{
		Neighborhoods:   s.Neighborhoods,
		MatcherCalls:    s.MatcherCalls,
		Evaluations:     s.Evaluations,
		MaxRevisits:     s.MaxRevisits,
		MessagesSent:    s.MessagesSent,
		MaximalMessages: s.MaximalMessages,
		PromotedSets:    s.PromotedSets,
		ScoreChecks:     s.ScoreChecks,
		Skips:           s.Skips,
		ElapsedNS:       int64(s.Elapsed),
		MatcherTimeNS:   int64(s.MatcherTime),
		ActiveSizes:     s.ActiveSizes,
	}
}

func statsFromWire(s *wire.Stats) RunStats {
	return RunStats{
		Neighborhoods:   s.Neighborhoods,
		MatcherCalls:    s.MatcherCalls,
		Evaluations:     s.Evaluations,
		MaxRevisits:     s.MaxRevisits,
		MessagesSent:    s.MessagesSent,
		MaximalMessages: s.MaximalMessages,
		PromotedSets:    s.PromotedSets,
		ScoreChecks:     s.ScoreChecks,
		Skips:           s.Skips,
		Elapsed:         time.Duration(s.ElapsedNS),
		MatcherTime:     time.Duration(s.MatcherTimeNS),
		ActiveSizes:     s.ActiveSizes,
	}
}
