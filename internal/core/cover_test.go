package core

import (
	"testing"

	"repro/internal/graph"
)

func triangleRelation() *graph.Graph {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	b.AddEdge(1, 2) // crosses neighborhoods in the test covers below
	return b.Build()
}

func TestNewCoverNormalizes(t *testing.T) {
	c := NewCover(4, [][]EntityID{{3, 1, 1, 2}})
	if len(c.Sets[0]) != 3 {
		t.Fatalf("set = %v, want deduped", c.Sets[0])
	}
	for i := 1; i < len(c.Sets[0]); i++ {
		if c.Sets[0][i-1] >= c.Sets[0][i] {
			t.Fatal("set not sorted")
		}
	}
}

func TestIsCover(t *testing.T) {
	c := NewCover(4, [][]EntityID{{0, 1}, {2, 3}})
	if !c.IsCover() {
		t.Error("complete cover rejected")
	}
	c2 := NewCover(4, [][]EntityID{{0, 1}, {2}})
	if c2.IsCover() {
		t.Error("incomplete cover accepted")
	}
}

func TestContaining(t *testing.T) {
	c := NewCover(4, [][]EntityID{{0, 1, 2}, {2, 3}})
	if got := c.Containing(2); len(got) != 2 {
		t.Errorf("Containing(2) = %v", got)
	}
	if got := c.Containing(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Containing(0) = %v", got)
	}
}

func TestIsTotal(t *testing.T) {
	rel := triangleRelation()
	// Total: edge {1,2} inside second neighborhood.
	total := NewCover(6, [][]EntityID{{0, 1}, {1, 2, 3}, {4, 5}})
	if !total.IsTotal(rel) {
		t.Errorf("total cover rejected; uncovered = %v", total.FirstUncovered(rel))
	}
	// Not total: edge {1,2} split.
	partial := NewCover(6, [][]EntityID{{0, 1}, {2, 3}, {4, 5}})
	if partial.IsTotal(rel) {
		t.Error("partial cover accepted as total")
	}
	if got := partial.FirstUncovered(rel); got != [2]EntityID{1, 2} {
		t.Errorf("FirstUncovered = %v, want {1,2}", got)
	}
}

func TestMaxSizeAndStats(t *testing.T) {
	c := NewCover(6, [][]EntityID{{0, 1}, {1, 2, 3}, {4, 5}})
	if c.MaxSize() != 3 {
		t.Errorf("MaxSize = %d", c.MaxSize())
	}
	s := c.ComputeStats()
	if s.Neighborhoods != 3 || s.MaxSize != 3 || s.TotalEntries != 7 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestAffectedContainment(t *testing.T) {
	c := NewCover(6, [][]EntityID{{0, 1}, {1, 2, 3}, {4, 5}})
	// Without a relation graph, only containment counts.
	got := c.Affected([]Pair{MakePair(4, 5)}, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Affected = %v, want [2]", got)
	}
}

func TestAffectedViaRelation(t *testing.T) {
	rel := triangleRelation()
	c := NewCover(6, [][]EntityID{{0, 1}, {2, 3}, {4, 5}})
	// Match (0,1): entity 1 is relation-adjacent to 2, which lives in
	// neighborhood 1, so both neighborhoods 0 and 1 are affected.
	got := c.Affected([]Pair{MakePair(0, 1)}, rel)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Affected = %v, want [0 1]", got)
	}
}

func TestAffectedDedupes(t *testing.T) {
	c := NewCover(4, [][]EntityID{{0, 1, 2, 3}})
	got := c.Affected([]Pair{MakePair(0, 1), MakePair(2, 3)}, nil)
	if len(got) != 1 {
		t.Errorf("Affected = %v, want single neighborhood", got)
	}
}

func TestWorkQueue(t *testing.T) {
	q := newWorkQueue(3, OrderFIFO, []int{1, 1, 1})
	seen := []int32{}
	requeued := false
	for {
		id, ok := q.pop()
		if !ok {
			break
		}
		seen = append(seen, id)
		if id == 0 && !requeued {
			requeued = true
			q.push(2) // requeue; must dedupe with pending entry
			q.push(0) // self-requeue allowed after pop
		}
	}
	// 0,1,2 then 0 again (2 was still queued when re-pushed).
	want := []int32{0, 1, 2, 0}
	if len(seen) != len(want) {
		t.Fatalf("pop sequence = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("pop sequence = %v, want %v", seen, want)
		}
	}
}
