package core_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
)

// recordingStore is a minimal EvidenceStore capturing the driver's
// clear/put protocol.
type recordingStore struct {
	keys   map[uint64]struct{}
	clears int
	puts   int
}

func newRecordingStore() *recordingStore {
	return &recordingStore{keys: map[uint64]struct{}{}}
}

func (r *recordingStore) ClearEvidence() error {
	r.clears++
	r.keys = map[uint64]struct{}{}
	return nil
}

func (r *recordingStore) PutEvidence(keys []uint64) error {
	r.puts++
	for i, k := range keys {
		a, b := uint32(k>>32), uint32(k)
		if a >= b || b >= 1<<31 {
			return fmt.Errorf("batch key %d (%#x) violates the pair-key contract", i, k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("batch not strictly increasing at %d", i)
		}
		r.keys[k] = struct{}{}
	}
	return nil
}

func (r *recordingStore) sorted() []core.PairKey {
	out := make([]core.PairKey, 0, len(r.keys))
	for k := range r.keys {
		out = append(out, core.PairKey(k))
	}
	slices.Sort(out)
	return out
}

// TestEvidenceStoreMirrorsRun pins the driver invariant: after any
// round-based run, the evidence store holds exactly the result's
// accumulated M+, and every batch obeyed the wire key contract.
func TestEvidenceStoreMirrorsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m, cover := randomModel(rng)
		for _, scheme := range []string{"NO-MP", "SMP", "MMP"} {
			es := newRecordingStore()
			cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(), Evidence: es}
			res, err := core.RunBackend(bg, cfg, scheme, core.PoolBackend{}, core.CheckpointConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if es.clears == 0 {
				t.Fatalf("%s: cold run never cleared the evidence store", scheme)
			}
			if got, want := es.sorted(), res.Matches.SortedKeys(); !slices.Equal(got, want) {
				t.Fatalf("%s: store holds %d keys, result %d", scheme, len(got), len(want))
			}
		}
	}
}

// TestEvidenceStoreWarmStart pins the warm-start protocol: the store is
// reset to the seed, then accumulates the continuation's deltas, ending
// equal to the warm fixpoint.
func TestEvidenceStoreWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, cover := randomModel(rng)
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	cold := runOn(t, cfg, "SMP", core.PoolBackend{})

	es := newRecordingStore()
	cfg.Evidence = es
	warm := &core.WarmStart{
		Evidence: cold.Matches.SortedKeys(),
		Active:   []int32{0},
	}
	res, err := core.RunBackendFrom(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{}, warm)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := es.sorted(), res.Matches.SortedKeys(); !slices.Equal(got, want) {
		t.Fatalf("warm store holds %d keys, result %d", len(got), len(want))
	}
}

// TestEvidenceStoreResume pins the resume protocol: resuming a
// checkpoint trail resets the store to the trail's accumulated state
// (never unioned with a previous run's leftovers).
func TestEvidenceStoreResume(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m, cover := randomModel(rng)
	dir := t.TempDir()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}

	full, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	es := newRecordingStore()
	// Poison the store: a resume must clear this leftover, not merge it.
	es.keys[1<<40|7] = struct{}{}
	cfg.Evidence = es
	resumed, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Matches.Equal(full.Matches) {
		t.Fatal("resume diverged from the original run")
	}
	if got, want := es.sorted(), resumed.Matches.SortedKeys(); !slices.Equal(got, want) {
		t.Fatalf("resumed store holds %d keys, result %d", len(got), len(want))
	}
}
