package core

import (
	"time"

	"repro/internal/graph"
)

// Config describes one framework run: the cover, the black-box matcher,
// and the relation graph used by Neighbor(·) to find affected
// neighborhoods (typically the Coauthor graph; may be nil).
type Config struct {
	Cover    *Cover
	Matcher  Matcher
	Relation *graph.Graph

	// Negative is the initial V− evidence (Definition 1): pairs known NOT
	// to match, passed to every matcher invocation. For well-behaved
	// matchers, growing this set can only shrink the output
	// (Definition 3(iii)). May be nil.
	Negative PairSet

	// Order is the scheduling discipline of the active set (default
	// FIFO). Output is order-invariant for well-behaved matchers.
	Order Order
}

// NoMP runs the matcher once on every neighborhood independently and
// unions the results — the NO-MP baseline of §6. No evidence flows
// between neighborhoods.
func NoMP(cfg Config) *Result {
	start := time.Now()
	res := &Result{Scheme: "NO-MP", Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()
	for _, entities := range cfg.Cover.Sets {
		res.Stats.ActiveSizes = append(res.Stats.ActiveSizes,
			activeDecisions(cfg.Matcher, entities, nil))
		t0 := time.Now()
		mc := cfg.Matcher.Match(entities, nil, cfg.Negative)
		res.Stats.MatcherTime += time.Since(t0)
		res.Stats.MatcherCalls++
		res.Stats.Evaluations++
		res.Matches.AddAll(mc)
	}
	res.Stats.MaxRevisits = 1
	res.Stats.Elapsed = time.Since(start)
	return res
}

// Full runs the matcher once on the entire entity set — the FULL
// reference of Appendix C (feasible only for cheap matchers).
func Full(cfg Config) *Result {
	start := time.Now()
	all := make([]EntityID, cfg.Cover.NumEntities)
	for i := range all {
		all[i] = EntityID(i)
	}
	res := &Result{Scheme: "FULL"}
	res.Stats.ActiveSizes = []int{activeDecisions(cfg.Matcher, all, nil)}
	t0 := time.Now()
	res.Matches = cfg.Matcher.Match(all, nil, cfg.Negative)
	res.Stats.MatcherTime = time.Since(t0)
	res.Stats.Neighborhoods = 1
	res.Stats.MatcherCalls = 1
	res.Stats.Evaluations = 1
	res.Stats.MaxRevisits = 1
	res.Stats.Elapsed = time.Since(start)
	return res
}

// SMP is the simple message-passing scheme (Algorithm 1). The matches
// found so far are passed as positive evidence to every subsequent
// neighborhood run; neighborhoods affected by new matches are
// re-activated until fixpoint.
//
// For a well-behaved matcher, SMP converges, is sound (output ⊆ E(E))
// and consistent (output independent of evaluation order) — Theorem 2 —
// in time O(k²·f(k)·n) — Theorem 3.
func SMP(cfg Config) *Result {
	start := time.Now()
	res := &Result{Scheme: "SMP", Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()

	active := queueFor(cfg)
	visits := make([]int, cfg.Cover.Len())
	mPlus := res.Matches

	for {
		id, ok := active.pop()
		if !ok {
			break
		}
		visits[id]++
		res.Stats.Evaluations++
		entities := cfg.Cover.Sets[id]
		res.Stats.ActiveSizes = append(res.Stats.ActiveSizes,
			activeDecisions(cfg.Matcher, entities, mPlus))

		t0 := time.Now()
		mc := cfg.Matcher.Match(entities, mPlus, cfg.Negative)
		res.Stats.MatcherTime += time.Since(t0)
		res.Stats.MatcherCalls++

		newMatches := collectNew(mc, mPlus)
		if len(newMatches) == 0 {
			continue
		}
		for _, p := range newMatches {
			mPlus.Add(p)
		}
		affected := cfg.Cover.Affected(newMatches, cfg.Relation)
		for _, a := range affected {
			active.push(a)
		}
		res.Stats.MessagesSent += len(affected)
	}

	for _, v := range visits {
		if v > res.Stats.MaxRevisits {
			res.Stats.MaxRevisits = v
		}
	}
	res.Stats.Elapsed = time.Since(start)
	return res
}

// activeDecisions counts the in-scope candidate pairs not yet decided by
// the evidence — the neighborhood's effective inference size.
func activeDecisions(m Matcher, entities []EntityID, evidence PairSet) int {
	active := 0
	for _, p := range m.Candidates(entities) {
		if !evidence.Has(p) {
			active++
		}
	}
	return active
}

// collectNew returns the pairs of mc missing from mPlus.
func collectNew(mc, mPlus PairSet) []Pair {
	var out []Pair
	for p := range mc {
		if !mPlus.Has(p) {
			out = append(out, p)
		}
	}
	return out
}
