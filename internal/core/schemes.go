package core

import (
	"context"
	"slices"
	"time"

	"repro/internal/graph"
)

// Config describes one framework run: the cover, the black-box matcher,
// and the relation graph used by Neighbor(·) to find affected
// neighborhoods (typically the Coauthor graph; may be nil).
type Config struct {
	Cover    *Cover
	Matcher  Matcher
	Relation *graph.Graph

	// Negative is the initial V− evidence (Definition 1): pairs known NOT
	// to match, passed to every matcher invocation. For well-behaved
	// matchers, growing this set can only shrink the output
	// (Definition 3(iii)). May be nil.
	Negative PairSet

	// Order is the scheduling discipline of the serial active set
	// (default FIFO). Output is order-invariant for well-behaved
	// matchers. Ignored when Parallelism > 1 (rounds are set-at-a-time).
	Order Order

	// Parallelism bounds concurrent neighborhood evaluations. 0 or 1
	// runs serially. For n > 1, NoMP evaluates independent neighborhoods
	// on a worker pool, and SMP/MMP adopt the grid's round-based
	// map/reduce structure on shared memory: every round maps the active
	// set in parallel against a snapshot of the evidence, then reduces
	// the new evidence centrally. Output is unchanged for well-behaved
	// matchers (consistency, Theorems 2 and 4). The Matcher must be safe
	// for concurrent Match/Candidates calls when Parallelism > 1.
	Parallelism int

	// Progress, when non-nil, is invoked sequentially after every
	// neighborhood evaluation (from the reducing goroutine in parallel
	// runs). Callbacks must be fast; they sit on the scheduling path.
	Progress func(ProgressEvent)

	// Evidence, when non-nil, mirrors the round driver's accumulated
	// M+ into external storage: cleared (and re-seeded) at run start,
	// then appended one sorted delta per completed round, so the store
	// always holds exactly the current run's evidence. Only round-based
	// executions consult it.
	Evidence EvidenceStore
}

// workers normalizes Parallelism to an effective worker count.
func (cfg *Config) workers() int {
	if cfg.Parallelism < 1 {
		return 1
	}
	return cfg.Parallelism
}

// emit delivers a progress event if a callback is installed.
func (cfg *Config) emit(scheme string, id int32, round int, res *Result) {
	if cfg.Progress == nil {
		return
	}
	cfg.Progress(ProgressEvent{
		Scheme:       scheme,
		Neighborhood: id,
		Round:        round,
		Evaluations:  res.Stats.Evaluations,
		Matches:      res.Matches.Len(),
	})
}

// NoMP runs the matcher once on every neighborhood independently and
// unions the results — the NO-MP baseline of §6. No evidence flows
// between neighborhoods, so the neighborhoods are evaluated on a worker
// pool when cfg.Parallelism > 1; the result is identical to the serial
// run. Cancellation of ctx aborts between neighborhood evaluations.
func NoMP(ctx context.Context, cfg Config) (*Result, error) {
	start := time.Now()
	prepareScopes(&cfg) // NO-MP never revisits, so no skips apply
	cacheStart, _ := cacheSnapshot(cfg.Matcher)
	res := &Result{Scheme: "NO-MP", Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()

	jobs, err := mapNeighborhoods(ctx, cfg, allNeighborhoods(cfg.Cover.Len()), nil, false, false, nil)
	if err != nil {
		return nil, err
	}
	round := 0 // serial runs report round 0, parallel rounds count from 1
	if cfg.workers() > 1 {
		round = 1
	}
	for _, j := range jobs {
		res.Stats.ActiveSizes = append(res.Stats.ActiveSizes, j.active)
		res.Stats.MatcherTime += j.dur
		res.Stats.MatcherCalls++
		res.Stats.Evaluations++
		res.Matches.AddAll(j.matches)
		cfg.emit("NO-MP", j.id, round, res)
	}
	res.Stats.MaxRevisits = 1
	res.Stats.Cache = cacheDelta(cfg.Matcher, cacheStart)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// Full runs the matcher once on the entire entity set — the FULL
// reference of Appendix C (feasible only for cheap matchers). The single
// matcher call is not interruptible; ctx is checked on entry.
func Full(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	all := make([]EntityID, cfg.Cover.NumEntities)
	for i := range all {
		all[i] = EntityID(i)
	}
	res := &Result{Scheme: "FULL"}
	res.Stats.ActiveSizes = []int{activeDecisions(cfg.Matcher, all, nil)}
	t0 := time.Now()
	res.Matches = cfg.Matcher.Match(all, nil, cfg.Negative)
	res.Stats.MatcherTime = time.Since(t0)
	res.Stats.Neighborhoods = 1
	res.Stats.MatcherCalls = 1
	res.Stats.Evaluations = 1
	res.Stats.MaxRevisits = 1
	res.Stats.Elapsed = time.Since(start)
	cfg.emit("FULL", -1, 0, res)
	return res, nil
}

// SMP is the simple message-passing scheme (Algorithm 1). The matches
// found so far are passed as positive evidence to every subsequent
// neighborhood run; neighborhoods affected by new matches are
// re-activated until fixpoint.
//
// For a well-behaved matcher, SMP converges, is sound (output ⊆ E(E))
// and consistent (output independent of evaluation order) — Theorem 2 —
// in time O(k²·f(k)·n) — Theorem 3. With cfg.Parallelism > 1 the active
// set is processed in parallel rounds (see Config.Parallelism);
// consistency makes the output identical.
func SMP(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.workers() > 1 {
		return runRounds(ctx, cfg, "SMP")
	}
	start := time.Now()
	canSkip := prepareScopes(&cfg)
	cacheStart, _ := cacheSnapshot(cfg.Matcher)
	res := &Result{Scheme: "SMP", Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()

	active := queueFor(cfg)
	visits := make([]int, cfg.Cover.Len())
	mPlus := res.Matches

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id, ok := active.pop()
		if !ok {
			break
		}
		entities := cfg.Cover.Sets[id]
		activeSize := activeDecisions(cfg.Matcher, entities, mPlus)
		if canSkip && visits[id] > 0 && activeSize == 0 {
			// Re-activated but nothing left to decide: for a matcher with
			// the candidate-closure property the evaluation is a provable
			// no-op (see RunStats.Skips and ScopePreparer).
			res.Stats.Skips++
			continue
		}
		visits[id]++
		res.Stats.Evaluations++
		res.Stats.ActiveSizes = append(res.Stats.ActiveSizes, activeSize)

		t0 := time.Now()
		mc := cfg.Matcher.Match(entities, mPlus, cfg.Negative)
		res.Stats.MatcherTime += time.Since(t0)
		res.Stats.MatcherCalls++

		newMatches := collectNew(mc, mPlus)
		if len(newMatches) == 0 {
			cfg.emit("SMP", id, 0, res)
			continue
		}
		for _, p := range newMatches {
			mPlus.Add(p)
		}
		affected := cfg.Cover.Affected(newMatches, cfg.Relation)
		for _, a := range affected {
			active.push(a)
		}
		res.Stats.MessagesSent += len(affected)
		cfg.emit("SMP", id, 0, res)
	}

	for _, v := range visits {
		if v > res.Stats.MaxRevisits {
			res.Stats.MaxRevisits = v
		}
	}
	res.Stats.Cache = cacheDelta(cfg.Matcher, cacheStart)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// activeDecisions counts the in-scope candidate pairs not yet decided by
// the evidence — the neighborhood's effective inference size.
func activeDecisions(m Matcher, entities []EntityID, evidence PairSet) int {
	active := 0
	for _, p := range m.Candidates(entities) {
		if !evidence.Has(p) {
			active++
		}
	}
	return active
}

// collectNew returns the pairs of mc missing from mPlus, sorted by
// packed key so evidence propagates in the same order run-to-run —
// MessagesSent, ActiveSizes, progress events and the serial queue order
// are reproducible instead of following map iteration.
func collectNew(mc, mPlus PairSet) []Pair {
	var keys []PairKey
	for k := range mc {
		if !mPlus.HasKey(k) {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	out := make([]Pair, len(keys))
	for i, k := range keys {
		out[i] = k.Pair()
	}
	return out
}
