package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testmodel"
	"repro/internal/wire"
)

// runOn executes a scheme on a backend with no checkpointing.
func runOn(t *testing.T, cfg core.Config, scheme string, b core.Backend) *core.Result {
	t.Helper()
	res, err := core.RunBackend(bg, cfg, scheme, b, core.CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameRun fails unless the two results carry the same match set
// and the same deterministic statistics (wall-clock counters excluded).
func assertSameRun(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !got.Matches.Equal(want.Matches) {
		t.Errorf("%s: match sets diverge: %d vs %d matches", label, got.Matches.Len(), want.Matches.Len())
	}
	gs, ws := got.Stats, want.Stats
	gs.Elapsed, ws.Elapsed = 0, 0
	gs.MatcherTime, ws.MatcherTime = 0, 0
	if gs.Evaluations != ws.Evaluations || gs.MatcherCalls != ws.MatcherCalls ||
		gs.MessagesSent != ws.MessagesSent || gs.MaximalMessages != ws.MaximalMessages ||
		gs.PromotedSets != ws.PromotedSets || gs.Skips != ws.Skips ||
		gs.MaxRevisits != ws.MaxRevisits || len(gs.ActiveSizes) != len(ws.ActiveSizes) {
		t.Errorf("%s: deterministic stats diverge:\ngot:  %v\nwant: %v", label, got.Stats, want.Stats)
	}
}

// TestShardedMatchesPoolRandom: on random supermodular models, the
// sharded backend must land on the pool backend's exact output — match
// set AND deterministic statistics — for every shard count and every
// scheme, in both wire codecs. This is Theorem 2/4 consistency applied
// to the backend boundary.
func TestShardedMatchesPoolRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		for _, scheme := range []string{"NO-MP", "SMP", "MMP"} {
			pool := runOn(t, cfg, scheme, core.PoolBackend{})
			for _, k := range []int{1, 2, 3, 7} {
				for _, format := range []wire.Format{wire.Binary, wire.JSON} {
					sharded := runOn(t, cfg, scheme, &core.ShardedBackend{Shards: k, Format: format})
					assertSameRun(t, scheme, sharded, pool)
				}
			}
		}
	}
}

// TestBackendMatchesSerialSchedulers: the round-based backends agree
// with the serial queue schedulers (the original Algorithm 1/3
// executors) on the final match set.
func TestBackendMatchesSerialSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		for scheme, fn := range map[string]func(context.Context, core.Config) (*core.Result, error){
			"NO-MP": core.NoMP, "SMP": core.SMP, "MMP": core.MMP,
		} {
			serial := mustRun(t, fn, cfg)
			for _, b := range []core.Backend{core.PoolBackend{}, &core.ShardedBackend{Shards: 3}} {
				res := runOn(t, cfg, scheme, b)
				if !res.Matches.Equal(serial.Matches) {
					t.Errorf("trial %d: %s on %T diverges from the serial scheduler: %d vs %d matches",
						trial, scheme, b, res.Matches.Len(), serial.Matches.Len())
				}
			}
		}
	}
}

// trailFiles returns the sorted round files of a checkpoint directory.
func trailFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "round-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	return files
}

// TestCheckpointResumeAtEveryBoundary: a checkpointed run truncated
// after round r (exactly what a kill between rounds leaves on disk)
// must resume to the uninterrupted run's match set, with statistics that
// only grew past the checkpointed values — for every r, every scheme,
// both codecs.
func TestCheckpointResumeAtEveryBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m, cover := randomModel(rng)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		for _, scheme := range []string{"SMP", "MMP"} {
			for _, format := range []wire.Format{wire.Binary, wire.JSON} {
				dir := t.TempDir()
				ck := core.CheckpointConfig{Dir: dir, Format: format}
				full, err := core.RunBackend(bg, cfg, scheme, core.PoolBackend{}, ck)
				if err != nil {
					t.Fatal(err)
				}
				files := trailFiles(t, dir)
				if len(files) == 0 {
					t.Fatalf("%s: no checkpoints written", scheme)
				}
				for r := 0; r < len(files); r++ {
					// Simulate a kill after round r: rounds r+1.. vanish.
					trunc := t.TempDir()
					var ckStats core.RunStats
					for i := 0; i < r; i++ {
						raw, err := os.ReadFile(files[i])
						if err != nil {
							t.Fatal(err)
						}
						if i == r-1 {
							w, err := wire.UnmarshalCheckpoint(raw)
							if err != nil {
								t.Fatal(err)
							}
							ckStats.Evaluations = w.Stats.Evaluations
							ckStats.MatcherCalls = w.Stats.MatcherCalls
							ckStats.MessagesSent = w.Stats.MessagesSent
						}
						if err := os.WriteFile(filepath.Join(trunc, filepath.Base(files[i])), raw, 0o644); err != nil {
							t.Fatal(err)
						}
					}
					resumed, err := core.RunBackend(bg, cfg, scheme, &core.ShardedBackend{Shards: 2, Format: format},
						core.CheckpointConfig{Dir: trunc, Format: format, Resume: true})
					if err != nil {
						t.Fatalf("%s: resume after round %d: %v", scheme, r, err)
					}
					if !resumed.Matches.Equal(full.Matches) {
						t.Errorf("%s: resume after round %d diverges: %d vs %d matches",
							scheme, r, resumed.Matches.Len(), full.Matches.Len())
					}
					if resumed.Stats.Evaluations < ckStats.Evaluations ||
						resumed.Stats.MatcherCalls < ckStats.MatcherCalls ||
						resumed.Stats.MessagesSent < ckStats.MessagesSent {
						t.Errorf("%s: resume after round %d lost statistics: %v < checkpointed %v",
							scheme, r, resumed.Stats, ckStats)
					}
				}
			}
		}
	}
}

// countingMatcher wraps a matcher and counts Match invocations. The
// counter is atomic so the wrapper stays race-free under backends that
// evaluate neighborhoods concurrently.
type countingMatcher struct {
	*testmodel.Model
	calls atomic.Int64
}

func (c *countingMatcher) Match(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
	c.calls.Add(1)
	return c.Model.Match(entities, pos, neg)
}

// TestResumeCompletedTrail: resuming a finished run's directory rebuilds
// the result purely from the serialized deltas — zero matcher calls.
func TestResumeCompletedTrail(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	wrapped := &countingMatcher{Model: m}
	cfg := core.Config{Cover: cover, Matcher: wrapped, Relation: m.Relation()}
	dir := t.TempDir()
	full, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	wrapped.calls.Store(0)
	resumed, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.calls.Load() != 0 {
		t.Errorf("resuming a completed trail called the matcher %d times", wrapped.calls.Load())
	}
	if !resumed.Matches.Equal(full.Matches) {
		t.Errorf("rebuilt result diverges: %d vs %d matches", resumed.Matches.Len(), full.Matches.Len())
	}
}

// TestResumeRejectsForeignTrail: a checkpoint trail from a different
// scheme or cover must be refused, not silently replayed.
func TestResumeRejectsForeignTrail(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	dir := t.TempDir()
	if _, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBackend(bg, cfg, "MMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true}); err == nil {
		t.Error("resuming an SMP trail as MMP succeeded")
	}
}

// TestResumeRejectsMatcherMismatch: trails are labeled with the matcher
// that wrote them; a different label on resume is refused (empty labels
// on either side opt out — anonymous matchers).
func TestResumeRejectsMatcherMismatch(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	dir := t.TempDir()
	if _, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Matcher: "mln"}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true, Matcher: "rules"}); err == nil {
		t.Error("resuming an mln-labeled trail as rules succeeded")
	}
	if _, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true, Matcher: "mln"}); err != nil {
		t.Errorf("resuming with the matching label failed: %v", err)
	}
	if _, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true}); err != nil {
		t.Errorf("unlabeled resume of a labeled trail failed: %v", err)
	}
}

// TestResumeRejectsMessagesOnNonMMP: a trail carrying maximal messages
// cannot resume a scheme that exchanges none (would otherwise
// dereference a nil message store).
func TestResumeRejectsMessagesOnNonMMP(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	dir := t.TempDir()
	full, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Graft a Messages list onto the final checkpoint (the one whose
	// messages a resume loads): structurally valid wire, semantically
	// foreign to SMP.
	files := trailFiles(t, dir)
	raw, err := os.ReadFile(files[len(files)-1])
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wire.UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	keys := full.Matches.SortedKeys()
	if len(keys) < 2 {
		t.Skip("needs at least two matches to build a message")
	}
	ck.Messages = [][]uint64{{uint64(keys[0]), uint64(keys[1])}}
	forged, err := ck.Marshal(wire.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[len(files)-1], forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true}); err == nil {
		t.Error("resuming an SMP trail carrying maximal messages succeeded")
	}
}

// TestFreshRunClearsStaleTrail: starting a non-resume checkpointed run
// in a dirty directory must not leave a mixed trail behind.
func TestFreshRunClearsStaleTrail(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "round-000099.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	full, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{}, core.CheckpointConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	files := trailFiles(t, dir)
	for _, f := range files {
		if filepath.Base(f) == "round-000099.ckpt" {
			t.Fatal("stale checkpoint survived a fresh run")
		}
	}
	resumed, err := core.RunBackend(bg, cfg, "SMP", core.PoolBackend{},
		core.CheckpointConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Matches.Equal(full.Matches) {
		t.Error("trail left by a fresh run does not reproduce its result")
	}
}

// wrappingBackend returns ctx cancellation wrapped in an internal error
// — the shape driveRounds must normalize away.
type wrappingBackend struct{}

func (wrappingBackend) RunRounds(ctx context.Context, plan *core.RoundPlan, d *core.RoundDriver) error {
	<-ctx.Done()
	return fmt.Errorf("backend: round 1 aborted: %w", ctx.Err())
}

// TestBackendsReturnBareCtxErr pins the cancellation contract for every
// backend: when ctx cancellation races a round boundary, RunBackend
// returns exactly ctx.Err() — context.Canceled itself, not a wrapped
// internal error — so callers can switch on it uniformly.
func TestBackendsReturnBareCtxErr(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	backends := map[string]core.Backend{
		"pool":     core.PoolBackend{},
		"sharded":  &core.ShardedBackend{Shards: 3},
		"wrapping": wrappingBackend{},
	}
	for name, b := range backends {
		for _, scheme := range []string{"SMP", "MMP"} {
			ctx, cancel := context.WithCancel(context.Background())
			// Cancel from inside the run, after the first evaluation
			// reports — the racy boundary the contract is about.
			cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(),
				Progress: func(core.ProgressEvent) { cancel() }}
			if name == "wrapping" {
				cancel() // never evaluates; blocks on ctx instead
			}
			_, err := core.RunBackend(ctx, cfg, scheme, b, core.CheckpointConfig{})
			if err != context.Canceled {
				t.Errorf("%s/%s: want bare context.Canceled, got %v (type %T)", name, scheme, err, err)
			}
			cancel()
		}
	}
}

// TestBackendsReturnBareDeadlineErr is the DeadlineExceeded twin.
func TestBackendsReturnBareDeadlineErr(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	for name, b := range map[string]core.Backend{
		"pool": core.PoolBackend{}, "sharded": &core.ShardedBackend{Shards: 2},
	} {
		ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		_, err := core.RunBackend(ctx, cfg, "SMP", b, core.CheckpointConfig{})
		if err != context.DeadlineExceeded {
			t.Errorf("%s: want bare context.DeadlineExceeded, got %v (type %T)", name, err, err)
		}
		cancel()
	}
}
