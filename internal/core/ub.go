package core

import (
	"context"
	"fmt"
	"time"
)

// UB computes the upper-bound oracle of §6.1: for every candidate pair p
// over the full entity set, the matcher decides p while the truth values
// of *all other pairs* are clamped to the ground truth. For a
// supermodular matcher the result provably contains every match the full
// run E(E) could produce, so its recall upper-bounds the full run's
// recall. It is not an algorithm (it consumes the ground truth) — it is
// the reference the paper's completeness measurements are made against.
//
// The matcher must implement ConditionalDecider. Cancellation of ctx
// aborts between pair decisions.
func UB(ctx context.Context, cfg Config, truth PairSet) (*Result, error) {
	dec, ok := cfg.Matcher.(ConditionalDecider)
	if !ok {
		return nil, fmt.Errorf("core: UB requires a ConditionalDecider matcher, got %T", cfg.Matcher)
	}
	start := time.Now()
	res := &Result{Scheme: "UB", Matches: NewPairSet()}
	res.Stats.Neighborhoods = cfg.Cover.Len()

	all := make([]EntityID, cfg.Cover.NumEntities)
	for i := range all {
		all[i] = EntityID(i)
	}
	for _, p := range cfg.Matcher.Candidates(all) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Stats.MatcherCalls++
		if dec.DecideGiven(p, truth) {
			res.Matches.Add(p)
		}
	}
	res.Stats.Evaluations = 1
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}
