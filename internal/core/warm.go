package core

import (
	"context"
	"fmt"
	"slices"
)

// WarmStart seeds a round-based run with the outcome of a previous run —
// the incremental-matching entry point. Evidence is the prior run's
// accumulated M+ (treated as committed positive evidence), Messages its
// outstanding maximal messages (MMP only), and Active the neighborhoods
// whose input changed since that run — typically the Affected set of an
// ingested delta. The continuation evaluates only the active seed and
// whatever it re-activates, instead of every neighborhood.
//
// For a well-behaved matcher whose output over a grown entity set can
// only grow (delta-monotonicity — both built-in matchers satisfy it),
// the warm fixpoint equals the cold fixpoint of a from-scratch run on
// the union, as long as Active covers every neighborhood whose entity
// set, candidate scope or adjacent evidence changed: unchanged
// neighborhoods are already at fixpoint under the seeded evidence, and
// any new match derived during the continuation re-activates its
// affected neighborhoods exactly like any other round delta.
type WarmStart struct {
	// Evidence is the prior M+ as packed pair keys (order irrelevant).
	Evidence []PairKey
	// Messages are the prior run's outstanding maximal messages; only
	// valid for schemes that exchange them (MMP).
	Messages [][]Pair
	// Active is the initial active set (ascending ids; duplicates are
	// tolerated and removed).
	Active []int32
}

// validate checks the seed against the plan it will drive.
func (w *WarmStart) validate(plan *RoundPlan) error {
	n := EntityID(plan.Config.Cover.NumEntities)
	for _, k := range w.Evidence {
		p := k.Pair()
		if !p.Valid() || p.B >= n {
			return fmt.Errorf("core: warm-start evidence pair %v invalid over %d entities", p, n)
		}
	}
	if len(w.Messages) > 0 && !plan.WithMessages {
		return fmt.Errorf("core: warm start carries maximal messages but scheme %s exchanges none", plan.Scheme)
	}
	for _, msg := range w.Messages {
		for _, p := range msg {
			if !p.Valid() || p.B >= n {
				return fmt.Errorf("core: warm-start message pair %v invalid over %d entities", p, n)
			}
		}
	}
	for _, id := range w.Active {
		if id < 0 || int(id) >= plan.Config.Cover.Len() {
			return fmt.Errorf("core: warm-start active id %d out of range [0,%d)", id, plan.Config.Cover.Len())
		}
	}
	return nil
}

// seed installs the warm state into a freshly initialized driver: the
// evidence becomes the accumulated match set, outstanding messages
// refill the store, and the active set replaces the all-neighborhoods
// round 1. The driver's round counter is set to 1 — the continuation's
// first round is a re-activation round (round 2), so undecided-free
// neighborhoods may be discharged as skips — and, when checkpointing,
// the seed itself is persisted as the trail's round-1 record: a
// warm-started trail is indistinguishable from a cold one and resumes
// through the ordinary checkpoint path.
func (d *RoundDriver) seed(w *WarmStart) error {
	if err := w.validate(d.plan); err != nil {
		return err
	}
	for _, k := range w.Evidence {
		d.res.Matches.AddKey(k)
	}
	for _, msg := range w.Messages {
		d.store.Add(msg)
	}
	active := slices.Clone(w.Active)
	slices.Sort(active)
	d.active = slices.Compact(active)
	d.round = 1
	d.done = len(d.active) == 0
	if d.ckpt != nil || d.plan.Config.Evidence != nil {
		delta := slices.Clone(w.Evidence)
		slices.Sort(delta)
		delta = slices.Compact(delta)
		// The store restarts from the seed, mirroring the trail's
		// round-1 record.
		if err := resetEvidence(d.plan.Config.Evidence, delta); err != nil {
			return err
		}
		if d.ckpt != nil {
			if err := d.ckpt.write(d, delta); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunBackendFrom is RunBackend continued from a warm-start seed instead
// of a cold all-neighborhoods round 1. ck.Resume must be false — a
// warm-started checkpointing run writes its seed as the trail's first
// record, and continuing THAT trail later goes through the ordinary
// RunBackend resume path.
func RunBackendFrom(ctx context.Context, cfg Config, scheme string, b Backend, ck CheckpointConfig, warm *WarmStart) (*Result, error) {
	if warm == nil {
		return RunBackend(ctx, cfg, scheme, b, ck)
	}
	if ck.Resume {
		return nil, fmt.Errorf("core: warm start and checkpoint resume are mutually exclusive (resume a warm-started trail with RunBackend)")
	}
	plan, err := NewRoundPlan(cfg, scheme)
	if err != nil {
		return nil, err
	}
	d, err := newRoundDriver(plan, ck)
	if err != nil {
		return nil, err
	}
	if err := d.seed(warm); err != nil {
		return nil, err
	}
	if !d.Done() {
		if err := driveRounds(ctx, b, plan, d); err != nil {
			return nil, err
		}
	}
	return d.finish(), nil
}
