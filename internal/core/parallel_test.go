package core_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/testmodel"
)

// TestParallelMatchesSerial: with Parallelism > 1 every scheme's output
// equals the serial scheduler's on random supermodular instances —
// consistency (Theorems 2 and 4) carried over to the shared-memory
// round executor.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 60; trial++ {
		m, cover := randomModel(rng)
		serial := core.Config{Cover: cover, Matcher: m, Relation: m.Relation()}
		par := serial
		par.Parallelism = 4

		if got, want := mustRun(t, core.NoMP, par), mustRun(t, core.NoMP, serial); !got.Matches.Equal(want.Matches) {
			t.Fatalf("trial %d: parallel NO-MP diverges: %v vs %v",
				trial, got.Matches.Sorted(), want.Matches.Sorted())
		}
		if got, want := mustRun(t, core.SMP, par), mustRun(t, core.SMP, serial); !got.Matches.Equal(want.Matches) {
			t.Fatalf("trial %d: parallel SMP diverges: %v vs %v",
				trial, got.Matches.Sorted(), want.Matches.Sorted())
		}
		got, err := core.MMP(bg, par)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.MMP(bg, serial)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Matches.Equal(want.Matches) {
			t.Fatalf("trial %d: parallel MMP diverges: %v vs %v",
				trial, got.Matches.Sorted(), want.Matches.Sorted())
		}
	}
}

// TestParallelStatsAccounting: the round executor still counts every
// neighborhood at least once and records one active size per evaluation.
func TestParallelStatsAccounting(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(), Parallelism: 3}
	res := mustRun(t, core.SMP, cfg)
	if res.Stats.Evaluations < cover.Len() {
		t.Errorf("evaluations = %d, want >= %d", res.Stats.Evaluations, cover.Len())
	}
	if len(res.Stats.ActiveSizes) != res.Stats.Evaluations {
		t.Errorf("active sizes %d != evaluations %d",
			len(res.Stats.ActiveSizes), res.Stats.Evaluations)
	}
	if res.Stats.MaxRevisits < 1 {
		t.Errorf("max revisits = %d", res.Stats.MaxRevisits)
	}
}

// TestCanceledContext: an already-canceled context aborts every scheme
// before any matcher call, serial and parallel alike.
func TestCanceledContext(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{0, 4} {
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(),
			Parallelism: parallelism}
		if _, err := core.NoMP(ctx, cfg); err != context.Canceled {
			t.Errorf("parallelism %d: NoMP err = %v", parallelism, err)
		}
		if _, err := core.SMP(ctx, cfg); err != context.Canceled {
			t.Errorf("parallelism %d: SMP err = %v", parallelism, err)
		}
		if _, err := core.MMP(ctx, cfg); err != context.Canceled {
			t.Errorf("parallelism %d: MMP err = %v", parallelism, err)
		}
	}
	if _, err := core.Full(ctx, core.Config{Cover: cover, Matcher: m}); err != context.Canceled {
		t.Errorf("Full err = %v", err)
	}
	if _, err := core.UB(ctx, core.Config{Cover: cover, Matcher: m}, core.NewPairSet()); err != context.Canceled {
		t.Errorf("UB err = %v", err)
	}
}

// TestProgressCallback: progress events fire once per evaluation with
// monotonically non-decreasing counters.
func TestProgressCallback(t *testing.T) {
	m, cover, _ := testmodel.PaperExample()
	for _, parallelism := range []int{0, 3} {
		var events []core.ProgressEvent
		cfg := core.Config{Cover: cover, Matcher: m, Relation: m.Relation(),
			Parallelism: parallelism,
			Progress:    func(e core.ProgressEvent) { events = append(events, e) }}
		res := mustRun(t, core.SMP, cfg)
		if len(events) != res.Stats.Evaluations {
			t.Fatalf("parallelism %d: %d events for %d evaluations",
				parallelism, len(events), res.Stats.Evaluations)
		}
		for i, e := range events {
			if e.Scheme != "SMP" {
				t.Fatalf("event scheme %q", e.Scheme)
			}
			if e.Evaluations != i+1 {
				t.Fatalf("event %d: evaluations = %d", i, e.Evaluations)
			}
			if i > 0 && e.Matches < events[i-1].Matches {
				t.Fatalf("event %d: match count decreased", i)
			}
		}
	}
}
