package core

// Matcher is the Type-I black-box abstraction (Definition 1): a function
// E(E, V+, V−) from an entity subset and positive/negative evidence sets
// to a set of matches. Implementations must be deterministic.
//
// A *well-behaved* matcher additionally satisfies idempotence
// (Definition 2) and monotonicity (Definition 3); the framework's
// soundness and consistency guarantees (Theorems 2 and 4) hold only for
// well-behaved matchers, and internal/core's wellbehaved.go provides
// checkers used by the matcher packages' test suites.
type Matcher interface {
	// Match runs the matcher on the given entities. pos is V+ (pairs known
	// to match) and neg is V− (pairs known not to match); either may be
	// nil. The result contains only valid (normalized, non-reflexive)
	// pairs over the given entities, and must include pos restricted to
	// those entities.
	Match(entities []EntityID, pos, neg PairSet) PairSet

	// Candidates enumerates the match variables the matcher would consider
	// over the given entities (for the bibliographic matchers: the
	// similarity-candidate pairs). COMPUTEMAXIMAL (Algorithm 2) and the UB
	// oracle iterate over these.
	Candidates(entities []EntityID) []Pair
}

// ScopePreparer is an optional matcher extension the schedulers invoke
// once per run, before the first evaluation. The cover and the ground
// model are immutable for the whole run — only evidence grows — so a
// matcher can precompute each neighborhood's scoped candidate set, local
// interaction structure and out-of-scope boundary once, turning every
// subsequent Match/Candidates call on a cover neighborhood into an array
// walk over a prebuilt skeleton instead of per-call map building.
//
// PrepareCover must be idempotent and safe to call concurrently with
// Match/Candidates (schedulers may share a matcher across runs); calls
// with covers the matcher has not seen replace the previous preparation.
// Matchers must keep answering correctly for entity slices outside the
// prepared cover.
//
// Implementing ScopePreparer additionally asserts the candidate-closure
// property: Match(E, pos, neg) ⊆ Candidates(E) ∪ (pos restricted to E).
// The schedulers rely on it to discharge re-activated neighborhoods with
// no undecided candidate without a matcher call (RunStats.Skips), which
// is only output-identical under this closure. Matchers that can derive
// pairs outside their candidate enumeration (e.g. an interleaved
// transitive closure) must not implement this interface.
type ScopePreparer interface {
	PrepareCover(c *Cover)
}

// prepareScopes announces the run's cover to a scope-preparing matcher
// and reports whether the matcher opted into the candidate-closure
// contract (and therefore into undecided-free re-activation skips).
// Called once by every scheduler that evaluates cover neighborhoods.
func prepareScopes(cfg *Config) bool {
	sp, ok := cfg.Matcher.(ScopePreparer)
	if ok {
		sp.PrepareCover(cfg.Cover)
	}
	return ok
}

// CacheReporter is an optional matcher extension exposing cumulative
// verdict-memo counters (see CacheReport). The schedulers snapshot the
// counters at run start and report the end-of-run delta in
// RunStats.Cache; a memo must never change the matcher's output — hits
// have to return exactly the verdict recomputation would produce.
type CacheReporter interface {
	CacheStats() CacheReport
}

// cacheSnapshot reads a matcher's cumulative cache counters, reporting
// whether the matcher keeps any.
func cacheSnapshot(m Matcher) (CacheReport, bool) {
	if cr, ok := m.(CacheReporter); ok {
		return cr.CacheStats(), true
	}
	return CacheReport{}, false
}

// cacheDelta finalizes a run's cache report against its start snapshot.
func cacheDelta(m Matcher, start CacheReport) CacheReport {
	if cr, ok := m.(CacheReporter); ok {
		return cr.CacheStats().Sub(start)
	}
	return CacheReport{}
}

// Probabilistic is the Type-II abstraction (Definition 5): a matcher
// backed by a probability distribution over match sets. Match must return
// (one of) the most probable set(s), preferring the largest on ties, with
// evidence incorporated by conditioning.
//
// LogScore exposes the distribution: it returns the unnormalized
// log-probability of an arbitrary match set S over the *full* entity
// collection. Only score differences are ever used (MMP Step 7 compares
// PE(M+ ∪ M) against PE(M+)), so the normalization constant is irrelevant
// — this is exactly the "computing PE(S) for a specific S is very cheap"
// property the paper's Algorithm 3 relies on.
type Probabilistic interface {
	Matcher

	// LogScore returns log PE(S) + const for the global model.
	LogScore(s PairSet) float64
}

// ConditionalDecider is an optional extension used by the UB oracle
// (§6.1): DecideGiven reports whether pair p belongs to the matcher's
// output when the truth value of every *other* pair is clamped to the
// membership in given. For supermodular models this is a cheap local
// computation.
type ConditionalDecider interface {
	DecideGiven(p Pair, given PairSet) bool
}

// ProbeFilter is an optional matcher extension used by COMPUTEMAXIMAL
// (Algorithm 2) to skip candidate pairs that can never participate in a
// useful maximal message — typically pairs whose score stays negative
// under *any* evidence, or pairs with no interactions (their singleton
// messages are subsumed by the evidence-driven re-evaluation SMP/MMP
// already perform). Skipping such probes changes no output, only cost:
// the probe set shrinks from k² to the pairs that can actually entail or
// be entailed.
type ProbeFilter interface {
	Probeable(p Pair) bool
}

// DeltaScorer lets a Probabilistic matcher evaluate the promotion test of
// Algorithm 3 Step 7 incrementally: ScoreSetDelta returns
// LogScore(s ∪ add) − LogScore(s) without materializing the union. For
// pairwise models this is O(|add|·deg) instead of O(|s|), which is what
// keeps MMP's "computing PE(S) is very cheap" premise true at scale.
type DeltaScorer interface {
	ScoreSetDelta(add []Pair, s PairSet) float64
}

// MaximalMessenger lets a matcher supply a specialized implementation of
// COMPUTEMAXIMAL (Algorithm 2). The semantics must match the generic
// probe-based construction: msgs are the connected components of the
// mutual-entailment graph over unmatched candidate pairs (singleton
// components may be omitted — the schedulers drop them). calls reports
// the number of conditioned inference runs for accounting.
type MaximalMessenger interface {
	MaximalMessages(entities []EntityID, mPlus, neg, base PairSet) (msgs [][]Pair, calls int)
}

// MatcherFunc adapts a function to the Matcher interface with candidate
// enumeration delegated to a second function. Intended for tests.
type MatcherFunc struct {
	MatchFn      func(entities []EntityID, pos, neg PairSet) PairSet
	CandidatesFn func(entities []EntityID) []Pair
}

// Match implements Matcher.
func (m MatcherFunc) Match(entities []EntityID, pos, neg PairSet) PairSet {
	return m.MatchFn(entities, pos, neg)
}

// Candidates implements Matcher.
func (m MatcherFunc) Candidates(entities []EntityID) []Pair {
	if m.CandidatesFn == nil {
		return nil
	}
	return m.CandidatesFn(entities)
}
