package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/wire"
)

// ShardedBackend executes rounds on K partitioned shards — the paper's
// distributed map/reduce deployment (§6.3) in miniature, and the
// stepping stone to multi-process workers. The cover's neighborhoods are
// partitioned statically across shards (shard of neighborhood i = i mod
// K); each shard evaluates its share of every round's active set against
// a PRIVATE evidence replica and an immutable ground-model snapshot (the
// matcher, which is never mutated during a run). Shards share no mutable
// state whatsoever: all cross-shard communication is serialized through
// the internal/wire codec — each shard ships its round results to the
// reducer as an encoded ShardBatch, and receives the round's merged
// evidence back as an encoded PairKey-ordered Delta batch, which it
// decodes and applies to its replica. Consistency (Theorems 2 and 4)
// makes the output byte-identical to the pool backend for every K.
type ShardedBackend struct {
	// Shards is the partition count K. Values < 1 mean one shard per CPU.
	Shards int

	// Format selects the wire codec for inter-shard traffic (default
	// compact binary). Outputs are identical either way; the knob exists
	// for debugging and codec cross-checks.
	Format wire.Format
}

// shardCount normalizes the configured partition count.
func (b *ShardedBackend) shardCount() int {
	if b.Shards < 1 {
		return runtime.NumCPU()
	}
	return b.Shards
}

// shard is one partition: a private evidence replica plus the round
// scratch. Nothing in here is ever touched by another goroutine while
// the shard works; the replica advances only by applying decoded Delta
// batches.
type shard struct {
	id       int
	evidence PairSet // private replica of M+; nil for NO-MP
}

// runRound evaluates the shard's share of the active set (ids, in
// ascending order) and returns the serialized batch.
func (s *shard) runRound(plan *RoundPlan, round int, ids []int32, allowSkip bool, format wire.Format) ([]byte, error) {
	batch := &wire.ShardBatch{Round: round, Shard: s.id, Jobs: make([]wire.Job, len(ids))}
	for i, id := range ids {
		j := evalNeighborhood(&plan.Config, id, s.evidence, plan.WithMessages, allowSkip, plan.Prob)
		batch.Jobs[i] = JobToWire(&j)
	}
	return batch.Marshal(format)
}

// apply merges a decoded evidence delta into the replica.
func (s *shard) apply(d *wire.Delta) {
	for _, k := range d.Keys {
		s.evidence.AddKey(PairKey(k))
	}
}

// RunRounds implements Backend.
func (b *ShardedBackend) RunRounds(ctx context.Context, plan *RoundPlan, d *RoundDriver) error {
	k := b.shardCount()

	// Seed each replica from the driver's evidence (non-empty only when
	// resuming a checkpoint trail mid-run). NO-MP runs evidence-free.
	shards := make([]*shard, k)
	for i := range shards {
		shards[i] = &shard{id: i}
		if plan.Exchange {
			shards[i].evidence = d.Snapshot().Clone()
		}
	}

	for !d.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		active := d.Active()
		round := d.Round()
		allowSkip := d.AllowSkip()

		// Partition the active set. The split is static and deterministic
		// (id mod K), so the same run lands on the same shards every time.
		parts := make([][]int32, k)
		for _, id := range active {
			s := int(id) % k
			parts[s] = append(parts[s], id)
		}

		// Map: every shard evaluates its share concurrently against its
		// own replica and serializes the results.
		encoded := make([][]byte, k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for s := 0; s < k; s++ {
			if len(parts[s]) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				if ctx.Err() != nil {
					errs[s] = ctx.Err()
					return
				}
				encoded[s], errs[s] = shards[s].runRound(plan, round, parts[s], allowSkip, b.Format)
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		// Decode the batches and reassemble the jobs in active-set order,
		// so the central reduce sees exactly what the pool backend would.
		// The partition was built by scanning active in order, so shard
		// s's batch lists its jobs in that same order — a per-shard
		// cursor re-walks it without any id→index map.
		batches := make([]*wire.ShardBatch, k)
		for s := 0; s < k; s++ {
			if encoded[s] == nil {
				continue
			}
			batch, err := wire.UnmarshalShardBatch(encoded[s])
			if err != nil {
				return fmt.Errorf("core: shard %d round %d batch: %w", s, round, err)
			}
			if batch.Round != round || batch.Shard != s || len(batch.Jobs) != len(parts[s]) {
				return fmt.Errorf("core: shard %d round %d returned a misrouted batch (round %d, shard %d, %d jobs for %d ids)",
					s, round, batch.Round, batch.Shard, len(batch.Jobs), len(parts[s]))
			}
			batches[s] = batch
		}
		jobs := make([]Job, len(active))
		cursor := make([]int, k)
		for i, id := range active {
			s := int(id) % k
			wj := &batches[s].Jobs[cursor[s]]
			cursor[s]++
			if wj.ID != id {
				return fmt.Errorf("core: shard %d round %d: job %d evaluates neighborhood %d, want %d",
					s, round, cursor[s]-1, wj.ID, id)
			}
			jobs[i] = JobFromWire(wj)
		}

		// Reduce centrally, then broadcast the round's merged evidence
		// delta — the only thing shards ever learn from each other — as
		// one serialized batch that every shard decodes independently.
		if err := d.FinishRound(jobs); err != nil {
			return err
		}
		delta := d.RoundDelta()
		if plan.Exchange && !d.Done() && len(delta) > 0 {
			msg := &wire.Delta{Round: round, Keys: make([]uint64, len(delta))}
			for i, key := range delta {
				msg.Keys[i] = uint64(key)
			}
			enc, err := msg.Marshal(b.Format)
			if err != nil {
				return fmt.Errorf("core: encoding round %d delta: %w", round, err)
			}
			for _, s := range shards {
				dec, err := wire.UnmarshalDelta(enc)
				if err != nil {
					return fmt.Errorf("core: shard %d decoding round %d delta: %w", s.id, round, err)
				}
				s.apply(dec)
			}
		}
	}
	return nil
}

// JobToWire serializes one evaluation result for shipment to the
// central reducer. Exported so out-of-process workers (internal/net,
// cmd/emworker) ship exactly what the in-process sharded backend ships.
func JobToWire(j *Job) wire.Job {
	w := wire.Job{
		ID:      j.id,
		Skipped: j.skipped,
		Active:  j.active,
		Calls:   j.calls,
		Dur:     int64(j.dur),
	}
	if j.matches.Len() > 0 {
		keys := j.matches.SortedKeys()
		w.Matches = make([]uint64, len(keys))
		for i, k := range keys {
			w.Matches[i] = uint64(k)
		}
	}
	if len(j.msgs) > 0 {
		w.Msgs = make([][]uint64, len(j.msgs))
		for i, msg := range j.msgs {
			g := make([]uint64, len(msg))
			for x, p := range msg {
				g[x] = uint64(p.Key())
			}
			w.Msgs[i] = g
		}
	}
	return w
}

// JobFromWire reconstructs an evaluation result from the wire form.
func JobFromWire(w *wire.Job) Job {
	j := Job{
		id:      w.ID,
		skipped: w.Skipped,
		active:  w.Active,
		calls:   w.Calls,
		dur:     time.Duration(w.Dur),
	}
	if w.Skipped {
		return j
	}
	j.matches = make(PairSet, len(w.Matches))
	for _, k := range w.Matches {
		j.matches.AddKey(PairKey(k))
	}
	if len(w.Msgs) > 0 {
		j.msgs = make([][]Pair, len(w.Msgs))
		for i, g := range w.Msgs {
			msg := make([]Pair, len(g))
			for x, key := range g {
				msg[x] = PairKey(key).Pair()
			}
			j.msgs[i] = msg
		}
	}
	return j
}
