package core

import "fmt"

// This file provides executable checks of the §3 matcher contracts.
// Matcher packages run these in their test suites (and the framework's
// own property tests use them against mock matchers); they are part of
// the public contract of the framework: Theorems 2 and 4 only hold for
// matchers that pass them.

// CheckIdempotence verifies Definition 2 on one input: with
// O = E(E, V+, V−), it must hold that E(E, O, V−) = O.
func CheckIdempotence(m Matcher, entities []EntityID, pos, neg PairSet) error {
	out := m.Match(entities, pos, neg)
	again := m.Match(entities, out, neg)
	if !again.Equal(out) {
		return fmt.Errorf("idempotence violated: |E(E,V+,V-)| = %d but |E(E,O,V-)| = %d",
			out.Len(), again.Len())
	}
	return nil
}

// CheckMonotoneEntities verifies Definition 3(i) on one input pair:
// for sub ⊆ super, E(sub, V+, V−) ⊆ E(super, V+, V−).
func CheckMonotoneEntities(m Matcher, sub, super []EntityID, pos, neg PairSet) error {
	small := m.Match(sub, pos, neg)
	big := m.Match(super, pos, neg)
	if !small.Subset(big) {
		return fmt.Errorf("entity monotonicity violated: %v ⊄ %v",
			small.Minus(big).Sorted(), big.Sorted())
	}
	return nil
}

// CheckMonotonePositive verifies Definition 3(ii): for pos ⊆ pos',
// E(E, pos, V−) ⊆ E(E, pos', V−).
func CheckMonotonePositive(m Matcher, entities []EntityID, pos, posBig, neg PairSet) error {
	small := m.Match(entities, pos, neg)
	big := m.Match(entities, posBig, neg)
	if !small.Subset(big) {
		return fmt.Errorf("positive-evidence monotonicity violated: missing %v",
			small.Minus(big).Sorted())
	}
	return nil
}

// CheckMonotoneNegative verifies Definition 3(iii): for neg ⊆ neg',
// E(E, V+, neg') ⊆ E(E, V+, neg).
func CheckMonotoneNegative(m Matcher, entities []EntityID, pos, neg, negBig PairSet) error {
	small := m.Match(entities, pos, negBig)
	big := m.Match(entities, pos, neg)
	if !small.Subset(big) {
		return fmt.Errorf("negative-evidence monotonicity violated: extra %v",
			small.Minus(big).Sorted())
	}
	return nil
}

// CheckSupermodular verifies Definition 6 on one (S ⊆ T, p) triple in log
// space: log PE(T ∪ {p}) − log PE(T) ≥ log PE(S ∪ {p}) − log PE(S) − tol.
func CheckSupermodular(prob Probabilistic, s, t PairSet, p Pair, tol float64) error {
	if !s.Subset(t) {
		return fmt.Errorf("CheckSupermodular misuse: S ⊄ T")
	}
	if t.Has(p) {
		// p ∈ T makes the T-side ratio degenerate (T ∪ {p} = T); the
		// definition is about adding a new pair, so the case is vacuous.
		return nil
	}
	deltaT := prob.LogScore(t.WithPair(p)) - prob.LogScore(t)
	deltaS := prob.LogScore(s.WithPair(p)) - prob.LogScore(s)
	if deltaT < deltaS-tol {
		return fmt.Errorf("supermodularity violated at %v: ΔT = %v < ΔS = %v", p, deltaT, deltaS)
	}
	return nil
}
