package core

import (
	"repro/internal/unionfind"
)

// MessageStore maintains the set T of maximal messages of Algorithm 3,
// keeping it closed under the (T ∪ TC)* operation: overlapping messages
// are replaced by their union (sound by Proposition 3(ii)). The closure
// is maintained incrementally with a union-find keyed by pair.
type MessageStore struct {
	idOf   map[PairKey]int
	pairs  []Pair
	dsu    *unionfind.DSU
	cached [][]Pair // memoized Messages(); nil after a mutating Add
}

func NewMessageStore() *MessageStore {
	return &MessageStore{idOf: map[PairKey]int{}, dsu: unionfind.New(0)}
}

func (st *MessageStore) pairID(p Pair) int {
	if id, ok := st.idOf[p.Key()]; ok {
		return id
	}
	id := len(st.pairs)
	st.idOf[p.Key()] = id
	st.pairs = append(st.pairs, p)
	st.dsu.Grow(id + 1)
	return id
}

// Add inserts one maximal message (a set of correlated pairs) and merges
// it with any overlapping messages already in the store. The memoized
// component view survives Adds that change nothing structurally — the
// common case once the message set has converged.
func (st *MessageStore) Add(msg []Pair) {
	if len(msg) == 0 {
		return
	}
	before := len(st.pairs)
	first := st.pairID(msg[0])
	changed := len(st.pairs) != before
	for _, p := range msg[1:] {
		if st.dsu.Union(first, st.pairID(p)) {
			changed = true
		}
	}
	if changed {
		st.cached = nil
	}
}

// Messages returns the current disjoint maximal messages, i.e. the
// connected components of the store, in deterministic order. The result
// is memoized until the next Add — the promotion fixpoint rescans the
// store many times between mutations — and must be treated as read-only
// by callers.
func (st *MessageStore) Messages() [][]Pair {
	if st.cached != nil {
		return st.cached
	}
	byRoot := map[int][]Pair{}
	var rootOrder []int
	for id, p := range st.pairs {
		r := st.dsu.Find(id)
		if _, ok := byRoot[r]; !ok {
			rootOrder = append(rootOrder, r)
		}
		byRoot[r] = append(byRoot[r], p)
	}
	out := make([][]Pair, 0, len(rootOrder))
	for _, r := range rootOrder {
		out = append(out, byRoot[r])
	}
	st.cached = out
	return out
}

// Size returns the number of distinct pairs currently carried by messages.
func (st *MessageStore) Size() int { return len(st.pairs) }

// ComputeMaximal is Algorithm 2: it derives the maximal messages of
// neighborhood entities under current evidence mPlus. For each unmatched
// candidate pair p it computes E(C, M+ ∪ {p}); two pairs are correlated
// when each appears in the other's conditioned output, and the connected
// components of the correlation graph are the maximal messages
// (Lemma 1 proves each component is maximal for well-behaved matchers).
//
// base must be E(C, M+) — the unconditioned output — so that already-
// matched pairs are excluded from probing. The number of matcher calls is
// returned for accounting.
func ComputeMaximal(m Matcher, entities []EntityID, mPlus, neg, base PairSet) (msgs [][]Pair, calls int) {
	if mm, ok := m.(MaximalMessenger); ok {
		return mm.MaximalMessages(entities, mPlus, neg, base)
	}
	filter, hasFilter := m.(ProbeFilter)
	var probes []Pair
	for _, p := range m.Candidates(entities) {
		if base.Has(p) || mPlus.Has(p) || neg.Has(p) {
			continue
		}
		if hasFilter && !filter.Probeable(p) {
			continue
		}
		probes = append(probes, p)
	}
	if len(probes) == 0 {
		return nil, 0
	}

	// outputs[i] = E(C, M+ ∪ {probes[i]})
	outputs := make([]PairSet, len(probes))
	for i, p := range probes {
		outputs[i] = m.Match(entities, mPlus.WithPair(p), neg)
		calls++
	}

	index := make(map[PairKey]int, len(probes))
	for i, p := range probes {
		index[p.Key()] = i
	}
	dsu := unionfind.New(len(probes))
	for i, p := range probes {
		for q := range outputs[i] {
			j, ok := index[q]
			if !ok || j <= i {
				continue
			}
			// Edge iff mutual entailment: q ∈ E(C, M+∪{p}) ∧ p ∈ E(C, M+∪{q}).
			if outputs[j].Has(p) {
				dsu.Union(i, j)
			}
		}
	}
	byRoot := map[int][]Pair{}
	var order []int
	for i, p := range probes {
		r := dsu.Find(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], p)
	}
	for _, r := range order {
		msgs = append(msgs, byRoot[r])
	}
	return msgs, calls
}
