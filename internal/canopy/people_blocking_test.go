package canopy

import (
	"testing"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// peopleCover builds the blocking cover and candidate pairs for the
// standard people-like corpus at the golden scale/seed.
func peopleCover(t *testing.T) (*bib.Dataset, []SimilarPair) {
	t.Helper()
	recs := datagen.MustGeneratePeople(datagen.PeopleLike(0.25, 42))
	d, err := bib.DatasetFromRecords("people-like", recs)
	if err != nil {
		t.Fatal(err)
	}
	cover := BuildCover(d, DefaultConfig())
	return d, CandidatePairs(d, cover)
}

// TestPeopleBlockingProperties pins the blocking-stage invariants the
// people domain's rules program depends on: candidate pairs are unique,
// ordered and positively similar, and — because the household-stable zip
// is the key's last token — the cover retains nearly every ground-truth
// pair despite the name-field noise.
func TestPeopleBlockingProperties(t *testing.T) {
	d, pairs := peopleCover(t)
	if len(pairs) == 0 {
		t.Fatal("people corpus produced no candidate pairs")
	}
	seen := map[core.Pair]bool{}
	for _, sp := range pairs {
		if sp.Level <= similarity.LevelNone {
			t.Fatalf("candidate %v admitted at level %d", sp.Pair, sp.Level)
		}
		if sp.Pair.A >= sp.Pair.B {
			t.Fatalf("candidate %v not strictly ordered", sp.Pair)
		}
		if seen[sp.Pair] {
			t.Fatalf("candidate %v emitted twice", sp.Pair)
		}
		seen[sp.Pair] = true
	}

	truth := d.TruePairs()
	if len(truth) == 0 {
		t.Fatal("people corpus carries no ground-truth pairs")
	}
	covered := 0
	for p := range truth {
		if seen[core.Pair{A: p[0], B: p[1]}] {
			covered++
		}
	}
	recall := float64(covered) / float64(len(truth))
	if recall < 0.90 {
		t.Errorf("blocking retains %.3f of %d true pairs, want >= 0.90", recall, len(truth))
	}
}

// TestPeopleBlockingDeterministic: two scratch builds over the same
// corpus emit the identical candidate set — the property every golden
// fixture sits on.
func TestPeopleBlockingDeterministic(t *testing.T) {
	_, first := peopleCover(t)
	_, again := peopleCover(t)
	if len(first) != len(again) {
		t.Fatalf("candidate counts diverge: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("candidate %d diverges: %+v vs %+v", i, first[i], again[i])
		}
	}
}
