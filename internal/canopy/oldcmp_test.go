package canopy

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// canopiesOld is the pre-refactor serial algorithm, kept verbatim to pin
// the refactor's output.
func canopiesOld(names []string, cfg Config) [][]core.EntityID {
	n := len(names)
	norm := make([]string, n)
	grams := make([]map[string]int, n)
	for i, name := range names {
		norm[i] = normalize(name)
		grams[i] = similarity.QGrams(norm[i], cfg.Q)
	}
	index := map[string][]int32{}
	for i := 0; i < n; i++ {
		for g := range grams[i] {
			index[g] = append(index[g], int32(i))
		}
	}
	inPool := make([]bool, n)
	for i := range inPool {
		inPool[i] = true
	}
	var canopies [][]core.EntityID
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for seed := 0; seed < n; seed++ {
		if !inPool[seed] {
			continue
		}
		var canopy []core.EntityID
		stamp := int32(seed)
		for g := range grams[seed] {
			for _, j := range index[g] {
				if seen[j] == stamp {
					continue
				}
				seen[j] = stamp
				s := jaccard(grams[seed], grams[j])
				if s >= cfg.Loose {
					canopy = append(canopy, j)
					if s >= cfg.Tight {
						inPool[j] = false
					}
				}
			}
		}
		inPool[seed] = false
		if len(canopy) == 0 {
			canopy = []core.EntityID{core.EntityID(seed)}
		}
		sort.Slice(canopy, func(a, b int) bool { return canopy[a] < canopy[b] })
		canopies = append(canopies, canopy)
	}
	return canopies
}

func TestRefactorMatchesOldAlgorithm(t *testing.T) {
	for _, preset := range []datagen.Config{
		datagen.HEPTHLike(0.25, 42),
		datagen.DBLPLike(0.25, 42),
	} {
		d := datagen.MustGenerate(preset)
		names := make([]string, d.NumRefs())
		for i := range d.Refs {
			names[i] = d.Refs[i].Name
		}
		want := canopiesOld(names, DefaultConfig())
		got := Canopies(names, DefaultConfig())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: refactored canopies differ from the old algorithm", preset.Name)
		}
	}
}
