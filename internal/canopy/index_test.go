package canopy

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/datagen"
)

// splitBatches cuts records into 1..maxBatches non-empty batches at
// rng-chosen boundaries, preserving order.
func splitBatches(rng *rand.Rand, recs []bib.Record, maxBatches int) [][]bib.Record {
	n := len(recs)
	k := 1 + rng.Intn(maxBatches)
	if k > n {
		k = n
	}
	cuts := map[int]bool{0: true}
	for len(cuts) < k {
		cuts[rng.Intn(n-1)+1] = true
	}
	var at []int
	for c := range cuts {
		at = append(at, c)
	}
	// map iteration order is random; sort boundaries ascending.
	for i := range at {
		for j := i + 1; j < len(at); j++ {
			if at[j] < at[i] {
				at[i], at[j] = at[j], at[i]
			}
		}
	}
	var out [][]bib.Record
	for i, lo := range at {
		hi := n
		if i+1 < len(at) {
			hi = at[i+1]
		}
		out = append(out, recs[lo:hi])
	}
	return out
}

// coversEqual compares two covers set-by-set (order and content).
func coversEqual(a, b *core.Cover) bool {
	return a.NumEntities == b.NumEntities && reflect.DeepEqual(a.Sets, b.Sets)
}

// TestIndexAddMatchesBuildCover is the delta-ingestion blocking property:
// for random arrival sequences (shuffled record order, random batch
// boundaries), the cover after every Index.Add is identical to rebuilding
// from scratch over the records ingested so far.
func TestIndexAddMatchesBuildCover(t *testing.T) {
	for _, preset := range []datagen.Config{
		datagen.HEPTHLike(0.25, 42),
		datagen.DBLPLike(0.25, 42),
	} {
		d := datagen.MustGenerate(preset)
		records := bib.ToRecords(d)
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s-seed%d", preset.Name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				recs := append([]bib.Record(nil), records...)
				rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
				batches := splitBatches(rng, recs, 5)

				ix, err := NewIndex(DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				var ingested []bib.Record
				for bi, batch := range batches {
					ingested = append(ingested, batch...)
					union, err := bib.DatasetFromRecords(preset.Name, ingested)
					if err != nil {
						t.Fatal(err)
					}
					got, delta, err := ix.Add(context.Background(), union)
					if err != nil {
						t.Fatal(err)
					}
					want := BuildCover(union, DefaultConfig())
					if !coversEqual(got, want) {
						t.Fatalf("batch %d: incremental cover differs from scratch rebuild over %d records",
							bi, len(ingested))
					}
					if len(delta.NewEntities) != len(batch) {
						t.Fatalf("batch %d: delta reports %d new entities, want %d",
							bi, len(delta.NewEntities), len(batch))
					}
					// Every changed id must be in range; unchanged sets must
					// really have an identical predecessor (checked on the
					// next Add via prevSets, here just bounds).
					for _, id := range delta.Changed {
						if id < 0 || int(id) >= got.Len() {
							t.Fatalf("batch %d: changed id %d out of range [0,%d)", bi, id, got.Len())
						}
					}
				}
				if ix.Len() != len(records) {
					t.Fatalf("index ingested %d records, want %d", ix.Len(), len(records))
				}
			})
		}
	}
}

// TestIndexEmitMatchesOldAlgorithm extends the oldcmp pinning to the
// delta index: after any arrival sequence, the canopies the index emits
// from its cached candidate lists must equal the verbatim pre-refactor
// serial algorithm on the union names.
func TestIndexEmitMatchesOldAlgorithm(t *testing.T) {
	for _, preset := range []datagen.Config{
		datagen.HEPTHLike(0.25, 42),
		datagen.DBLPLike(0.25, 42),
	} {
		d := datagen.MustGenerate(preset)
		records := bib.ToRecords(d)
		rng := rand.New(rand.NewSource(7))
		batches := splitBatches(rng, records, 4)

		ix, err := NewIndex(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var ingested []bib.Record
		for _, batch := range batches {
			ingested = append(ingested, batch...)
			union, err := bib.DatasetFromRecords(preset.Name, ingested)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := ix.Add(context.Background(), union); err != nil {
				t.Fatal(err)
			}
			names := make([]string, len(ingested))
			for i := range ingested {
				names[i] = ingested[i].Name
			}
			if got, want := ix.emit(), canopiesOld(names, DefaultConfig()); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: index canopies after %d records differ from the old serial algorithm",
					preset.Name, len(ingested))
			}
		}
	}
}

// TestIndexAddRejectsShrunkDataset pins the append-only contract.
func TestIndexAddRejectsShrunkDataset(t *testing.T) {
	recs := []bib.Record{
		{Name: "a smith", Group: 0, Gold: 0},
		{Name: "b jones", Group: 0, Gold: 1},
	}
	full, err := bib.DatasetFromRecords("t", recs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Add(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	short, err := bib.DatasetFromRecords("t", recs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Add(context.Background(), short); err == nil {
		t.Fatal("Add accepted a dataset with fewer records than already ingested")
	}
}

// TestNewIndexValidates pins configuration validation at construction.
func TestNewIndexValidates(t *testing.T) {
	if _, err := NewIndex(Config{Loose: -1, Tight: 0.9, Q: 2}); err == nil {
		t.Fatal("NewIndex accepted an invalid config")
	}
}

// FuzzIndexAdd feeds arbitrary name/group material through random batch
// splits and checks the incremental cover against the scratch rebuild —
// the nightly-fuzzed version of TestIndexAddMatchesBuildCover.
func FuzzIndexAdd(f *testing.F) {
	f.Add([]byte("a smith\x00b smyth\x00c jones\x00a smith\x00d s\x00bb jones"), uint16(0), int64(1))
	f.Add([]byte("x\x00y\x00z"), uint16(3), int64(9))
	f.Add([]byte("j doe\x00j d\x00jane doe\x00john doe\x00j doe"), uint16(2), int64(3))
	f.Fuzz(func(t *testing.T, raw []byte, groups uint16, seed int64) {
		recs := fuzzRecords(raw, groups)
		if len(recs) == 0 {
			t.Skip("no usable records")
		}
		rng := rand.New(rand.NewSource(seed))
		batches := splitBatches(rng, recs, 4)

		ix, err := NewIndex(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var ingested []bib.Record
		for bi, batch := range batches {
			ingested = append(ingested, batch...)
			union, err := bib.DatasetFromRecords("fuzz", ingested)
			if err != nil {
				t.Skip("records rejected by dataset synthesis")
			}
			got, _, err := ix.Add(context.Background(), union)
			if err != nil {
				t.Fatal(err)
			}
			if want := BuildCover(union, DefaultConfig()); !coversEqual(got, want) {
				t.Fatalf("batch %d: incremental cover diverges from scratch rebuild on %d fuzz records",
					bi, len(ingested))
			}
		}
	})
}

// fuzzRecords turns fuzz bytes into ingestible records: NUL-separated
// names (sanitized to printable ASCII), cyclic group assignment over
// groups+1 groups with every third record ungrouped.
func fuzzRecords(raw []byte, groups uint16) []bib.Record {
	const maxRecords, maxName = 48, 24
	var recs []bib.Record
	start := 0
	emit := func(tok []byte) {
		if len(recs) >= maxRecords {
			return
		}
		if len(tok) > maxName {
			tok = tok[:maxName]
		}
		name := make([]byte, 0, len(tok))
		for _, b := range tok {
			switch {
			case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
				name = append(name, b)
			case b == ' ', b == '.', b == '-':
				name = append(name, b)
			default:
				name = append(name, 'a'+b%26)
			}
		}
		if len(name) == 0 {
			return
		}
		g := int32(-1)
		if len(recs)%3 != 2 {
			g = int32(len(recs)) % (int32(groups) + 1)
		}
		recs = append(recs, bib.Record{Name: string(name), Group: g, Gold: -1})
	}
	for i, b := range raw {
		if b == 0 {
			emit(raw[start:i])
			start = i + 1
		}
	}
	emit(raw[start:])
	return recs
}
