package canopy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/similarity"
)

func TestCanopiesCoverEveryName(t *testing.T) {
	names := []string{
		"Vibhor Rastogi", "V. Rastogi", "Nilesh Dalvi", "N. Dalvi",
		"Minos Garofalakis", "Zzyzx Qwertyuiop",
	}
	sets := Canopies(names, DefaultConfig())
	covered := make([]bool, len(names))
	for _, s := range sets {
		for _, e := range s {
			covered[e] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Errorf("name %d (%q) not covered by any canopy", i, names[i])
		}
	}
}

func TestCanopiesGroupSimilarNames(t *testing.T) {
	names := []string{
		"Vibhor Rastogi", // 0
		"V. Rastogi",     // 1
		"Vibhor Rastogy", // 2 (typo)
		"Nilesh Dalvi",   // 3
	}
	sets := Canopies(names, DefaultConfig())
	share := func(a, b core.EntityID) bool {
		for _, s := range sets {
			hasA, hasB := false, false
			for _, e := range s {
				if e == a {
					hasA = true
				}
				if e == b {
					hasB = true
				}
			}
			if hasA && hasB {
				return true
			}
		}
		return false
	}
	if !share(0, 1) || !share(0, 2) {
		t.Error("similar names must share a canopy")
	}
	if share(0, 3) {
		t.Error("dissimilar names must not share a canopy")
	}
}

func TestCanopiesDeterministic(t *testing.T) {
	names := []string{"A. Kumar", "Anil Kumar", "Amit Kumar", "B. Lee", "Bin Lee"}
	a := Canopies(names, DefaultConfig())
	b := Canopies(names, DefaultConfig())
	if len(a) != len(b) {
		t.Fatalf("canopy counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("canopy %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("canopy %d differs at %d", i, j)
			}
		}
	}
}

func TestExpandBoundary(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 3) // 3 is a coauthor of 0
	b.AddEdge(1, 4)
	rel := b.Build()
	sets := [][]core.EntityID{{0, 1}, {2}}
	out := ExpandBoundary(sets, rel)
	if len(out[0]) != 4 { // {0,1} + boundary {3,4}
		t.Errorf("expanded set 0 = %v", out[0])
	}
	if len(out[1]) != 1 { // isolated entity: unchanged
		t.Errorf("expanded set 1 = %v", out[1])
	}
}

// TestBuildCoverIsTotal: on generated data the built cover must be a
// cover, and total w.r.t. the Coauthor relation (Definition 7).
func TestBuildCoverIsTotal(t *testing.T) {
	for _, preset := range []datagen.Config{
		datagen.HEPTHLike(0.2, 3),
		datagen.DBLPLike(0.2, 3),
	} {
		d := datagen.MustGenerate(preset)
		cover := BuildCover(d, DefaultConfig())
		if !cover.IsCover() {
			t.Fatalf("%s: not a cover", preset.Name)
		}
		if !cover.IsTotal(d.Coauthor()) {
			t.Fatalf("%s: cover not total w.r.t. Coauthor; uncovered edge %v",
				preset.Name, cover.FirstUncovered(d.Coauthor()))
		}
	}
}

// TestBlockingIsTotalOverSimilar: canopies form a total cover of the
// Similar relation — every pair of references with non-zero name level
// shares a canopy. (Blocking recall; §4 calls this "blocking is a total
// covering over the Similar relation".)
func TestBlockingIsTotalOverSimilar(t *testing.T) {
	d := datagen.MustGenerate(datagen.DBLPLike(0.15, 9))
	names := make([]string, d.NumRefs())
	for i := range d.Refs {
		names[i] = d.Refs[i].Name
	}
	sets := Canopies(names, DefaultConfig())
	inCanopy := make([]map[int]bool, len(names))
	for i := range inCanopy {
		inCanopy[i] = map[int]bool{}
	}
	for ci, s := range sets {
		for _, e := range s {
			inCanopy[e][ci] = true
		}
	}
	share := func(a, b int) bool {
		for c := range inCanopy[a] {
			if inCanopy[b][c] {
				return true
			}
		}
		return false
	}
	missed, total := 0, 0
	missedTrue, totalTrue := 0, 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if similarity.StringLevel(names[i], names[j]) == similarity.LevelNone {
				continue
			}
			total++
			isTrue := d.Refs[i].True == d.Refs[j].True
			if isTrue {
				totalTrue++
			}
			if !share(i, j) {
				missed++
				if isTrue {
					missedTrue++
				}
			}
		}
	}
	if total == 0 || totalTrue == 0 {
		t.Fatal("no similar pairs generated; dataset too sparse for the test")
	}
	// Practical canopies may split a small tail of garbage similar pairs,
	// but must essentially never block apart a true match.
	if frac := float64(missed) / float64(total); frac > 0.05 {
		t.Errorf("canopies miss %d/%d (%.3f) similar pairs", missed, total, frac)
	}
	if frac := float64(missedTrue) / float64(totalTrue); frac > 0.01 {
		t.Errorf("canopies miss %d/%d (%.3f) TRUE similar pairs", missedTrue, totalTrue, frac)
	}
}

// TestNeighborhoodRegimes: the HEPTH-like corpus must produce larger
// average neighborhoods than the DBLP-like corpus (the §6.1 observation
// that drives all the running-time differences).
func TestNeighborhoodRegimes(t *testing.T) {
	hep := datagen.MustGenerate(datagen.HEPTHLike(0.3, 5))
	dbl := datagen.MustGenerate(datagen.DBLPLike(0.3, 5))
	hepStats := BuildCover(hep, DefaultConfig()).ComputeStats()
	dblStats := BuildCover(dbl, DefaultConfig()).ComputeStats()
	if hepStats.MeanSize <= dblStats.MeanSize {
		t.Errorf("HEPTH mean neighborhood %.1f must exceed DBLP %.1f",
			hepStats.MeanSize, dblStats.MeanSize)
	}
}

func TestCandidatePairs(t *testing.T) {
	d := datagen.MustGenerate(datagen.DBLPLike(0.15, 4))
	cover := BuildCover(d, DefaultConfig())
	pairs := CandidatePairs(d, cover)
	if len(pairs) == 0 {
		t.Fatal("no candidate pairs")
	}
	seen := core.NewPairSet()
	for _, sp := range pairs {
		if !sp.Pair.Valid() {
			t.Fatalf("invalid pair %v", sp.Pair)
		}
		if sp.Level == similarity.LevelNone {
			t.Fatalf("pair %v has level none", sp.Pair)
		}
		if seen.Has(sp.Pair) {
			t.Fatalf("duplicate pair %v", sp.Pair)
		}
		seen.Add(sp.Pair)
	}
	// Candidate pairs must cover a decent share of true pairs (blocking
	// recall at the pair level).
	truth := d.TruePairs()
	hit := 0
	for p := range truth {
		if seen.Has(core.MakePair(p[0], p[1])) {
			hit++
		}
	}
	if frac := float64(hit) / float64(len(truth)); frac < 0.7 {
		t.Errorf("candidate pairs cover only %.2f of true pairs", frac)
	}
}

func TestJaccardHelper(t *testing.T) {
	a := map[string]int{"ab": 1, "bc": 1}
	b := map[string]int{"bc": 1, "cd": 1}
	if got := jaccard(a, b); got != 1.0/3.0 {
		t.Errorf("jaccard = %v, want 1/3", got)
	}
	if jaccard(nil, nil) != 1 {
		t.Error("jaccard(∅,∅) must be 1")
	}
	if jaccard(a, nil) != 0 {
		t.Error("jaccard(a,∅) must be 0")
	}
}

func BenchmarkBuildCoverHEPTH(b *testing.B) {
	d := datagen.MustGenerate(datagen.HEPTHLike(0.5, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCover(d, DefaultConfig())
	}
}
