package canopy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/similarity"
)

// Index is the mutable blocking state of the incremental ingestion path:
// the q-gram structures of BuildCover — normalized names, gram multisets,
// the inverted gram index — plus a cached loose-candidate list per
// record. New records are absorbed with Add, which only scores the
// arriving suffix against the index (the candidate list of a record can
// only *grow* under ingestion, because postings are append-only), and
// then re-emits canopies and the total cover from the cached lists.
//
// The cover Add produces is byte-identical to rebuilding from scratch
// with BuildCover on the union dataset — the property the differential
// harness and FuzzIndexAdd pin — so an incremental pipeline and a cold
// one agree on the blocking stage exactly.
//
// Index methods serialize internally, so concurrent Adds do not corrupt
// state — but the SECOND of two concurrent Adds still observes the
// first one's ingestion. Callers advancing a shared stream from a known
// base should use AddFrom, which detects that atomically.
type Index struct {
	cfg Config

	mu       sync.Mutex
	n        int                // records ingested so far
	grams    []map[string]int   // q-gram multiset per record
	postings map[string][]int32 // gram -> ids containing it, ascending
	cands    [][]scored         // loose candidates per record, ascending id

	prevSets map[string]bool   // content keys of the previous cover's sets
	prevByID [][]core.EntityID // previous cover's sets by id (aliases, read-only)
	cover    *core.Cover       // cover built by the last Add
}

// ErrStale reports that AddFrom found the index already advanced past
// the caller's base — another ingestion got there first (a forked or
// concurrent stream). The caller's view is outdated; rebuild from its
// own records.
var ErrStale = errors.New("canopy: index advanced past the caller's base")

// Delta reports what one Add changed: the appended entities and which
// neighborhoods of the new cover cannot be assumed unchanged.
type Delta struct {
	// NewEntities are the record ids ingested by this Add (the dense
	// suffix [oldLen, newLen) of the union dataset).
	NewEntities []core.EntityID
	// Changed are the ids of cover sets with no content-identical
	// counterpart in the previous cover: brand-new neighborhoods plus
	// every neighborhood whose membership shifted. Together with the
	// entity- and candidate-level Affected expansion these are the
	// neighborhoods a warm-started run must re-activate.
	Changed []int32
	// Additive reports whether the new cover only GREW in place: set ids
	// are stable under ingestion (old seeds emit their canopies in the
	// same order, new ones append), and Additive is true when every
	// previous set is a subset of the set with the same id. That is the
	// warm-start safety condition — grown neighborhoods can only grow a
	// monotone matcher's output, so prior matches remain valid committed
	// evidence. When false (the total-cover patching moved a boundary
	// member elsewhere, shrinking some neighborhood relative to its
	// predecessor), prior evidence may be unreproducible from scratch and
	// the caller must fall back to a full re-run.
	Additive bool
	// Regressed lists the set ids violating Additive (empty when
	// Additive) — diagnostics for the forced re-run path.
	Regressed []int32
}

// NewIndex returns an empty delta index. The configuration is validated
// once here; Add never re-validates.
func NewIndex(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Index{cfg: cfg, postings: map[string][]int32{}, prevSets: map[string]bool{}}, nil
}

// Config returns the blocking configuration the index was built with.
// Covers are only comparable between identically configured indexes.
func (ix *Index) Config() Config { return ix.cfg }

// Len returns the number of records ingested so far.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.n
}

// Cover returns the cover built by the last Add (nil before the first).
func (ix *Index) Cover() *core.Cover {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.cover
}

// Add ingests the new suffix of the union dataset d — the records
// d.Refs[ix.Len():] — into the q-gram structures, rebuilds the total
// cover over all of d, and reports the delta. The caller owns dataset
// synthesis: d must extend the previously ingested records in place
// (names of records [0, ix.Len()) unchanged), which DatasetFromRecords
// guarantees for appended record batches.
//
// Cost is proportional to the delta: each new record is scored once
// against the gram index (exactly one seed probe, as in Canopies), old
// records are never re-scored, and only canopy emission plus cover
// patching — bookkeeping over cached candidate lists — runs over the
// full corpus. A canceled ctx aborts between phases with ctx.Err().
func (ix *Index) Add(ctx context.Context, d *bib.Dataset) (*core.Cover, *Delta, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.add(ctx, d)
}

// AddFrom is Add for shared streams: it atomically verifies the index
// still sits at the caller's base record count before ingesting, and
// returns ErrStale if another Add advanced it first. This closes the
// check-then-act gap of probing Len before Add from concurrent or
// forked callers.
func (ix *Index) AddFrom(ctx context.Context, d *bib.Dataset, base int) (*core.Cover, *Delta, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.n != base {
		return nil, nil, fmt.Errorf("%w (index at %d, caller at %d)", ErrStale, ix.n, base)
	}
	return ix.add(ctx, d)
}

func (ix *Index) add(ctx context.Context, d *bib.Dataset) (*core.Cover, *Delta, error) {
	n := d.NumRefs()
	if n < ix.n {
		return nil, nil, fmt.Errorf("canopy: index holds %d records but dataset has %d (records must only be appended)", ix.n, n)
	}
	if n == ix.n && ix.cover != nil {
		// Nothing arrived: the cover is unchanged, which is trivially
		// additive.
		return ix.cover, &Delta{Additive: true}, nil
	}
	delta := &Delta{NewEntities: make([]core.EntityID, 0, n-ix.n)}

	// Phase 1 — score the arriving suffix. Inserting a record's grams
	// into the postings *before* probing makes the record its own
	// candidate (jaccard 1 ≥ Loose), exactly as the batch scorer's
	// self-probe does, and lets later records of the same batch see
	// earlier ones.
	seen := map[int32]bool{}
	for id := ix.n; id < n; id++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		delta.NewEntities = append(delta.NewEntities, core.EntityID(id))
		g := similarity.QGrams(normalize(d.Refs[id].Name), ix.cfg.Q)
		ix.grams = append(ix.grams, g)
		ix.cands = append(ix.cands, nil)
		for gram := range g {
			ix.postings[gram] = append(ix.postings[gram], int32(id))
		}
		clear(seen)
		var own []scored
		for gram := range g {
			for _, j := range ix.postings[gram] {
				if seen[j] {
					continue
				}
				seen[j] = true
				if s := jaccard(g, ix.grams[j]); s >= ix.cfg.Loose {
					own = append(own, scored{id: j, sim: s})
					if int(j) != id {
						// The candidate relation is symmetric and new ids
						// exceed all previous ones, so appending keeps
						// cands[j] in ascending id order.
						ix.cands[j] = append(ix.cands[j], scored{id: core.EntityID(id), sim: s})
					}
				}
			}
		}
		sort.Slice(own, func(a, b int) bool { return own[a].id < own[b].id })
		ix.cands[id] = own
	}
	ix.n = n

	// Phase 2 — re-emit canopies over the full corpus from the cached
	// candidate lists: the serial emission of CanopiesContext verbatim,
	// with the scoring already done.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sets := ix.emit()

	// Phase 3 — total-cover construction, identical to BuildCover:
	// totality patching on the append-stable canopies first, aligned
	// context second (see BuildCoverContext on why this order keeps the
	// cover additive under ingestion).
	if ix.cfg.FullBoundary {
		sets = ExpandBoundary(sets, d.Coauthor())
	} else {
		canopies := sets
		sets = GreedyTotalCover(canopies, d.Coauthor())
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		sets = alignedExpandInto(d, canopies, sets, ix.cfg.MaxAligned)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ix.cover = core.NewCover(n, sets)

	// Phase 4 — diff against the previous cover, by content (Changed)
	// and by id (Additive). Set ids are stable under ingestion, so the
	// id-wise subset test detects neighborhoods that SHRANK relative to
	// their predecessor — the case that invalidates warm starts.
	next := make(map[string]bool, len(ix.cover.Sets))
	delta.Additive = true
	for i, set := range ix.cover.Sets {
		key := setKey(set)
		next[key] = true
		if !ix.prevSets[key] {
			delta.Changed = append(delta.Changed, int32(i))
		}
		if i < len(ix.prevByID) && !subsetOf(ix.prevByID[i], set) {
			delta.Additive = false
			delta.Regressed = append(delta.Regressed, int32(i))
		}
	}
	ix.prevSets = next
	ix.prevByID = ix.cover.Sets
	return ix.cover, delta, nil
}

// subsetOf reports a ⊆ b for ascending-sorted entity slices.
func subsetOf(a, b []core.EntityID) bool {
	j := 0
	for _, e := range a {
		for j < len(b) && b[j] < e {
			j++
		}
		if j >= len(b) || b[j] != e {
			return false
		}
		j++
	}
	return true
}

// emit runs the canopy emission loop of CanopiesContext over the cached
// candidate lists (already loose-filtered and id-sorted).
func (ix *Index) emit() [][]core.EntityID {
	inPool := make([]bool, ix.n)
	for i := range inPool {
		inPool[i] = true
	}
	var canopies [][]core.EntityID
	for seed := 0; seed < ix.n; seed++ {
		if !inPool[seed] {
			continue
		}
		kept := ix.cands[seed]
		if len(kept) == 0 {
			kept = []scored{{id: core.EntityID(seed), sim: 1}}
		}
		if ix.cfg.MaxNeighborhood > 0 && len(kept) > ix.cfg.MaxNeighborhood {
			kept = capCanopy(kept, core.EntityID(seed), ix.cfg.MaxNeighborhood)
		}
		canopy := make([]core.EntityID, len(kept))
		for i, c := range kept {
			canopy[i] = c.id
			if c.sim >= ix.cfg.Tight {
				inPool[c.id] = false
			}
		}
		inPool[seed] = false
		canopies = append(canopies, canopy)
	}
	return canopies
}

// setKey renders a sorted entity slice as a map key for content diffing.
func setKey(set []core.EntityID) string {
	b := make([]byte, 0, len(set)*4)
	for _, e := range set {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}
