package canopy

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/core"
)

// Index serialization — the "postings blob" of the storage layer.
//
// A serving process that keeps its state in a disk store saves the
// delta index alongside the run snapshot; on restart, LoadIndex
// restores the full blocking state — postings, gram multisets, cached
// candidate lists, and the previous cover — so ingestion resumes
// incrementally without re-scoring the corpus against the q-gram index
// (the expensive half of blocking). The format is gob over an exported
// mirror struct, versioned by a leading magic string; it is a cache, so
// a failed load is recoverable by replaying records through a fresh
// index.

const indexBlobMagic = "CEMP1\n"

// indexWire mirrors Index with exported fields for gob.
type indexWire struct {
	Cfg      Config
	N        int
	Grams    []map[string]int
	Postings map[string][]int32
	Cands    [][]scoredWire
	PrevSets map[string]bool
	Sets     [][]core.EntityID // the last cover's sets; nil before the first Add
	Entities int               // the last cover's entity universe
	HasCover bool
}

type scoredWire struct {
	ID  core.EntityID
	Sim float64
}

// Save serializes the index's full blocking state.
func (ix *Index) Save() ([]byte, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	w := indexWire{
		Cfg:      ix.cfg,
		N:        ix.n,
		Grams:    ix.grams,
		Postings: ix.postings,
		PrevSets: ix.prevSets,
	}
	w.Cands = make([][]scoredWire, len(ix.cands))
	for i, cs := range ix.cands {
		ws := make([]scoredWire, len(cs))
		for j, c := range cs {
			ws[j] = scoredWire{ID: c.id, Sim: c.sim}
		}
		w.Cands[i] = ws
	}
	if ix.cover != nil {
		w.HasCover = true
		w.Sets = ix.cover.Sets
		w.Entities = ix.cover.NumEntities
	}
	var buf bytes.Buffer
	buf.WriteString(indexBlobMagic)
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("canopy: encoding index: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadIndex restores an index saved with Save. The restored index is
// fully equivalent to the one that was saved: further Adds produce
// byte-identical covers and deltas.
func LoadIndex(data []byte) (*Index, error) {
	if len(data) < len(indexBlobMagic) || string(data[:len(indexBlobMagic)]) != indexBlobMagic {
		return nil, fmt.Errorf("canopy: index blob lacks the %q header", indexBlobMagic[:len(indexBlobMagic)-1])
	}
	var w indexWire
	if err := gob.NewDecoder(bytes.NewReader(data[len(indexBlobMagic):])).Decode(&w); err != nil {
		return nil, fmt.Errorf("canopy: decoding index: %w", err)
	}
	ix, err := NewIndex(w.Cfg)
	if err != nil {
		return nil, fmt.Errorf("canopy: index blob config: %w", err)
	}
	if w.N != len(w.Grams) || w.N != len(w.Cands) {
		return nil, fmt.Errorf("canopy: index blob inconsistent: %d records, %d gram sets, %d candidate lists",
			w.N, len(w.Grams), len(w.Cands))
	}
	ix.n = w.N
	ix.grams = w.Grams
	if w.Postings != nil {
		ix.postings = w.Postings
	}
	if w.PrevSets != nil {
		ix.prevSets = w.PrevSets
	}
	ix.cands = make([][]scored, len(w.Cands))
	for i, ws := range w.Cands {
		cs := make([]scored, len(ws))
		for j, c := range ws {
			cs[j] = scored{id: c.ID, sim: c.Sim}
		}
		ix.cands[i] = cs
	}
	if w.HasCover {
		if w.Entities != w.N {
			return nil, fmt.Errorf("canopy: index blob cover spans %d entities over %d records", w.Entities, w.N)
		}
		ix.cover = core.NewCover(w.Entities, w.Sets)
		ix.prevByID = ix.cover.Sets
	}
	return ix, nil
}
