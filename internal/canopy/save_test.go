package canopy

import (
	"context"
	"testing"

	"repro/internal/bib"
	"repro/internal/datagen"
)

// TestIndexSaveLoadRoundTrip pins the postings-blob contract: a loaded
// index is fully equivalent to the saved one — identical cover now, and
// identical covers and deltas for every further Add.
func TestIndexSaveLoadRoundTrip(t *testing.T) {
	d := datagen.MustGenerate(datagen.HEPTHLike(0.25, 42))
	records := bib.ToRecords(d)
	half := len(records) / 2

	ix, err := NewIndex(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	firstHalf, err := bib.DatasetFromRecords("rt", records[:half])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Add(ctx, firstHalf); err != nil {
		t.Fatal(err)
	}

	blob, err := ix.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() || loaded.Config() != ix.Config() {
		t.Fatalf("loaded index: %d records / %+v, want %d / %+v",
			loaded.Len(), loaded.Config(), ix.Len(), ix.Config())
	}
	if !coversEqual(loaded.Cover(), ix.Cover()) {
		t.Fatal("loaded cover differs from the saved one")
	}

	// Continue both with the remaining records: covers AND deltas agree.
	union, err := bib.DatasetFromRecords("rt", records)
	if err != nil {
		t.Fatal(err)
	}
	origCover, origDelta, err := ix.Add(ctx, union)
	if err != nil {
		t.Fatal(err)
	}
	loadCover, loadDelta, err := loaded.Add(ctx, union)
	if err != nil {
		t.Fatal(err)
	}
	if !coversEqual(origCover, loadCover) {
		t.Fatal("covers diverge after continuing a loaded index")
	}
	if origDelta.Additive != loadDelta.Additive ||
		len(origDelta.Changed) != len(loadDelta.Changed) ||
		len(origDelta.NewEntities) != len(loadDelta.NewEntities) {
		t.Fatalf("deltas diverge: %+v vs %+v", origDelta, loadDelta)
	}
}

// TestLoadIndexRejectsGarbage pins the failure modes: wrong magic,
// truncated gob, inconsistent payload.
func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex([]byte("not a postings blob")); err == nil {
		t.Fatal("LoadIndex accepted garbage")
	}
	if _, err := LoadIndex([]byte(indexBlobMagic + "trailing junk")); err == nil {
		t.Fatal("LoadIndex accepted a corrupt gob body")
	}
	ix, err := NewIndex(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.Save()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(blob[:len(blob)-4]); err == nil {
		t.Fatal("LoadIndex accepted a truncated blob")
	}
}
