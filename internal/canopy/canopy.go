// Package canopy builds covers (§4 of the paper): it implements the
// Canopies algorithm of McCallum, Nigam & Ungar (reference [13]) over a
// cheap q-gram similarity with an inverted index, and then turns the
// canopies into a *total cover* (Definition 7) by expanding every
// neighborhood with its boundary w.r.t. the Coauthor relation — exactly
// the construction §4 describes ("we construct a total cover by first
// constructing a total cover over Similar using Canopies, and then taking
// the boundary of each neighborhood with respect to other relations").
package canopy

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/similarity"
)

// Config controls canopy construction.
type Config struct {
	// Loose is the cheap-similarity threshold for joining a canopy
	// (T2 in McCallum et al.; loose < tight).
	Loose float64
	// Tight is the threshold beyond which a point is considered well
	// covered and removed from the seed pool (T1).
	Tight float64
	// Q is the q-gram size of the cheap similarity.
	Q int
	// MaxAligned bounds how much relational context each neighborhood
	// absorbs: for every name-similar pair inside a canopy core, up to
	// MaxAligned *aligned coauthor pairs* (the (c1, c2) combinations that
	// ground the MLN's coauthor rule) are pulled into the neighborhood.
	// This is the paper's "sizes of neighborhoods are bounded" regime:
	// with a small cap, a collective clique of correlated pairs is
	// fragmented across the neighborhoods of its members — exactly the
	// Figure 2 situation that simple and maximal messages reassemble.
	// Ignored when FullBoundary is set.
	MaxAligned int
	// FullBoundary switches total-cover construction to full boundary
	// expansion: every neighborhood absorbs all relation neighbors of its
	// members, making essentially all relational evidence local. Kept for
	// ablation: it trades much larger neighborhoods (and a much more
	// expensive matcher) for less message traffic.
	FullBoundary bool
	// MaxNeighborhood, when > 0, bounds the size of every canopy core:
	// a canopy keeps its seed plus the MaxNeighborhood-1 most similar
	// members (ties broken by ascending id). Records dropped by the cap
	// stay in the seed pool, so they still seed canopies of their own and
	// the result remains a cover. This is the paper's "sizes of
	// neighborhoods are bounded" knob at the blocking stage; the later
	// relational expansion (MaxAligned, totality patching) may still grow
	// neighborhoods past the cap by a bounded amount.
	MaxNeighborhood int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Loose <= 0 || c.Loose > 1:
		return fmt.Errorf("canopy: Loose = %v out of (0,1]", c.Loose)
	case c.Tight < c.Loose || c.Tight > 1:
		return fmt.Errorf("canopy: Tight = %v out of [Loose,1]", c.Tight)
	case c.Q <= 0:
		return fmt.Errorf("canopy: Q = %d, want > 0", c.Q)
	case c.MaxAligned < 0:
		return fmt.Errorf("canopy: negative MaxAligned")
	case c.MaxNeighborhood < 0:
		return fmt.Errorf("canopy: negative MaxNeighborhood")
	case c.MaxNeighborhood > 0 && c.MaxNeighborhood < 2:
		return fmt.Errorf("canopy: MaxNeighborhood = %d, want 0 (unbounded) or >= 2", c.MaxNeighborhood)
	}
	return nil
}

// DefaultConfig returns thresholds tuned so that (essentially) every pair
// with a non-zero discretized name-similarity level lands in a shared
// canopy: 2-grams are robust to single-character typos and to first-name
// abbreviation, and the loose threshold is low enough that true-match
// pairs are practically never blocked apart (verified in the tests).
func DefaultConfig() Config {
	return Config{Loose: 0.42, Tight: 0.85, Q: 2, MaxAligned: 1}
}

// normalize renders a reference name into canonical "first last" form so
// that punctuation and case do not affect gram overlap.
func normalize(name string) string {
	return similarity.ParseName(name).String()
}

// Canopies clusters the given names into (possibly overlapping) canopies
// and returns each canopy as a list of indices into names. Every name is
// in at least one canopy. Seeds are processed in ascending index order,
// making the construction deterministic.
func Canopies(names []string, cfg Config) [][]core.EntityID {
	sets, err := CanopiesContext(context.Background(), names, cfg, 1)
	if err != nil {
		// Unreachable: a background context never cancels and serial
		// construction has no other failure mode.
		panic(err)
	}
	return sets
}

// scored is one canopy candidate of a seed: a record id with its cheap
// q-gram similarity to the seed.
type scored struct {
	id  core.EntityID
	sim float64
}

// batchPerShard is how many seeds each shard scores per parallel round.
// Seeds removed from the pool by an earlier seed of the same round are
// scored speculatively and discarded, so the batch bounds wasted work.
const batchPerShard = 32

// CanopiesContext is Canopies with context cancellation and sharded
// execution: seed scoring — the expensive phase, one q-gram index probe
// plus a Jaccard per candidate — runs on a pool of `shards` workers
// (shards <= 0 means GOMAXPROCS), while canopy emission stays serial in
// ascending seed order. A seed's candidate list depends only on the
// immutable gram index, never on the evolving seed pool, so the output is
// byte-identical for every shard count, including 1. A canceled context
// aborts between rounds with ctx.Err().
//
// Each worker keeps a private candidate-dedupe stamp array of n int32s,
// so working memory is O(shards·n) on top of the gram index; on very
// large corpora, bound shards accordingly rather than defaulting to one
// per core.
func CanopiesContext(ctx context.Context, names []string, cfg Config, shards int) ([][]core.EntityID, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := len(names)
	if max := (n + batchPerShard - 1) / batchPerShard; shards > max && max > 0 {
		shards = max
	}
	norm := make([]string, n)
	grams := make([]map[string]int, n)
	if err := eachShard(ctx, n, shards, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			norm[i] = normalize(names[i])
			grams[i] = similarity.QGrams(norm[i], cfg.Q)
		}
	}); err != nil {
		return nil, err
	}
	// Inverted index: gram -> ids containing it (ids ascending by
	// construction).
	index := map[string][]int32{}
	for i := 0; i < n; i++ {
		for g := range grams[i] {
			index[g] = append(index[g], int32(i))
		}
	}
	// score collects a seed's candidates — everyone sharing at least one
	// gram, kept when Jaccard >= Loose — using a per-worker dedupe stamp.
	score := func(seed int, seen []int32) []scored {
		var out []scored
		stamp := int32(seed)
		for g := range grams[seed] {
			for _, j := range index[g] {
				if seen[j] == stamp {
					continue
				}
				seen[j] = stamp
				if s := jaccard(grams[seed], grams[j]); s >= cfg.Loose {
					out = append(out, scored{id: j, sim: s})
				}
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
		return out
	}
	stamps := make([][]int32, shards)
	for w := range stamps {
		stamps[w] = make([]int32, n)
		for i := range stamps[w] {
			stamps[w][i] = -1
		}
	}
	inPool := make([]bool, n)
	for i := range inPool {
		inPool[i] = true
	}
	var canopies [][]core.EntityID
	for next := 0; next < n; {
		// Gather the next round of in-pool seeds.
		batch := make([]int, 0, shards*batchPerShard)
		for next < n && len(batch) < shards*batchPerShard {
			if inPool[next] {
				batch = append(batch, next)
			}
			next++
		}
		if len(batch) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Parallel phase: score every seed of the round.
		cands := make([][]scored, len(batch))
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for bi := w; bi < len(batch); bi += shards {
					cands[bi] = score(batch[bi], stamps[w])
				}
			}(w)
		}
		wg.Wait()
		// Serial phase: emit canopies in seed order, honoring removals
		// made by earlier seeds of the same round.
		for bi, seed := range batch {
			if !inPool[seed] {
				continue
			}
			kept := cands[bi]
			if len(kept) == 0 {
				kept = []scored{{id: core.EntityID(seed), sim: 1}}
			}
			if cfg.MaxNeighborhood > 0 && len(kept) > cfg.MaxNeighborhood {
				kept = capCanopy(kept, core.EntityID(seed), cfg.MaxNeighborhood)
			}
			canopy := make([]core.EntityID, len(kept))
			for i, c := range kept {
				canopy[i] = c.id
				if c.sim >= cfg.Tight {
					inPool[c.id] = false
				}
			}
			inPool[seed] = false
			canopies = append(canopies, canopy)
		}
	}
	return canopies, nil
}

// capCanopy keeps the seed plus the k-1 most similar candidates (ties by
// ascending id), returned in ascending id order. Dropped candidates are
// NOT removed from the seed pool by the caller, preserving the cover
// property.
func capCanopy(cands []scored, seed core.EntityID, k int) []scored {
	byRank := append([]scored(nil), cands...)
	sort.Slice(byRank, func(a, b int) bool {
		if byRank[a].id == seed || byRank[b].id == seed {
			return byRank[a].id == seed
		}
		if byRank[a].sim != byRank[b].sim {
			return byRank[a].sim > byRank[b].sim
		}
		return byRank[a].id < byRank[b].id
	})
	byRank = byRank[:k]
	sort.Slice(byRank, func(a, b int) bool { return byRank[a].id < byRank[b].id })
	return byRank
}

// eachShard splits [0, n) into `shards` contiguous blocks and runs fn on
// each concurrently, unless ctx is already canceled.
func eachShard(ctx context.Context, n, shards int, fn func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		fn(0, n)
		return nil
	}
	var wg sync.WaitGroup
	per := (n + shards - 1) / shards
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// jaccard computes set Jaccard over two gram maps.
func jaccard(a, b map[string]int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for g := range a {
		if _, ok := b[g]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// ExpandBoundary grows every neighborhood by its boundary w.r.t. rel:
// all entities sharing a relation edge with a member join the
// neighborhood. The result is a total cover w.r.t. rel (§4).
func ExpandBoundary(sets [][]core.EntityID, rel *graph.Graph) [][]core.EntityID {
	out := make([][]core.EntityID, len(sets))
	for i, set := range sets {
		member := map[core.EntityID]bool{}
		for _, e := range set {
			member[e] = true
		}
		expanded := append([]core.EntityID(nil), set...)
		for _, e := range set {
			for _, u := range rel.Neighbors(e) {
				if !member[u] {
					member[u] = true
					expanded = append(expanded, u)
				}
			}
		}
		sort.Slice(expanded, func(a, b int) bool { return expanded[a] < expanded[b] })
		out[i] = expanded
	}
	return out
}

// GreedyTotalCover turns canopies into a total cover (Definition 7) with
// minimal growth: every relation edge not yet inside any single
// neighborhood is patched by adding its missing endpoint to the
// lowest-id neighborhood containing the other endpoint. The result
// covers every relation tuple exactly as Definition 7 requires, while
// neighborhoods stay close to canopy size — which is what fragments
// relational context across neighborhoods and gives message passing its
// role (cf. Figure 2 of the paper, where C1 holds a- and b-references
// but no c-references).
//
// Placement is id-based, not size-based, deliberately: canopy emission
// gives a record's neighborhoods stable ids under ingestion (old seeds
// re-emit in order, new canopies append), so picking the lowest
// containing id keeps patch placement — and with it the whole cover —
// overwhelmingly stable when records are only appended. That stability
// is what lets the delta Index report most ingestion batches as
// additive and the incremental pipeline warm-start instead of re-running
// cold; a size-based rule re-routes patches every time any neighborhood
// grows.
func GreedyTotalCover(sets [][]core.EntityID, rel *graph.Graph) [][]core.EntityID {
	n := rel.N()
	for _, set := range sets {
		for _, e := range set {
			if int(e) >= n {
				n = int(e) + 1
			}
		}
	}
	out := make([][]core.EntityID, len(sets))
	member := make([]map[core.EntityID]bool, len(sets))
	containing := make([][]int32, n)
	for i, set := range sets {
		out[i] = append([]core.EntityID(nil), set...)
		member[i] = make(map[core.EntityID]bool, len(set))
		for _, e := range set {
			member[i][e] = true
			containing[e] = append(containing[e], int32(i))
		}
	}
	share := func(u, v core.EntityID) bool {
		cu, cv := containing[u], containing[v]
		if len(cv) < len(cu) {
			cu, u, v = cv, v, u
		}
		for _, s := range cu {
			if member[s][v] {
				return true
			}
		}
		return false
	}
	// Membership lists start ascending and gain only patched (arbitrary)
	// ids at the tail, so the lowest id is the head unless a patch
	// undercut it — track the minimum explicitly.
	lowestWith := func(e core.EntityID) int32 {
		best := int32(-1)
		for _, s := range containing[e] {
			if best < 0 || s < best {
				best = s
			}
		}
		return best
	}
	add := func(s int32, e core.EntityID) {
		out[s] = append(out[s], e)
		member[s][e] = true
		containing[e] = append(containing[e], s)
	}
	for u := int32(0); u < int32(rel.N()); u++ {
		for _, v := range rel.Neighbors(u) {
			if v <= u || share(u, v) {
				continue
			}
			su, sv := lowestWith(u), lowestWith(v)
			switch {
			case su < 0 && sv < 0:
				// Neither endpoint covered (cannot happen for covers).
			case sv < 0 || (su >= 0 && su <= sv):
				add(su, v)
			default:
				add(sv, u)
			}
		}
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	return out
}

// AlignedExpand grows each canopy with bounded relational context: for
// every name-similar pair (a, b) inside the canopy, the endpoints of up
// to maxAligned aligned coauthor pairs — (c1, c2) with c1 ∈ N(a),
// c2 ∈ N(b) and similar names — are added.
//
// When more than maxAligned pairs qualify, the kept ones are those with
// the EARLIEST-ingested endpoints: candidates are ranked by highest
// endpoint id ascending (then lowest endpoint, then c1). Because
// appended records always carry higher ids than everything before them,
// a pair involving a new record can never outrank a previously chosen
// all-old pair — the selection, and with it the whole cover, is stable
// under record ingestion (the property the incremental Index relies
// on). The result is NOT necessarily total; run GreedyTotalCover first.
func AlignedExpand(d *bib.Dataset, sets [][]core.EntityID, maxAligned int) [][]core.EntityID {
	return alignedExpandInto(d, sets, sets, maxAligned)
}

// alignedExpandInto is AlignedExpand with the pair source decoupled from
// the expansion target: the name-similar (a, b) pairs driving the
// expansion are enumerated over pairSets[i], while members are added to
// (a copy of) sets[i]. BuildCover passes the raw canopies as the pair
// source and the totality-patched sets as the target — patch members are
// co-located for Definition 7, not name-similar, so scanning them for
// driving pairs would cost quadratic similarity work for nothing, and
// the canopy pair source is append-stable under ingestion by
// construction. pairSets[i] must be a subset of sets[i].
func alignedExpandInto(d *bib.Dataset, pairSets, sets [][]core.EntityID, maxAligned int) [][]core.EntityID {
	if maxAligned <= 0 {
		return sets
	}
	rel := d.Coauthor()
	parsed := make([]similarity.Name, d.NumRefs())
	for i := range d.Refs {
		parsed[i] = similarity.ParseName(d.Refs[i].Name)
	}
	// Sets overlap heavily and the coauthor products revisit the same
	// pairs constantly; one cached similarity evaluation per distinct
	// pair replaces thousands of repeated (allocating) Jaro runs.
	levels := map[core.PairKey]similarity.Level{}
	lvl := func(x, y core.EntityID) similarity.Level {
		k := core.MakePair(x, y).Key()
		if v, ok := levels[k]; ok {
			return v
		}
		v := similarity.NameLevel(parsed[x], parsed[y])
		levels[k] = v
		return v
	}
	out := make([][]core.EntityID, len(sets))
	var combos []alignedPair // reused scratch
	for si, set := range sets {
		member := make(map[core.EntityID]bool, len(set))
		expanded := append([]core.EntityID(nil), set...)
		for _, e := range set {
			member[e] = true
		}
		add := func(e core.EntityID) {
			if !member[e] {
				member[e] = true
				expanded = append(expanded, e)
			}
		}
		pairSet := pairSets[si]
		for i := 0; i < len(pairSet); i++ {
			for j := i + 1; j < len(pairSet); j++ {
				a, b := pairSet[i], pairSet[j]
				if lvl(a, b) == similarity.LevelNone {
					continue
				}
				// Gather the coauthor combinations (cheap, no similarity
				// yet), order them by the ingestion-stable priority, and
				// only then test name similarity, stopping at maxAligned
				// qualifying pairs — the expensive comparisons stay
				// proportional to the scan prefix, not the full product.
				combos = combos[:0]
				for _, c1 := range rel.Neighbors(a) {
					for _, c2 := range rel.Neighbors(b) {
						if c1 != c2 {
							combos = append(combos, alignedPair{c1: c1, c2: c2})
						}
					}
				}
				slices.SortFunc(combos, alignedPair.compare)
				taken := 0
				for _, q := range combos {
					if taken >= maxAligned {
						break
					}
					if lvl(q.c1, q.c2) == similarity.LevelNone {
						continue
					}
					add(q.c1)
					add(q.c2)
					taken++
				}
			}
		}
		sort.Slice(expanded, func(a, b int) bool { return expanded[a] < expanded[b] })
		out[si] = expanded
	}
	return out
}

// alignedPair is one (c1, c2) aligned-coauthor candidate.
type alignedPair struct{ c1, c2 core.EntityID }

// compare ranks by highest endpoint ascending, then lowest endpoint,
// then c1 — the ingestion-stable priority of AlignedExpand (a strict
// total order over distinct combinations).
func (p alignedPair) compare(q alignedPair) int {
	pmax, pmin := p.c1, p.c2
	if pmax < pmin {
		pmax, pmin = pmin, pmax
	}
	qmax, qmin := q.c1, q.c2
	if qmax < qmin {
		qmax, qmin = qmin, qmax
	}
	switch {
	case pmax != qmax:
		return int(pmax) - int(qmax)
	case pmin != qmin:
		return int(pmin) - int(qmin)
	default:
		return int(p.c1) - int(q.c1)
	}
}

// BuildCover constructs the total cover for a bibliography dataset:
// canopies over reference names, expanded with bounded aligned context
// (cfg.MaxAligned) and patched to totality w.r.t. Coauthor — or fully
// boundary-expanded when cfg.FullBoundary is set.
func BuildCover(d *bib.Dataset, cfg Config) *core.Cover {
	cover, err := BuildCoverContext(context.Background(), d, cfg, 1)
	if err != nil {
		panic(err) // unreachable: background context, serial execution
	}
	return cover
}

// BuildCoverContext is BuildCover with context cancellation and sharded
// canopy construction (shards <= 0 means GOMAXPROCS). The cover is
// byte-identical for every shard count; a canceled context aborts with
// ctx.Err().
func BuildCoverContext(ctx context.Context, d *bib.Dataset, cfg Config, shards int) (*core.Cover, error) {
	names := make([]string, d.NumRefs())
	for i := range d.Refs {
		names[i] = d.Refs[i].Name
	}
	sets, err := CanopiesContext(ctx, names, cfg, shards)
	if err != nil {
		return nil, err
	}
	if cfg.FullBoundary {
		sets = ExpandBoundary(sets, d.Coauthor())
	} else {
		// Totality patching runs FIRST, on the raw canopies: canopy sets
		// and their ids are append-stable under record ingestion, so
		// patch placement (lowest containing id) never moves for old
		// edges and the cover stays additive across deltas — the
		// property the incremental Index exploits. Aligned relational
		// context is absorbed afterwards (driven by the canopy pairs,
		// added to the patched sets); it only grows sets and cannot
		// re-route patches.
		canopies := sets
		sets = GreedyTotalCover(canopies, d.Coauthor())
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sets = alignedExpandInto(d, canopies, sets, cfg.MaxAligned)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.NewCover(d.NumRefs(), sets), nil
}

// SimilarPairs enumerates the candidate pairs of a dataset: unordered
// reference pairs with non-zero discretized name similarity that share at
// least one canopy. This is the pair universe the matchers decide (the
// paper's "1.3M matching decisions"). Pairs are returned with their level.
type SimilarPair struct {
	Pair  core.Pair
	Level similarity.Level
}

// CandidatePairs scans a cover and returns every in-neighborhood pair
// with non-zero name-similarity level, deduplicated across neighborhoods.
func CandidatePairs(d *bib.Dataset, cover *core.Cover) []SimilarPair {
	parsed := make([]similarity.Name, d.NumRefs())
	for i := range d.Refs {
		parsed[i] = similarity.ParseName(d.Refs[i].Name)
	}
	seen := core.NewPairSet()
	var out []SimilarPair
	for _, set := range cover.Sets {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				p := core.MakePair(set[i], set[j])
				if seen.Has(p) {
					continue
				}
				seen.Add(p)
				if lvl := similarity.NameLevel(parsed[p.A], parsed[p.B]); lvl > similarity.LevelNone {
					out = append(out, SimilarPair{Pair: p, Level: lvl})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out
}
