// Package canopy builds covers (§4 of the paper): it implements the
// Canopies algorithm of McCallum, Nigam & Ungar (reference [13]) over a
// cheap q-gram similarity with an inverted index, and then turns the
// canopies into a *total cover* (Definition 7) by expanding every
// neighborhood with its boundary w.r.t. the Coauthor relation — exactly
// the construction §4 describes ("we construct a total cover by first
// constructing a total cover over Similar using Canopies, and then taking
// the boundary of each neighborhood with respect to other relations").
package canopy

import (
	"sort"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/similarity"
)

// Config controls canopy construction.
type Config struct {
	// Loose is the cheap-similarity threshold for joining a canopy
	// (T2 in McCallum et al.; loose < tight).
	Loose float64
	// Tight is the threshold beyond which a point is considered well
	// covered and removed from the seed pool (T1).
	Tight float64
	// Q is the q-gram size of the cheap similarity.
	Q int
	// MaxAligned bounds how much relational context each neighborhood
	// absorbs: for every name-similar pair inside a canopy core, up to
	// MaxAligned *aligned coauthor pairs* (the (c1, c2) combinations that
	// ground the MLN's coauthor rule) are pulled into the neighborhood.
	// This is the paper's "sizes of neighborhoods are bounded" regime:
	// with a small cap, a collective clique of correlated pairs is
	// fragmented across the neighborhoods of its members — exactly the
	// Figure 2 situation that simple and maximal messages reassemble.
	// Ignored when FullBoundary is set.
	MaxAligned int
	// FullBoundary switches total-cover construction to full boundary
	// expansion: every neighborhood absorbs all relation neighbors of its
	// members, making essentially all relational evidence local. Kept for
	// ablation: it trades much larger neighborhoods (and a much more
	// expensive matcher) for less message traffic.
	FullBoundary bool
}

// DefaultConfig returns thresholds tuned so that (essentially) every pair
// with a non-zero discretized name-similarity level lands in a shared
// canopy: 2-grams are robust to single-character typos and to first-name
// abbreviation, and the loose threshold is low enough that true-match
// pairs are practically never blocked apart (verified in the tests).
func DefaultConfig() Config {
	return Config{Loose: 0.42, Tight: 0.85, Q: 2, MaxAligned: 1}
}

// normalize renders a reference name into canonical "first last" form so
// that punctuation and case do not affect gram overlap.
func normalize(name string) string {
	return similarity.ParseName(name).String()
}

// Canopies clusters the given names into (possibly overlapping) canopies
// and returns each canopy as a list of indices into names. Every name is
// in at least one canopy. Seeds are processed in ascending index order,
// making the construction deterministic.
func Canopies(names []string, cfg Config) [][]core.EntityID {
	n := len(names)
	norm := make([]string, n)
	grams := make([]map[string]int, n)
	for i, name := range names {
		norm[i] = normalize(name)
		grams[i] = similarity.QGrams(norm[i], cfg.Q)
	}
	// Inverted index: gram -> ids containing it.
	index := map[string][]int32{}
	for i := 0; i < n; i++ {
		for g := range grams[i] {
			index[g] = append(index[g], int32(i))
		}
	}
	// Names sharing the same normalized form are interchangeable; group
	// them so each surface form is scored once per seed.
	inPool := make([]bool, n)
	for i := range inPool {
		inPool[i] = true
	}
	var canopies [][]core.EntityID
	seen := make([]int32, n) // dedupe stamp for candidate collection
	for i := range seen {
		seen[i] = -1
	}
	for seed := 0; seed < n; seed++ {
		if !inPool[seed] {
			continue
		}
		// Candidates: everyone sharing at least one gram with the seed.
		var canopy []core.EntityID
		stamp := int32(seed)
		for g := range grams[seed] {
			for _, j := range index[g] {
				if seen[j] == stamp {
					continue
				}
				seen[j] = stamp
				s := jaccard(grams[seed], grams[j])
				if s >= cfg.Loose {
					canopy = append(canopy, j)
					if s >= cfg.Tight {
						inPool[j] = false
					}
				}
			}
		}
		inPool[seed] = false
		if len(canopy) == 0 {
			canopy = []core.EntityID{core.EntityID(seed)}
		}
		sort.Slice(canopy, func(a, b int) bool { return canopy[a] < canopy[b] })
		canopies = append(canopies, canopy)
	}
	return canopies
}

// jaccard computes set Jaccard over two gram maps.
func jaccard(a, b map[string]int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for g := range a {
		if _, ok := b[g]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// ExpandBoundary grows every neighborhood by its boundary w.r.t. rel:
// all entities sharing a relation edge with a member join the
// neighborhood. The result is a total cover w.r.t. rel (§4).
func ExpandBoundary(sets [][]core.EntityID, rel *graph.Graph) [][]core.EntityID {
	out := make([][]core.EntityID, len(sets))
	for i, set := range sets {
		member := map[core.EntityID]bool{}
		for _, e := range set {
			member[e] = true
		}
		expanded := append([]core.EntityID(nil), set...)
		for _, e := range set {
			for _, u := range rel.Neighbors(e) {
				if !member[u] {
					member[u] = true
					expanded = append(expanded, u)
				}
			}
		}
		sort.Slice(expanded, func(a, b int) bool { return expanded[a] < expanded[b] })
		out[i] = expanded
	}
	return out
}

// GreedyTotalCover turns canopies into a total cover (Definition 7) with
// minimal growth: every relation edge not yet inside any single
// neighborhood is patched by adding its missing endpoint to the smallest
// neighborhood containing the other endpoint. The result covers every
// relation tuple exactly as Definition 7 requires, while neighborhoods
// stay close to canopy size — which is what fragments relational context
// across neighborhoods and gives message passing its role (cf. Figure 2
// of the paper, where C1 holds a- and b-references but no c-references).
func GreedyTotalCover(sets [][]core.EntityID, rel *graph.Graph) [][]core.EntityID {
	out := make([][]core.EntityID, len(sets))
	member := make([]map[core.EntityID]bool, len(sets))
	containing := make(map[core.EntityID][]int)
	for i, set := range sets {
		out[i] = append([]core.EntityID(nil), set...)
		member[i] = make(map[core.EntityID]bool, len(set))
		for _, e := range set {
			member[i][e] = true
			containing[e] = append(containing[e], i)
		}
	}
	share := func(u, v core.EntityID) bool {
		cu, cv := containing[u], containing[v]
		if len(cv) < len(cu) {
			cu, u, v = cv, v, u
		}
		for _, s := range cu {
			if member[s][v] {
				return true
			}
		}
		return false
	}
	smallestWith := func(e core.EntityID) int {
		best := -1
		for _, s := range containing[e] {
			if best < 0 || len(out[s]) < len(out[best]) {
				best = s
			}
		}
		return best
	}
	add := func(s int, e core.EntityID) {
		out[s] = append(out[s], e)
		member[s][e] = true
		containing[e] = append(containing[e], s)
	}
	for u := int32(0); u < int32(rel.N()); u++ {
		for _, v := range rel.Neighbors(u) {
			if v <= u || share(u, v) {
				continue
			}
			su, sv := smallestWith(u), smallestWith(v)
			switch {
			case su < 0 && sv < 0:
				// Neither endpoint covered (cannot happen for covers).
			case sv < 0 || (su >= 0 && len(out[su]) <= len(out[sv])):
				add(su, v)
			default:
				add(sv, u)
			}
		}
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	return out
}

// AlignedExpand grows each canopy with bounded relational context: for
// every name-similar pair (a, b) inside the canopy, the endpoints of up
// to maxAligned aligned coauthor pairs — (c1, c2) with c1 ∈ N(a),
// c2 ∈ N(b) and similar names — are added. Aligned pairs are chosen in
// deterministic (c1, c2) order. The result is NOT necessarily total;
// follow with GreedyTotalCover.
func AlignedExpand(d *bib.Dataset, sets [][]core.EntityID, maxAligned int) [][]core.EntityID {
	if maxAligned <= 0 {
		return sets
	}
	rel := d.Coauthor()
	parsed := make([]similarity.Name, d.NumRefs())
	for i := range d.Refs {
		parsed[i] = similarity.ParseName(d.Refs[i].Name)
	}
	out := make([][]core.EntityID, len(sets))
	for si, set := range sets {
		member := make(map[core.EntityID]bool, len(set))
		expanded := append([]core.EntityID(nil), set...)
		for _, e := range set {
			member[e] = true
		}
		add := func(e core.EntityID) {
			if !member[e] {
				member[e] = true
				expanded = append(expanded, e)
			}
		}
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				a, b := set[i], set[j]
				if similarity.NameLevel(parsed[a], parsed[b]) == similarity.LevelNone {
					continue
				}
				taken := 0
				for _, c1 := range rel.Neighbors(a) {
					if taken >= maxAligned {
						break
					}
					for _, c2 := range rel.Neighbors(b) {
						if taken >= maxAligned {
							break
						}
						if c1 == c2 {
							continue
						}
						if similarity.NameLevel(parsed[c1], parsed[c2]) == similarity.LevelNone {
							continue
						}
						add(c1)
						add(c2)
						taken++
					}
				}
			}
		}
		sort.Slice(expanded, func(a, b int) bool { return expanded[a] < expanded[b] })
		out[si] = expanded
	}
	return out
}

// BuildCover constructs the total cover for a bibliography dataset:
// canopies over reference names, expanded with bounded aligned context
// (cfg.MaxAligned) and patched to totality w.r.t. Coauthor — or fully
// boundary-expanded when cfg.FullBoundary is set.
func BuildCover(d *bib.Dataset, cfg Config) *core.Cover {
	names := make([]string, d.NumRefs())
	for i := range d.Refs {
		names[i] = d.Refs[i].Name
	}
	sets := Canopies(names, cfg)
	if cfg.FullBoundary {
		sets = ExpandBoundary(sets, d.Coauthor())
	} else {
		sets = AlignedExpand(d, sets, cfg.MaxAligned)
		sets = GreedyTotalCover(sets, d.Coauthor())
	}
	return core.NewCover(d.NumRefs(), sets)
}

// SimilarPairs enumerates the candidate pairs of a dataset: unordered
// reference pairs with non-zero discretized name similarity that share at
// least one canopy. This is the pair universe the matchers decide (the
// paper's "1.3M matching decisions"). Pairs are returned with their level.
type SimilarPair struct {
	Pair  core.Pair
	Level similarity.Level
}

// CandidatePairs scans a cover and returns every in-neighborhood pair
// with non-zero name-similarity level, deduplicated across neighborhoods.
func CandidatePairs(d *bib.Dataset, cover *core.Cover) []SimilarPair {
	parsed := make([]similarity.Name, d.NumRefs())
	for i := range d.Refs {
		parsed[i] = similarity.ParseName(d.Refs[i].Name)
	}
	seen := core.NewPairSet()
	var out []SimilarPair
	for _, set := range cover.Sets {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				p := core.MakePair(set[i], set[j])
				if seen.Has(p) {
					continue
				}
				seen.Add(p)
				if lvl := similarity.NameLevel(parsed[p.A], parsed[p.B]); lvl > similarity.LevelNone {
					out = append(out, SimilarPair{Pair: p, Level: lvl})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out
}
