package canopy

// Property tests for the blocking invariants the pipeline relies on:
// gold pairs are never blocked apart, the canopy size bound holds, and
// sharded construction is byte-identical to serial.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// canopyMembership indexes which canopies contain each record.
func canopyMembership(n int, sets [][]core.EntityID) []map[int]bool {
	in := make([]map[int]bool, n)
	for i := range in {
		in[i] = map[int]bool{}
	}
	for ci, s := range sets {
		for _, e := range s {
			in[e][ci] = true
		}
	}
	return in
}

func shareCanopy(in []map[int]bool, a, b core.EntityID) bool {
	for c := range in[a] {
		if in[b][c] {
			return true
		}
	}
	return false
}

// TestGoldPairsShareCanopy pins blocking recall on the cover the
// matchers actually see (canopies + aligned expansion + totality
// patching), at the default thresholds:
//
//   - every STRONG-similarity gold pair (near-identical names — the
//     pairs blocking exists to keep together) shares a neighborhood,
//     with zero tolerance;
//   - across ALL decidable gold pairs (non-zero similarity level) the
//     blocked-apart fraction stays under a per-regime ceiling — a
//     regression ratchet over the measured tail of abbreviated,
//     low-gram-overlap medium/weak pairs (~5% on HEPTH, ~0.3% on DBLP).
//
// Gold pairs whose surface forms drifted to zero similarity (double
// typos) are out of every matcher's reach regardless of blocking and
// are not counted.
func TestGoldPairsShareCanopy(t *testing.T) {
	for _, tc := range []struct {
		preset  datagen.Config
		maxMiss float64
	}{
		{datagen.HEPTHLike(0.25, 42), 0.08},
		{datagen.DBLPLike(0.25, 42), 0.01},
		{datagen.HEPTHLike(0.3, 7), 0.08},
		{datagen.DBLPLike(0.3, 7), 0.01},
	} {
		d := datagen.MustGenerate(tc.preset)
		parsed := make([]similarity.Name, d.NumRefs())
		for i := range d.Refs {
			parsed[i] = similarity.ParseName(d.Refs[i].Name)
		}
		cover := BuildCover(d, DefaultConfig())
		in := canopyMembership(d.NumRefs(), cover.Sets)
		missed, total, strongMissed, strongTotal := 0, 0, 0, 0
		for p := range d.TruePairs() {
			lvl := similarity.NameLevel(parsed[p[0]], parsed[p[1]])
			if lvl == similarity.LevelNone {
				continue
			}
			total++
			shared := shareCanopy(in, p[0], p[1])
			if lvl == similarity.LevelStrong {
				strongTotal++
				if !shared {
					strongMissed++
					t.Logf("%s: STRONG pair blocked apart: %q vs %q",
						tc.preset.Name, d.Refs[p[0]].Name, d.Refs[p[1]].Name)
				}
			}
			if !shared {
				missed++
			}
		}
		if total == 0 || strongTotal == 0 {
			t.Fatalf("%s: no decidable gold pairs (total=%d strong=%d)", tc.preset.Name, total, strongTotal)
		}
		if strongMissed != 0 {
			t.Errorf("%s (seed %d): %d/%d strong gold pairs share no neighborhood",
				tc.preset.Name, tc.preset.Seed, strongMissed, strongTotal)
		}
		if frac := float64(missed) / float64(total); frac > tc.maxMiss {
			t.Errorf("%s (seed %d): %d/%d (%.4f) decidable gold pairs blocked apart, ceiling %.2f",
				tc.preset.Name, tc.preset.Seed, missed, total, frac, tc.maxMiss)
		}
	}
}

// TestMaxNeighborhoodBound: with the cap set, every canopy core respects
// it, the result is still a cover, and dropped records still seed their
// own canopies.
func TestMaxNeighborhoodBound(t *testing.T) {
	d := datagen.MustGenerate(datagen.HEPTHLike(0.3, 5))
	names := make([]string, d.NumRefs())
	for i := range d.Refs {
		names[i] = d.Refs[i].Name
	}
	for _, bound := range []int{2, 5, 16} {
		cfg := DefaultConfig()
		cfg.MaxNeighborhood = bound
		sets := Canopies(names, cfg)
		covered := make([]bool, len(names))
		for ci, s := range sets {
			if len(s) > bound {
				t.Fatalf("bound %d: canopy %d has %d members", bound, ci, len(s))
			}
			for _, e := range s {
				covered[e] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("bound %d: record %d (%q) not covered", bound, i, names[i])
			}
		}
	}
	// The unbounded run must exceed a tight bound somewhere, or the test
	// proves nothing.
	maxSize := 0
	for _, s := range Canopies(names, DefaultConfig()) {
		if len(s) > maxSize {
			maxSize = len(s)
		}
	}
	if maxSize <= 16 {
		t.Fatalf("largest unbounded canopy is %d; corpus too small to exercise the cap", maxSize)
	}
}

// TestCapKeepsSeedAndMostSimilar: the cap keeps the seed and prefers
// higher-similarity members (identical names over distant ones).
func TestCapKeepsSeedAndMostSimilar(t *testing.T) {
	// Record 0 seeds a canopy over near and far variants.
	names := []string{
		"Vibhor Rastogi",  // 0: seed
		"Vibhor Rastogi",  // 1: identical -> sim 1.0
		"Vibhor Rastogy",  // 2: one typo
		"V. Rastogi",      // 3: abbreviated (much lower gram overlap)
		"Vibhor Rastogi ", // 4: identical after normalization
	}
	cfg := DefaultConfig()
	cfg.MaxNeighborhood = 3
	sets := Canopies(names, cfg)
	first := sets[0]
	if len(first) != 3 {
		t.Fatalf("capped canopy = %v, want 3 members", first)
	}
	has := func(id core.EntityID) bool {
		for _, e := range first {
			if e == id {
				return true
			}
		}
		return false
	}
	if !has(0) {
		t.Fatalf("seed dropped from its own canopy: %v", first)
	}
	if !has(1) || !has(4) {
		t.Errorf("cap kept %v, want the identical names {0,1,4}", first)
	}
	if has(3) {
		t.Errorf("cap kept the least similar member 3 over identical names: %v", first)
	}
}

// TestShardedIdenticalToSerial: for every shard count, CanopiesContext
// returns byte-identical canopies to the serial run — on the seed
// corpora and with the size bound active.
func TestShardedIdenticalToSerial(t *testing.T) {
	for _, preset := range []datagen.Config{
		datagen.HEPTHLike(0.25, 42),
		datagen.DBLPLike(0.25, 42),
	} {
		d := datagen.MustGenerate(preset)
		names := make([]string, d.NumRefs())
		for i := range d.Refs {
			names[i] = d.Refs[i].Name
		}
		for _, cfg := range []Config{DefaultConfig(), {Loose: 0.42, Tight: 0.85, Q: 2, MaxNeighborhood: 8}} {
			serial, err := CanopiesContext(context.Background(), names, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 7, 16, 0} {
				sharded, err := CanopiesContext(context.Background(), names, cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sharded, serial) {
					t.Fatalf("%s shards=%d maxNbr=%d: sharded canopies differ from serial",
						preset.Name, shards, cfg.MaxNeighborhood)
				}
			}
		}
	}
}

// TestBuildCoverContextShardedIdentical: the full cover (canopies +
// aligned expansion + totality patching) is shard-invariant too.
func TestBuildCoverContextShardedIdentical(t *testing.T) {
	d := datagen.MustGenerate(datagen.DBLPLike(0.25, 42))
	serial, err := BuildCoverContext(context.Background(), d, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildCoverContext(context.Background(), d, DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded.Sets, serial.Sets) {
		t.Fatal("sharded cover differs from serial")
	}
}

// TestBuildCoverContextCancellation: a canceled context aborts blocking
// with ctx.Err().
func TestBuildCoverContextCancellation(t *testing.T) {
	d := datagen.MustGenerate(datagen.DBLPLike(0.2, 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCoverContext(ctx, d, DefaultConfig(), 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConfigValidate: the blocking configuration rejects malformed
// thresholds and bounds.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Loose: 0, Tight: 0.5, Q: 2},
		{Loose: 1.2, Tight: 1.3, Q: 2},
		{Loose: 0.9, Tight: 0.5, Q: 2},
		{Loose: 0.4, Tight: 0.8, Q: 0},
		{Loose: 0.4, Tight: 0.8, Q: 2, MaxAligned: -1},
		{Loose: 0.4, Tight: 0.8, Q: 2, MaxNeighborhood: -3},
		{Loose: 0.4, Tight: 0.8, Q: 2, MaxNeighborhood: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// FuzzShardedCanopiesIdentical: arbitrary name lists never make sharded
// construction diverge from serial, and every record stays covered.
func FuzzShardedCanopiesIdentical(f *testing.F) {
	f.Add("Vibhor Rastogi\nV. Rastogi\nNilesh Dalvi", 3)
	f.Add("a\nb\nc\nd\ne\nf\ng", 2)
	f.Add("John Smith\nJon Smith\nJohn Smyth\nJ. Smith\nJane Smith\nJohn Smith", 5)
	f.Add("", 4)
	f.Add("single", 7)
	f.Fuzz(func(t *testing.T, blob string, shards int) {
		if shards < 2 {
			shards = 2
		}
		if shards > 32 {
			shards = 32
		}
		names := strings.Split(blob, "\n")
		if len(names) > 200 {
			names = names[:200]
		}
		for _, cfg := range []Config{DefaultConfig(), {Loose: 0.3, Tight: 0.6, Q: 2, MaxNeighborhood: 3}} {
			serial, err := CanopiesContext(context.Background(), names, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := CanopiesContext(context.Background(), names, cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sharded, serial) {
				t.Fatalf("shards=%d cfg=%+v: sharded %v != serial %v", shards, cfg, sharded, serial)
			}
			covered := make([]bool, len(names))
			for _, s := range serial {
				for _, e := range s {
					covered[e] = true
				}
			}
			for i := range covered {
				if !covered[i] {
					t.Fatalf("record %d (%q) uncovered (cfg %+v)", i, names[i], cfg)
				}
			}
		}
	})
}

// The size-bound invariant at pipeline defaults, printed for the bench
// trajectory: neighborhoods stay small on both regimes.
func TestNeighborhoodSizesReported(t *testing.T) {
	for _, preset := range []datagen.Config{
		datagen.HEPTHLike(0.25, 42), datagen.DBLPLike(0.25, 42),
	} {
		d := datagen.MustGenerate(preset)
		stats := BuildCover(d, DefaultConfig()).ComputeStats()
		t.Log(fmt.Sprintf("%s: %s", preset.Name, stats))
		if stats.MaxSize <= 1 {
			t.Errorf("%s: degenerate cover %s", preset.Name, stats)
		}
	}
}
