// Package graph provides a compact undirected adjacency structure over
// dense int32 entity ids. It backs the Coauthor relation, boundary
// expansion of covers (§4 of the paper), and the affected-neighborhood
// index used by the message-passing schedulers (§5).
package graph

import "sort"

// Graph is an immutable undirected graph over vertices [0, n) stored in
// CSR (compressed sparse row) form. Build one with a Builder.
type Graph struct {
	offsets []int32
	adj     []int32
}

// Builder accumulates undirected edges and produces a Graph.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the undirected edge {u, v}. Self-loops and duplicates
// are tolerated and removed at Build time.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build produces the immutable CSR graph, deduplicating parallel edges.
func (b *Builder) Build() *Graph {
	deg := make([]int32, b.n+1)
	for _, e := range b.edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := 1; i <= b.n; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]int32, len(b.edges)*2)
	fill := make([]int32, b.n)
	for _, e := range b.edges {
		adj[deg[e[0]]+fill[e[0]]] = e[1]
		fill[e[0]]++
		adj[deg[e[1]]+fill[e[1]]] = e[0]
		fill[e[1]]++
	}
	// Sort and dedupe each neighbor list in place, then compact.
	out := adj[:0]
	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		lo, hi := deg[v], deg[v+1]
		nbrs := adj[lo:hi]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		start := len(out)
		for i, u := range nbrs {
			if i > 0 && nbrs[i-1] == u {
				continue
			}
			out = append(out, u)
		}
		offsets[v] = int32(start)
		offsets[v+1] = int32(len(out))
	}
	final := make([]int32, len(out))
	copy(final, out)
	return &Graph{offsets: offsets, adj: final}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's sorted neighbor list. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return len(g.adj) / 2 }

// Components returns the connected-component id of every vertex and the
// number of components. Ids are dense in [0, count).
func (g *Graph) Components() (ids []int32, count int) {
	ids = make([]int32, g.N())
	for i := range ids {
		ids[i] = -1
	}
	var stack []int32
	for v := 0; v < g.N(); v++ {
		if ids[v] >= 0 {
			continue
		}
		ids[v] = int32(count)
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(x) {
				if ids[u] < 0 {
					ids[u] = int32(count)
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return ids, count
}
