package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTriangle() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func TestBasicAdjacency(t *testing.T) {
	g := buildTriangle()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.Edges() != 3 {
		t.Fatalf("Edges = %d, want 3", g.Edges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing or not symmetric")
	}
	if g.HasEdge(0, 3) {
		t.Error("phantom edge {0,3}")
	}
}

func TestDuplicateAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self loop dropped
	g := b.Build()
	if g.Degree(0) != 1 {
		t.Errorf("Degree(0) = %d, want 1 (deduped)", g.Degree(0))
	}
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d, want 0 (self loop dropped)", g.Degree(2))
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors not sorted: %v", nbrs)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	ids, count := g.Components()
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Error("0,1,2 must share a component")
	}
	if ids[3] != ids[4] {
		t.Error("3,4 must share a component")
	}
	if ids[5] == ids[6] {
		t.Error("isolated vertices must be distinct components")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.Edges() != 0 {
		t.Fatal("empty graph wrong")
	}
	_, count := g.Components()
	if count != 0 {
		t.Fatalf("empty graph components = %d", count)
	}
}

// Property: HasEdge agrees with a naive map-based edge set on random graphs.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(20)
		m := rng.Intn(40)
		b := NewBuilder(n)
		naive := map[[2]int32]bool{}
		for i := 0; i < m; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			b.AddEdge(u, v)
			if u != v {
				naive[[2]int32{u, v}] = true
				naive[[2]int32{v, u}] = true
			}
		}
		g := b.Build()
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				if g.HasEdge(u, v) != naive[[2]int32{u, v}] {
					t.Fatalf("trial %d: HasEdge(%d,%d) mismatch", trial, u, v)
				}
			}
		}
	}
}

// Property: sum of degrees equals twice the edge count.
func TestHandshake(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%n), int32(raw[i+1]%n))
		}
		g := b.Build()
		sum := 0
		for v := int32(0); v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.Edges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
