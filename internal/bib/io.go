package bib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is a simple line-oriented TSV that the cmd/ tools
// read and write:
//
//	# dataset <name>
//	P <title> <year> <cite,cite,...>        (papers, in id order)
//	R <paperID> <trueAuthorID> <name>       (references, in id order)
//
// Citations may be empty ("-"). Names may contain spaces; they are the
// final field on R lines and titles are tab-delimited on P lines.

// Write serializes the dataset to w in the TSV format above.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s\n", d.Name); err != nil {
		return err
	}
	for i := range d.Papers {
		p := &d.Papers[i]
		cites := "-"
		if len(p.Cites) > 0 {
			parts := make([]string, len(p.Cites))
			for j, c := range p.Cites {
				parts[j] = strconv.Itoa(int(c))
			}
			cites = strings.Join(parts, ",")
		}
		if _, err := fmt.Fprintf(bw, "P\t%s\t%d\t%s\n", p.Title, p.Year, cites); err != nil {
			return err
		}
	}
	for i := range d.Refs {
		r := &d.Refs[i]
		if _, err := fmt.Fprintf(bw, "R\t%d\t%d\t%s\n", r.Paper, r.True, r.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a dataset in the format produced by Write.
func Read(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# dataset ") {
			d.Name = strings.TrimPrefix(text, "# dataset ")
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		switch fields[0] {
		case "P":
			if len(fields) != 4 {
				return nil, fmt.Errorf("bib: line %d: P wants 4 fields, got %d", line, len(fields))
			}
			year, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bib: line %d: bad year: %v", line, err)
			}
			p := Paper{Title: fields[1], Year: year}
			if fields[3] != "-" {
				for _, part := range strings.Split(fields[3], ",") {
					c, err := strconv.Atoi(part)
					if err != nil {
						return nil, fmt.Errorf("bib: line %d: bad cite: %v", line, err)
					}
					p.Cites = append(p.Cites, PaperID(c))
				}
			}
			d.Papers = append(d.Papers, p)
		case "R":
			if len(fields) != 4 {
				return nil, fmt.Errorf("bib: line %d: R wants 4 fields, got %d", line, len(fields))
			}
			paper, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("bib: line %d: bad paper id: %v", line, err)
			}
			truth, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bib: line %d: bad author id: %v", line, err)
			}
			if paper < 0 || paper >= len(d.Papers) {
				return nil, fmt.Errorf("bib: line %d: reference to unknown paper %d", line, paper)
			}
			id := RefID(len(d.Refs))
			d.Refs = append(d.Refs, Reference{Name: fields[3], Paper: PaperID(paper), True: AuthorID(truth)})
			d.Papers[paper].Refs = append(d.Papers[paper].Refs, id)
		default:
			return nil, fmt.Errorf("bib: line %d: unknown record type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
