// Package bib defines the bibliographic entity-matching data model of the
// paper's running example (Example 1): papers, author references, the
// Authored / Coauthor / Cites relations, and ground truth mapping each
// author reference to its real-world author.
//
// The entities being matched in the experiments — as in the paper's §6 —
// are the *author references*: each occurrence of an author name on a
// paper is its own entity, and the matcher decides which references denote
// the same real author.
package bib

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// RefID identifies an author reference (dense, 0-based).
type RefID = int32

// PaperID identifies a paper (dense, 0-based).
type PaperID = int32

// AuthorID identifies a ground-truth real-world author.
type AuthorID = int32

// Reference is one occurrence of an author name on a paper.
type Reference struct {
	Name  string   // the name string as it appears in this source
	Paper PaperID  // the paper this reference occurs on
	True  AuthorID // ground-truth author (known by construction)
}

// Paper is a publication carrying a list of author references.
type Paper struct {
	Title string
	Year  int
	Refs  []RefID   // author references appearing on this paper
	Cites []PaperID // papers cited by this paper
}

// Dataset is a full bibliography instance: the entity set E plus the
// relation set R = {Authored, Coauthor, Cites} of Example 1.
type Dataset struct {
	Name   string
	Refs   []Reference
	Papers []Paper

	coauthor *graph.Graph // lazily built Coauthor relation over references
}

// NumRefs returns the number of author-reference entities.
func (d *Dataset) NumRefs() int { return len(d.Refs) }

// NumPapers returns the number of papers.
func (d *Dataset) NumPapers() int { return len(d.Papers) }

// NumAuthors returns the number of distinct ground-truth authors.
func (d *Dataset) NumAuthors() int {
	seen := map[AuthorID]bool{}
	for i := range d.Refs {
		seen[d.Refs[i].True] = true
	}
	return len(seen)
}

// Coauthor returns (building on first use) the Coauthor relation as an
// undirected graph over references: two references are coauthors when
// they appear on the same paper. This is the self-join of Authored that
// Example 1 describes.
func (d *Dataset) Coauthor() *graph.Graph {
	if d.coauthor != nil {
		return d.coauthor
	}
	b := graph.NewBuilder(len(d.Refs))
	for p := range d.Papers {
		refs := d.Papers[p].Refs
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				b.AddEdge(refs[i], refs[j])
			}
		}
	}
	d.coauthor = b.Build()
	return d.coauthor
}

// InvalidateCoauthor drops the cached Coauthor graph; call after mutating
// Papers or Refs.
func (d *Dataset) InvalidateCoauthor() { d.coauthor = nil }

// TruePairs returns the ground-truth match set: every unordered pair of
// references with the same true author. References with an unknown label
// (True < 0) never pair with anything. Cost is quadratic per author
// cluster, which matches real label distributions (small clusters).
func (d *Dataset) TruePairs() map[[2]RefID]bool {
	byAuthor := map[AuthorID][]RefID{}
	for i := range d.Refs {
		if d.Refs[i].True < 0 {
			continue
		}
		byAuthor[d.Refs[i].True] = append(byAuthor[d.Refs[i].True], RefID(i))
	}
	out := map[[2]RefID]bool{}
	for _, refs := range byAuthor {
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				a, b := refs[i], refs[j]
				if a > b {
					a, b = b, a
				}
				out[[2]RefID{a, b}] = true
			}
		}
	}
	return out
}

// IsTrueMatch reports whether two references denote the same real author.
func (d *Dataset) IsTrueMatch(a, b RefID) bool {
	return d.Refs[a].True == d.Refs[b].True
}

// Validate checks internal consistency: every paper's references point
// back at the paper, every reference's paper lists it, and all ids are in
// range. It returns the first problem found.
func (d *Dataset) Validate() error {
	for p := range d.Papers {
		for _, r := range d.Papers[p].Refs {
			if r < 0 || int(r) >= len(d.Refs) {
				return fmt.Errorf("bib: paper %d has out-of-range ref %d", p, r)
			}
			if d.Refs[r].Paper != PaperID(p) {
				return fmt.Errorf("bib: ref %d on paper %d claims paper %d", r, p, d.Refs[r].Paper)
			}
		}
		for _, c := range d.Papers[p].Cites {
			if c < 0 || int(c) >= len(d.Papers) {
				return fmt.Errorf("bib: paper %d cites out-of-range paper %d", p, c)
			}
		}
	}
	listed := make([]bool, len(d.Refs))
	for p := range d.Papers {
		for _, r := range d.Papers[p].Refs {
			listed[r] = true
		}
	}
	for r := range d.Refs {
		if !listed[r] {
			return fmt.Errorf("bib: ref %d not listed on its paper", r)
		}
	}
	return nil
}

// Stats summarizes a dataset for logging and the EXPERIMENTS report.
type Stats struct {
	Refs, Papers, Authors int
	CoauthorEdges         int
	MaxClusterSize        int
	TrueMatchPairs        int
}

// ComputeStats gathers summary statistics.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		Refs:    len(d.Refs),
		Papers:  len(d.Papers),
		Authors: d.NumAuthors(),
	}
	s.CoauthorEdges = d.Coauthor().Edges()
	sizes := map[AuthorID]int{}
	for i := range d.Refs {
		sizes[d.Refs[i].True]++
	}
	for _, n := range sizes {
		if n > s.MaxClusterSize {
			s.MaxClusterSize = n
		}
		s.TrueMatchPairs += n * (n - 1) / 2
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("refs=%d papers=%d authors=%d coauthorEdges=%d maxCluster=%d truePairs=%d",
		s.Refs, s.Papers, s.Authors, s.CoauthorEdges, s.MaxClusterSize, s.TrueMatchPairs)
}

// SortedRefIDs returns 0..n-1 — convenience for building covers.
func (d *Dataset) SortedRefIDs() []RefID {
	out := make([]RefID, len(d.Refs))
	for i := range out {
		out[i] = RefID(i)
	}
	return out
}

// RefsByAuthor groups reference ids by ground-truth author, each group
// sorted ascending. Used by tests and evaluation.
func (d *Dataset) RefsByAuthor() map[AuthorID][]RefID {
	out := map[AuthorID][]RefID{}
	for i := range d.Refs {
		out[d.Refs[i].True] = append(out[d.Refs[i].True], RefID(i))
	}
	for _, v := range out {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	}
	return out
}
