package bib

import (
	"bytes"
	"reflect"
	"testing"
)

func TestDatasetFromRecordsGroups(t *testing.T) {
	recs := []Record{
		{Name: "V. Rastogi", Group: 7, Gold: 0},
		{Name: "N. Dalvi", Group: 7, Gold: 1},
		{Name: "Solo Author", Group: -1, Gold: 2},
		{Name: "Vibhor Rastogi", Group: 9, Gold: 0},
		{Name: "M. Garofalakis", Group: 9, Gold: 3},
	}
	d, err := DatasetFromRecords("test", recs)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRefs() != 5 {
		t.Fatalf("NumRefs = %d, want 5", d.NumRefs())
	}
	// Group 7 → paper 0, ungrouped → paper 1, group 9 → paper 2.
	if d.NumPapers() != 3 {
		t.Fatalf("NumPapers = %d, want 3", d.NumPapers())
	}
	wantPapers := [][]RefID{{0, 1}, {2}, {3, 4}}
	for p, want := range wantPapers {
		if !reflect.DeepEqual(d.Papers[p].Refs, want) {
			t.Errorf("paper %d refs = %v, want %v", p, d.Papers[p].Refs, want)
		}
	}
	// Grouped records are coauthors; ungrouped ones are isolated.
	rel := d.Coauthor()
	if len(rel.Neighbors(0)) != 1 || rel.Neighbors(0)[0] != 1 {
		t.Errorf("coauthors of ref 0 = %v, want [1]", rel.Neighbors(0))
	}
	if len(rel.Neighbors(2)) != 0 {
		t.Errorf("ungrouped record has coauthors: %v", rel.Neighbors(2))
	}
	// Gold labels survive as ground truth.
	if !d.IsTrueMatch(0, 3) || d.IsTrueMatch(0, 1) {
		t.Error("gold labels not preserved")
	}
}

func TestDatasetFromRecordsErrors(t *testing.T) {
	if _, err := DatasetFromRecords("x", nil); err == nil {
		t.Error("empty record list accepted")
	}
	if _, err := DatasetFromRecords("x", []Record{{Name: ""}}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestTruePairsSkipsUnknownLabels(t *testing.T) {
	recs := []Record{
		{Name: "A One", Group: -1, Gold: -1},
		{Name: "A One", Group: -1, Gold: -1},
		{Name: "B Two", Group: -1, Gold: 5},
		{Name: "B Two", Group: -1, Gold: 5},
	}
	d, err := DatasetFromRecords("unlabeled", recs)
	if err != nil {
		t.Fatal(err)
	}
	pairs := d.TruePairs()
	if len(pairs) != 1 || !pairs[[2]RefID{2, 3}] {
		t.Errorf("TruePairs = %v, want exactly {2,3}: unknown labels must not pair", pairs)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "V. Rastogi", Group: 0, Gold: 4},
		{Name: "Name With Spaces", Group: -1, Gold: -1},
		{Name: "N. Dalvi", Group: 0, Gold: 12},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, "round-trip", recs); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "round-trip" {
		t.Errorf("name = %q", name)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip: got %v, want %v", got, recs)
	}
}

func TestReadRecordsErrors(t *testing.T) {
	for _, bad := range []string{
		"",                       // no records
		"0\tnotanumber\tName\n",  // bad gold
		"x\t1\tName\n",           // bad group
		"justonefield\n",         // too few fields
		"4294967296\t0\tName\n",  // group overflows int32 (must not wrap to 0)
		"0\t2147483648\tName\n",  // gold overflows int32 (must not wrap negative)
		"0\t-2147483649\tName\n", // gold underflows int32
	} {
		if _, _, err := ReadRecords(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("ReadRecords(%q): no error", bad)
		}
	}
}

func TestWriteRecordsRejectsLineBreaks(t *testing.T) {
	for _, name := range []string{"bad\nname", "bad\rname", "trailing\n"} {
		var buf bytes.Buffer
		if err := WriteRecords(&buf, "x", []Record{{Name: name, Group: -1, Gold: -1}}); err == nil {
			t.Errorf("WriteRecords accepted name %q", name)
		}
	}
}

func TestToRecordsRoundTripsThroughDataset(t *testing.T) {
	recs := []Record{
		{Name: "V. Rastogi", Group: 3, Gold: 0},
		{Name: "N. Dalvi", Group: 3, Gold: 1},
		{Name: "V. Rastogi", Group: 8, Gold: 0},
	}
	d, err := DatasetFromRecords("rt", recs)
	if err != nil {
		t.Fatal(err)
	}
	back := ToRecords(d)
	if len(back) != len(recs) {
		t.Fatalf("len = %d, want %d", len(back), len(recs))
	}
	for i := range back {
		if back[i].Name != recs[i].Name || back[i].Gold != recs[i].Gold {
			t.Errorf("record %d: got %+v, want name/gold of %+v", i, back[i], recs[i])
		}
	}
	// Group structure is preserved (same-paper iff same original group).
	if back[0].Group != back[1].Group || back[0].Group == back[2].Group {
		t.Errorf("group structure lost: %+v", back)
	}
}
