package bib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/store"
)

// Record is the flat, source-agnostic ingestion unit of the pipeline: one
// string to block and match on, an optional relational group (records of
// the same group are treated as coauthors — the Authored self-join of
// Example 1), and an optional gold entity label for evaluation.
type Record struct {
	// Name is the surface string the blocker and matchers operate on.
	Name string
	// Group links records relationally: all records sharing a group id
	// >= 0 land on one synthesized paper (they become coauthors). A
	// negative group means "ungrouped"; the record gets a singleton paper.
	Group int32
	// Gold is the ground-truth entity id, or a negative value when
	// unknown. Evaluation is only meaningful when every record is
	// labeled.
	Gold int32
}

// ToRecords flattens a dataset into its record list: one record per
// author reference, grouped by paper and labeled with the ground truth.
func ToRecords(d *Dataset) []Record {
	out := make([]Record, len(d.Refs))
	for i := range d.Refs {
		out[i] = Record{Name: d.Refs[i].Name, Group: d.Refs[i].Paper, Gold: d.Refs[i].True}
	}
	return out
}

// DatasetFromRecords synthesizes a bibliography dataset from raw records:
// every distinct non-negative group becomes one paper (in first-appearance
// order), each ungrouped record gets a singleton paper, and reference ids
// follow record order. The result passes Validate and is deterministic in
// the input order.
func DatasetFromRecords(name string, recs []Record) (*Dataset, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("bib: no records")
	}
	d := &Dataset{Name: name, Refs: make([]Reference, 0, len(recs))}
	paperOf := map[int32]PaperID{}
	// Surface strings repeat heavily (the same rendered author name
	// appears on many references); interning stores each distinct one
	// once, which is what keeps a large streamed corpus's reference
	// table from duplicating every repeated name.
	names := store.NewInterner()
	for i, r := range recs {
		if r.Name == "" {
			return nil, fmt.Errorf("bib: record %d has an empty name", i)
		}
		var pid PaperID
		if r.Group < 0 {
			pid = PaperID(len(d.Papers))
			d.Papers = append(d.Papers, Paper{Title: fmt.Sprintf("record-%d", i)})
		} else if known, ok := paperOf[r.Group]; ok {
			pid = known
		} else {
			pid = PaperID(len(d.Papers))
			d.Papers = append(d.Papers, Paper{Title: fmt.Sprintf("group-%d", r.Group)})
			paperOf[r.Group] = pid
		}
		rid := RefID(len(d.Refs))
		gold := r.Gold
		if gold < 0 {
			gold = -1
		}
		d.Refs = append(d.Refs, Reference{Name: names.Intern(r.Name), Paper: pid, True: gold})
		d.Papers[pid].Refs = append(d.Papers[pid].Refs, rid)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bib: records produced an invalid dataset: %w", err)
	}
	return d, nil
}

// The on-disk record format is line-oriented TSV, mirroring the dataset
// format of io.go:
//
//	# records <name>
//	<group>\t<gold>\t<name>
//
// Group and gold may be -1 (ungrouped / unlabeled). Names are the final
// field and may contain spaces.

// WriteRecords serializes records to w in the TSV format above. Names
// containing line breaks cannot be represented in the line-oriented
// format and are rejected rather than silently corrupting the output.
func WriteRecords(w io.Writer, name string, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# records %s\n", name); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		if strings.ContainsAny(r.Name, "\n\r") {
			return fmt.Errorf("bib: record %d: name contains a line break", i)
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", r.Group, r.Gold, r.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecords parses records in the format produced by WriteRecords.
func ReadRecords(r io.Reader) (name string, recs []Record, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Interning collapses repeated surface names to one string each as
	// the stream parses (and detaches kept names from whole-line backing
	// arrays).
	names := store.NewInterner()
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# records ") {
			name = strings.TrimPrefix(text, "# records ")
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.SplitN(text, "\t", 3)
		if len(fields) != 3 {
			return "", nil, fmt.Errorf("bib: line %d: record wants 3 fields, got %d", line, len(fields))
		}
		group, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return "", nil, fmt.Errorf("bib: line %d: bad group: %v", line, err)
		}
		gold, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return "", nil, fmt.Errorf("bib: line %d: bad gold id: %v", line, err)
		}
		recs = append(recs, Record{Name: names.Intern(fields[2]), Group: int32(group), Gold: int32(gold)})
	}
	if err := sc.Err(); err != nil {
		return "", nil, fmt.Errorf("bib: reading records: %w", err)
	}
	if len(recs) == 0 {
		return "", nil, fmt.Errorf("bib: no records in input")
	}
	return name, recs, nil
}
