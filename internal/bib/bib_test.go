package bib

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a 3-paper, 6-reference dataset:
//
//	paper 0: refs 0 (author 0), 1 (author 1)
//	paper 1: refs 2 (author 0), 3 (author 2)
//	paper 2: refs 4 (author 1), 5 (author 2)   cites paper 0
func tiny() *Dataset {
	d := &Dataset{Name: "tiny"}
	d.Papers = []Paper{
		{Title: "p0", Year: 2001},
		{Title: "p1", Year: 2002},
		{Title: "p2", Year: 2003, Cites: []PaperID{0}},
	}
	add := func(paper PaperID, truth AuthorID, name string) {
		id := RefID(len(d.Refs))
		d.Refs = append(d.Refs, Reference{Name: name, Paper: paper, True: truth})
		d.Papers[paper].Refs = append(d.Papers[paper].Refs, id)
	}
	add(0, 0, "A. Smith")
	add(0, 1, "B. Jones")
	add(1, 0, "Alice Smith")
	add(1, 2, "C. Brown")
	add(2, 1, "Bob Jones")
	add(2, 2, "Carol Brown")
	return d
}

func TestValidate(t *testing.T) {
	d := tiny()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	// Corrupt: reference points at wrong paper.
	d.Refs[0].Paper = 2
	if err := d.Validate(); err == nil {
		t.Error("corrupted dataset accepted")
	}
}

func TestCoauthor(t *testing.T) {
	d := tiny()
	g := d.Coauthor()
	if g.Edges() != 3 {
		t.Fatalf("coauthor edges = %d, want 3", g.Edges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) || !g.HasEdge(4, 5) {
		t.Error("expected coauthor edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("refs on different papers cannot be coauthors")
	}
	// Cached: same pointer on second call.
	if d.Coauthor() != g {
		t.Error("Coauthor graph must be cached")
	}
	d.InvalidateCoauthor()
	if d.Coauthor() == g {
		t.Error("InvalidateCoauthor must drop the cache")
	}
}

func TestTruePairs(t *testing.T) {
	d := tiny()
	tp := d.TruePairs()
	want := map[[2]RefID]bool{
		{0, 2}: true, // author 0
		{1, 4}: true, // author 1
		{3, 5}: true, // author 2
	}
	if len(tp) != len(want) {
		t.Fatalf("TruePairs = %v, want %v", tp, want)
	}
	for p := range want {
		if !tp[p] {
			t.Errorf("missing true pair %v", p)
		}
	}
	if !d.IsTrueMatch(0, 2) || d.IsTrueMatch(0, 1) {
		t.Error("IsTrueMatch wrong")
	}
}

func TestStats(t *testing.T) {
	d := tiny()
	s := d.ComputeStats()
	if s.Refs != 6 || s.Papers != 3 || s.Authors != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.TrueMatchPairs != 3 || s.MaxClusterSize != 2 {
		t.Errorf("pair stats = %+v", s)
	}
	if !strings.Contains(s.String(), "refs=6") {
		t.Errorf("Stats.String = %q", s.String())
	}
	if d.NumRefs() != 6 || d.NumPapers() != 3 || d.NumAuthors() != 3 {
		t.Error("counters wrong")
	}
}

func TestRefsByAuthor(t *testing.T) {
	d := tiny()
	groups := d.RefsByAuthor()
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if g := groups[0]; len(g) != 2 || g[0] != 0 || g[1] != 2 {
		t.Errorf("author 0 group = %v", g)
	}
}

func TestRoundTrip(t *testing.T) {
	d := tiny()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if d2.Name != d.Name {
		t.Errorf("name %q != %q", d2.Name, d.Name)
	}
	if len(d2.Refs) != len(d.Refs) || len(d2.Papers) != len(d.Papers) {
		t.Fatalf("sizes differ after round trip")
	}
	for i := range d.Refs {
		if d.Refs[i] != d2.Refs[i] {
			t.Errorf("ref %d: %+v != %+v", i, d.Refs[i], d2.Refs[i])
		}
	}
	for i := range d.Papers {
		if d.Papers[i].Title != d2.Papers[i].Title || d.Papers[i].Year != d2.Papers[i].Year {
			t.Errorf("paper %d differs", i)
		}
		if len(d.Papers[i].Cites) != len(d2.Papers[i].Cites) {
			t.Errorf("paper %d cites differ", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"X\tfoo\n",                    // unknown record
		"P\tonly-two-fields\n",        // bad P arity
		"P\ttitle\tnotyear\t-\n",      // bad year
		"R\t0\t0\tname\n",             // ref before any paper
		"P\tt\t2000\t-\nR\t5\t0\tx\n", // ref to unknown paper
		"P\tt\t2000\tbad\n",           // bad citation list
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# dataset x\n\n# a comment\nP\tt\t2000\t-\nR\t0\t0\tAlice Smith\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if d.Name != "x" || len(d.Refs) != 1 || d.Refs[0].Name != "Alice Smith" {
		t.Errorf("parsed dataset wrong: %+v", d)
	}
}
