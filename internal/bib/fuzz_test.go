package bib

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: arbitrary input must never panic, and any dataset that
// parses must validate and round-trip.
func FuzzRead(f *testing.F) {
	f.Add("# dataset x\nP\tt\t2000\t-\nR\t0\t0\tAlice Smith\n")
	f.Add("P\ttitle\t1999\t0,1\n")
	f.Add("R\t0\t0\tname\n")
	f.Add("")
	f.Add("# dataset y\nP\ta\t1\t-\nP\tb\t2\t0\nR\t1\t5\tX Y\nR\t0\t5\tX Z\n")
	f.Add("P\tt\t2000\t-\nR\t0\t-1\tn\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Read returned an invalid dataset: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("Write of parsed dataset failed: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(d2.Refs) != len(d.Refs) || len(d2.Papers) != len(d.Papers) {
			t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
				len(d.Refs), len(d.Papers), len(d2.Refs), len(d2.Papers))
		}
	})
}
