package similarity

import "strings"

// Level is the discretized similarity bucket used by the matchers, as in
// Appendix B of the paper: similar(e1, e2, score) with score ∈ {1, 2, 3},
// 3 being the strongest. Level 0 means "not similar" — the pair is not a
// matching candidate at all.
type Level int

const (
	// LevelNone marks pairs that are not similarity candidates.
	LevelNone Level = 0
	// LevelWeak is weak string evidence (needs strong relational support).
	LevelWeak Level = 1
	// LevelMedium is medium string evidence (needs some relational support).
	LevelMedium Level = 2
	// LevelStrong is strong string evidence (sufficient on its own).
	LevelStrong Level = 3
)

// Name is a parsed author name. First may be a single letter when the
// source reference abbreviates the first name ("V. Rastogi").
type Name struct {
	First string // lowercase, no punctuation; possibly a single initial
	Last  string // lowercase, no punctuation
}

// ParseName splits a raw author string of the form "First Last",
// "F. Last" or "Last" into a Name. Everything before the final token is
// treated as the first/middle name block.
func ParseName(raw string) Name {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '.', ',':
			return ' '
		}
		return r
	}, strings.ToLower(raw))
	fields := strings.Fields(clean)
	switch len(fields) {
	case 0:
		return Name{}
	case 1:
		return Name{Last: fields[0]}
	default:
		return Name{
			First: strings.Join(fields[:len(fields)-1], " "),
			Last:  fields[len(fields)-1],
		}
	}
}

// Abbreviated reports whether the first name block is a bare initial.
func (n Name) Abbreviated() bool {
	return len(n.First) == 1
}

// String renders the name back to "first last" form.
func (n Name) String() string {
	if n.First == "" {
		return n.Last
	}
	return n.First + " " + n.Last
}

// Discretization thresholds. These play the role of the paper's
// discretization of Jaro-Winkler scores into {1,2,3}; the cut points
// were chosen so that (a) only *identical* spelled-out names are Level 3
// (sufficient evidence on their own), (b) typo-distance full-name matches
// are Level 2 (they need relational support), and (c) initial-vs-full
// matches are at most Level 2 — properties (b) and (c) are what make
// noisy (DBLP-like) and abbreviated (HEPTH-like) corpora require
// collective relational evidence, as §6.1 of the paper describes.
const (
	fullMediumThreshold = 0.85
	fullWeakThreshold   = 0.76
	lastMediumThreshold = 0.92
	lastWeakThreshold   = 0.82
	firstCompatibility  = 0.72
)

// NameLevel discretizes the similarity of two parsed names into a Level.
//
// When both first names are spelled out, the level is driven by the
// Jaro-Winkler similarity of the full name strings. When either side is
// abbreviated, the initials must agree and the level is driven by the
// last-name similarity, capped at LevelMedium: an initial can never be
// strong evidence on its own, because "V. Rastogi" may be any author
// whose first name starts with V.
func NameLevel(a, b Name) Level {
	if a.Last == "" || b.Last == "" {
		return LevelNone
	}
	if a.Abbreviated() || b.Abbreviated() {
		if a.First != "" && b.First != "" && a.First[0] != b.First[0] {
			return LevelNone
		}
		ls := JaroWinkler(a.Last, b.Last)
		switch {
		case ls >= lastMediumThreshold:
			return LevelMedium
		case ls >= lastWeakThreshold:
			return LevelWeak
		default:
			return LevelNone
		}
	}
	// Identical spelled-out names are the only Level-3 evidence.
	if a == b {
		return LevelStrong
	}
	s := JaroWinkler(a.String(), b.String())
	// Guard against first or last names that disagree wholesale even
	// though the combined string happens to score well ("John Smith" vs
	// "Jane Smith" shares most of its characters but is no candidate).
	if JaroWinkler(a.Last, b.Last) < lastWeakThreshold {
		return LevelNone
	}
	if a.First != "" && b.First != "" && JaroWinkler(a.First, b.First) < firstCompatibility {
		return LevelNone
	}
	switch {
	case s >= fullMediumThreshold:
		return LevelMedium
	case s >= fullWeakThreshold:
		return LevelWeak
	default:
		return LevelNone
	}
}

// StringLevel parses both raw strings and discretizes their similarity.
func StringLevel(a, b string) Level {
	return NameLevel(ParseName(a), ParseName(b))
}
