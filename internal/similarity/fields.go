package similarity

import (
	"strconv"
	"strings"
)

// Typed-field kernels for non-bibliographic domains. A record in such a
// domain carries several named fields (name, street, zip, …) packed into
// one composite key separated by FieldSep; the declarative rule language
// (internal/rules/lang) addresses the fields by name and compares them
// with the kernels below, which are thin normalizing wrappers over the
// package's string measures plus a numeric comparator. Keeping them here
// gives every domain one set of measures with one set of parity tests.

// FieldSep separates fields inside a composite record key:
// "ann smith | 12 oak st | 94110 | 555-0101".
const FieldSep = "|"

// SplitFields splits a composite key on FieldSep, trimming surrounding
// whitespace from each field. Empty fields are preserved positionally so
// indices line up with the domain's field declaration.
func SplitFields(key string) []string {
	parts := strings.Split(key, FieldSep)
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	return parts
}

// JoinFields renders fields back into a composite key. It is the inverse
// of SplitFields for fields that are trimmed and FieldSep-free.
func JoinFields(fields []string) string {
	return strings.Join(fields, " "+FieldSep+" ")
}

// NormalizeField canonicalizes one field payload the same way ParseName
// canonicalizes author names: lowercase, '.' and ',' mapped to spaces,
// whitespace runs collapsed to single spaces, ends trimmed.
func NormalizeField(s string) string {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '.', ',':
			return ' '
		}
		return r
	}, strings.ToLower(s))
	return strings.Join(strings.Fields(clean), " ")
}

// FieldEqual reports normalized equality of two non-empty fields. Two
// empty fields are NOT equal: absence of a value is no evidence.
func FieldEqual(a, b string) bool {
	na, nb := NormalizeField(a), NormalizeField(b)
	return na != "" && na == nb
}

// FieldDiffer reports that both fields are present and normalize to
// different values — the hard-inequality predicate of the rule language.
func FieldDiffer(a, b string) bool {
	na, nb := NormalizeField(a), NormalizeField(b)
	return na != "" && nb != "" && na != nb
}

// FieldJaro is Jaro-Winkler over normalized fields.
func FieldJaro(a, b string) float64 {
	return JaroWinkler(NormalizeField(a), NormalizeField(b))
}

// FieldQGram is q-gram Jaccard (q = 2) over normalized fields.
func FieldQGram(a, b string) float64 {
	return QGramJaccard(NormalizeField(a), NormalizeField(b), 2)
}

// FieldLev is Levenshtein edit distance over normalized fields.
func FieldLev(a, b string) int {
	return Levenshtein(NormalizeField(a), NormalizeField(b))
}

// ParseNumber parses a field as a finite decimal number. Leading and
// trailing whitespace is ignored; anything else non-numeric fails.
func ParseNumber(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v != v || v > 1e308 || v < -1e308 {
		return 0, false
	}
	return v, true
}

// AbsDiff returns |a−b| for two numeric fields. ok is false when either
// side does not parse as a number, in which case the comparison predicate
// simply does not hold (missing data is no evidence).
func AbsDiff(a, b string) (float64, bool) {
	va, okA := ParseNumber(a)
	vb, okB := ParseNumber(b)
	if !okA || !okB {
		return 0, false
	}
	d := va - vb
	if d < 0 {
		d = -d
	}
	return d, true
}
