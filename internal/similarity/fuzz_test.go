package similarity

import "testing"

// FuzzStringLevel: arbitrary name strings must never panic, levels stay
// in range, and the relation is symmetric with identical inputs strong
// or none (empty).
func FuzzStringLevel(f *testing.F) {
	f.Add("Vibhor Rastogi", "V. Rastogi")
	f.Add("", "x")
	f.Add("a b c d e", "A.B.")
	f.Add("ü垃圾", "ü垃圾")
	f.Fuzz(func(t *testing.T, a, b string) {
		la := StringLevel(a, b)
		if la < LevelNone || la > LevelStrong {
			t.Fatalf("level out of range: %d", la)
		}
		if lb := StringLevel(b, a); lb != la {
			t.Fatalf("asymmetric: %q/%q -> %d vs %d", a, b, la, lb)
		}
	})
}

// FuzzJaro: scores stay in [0,1] and the measure is symmetric.
func FuzzJaro(f *testing.F) {
	f.Add("martha", "marhta")
	f.Add("", "")
	f.Add("aaaa", "aaab")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 256 || len(b) > 256 {
			return
		}
		s := JaroWinkler(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("JaroWinkler(%q,%q) = %v out of range", a, b, s)
		}
		if s2 := JaroWinkler(b, a); s2 != s {
			// Winkler prefix is symmetric; Jaro itself is too.
			t.Fatalf("asymmetric: %v vs %v", s, s2)
		}
	})
}
