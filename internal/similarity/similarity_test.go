package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "a", 1},
		{"abc", "abc", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abc", "xyz", 0},
		// Classic textbook examples.
		{"martha", "marhta", 0.944444444444444},
		{"dixon", "dicksonx", 0.766666666666667},
		{"jellyfish", "smellyfish", 0.896296296296296},
	}
	for _, c := range cases {
		got := Jaro(c.a, c.b)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaro(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	// martha/marhta share prefix "mar" (3), jaro = 0.9444..
	want := 0.944444444444444 + 3*0.1*(1-0.944444444444444)
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-want) > 1e-12 {
		t.Errorf("JaroWinkler(martha,marhta) = %v, want %v", got, want)
	}
	if got := JaroWinkler("abc", "abc"); !almostEqual(got, 1) {
		t.Errorf("identical strings must score 1, got %v", got)
	}
}

func TestJaroSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		return almostEqual(Jaro(a, b), Jaro(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaroRange(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaroIdentity(t *testing.T) {
	f := func(a string) bool { return almostEqual(Jaro(a, a), 1) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"saturday", "sunday", 3},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	sym := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("symmetry:", err)
	}
	bounded := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d := Levenshtein(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("bounds:", err)
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := LevenshteinSimilarity("", ""); !almostEqual(got, 1) {
		t.Errorf("empty/empty = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("abcd", "abcd"); !almostEqual(got, 1) {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("abcd", "wxyz"); !almostEqual(got, 0) {
		t.Errorf("disjoint = %v, want 0", got)
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("abab", 2)
	if g["ab"] != 2 || g["ba"] != 1 || len(g) != 2 {
		t.Errorf("QGrams(abab,2) = %v", g)
	}
	g = QGrams("a", 2) // shorter than q: whole string
	if g["a"] != 1 || len(g) != 1 {
		t.Errorf("QGrams(a,2) = %v", g)
	}
	if len(QGrams("", 2)) != 0 {
		t.Error("QGrams of empty string must be empty")
	}
	if len(QGrams("abc", 0)) != 0 {
		t.Error("QGrams with q<=0 must be empty")
	}
}

func TestQGramJaccard(t *testing.T) {
	if got := QGramJaccard("abc", "abc", 2); !almostEqual(got, 1) {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := QGramJaccard("abc", "xyz", 2); !almostEqual(got, 0) {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := QGramJaccard("", "", 2); !almostEqual(got, 1) {
		t.Errorf("empty/empty = %v, want 1", got)
	}
	if got := QGramJaccard("abc", "", 2); !almostEqual(got, 0) {
		t.Errorf("abc/empty = %v, want 0", got)
	}
	f := func(a, b string) bool {
		s := QGramJaccard(a, b, 2)
		return s >= 0 && s <= 1 && almostEqual(s, QGramJaccard(b, a, 2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTokenSet(t *testing.T) {
	got := TokenSet("  Vibhor  RASTOGI vibhor ")
	if len(got) != 2 || got[0] != "vibhor" || got[1] != "rastogi" {
		t.Errorf("TokenSet = %v", got)
	}
	if len(TokenSet("")) != 0 {
		t.Error("TokenSet of empty string must be empty")
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		raw   string
		first string
		last  string
	}{
		{"Vibhor Rastogi", "vibhor", "rastogi"},
		{"V. Rastogi", "v", "rastogi"},
		{"Rastogi", "", "rastogi"},
		{"Minos N. Garofalakis", "minos n", "garofalakis"},
		{"", "", ""},
	}
	for _, c := range cases {
		n := ParseName(c.raw)
		if n.First != c.first || n.Last != c.last {
			t.Errorf("ParseName(%q) = %+v, want {%q %q}", c.raw, n, c.first, c.last)
		}
	}
	if !ParseName("V. Rastogi").Abbreviated() {
		t.Error("V. Rastogi must parse as abbreviated")
	}
	if ParseName("Vibhor Rastogi").Abbreviated() {
		t.Error("Vibhor Rastogi must not parse as abbreviated")
	}
}

func TestNameLevel(t *testing.T) {
	cases := []struct {
		a, b string
		want Level
	}{
		// Identical full names: strong.
		{"Vibhor Rastogi", "Vibhor Rastogi", LevelStrong},
		// Small typo in full name: medium — needs relational support.
		{"Vibhor Rastogi", "Vibhor Rastogy", LevelMedium},
		// Abbreviated vs full with matching initial: capped at medium.
		{"V. Rastogi", "Vibhor Rastogi", LevelMedium},
		// Two identical abbreviated refs: still ambiguous, medium.
		{"V. Rastogi", "V. Rastogi", LevelMedium},
		// Mismatching initials: none.
		{"K. Rastogi", "Vibhor Rastogi", LevelNone},
		// Unrelated names: none.
		{"Vibhor Rastogi", "Nilesh Dalvi", LevelNone},
		// Same last name, different full first names: weak at most.
		{"John Smith", "Jane Smith", LevelNone},
	}
	for _, c := range cases {
		if got := StringLevel(c.a, c.b); got != c.want {
			t.Errorf("StringLevel(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNameLevelSymmetric(t *testing.T) {
	names := []string{
		"Vibhor Rastogi", "V. Rastogi", "Nilesh Dalvi", "N. Dalvi",
		"Minos Garofalakis", "M. Garofalakis", "Vikram Rastogi",
		"Pedro Domingos", "P. Domingos", "Parag Singla",
	}
	for _, a := range names {
		for _, b := range names {
			if StringLevel(a, b) != StringLevel(b, a) {
				t.Errorf("asymmetric level for %q / %q", a, b)
			}
		}
	}
}

func TestAbbreviatedNeverStrong(t *testing.T) {
	// Property: any comparison involving an abbreviated name is at most
	// LevelMedium — this is what forces collective evidence on HEPTH.
	names := []string{"rastogi", "dalvi", "garofalakis", "smith", "domingos"}
	letters := "vnmpjk"
	for _, last := range names {
		for i := range letters {
			a := Name{First: letters[i : i+1], Last: last}
			for _, last2 := range names {
				b := Name{First: "vibhor", Last: last2}
				if NameLevel(a, b) > LevelMedium {
					t.Errorf("NameLevel(%v,%v) exceeds medium", a, b)
				}
			}
		}
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("vibhor rastogi", "vibhor rastogy")
	}
}

func BenchmarkStringLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StringLevel("V. Rastogi", "Vibhor Rastogi")
	}
}
