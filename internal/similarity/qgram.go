package similarity

import "strings"

// QGrams returns the multiset of q-grams of s as a map from gram to count.
// Strings shorter than q yield a single gram equal to the whole string,
// so that very short names still participate in gram-based indexing.
func QGrams(s string, q int) map[string]int {
	out := make(map[string]int)
	if q <= 0 {
		return out
	}
	if len(s) < q {
		if len(s) > 0 {
			out[s]++
		}
		return out
	}
	for i := 0; i+q <= len(s); i++ {
		out[s[i:i+q]]++
	}
	return out
}

// QGramJaccard returns the Jaccard similarity of the q-gram *sets* of a
// and b in [0, 1]. It is the cheap similarity used to build canopies.
func QGramJaccard(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if _, ok := gb[g]; ok {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

// TokenSet splits s on whitespace, lowercases each token and returns the
// distinct tokens. Used by the canopy index to key author names.
func TokenSet(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	seen := make(map[string]bool, len(fields))
	out := fields[:0]
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}
