package similarity

import (
	"reflect"
	"testing"
)

func TestSplitJoinFields(t *testing.T) {
	cases := []struct {
		key  string
		want []string
	}{
		{"ann smith | 12 oak st | 94110 | 555-0101", []string{"ann smith", "12 oak st", "94110", "555-0101"}},
		{"solo", []string{"solo"}},
		{"a||b", []string{"a", "", "b"}},
		{"  padded  |x", []string{"padded", "x"}},
	}
	for _, tc := range cases {
		got := SplitFields(tc.key)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitFields(%q) = %v, want %v", tc.key, got, tc.want)
		}
		if again := SplitFields(JoinFields(got)); !reflect.DeepEqual(again, got) {
			t.Errorf("join/split roundtrip of %v changed: %v", got, again)
		}
	}
}

func TestNormalizeField(t *testing.T) {
	cases := [][2]string{
		{"  Oak   St.  ", "oak st"},
		{"St, Mary", "st mary"},
		{"94110", "94110"},
		{"", ""},
		{"...", ""},
	}
	for _, c := range cases {
		if got := NormalizeField(c[0]); got != c[1] {
			t.Errorf("NormalizeField(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestFieldPredicates(t *testing.T) {
	if !FieldEqual("Oak St.", "oak   st") {
		t.Error("normalized variants should be equal")
	}
	if FieldEqual("", "") || FieldEqual(" . ", ",") {
		t.Error("empty fields must not count as equal")
	}
	if !FieldDiffer("94110", "94121") {
		t.Error("distinct zips should differ")
	}
	if FieldDiffer("94110", "") || FieldDiffer("", "") {
		t.Error("a missing field is never evidence of difference")
	}
}

func TestParseNumberAndAbsDiff(t *testing.T) {
	if v, ok := ParseNumber(" 41.5 "); !ok || v != 41.5 {
		t.Errorf("ParseNumber(41.5) = %v, %v", v, ok)
	}
	for _, bad := range []string{"", "12 oak", "NaN", "Inf", "1e400"} {
		if _, ok := ParseNumber(bad); ok {
			t.Errorf("ParseNumber(%q) accepted", bad)
		}
	}
	if d, ok := AbsDiff("30", "41.5"); !ok || d != 11.5 {
		t.Errorf("AbsDiff = %v, %v", d, ok)
	}
	if _, ok := AbsDiff("30", "elm"); ok {
		t.Error("AbsDiff with a non-number must not hold")
	}
}

// FuzzFieldKernels: the typed-field kernels must agree exactly with the
// underlying measures applied to normalized payloads (parity), and keep
// the measures' own invariants: symmetry, range, and identity.
func FuzzFieldKernels(f *testing.F) {
	f.Add("Ann Smith", "ann smith")
	f.Add("12 Oak St.", "12 oak street")
	f.Add("", "94110")
	f.Add("41.5", "30")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 256 || len(b) > 256 {
			return
		}
		na, nb := NormalizeField(a), NormalizeField(b)
		if j := FieldJaro(a, b); j != JaroWinkler(na, nb) || j < 0 || j > 1 || j != FieldJaro(b, a) {
			t.Fatalf("FieldJaro parity broken on %q/%q", a, b)
		}
		if q := FieldQGram(a, b); q != QGramJaccard(na, nb, 2) || q < 0 || q > 1 || q != FieldQGram(b, a) {
			t.Fatalf("FieldQGram parity broken on %q/%q", a, b)
		}
		if l := FieldLev(a, b); l != Levenshtein(na, nb) || l < 0 || l != FieldLev(b, a) {
			t.Fatalf("FieldLev parity broken on %q/%q", a, b)
		}
		if FieldEqual(a, b) {
			if FieldDiffer(a, b) || FieldJaro(a, b) != 1 || FieldLev(a, b) != 0 {
				t.Fatalf("equal fields disagree with kernels: %q/%q", a, b)
			}
		}
		if d, ok := AbsDiff(a, b); ok {
			d2, ok2 := AbsDiff(b, a)
			if !ok2 || d2 != d || d < 0 {
				t.Fatalf("AbsDiff asymmetric on %q/%q", a, b)
			}
		}
		if na != "" && !FieldEqual(a, a) {
			t.Fatalf("FieldEqual not reflexive on %q", a)
		}
	})
}
