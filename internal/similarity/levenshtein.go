package similarity

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-character insertions, deletions and substitutions that
// transform a into b. It runs in O(len(a)·len(b)) time and O(min) space.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// prev[j] = distance between a[:i] and b[:j] from previous row.
	prev := make([]int, len(a)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(b); i++ {
		cur := i
		diag := prev[0] // prev[j-1] before overwrite
		prev[0] = i
		for j := 1; j <= len(a); j++ {
			cost := 1
			if b[i-1] == a[j-1] {
				cost = 0
			}
			next := diag + cost
			if v := cur + 1; v < next {
				next = v
			}
			if v := prev[j] + 1; v < next {
				next = v
			}
			diag = prev[j]
			prev[j] = next
			cur = next
		}
	}
	return prev[len(a)]
}

// LevenshteinSimilarity normalizes the edit distance into a similarity in
// [0, 1]: 1 - dist/max(len(a), len(b)). Two empty strings have similarity 1.
func LevenshteinSimilarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(max(len(a), len(b)))
}
