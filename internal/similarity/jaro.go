// Package similarity implements the string-similarity measures used by the
// entity matchers: Jaro, Jaro-Winkler (the measure the paper's Appendix B
// uses for author names), Levenshtein, and q-gram Jaccard, plus the
// discretization of Jaro-Winkler scores into the similarity buckets
// {1, 2, 3} that the MLN and RULES matchers consume.
package similarity

// Jaro returns the Jaro similarity of a and b in [0, 1].
// It is 1 for identical strings and 0 for strings with no common
// characters (or when either string is empty and the other is not).
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	// Match window: characters match if equal and within window distance.
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// winklerPrefixScale is the standard Winkler prefix scaling factor.
const winklerPrefixScale = 0.1

// winklerMaxPrefix is the maximum common-prefix length rewarded by Winkler.
const winklerMaxPrefix = 4

// JaroWinkler returns the Jaro-Winkler similarity of a and b in [0, 1],
// boosting the Jaro score by up to 0.4·(1-jaro) for a shared prefix of up
// to four characters. This is the measure Appendix B of the paper uses to
// score author-name pairs.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < winklerMaxPrefix && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*winklerPrefixScale*(1-j)
}
