package mln

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/similarity"
)

// Weights are the MLN rule weights. Default values are the learned
// weights the paper reports in Appendix B.
type Weights struct {
	Sim1     float64 // similar(e1,e2,1) ⇒ equals
	Sim2     float64 // similar(e1,e2,2) ⇒ equals
	Sim3     float64 // similar(e1,e2,3) ⇒ equals
	Coauthor float64 // coauthor-support rule; must be ≥ 0 for supermodularity

	// SelfCite weights the optional citation rule — an extension
	// exercising Example 1's Cites relation, not part of the paper's
	// Appendix B program (default 0 = disabled):
	//
	//	similar(e1,e2,_) ∧ cites(paper(e1), paper(e2)) ⇒ equals(e1,e2)
	//
	// capturing that authors disproportionately cite their own earlier
	// work. The feature is unary (it never couples two match variables),
	// so any weight preserves supermodularity.
	SelfCite float64

	// TieEps is the per-pair inclusion bonus realizing Definition 5's
	// "largest most-likely set" tie-break. It must be far smaller than
	// the smallest non-zero weight combination (weights have two
	// decimals, so any real score difference is ≥ 0.01).
	TieEps float64
}

// PaperWeights returns the Appendix B learned weights.
func PaperWeights() Weights {
	return Weights{Sim1: -2.28, Sim2: -3.84, Sim3: 12.75, Coauthor: 2.46, TieEps: 1e-9}
}

func (w Weights) sim(l similarity.Level) float64 {
	switch l {
	case similarity.LevelWeak:
		return w.Sim1
	case similarity.LevelMedium:
		return w.Sim2
	case similarity.LevelStrong:
		return w.Sim3
	default:
		return 0
	}
}

// Validate reports weight configurations that break the matcher's
// theoretical guarantees.
func (w Weights) Validate() error {
	if w.Coauthor < 0 {
		return fmt.Errorf("mln: negative coauthor weight %v breaks supermodularity", w.Coauthor)
	}
	if w.TieEps < 0 || w.TieEps > 1e-3 {
		return fmt.Errorf("mln: TieEps %v out of sane range (0, 1e-3]", w.TieEps)
	}
	return nil
}

// interEdge is one interaction partner of a candidate pair: matching
// pairs[other] contributes count coauthor-rule groundings to this pair.
type interEdge struct {
	other int32
	count int32
}

// Matcher is the ground MLN over one dataset's candidate pairs. It
// implements core.Matcher, core.Probabilistic, core.ConditionalDecider
// and core.ScopePreparer. The model (pairs, weights, interactions) is
// immutable after construction; Match uses only pooled per-call state
// and the matcher is safe for concurrent use.
type Matcher struct {
	w        Weights
	pairs    []core.Pair
	idOf     map[core.PairKey]int32
	level    []similarity.Level
	reflex   []int32 // reflexive coauthor groundings per pair (both roles)
	selfCite []int8  // 1 when the pair's papers cite each other (extension)
	unary    []float64
	adj      [][]interEdge
	pairsOf  [][]int32 // entity -> ids of candidate pairs touching it
	n        int       // number of entities

	// scopes caches per-neighborhood skeletons for the prepared cover
	// (core.ScopePreparer); wsPool recycles per-call workspaces with
	// dense evidence views. See scope.go.
	scopes atomic.Pointer[coverScopes]
	wsPool sync.Pool

	// Verdict-memo state (see memo.go): memoOff disables the layer for
	// differential tests; the counters back core.CacheReporter.
	memoOff     bool
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheInvals atomic.Int64
}

// Candidate is one match variable: a reference pair with its discretized
// similarity level.
type Candidate struct {
	Pair  core.Pair
	Level similarity.Level
}

// New grounds the MLN for a dataset over the given candidate pairs
// (typically canopy.CandidatePairs of a total cover). Groundings of the
// coauthor rule are precomputed: for each candidate pair p = (e1, e2) and
// each (c1, c2) ∈ N(e1) × N(e2) of the Coauthor graph, the rule fires
// once per role assignment — twice per combination — when (c1, c2) is
// matched, and c1 = c2 (the trivial reflexivity match of §2.1) yields a
// constant unary bonus.
func New(d *bib.Dataset, cands []Candidate, w Weights) (*Matcher, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	m := &Matcher{
		w:        w,
		pairs:    make([]core.Pair, len(cands)),
		idOf:     make(map[core.PairKey]int32, len(cands)),
		level:    make([]similarity.Level, len(cands)),
		reflex:   make([]int32, len(cands)),
		selfCite: make([]int8, len(cands)),
		unary:    make([]float64, len(cands)),
		adj:      make([][]interEdge, len(cands)),
		pairsOf:  make([][]int32, d.NumRefs()),
		n:        d.NumRefs(),
	}
	for i, c := range cands {
		if !c.Pair.Valid() {
			return nil, fmt.Errorf("mln: invalid candidate pair %v", c.Pair)
		}
		if _, dup := m.idOf[c.Pair.Key()]; dup {
			return nil, fmt.Errorf("mln: duplicate candidate pair %v", c.Pair)
		}
		m.pairs[i] = c.Pair
		m.idOf[c.Pair.Key()] = int32(i)
		m.level[i] = c.Level
		m.pairsOf[c.Pair.A] = append(m.pairsOf[c.Pair.A], int32(i))
		m.pairsOf[c.Pair.B] = append(m.pairsOf[c.Pair.B], int32(i))
	}
	co := d.Coauthor()
	cites := citesIndex(d)
	// The O(deg²) coauthor loop collects interaction partners into a
	// reusable scratch slice and merges duplicates by a sort + run-length
	// pass — no per-pair map allocation, clearing, or rehashing. Each
	// (c1, c2) combination fires the rule twice (two role assignments), so
	// a run of length r becomes count 2r; sorting keeps adj ascending by
	// partner id, identical to the old map+sort construction.
	var scratch []int32
	for i := range m.pairs {
		p := m.pairs[i]
		scratch = scratch[:0]
		reflex := 0
		for _, c1 := range co.Neighbors(p.A) {
			for _, c2 := range co.Neighbors(p.B) {
				if c1 == c2 {
					reflex++
					continue
				}
				if j, ok := m.idOf[core.MakePair(c1, c2).Key()]; ok && int(j) != i {
					scratch = append(scratch, j)
				}
			}
		}
		m.reflex[i] = int32(2 * reflex)
		// Self-citation groundings (extension; zero-weight by default).
		pa, pb := d.Refs[p.A].Paper, d.Refs[p.B].Paper
		if cites[[2]int32{pa, pb}] || cites[[2]int32{pb, pa}] {
			m.selfCite[i] = 1
		}
		if len(scratch) > 0 {
			slices.Sort(scratch)
			edges := make([]interEdge, 0, len(scratch))
			for k := 0; k < len(scratch); {
				run := k + 1
				for run < len(scratch) && scratch[run] == scratch[k] {
					run++
				}
				edges = append(edges, interEdge{other: scratch[k], count: int32(2 * (run - k))})
				k = run
			}
			m.adj[i] = edges
		}
	}
	m.applyWeights()
	m.wsPool.New = func() any { return newWorkspace(len(m.pairs), m.n) }
	return m, nil
}

// applyWeights recomputes the unary vector from the current weights.
func (m *Matcher) applyWeights() {
	for i := range m.pairs {
		m.unary[i] = m.w.sim(m.level[i]) +
			m.w.Coauthor*float64(m.reflex[i]) +
			m.w.SelfCite*float64(m.selfCite[i])
	}
}

// citesIndex builds a set of directed (citing, cited) paper pairs.
func citesIndex(d *bib.Dataset) map[[2]int32]bool {
	idx := map[[2]int32]bool{}
	for p := range d.Papers {
		for _, c := range d.Papers[p].Cites {
			idx[[2]int32{int32(p), c}] = true
		}
	}
	return idx
}

// SetWeights replaces the rule weights and recomputes the ground model.
// Used by the weight learner between perceptron updates. NOT safe for
// concurrent use with Match; a Matcher is immutable once handed to the
// schemes.
func (m *Matcher) SetWeights(w Weights) error {
	if err := w.Validate(); err != nil {
		return err
	}
	m.w = w
	m.applyWeights()
	m.invalidateMemos() // skeletons are weight-independent; verdicts are not
	return nil
}

// CurrentWeights returns the active rule weights.
func (m *Matcher) CurrentWeights() Weights { return m.w }

// NumPairs returns the number of ground match variables ("matching
// decisions" in the paper's counting).
func (m *Matcher) NumPairs() int { return len(m.pairs) }

// Pairs returns all candidate pairs (aliases internal storage).
func (m *Matcher) Pairs() []core.Pair { return m.pairs }

// Level returns the similarity level of a candidate pair, or LevelNone.
func (m *Matcher) Level(p core.Pair) similarity.Level {
	if id, ok := m.idOf[p.Key()]; ok {
		return m.level[id]
	}
	return similarity.LevelNone
}

// Candidates implements core.Matcher. For neighborhoods of a prepared
// cover (core.ScopePreparer) the answer is the skeleton's cached slice —
// callers must treat it as read-only.
func (m *Matcher) Candidates(entities []core.EntityID) []core.Pair {
	if sc := m.scopeFor(entities); sc != nil {
		return sc.pairs
	}
	ids := m.scopedIDs(entities)
	out := make([]core.Pair, len(ids))
	for i, id := range ids {
		out[i] = m.pairs[id]
	}
	return out
}

// scopedIDs returns the ids of candidate pairs with both endpoints in the
// entity set, in ascending id order.
func (m *Matcher) scopedIDs(entities []core.EntityID) []int32 {
	in := make(map[core.EntityID]bool, len(entities))
	for _, e := range entities {
		in[e] = true
	}
	var ids []int32
	for _, e := range entities {
		for _, id := range m.pairsOf[e] {
			p := m.pairs[id]
			if p.A == e && in[p.B] { // dedupe: count a pair at its A endpoint
				ids = append(ids, id)
			}
		}
	}
	slices.Sort(ids)
	return ids
}

// Match implements core.Matcher: exact conditional MAP inference over the
// candidate pairs inside the entity set. Evidence semantics follow §3.2:
// pos pairs are conditioned true (in or out of scope — an out-of-scope
// matched coauthor pair contributes its groundings as a unary bonus),
// neg pairs are conditioned false.
//
// On prepared cover neighborhoods the call first consults the scope's
// verdict memo (memo.go): when the read-set fingerprint matches the
// cached entry, the cached match set is returned without building or
// solving the submodel — provably the set recomputation would produce.
func (m *Matcher) Match(entities []core.EntityID, pos, neg core.PairSet) core.PairSet {
	ws := m.getWS()
	defer m.putWS(ws)
	sc := m.scopeOf(entities, ws)
	memoKey := m.memoKey(sc, pos, neg, ws)
	if memoKey != nil {
		if out, ok := m.memoMatch(sc, memoKey); ok {
			return out
		}
	}
	lm := m.buildLocal(sc, pos, neg, ws)
	out := lm.out
	if len(lm.free) > 0 {
		if cap(ws.x) < len(lm.free) {
			ws.x = make([]bool, len(lm.free))
		}
		x := ws.x[:len(lm.free)]
		solveMAPInto(lm.eff, lm.edges, x)
		for fi, id := range lm.free {
			if x[fi] {
				out.Add(m.pairs[id])
			}
		}
	}
	if memoKey != nil {
		m.memoStoreMatch(sc, memoKey, out)
	}
	return out
}

var (
	_ core.Matcher            = (*Matcher)(nil)
	_ core.Probabilistic      = (*Matcher)(nil)
	_ core.ConditionalDecider = (*Matcher)(nil)
)
