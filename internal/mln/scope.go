package mln

import (
	"slices"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/unionfind"
)

// This file implements the matcher's side of core.ScopePreparer: the
// cover and the ground model are immutable for a whole run — only
// evidence grows — so everything that depends on (model, neighborhood)
// alone is computed once per cover and reused by every Match /
// Candidates / MaximalMessages call. Per-call state (the evidence
// translation and solver inputs) lives in pooled workspaces holding a
// dense state vector indexed by candidate-pair id, so all scoring and
// conditioning inside a call is O(1) slice indexing instead of hashed
// set lookups.

// scopeEdge is one in-scope interaction of a neighborhood skeleton:
// scoped pairs at positions pi < pj interact with `count` coauthor
// groundings. Weights are derived at use time (w.Coauthor may change via
// SetWeights), so skeletons never go stale.
type scopeEdge struct {
	pi, pj int32
	count  int32
}

// boundaryEdge is an interaction from scoped position pi to the
// out-of-scope candidate pair `other` (a global pair id): when `other`
// is matched in the evidence, the free variable at pi receives the full
// grounding weight as a unary bonus.
type boundaryEdge struct {
	pi    int32
	other int32
	count int32
}

// scope is the prebuilt skeleton of one neighborhood: scoped candidate
// ids (ascending), their Pair forms (the cached Candidates answer), the
// local interaction list and the out-of-scope boundary. ents pins the
// entity membership the skeleton was built from (a private copy — never
// an alias of the cover's slice), so lookups can verify a key collision
// away; memo holds the scope's last verdict (see memo.go).
type scope struct {
	ids      []int32
	pairs    []core.Pair
	edges    []scopeEdge
	boundary []boundaryEdge
	ents     []core.EntityID
	memo     atomic.Pointer[scopeMemo]
}

// scopeKey identifies a cover neighborhood by the identity of its entity
// slice — the schedulers pass Cover.Sets[id] through unchanged, so the
// backing array's first element plus the length pin the neighborhood
// without hashing its contents.
type scopeKey struct {
	first *core.EntityID
	n     int
}

// coverScopes is the product of PrepareCover for one cover.
type coverScopes struct {
	cover *core.Cover
	byKey map[scopeKey]*scope
}

// PrepareCover implements core.ScopePreparer: precompute every
// neighborhood's skeleton. Idempotent per cover; a different cover
// replaces the previous preparation atomically, so concurrent Match
// calls are safe either way (they fall back to the ephemeral path when
// their entity slice is unknown).
func (m *Matcher) PrepareCover(c *core.Cover) {
	if cs := m.scopes.Load(); cs != nil && cs.cover == c {
		return
	}
	ws := m.getWS()
	defer m.putWS(ws)
	cs := &coverScopes{cover: c, byKey: make(map[scopeKey]*scope, c.Len())}
	for _, set := range c.Sets {
		if len(set) == 0 {
			continue
		}
		sc := &scope{}
		m.buildScope(set, ws, sc)
		sc.ents = slices.Clone(set)
		cs.byKey[scopeKey{&set[0], len(set)}] = sc
	}
	m.scopes.Store(cs)
}

// scopeFor returns the prepared skeleton for a cover neighborhood, or
// nil when the entity slice is not part of the prepared cover. The
// identity key is only a fast index: a slice whose backing array was
// recycled by a cover rebuild can collide with a prior neighborhood's
// key (same first-element address, same length, different membership),
// so the skeleton's pinned membership is verified before it is trusted —
// a mismatch falls back to the always-correct ephemeral path instead of
// silently mis-scoring against a stale skeleton.
func (m *Matcher) scopeFor(entities []core.EntityID) *scope {
	if len(entities) == 0 {
		return nil
	}
	cs := m.scopes.Load()
	if cs == nil {
		return nil
	}
	sc := cs.byKey[scopeKey{&entities[0], len(entities)}]
	if sc == nil || !slices.Equal(sc.ents, entities) {
		return nil
	}
	return sc
}

// buildScope assembles a neighborhood skeleton into sc using the
// workspace's entity and position marks (left clean on return). The
// construction mirrors the original per-call scopedIDs + adjacency walk
// exactly — including edge order, which ties must not disturb.
func (m *Matcher) buildScope(entities []core.EntityID, ws *workspace, sc *scope) {
	for _, e := range entities {
		ws.inSet[e] = true
	}
	ids := sc.ids[:0]
	for _, e := range entities {
		for _, id := range m.pairsOf[e] {
			p := m.pairs[id]
			if p.A == e && ws.inSet[p.B] { // dedupe: count a pair at its A endpoint
				ids = append(ids, id)
			}
		}
	}
	slices.Sort(ids)
	sc.ids = ids
	sc.pairs = sc.pairs[:0]
	for pi, id := range ids {
		sc.pairs = append(sc.pairs, m.pairs[id])
		ws.posOf[id] = int32(pi)
	}
	sc.edges, sc.boundary = sc.edges[:0], sc.boundary[:0]
	for pi, id := range ids {
		for _, e := range m.adj[id] {
			if pj := ws.posOf[e.other]; pj >= 0 {
				if e.other > id { // each undirected interaction once
					sc.edges = append(sc.edges, scopeEdge{pi: int32(pi), pj: pj, count: e.count})
				}
			} else {
				sc.boundary = append(sc.boundary, boundaryEdge{pi: int32(pi), other: e.other, count: e.count})
			}
		}
	}
	for _, e := range entities {
		ws.inSet[e] = false
	}
	for _, id := range ids {
		ws.posOf[id] = -1
	}
}

// Evidence states in the workspace's dense vector. A zero byte means
// "not translated yet"; translated entries carry stFilled plus the
// membership bits, so pos∩neg overlaps keep the exact semantics of the
// original per-set lookups (neg wins for the echo, pos alone drives
// support bonuses).
const (
	stFilled uint8 = 1 << 7
	stPos    uint8 = 1
	stNeg    uint8 = 2
)

// workspace is the per-call scratch of one Match / MaximalMessages /
// LogScore invocation, pooled on the matcher. state and posOf are sized
// to the global candidate-pair universe; inSet to the entity universe.
type workspace struct {
	state   []uint8 // dense evidence view, indexed by candidate-pair id
	touched []int32 // state indices to zero on release
	posOf   []int32 // global pair id -> scope position (-1 outside)
	inSet   []bool  // entity membership marks (buildScope only)
	slots   []int32 // scope position -> free-variable slot (-1 decided)
	fp      []uint8 // read-set fingerprint buffer (memo lookups)

	// localModel backing storage (free/eff/deg/edges) plus the solver
	// assignment; see buildLocal.
	free  []int32
	eff   []float64
	deg   []int32
	edges []Edge
	x     []bool

	eph scope          // ephemeral skeleton for non-cover entity slices
	mm  maximalScratch // MaximalMessages component bookkeeping
}

// getWS hands out a clean workspace.
func (m *Matcher) getWS() *workspace {
	ws := m.wsPool.Get().(*workspace)
	return ws
}

// putWS zeroes the touched state entries and returns ws to the pool.
func (m *Matcher) putWS(ws *workspace) {
	st := ws.state
	for _, id := range ws.touched {
		st[id] = 0
	}
	ws.touched = ws.touched[:0]
	m.wsPool.Put(ws)
}

// newWorkspace sizes a workspace for the matcher's universes.
func newWorkspace(numPairs, numEntities int) *workspace {
	ws := &workspace{
		state: make([]uint8, numPairs),
		posOf: make([]int32, numPairs),
		inSet: make([]bool, numEntities),
	}
	for i := range ws.posOf {
		ws.posOf[i] = -1
	}
	ws.mm.dsuComp = unionfind.New(0)
	ws.mm.dsuProbe = unionfind.New(0)
	return ws
}

// fillState translates the evidence membership of candidate pair id into
// the dense vector (once per id per call) and returns it.
func (ws *workspace) fillState(m *Matcher, id int32, pos, neg core.PairSet) uint8 {
	v := ws.state[id]
	if v != 0 {
		return v
	}
	v = stFilled
	k := m.pairs[id].Key()
	if pos.HasKey(k) {
		v |= stPos
	}
	if neg.HasKey(k) {
		v |= stNeg
	}
	ws.state[id] = v
	ws.touched = append(ws.touched, id)
	return v
}

// localModel is the conditioned submodel of one neighborhood: the free
// match variables with their effective unary weights (base weight plus
// evidence-supported groundings) and the in-scope pairwise interactions.
// All slices are views into the owning workspace.
type localModel struct {
	free  []int32 // candidate pair ids
	eff   []float64
	edges []Edge // indices refer to positions in free
	deg   []int32
	out   core.PairSet
}

// buildLocal assembles the conditioned submodel from a prebuilt skeleton
// and the dense evidence view; out is pre-seeded with the in-scope
// positive evidence (echoed in every Match output).
func (m *Matcher) buildLocal(sc *scope, pos, neg core.PairSet, ws *workspace) localModel {
	lm := localModel{out: core.NewPairSet()}
	n := len(sc.ids)
	if cap(ws.slots) < n {
		ws.slots = make([]int32, n)
	}
	slots := ws.slots[:n]
	free := ws.free[:0]
	for pi, id := range sc.ids {
		v := ws.fillState(m, id, pos, neg)
		if v == stFilled { // in neither evidence set: free variable
			slots[pi] = int32(len(free))
			free = append(free, id)
			continue
		}
		slots[pi] = -1
		if v&stNeg == 0 && v&stPos != 0 {
			lm.out.Add(sc.pairs[pi])
		}
	}
	nf := len(free)
	if cap(ws.eff) < nf {
		ws.eff = make([]float64, nf)
		ws.deg = make([]int32, nf)
	}
	eff, deg := ws.eff[:nf], ws.deg[:nf]
	for fi, id := range free {
		eff[fi] = m.unary[id] + m.w.TieEps
		deg[fi] = 0
	}
	edges := ws.edges[:0]
	cw := m.w.Coauthor
	for _, e := range sc.edges {
		si, sj := slots[e.pi], slots[e.pj]
		switch {
		case si >= 0 && sj >= 0:
			edges = append(edges, Edge{I: int(si), J: int(sj), W: cw * float64(e.count)})
			deg[si]++
			deg[sj]++
		case si >= 0:
			if ws.state[sc.ids[e.pj]]&stPos != 0 {
				eff[si] += cw * float64(e.count)
			}
		case sj >= 0:
			if ws.state[sc.ids[e.pi]]&stPos != 0 {
				eff[sj] += cw * float64(e.count)
			}
		}
	}
	for _, be := range sc.boundary {
		if si := slots[be.pi]; si >= 0 {
			if ws.fillState(m, be.other, pos, neg)&stPos != 0 {
				eff[si] += cw * float64(be.count)
			}
		}
	}
	ws.free, ws.edges = free, edges
	lm.free, lm.eff, lm.deg, lm.edges = free, eff, deg, edges
	return lm
}

// scopeOf resolves the skeleton for an entity slice: the prepared one
// for cover neighborhoods, or an ephemeral skeleton built into the
// workspace for arbitrary slices (tests, the weight learner, whole-set
// runs).
func (m *Matcher) scopeOf(entities []core.EntityID, ws *workspace) *scope {
	if sc := m.scopeFor(entities); sc != nil {
		return sc
	}
	m.buildScope(entities, ws, &ws.eph)
	return &ws.eph
}

var _ core.ScopePreparer = (*Matcher)(nil)
