package mln

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMAP enumerates all assignments.
func bruteMAP(unary []float64, edges []Edge) ([]bool, float64) {
	n := len(unary)
	bestScore := math.Inf(-1)
	bestMask := 0
	for mask := 0; mask < 1<<n; mask++ {
		score := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				score += unary[i]
			}
		}
		for _, e := range edges {
			if mask&(1<<e.I) != 0 && mask&(1<<e.J) != 0 {
				score += e.W
			}
		}
		if score > bestScore {
			bestScore, bestMask = score, mask
		}
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = bestMask&(1<<i) != 0
	}
	return out, bestScore
}

func TestSolveMAPEmpty(t *testing.T) {
	if got := SolveMAP(nil, nil); got != nil {
		t.Errorf("empty problem = %v", got)
	}
}

func TestSolveMAPUnaryOnly(t *testing.T) {
	x := SolveMAP([]float64{1, -1, 0.5, -0.5}, nil)
	want := []bool{true, false, true, false}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveMAPChainExample(t *testing.T) {
	// The paper's 3-chain: three pairs at −5 with two +8 interactions.
	// Alone each is negative; together they are +1.
	unary := []float64{-5, -5, -5}
	edges := []Edge{{0, 1, 8}, {1, 2, 8}}
	x := SolveMAP(unary, edges)
	for i, v := range x {
		if !v {
			t.Fatalf("x[%d] = false; the chain must be matched collectively", i)
		}
	}
	// Break the chain: with only one interaction the optimum is empty.
	x = SolveMAP(unary, edges[:1])
	for i, v := range x {
		if v {
			t.Fatalf("x[%d] = true; -10+8 must not match", i)
		}
	}
}

func TestSolveMAPAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		unary := make([]float64, n)
		for i := range unary {
			unary[i] = (rng.Float64() - 0.7) * 10 // mostly negative
			if rng.Intn(5) == 0 {
				unary[i] = 0 // exercise ties
			}
		}
		var edges []Edge
		for e := rng.Intn(2 * n); e > 0; e-- {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			edges = append(edges, Edge{i, j, rng.Float64() * 8})
		}
		x := SolveMAP(unary, edges)
		_, wantScore := bruteMAP(unary, edges)
		gotScore := ScoreAssignment(unary, edges, x)
		if math.Abs(gotScore-wantScore) > 1e-6 {
			t.Fatalf("trial %d: SolveMAP score %v != brute %v (unary=%v edges=%v)",
				trial, gotScore, wantScore, unary, edges)
		}
	}
}

func TestSolveMAPTieBreakWithEps(t *testing.T) {
	// A zero-weight variable is a tie; with an inclusion bonus it must be
	// matched (the "largest most-likely set" of Definition 5).
	const eps = 1e-9
	x := SolveMAP([]float64{0 + eps}, nil)
	if !x[0] {
		t.Error("eps-boosted zero variable must be included")
	}
}

func TestScoreAssignment(t *testing.T) {
	unary := []float64{1, 2}
	edges := []Edge{{0, 1, 4}}
	if got := ScoreAssignment(unary, edges, []bool{true, true}); got != 7 {
		t.Errorf("score = %v, want 7", got)
	}
	if got := ScoreAssignment(unary, edges, []bool{true, false}); got != 1 {
		t.Errorf("score = %v, want 1", got)
	}
	if got := ScoreAssignment(unary, edges, []bool{false, false}); got != 0 {
		t.Errorf("score = %v, want 0", got)
	}
}

func BenchmarkSolveMAP(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 200
	unary := make([]float64, n)
	for i := range unary {
		unary[i] = (rng.Float64() - 0.7) * 10
	}
	var edges []Edge
	for e := 0; e < 3*n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			edges = append(edges, Edge{i, j, rng.Float64() * 8})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveMAP(unary, edges)
	}
}
