//go:build race

package mln

const raceEnabled = true
