package mln

import (
	"testing"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
)

type benchEnv struct {
	d     *bib.Dataset
	cover *core.Cover
}

// benchGround builds the HEPTH-like 0.25 corpus the scheme benchmarks
// use and returns its grounding inputs.
func benchGround(b testing.TB) (env benchEnv, cands []Candidate) {
	b.Helper()
	ds := datagen.MustGenerate(datagen.HEPTHLike(0.25, 42))
	cover := canopy.BuildCover(ds, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(ds, cover)
	cands = make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	return benchEnv{ds, cover}, cands
}

// BenchmarkNew measures grounding the MLN — the O(deg²) coauthor loop
// dominates; the scratch-slice merge keeps it allocation-light.
func BenchmarkNew(b *testing.B) {
	env, cands := benchGround(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(env.d, cands, PaperWeights()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchWarm measures one Match call on a fixed warm neighborhood
// after PrepareCover: the per-call cost SMP/MMP multiply by
// Evaluations × rounds.
func BenchmarkMatchWarm(b *testing.B) {
	env, cands := benchGround(b)
	m, err := New(env.d, cands, PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	m.PrepareCover(env.cover)
	id := largestNeighborhood(env.cover)
	entities := env.cover.Sets[id]
	pos := core.NewPairSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(entities, pos, nil)
	}
}

func largestNeighborhood(c *core.Cover) int {
	best := 0
	for i, s := range c.Sets {
		if len(s) > len(c.Sets[best]) {
			best = i
		}
	}
	return best
}

// benchPrepared grounds the HEPTH corpus, prepares the cover, and
// returns the matcher with its largest neighborhood — the shared setup
// of the memoization benchmarks.
func benchPrepared(b *testing.B) (*Matcher, []core.EntityID) {
	b.Helper()
	env, cands := benchGround(b)
	m, err := New(env.d, cands, PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	m.PrepareCover(env.cover)
	return m, env.cover.Sets[largestNeighborhood(env.cover)]
}

// BenchmarkMemoHit measures the steady-state memo hit: fingerprint the
// read set, byte-compare, materialize the cached verdict. This is what a
// re-activated neighborhood with unchanged relevant evidence costs in
// place of a full MAP solve (BenchmarkMemoMiss).
func BenchmarkMemoHit(b *testing.B) {
	m, entities := benchPrepared(b)
	pos := core.NewPairSet()
	m.Match(entities, pos, nil) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(entities, pos, nil)
	}
	b.StopTimer()
	if st := m.CacheStats(); st.Hits < int64(b.N) {
		b.Fatalf("hit benchmark missed: %+v over %d iterations", st, b.N)
	}
}

// BenchmarkMemoMiss measures the worst case for the memo: the relevant
// evidence flips every iteration, so every lookup invalidates, resolves
// from scratch and re-stores. The delta against BenchmarkMatchWarm at
// the pre-memo baseline is the layer's overhead on never-hitting
// workloads.
func BenchmarkMemoMiss(b *testing.B) {
	m, entities := benchPrepared(b)
	flip := m.Candidates(entities)[0]
	empty, one := core.NewPairSet(), core.NewPairSet(flip)
	evidence := []core.PairSet{empty, one}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(entities, evidence[i%2], nil)
	}
	b.StopTimer()
	if st := m.CacheStats(); st.Hits > 1 {
		b.Fatalf("miss benchmark hit the cache: %+v", st)
	}
}

// BenchmarkMemoMaximal measures a fully memoized MMP evaluation:
// Match + MaximalMessages both served from cache (the hit path that
// skips every probe solve of Algorithm 2).
func BenchmarkMemoMaximal(b *testing.B) {
	m, entities := benchPrepared(b)
	pos := core.NewPairSet()
	base := m.Match(entities, pos, nil)
	m.MaximalMessages(entities, pos, nil, base) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MaximalMessages(entities, pos, nil, base)
	}
}
