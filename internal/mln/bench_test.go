package mln

import (
	"testing"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
)

type benchEnv struct {
	d     *bib.Dataset
	cover *core.Cover
}

// benchGround builds the HEPTH-like 0.25 corpus the scheme benchmarks
// use and returns its grounding inputs.
func benchGround(b testing.TB) (env benchEnv, cands []Candidate) {
	b.Helper()
	ds := datagen.MustGenerate(datagen.HEPTHLike(0.25, 42))
	cover := canopy.BuildCover(ds, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(ds, cover)
	cands = make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	return benchEnv{ds, cover}, cands
}

// BenchmarkNew measures grounding the MLN — the O(deg²) coauthor loop
// dominates; the scratch-slice merge keeps it allocation-light.
func BenchmarkNew(b *testing.B) {
	env, cands := benchGround(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(env.d, cands, PaperWeights()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchWarm measures one Match call on a fixed warm neighborhood
// after PrepareCover: the per-call cost SMP/MMP multiply by
// Evaluations × rounds.
func BenchmarkMatchWarm(b *testing.B) {
	env, cands := benchGround(b)
	m, err := New(env.d, cands, PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	m.PrepareCover(env.cover)
	id := largestNeighborhood(env.cover)
	entities := env.cover.Sets[id]
	pos := core.NewPairSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(entities, pos, nil)
	}
}

func largestNeighborhood(c *core.Cover) int {
	best := 0
	for i, s := range c.Sets {
		if len(s) > len(c.Sets[best]) {
			best = i
		}
	}
	return best
}
