package mln

import (
	"math"
	"sync"
	"testing"

	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
)

// fuzzModel grounds one small corpus shared by all fuzz iterations.
var fuzzModel = sync.OnceValue(func() *Matcher {
	d := datagen.MustGenerate(datagen.DBLPLike(0.1, 7))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := New(d, cands, PaperWeights())
	if err != nil {
		panic(err)
	}
	return m
})

// pickPairs decodes a byte stream into a deterministic pair selection.
func pickPairs(m *Matcher, data []byte) []core.Pair {
	all := m.Pairs()
	if len(all) == 0 {
		return nil
	}
	var out []core.Pair
	for i := 0; i+1 < len(data); i += 2 {
		id := (int(data[i])<<8 | int(data[i+1])) % len(all)
		out = append(out, all[id])
	}
	return out
}

// TestScoreSetDeltaSkipsPairsAlreadyInS pins the DeltaScorer contract
// edge the fuzz target cannot reach: a pair already in s contributes 0
// even when it is outside the model's variable universe (s ∪ add = s, so
// the delta of the remaining pairs is all that counts — never the
// non-candidate sentinel).
func TestScoreSetDeltaSkipsPairsAlreadyInS(t *testing.T) {
	m := fuzzModel()
	alien := core.MakePair(1<<30-2, 1<<30-1)
	known := m.Pairs()[0]
	s := core.NewPairSet(alien, known)
	if d := m.ScoreSetDelta([]core.Pair{alien, known}, s); d != 0 {
		t.Errorf("ScoreSetDelta over pairs already in s = %v, want 0", d)
	}
	other := m.Pairs()[1]
	got := m.ScoreSetDelta([]core.Pair{alien, other}, s)
	want := m.ScoreSetDelta([]core.Pair{other}, s)
	if got != want {
		t.Errorf("in-s alien changed the delta: %v != %v", got, want)
	}
}

// FuzzDenseLogScore drives the dense-evidence LogScore against the
// retained naive PairSet implementation: the two must agree (up to
// float64 summation-order noise) on every match set, including sets
// containing non-candidate pairs, and ScoreSetDelta must equal the
// difference of two full evaluations.
func FuzzDenseLogScore(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3}, []byte{0, 4}, false)
	f.Add([]byte{1, 200, 3, 77}, []byte{0, 1, 2, 2}, true)
	f.Add([]byte{}, []byte{9, 9}, false)
	f.Fuzz(func(t *testing.T, setBytes, addBytes []byte, withAlien bool) {
		m := fuzzModel()
		s := core.NewPairSet()
		for _, p := range pickPairs(m, setBytes) {
			s.Add(p)
		}
		if withAlien {
			// A pair outside the model's variable universe collapses the
			// probability to the sentinel in both implementations.
			s.Add(core.MakePair(1<<30-2, 1<<30-1))
		}
		dense, naive := m.LogScore(s), m.logScoreNaive(s)
		if math.Abs(dense-naive) > 1e-6 {
			t.Fatalf("LogScore dense = %v, naive = %v (|S| = %d)", dense, naive, s.Len())
		}

		add := pickPairs(m, addBytes)
		if withAlien || len(add) == 0 {
			return
		}
		got := m.ScoreSetDelta(add, s)
		union := s.Clone()
		for _, p := range add {
			union.Add(p)
		}
		want := m.logScoreNaive(union) - m.logScoreNaive(s)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("ScoreSetDelta = %v, want %v (|S| = %d, |add| = %d)",
				got, want, s.Len(), len(add))
		}
	})
}
