package mln

import (
	"testing"

	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
)

// learnSetup builds a labeled corpus, cover, matcher and truth set.
func learnSetup(t *testing.T, scale float64, seed int64) (*Matcher, *core.Cover, core.PairSet, []core.EntityID) {
	t.Helper()
	d := datagen.MustGenerate(datagen.DBLPLike(scale, seed))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := New(d, cands, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	truth := core.NewPairSet()
	for p := range d.TruePairs() {
		truth.Add(core.MakePair(p[0], p[1]))
	}
	all := make([]core.EntityID, d.NumRefs())
	for i := range all {
		all[i] = core.EntityID(i)
	}
	return m, cover, truth, all
}

func TestSetWeights(t *testing.T) {
	m, _, _, all := learnSetup(t, 0.1, 3)
	before := m.Match(all, nil, nil)
	// Zeroing the strong-pair weight must lose matches.
	w := PaperWeights()
	w.Sim3 = -5
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	after := m.Match(all, nil, nil)
	if after.Len() >= before.Len() {
		t.Errorf("suppressing Sim3 did not shrink matches: %d -> %d", before.Len(), after.Len())
	}
	if m.CurrentWeights().Sim3 != -5 {
		t.Errorf("CurrentWeights not updated")
	}
	// Restore and verify identical output (applyWeights is exact).
	if err := m.SetWeights(PaperWeights()); err != nil {
		t.Fatal(err)
	}
	if !m.Match(all, nil, nil).Equal(before) {
		t.Error("restoring weights did not restore the output")
	}
	// Invalid weights rejected and state unchanged.
	bad := PaperWeights()
	bad.Coauthor = -2
	if err := m.SetWeights(bad); err == nil {
		t.Error("invalid weights accepted")
	}
}

func TestLearnConfigValidation(t *testing.T) {
	m, cover, truth, _ := learnSetup(t, 0.08, 5)
	if _, err := Learn(m, cover, truth, LearnConfig{Epochs: 0, Rate: 1}); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := Learn(m, cover, truth, LearnConfig{Epochs: 1, Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

// TestLearnRecoversUsefulWeights: starting from deliberately broken
// weights (everything negative), the perceptron must recover weights
// whose full-corpus F1 is close to the paper weights' F1 on held-out
// data from the same distribution.
func TestLearnRecoversUsefulWeights(t *testing.T) {
	// Train on one corpus.
	trainM, trainCover, trainTruth, _ := learnSetup(t, 0.25, 11)
	broken := Weights{Sim1: -1, Sim2: -1, Sim3: -1, Coauthor: 0, TieEps: 1e-9}
	if err := trainM.SetWeights(broken); err != nil {
		t.Fatal(err)
	}
	learned, err := Learn(trainM, trainCover, trainTruth, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if learned.Coauthor < 0 {
		t.Fatalf("learned coauthor weight negative: %+v", learned)
	}
	// The learner need not reproduce the paper's weight *vector* — many
	// vectors fit (e.g. a large coauthor weight can subsume the strong-
	// similarity rule) — only a competitive decision boundary.

	// Evaluate on a fresh corpus (different seed).
	testM, _, testTruth, all := learnSetup(t, 0.25, 99)
	paperOut := testM.Match(all, nil, nil)
	paperF1 := eval.PrecisionRecall(paperOut, testTruth).F1

	if err := testM.SetWeights(learned); err != nil {
		t.Fatal(err)
	}
	learnedOut := testM.Match(all, nil, nil)
	learnedF1 := eval.PrecisionRecall(learnedOut, testTruth).F1

	t.Logf("learned weights %+v: F1 %.3f vs paper %.3f", learned, learnedF1, paperF1)
	if learnedF1 < 0.7*paperF1 {
		t.Errorf("learned F1 %.3f far below paper weights' %.3f", learnedF1, paperF1)
	}
}

// TestLearnRestoresWeights: Learn must leave the matcher's weights as it
// found them.
func TestLearnRestoresWeights(t *testing.T) {
	m, cover, truth, all := learnSetup(t, 0.1, 7)
	before := m.Match(all, nil, nil)
	if _, err := Learn(m, cover, truth, LearnConfig{Epochs: 2, Rate: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if m.CurrentWeights() != PaperWeights() {
		t.Errorf("weights mutated by Learn: %+v", m.CurrentWeights())
	}
	if !m.Match(all, nil, nil).Equal(before) {
		t.Error("matcher output changed after Learn")
	}
}

func TestFeatureCounts(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	all := allRefs(d)
	ids := m.scopedIDs(all)
	rastogi, dalvi := core.MakePair(0, 2), core.MakePair(1, 3)

	f := m.featureCounts(ids, core.NewPairSet(rastogi, dalvi))
	if f.sim[2] != 2 { // both medium
		t.Errorf("medium count = %v", f.sim[2])
	}
	// One interaction, count 2 (both role assignments), counted once.
	if f.coau != 2 {
		t.Errorf("coauthor groundings = %v, want 2", f.coau)
	}
	// Single pair: no groundings fire.
	f = m.featureCounts(ids, core.NewPairSet(rastogi))
	if f.coau != 0 || f.sim[2] != 1 {
		t.Errorf("single-pair features = %+v", f)
	}
}
