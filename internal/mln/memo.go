package mln

import (
	"bytes"
	"slices"
	"sync"

	"repro/internal/core"
)

// This file implements the cross-neighborhood verdict memoization layer.
// Canopies overlap heavily, so the same neighborhood is re-activated many
// times per run while its *relevant* evidence — the read set of
// buildLocal, i.e. the states of the in-scope candidate pairs plus the
// boundary pairs — often has not changed (Cover.Affected over-approximates
// re-activation, and warm-started continuations re-seed neighborhoods
// whose fixpoint is already known). The ground model and the cover are
// immutable per run, and Match / MaximalMessages are deterministic
// functions of (skeleton, read-set states), so each prepared scope caches
// its last verdict keyed by a fingerprint of exactly those states.
//
// The cache is self-validating: every lookup recomputes the fingerprint
// (the same per-pair evidence translation buildLocal would perform — the
// dense state vector is shared, so a miss pays nothing twice) and
// compares it byte-for-byte against the cached entry. A hit therefore
// *proves* the cached verdict is the one recomputation would produce —
// output stays byte-identical with memoization on, regardless of caller,
// scheme, evidence direction, or concurrency. Entries are overwritten in
// place when an in-scope or boundary pair's evidence state changes (an
// invalidation) and marked stale wholesale by SetWeights (the skeletons
// are weight-independent; verdicts are not).

// scopeMemo is the cached verdict of one prepared scope. The entry is
// allocated once per scope and then mutated in place under mu, recycling
// its slice capacity across stores — schedulers churn evidence on every
// visit, and an immutable entry-per-store design costs three heap
// allocations per evaluation on those paths for verdicts that are often
// never reused. states is the read-set fingerprint: the dense evidence
// state of every scoped candidate id (in skeleton order) followed by
// every boundary partner (in boundary-edge order). match is the cached
// Match output in ascending PairKey order; valid distinguishes a stored
// verdict from a never-filled or weight-invalidated entry. msgs/msgCalls
// cache the MaximalMessages verdict for the same fingerprint, valid only
// when the caller's base equals match (the protocol of Algorithm 3
// Step 5) — msgsValid distinguishes "not computed yet" from "computed,
// empty".
type scopeMemo struct {
	mu        sync.Mutex
	valid     bool
	states    []uint8
	match     []core.PairKey
	msgs      [][]core.Pair
	msgCalls  int
	msgsValid bool
}

// fingerprint translates the scope's read set into ws.fp and returns it.
// The per-pair translation shares the workspace's dense state vector with
// buildLocal, so on a miss the subsequent rebuild pays no second lookup.
// The returned slice aliases the workspace; copy before retaining.
func (m *Matcher) fingerprint(sc *scope, pos, neg core.PairSet, ws *workspace) []uint8 {
	n := len(sc.ids)
	ws.fp = grow(ws.fp, n+len(sc.boundary))
	for i, id := range sc.ids {
		ws.fp[i] = ws.fillState(m, id, pos, neg)
	}
	for j, be := range sc.boundary {
		ws.fp[n+j] = ws.fillState(m, be.other, pos, neg)
	}
	return ws.fp
}

// memoKey returns the scope's read-set fingerprint, or nil when
// memoization does not apply (ephemeral scope or memoization disabled).
// The returned slice aliases the workspace; copy before retaining.
func (m *Matcher) memoKey(sc *scope, pos, neg core.PairSet, ws *workspace) []uint8 {
	if sc == &ws.eph || m.memoOff {
		return nil
	}
	return m.fingerprint(sc, pos, neg, ws)
}

// memoEntry returns the scope's memo entry, allocating it on first use.
// The entry pointer is install-once (CAS), so losers of the race adopt
// the winner's entry; all field access happens under the entry lock.
func (sc *scope) memoEntry() *scopeMemo {
	if e := sc.memo.Load(); e != nil {
		return e
	}
	e := &scopeMemo{}
	if !sc.memo.CompareAndSwap(nil, e) {
		e = sc.memo.Load()
	}
	return e
}

// memoMatch consults the scope's cached Match verdict under the given
// fingerprint, counting the hit, miss, or invalidation.
func (m *Matcher) memoMatch(sc *scope, key []uint8) (core.PairSet, bool) {
	e := sc.memo.Load()
	if e == nil {
		m.cacheMisses.Add(1)
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case !e.valid:
		m.cacheMisses.Add(1)
	case !bytes.Equal(e.states, key):
		m.cacheInvals.Add(1)
	default:
		m.cacheHits.Add(1)
		return pairSetOfKeys(e.match), true
	}
	return nil, false
}

// memoStoreMatch records a freshly computed Match verdict, recycling the
// entry's slice capacity. The message cache is dropped: it was computed
// for the previous fingerprint.
func (m *Matcher) memoStoreMatch(sc *scope, key []uint8, out core.PairSet) {
	e := sc.memoEntry()
	e.mu.Lock()
	e.states = append(e.states[:0], key...)
	e.match = appendSortedKeys(e.match[:0], out)
	e.valid = true
	e.msgsValid = false
	e.mu.Unlock()
}

// memoStoreMsgs records a freshly computed MaximalMessages verdict on an
// entry whose Match verdict for the same fingerprint is already cached.
// Re-validated under the lock: a concurrent store for different evidence
// wins and the message verdict is discarded.
func (m *Matcher) memoStoreMsgs(e *scopeMemo, key []uint8, msgs [][]core.Pair, calls int) {
	e.mu.Lock()
	if e.valid && bytes.Equal(e.states, key) {
		e.msgs = copyMsgsInto(e.msgs, msgs)
		e.msgCalls = calls
		e.msgsValid = true
	}
	e.mu.Unlock()
}

// appendSortedKeys appends s's keys to dst in ascending order.
func appendSortedKeys(dst []core.PairKey, s core.PairSet) []core.PairKey {
	for k := range s {
		dst = append(dst, k)
	}
	slices.Sort(dst)
	return dst
}

// pairSetOfKeys materializes a cached match verdict as a fresh PairSet.
func pairSetOfKeys(keys []core.PairKey) core.PairSet {
	out := make(core.PairSet, len(keys))
	for _, k := range keys {
		out.AddKey(k)
	}
	return out
}

// baseMatches reports whether base is exactly the cached match verdict —
// the precondition for reusing a cached MaximalMessages answer (Algorithm
// 2 probes skip pairs already in base).
func baseMatches(base core.PairSet, match []core.PairKey) bool {
	if base.Len() != len(match) {
		return false
	}
	for _, k := range match {
		if !base.HasKey(k) {
			return false
		}
	}
	return true
}

// copyMsgs deep-copies a message list so cached verdicts never alias
// caller-visible slices (callers hand messages to stores that hold them).
func copyMsgs(msgs [][]core.Pair) [][]core.Pair {
	if len(msgs) == 0 {
		return nil
	}
	out := make([][]core.Pair, len(msgs))
	for i, msg := range msgs {
		out[i] = slices.Clone(msg)
	}
	return out
}

// copyMsgsInto deep-copies src into dst, recycling dst's outer and inner
// slice capacity.
func copyMsgsInto(dst, src [][]core.Pair) [][]core.Pair {
	old := dst[:cap(dst)]
	dst = dst[:0]
	for i, msg := range src {
		var inner []core.Pair
		if i < len(old) {
			inner = old[i][:0]
		}
		dst = append(dst, append(inner, msg...))
	}
	return dst
}

// SetMemoization enables or disables the verdict memo (enabled by
// default). Like SetWeights it is NOT safe for concurrent use with
// Match; it exists so differential tests can hold the memoized and
// unmemoized paths side by side.
func (m *Matcher) SetMemoization(on bool) { m.memoOff = !on }

// invalidateMemos marks every cached verdict of the prepared cover stale
// (capacity is kept for the next store).
func (m *Matcher) invalidateMemos() {
	cs := m.scopes.Load()
	if cs == nil {
		return
	}
	for _, sc := range cs.byKey {
		e := sc.memo.Load()
		if e == nil {
			continue
		}
		e.mu.Lock()
		if e.valid {
			e.valid = false
			e.msgsValid = false
			m.cacheInvals.Add(1)
		}
		e.mu.Unlock()
	}
}

// CacheStats implements core.CacheReporter: cumulative verdict-memo
// counters since construction. Match and MaximalMessages each consult
// the table once per call, so one fully memoized MMP evaluation reports
// two hits.
func (m *Matcher) CacheStats() core.CacheReport {
	return core.CacheReport{
		Hits:          m.cacheHits.Load(),
		Misses:        m.cacheMisses.Load(),
		Invalidations: m.cacheInvals.Load(),
	}
}

var _ core.CacheReporter = (*Matcher)(nil)
