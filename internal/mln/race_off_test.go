//go:build !race

package mln

// raceEnabled reports whether the race detector instruments this build;
// allocation regression bounds are meaningless under its inflation.
const raceEnabled = false
