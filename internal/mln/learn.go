package mln

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/similarity"
)

// The paper learns its rule weights with Alchemy from labeled training
// data (Appendix B: "we used the Alchemy system to learn the weights of
// the rules using training data"). Alchemy is closed-world C++ software;
// this file substitutes a structured (averaged) perceptron over the same
// four features — the per-level match counts and the coauthor-rule
// grounding count — trained on neighborhoods of a labeled corpus. The
// learned weights drop into the same ground model.

// LearnConfig controls weight learning.
type LearnConfig struct {
	// Epochs over the training neighborhoods.
	Epochs int
	// Rate is the perceptron step size.
	Rate float64
	// Seed shuffles the neighborhood order between epochs.
	Seed int64
}

// DefaultLearnConfig returns a configuration that converges on the
// generated corpora.
func DefaultLearnConfig() LearnConfig {
	return LearnConfig{Epochs: 8, Rate: 0.5, Seed: 1}
}

// features are the sufficient statistics of an assignment: counts of
// matched pairs per similarity level and the number of fired coauthor
// groundings.
type features struct {
	sim  [4]float64 // indexed by level 1..3; slot 0 unused
	coau float64
}

func (f *features) sub(g features) features {
	out := features{coau: f.coau - g.coau}
	for i := range f.sim {
		out.sim[i] = f.sim[i] - g.sim[i]
	}
	return out
}

func (f *features) norm1() float64 {
	t := abs(f.coau)
	for _, v := range f.sim {
		t += abs(v)
	}
	return t
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// featureCounts computes the statistics of match set s restricted to the
// given candidate ids (in-scope pairs). Pairwise groundings are counted
// once per unordered pair of match variables; reflexive groundings count
// per pair.
func (m *Matcher) featureCounts(ids []int32, s core.PairSet) features {
	var f features
	for _, id := range ids {
		p := m.pairs[id]
		if !s.Has(p) {
			continue
		}
		f.sim[m.level[id]]++
		f.coau += float64(m.reflex[id])
		for _, e := range m.adj[id] {
			if e.other > id && s.Has(m.pairs[e.other]) {
				f.coau += float64(e.count)
			}
		}
	}
	return f
}

// Learn runs the structured perceptron: for every training neighborhood,
// predict the MAP match set under the current weights, compare its
// features with the gold features (ground truth restricted to in-scope
// candidates), and update. Weights are averaged across all updates
// (averaged perceptron) for stability, and the coauthor weight is clamped
// non-negative so the learned matcher stays supermodular.
func Learn(m *Matcher, cover *core.Cover, truth core.PairSet, cfg LearnConfig) (Weights, error) {
	if cfg.Epochs <= 0 {
		return Weights{}, fmt.Errorf("mln: Epochs = %d, want > 0", cfg.Epochs)
	}
	if cfg.Rate <= 0 {
		return Weights{}, fmt.Errorf("mln: Rate = %v, want > 0", cfg.Rate)
	}
	saved := m.w
	defer func() {
		m.w = saved
		m.applyWeights()
	}()

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, cover.Len())
	for i := range order {
		order[i] = i
	}
	w := m.w
	var sum Weights
	samples := 0

	accumulate := func() {
		sum.Sim1 += w.Sim1
		sum.Sim2 += w.Sim2
		sum.Sim3 += w.Sim3
		sum.Coauthor += w.Coauthor
		samples++
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ni := range order {
			entities := cover.Sets[ni]
			ids := m.scopedIDs(entities)
			if len(ids) == 0 {
				continue
			}
			gold := core.NewPairSet()
			for _, id := range ids {
				if truth.Has(m.pairs[id]) {
					gold.Add(m.pairs[id])
				}
			}
			m.w = w
			m.applyWeights()
			pred := m.Match(entities, nil, nil)

			gf := m.featureCounts(ids, gold)
			pf := m.featureCounts(ids, pred)
			delta := gf.sub(pf)
			if delta.norm1() > 0 {
				w.Sim1 += cfg.Rate * delta.sim[similarity.LevelWeak]
				w.Sim2 += cfg.Rate * delta.sim[similarity.LevelMedium]
				w.Sim3 += cfg.Rate * delta.sim[similarity.LevelStrong]
				w.Coauthor += cfg.Rate * delta.coau
				if w.Coauthor < 0 {
					w.Coauthor = 0 // keep the model supermodular
				}
			}
			accumulate()
		}
	}
	if samples == 0 {
		return Weights{}, fmt.Errorf("mln: no training neighborhoods with candidates")
	}
	out := Weights{
		Sim1:     sum.Sim1 / float64(samples),
		Sim2:     sum.Sim2 / float64(samples),
		Sim3:     sum.Sim3 / float64(samples),
		Coauthor: sum.Coauthor / float64(samples),
		TieEps:   saved.TieEps,
	}
	if out.Coauthor < 0 {
		out.Coauthor = 0
	}
	return out, nil
}
